// Logflush: the paper's Fig. 5 experiment — the monitoring tool's own log
// flush stalls MySQL on I/O every 30 seconds, and the queuing chain
// propagates MySQL -> Tomcat -> Apache until Apache drops packets.
//
//	go run ./examples/logflush
package main

import (
	"fmt"
	"log"
	"time"

	"ctqosim/internal/core"
)

func main() {
	res, err := core.New(core.Figure5Config()).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())

	// The I/O wait timeline shows the flush stalls.
	fmt.Println("MySQL I/O-wait peaks (flushes every 30s):")
	io := res.Monitor.IOWait("steady-mysql")
	inStall := false
	for i, v := range io.Values {
		t := time.Duration(i+1) * io.Interval
		if v > 0.9 && !inStall {
			fmt.Printf("  stall begins at t=%v\n", t.Round(50*time.Millisecond))
			inStall = true
		}
		if v < 0.1 {
			inStall = false
		}
	}

	// The cross-tier queue chain of Fig. 5(b): each tier's peak queue hits
	// its bound in turn.
	fmt.Println("\nqueue peaks along the chain:")
	for _, tier := range res.System.TierNames() {
		fmt.Printf("  %-14s peak %3.0f\n", tier, res.QueueSeries(tier).Max())
	}

	fmt.Println("\nmicro-level event analysis:")
	fmt.Println(res.Report)
}
