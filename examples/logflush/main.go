// Logflush: the paper's Fig. 5 experiment — the monitoring tool's own log
// flush stalls MySQL on I/O every 30 seconds, and the queuing chain
// propagates MySQL -> Tomcat -> Apache until Apache drops packets.
//
// The experiment is declared in the embedded fig5 scenario file; pass
// -scenario to run a different scenario document through the same panels.
//
//	go run ./examples/logflush [-scenario file.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ctqosim/internal/core"
	"ctqosim/internal/scenario"
)

// loadScenario resolves the document to run: an on-disk file when a path
// is given, the named embedded registry scenario otherwise.
func loadScenario(path, fallback string) (core.Config, *scenario.Document, error) {
	var doc *scenario.Document
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return core.Config{}, nil, err
		}
		if doc, err = scenario.Parse(path, data); err != nil {
			return core.Config{}, nil, err
		}
	} else {
		doc = core.ScenarioDocs()[fallback]
		if doc == nil {
			return core.Config{}, nil, fmt.Errorf("embedded scenario %q missing", fallback)
		}
	}
	cfg, err := core.FromScenario(doc)
	return cfg, doc, err
}

func main() {
	file := flag.String("scenario", "", "scenario file to run instead of the embedded fig5 document")
	flag.Parse()
	cfg, doc, err := loadScenario(*file, "fig5")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.New(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())

	// The I/O wait timeline shows the flush stalls.
	fmt.Println("MySQL I/O-wait peaks (flushes every 30s):")
	io := res.Monitor.IOWait("steady-mysql")
	inStall := false
	for i, v := range io.Values {
		t := time.Duration(i+1) * io.Interval
		if v > 0.9 && !inStall {
			fmt.Printf("  stall begins at t=%v\n", t.Round(50*time.Millisecond))
			inStall = true
		}
		if v < 0.1 {
			inStall = false
		}
	}

	// The cross-tier queue chain of Fig. 5(b): each tier's peak queue hits
	// its bound in turn.
	fmt.Println("\nqueue peaks along the chain:")
	for _, tier := range res.System.TierNames() {
		fmt.Printf("  %-14s peak %3.0f\n", tier, res.QueueSeries(tier).Max())
	}

	fmt.Println("\nmicro-level event analysis:")
	fmt.Println(res.Report)

	if len(doc.Assertions) > 0 {
		report := scenario.Evaluate(doc.Assertions, res.Outcome())
		fmt.Println("assertions:")
		fmt.Println(report)
		if !report.Pass() {
			os.Exit(1)
		}
	}
}
