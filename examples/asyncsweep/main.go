// Asyncsweep: the paper's Section V narrative in one table — replace the
// synchronous servers with asynchronous ones tier by tier (NX=0..3) under
// the identical millibottleneck workload and watch where the drops move,
// until at NX=3 they disappear.
//
//	go run ./examples/asyncsweep
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"ctqosim/internal/core"
	"ctqosim/internal/ntier"
)

func main() {
	fmt.Println("CPU millibottleneck in the app tier, identical across configurations")
	fmt.Printf("%-24s %-10s %-8s %-28s\n", "configuration", "drops", "VLRT", "dropping server(s)")

	// The four configurations are independent runs, so fan them across
	// the cores; the Runner returns them in submission order, keeping the
	// table identical to the serial sweep.
	var cfgs []core.Config
	for level := ntier.NX0; level <= ntier.NX3; level++ {
		cfgs = append(cfgs, core.Config{
			Name:          fmt.Sprintf("sweep NX=%d", level),
			NX:            level,
			Clients:       7000,
			Duration:      45 * time.Second,
			Consolidation: &core.ConsolidationSpec{Tier: core.TierApp, BatchSize: 600},
		})
	}
	results, err := core.NewRunner(0).Run(cfgs)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		var droppers []string
		for _, tier := range res.System.TierNames() {
			if d := res.DropsPerServer[tier]; d > 0 {
				droppers = append(droppers, fmt.Sprintf("%s(%d)", tier, d))
			}
		}
		who := "-"
		if len(droppers) > 0 {
			who = strings.Join(droppers, " ")
		}
		fmt.Printf("%-24s %-10d %-8d %-28s\n", cfgs[i].NX, res.TotalDrops, res.VLRTCount, who)
	}

	fmt.Println()
	fmt.Println("The drops chase the last synchronous tier down the chain;")
	fmt.Println("with all three tiers asynchronous (NX=3) they are gone.")
}
