// Tailanalysis: compare the latency tails of the synchronous and
// asynchronous systems under identical millibottlenecks, and contrast the
// measurement with what classic queueing theory predicts — the paper's
// Section III argument that steady-state queueing cannot explain the tail.
//
//	go run ./examples/tailanalysis
package main

import (
	"fmt"
	"log"
	"time"

	"ctqosim/internal/analytic"
	"ctqosim/internal/core"
	"ctqosim/internal/ntier"
	"ctqosim/internal/workload"
)

func main() {
	run := func(level ntier.NX) *core.Result {
		res, err := core.New(core.Config{
			Name:          fmt.Sprintf("tail %s", level),
			NX:            level,
			Clients:       7000,
			Duration:      60 * time.Second,
			Consolidation: &core.ConsolidationSpec{Tier: core.TierApp},
		}).Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	syncRes := run(ntier.NX0)
	asyncRes := run(ntier.NX3)

	fmt.Println("latency percentiles under identical app-tier millibottlenecks:")
	fmt.Printf("%-10s %-14s %-14s\n", "quantile", "sync (NX=0)", "async (NX=3)")
	for _, p := range []float64{0.50, 0.90, 0.99, 0.999, 1} {
		fmt.Printf("p%-9.4g %-14v %-14v\n", p*100,
			syncRes.Recorder.Percentile(p).Round(time.Millisecond),
			asyncRes.Recorder.Percentile(p).Round(time.Millisecond))
	}
	fmt.Printf("\nVLRT (>3s): sync %d, async %d\n", syncRes.VLRTCount, asyncRes.VLRTCount)
	fmt.Printf("dropped packets: sync %d, async %d\n\n", syncRes.TotalDrops, asyncRes.TotalDrops)

	// What would steady-state queueing predict? MVA for the closed
	// network, and the M/M/1 odds of a >3s response at this utilization.
	model := analytic.FromMix(workload.DefaultMix(), workload.DefaultThinkTime)
	sol := model.Solve(7000)
	fmt.Printf("queueing theory (MVA): throughput %.0f req/s, mean RT %v, app util %.0f%%\n",
		sol.Throughput, sol.ResponseTime.Round(time.Microsecond), sol.Utilizations[1]*100)

	_, util := syncRes.HighestMeanUtil()
	odds := analytic.VLRTOddsUnderQueueing(util, 750*time.Microsecond)
	measured := float64(syncRes.VLRTCount) / float64(syncRes.Recorder.Len())
	fmt.Printf("P(RT > 3s) under steady-state queueing at %.0f%% util: %.3g\n", util*100, odds)
	fmt.Printf("P(RT > 3s) measured in the sync system:            %.3g\n", measured)
	fmt.Println("\nThe tail is not a queueing tail — it is dropped packets plus the")
	fmt.Println("3-second retransmission timer, which is why the async replacement")
	fmt.Println("removes it without changing capacity.")
}
