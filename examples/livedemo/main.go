// Livedemo: the paper's mechanism on real TCP sockets. Two 3-tier systems
// run on localhost — one synchronous (bounded thread pools + queues), one
// asynchronous (small worker pools + lightweight queues) — and receive the
// identical request burst. The synchronous system drops the overflow and
// the dropped requests return one RTO later; the asynchronous system
// absorbs everything.
//
//	go run ./examples/livedemo
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"ctqosim/internal/live"
	"ctqosim/internal/span"
)

const (
	rto      = 500 * time.Millisecond
	burst    = 24
	workers  = 2
	ioLimit  = 30 * time.Second
	service  = 60 * time.Millisecond
	dbSleep  = 30 * time.Millisecond
	appSleep = 20 * time.Millisecond
)

func main() {
	fmt.Printf("burst of %d requests against MaxSysQDepth %d (sync) — RTO %v\n\n",
		burst, workers+workers, rto)

	syncCol := live.NewCollector()
	syncOutcomes, syncDrops := runSystem(true /* sync */, syncCol)
	asyncOutcomes, asyncDrops := runSystem(false, nil)

	fmt.Printf("%-22s %-8s %-10s %-10s %-10s\n",
		"architecture", "drops", "retried", "p50", "max")
	report("synchronous", syncOutcomes, syncDrops)
	report("asynchronous", asyncOutcomes, asyncDrops)

	// The collector turns the wall-clock intervals into span trees: the
	// slowest request decomposes into its retransmission gaps on sight.
	tr := syncCol.Assemble(span.TracerConfig{Seed: 1, TailThreshold: rto})
	if ex := tr.TailExemplars(); len(ex) > 0 {
		fmt.Println("\nslowest synchronous request, span by span:")
		fmt.Print(ex[0].Tree())
	}

	fmt.Println("\nThe synchronous overflow comes back one RTO later — the same")
	fmt.Println("multi-modal latency the paper measures with 3s kernel timers.")
}

// runSystem builds web→app→db on localhost and fires the burst.
func runSystem(sync bool, col *live.Collector) ([]live.Outcome, int64) {
	queue := workers // bounded, like the TCP backlog
	if !sync {
		queue = 10000 // LiteQDepth
	}
	tier := func(name, downName, downstream string) *live.Server {
		s, err := live.Serve(live.Config{
			Addr:           "127.0.0.1:0",
			Sync:           sync,
			Workers:        workers,
			Queue:          queue,
			Downstream:     downstream,
			RTO:            rto,
			IOTimeout:      ioLimit,
			Name:           name,
			DownstreamName: downName,
			Collector:      col,
		})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	db := tier("db", "", "")
	app := tier("app", "db", db.Addr())
	web := tier("web", "app", app.Addr())
	defer func() {
		for _, s := range []*live.Server{web, app, db} {
			if err := s.Close(); err != nil {
				log.Printf("close %s: %v", s.Addr(), err)
			}
		}
	}()

	client := live.Client{Target: web.Addr(), RTO: rto, MaxAttempts: 10,
		IOTimeout: ioLimit, Name: "web", Collector: col}
	outcomes := live.RunLoad(client, burst, []time.Duration{service, appSleep, dbSleep})
	drops := web.Stats().Dropped() + app.Stats().Dropped() + db.Stats().Dropped()
	return outcomes, drops
}

func report(name string, outcomes []live.Outcome, drops int64) {
	latencies := make([]time.Duration, 0, len(outcomes))
	retried := 0
	for _, o := range outcomes {
		if o.Err != nil {
			log.Fatalf("%s: request %d failed: %v", name, o.ID, o.Err)
		}
		latencies = append(latencies, o.Latency)
		if o.Attempts > 1 {
			retried++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := latencies[len(latencies)/2]
	maxRT := latencies[len(latencies)-1]
	fmt.Printf("%-22s %-8d %-10d %-10v %-10v\n",
		name, drops, retried,
		p50.Round(time.Millisecond), maxRT.Round(time.Millisecond))
}
