// Quickstart: build the paper's synchronous 3-tier system, inject the
// VM-consolidation millibottleneck, and print what happened to the tail.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ctqosim/internal/core"
	"ctqosim/internal/ntier"
)

func main() {
	// An experiment is just a Config. This one: the fully synchronous
	// Apache-Tomcat-MySQL stack (NX=0) under 7000 RUBBoS clients, with
	// SysBursty-MySQL consolidated onto the Tomcat node (the paper's
	// Fig. 2), measured for 30 seconds after a 10-second warm-up.
	cfg := core.Config{
		Name:          "quickstart",
		NX:            ntier.NX0,
		Clients:       7000,
		Duration:      30 * time.Second,
		Consolidation: &core.ConsolidationSpec{Tier: core.TierApp},
		Trace:         true,
	}

	res, err := core.New(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Summary())

	// The long tail is multi-modal: most requests answer in milliseconds,
	// the dropped ones return ~3s later after TCP retransmission.
	fmt.Printf("p50 = %v, p99.9 = %v\n",
		res.Recorder.Percentile(0.5).Round(time.Millisecond),
		res.Recorder.Percentile(0.999).Round(time.Millisecond))

	// The micro-level event analysis names the culprit.
	fmt.Println(res.Report)

	// And the Section III arithmetic explains it: the burst outruns
	// MaxSysQDepth(Apache) = threads 150 + backlog 128.
	p := core.PredictOverflow(res.Throughput, 400*time.Millisecond,
		ntier.ApacheThreads+ntier.KernelBacklog)
	fmt.Printf("model: %d arrivals during a 0.4s millibottleneck vs capacity %d -> ~%d drops\n",
		p.Arrivals, p.Capacity, p.Dropped)
}
