// Consolidation: the paper's Fig. 2/3 experiment end to end, with ASCII
// timelines of the three panels — CPU utilization, queue depths against
// MaxSysQDepth, and VLRT counts.
//
// The experiment is declared in the embedded fig3 scenario file; pass
// -scenario to run a different scenario document through the same panels.
//
//	go run ./examples/consolidation [-scenario file.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ctqosim/internal/core"
	"ctqosim/internal/metrics"
	"ctqosim/internal/scenario"
)

// loadScenario resolves the document to run: an on-disk file when a path
// is given, the named embedded registry scenario otherwise.
func loadScenario(path, fallback string) (core.Config, *scenario.Document, error) {
	var doc *scenario.Document
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return core.Config{}, nil, err
		}
		if doc, err = scenario.Parse(path, data); err != nil {
			return core.Config{}, nil, err
		}
	} else {
		doc = core.ScenarioDocs()[fallback]
		if doc == nil {
			return core.Config{}, nil, fmt.Errorf("embedded scenario %q missing", fallback)
		}
	}
	cfg, err := core.FromScenario(doc)
	return cfg, doc, err
}

func main() {
	file := flag.String("scenario", "", "scenario file to run instead of the embedded fig3 document")
	flag.Parse()
	cfg, doc, err := loadScenario(*file, "fig3")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.New(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())

	// Panel (a): CPU of the consolidated pair. SysBursty-MySQL spikes;
	// each spike pins SysSteady-Tomcat at 100% — a millibottleneck.
	fmt.Println("(a) CPU utilization, one char per second (values 0-9 = 0-100%):")
	printSpark("steady-tomcat ", res.Monitor.Util("steady-tomcat"))
	printSpark("bursty-mysql  ", res.Monitor.Util("bursty-mysql"))

	// Panel (b): queue depths. Apache climbs past its MaxSysQDepth of 278
	// (428 once the spare process spawns) while Tomcat caps at 293 and
	// MySQL at the 50-connection pool.
	fmt.Println("\n(b) queued requests (per-second maxima):")
	for _, tier := range res.System.TierNames() {
		printQueue(tier, res.QueueSeries(tier), res.System)
	}

	// Panel (c): VLRT requests per 50ms window, bucketed by arrival.
	fmt.Println("\n(c) VLRT requests by second of arrival:")
	vlrt := res.VLRTSeries("")
	perSec := make(map[int]int)
	for i, c := range vlrt {
		if c > 0 {
			t := res.Config.WarmUp + time.Duration(i)*res.Config.SampleInterval
			perSec[int(t/time.Second)] += c
		}
	}
	for s := 0; s <= int(res.End/time.Second); s++ {
		if perSec[s] > 0 {
			fmt.Printf("  t=%2ds: %s %d\n", s, strings.Repeat("#", min(perSec[s]/5+1, 60)), perSec[s])
		}
	}

	fmt.Println("\nmicro-level event analysis:")
	fmt.Println(res.Report)

	if len(doc.Assertions) > 0 {
		report := scenario.Evaluate(doc.Assertions, res.Outcome())
		fmt.Println("assertions:")
		fmt.Println(report)
		if !report.Pass() {
			os.Exit(1)
		}
	}
}

// printSpark prints one digit per second: the second's peak utilization in
// tenths.
func printSpark(label string, s *metrics.Series) {
	perSecond := int(time.Second / s.Interval)
	var b strings.Builder
	for i := 0; i+perSecond <= len(s.Values); i += perSecond {
		peak := 0.0
		for _, v := range s.Values[i : i+perSecond] {
			if v > peak {
				peak = v
			}
		}
		d := int(peak * 9.99)
		if d > 9 {
			d = 9
		}
		b.WriteByte(byte('0' + d))
	}
	fmt.Printf("  %s %s\n", label, b.String())
}

// printQueue prints per-second queue maxima with the admission bound.
func printQueue(tier string, s *metrics.Series, sys interface{ TierNames() []string }) {
	perSecond := int(time.Second / s.Interval)
	var vals []int
	for i := 0; i+perSecond <= len(s.Values); i += perSecond {
		peak := 0.0
		for _, v := range s.Values[i : i+perSecond] {
			if v > peak {
				peak = v
			}
		}
		vals = append(vals, int(peak))
	}
	var b strings.Builder
	for _, v := range vals {
		switch {
		case v >= 250:
			b.WriteByte('#')
		case v >= 100:
			b.WriteByte('+')
		case v >= 20:
			b.WriteByte('-')
		default:
			b.WriteByte('.')
		}
	}
	peak := int(s.Max())
	fmt.Printf("  %-14s %s (peak %d)\n", tier, b.String(), peak)
}
