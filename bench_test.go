package ctqosim

// One benchmark per table/figure of the paper's evaluation, plus ablation
// benches for the design choices called out in DESIGN.md. Each benchmark
// runs the figure's scenario (shortened to keep -bench wall time sane),
// reports the headline quantities as custom metrics, and logs the same
// rows the paper reports.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"ctqosim/internal/core"
	"ctqosim/internal/ntier"
	"ctqosim/internal/simnet"
)

// benchDuration shortens scenarios for benchmarking while spanning several
// millibottleneck periods.
const benchDuration = 45 * time.Second

func runScenario(b *testing.B, cfg core.Config) *core.Result {
	b.Helper()
	cfg.Duration = benchDuration
	res, err := core.New(cfg).Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// reportCommon publishes the per-run headline metrics.
func reportCommon(b *testing.B, res *core.Result) {
	b.ReportMetric(res.Throughput, "req/s")
	b.ReportMetric(float64(res.VLRTCount), "vlrt/run")
	b.ReportMetric(float64(res.TotalDrops), "drops/run")
}

func benchFigure1(b *testing.B, clients int, paperTput float64, paperUtil int) {
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = runScenario(b, core.Figure1Config(clients))
	}
	reportCommon(b, res)
	name, util := res.HighestMeanUtil()
	b.Logf("paper: %0.f req/s at %d%% CPU; multi-modal peaks near 0/3/6/9s", paperTput, paperUtil)
	b.Logf("measured: %.0f req/s at %.0f%% CPU (%s); clusters at %v s",
		res.Throughput, util*100, name, res.Histogram().ModeClusters(0.0005))
	h := res.Histogram()
	for sec := 0; sec <= 9; sec += 3 {
		var count int64
		for bin := sec * 10; bin < (sec+1)*10 && bin <= h.Bins(); bin++ {
			count += h.Count(bin)
		}
		b.Logf("  frequency near %ds: %d", sec, count)
	}
}

func BenchmarkFigure1_WL4000(b *testing.B) { benchFigure1(b, 4000, 572, 43) }
func BenchmarkFigure1_WL7000(b *testing.B) { benchFigure1(b, 7000, 990, 75) }
func BenchmarkFigure1_WL8000(b *testing.B) { benchFigure1(b, 8000, 1103, 85) }

// benchCTQO runs a CTQO scenario and logs the drop attribution rows of the
// figure's panel (c).
func benchCTQO(b *testing.B, cfg core.Config, paper string) {
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = runScenario(b, cfg)
	}
	reportCommon(b, res)
	b.Logf("paper: %s", paper)
	for _, tier := range res.System.TierNames() {
		b.Logf("measured: %-16s drops=%-6d peakQueue=%.0f",
			tier, res.DropsPerServer[tier], res.QueueSeries(tier).Max())
	}
	if res.Report != nil {
		for _, ep := range res.Report.CTQOEpisodes() {
			b.Logf("  %v in %s (%v): drops %v", ep.Direction, ep.Bottleneck.VM,
				ep.Bottleneck.Duration().Round(50*time.Millisecond), ep.Drops)
		}
	}
}

func BenchmarkFigure3_UpstreamCTQO(b *testing.B) {
	benchCTQO(b, core.Figure3Config(),
		"Tomcat millibottlenecks; Apache queue exceeds 278 (428 after spare); drops+VLRT at Apache")
}

func BenchmarkFigure5_LogFlush(b *testing.B) {
	benchCTQO(b, core.Figure5Config(),
		"MySQL I/O stalls every 30s; chain MySQL->Tomcat->Apache; drops at Apache")
}

func BenchmarkFigure7_NX1(b *testing.B) {
	benchCTQO(b, core.Figure7Config(),
		"no drops at Nginx; downstream CTQO drops at Tomcat (MaxSysQDepth 293)")
}

func BenchmarkFigure8_NX2MySQLBottleneck(b *testing.B) {
	benchCTQO(b, core.Figure8Config(),
		"MySQL millibottleneck; downstream CTQO drops at MySQL (MaxSysQDepth 228)")
}

func BenchmarkFigure9_NX2BatchRelease(b *testing.B) {
	benchCTQO(b, core.Figure9Config(),
		"XTomcat millibottleneck; batch release overflows MySQL (228)")
}

func BenchmarkFigure10_NX3CPUBottleneck(b *testing.B) {
	benchCTQO(b, core.Figure10Config(),
		"same millibottleneck, all tiers async: no CTQO, no drops")
}

func BenchmarkFigure11_NX3IOBottleneck(b *testing.B) {
	benchCTQO(b, core.Figure11Config(),
		"XMySQL I/O stalls, all tiers async: no CTQO, no drops")
}

func BenchmarkNX1MySQLBottleneck(b *testing.B) {
	benchCTQO(b, core.NX1MySQLBottleneckConfig(),
		"(graphs omitted in the paper) MySQL millibottleneck under NX=1: upstream CTQO at Tomcat")
}

func BenchmarkAbstractClaim_AsyncAt83Percent(b *testing.B) {
	benchCTQO(b, core.AsyncHighUtilConfig(),
		"all-async system: no CTQO or drops at utilization as high as 83%")
}

func BenchmarkFigure12_ThroughputVsConcurrency(b *testing.B) {
	var rows []core.ThroughputPoint
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.RunFigure12(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("paper: sync(2000 threads) 1159->374 req/s over concurrency 100->1600; async flat and higher")
	for _, p := range rows {
		b.Logf("measured: concurrency %-5d sync %-6.0f async %.0f", p.Concurrency, p.Sync, p.Async)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Sync, "sync-req/s@1600")
	b.ReportMetric(last.Async, "async-req/s@1600")
}

// --- Ablations: the design choices DESIGN.md calls out -------------------
//
// Each ablation variant replicates its scenario benchReplications times per
// benchmark iteration through the Runner worker pool, so the reported
// metrics are replication means with a 95% CI half-width — at parallel
// wall-clock cost rather than serial N× (on a multi-core machine the CI is
// nearly free). A single representative run happens outside the timed
// region to feed the qualitative log lines.

// benchReplications is the per-variant replication count: small enough to
// keep -bench wall time sane, enough for a Student's-t interval.
const benchReplications = 3

// runAblation runs one representative replication outside the timed region
// (for qualitative logs), then replicates the scenario across the Runner
// pool inside the timed loop and reports mean ± CI metrics.
func runAblation(b *testing.B, cfg core.Config) *core.Result {
	b.Helper()
	cfg.Duration = benchDuration
	res, err := core.New(cfg).Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var stats core.ReplicationStats
	for i := 0; i < b.N; i++ {
		stats, err = core.NewRunner(0).Replicate(cfg, benchReplications)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(stats.Throughput.Mean, "req/s")
	b.ReportMetric(stats.Throughput.HalfWidth, "req/s±")
	b.ReportMetric(stats.VLRT.Mean, "vlrt/run")
	b.ReportMetric(stats.VLRT.HalfWidth, "vlrt±")
	b.ReportMetric(stats.Drops.Mean, "drops/run")
	b.ReportMetric(stats.Drops.HalfWidth, "drops±")
	b.Logf("replicated ×%d (seeds %v): p99 %v ms", stats.Throughput.N, stats.Seeds, stats.P99Millis)
	return res
}

// BenchmarkAblationRetransmitTimer shows the retransmission timer places
// the histogram clusters: a 1s RTO moves them to 1/2/3s; the exponential
// variant spreads them to 3/9/21s.
func BenchmarkAblationRetransmitTimer(b *testing.B) {
	variants := []struct {
		name    string
		rto     time.Duration
		backoff bool
	}{
		{name: "RTO=3s (paper kernel)"},
		{name: "RTO=1s", rto: time.Second},
		{name: "RTO=3s exponential", backoff: true},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := core.Figure1Config(7000)
			cfg.Trace = false
			cfg.RTO = v.rto
			cfg.Backoff = v.backoff
			res := runAblation(b, cfg)
			b.Logf("clusters at %v s", res.Histogram().ModeClusters(0.0005))
		})
	}
}

// BenchmarkAblationBacklog moves the overflow threshold with the TCP
// accept-queue size, per the MaxSysQDepth arithmetic.
func BenchmarkAblationBacklog(b *testing.B) {
	for _, backlog := range []int{64, 128, 512} {
		backlog := backlog
		b.Run(fmt.Sprintf("backlog=%d", backlog), func(b *testing.B) {
			cfg := core.Figure3Config()
			cfg.Trace = false
			cfg.Tweak = func(spec *ntier.SystemSpec) {
				spec.Web.Backlog = backlog
			}
			res := runAblation(b, cfg)
			b.Logf("MaxSysQDepth(web)=%d drops=%d", 150+backlog, res.TotalDrops)
		})
	}
}

// BenchmarkAblationThreadPool is the "RPC purist" fix of Section V-E:
// larger pools postpone the CTQO drops but, with the thread-overhead model
// enabled, pay for it in throughput.
func BenchmarkAblationThreadPool(b *testing.B) {
	for _, threads := range []int{150, 600, 2000} {
		threads := threads
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			cfg := core.Figure3Config()
			cfg.Trace = false
			cfg.ThreadOverride = threads
			cfg.OverheadPerThread = core.Figure12Overhead
			res := runAblation(b, cfg)
			b.Logf("threads=%d drops=%d throughput=%.0f", threads, res.TotalDrops, res.Throughput)
		})
	}
}

// BenchmarkAblationBurstLength sweeps the millibottleneck length across
// the overflow boundary the Section III model predicts.
func BenchmarkAblationBurstLength(b *testing.B) {
	for _, size := range []int{150, 300, 450, 600} {
		size := size
		b.Run(fmt.Sprintf("burstCPU=%dms", size), func(b *testing.B) {
			cfg := core.Figure3Config()
			cfg.Trace = false
			cfg.Consolidation = &core.ConsolidationSpec{
				Tier:      core.TierApp,
				BatchSize: size, // 1ms of DB demand each → ~size ms of freeze
			}
			res := runAblation(b, cfg)
			p := core.PredictOverflow(res.Throughput,
				time.Duration(size)*time.Millisecond, 278)
			b.Logf("model predicts %d drops/burst; measured %d drops over %d bursts",
				p.Dropped, res.TotalDrops, int(benchDuration/(15*time.Second))+1)
		})
	}
}

// BenchmarkAblationConnPool moves where queuing accumulates between the
// app and database tiers.
func BenchmarkAblationConnPool(b *testing.B) {
	for _, pool := range []int{25, 50, 200} {
		pool := pool
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			cfg := core.Figure3Config()
			cfg.Trace = false
			cfg.Tweak = func(spec *ntier.SystemSpec) {
				spec.DBConnPool = pool
			}
			res := runAblation(b, cfg)
			b.Logf("pool=%d peak MySQL queue=%.0f peak Tomcat queue=%.0f",
				pool, res.QueueSeries("steady-mysql").Max(),
				res.QueueSeries("steady-tomcat").Max())
		})
	}
}

// BenchmarkKernelEventThroughput measures the raw simulation engine: how
// fast the full NX=0 system simulates relative to real time.
func BenchmarkKernelEventThroughput(b *testing.B) {
	var res *core.Result
	start := time.Now()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{Name: "kernel-bench", NX: ntier.NX0, Clients: 7000}
		res = runScenario(b, cfg)
	}
	wall := time.Since(start).Seconds() / float64(b.N)
	simSeconds := res.End.Seconds()
	b.ReportMetric(simSeconds/wall, "sim-s/wall-s")
	b.ReportMetric(res.Throughput, "req/s")
}

// BenchmarkAblationKernelProfile contrasts the paper's RHEL6 kernel with a
// modern one: the larger backlog absorbs the burst instead of dropping it
// (no 3s cluster), at the price of deep-queue delay — the bufferbloat
// trade-off Section V-E cites for why the TCP buffer is considered fixed.
func BenchmarkAblationKernelProfile(b *testing.B) {
	profiles := []simnet.KernelProfile{simnet.RHEL6, simnet.ModernLinux}
	for i := range profiles {
		p := profiles[i]
		b.Run(p.Name, func(b *testing.B) {
			cfg := core.Figure3Config()
			cfg.Trace = false
			cfg.Kernel = &p
			res := runAblation(b, cfg)
			b.Logf("%s: drops=%d p99=%v p100=%v clusters=%v",
				p.Name, res.TotalDrops,
				res.Recorder.Percentile(0.99).Round(time.Millisecond),
				res.Recorder.Percentile(1).Round(time.Millisecond),
				res.Histogram().ModeClusters(0.0005))
		})
	}
}

// BenchmarkAblationGCPause contrasts the GC millibottleneck source under
// the synchronous and asynchronous architectures.
func BenchmarkAblationGCPause(b *testing.B) {
	for _, level := range []ntier.NX{ntier.NX0, ntier.NX3} {
		level := level
		b.Run(level.String(), func(b *testing.B) {
			cfg := core.GCMillibottleneckConfig(level)
			cfg.Trace = false
			runAblation(b, cfg)
		})
	}
}

// BenchmarkAblationLoadShedding contrasts fail-fast queue shedding with
// the default drop-and-retransmit behaviour: shedding converts 3-second
// retransmission outliers into immediate failures — availability traded
// for latency.
func BenchmarkAblationLoadShedding(b *testing.B) {
	variants := []struct {
		name    string
		timeout time.Duration
	}{
		{name: "retransmit (paper)"},
		{name: "shed after 250ms", timeout: 250 * time.Millisecond},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := core.Figure3Config()
			cfg.Trace = false
			if v.timeout > 0 {
				cfg.Tweak = func(spec *ntier.SystemSpec) {
					spec.Web.QueueTimeout = v.timeout
				}
			}
			res := runAblation(b, cfg)
			b.ReportMetric(float64(res.Recorder.FailedCount()), "failed/run")
			b.Logf("%s: vlrt=%d failed=%d p99.9=%v", v.name,
				res.VLRTCount, res.Recorder.FailedCount(),
				res.Recorder.Percentile(0.999).Round(time.Millisecond))
		})
	}
}
