package ctqosim

// TestHotpathAllocsAgree is the cross-check at the heart of DESIGN.md §12:
// the static verdict (ctqo-lint's hotpath analyzer proves every
// //lint:hotpath function allocation-free, given the //lint:allow
// measurement boundaries) must agree with the dynamic one
// (testing.AllocsPerRun measures zero allocations per steady-state
// operation). The test scans the four kernel packages for //lint:hotpath
// annotations, requires every annotated function to appear in the
// exerciser table below, re-runs the performance analyzers over those
// packages to pin the static half, and then drives each exerciser group
// through a warmed steady state asserting zero allocations per run.
//
// Exercisers are shared across annotations: one event-loop drive covers
// the whole des kernel (Post reaches take, Step reaches release, heap
// operations reach the eventHeap methods), one clean delivery and one
// retransmission drive cover the simnet path, the nil tracer covers the
// span path, and a warmed bounded Recorder covers the metrics path. The
// table keys make the coverage explicit so adding a //lint:hotpath
// annotation without deciding how to measure it fails this test.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/lint"
	"ctqosim/internal/lint/analysis"
	"ctqosim/internal/lint/analyzers"
	"ctqosim/internal/lint/loader"
	"ctqosim/internal/metrics"
	"ctqosim/internal/simnet"
	"ctqosim/internal/span"
	"ctqosim/internal/workload"
)

// hotpathKernelDirs are the packages whose //lint:hotpath annotations the
// contract covers: the DES kernel, the simnet delivery path, the HDR
// record path and the disabled-tracer path.
var hotpathKernelDirs = []string{
	"internal/des",
	"internal/simnet",
	"internal/span",
	"internal/metrics",
}

// hotpathExercisers maps every annotated function (package.Receiver.Name
// or package.Name) to the exerciser group that drives it dynamically.
var hotpathExercisers = map[string]string{
	// DES kernel: Post/Run drive the whole pooled near-term scheduling
	// loop (enqueue, heap sifts, settle, fire); far 3 s/6 s/20 min posts
	// drive the timer-wheel path through placement, promotion, cascade
	// and the node pool.
	"des.Simulator.Post":    "des-event-loop",
	"des.Simulator.PostAt":  "des-event-loop",
	"des.Simulator.take":    "des-event-loop",
	"des.Simulator.release": "des-event-loop",
	"des.Simulator.enqueue": "des-event-loop",
	"des.Simulator.settle":  "des-event-loop",
	"des.Simulator.fire":    "des-event-loop",
	"des.Simulator.Step":    "des-event-loop",
	"des.Simulator.Run":     "des-event-loop",
	"des.Simulator.Cancel":  "des-cancel",
	"des.heapNode.before":   "des-event-loop",
	"des.heap4.push":        "des-event-loop",
	"des.heap4.pop":         "des-event-loop",
	"des.heap4.siftDown":    "des-event-loop",
	"des.wheel.resident":    "des-wheel",
	"des.wheel.takeNode":    "des-wheel",
	"des.wheel.putNode":     "des-wheel",
	"des.wheel.place":       "des-wheel",
	"des.wheel.promote":     "des-wheel",
	"des.wheel.cascades":    "des-wheel",
	"des.wheel.spill":       "des-wheel",

	// simnet: clean delivery covers Send/deliverCall/attempt/hop; a
	// dropped-then-delivered call covers the retransmission machinery.
	"simnet.Transport.Send":        "simnet-clean-delivery",
	"simnet.deliverCall":           "simnet-clean-delivery",
	"simnet.Transport.attempt":     "simnet-clean-delivery",
	"simnet.Transport.hop":         "simnet-clean-delivery",
	"simnet.retransmitAttempt":     "simnet-retransmission",
	"simnet.Transport.rto":         "simnet-retransmission",
	"simnet.Transport.maxAttempts": "simnet-retransmission",
	"simnet.Transport.timeout":     "simnet-retransmission",

	// span: the contract prices the disabled-tracer path, which is the
	// one instrumented code pays when tracing is off.
	"span.Trace.Enabled":       "span-disabled-tracer",
	"span.Trace.Start":         "span-disabled-tracer",
	"span.Trace.End":           "span-disabled-tracer",
	"span.Trace.Annotate":      "span-disabled-tracer",
	"span.Tracer.StartRequest": "span-disabled-tracer",
	"span.Tracer.Finish":       "span-disabled-tracer",

	// metrics: a spilled HDR histogram and a warmed bounded Recorder.
	"metrics.HDRHistogram.Observe":   "metrics-hdr-record",
	"metrics.HDRHistogram.ObserveN":  "metrics-hdr-record",
	"metrics.HDRHistogram.bucketIdx": "metrics-hdr-record",
	"metrics.Recorder.Record":        "metrics-bounded-record",
}

// scanHotpathAnnotations parses the kernel packages' sources and returns
// the qualified name of every function carrying a //lint:hotpath
// directive in its doc comment.
func scanHotpathAnnotations(t *testing.T) map[string]bool {
	t.Helper()
	keys := make(map[string]bool)
	fset := token.NewFileSet()
	for _, dir := range hotpathKernelDirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s/%s: %v", dir, name, err)
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.HasPrefix(c.Text, "//lint:hotpath") {
						keys[f.Name.Name+"."+funcKey(fd)] = true
					}
				}
			}
		}
	}
	return keys
}

// funcKey renders a declaration as Receiver.Name (or Name for package
// functions), matching the hotpathExercisers key form.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		recv := fd.Recv.List[0].Type
		if star, ok := recv.(*ast.StarExpr); ok {
			recv = star.X
		}
		if id, ok := recv.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// runPerfLint runs the performance-analysis family (allocs, hotpath,
// deferloop) over the kernel packages and returns the findings. It
// mirrors cmd/ctqo-lint: the dependency closure is analyzed in order so
// cross-package AllocsFacts propagate, but only kernel-package findings
// are returned.
func runPerfLint(t *testing.T) []lint.Finding {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modDir, modPath, err := loader.FindModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	l := loader.New(modPath, modDir, "")
	patterns := make([]string, len(hotpathKernelDirs))
	for i, dir := range hotpathKernelDirs {
		patterns[i] = "./" + dir
	}
	paths, err := l.Expand(patterns)
	if err != nil {
		t.Fatal(err)
	}
	order, err := l.Closure(paths)
	if err != nil {
		t.Fatal(err)
	}
	requested := make(map[string]bool, len(paths))
	for _, p := range paths {
		requested[p] = true
	}
	active := []*analysis.Analyzer{analyzers.Allocs, analyzers.Hotpath, analyzers.Deferloop}
	facts := analysis.NewStore()
	var findings []lint.Finding
	for _, path := range order {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		fs, err := lint.RunPackage(l, pkg, active, modDir, facts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if requested[path] {
			findings = append(findings, fs...)
		}
	}
	lint.Sort(findings)
	return findings
}

// contractBump is the pooled-event callback of the des exerciser: a
// package function taking pointer-shaped arguments, as Post requires.
func contractBump(a0, a1 any) { *a0.(*int)++ }

// acceptAll is the always-admitting receiver of the clean-delivery
// exerciser.
type acceptAll struct{}

func (acceptAll) Name() string                { return "ok" }
func (acceptAll) TryAccept(*simnet.Call) bool { return true }

// dropOnce refuses one attempt when armed, then admits; arming it per run
// drives exactly one retransmission cycle.
type dropOnce struct{ armed bool }

func (*dropOnce) Name() string { return "flaky" }
func (d *dropOnce) TryAccept(*simnet.Call) bool {
	if d.armed {
		d.armed = false
		return false
	}
	return true
}

func TestHotpathAllocsAgree(t *testing.T) {
	// Static half: annotation set matches the exerciser table, and the
	// analyzers prove every annotated function clean.
	annotated := scanHotpathAnnotations(t)
	for key := range annotated {
		if _, ok := hotpathExercisers[key]; !ok {
			t.Errorf("%s is //lint:hotpath-annotated but has no exerciser: add it to hotpathExercisers with a dynamic drive", key)
		}
	}
	for key := range hotpathExercisers {
		if !annotated[key] {
			t.Errorf("hotpathExercisers lists %s but no //lint:hotpath annotation exists: stale table entry", key)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	if findings := runPerfLint(t); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("static finding: %s", f.String())
		}
		t.Fatal("kernel packages are not statically allocation-clean")
	}

	// Dynamic half: each exerciser group warms its steady state, then
	// must measure zero allocations per run.
	groups := map[string]func() float64{
		"des-event-loop": func() float64 {
			sim := des.NewSimulator(1)
			n := 0
			for i := 0; i < 64; i++ { // warm the event pool
				sim.Post(time.Duration(i), contractBump, &n, nil)
			}
			sim.Run(sim.Now() + time.Second)
			return testing.AllocsPerRun(200, func() {
				for i := 0; i < 8; i++ {
					sim.Post(time.Duration(i)*time.Microsecond, contractBump, &n, nil)
				}
				sim.Run(sim.Now() + time.Millisecond)
			})
		},
		"des-wheel": func() float64 {
			// Posts at 5 ms (wheel level 0), 3 s (level 1, the RTO
			// shape), 30 s (level 2) and 20 min (overflow) exercise
			// every wheel container; Run then drags the promotion
			// horizon across them, driving promote, both spill levels
			// and the overflow rescue. One warm pass grows the node
			// pool and the heap's backing array.
			sim := des.NewSimulator(1)
			n := 0
			drive := func() {
				for i := 0; i < 8; i++ {
					sim.Post(5*time.Millisecond+time.Duration(i)*time.Microsecond, contractBump, &n, nil)
					sim.Post(3*time.Second+time.Duration(i)*time.Millisecond, contractBump, &n, nil)
					sim.Post(30*time.Second+time.Duration(i)*time.Millisecond, contractBump, &n, nil)
					sim.Post(20*time.Minute+time.Duration(i)*time.Millisecond, contractBump, &n, nil)
				}
				sim.Run(sim.Now() + 21*time.Minute)
			}
			drive()
			return testing.AllocsPerRun(200, drive)
		},
		"des-cancel": func() float64 {
			sim := des.NewSimulator(1)
			ev := sim.Schedule(time.Hour, func() {})
			sim.Cancel(ev)
			return testing.AllocsPerRun(200, func() {
				sim.Cancel(ev) // idempotent re-cancel, the steady-state shape
			})
		},
		"simnet-clean-delivery": func() float64 {
			sim := des.NewSimulator(1)
			tr := simnet.NewTransport(sim)
			tr.Latency = time.Microsecond // force the pooled deliverCall hop
			call := &simnet.Call{}
			tr.Send(acceptAll{}, call) // warm the per-destination HopStats
			sim.Run(sim.Now() + time.Second)
			return testing.AllocsPerRun(200, func() {
				call.Attempts = 0
				tr.Send(acceptAll{}, call)
				sim.Run(sim.Now() + time.Second)
			})
		},
		"simnet-retransmission": func() float64 {
			sim := des.NewSimulator(1)
			tr := simnet.NewTransport(sim)
			dst := &dropOnce{}
			call := &simnet.Call{}
			dst.armed = true // warm: one drop grows DroppedBy's backing array
			tr.Send(dst, call)
			sim.Run(sim.Now() + time.Minute)
			return testing.AllocsPerRun(200, func() {
				call.Attempts = 0
				call.DroppedBy = call.DroppedBy[:0]
				dst.armed = true
				tr.Send(dst, call)
				sim.Run(sim.Now() + time.Minute)
			})
		},
		"span-disabled-tracer": func() float64 {
			var tracer *span.Tracer
			return testing.AllocsPerRun(200, func() {
				trace := tracer.StartRequest(1, "static")
				if trace.Enabled() {
					panic("nil tracer handed out an enabled trace")
				}
				id := trace.Start(span.KindService, "web", span.RootID)
				trace.Annotate(id, "noop")
				trace.End(id)
				tracer.Finish(trace)
			})
		},
		"metrics-hdr-record": func() float64 {
			// ExactCap -1 disables exact mode, so the histogram starts in
			// its spilled (steady-state) form.
			h := metrics.NewHDRHistogram(metrics.HDRConfig{ExactCap: -1})
			h.Observe(time.Millisecond)
			return testing.AllocsPerRun(200, func() {
				h.Observe(17 * time.Millisecond)
				h.ObserveN(3*time.Second, 2)
			})
		},
		"metrics-bounded-record": func() float64 {
			r := metrics.NewRecorder()
			r.Retention = metrics.RetainBounded
			r.HDR = metrics.HDRConfig{ExactCap: -1}
			r.SeriesWindow = 50 * time.Millisecond
			fast := &workload.Request{
				Class:     workload.ClassStatic,
				Submitted: time.Second,
				Completed: time.Second + 40*time.Millisecond,
			}
			vlrt := &workload.Request{
				Class:     workload.ClassStatic,
				Submitted: time.Second,
				Completed: 5 * time.Second,
				Drops:     []string{"db"},
			}
			r.Record(fast) // warm: aggregates, class accumulator, VLRT window
			r.Record(vlrt)
			return testing.AllocsPerRun(200, func() {
				r.Record(fast)
				r.Record(vlrt)
			})
		},
	}
	for key, group := range hotpathExercisers {
		if _, ok := groups[group]; !ok {
			t.Fatalf("%s names exerciser group %q, which has no drive", key, group)
		}
	}
	for name, drive := range groups {
		name, drive := name, drive
		t.Run(name, func(t *testing.T) {
			if allocs := drive(); allocs != 0 {
				t.Errorf("%s: %.1f allocs/run, want 0 — the static verdict and the dynamic measurement disagree", name, allocs)
			}
		})
	}
}
