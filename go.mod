module ctqosim

go 1.22
