// Package ctqosim reproduces "A Study of Long-Tail Latency in n-Tier
// Systems: RPC vs. Asynchronous Invocations" (Wang, Lai, Kanemasa, Zhang,
// Pu — ICDCS 2017) as a deterministic discrete-event simulation written in
// pure Go.
//
// The paper's subject is Cross-Tier Queue Overflow (CTQO): sub-second
// resource saturations (millibottlenecks) in one tier of an RPC-coupled
// n-tier system fill queues across tiers until some server's
// MaxSysQDepth — thread pool plus TCP backlog — overflows, packets drop,
// and 3-second TCP retransmissions turn millisecond requests into
// multi-second outliers at CPU utilizations as low as 43%. Replacing the
// synchronous servers with asynchronous, event-driven counterparts removes
// the coupling; with all tiers asynchronous the drops disappear entirely.
//
// The library lives under internal/: the des simulation kernel, the cpu,
// simnet, server, workload and fault substrates, the metrics and trace
// measurement layers, the ntier topology builder, and the core experiment
// facade. The cmd/ tools and examples/ programs regenerate every figure of
// the paper's evaluation; bench_test.go holds one benchmark per figure
// plus ablations. See DESIGN.md for the full inventory and EXPERIMENTS.md
// for paper-vs-measured results.
package ctqosim
