// Package plot renders the reproduction's figures as static SVG — line
// timelines (CPU utilization, queue depths with MaxSysQDepth reference
// lines), per-window bar charts (VLRT counts) and the semi-log
// response-time histogram of Fig. 1.
//
// Design rules follow a validated chart style: series hues are assigned in
// a fixed order from a colorblind-checked palette (worst adjacent CVD
// ΔE 37.7 on the light surface), every multi-series chart carries a legend
// plus direct end-of-line labels, the grid is recessive, there is exactly
// one y axis, and text is always ink-colored — never the series hue. The
// companion CSVs written next to each SVG are the table view.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// The validated light-mode palette, in fixed assignment order. Color
// follows the entity: a chart's first declared series is always slot 0,
// regardless of how many series end up drawn.
var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#e34948", // red
	"#4a3aa7", // violet
	"#e87ba4", // magenta
	"#eb6834", // orange
	"#008300", // green
}

// Ink and surface tokens.
const (
	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridColor     = "#e8e8e6"
	axisColor     = "#c9c8c4"
)

// Series is one plotted data set.
type Series struct {
	// Name labels the series in the legend and the direct label.
	Name string
	// XS and YS are the data points; lengths must match.
	XS, YS []float64
}

// RefLine is a horizontal dashed reference (e.g. MaxSysQDepth = 278).
type RefLine struct {
	// Label annotates the line.
	Label string
	// Y is the reference value.
	Y float64
}

// Kind selects the mark.
type Kind int

// Chart kinds.
const (
	// Lines draws 2px polylines (timelines).
	Lines Kind = iota + 1
	// Bars draws one bar per point (frequency/count charts).
	Bars
)

// Chart is a single-axis figure.
type Chart struct {
	// Title is the headline; XLabel/YLabel name the axes.
	Title, XLabel, YLabel string
	// Width and Height are the SVG dimensions; zero defaults to 800×320.
	Width, Height int
	// Kind selects lines or bars; zero defaults to Lines.
	Kind Kind
	// LogY switches the y axis to log10 (the Fig. 1 semi-log form). Values
	// ≤ 0 are clamped to the axis floor.
	LogY bool
	// YMax, if positive, pins the y-axis top instead of auto-scaling.
	YMax float64

	series []Series
	refs   []RefLine
}

// Add appends a series; the order of calls fixes hue assignment.
func (c *Chart) Add(s Series) *Chart {
	c.series = append(c.series, s)
	return c
}

// Ref adds a horizontal reference line.
func (c *Chart) Ref(label string, y float64) *Chart {
	c.refs = append(c.refs, RefLine{Label: label, Y: y})
	return c
}

// geometry constants
const (
	marginLeft   = 64
	marginRight  = 140 // room for direct labels
	marginTop    = 44
	marginBottom = 48
)

// SVG renders the chart.
func (c *Chart) SVG() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 800
	}
	if height <= 0 {
		height = 320
	}
	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)

	xMin, xMax, yMin, yMax := c.bounds()
	xOf := func(x float64) float64 {
		if xMax == xMin {
			return marginLeft
		}
		return marginLeft + (x-xMin)/(xMax-xMin)*plotW
	}
	yOf := func(y float64) float64 {
		if c.LogY {
			y = math.Log10(math.Max(y, yMin))
			lo, hi := math.Log10(yMin), math.Log10(yMax)
			return marginTop + plotH - (y-lo)/(hi-lo)*plotH
		}
		if yMax == yMin {
			return marginTop + plotH
		}
		return marginTop + plotH - (y-yMin)/(yMax-yMin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`,
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, width, height, surface)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" fill="%s">%s</text>`,
		marginLeft, textPrimary, escape(c.Title))

	c.drawGridAndAxes(&b, width, height, xMin, xMax, yMin, yMax, xOf, yOf)
	c.drawRefs(&b, width, yOf)
	c.drawSeries(&b, xOf, yOf, plotW)
	c.drawLegend(&b, width)

	b.WriteString(`</svg>`)
	return b.String()
}

// bounds computes the data extent across all series and reference lines.
func (c *Chart) bounds() (xMin, xMax, yMin, yMax float64) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.XS {
			xMin = math.Min(xMin, s.XS[i])
			xMax = math.Max(xMax, s.XS[i])
		}
		for _, y := range s.YS {
			yMin = math.Min(yMin, y)
			yMax = math.Max(yMax, y)
		}
	}
	for _, r := range c.refs {
		yMax = math.Max(yMax, r.Y)
	}
	if math.IsInf(xMin, 1) {
		xMin, xMax = 0, 1
	}
	if math.IsInf(yMin, 1) {
		yMin, yMax = 0, 1
	}
	if c.LogY {
		// Floor at 0.5 so zero counts sit on the axis; top at the next
		// power of ten.
		yMin = 0.5
		yMax = math.Pow(10, math.Ceil(math.Log10(math.Max(yMax, 1))))
	} else {
		yMin = math.Min(yMin, 0)
		if c.YMax > 0 {
			yMax = c.YMax
		} else {
			yMax = niceCeil(yMax)
		}
		if yMax <= yMin {
			yMax = yMin + 1
		}
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}
	return xMin, xMax, yMin, yMax
}

func (c *Chart) drawGridAndAxes(b *strings.Builder, width, height int,
	xMin, xMax, yMin, yMax float64, xOf, yOf func(float64) float64) {

	// Horizontal grid at y ticks; labels on the left.
	for _, tick := range c.yTicks(yMin, yMax) {
		y := yOf(tick)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			marginLeft, y, width-marginRight, y, gridColor)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`,
			marginLeft-8, y+4, textSecondary, formatTick(tick))
	}
	// X ticks.
	for _, tick := range niceTicks(xMin, xMax, 8) {
		x := xOf(tick)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`,
			x, height-marginBottom, x, height-marginBottom+4, axisColor)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`,
			x, height-marginBottom+18, textSecondary, formatTick(tick))
	}
	// Axis lines.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`,
		marginLeft, height-marginBottom, width-marginRight, height-marginBottom, axisColor)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`,
		marginLeft, marginTop, marginLeft, height-marginBottom, axisColor)
	// Axis labels.
	if c.XLabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" fill="%s" text-anchor="middle">%s</text>`,
			marginLeft+int(float64(width-marginLeft-marginRight)/2), height-10,
			textSecondary, escape(c.XLabel))
	}
	if c.YLabel != "" {
		midY := marginTop + (height-marginTop-marginBottom)/2
		fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
			midY, textSecondary, midY, escape(c.YLabel))
	}
}

func (c *Chart) drawRefs(b *strings.Builder, width int, yOf func(float64) float64) {
	for _, r := range c.refs {
		y := yOf(r.Y)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1.5" stroke-dasharray="6 4"/>`,
			marginLeft, y, width-marginRight, y, textSecondary)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" fill="%s">%s</text>`,
			width-marginRight+6, y+4, textSecondary, escape(r.Label))
	}
}

func (c *Chart) drawSeries(b *strings.Builder, xOf, yOf func(float64) float64, plotW float64) {
	kind := c.Kind
	if kind == 0 {
		kind = Lines
	}
	for i, s := range c.series {
		color := seriesColors[i%len(seriesColors)]
		if len(s.XS) == 0 {
			continue
		}
		switch kind {
		case Bars:
			c.drawBars(b, s, color, xOf, yOf, plotW)
		case Lines:
			fallthrough
		default:
			c.drawLine(b, s, color, xOf, yOf)
		}
		// Direct label at the last point (the relief rule for low-contrast
		// hues): ink text beside a colored swatch dot.
		lastX, lastY := xOf(s.XS[len(s.XS)-1]), yOf(s.YS[len(s.YS)-1])
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, lastX, lastY, color)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`,
			lastX+6, lastY+4, textPrimary, escape(s.Name))
	}
}

func (c *Chart) drawLine(b *strings.Builder, s Series, color string, xOf, yOf func(float64) float64) {
	var pts strings.Builder
	for i := range s.XS {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", xOf(s.XS[i]), yOf(s.YS[i]))
	}
	fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`,
		pts.String(), color)
}

func (c *Chart) drawBars(b *strings.Builder, s Series, color string, xOf, yOf func(float64) float64, plotW float64) {
	// Bar width from point density, with a 2px surface gap.
	barW := plotW / math.Max(float64(len(s.XS)), 1)
	if barW > 14 {
		barW = 14
	}
	if barW < 1 {
		barW = 1
	}
	base := yOf(c.baseY())
	for i := range s.XS {
		if s.YS[i] <= c.baseY() {
			continue
		}
		x := xOf(s.XS[i]) - barW/2
		y := yOf(s.YS[i])
		h := base - y
		if h < 0.5 {
			h = 0.5
		}
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" rx="1" fill="%s" stroke="%s" stroke-width="1"/>`,
			x, y, math.Max(barW-2, 0.8), h, color, surface)
	}
}

// baseY is the bar baseline: 0 for linear charts, the log floor for
// semi-log.
func (c *Chart) baseY() float64 {
	if c.LogY {
		return 0.5
	}
	return 0
}

func (c *Chart) drawLegend(b *strings.Builder, width int) {
	if len(c.series) < 2 {
		return // a single series is named by the title
	}
	x := float64(width - marginRight + 6)
	y := float64(marginTop)
	for i, s := range c.series {
		color := seriesColors[i%len(seriesColors)]
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="10" height="10" rx="2" fill="%s"/>`,
			x, y-9, color)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`,
			x+14, y, textPrimary, escape(s.Name))
		y += 16
	}
}

// yTicks picks tick positions: powers of ten for log scale, a nice 1-2-5
// ladder otherwise.
func (c *Chart) yTicks(yMin, yMax float64) []float64 {
	if c.LogY {
		var out []float64
		top := int(math.Round(math.Log10(yMax)))
		for e := 0; e <= top; e++ {
			out = append(out, math.Pow(10, float64(e)))
		}
		return out
	}
	return niceTicks(yMin, yMax, 5)
}

// niceTicks returns ~n ticks on a 1-2-5 ladder covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 1 {
		return []float64{lo}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch {
	case rawStep/mag <= 1:
		step = mag
	case rawStep/mag <= 2:
		step = 2 * mag
	case rawStep/mag <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for tick := math.Ceil(lo/step) * step; tick <= hi+step/1e6; tick += step {
		out = append(out, tick)
	}
	return out
}

// niceCeil rounds up to a 1-2-5 ladder value.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.0fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SeriesColor exposes the fixed hue assignment for slot i (for callers
// that print matching console output).
func SeriesColor(i int) string {
	if i < 0 {
		i = 0
	}
	return seriesColors[i%len(seriesColors)]
}
