package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// WaterfallBar is one horizontal interval of a request waterfall: a span
// of a trace, placed on its lane with the category fixing its hue.
type WaterfallBar struct {
	// Lane is the row the bar is drawn on (e.g. "web", "app", "db").
	Lane string
	// Category selects the hue and the legend entry (e.g. "service",
	// "retransmit"). Bars with the same category share a color.
	Category string
	// Start and End are in seconds from the request's start.
	Start, End float64
	// Label, if non-empty, is drawn inside or beside the bar.
	Label string
	// Depth indents the bar slightly (nesting level within the lane), so
	// a service span and the downstream span it contains stay separable.
	Depth int
}

// Waterfall is a Gantt-style horizontal chart: one row per lane, time on
// the x axis, colored bars for intervals. It reuses the package palette
// and tokens so request waterfalls sit next to the timeline figures.
type Waterfall struct {
	// Title is the headline; XLabel names the time axis.
	Title, XLabel string
	// Width is the SVG width; zero defaults to 900. Height derives from
	// the number of lanes.
	Width int

	bars  []WaterfallBar
	lanes []string // first-appearance order
}

// Add appends a bar, registering its lane on first use.
func (w *Waterfall) Add(b WaterfallBar) *Waterfall {
	found := false
	for _, l := range w.lanes {
		if l == b.Lane {
			found = true
			break
		}
	}
	if !found {
		w.lanes = append(w.lanes, b.Lane)
	}
	w.bars = append(w.bars, b)
	return w
}

const (
	wfLaneHeight = 34
	wfBarHeight  = 18
	wfMarginTop  = 44
	wfMarginBot  = 40
	wfMarginLeft = 88
	wfMarginRt   = 150
)

// SVG renders the waterfall.
func (w *Waterfall) SVG() string {
	width := w.Width
	if width <= 0 {
		width = 900
	}
	height := wfMarginTop + wfMarginBot + wfLaneHeight*len(w.lanes)
	if len(w.lanes) == 0 {
		height = wfMarginTop + wfMarginBot + wfLaneHeight
	}
	plotW := float64(width - wfMarginLeft - wfMarginRt)

	xMax := 0.0
	for _, bar := range w.bars {
		xMax = math.Max(xMax, bar.End)
	}
	if xMax <= 0 {
		xMax = 1
	}
	xOf := func(x float64) float64 { return wfMarginLeft + x/xMax*plotW }
	laneY := make(map[string]int, len(w.lanes))
	for i, l := range w.lanes {
		laneY[l] = wfMarginTop + i*wfLaneHeight
	}
	categories := w.categoryColors()

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`,
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, width, height, surface)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" fill="%s">%s</text>`,
		wfMarginLeft, textPrimary, escape(w.Title))

	// Time grid and axis.
	for _, tick := range niceTicks(0, xMax, 8) {
		x := xOf(tick)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`,
			x, wfMarginTop-6, x, height-wfMarginBot, gridColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`,
			x, height-wfMarginBot+16, textSecondary, formatTick(tick))
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`,
		wfMarginLeft, height-wfMarginBot, width-wfMarginRt, height-wfMarginBot, axisColor)
	if w.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="%s" text-anchor="middle">%s</text>`,
			wfMarginLeft+int(plotW/2), height-8, textSecondary, escape(w.XLabel))
	}

	// Lane labels and separators.
	for _, lane := range w.lanes {
		y := laneY[lane]
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="%s" text-anchor="end">%s</text>`,
			wfMarginLeft-10, y+wfLaneHeight/2+4, textPrimary, escape(lane))
	}

	// Bars, drawn shallow-first so nested spans sit on top of their parents.
	ordered := make([]WaterfallBar, len(w.bars))
	copy(ordered, w.bars)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Depth < ordered[j].Depth })
	for _, bar := range ordered {
		x0, x1 := xOf(bar.Start), xOf(bar.End)
		bw := math.Max(x1-x0, 1.5)
		inset := float64(bar.Depth * 3)
		y := float64(laneY[bar.Lane]) + (wfLaneHeight-wfBarHeight)/2 + inset/2
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" rx="2" fill="%s" stroke="%s" stroke-width="0.8"/>`,
			x0, y, bw, wfBarHeight-inset, categories[bar.Category], surface)
		if bar.Label != "" && bw > 40 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s">%s</text>`,
				x0+4, y+wfBarHeight-inset-5, textPrimary, escape(bar.Label))
		}
	}

	// Legend: one entry per category, ink text beside a swatch.
	x := float64(width - wfMarginRt + 8)
	y := float64(wfMarginTop)
	for _, cat := range w.categoryOrder() {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" rx="2" fill="%s"/>`,
			x, y-9, categories[cat])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`,
			x+14, y, textPrimary, escape(cat))
		y += 16
	}

	b.WriteString(`</svg>`)
	return b.String()
}

// categoryOrder lists categories by first appearance.
func (w *Waterfall) categoryOrder() []string {
	var order []string
	seen := map[string]bool{}
	for _, bar := range w.bars {
		if !seen[bar.Category] {
			seen[bar.Category] = true
			order = append(order, bar.Category)
		}
	}
	return order
}

// categoryColors assigns palette slots by category first appearance.
func (w *Waterfall) categoryColors() map[string]string {
	out := map[string]string{}
	for i, cat := range w.categoryOrder() {
		out[cat] = SeriesColor(i)
	}
	return out
}
