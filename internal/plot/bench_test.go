package plot

import "testing"

func BenchmarkRenderTimeline(b *testing.B) {
	c := &Chart{Title: "bench", XLabel: "t", YLabel: "v"}
	xs := make([]float64, 1400) // a 70s run at 50ms sampling
	ys := make([]float64, 1400)
	for i := range xs {
		xs[i] = float64(i) * 0.05
		ys[i] = float64(i % 300)
	}
	for i := 0; i < 3; i++ {
		c.Add(Series{Name: "s", XS: xs, YS: ys})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.SVG()
	}
}
