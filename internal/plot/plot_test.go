package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func lineChart() *Chart {
	c := &Chart{Title: "CPU utilization", XLabel: "time [s]", YLabel: "util"}
	c.Add(Series{Name: "tomcat", XS: []float64{0, 1, 2, 3}, YS: []float64{0.7, 0.7, 1, 0.7}})
	c.Add(Series{Name: "mysql", XS: []float64{0, 1, 2, 3}, YS: []float64{0.1, 0.1, 0.9, 0.1}})
	return c
}

func TestSVGIsWellFormedXML(t *testing.T) {
	charts := []*Chart{
		lineChart(),
		func() *Chart {
			c := &Chart{Title: "hist", Kind: Bars, LogY: true}
			c.Add(Series{Name: "freq", XS: []float64{0, 1, 2, 3}, YS: []float64{100000, 0, 30, 5}})
			return c
		}(),
		{Title: "empty"},
	}
	for _, c := range charts {
		svg := c.SVG()
		dec := xml.NewDecoder(strings.NewReader(svg))
		for {
			_, err := dec.Token()
			if err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("chart %q produced invalid XML: %v\n%s", c.Title, err, svg)
			}
		}
	}
}

func TestSVGContainsSeriesAndLegend(t *testing.T) {
	svg := lineChart().SVG()
	for _, want := range []string{
		"polyline", "tomcat", "mysql", "CPU utilization",
		"#2a78d6", "#1baf7a", // fixed slot order
		"time [s]",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series → two legend swatch rects + bar-free chart.
	if strings.Count(svg, `width="10" height="10"`) != 2 {
		t.Fatal("legend swatches missing")
	}
}

func TestSingleSeriesHasNoLegend(t *testing.T) {
	c := &Chart{Title: "one"}
	c.Add(Series{Name: "only", XS: []float64{0, 1}, YS: []float64{1, 2}})
	svg := c.SVG()
	if strings.Contains(svg, `width="10" height="10"`) {
		t.Fatal("single-series chart must not draw a legend box")
	}
	// But the direct label still names it.
	if !strings.Contains(svg, "only") {
		t.Fatal("direct label missing")
	}
}

func TestRefLineRendered(t *testing.T) {
	c := lineChart()
	c.Ref("MaxSysQDepth=278", 278)
	svg := c.SVG()
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Fatal("reference line not dashed")
	}
	if !strings.Contains(svg, "MaxSysQDepth=278") {
		t.Fatal("reference label missing")
	}
}

func TestBarsChart(t *testing.T) {
	c := &Chart{Title: "vlrt", Kind: Bars}
	c.Add(Series{Name: "count", XS: []float64{0, 1, 2}, YS: []float64{0, 5, 2}})
	svg := c.SVG()
	// Zero bars are skipped; two rects beyond surface+legend swatches.
	if strings.Count(svg, "<rect") != 3 { // surface + 2 bars
		t.Fatalf("unexpected rect count in:\n%s", svg)
	}
}

func TestLogYTicksArePowersOfTen(t *testing.T) {
	c := &Chart{Title: "semi-log", Kind: Bars, LogY: true}
	c.Add(Series{Name: "freq", XS: []float64{0, 3, 6}, YS: []float64{50000, 300, 7}})
	svg := c.SVG()
	for _, want := range []string{">1<", ">100<", ">10k<"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("log ticks missing %q", want)
		}
	}
}

func TestEscape(t *testing.T) {
	c := &Chart{Title: `a<b & "c"`}
	svg := c.SVG()
	if strings.Contains(svg, `a<b`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; &quot;c&quot;") {
		t.Fatalf("escaped title missing:\n%s", svg)
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 5)
	if len(ticks) < 4 || ticks[0] != 0 || ticks[len(ticks)-1] != 100 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i]-ticks[i-1] != 20 {
			t.Fatalf("uneven ticks: %v", ticks)
		}
	}
	if got := niceTicks(5, 5, 3); len(got) != 1 {
		t.Fatalf("degenerate range ticks = %v", got)
	}
}

func TestNiceCeil(t *testing.T) {
	tests := []struct{ give, want float64 }{
		{0, 1}, {0.7, 1}, {1, 1}, {1.2, 2}, {3, 5}, {7, 10}, {278, 500}, {1103, 2000},
	}
	for _, tt := range tests {
		if got := niceCeil(tt.give); got != tt.want {
			t.Errorf("niceCeil(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestFormatTick(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{0, "0"}, {5, "5"}, {0.5, "0.5"}, {20000, "20k"}, {3e6, "3M"},
	}
	for _, tt := range tests {
		if got := formatTick(tt.give); got != tt.want {
			t.Errorf("formatTick(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestSeriesColorFixedOrder(t *testing.T) {
	if SeriesColor(0) != "#2a78d6" || SeriesColor(1) != "#1baf7a" {
		t.Fatal("hue order changed; it is part of the CVD-safety contract")
	}
	if SeriesColor(8) != SeriesColor(0) {
		t.Fatal("slot wrap-around broken")
	}
	if SeriesColor(-1) != SeriesColor(0) {
		t.Fatal("negative slot not clamped")
	}
}

// Property: rendering never panics and always produces a parseable SVG for
// arbitrary finite data.
func TestPropertySVGAlwaysParses(t *testing.T) {
	f := func(ys []float64, logY, bars bool) bool {
		xs := make([]float64, len(ys))
		for i := range ys {
			xs[i] = float64(i)
			if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
				ys[i] = 0
			}
			ys[i] = math.Mod(ys[i], 1e6)
		}
		c := &Chart{Title: "prop", LogY: logY}
		if bars {
			c.Kind = Bars
		}
		c.Add(Series{Name: "s", XS: xs, YS: ys})
		svg := c.SVG()
		dec := xml.NewDecoder(strings.NewReader(svg))
		for {
			_, err := dec.Token()
			if err != nil {
				return err.Error() == "EOF"
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
