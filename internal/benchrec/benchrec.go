// Package benchrec maintains BENCH_parallel.json, the repo's wall-clock
// record for the parallel runner: a single JSON object keyed by benchmark
// name ("figures_regeneration", "sweep", ...), each key holding one
// serial-vs-parallel measurement. Keeping the file keyed lets the CI
// bench-parallel job refresh one benchmark's record without clobbering
// the others.
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
)

// Update reads the JSON object at path (if any), replaces key with
// record, and writes the object back with stable (sorted) keys. A legacy
// flat record — the pre-keyed format whose top level was a single
// measurement with a "benchmark" field — is discarded rather than merged,
// so its measurement fields don't linger as bogus benchmark keys.
func Update(path, key string, record any) error {
	entries := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if json.Unmarshal(data, &entries) != nil || entries["benchmark"] != nil {
			entries = map[string]json.RawMessage{}
		}
	}
	raw, err := json.Marshal(record)
	if err != nil {
		return fmt.Errorf("benchrec: marshal %q record: %w", key, err)
	}
	entries[key] = raw
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("benchrec: marshal record file: %w", err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("benchrec: %w", err)
	}
	return nil
}
