package benchrec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rec struct {
	Benchmark string  `json:"benchmark"`
	Speedup   float64 `json:"speedup"`
}

func TestUpdateCreatesAndPreserves(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")

	if err := Update(path, "figures_regeneration", rec{Benchmark: "figures", Speedup: 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := Update(path, "sweep", rec{Benchmark: "sweep", Speedup: 3.5}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]rec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("record file does not parse: %v\n%s", err, data)
	}
	if got["figures_regeneration"].Speedup != 2.5 {
		t.Errorf("figures record clobbered: %+v", got)
	}
	if got["sweep"].Speedup != 3.5 {
		t.Errorf("sweep record wrong: %+v", got)
	}

	// Refreshing one key must not disturb the other.
	if err := Update(path, "sweep", rec{Benchmark: "sweep", Speedup: 4.0}); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got["figures_regeneration"].Speedup != 2.5 || got["sweep"].Speedup != 4.0 {
		t.Errorf("refresh disturbed sibling keys: %+v", got)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("record file should end with a newline")
	}
}

// TestUpdateDiscardsLegacyFlatRecord: the pre-keyed format was a single
// flat measurement object; its fields must not survive as keys.
func TestUpdateDiscardsLegacyFlatRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	legacy := `{"benchmark":"figures-regeneration","cpus":1,"speedup":0.99}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Update(path, "sweep", rec{Benchmark: "sweep", Speedup: 3.0}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	var got map[string]json.RawMessage
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got["cpus"]; ok {
		t.Errorf("legacy flat fields leaked into the keyed record:\n%s", data)
	}
	if _, ok := got["sweep"]; !ok {
		t.Errorf("sweep key missing:\n%s", data)
	}
}

func TestUpdateUnreadableDir(t *testing.T) {
	if err := Update(filepath.Join(t.TempDir(), "no", "such", "dir", "x.json"), "k", rec{}); err == nil {
		t.Fatal("expected a write error")
	}
}
