package scenario

import (
	"bytes"
	"testing"
)

// FuzzParseScenario asserts that Parse never panics on arbitrary input,
// and that any accepted document survives a Marshal→Parse round trip.
func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		minimal(),
		`{`,
		`not json at all`,
		`{"name":"x","fleet":{"nx":0,"clients":1},"bogus":1}`,
		`{"name":"x","fleet":{"nx":0,"clients":1,"clientz":2}}`,
		`{"name":"x","duration":5,"fleet":{"nx":0,"clients":1}}`,
		`{"name":"x","duration":"fast","fleet":{"nx":0,"clients":1}}`,
		`{"name":"x","fleet":{"nx":0,"clients":1},"events":[
  {"at":"1s","action":"kill_tier","tier":"db"},
  {"at":"1s","action":"kill_tier","tier":"app"},
  {"at":"1s","action":"restore_tier","tier":"db"}]}`,
		`{"name":"x","fleet":{"nx":0,"clients":1},"events":[
  {"at":"1s","action":"logflush","tier":"db","interval":"9000h"}]}`,
		`{"name":"x","fleet":{"nx":0,"clients":1},"events":[
  {"at":"2s","action":"stop","id":"ghost"}]}`,
		`{"name":"x","fleet":{"nx":0,"clients":1},"assertions":[
  {"metric":"p99","max":"2s"},{"metric":"drops","observed":false}]}`,
		`{"name":"x","fleet":{"nx":3,"clients":100,"mix":[
  {"name":"Heavy","weight":1,"app_cpu":"5ms","db_queries":2,"db_cpu":"1ms"}]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse("fuzz.json", data)
		if err != nil {
			return
		}
		out, err := doc.Marshal()
		if err != nil {
			t.Fatalf("accepted document does not marshal: %v", err)
		}
		doc2, err := Parse("fuzz2.json", out)
		if err != nil {
			t.Fatalf("marshalled form does not re-parse: %v\n%s", err, out)
		}
		out2, err := doc2.Marshal()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip unstable:\n%s\nvs\n%s", out, out2)
		}
	})
}
