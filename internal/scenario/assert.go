package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Assertion metrics.
const (
	// MetricThroughput checks completed requests per second (number).
	MetricThroughput = "throughput"
	// MetricVLRT checks the count of >3s requests (number).
	MetricVLRT = "vlrt"
	// MetricDrops checks dropped packets, optionally at one server
	// (number bounds and/or observed true/false).
	MetricDrops = "drops"
	// MetricFailed checks requests that never completed (number).
	MetricFailed = "failed"
	// MetricP50, MetricP99, MetricP999 and MetricMaxRT check response-time
	// quantiles (duration bounds).
	MetricP50   = "p50"
	MetricP99   = "p99"
	MetricP999  = "p999"
	MetricMaxRT = "max_rt"
)

// Metrics lists the assertion vocabulary in documentation order.
var Metrics = []string{
	MetricThroughput, MetricVLRT, MetricDrops, MetricFailed,
	MetricP50, MetricP99, MetricP999, MetricMaxRT,
}

// durationMetrics marks the metrics whose bounds are durations.
var durationMetrics = map[string]bool{
	MetricP50: true, MetricP99: true, MetricP999: true, MetricMaxRT: true,
}

// Bound is an assertion limit: a JSON number for count/rate metrics
// ("min": 900) or a duration string for quantile metrics ("max": "2s").
// The zero Bound is absent.
type Bound struct {
	set   bool
	isDur bool
	num   float64
	dur   time.Duration
}

// Number returns a numeric bound.
func Number(v float64) Bound { return Bound{set: true, num: v} }

// DurationBound returns a duration bound.
func DurationBound(d time.Duration) Bound {
	return Bound{set: true, isDur: true, dur: d}
}

// Set reports whether the bound is present.
func (b Bound) Set() bool { return b.set }

// IsZero lets encoding/json's omitzero drop absent bounds.
func (b Bound) IsZero() bool { return !b.set }

// IsDuration reports whether the bound holds a duration.
func (b Bound) IsDuration() bool { return b.isDur }

// Num returns the numeric value (zero for duration bounds).
func (b Bound) Num() float64 { return b.num }

// Dur returns the duration value (zero for numeric bounds).
func (b Bound) Dur() time.Duration { return b.dur }

// String renders the bound the way the file spells it.
func (b Bound) String() string {
	if !b.set {
		return "<unset>"
	}
	if b.isDur {
		return b.dur.String()
	}
	return trimFloat(b.num)
}

// MarshalJSON implements json.Marshaler.
func (b Bound) MarshalJSON() ([]byte, error) {
	if !b.set {
		return []byte("null"), nil
	}
	if b.isDur {
		return json.Marshal(b.dur.String())
	}
	return json.Marshal(b.num)
}

// UnmarshalJSON implements json.Unmarshaler: a number or a duration
// string.
func (b *Bound) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*b = Bound{}
		return nil
	}
	var num float64
	if err := json.Unmarshal(data, &num); err == nil {
		*b = Number(num)
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("bound must be a number or a duration string, got %s", data)
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("bad duration bound %q: %v", s, err)
	}
	*b = DurationBound(d)
	return nil
}

// Assertion is one declarative post-run check.
type Assertion struct {
	// Metric selects the checked quantity; see the Metric constants.
	Metric string `json:"metric"`
	// Min is the inclusive floor (number, or duration string for
	// quantile metrics).
	Min Bound `json:"min,omitzero"`
	// Max is the inclusive ceiling.
	Max Bound `json:"max,omitzero"`
	// Observed, for drops: true asserts at least one drop, false asserts
	// none.
	Observed *bool `json:"observed,omitempty"`
	// Server restricts a drops assertion to one server's drops.
	Server string `json:"server,omitempty"`
}

// validMetrics mirrors Metrics for membership checks.
var validMetrics = func() map[string]bool {
	m := make(map[string]bool, len(Metrics))
	for _, s := range Metrics {
		m[s] = true
	}
	return m
}()

func (a *Assertion) validate() error {
	if !validMetrics[a.Metric] {
		return fmt.Errorf("unknown metric %q (want one of %v)", a.Metric, Metrics)
	}
	if !a.Min.Set() && !a.Max.Set() && a.Observed == nil {
		return fmt.Errorf("metric %q asserts nothing: set min, max or observed", a.Metric)
	}
	wantDur := durationMetrics[a.Metric]
	for _, b := range []struct {
		name string
		b    Bound
	}{{"min", a.Min}, {"max", a.Max}} {
		if !b.b.Set() {
			continue
		}
		if wantDur != b.b.IsDuration() {
			if wantDur {
				return fmt.Errorf("metric %q: %s must be a duration string", a.Metric, b.name)
			}
			return fmt.Errorf("metric %q: %s must be a number", a.Metric, b.name)
		}
	}
	if a.Min.Set() && a.Max.Set() {
		if wantDur && a.Min.Dur() > a.Max.Dur() {
			return fmt.Errorf("metric %q: min %v exceeds max %v", a.Metric, a.Min, a.Max)
		}
		if !wantDur && a.Min.Num() > a.Max.Num() {
			return fmt.Errorf("metric %q: min %v exceeds max %v", a.Metric, a.Min, a.Max)
		}
	}
	if a.Observed != nil && a.Metric != MetricDrops {
		return fmt.Errorf("metric %q: observed applies to drops only", a.Metric)
	}
	if a.Server != "" && a.Metric != MetricDrops {
		return fmt.Errorf("metric %q: server applies to drops only", a.Metric)
	}
	return nil
}

// String renders the assertion in file vocabulary.
func (a Assertion) String() string {
	var b strings.Builder
	b.WriteString(a.Metric)
	if a.Server != "" {
		fmt.Fprintf(&b, "[%s]", a.Server)
	}
	if a.Observed != nil {
		if *a.Observed {
			b.WriteString(" observed")
		} else {
			b.WriteString(" absent")
		}
	}
	if a.Min.Set() {
		fmt.Fprintf(&b, " min=%v", a.Min)
	}
	if a.Max.Set() {
		fmt.Fprintf(&b, " max=%v", a.Max)
	}
	return b.String()
}

// Outcome is the plain snapshot of a finished run that assertions are
// evaluated against; the engine fills it from its recorder.
type Outcome struct {
	// Throughput is completed requests per second over the measured window.
	Throughput float64
	// Requests is the number of completed requests.
	Requests int
	// VLRT is the number of >3s requests.
	VLRT int
	// Failed is the number of requests that never completed.
	Failed int
	// TotalDrops counts dropped packets on all hops.
	TotalDrops int64
	// DropsPerServer breaks TotalDrops down by receiving server.
	DropsPerServer map[string]int64
	// P50, P99, P999 and MaxRT are response-time quantiles.
	P50, P99, P999, MaxRT time.Duration
}

// CheckResult is one assertion's verdict.
type CheckResult struct {
	// Assertion echoes the check.
	Assertion Assertion
	// Pass reports whether the run satisfied it.
	Pass bool
	// Got renders the observed value.
	Got string
}

// Report is the evaluated assertion list, in file order.
type Report struct {
	// Results holds one entry per assertion.
	Results []CheckResult
}

// Pass reports whether every assertion held (vacuously true when the
// document has none).
func (r *Report) Pass() bool {
	for _, res := range r.Results {
		if !res.Pass {
			return false
		}
	}
	return true
}

// Failed counts the assertions that did not hold.
func (r *Report) Failed() int {
	n := 0
	for _, res := range r.Results {
		if !res.Pass {
			n++
		}
	}
	return n
}

// String renders the report, one line per assertion, in file order.
func (r *Report) String() string {
	if len(r.Results) == 0 {
		return "no assertions\n"
	}
	var b strings.Builder
	for _, res := range r.Results {
		mark := "PASS"
		if !res.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "%s  %-40s got %s\n", mark, res.Assertion.String(), res.Got)
	}
	fmt.Fprintf(&b, "%d/%d assertions passed\n", len(r.Results)-r.Failed(), len(r.Results))
	return b.String()
}

// Evaluate checks every assertion against the outcome, in file order.
// It runs inside result comparison, so its verdicts must depend on the
// outcome alone.
//
//lint:pure
func Evaluate(assertions []Assertion, out Outcome) *Report {
	rep := &Report{Results: make([]CheckResult, 0, len(assertions))}
	for _, a := range assertions {
		rep.Results = append(rep.Results, a.check(out))
	}
	return rep
}

func (a Assertion) check(out Outcome) CheckResult {
	if durationMetrics[a.Metric] {
		var got time.Duration
		switch a.Metric {
		case MetricP50:
			got = out.P50
		case MetricP99:
			got = out.P99
		case MetricP999:
			got = out.P999
		case MetricMaxRT:
			fallthrough
		default:
			got = out.MaxRT
		}
		pass := true
		if a.Min.Set() && got < a.Min.Dur() {
			pass = false
		}
		if a.Max.Set() && got > a.Max.Dur() {
			pass = false
		}
		return CheckResult{Assertion: a, Pass: pass, Got: got.String()}
	}

	var got float64
	switch a.Metric {
	case MetricThroughput:
		got = out.Throughput
	case MetricVLRT:
		got = float64(out.VLRT)
	case MetricFailed:
		got = float64(out.Failed)
	case MetricDrops:
		fallthrough
	default:
		if a.Server != "" {
			got = float64(out.DropsPerServer[a.Server])
		} else {
			got = float64(out.TotalDrops)
		}
	}
	pass := true
	if a.Observed != nil {
		if *a.Observed != (got > 0) {
			pass = false
		}
	}
	if a.Min.Set() && got < a.Min.Num() {
		pass = false
	}
	if a.Max.Set() && got > a.Max.Num() {
		pass = false
	}
	return CheckResult{Assertion: a, Pass: pass, Got: trimFloat(got)}
}

// trimFloat renders a float without a trailing ".000000".
func trimFloat(v float64) string {
	//lint:allow floatdet exact integer-representability check, not an accumulation compare
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}
