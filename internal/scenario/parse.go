package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// topLevelSections enumerates the legal top-level keys of a scenario
// file, used to report unknown sections by name.
var topLevelSections = map[string]bool{
	"name": true, "description": true, "seed": true,
	"warmup": true, "duration": true, "sample_interval": true,
	"trace": true, "spans": true,
	"fleet": true, "events": true, "assertions": true,
}

// Parse reads one scenario document from data. The name (typically the
// file name) prefixes every error so multi-file tooling stays readable.
// Unknown fields are rejected, and errors name the section ("fleet:",
// "events[3]:", "assertions[0]:") they came from.
func Parse(name string, data []byte) (*Document, error) {
	fail := func(section string, err error) (*Document, error) {
		if section == "" {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return nil, fmt.Errorf("%s: %s: %v", name, section, err)
	}

	var raw map[string]json.RawMessage
	if err := strictUnmarshal(data, &raw); err != nil {
		return fail("", err)
	}
	var unknown []string
	for key := range raw {
		if !topLevelSections[key] {
			unknown = append(unknown, key)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fail("", fmt.Errorf("unknown top-level section %q", unknown[0]))
	}

	doc := &Document{}
	scalars := []struct {
		key string
		dst any
	}{
		{"name", &doc.Name},
		{"description", &doc.Description},
		{"seed", &doc.Seed},
		{"warmup", &doc.WarmUp},
		{"duration", &doc.Duration},
		{"sample_interval", &doc.SampleInterval},
		{"trace", &doc.Trace},
		{"spans", &doc.Spans},
	}
	for _, s := range scalars {
		if msg, ok := raw[s.key]; ok {
			if err := strictUnmarshal(msg, s.dst); err != nil {
				return fail(s.key, err)
			}
		}
	}

	if msg, ok := raw["fleet"]; ok {
		if err := strictUnmarshal(msg, &doc.Fleet); err != nil {
			return fail("fleet", err)
		}
	}

	if msg, ok := raw["events"]; ok {
		var items []json.RawMessage
		if err := strictUnmarshal(msg, &items); err != nil {
			return fail("events", err)
		}
		doc.Events = make([]Event, len(items))
		for i, item := range items {
			if err := strictUnmarshal(item, &doc.Events[i]); err != nil {
				return fail(fmt.Sprintf("events[%d]", i), err)
			}
		}
	}

	if msg, ok := raw["assertions"]; ok {
		var items []json.RawMessage
		if err := strictUnmarshal(msg, &items); err != nil {
			return fail("assertions", err)
		}
		doc.Assertions = make([]Assertion, len(items))
		for i, item := range items {
			if err := strictUnmarshal(item, &doc.Assertions[i]); err != nil {
				return fail(fmt.Sprintf("assertions[%d]", i), err)
			}
		}
	}

	if err := doc.Validate(); err != nil {
		return fail("", err)
	}
	return doc, nil
}

// strictUnmarshal decodes exactly one JSON value, rejecting unknown
// struct fields and trailing garbage.
func strictUnmarshal(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// Marshal renders a document as indented JSON, the round-trippable file
// form the generator and authoring tools emit.
func (d *Document) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
