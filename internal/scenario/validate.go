package scenario

import (
	"fmt"
)

// MaxEventHorizon bounds event times and injector periods so a typo
// ("3000s" for "300ms") cannot schedule a script that silently never
// fires or a timer that wraps the run many times over.
const MaxEventHorizon = Duration(3600e9) // one simulated hour

// builtinClasses are the interaction names a MixEntry may reference.
var builtinClasses = map[string]bool{
	"Static": true, "StoriesOfTheDay": true, "ViewStory": true,
	"ViewComment": true, "StoreComment": true, "SubmitStory": true,
	"BurstQuery": true,
}

// BuiltinClass reports whether name is a referenceable built-in
// interaction class.
func BuiltinClass(name string) bool { return builtinClasses[name] }

// Validate checks the document's internal consistency: required fields,
// tier and action names, duration signs and bounds, event ordering
// (non-decreasing sim times, stops after their starts, restores after
// their kills), and assertion shape. Compile-time concerns that need the
// engine (e.g. whether the fleet actually has a connection pool to
// resize) are checked by core.FromScenario instead.
func (d *Document) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("name: required")
	}
	if d.Seed < 0 {
		return fmt.Errorf("seed: must be >= 0, got %d", d.Seed)
	}
	for _, f := range []struct {
		name string
		d    Duration
	}{
		{"warmup", d.WarmUp},
		{"duration", d.Duration},
		{"sample_interval", d.SampleInterval},
	} {
		if f.d < 0 {
			return fmt.Errorf("%s: must be >= 0, got %v", f.name, f.d.D())
		}
		if f.d > MaxEventHorizon {
			return fmt.Errorf("%s: %v exceeds the %v bound", f.name, f.d.D(), MaxEventHorizon.D())
		}
	}
	if err := d.Fleet.validate(); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	if err := d.validateEvents(); err != nil {
		return err
	}
	for i := range d.Assertions {
		if err := d.Assertions[i].validate(); err != nil {
			return fmt.Errorf("assertions[%d]: %w", i, err)
		}
	}
	return nil
}

func (f *Fleet) validate() error {
	if f.NX < 0 || f.NX > 3 {
		return fmt.Errorf("nx: must be 0..3, got %d", f.NX)
	}
	if f.Clients <= 0 {
		return fmt.Errorf("clients: must be > 0, got %d", f.Clients)
	}
	if f.ThinkTime < 0 {
		return fmt.Errorf("think_time: must be >= 0, got %v", f.ThinkTime.D())
	}
	if f.AppCores < 0 {
		return fmt.Errorf("app_cores: must be >= 0, got %g", f.AppCores)
	}
	if f.ThreadOverride < 0 {
		return fmt.Errorf("thread_override: must be >= 0, got %d", f.ThreadOverride)
	}
	if f.OverheadPerThread < 0 {
		return fmt.Errorf("overhead_per_thread: must be >= 0, got %g", f.OverheadPerThread)
	}
	for _, t := range []struct {
		name string
		ov   *TierOverride
	}{{"web", f.Web}, {"app", f.App}, {"db", f.DB}} {
		if t.ov == nil {
			continue
		}
		if err := t.ov.validate(); err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
	}
	if err := validateMix("mix", f.Mix, false); err != nil {
		return err
	}
	if f.Burst != nil && f.Burst.Epoch < 0 {
		return fmt.Errorf("burst.epoch: must be >= 0, got %v", f.Burst.Epoch.D())
	}
	if c := f.Consolidation; c != nil {
		if c.Tier != "" && !ValidTier(c.Tier) {
			return fmt.Errorf("consolidation.tier: unknown tier %q", c.Tier)
		}
		for _, fd := range []struct {
			name string
			d    Duration
		}{
			{"consolidation.batch_interval", c.BatchInterval},
			{"consolidation.batch_offset", c.BatchOffset},
			{"consolidation.train_spacing", c.TrainSpacing},
		} {
			if fd.d < 0 {
				return fmt.Errorf("%s: must be >= 0, got %v", fd.name, fd.d.D())
			}
		}
		if c.BatchSize < 0 {
			return fmt.Errorf("consolidation.batch_size: must be >= 0, got %d", c.BatchSize)
		}
		if c.TrainLength < 0 {
			return fmt.Errorf("consolidation.train_length: must be >= 0, got %d", c.TrainLength)
		}
		if c.MMPPIndex < 0 {
			return fmt.Errorf("consolidation.mmpp_index: must be >= 0, got %g", c.MMPPIndex)
		}
	}
	if lf := f.LogFlush; lf != nil {
		if lf.Tier != "" && !ValidTier(lf.Tier) {
			return fmt.Errorf("logflush.tier: unknown tier %q", lf.Tier)
		}
		if lf.Interval < 0 || lf.Duration < 0 {
			return fmt.Errorf("logflush: interval and duration must be >= 0")
		}
	}
	if gc := f.GCPause; gc != nil {
		if gc.Tier != "" && !ValidTier(gc.Tier) {
			return fmt.Errorf("gcpause.tier: unknown tier %q", gc.Tier)
		}
		if gc.Interval < 0 || gc.Base < 0 || gc.PerRequest < 0 {
			return fmt.Errorf("gcpause: interval, base and per_request must be >= 0")
		}
	}
	return nil
}

func (t *TierOverride) validate() error {
	switch t.Arch {
	case "", "sync", "async":
	default:
		return fmt.Errorf("arch: want \"sync\" or \"async\", got %q", t.Arch)
	}
	if t.Threads < 0 || t.Backlog < 0 || t.LiteQDepth < 0 {
		return fmt.Errorf("threads, backlog and liteq_depth must be >= 0")
	}
	if t.Cores < 0 {
		return fmt.Errorf("cores: must be >= 0, got %g", t.Cores)
	}
	return nil
}

// validateMix checks one weighted class list; required demands a
// non-empty list.
func validateMix(section string, mix []MixEntry, required bool) error {
	if required && len(mix) == 0 {
		return fmt.Errorf("%s: must not be empty", section)
	}
	for i, e := range mix {
		if e.Weight <= 0 {
			return fmt.Errorf("%s[%d]: weight must be > 0, got %g", section, i, e.Weight)
		}
		if e.Class != "" {
			if !BuiltinClass(e.Class) {
				return fmt.Errorf("%s[%d]: unknown built-in class %q", section, i, e.Class)
			}
			if e.Name != "" || e.Static || e.WebCPU != 0 || e.AppCPU != 0 ||
				e.DBQueries != 0 || e.DBCPU != 0 {
				return fmt.Errorf("%s[%d]: class reference %q must not set inline demand fields", section, i, e.Class)
			}
			continue
		}
		if e.Name == "" {
			return fmt.Errorf("%s[%d]: inline class needs a name (or reference a built-in via \"class\")", section, i)
		}
		if e.WebCPU < 0 || e.AppCPU < 0 || e.DBCPU < 0 || e.DBQueries < 0 {
			return fmt.Errorf("%s[%d]: inline demands must be >= 0", section, i)
		}
		if e.WebCPU == 0 && e.AppCPU == 0 && (e.DBQueries == 0 || e.DBCPU == 0) {
			return fmt.Errorf("%s[%d]: inline class %q has no CPU demand anywhere", section, i, e.Name)
		}
	}
	return nil
}

// validActions mirrors the Actions list for membership checks.
var validActions = func() map[string]bool {
	m := make(map[string]bool, len(Actions))
	for _, a := range Actions {
		m[a] = true
	}
	return m
}()

func (d *Document) validateEvents() error {
	started := map[string]int{} // injector id -> defining event index
	killed := map[string]bool{} // tier -> currently killed
	var prev Duration
	for i := range d.Events {
		ev := &d.Events[i]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("events[%d]: %s", i, fmt.Sprintf(format, args...))
		}
		if !validActions[ev.Action] {
			return fail("unknown action %q (want one of %v)", ev.Action, Actions)
		}
		if ev.At < 0 {
			return fail("at: must be >= 0, got %v", ev.At.D())
		}
		if ev.At > MaxEventHorizon {
			return fail("at: %v exceeds the %v bound", ev.At.D(), MaxEventHorizon.D())
		}
		if ev.At < prev {
			return fail("at: %v fires before the preceding event at %v; the script must be sim-time ordered", ev.At.D(), prev.D())
		}
		prev = ev.At
		if d.Duration > 0 && ev.At > d.WarmUp+d.Duration {
			return fail("at: %v is after the run ends at %v", ev.At.D(), (d.WarmUp + d.Duration).D())
		}
		for _, fd := range []struct {
			name string
			d    Duration
		}{
			{"interval", ev.Interval}, {"duration", ev.Duration},
			{"demand", ev.Demand}, {"base", ev.Base},
			{"per_request", ev.PerRequest},
		} {
			if fd.d < 0 {
				return fail("%s: must be >= 0, got %v", fd.name, fd.d.D())
			}
			if fd.d > MaxEventHorizon {
				return fail("%s: %v exceeds the %v bound", fd.name, fd.d.D(), MaxEventHorizon.D())
			}
		}

		needsTier := func() error {
			if ev.Tier == "" {
				return fail("tier: required for %s", ev.Action)
			}
			if !ValidTier(ev.Tier) {
				return fail("tier: unknown tier %q", ev.Tier)
			}
			return nil
		}
		switch ev.Action {
		case ActionLogFlush:
			if err := needsTier(); err != nil {
				return err
			}
		case ActionCPUHog:
			if err := needsTier(); err != nil {
				return err
			}
			if ev.Interval <= 0 || ev.Demand <= 0 {
				return fail("cpuhog needs interval > 0 and demand > 0")
			}
		case ActionGCPause:
			if err := needsTier(); err != nil {
				return err
			}
		case ActionStop:
			if ev.ID == "" {
				return fail("id: required for stop")
			}
			if _, ok := started[ev.ID]; !ok {
				return fail("id: %q does not name an earlier injector event", ev.ID)
			}
		case ActionKillTier:
			if err := needsTier(); err != nil {
				return err
			}
			if killed[ev.Tier] {
				return fail("tier %q is already killed", ev.Tier)
			}
			killed[ev.Tier] = true
		case ActionRestoreTier:
			if err := needsTier(); err != nil {
				return err
			}
			if !killed[ev.Tier] {
				return fail("tier %q was not killed by an earlier event", ev.Tier)
			}
			killed[ev.Tier] = false
		case ActionResizePool:
			if ev.Size <= 0 {
				return fail("size: must be > 0 for resize_pool, got %d", ev.Size)
			}
		case ActionShiftMix:
			if err := validateMix("mix", ev.Mix, true); err != nil {
				return fail("%v", err)
			}
		}

		if ev.ID != "" {
			switch ev.Action {
			case ActionLogFlush, ActionCPUHog, ActionGCPause:
				if _, dup := started[ev.ID]; dup {
					return fail("id: %q reuses an earlier injector id", ev.ID)
				}
				started[ev.ID] = i
			case ActionStop:
				// Stop references an id; it does not define one.
			default:
				return fail("id: only injector events (logflush, cpuhog, gcpause) and stop take an id")
			}
		}
	}
	return nil
}
