// Package scenario defines the declarative experiment format that
// replaces hard-coded Go presets: a JSON document with three sections —
// a fleet (tiers, pools, workload mix, standing millibottleneck
// injectors), a sim-time-ordered event script (inject or stop a
// millibottleneck, kill or restore a tier, resize a pool, shift the
// workload mix), and declarative post-run assertions (drops observed or
// absent, VLRT count bounds, percentile ceilings, throughput floors).
//
// The package is deliberately stdlib-only and import-free of the
// simulator: it owns the schema, strict parsing (unknown fields are
// rejected with file/section context), validation, the seeded stress
// generator, and assertion evaluation against a plain Outcome snapshot.
// Compilation of a Document into a runnable core.Config lives in
// internal/core (core.FromScenario), which keeps the dependency arrow
// pointing one way: core reads scenarios, scenarios know nothing of the
// engine.
package scenario

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("30s", "400ms"), the only duration syntax scenario files accept.
type Duration time.Duration

// D returns the plain time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler, accepting only duration
// strings — bare numbers are ambiguous (seconds? nanoseconds?) and are
// rejected so files stay self-describing.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"30s\" or \"400ms\"")
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("bad duration %q: %v", s, err)
	}
	*d = Duration(v)
	return nil
}

// Tier names the three tiers of a system, client side first.
const (
	TierWeb = "web"
	TierApp = "app"
	TierDB  = "db"
)

// ValidTier reports whether s names a tier.
func ValidTier(s string) bool {
	switch s {
	case TierWeb, TierApp, TierDB:
		return true
	default:
		return false
	}
}

// Document is one complete declarative scenario.
type Document struct {
	// Name labels the experiment in summaries; required.
	Name string `json:"name"`
	// Description is free-form authoring context.
	Description string `json:"description,omitempty"`
	// Seed drives all randomness; zero defaults to 1 at run time.
	Seed int64 `json:"seed,omitempty"`
	// WarmUp is excluded from statistics; zero takes the engine default.
	WarmUp Duration `json:"warmup,omitempty"`
	// Duration is the measured interval after warm-up; zero takes the
	// engine default.
	Duration Duration `json:"duration,omitempty"`
	// SampleInterval is the monitor period; zero takes the engine default.
	SampleInterval Duration `json:"sample_interval,omitempty"`
	// Trace enables the micro-level transport event log and CTQO analysis.
	Trace bool `json:"trace,omitempty"`
	// Spans enables per-request span-tree tracing.
	Spans bool `json:"spans,omitempty"`

	// Fleet describes the system under test and its standing faults.
	Fleet Fleet `json:"fleet"`
	// Events is the timed chaos script, ordered by sim time; events with
	// equal times fire in file order.
	Events []Event `json:"events,omitempty"`
	// Assertions are evaluated against the finished run.
	Assertions []Assertion `json:"assertions,omitempty"`
}

// Fleet describes the 3-tier system: either a paper architecture level
// (nx) optionally refined by per-tier overrides, the client population,
// the workload mix, and the standing millibottleneck injectors that run
// for the whole experiment.
type Fleet struct {
	// NX is the paper's count of asynchronous tiers (0-3).
	NX int `json:"nx"`
	// Clients is the steady closed-loop population; required.
	Clients int `json:"clients"`
	// ThinkTime is the mean client think time; zero defaults to the
	// RUBBoS 7s.
	ThinkTime Duration `json:"think_time,omitempty"`
	// AppCores scales the app tier VM; zero means 1.
	AppCores float64 `json:"app_cores,omitempty"`
	// ThreadOverride, if positive, sets every synchronous tier's thread
	// pool (the Fig. 12 "2000-thread" configuration).
	ThreadOverride int `json:"thread_override,omitempty"`
	// OverheadPerThread enables the thread-management overhead model.
	OverheadPerThread float64 `json:"overhead_per_thread,omitempty"`
	// Web, App, DB optionally override single tiers of the nx baseline.
	Web *TierOverride `json:"web,omitempty"`
	App *TierOverride `json:"app,omitempty"`
	DB  *TierOverride `json:"db,omitempty"`
	// Mix overrides the interaction mix; empty uses the default RUBBoS
	// browse mix.
	Mix []MixEntry `json:"mix,omitempty"`
	// Burst modulates the steady population's think times.
	Burst *Burst `json:"burst,omitempty"`
	// Consolidation co-locates a bursty co-tenant system on a shared node.
	Consolidation *Consolidation `json:"consolidation,omitempty"`
	// LogFlush injects the periodic I/O millibottleneck for the whole run.
	LogFlush *LogFlush `json:"logflush,omitempty"`
	// GCPause injects periodic JVM stop-the-world collections.
	GCPause *GCPause `json:"gcpause,omitempty"`
}

// TierOverride adjusts one tier of the nx baseline fleet — the per-edge
// sync/async connector choice and the queueing parameters.
type TierOverride struct {
	// Arch switches the tier's server architecture: "sync" or "async".
	Arch string `json:"arch,omitempty"`
	// Threads is the thread pool (sync) or worker count (async).
	Threads int `json:"threads,omitempty"`
	// Backlog is the TCP accept queue (sync only).
	Backlog int `json:"backlog,omitempty"`
	// LiteQDepth bounds the lightweight queue (async only).
	LiteQDepth int `json:"liteq_depth,omitempty"`
	// Cores is the tier VM's vCPU count.
	Cores float64 `json:"cores,omitempty"`
}

// Zero reports whether the override changes nothing.
func (t *TierOverride) Zero() bool {
	return t.Arch == "" && t.Threads == 0 && t.Backlog == 0 &&
		t.LiteQDepth == 0 && t.Cores == 0
}

// MixEntry is one weighted interaction of the workload mix: either a
// reference to a built-in RUBBoS class by name, or an inline class with
// explicit per-tier service-time demands.
type MixEntry struct {
	// Class names a built-in interaction (Static, StoriesOfTheDay,
	// ViewStory, ViewComment, StoreComment, SubmitStory, BurstQuery).
	// Empty means an inline class defined by the demand fields below.
	Class string `json:"class,omitempty"`
	// Weight is the relative frequency; required, > 0.
	Weight float64 `json:"weight"`

	// Name labels an inline class.
	Name string `json:"name,omitempty"`
	// Static marks requests served entirely by the web tier.
	Static bool `json:"static,omitempty"`
	// WebCPU is the web-tier demand of an inline class.
	WebCPU Duration `json:"web_cpu,omitempty"`
	// AppCPU is the app-tier demand of an inline class.
	AppCPU Duration `json:"app_cpu,omitempty"`
	// DBQueries is the inline class's database round trips.
	DBQueries int `json:"db_queries,omitempty"`
	// DBCPU is the inline class's database demand per query.
	DBCPU Duration `json:"db_cpu,omitempty"`
}

// Burst mirrors the index-of-dispersion knob of the closed-loop workload.
type Burst struct {
	// Index is the burstiness index; values <= 1 mean no modulation.
	Index float64 `json:"index"`
	// Epoch is the modulation period; zero defaults to 1s.
	Epoch Duration `json:"epoch,omitempty"`
}

// Consolidation mirrors the VM-consolidation experiment: a bursty
// co-tenant sharing one physical node with the named steady tier.
type Consolidation struct {
	// Tier is the steady tier placed on the shared node; default "app".
	Tier string `json:"tier,omitempty"`
	// BatchSize is requests per burst; zero defaults to 400.
	BatchSize int `json:"batch_size,omitempty"`
	// BatchInterval is the burst period; zero defaults to 15s.
	BatchInterval Duration `json:"batch_interval,omitempty"`
	// BatchOffset delays the first burst; zero fires after one interval.
	BatchOffset Duration `json:"batch_offset,omitempty"`
	// TrainLength fires each burst as a train of sub-bursts (default 1).
	TrainLength int `json:"train_length,omitempty"`
	// TrainSpacing separates sub-bursts; zero defaults to the 3s RTO.
	TrainSpacing Duration `json:"train_spacing,omitempty"`
	// MMPPIndex > 1 replaces deterministic batches with a
	// Markov-modulated Poisson co-tenant of this index of dispersion.
	MMPPIndex float64 `json:"mmpp_index,omitempty"`
}

// LogFlush mirrors the collectl log-flush I/O millibottleneck.
type LogFlush struct {
	// Tier is the stalled tier; default "db".
	Tier string `json:"tier,omitempty"`
	// Interval between flushes; zero defaults to 30s.
	Interval Duration `json:"interval,omitempty"`
	// Duration of each stall; zero defaults to 1s.
	Duration Duration `json:"duration,omitempty"`
}

// GCPause mirrors the JVM stop-the-world collection injector.
type GCPause struct {
	// Tier is the collected tier; default "app".
	Tier string `json:"tier,omitempty"`
	// Interval between collections; zero defaults to 10s.
	Interval Duration `json:"interval,omitempty"`
	// Base is the fixed pause component; zero defaults to 50ms.
	Base Duration `json:"base,omitempty"`
	// PerRequest extends the pause per in-service request; zero defaults
	// to 2ms.
	PerRequest Duration `json:"per_request,omitempty"`
}

// Event actions.
const (
	// ActionLogFlush starts a periodic I/O-stall injector at sim time At.
	ActionLogFlush = "logflush"
	// ActionCPUHog starts a periodic CPU-burst injector.
	ActionCPUHog = "cpuhog"
	// ActionGCPause starts a periodic GC-pause injector.
	ActionGCPause = "gcpause"
	// ActionStop stops a previously started injector by its id.
	ActionStop = "stop"
	// ActionKillTier stalls a tier's VM indefinitely.
	ActionKillTier = "kill_tier"
	// ActionRestoreTier resumes a previously killed tier.
	ActionRestoreTier = "restore_tier"
	// ActionResizePool resizes the app→db connection pool.
	ActionResizePool = "resize_pool"
	// ActionShiftMix swaps the closed-loop workload mix.
	ActionShiftMix = "shift_mix"
)

// Actions lists every event action, in documentation order.
var Actions = []string{
	ActionLogFlush, ActionCPUHog, ActionGCPause, ActionStop,
	ActionKillTier, ActionRestoreTier, ActionResizePool, ActionShiftMix,
}

// Event is one step of the timed chaos script. At is absolute sim time
// from the start of the run (warm-up included); events with equal At
// fire in file order.
type Event struct {
	// At is the firing time; required, >= 0.
	At Duration `json:"at"`
	// Action selects the event kind; see the Action constants.
	Action string `json:"action"`
	// ID names an injector-starting event so a later "stop" can address
	// it; required on stop, optional elsewhere.
	ID string `json:"id,omitempty"`
	// Tier targets a steady tier (logflush, cpuhog, gcpause, kill_tier,
	// restore_tier).
	Tier string `json:"tier,omitempty"`
	// Interval is the injector period (logflush, cpuhog, gcpause).
	Interval Duration `json:"interval,omitempty"`
	// Duration is the per-flush stall length (logflush).
	Duration Duration `json:"duration,omitempty"`
	// Demand is the CPU burst per interval (cpuhog).
	Demand Duration `json:"demand,omitempty"`
	// Base is the fixed pause component (gcpause).
	Base Duration `json:"base,omitempty"`
	// PerRequest extends the pause per in-service request (gcpause).
	PerRequest Duration `json:"per_request,omitempty"`
	// Size is the new pool capacity (resize_pool).
	Size int `json:"size,omitempty"`
	// Mix is the replacement workload mix (shift_mix).
	Mix []MixEntry `json:"mix,omitempty"`
}
