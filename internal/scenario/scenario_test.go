package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// minimal returns the smallest valid document text.
func minimal() string {
	return `{"name": "t", "fleet": {"nx": 0, "clients": 100}}`
}

func TestParseMinimal(t *testing.T) {
	doc, err := Parse("t.json", []byte(minimal()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if doc.Name != "t" || doc.Fleet.Clients != 100 {
		t.Errorf("unexpected doc: %+v", doc)
	}
}

func TestParseFull(t *testing.T) {
	text := `{
  "name": "full",
  "description": "every section",
  "seed": 7,
  "warmup": "1s",
  "duration": "10s",
  "trace": true,
  "spans": true,
  "fleet": {
    "nx": 1,
    "clients": 500,
    "think_time": "500ms",
    "app_cores": 2,
    "web": {"arch": "sync", "threads": 32, "backlog": 16},
    "mix": [
      {"class": "ViewStory", "weight": 0.6},
      {"name": "Heavy", "weight": 0.4, "app_cpu": "2ms", "db_queries": 1, "db_cpu": "1ms"}
    ],
    "consolidation": {"tier": "app", "batch_size": 300, "batch_interval": "2s"},
    "logflush": {"tier": "db", "interval": "3s", "duration": "200ms"}
  },
  "events": [
    {"at": "2s", "action": "cpuhog", "id": "hog", "tier": "app", "interval": "1s", "demand": "300ms"},
    {"at": "4s", "action": "kill_tier", "tier": "db"},
    {"at": "5s", "action": "restore_tier", "tier": "db"},
    {"at": "6s", "action": "resize_pool", "size": 10},
    {"at": "7s", "action": "shift_mix", "mix": [{"class": "StoreComment", "weight": 1}]},
    {"at": "8s", "action": "stop", "id": "hog"}
  ],
  "assertions": [
    {"metric": "drops", "observed": true},
    {"metric": "vlrt", "min": 1, "max": 500},
    {"metric": "p99", "max": "2s"},
    {"metric": "throughput", "min": 100}
  ]
}`
	doc, err := Parse("full.json", []byte(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(doc.Events) != 6 || len(doc.Assertions) != 4 {
		t.Fatalf("got %d events, %d assertions", len(doc.Events), len(doc.Assertions))
	}
	if doc.Events[0].Demand.D() != 300*time.Millisecond {
		t.Errorf("demand = %v", doc.Events[0].Demand.D())
	}
	if !doc.Assertions[2].Max.IsDuration() || doc.Assertions[2].Max.Dur() != 2*time.Second {
		t.Errorf("p99 max = %v", doc.Assertions[2].Max)
	}
}

func TestParseErrorsCarryContext(t *testing.T) {
	tests := []struct {
		name string
		text string
		want string
	}{
		{"malformed", `{`, "mal.json:"},
		{"unknown section", `{"name":"x","fleet":{"nx":0,"clients":1},"bogus":1}`, `unknown top-level section "bogus"`},
		{"unknown fleet field", `{"name":"x","fleet":{"nx":0,"clients":1,"clientz":2}}`, `fleet: json: unknown field "clientz"`},
		{"unknown event field", `{"name":"x","fleet":{"nx":0,"clients":1},"events":[{"at":"1s","action":"kill_tier","tier":"db","whom":1}]}`, `events[0]: json: unknown field "whom"`},
		{"bad duration", `{"name":"x","duration":"fast","fleet":{"nx":0,"clients":1}}`, `duration: bad duration "fast"`},
		{"numeric duration", `{"name":"x","duration":5,"fleet":{"nx":0,"clients":1}}`, "duration must be a string"},
		{"no name", `{"fleet":{"nx":0,"clients":1}}`, "name: required"},
		{"no clients", `{"name":"x","fleet":{"nx":0}}`, "clients: must be > 0"},
		{"bad nx", `{"name":"x","fleet":{"nx":4,"clients":1}}`, "nx: must be 0..3"},
		{"negative at", `{"name":"x","fleet":{"nx":0,"clients":1},"events":[{"at":"-1s","action":"kill_tier","tier":"db"}]}`, "events[0]: at: must be >= 0"},
		{"unsorted events", `{"name":"x","fleet":{"nx":0,"clients":1},"events":[{"at":"2s","action":"kill_tier","tier":"db"},{"at":"1s","action":"restore_tier","tier":"db"}]}`, "events[1]: at: 1s fires before"},
		{"event after end", `{"name":"x","duration":"2s","fleet":{"nx":0,"clients":1},"events":[{"at":"1h","action":"kill_tier","tier":"db"}]}`, "after the run ends"},
		{"oversized duration", `{"name":"x","fleet":{"nx":0,"clients":1},"events":[{"at":"1s","action":"logflush","tier":"db","interval":"2h"}]}`, "exceeds the 1h0m0s bound"},
		{"stop without start", `{"name":"x","fleet":{"nx":0,"clients":1},"events":[{"at":"1s","action":"stop","id":"nope"}]}`, `"nope" does not name an earlier injector`},
		{"restore without kill", `{"name":"x","fleet":{"nx":0,"clients":1},"events":[{"at":"1s","action":"restore_tier","tier":"db"}]}`, `"db" was not killed`},
		{"double kill", `{"name":"x","fleet":{"nx":0,"clients":1},"events":[{"at":"1s","action":"kill_tier","tier":"db"},{"at":"2s","action":"kill_tier","tier":"db"}]}`, "already killed"},
		{"bad action", `{"name":"x","fleet":{"nx":0,"clients":1},"events":[{"at":"1s","action":"explode"}]}`, `unknown action "explode"`},
		{"bad tier", `{"name":"x","fleet":{"nx":0,"clients":1},"events":[{"at":"1s","action":"kill_tier","tier":"cache"}]}`, `unknown tier "cache"`},
		{"bad metric", `{"name":"x","fleet":{"nx":0,"clients":1},"assertions":[{"metric":"latency","max":1}]}`, `unknown metric "latency"`},
		{"vacuous assertion", `{"name":"x","fleet":{"nx":0,"clients":1},"assertions":[{"metric":"vlrt"}]}`, "asserts nothing"},
		{"duration bound on count", `{"name":"x","fleet":{"nx":0,"clients":1},"assertions":[{"metric":"vlrt","max":"2s"}]}`, "max must be a number"},
		{"number bound on quantile", `{"name":"x","fleet":{"nx":0,"clients":1},"assertions":[{"metric":"p99","max":2}]}`, "max must be a duration string"},
		{"crossed bounds", `{"name":"x","fleet":{"nx":0,"clients":1},"assertions":[{"metric":"vlrt","min":5,"max":1}]}`, "min 5 exceeds max 1"},
		{"unknown class", `{"name":"x","fleet":{"nx":0,"clients":1,"mix":[{"class":"Nope","weight":1}]}}`, `unknown built-in class "Nope"`},
		{"inline without demand", `{"name":"x","fleet":{"nx":0,"clients":1,"mix":[{"name":"N","weight":1}]}}`, "no CPU demand"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("mal.json", []byte(tc.text))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "mal.json: ") {
				t.Errorf("error %q lacks the file prefix", err)
			}
		})
	}
}

func TestDuplicateEventTimestampsAllowed(t *testing.T) {
	text := `{"name":"x","fleet":{"nx":0,"clients":1},"events":[
  {"at":"1s","action":"kill_tier","tier":"db"},
  {"at":"1s","action":"kill_tier","tier":"app"}]}`
	if _, err := Parse("dup.json", []byte(text)); err != nil {
		t.Fatalf("equal timestamps must be legal (file order breaks the tie): %v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	doc, err := Parse("t.json", []byte(minimal()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	data, err := doc.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	doc2, err := Parse("t2.json", data)
	if err != nil {
		t.Fatalf("re-Parse: %v\n%s", err, data)
	}
	data2, err := doc2.Marshal()
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", data, data2)
	}
}

func TestEvaluate(t *testing.T) {
	obs := func(b bool) *bool { return &b }
	out := Outcome{
		Throughput:     950,
		VLRT:           42,
		Failed:         0,
		TotalDrops:     120,
		DropsPerServer: map[string]int64{"steady-apache": 120},
		P99:            1800 * time.Millisecond,
		MaxRT:          6 * time.Second,
	}
	tests := []struct {
		a    Assertion
		pass bool
	}{
		{Assertion{Metric: MetricDrops, Observed: obs(true)}, true},
		{Assertion{Metric: MetricDrops, Observed: obs(false)}, false},
		{Assertion{Metric: MetricDrops, Server: "steady-apache", Min: Number(100)}, true},
		{Assertion{Metric: MetricDrops, Server: "steady-mysql", Observed: obs(false)}, true},
		{Assertion{Metric: MetricVLRT, Min: Number(1), Max: Number(100)}, true},
		{Assertion{Metric: MetricVLRT, Max: Number(10)}, false},
		{Assertion{Metric: MetricThroughput, Min: Number(900)}, true},
		{Assertion{Metric: MetricThroughput, Min: Number(1000)}, false},
		{Assertion{Metric: MetricP99, Max: DurationBound(2 * time.Second)}, true},
		{Assertion{Metric: MetricP99, Max: DurationBound(time.Second)}, false},
		{Assertion{Metric: MetricMaxRT, Min: DurationBound(3 * time.Second)}, true},
		{Assertion{Metric: MetricFailed, Max: Number(0)}, true},
	}
	var all []Assertion
	for _, tc := range tests {
		all = append(all, tc.a)
	}
	rep := Evaluate(all, out)
	for i, tc := range tests {
		if rep.Results[i].Pass != tc.pass {
			t.Errorf("%v: pass = %v, want %v (got %s)",
				tc.a, rep.Results[i].Pass, tc.pass, rep.Results[i].Got)
		}
	}
	if rep.Pass() {
		t.Error("report with failures must not Pass")
	}
	if got := rep.Failed(); got != 4 {
		t.Errorf("Failed() = %d, want 4", got)
	}
	if !strings.Contains(rep.String(), "8/12 assertions passed") {
		t.Errorf("report summary wrong:\n%s", rep.String())
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := Generate(seed)
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated document invalid: %v", seed, err)
		}
		da, err := a.Marshal()
		if err != nil {
			t.Fatalf("seed %d: Marshal: %v", seed, err)
		}
		db, err := Generate(seed).Marshal()
		if err != nil {
			t.Fatalf("seed %d: Marshal: %v", seed, err)
		}
		if !bytes.Equal(da, db) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		// The file form must survive a parse round trip.
		if _, err := Parse("gen.json", da); err != nil {
			t.Fatalf("seed %d: generated file does not parse: %v\n%s", seed, err, da)
		}
	}
	a, b := Generate(1).Name, Generate(2).Name
	if a == b {
		t.Errorf("distinct seeds produced the same name %q", a)
	}
}
