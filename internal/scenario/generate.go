package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Generate returns a random but always-valid stress scenario: a small
// random fleet, a random standing fault, and a random timed failure
// schedule, all drawn from the given seed and nothing else — the same
// seed yields the same document, byte for byte. Generated scenarios are
// deliberately short (a couple of simulated seconds, a few hundred
// clients) so property tests can run hundreds of them, with the race
// detector on, in ordinary test time.
//
//lint:pure
func Generate(seed int64) *Document {
	rng := rand.New(rand.NewSource(seed))
	doc := &Document{
		Name:        fmt.Sprintf("generated-stress seed %d", seed),
		Description: "seeded random fleet + failure schedule (scenario.Generate)",
		Seed:        seed,
		WarmUp:      randDuration(rng, 200*time.Millisecond, 500*time.Millisecond),
		Duration:    randDuration(rng, time.Second, 2*time.Second),
	}
	doc.Fleet = Fleet{
		NX:        rng.Intn(4),
		Clients:   50 + rng.Intn(201),
		ThinkTime: randDuration(rng, 100*time.Millisecond, 400*time.Millisecond),
	}

	// Occasionally squeeze a synchronous tier's queues so drops are
	// reachable inside the short horizon.
	if rng.Intn(4) == 0 {
		ov := &TierOverride{
			Threads: 10 + rng.Intn(40),
			Backlog: 8 + rng.Intn(32),
		}
		switch rng.Intn(3) {
		case 0:
			doc.Fleet.Web = ov
		case 1:
			doc.Fleet.App = ov
		default:
			doc.Fleet.DB = ov
		}
	}

	// One standing fault, sized to fire several times within the run.
	switch rng.Intn(3) {
	case 0:
		doc.Fleet.Consolidation = &Consolidation{
			Tier:          randTier(rng),
			BatchSize:     50 + rng.Intn(251),
			BatchInterval: randDuration(rng, 400*time.Millisecond, 900*time.Millisecond),
		}
	case 1:
		doc.Fleet.LogFlush = &LogFlush{
			Tier:     randTier(rng),
			Interval: randDuration(rng, 300*time.Millisecond, 700*time.Millisecond),
			Duration: randDuration(rng, 50*time.Millisecond, 250*time.Millisecond),
		}
	default:
		// No standing fault: the event script is the only disturbance.
	}

	doc.Events = generateEvents(rng, doc)

	// Tautological floors keep the evaluation path exercised on every
	// generated run without making pass/fail seed-dependent.
	doc.Assertions = []Assertion{
		{Metric: MetricFailed, Min: Number(0)},
		{Metric: MetricMaxRT, Max: DurationBound(time.Hour)},
	}
	return doc
}

// generateEvents draws a random, schema-valid failure schedule.
func generateEvents(rng *rand.Rand, doc *Document) []Event {
	horizon := (doc.WarmUp + doc.Duration).D()
	n := rng.Intn(4)
	times := make([]time.Duration, n)
	for i := range times {
		times[i] = randDuration(rng, horizon/10, horizon*9/10).D()
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	var events []Event
	killed := map[string]bool{}
	hogs := 0
	for _, at := range times {
		switch rng.Intn(4) {
		case 0:
			hogs++
			events = append(events, Event{
				At:       Duration(at),
				Action:   ActionCPUHog,
				ID:       fmt.Sprintf("hog%d", hogs),
				Tier:     randTier(rng),
				Interval: randDuration(rng, 200*time.Millisecond, 600*time.Millisecond),
				Demand:   randDuration(rng, 50*time.Millisecond, 400*time.Millisecond),
			})
		case 1:
			events = append(events, Event{
				At:       Duration(at),
				Action:   ActionLogFlush,
				Tier:     randTier(rng),
				Interval: randDuration(rng, 200*time.Millisecond, 600*time.Millisecond),
				Duration: randDuration(rng, 30*time.Millisecond, 200*time.Millisecond),
			})
		case 2:
			tier := randTier(rng)
			if killed[tier] {
				// Already down: restore it instead, keeping the script valid.
				events = append(events, Event{
					At: Duration(at), Action: ActionRestoreTier, Tier: tier,
				})
				killed[tier] = false
				continue
			}
			events = append(events, Event{
				At: Duration(at), Action: ActionKillTier, Tier: tier,
			})
			killed[tier] = true
		default:
			if doc.Fleet.NX <= 1 {
				// NX 0/1 fleets have a JDBC pool to squeeze.
				events = append(events, Event{
					At:     Duration(at),
					Action: ActionResizePool,
					Size:   5 + rng.Intn(46),
				})
				continue
			}
			events = append(events, Event{
				At:     Duration(at),
				Action: ActionShiftMix,
				Mix: []MixEntry{
					{Class: "ViewStory", Weight: 0.5},
					{Class: "StoreComment", Weight: 0.5},
				},
			})
		}
	}

	// Kills without a scheduled restore come back up just before the end,
	// so a generated run never measures a dead system to the horizon.
	restoreAt := Duration(horizon * 19 / 20)
	for _, tier := range []string{TierWeb, TierApp, TierDB} {
		if killed[tier] {
			events = append(events, Event{
				At: restoreAt, Action: ActionRestoreTier, Tier: tier,
			})
		}
	}
	return events
}

func randTier(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return TierWeb
	case 1:
		return TierApp
	default:
		return TierDB
	}
}

// randDuration draws uniformly from [lo, hi], rounded to 1ms so
// generated files stay human-readable.
func randDuration(rng *rand.Rand, lo, hi time.Duration) Duration {
	if hi <= lo {
		return Duration(lo)
	}
	d := lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
	return Duration(d.Round(time.Millisecond))
}
