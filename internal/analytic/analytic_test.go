package analytic

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ctqosim/internal/workload"
)

func network() *ClosedNetwork {
	return FromMix(workload.DefaultMix(), workload.DefaultThinkTime)
}

func TestMVASingleClient(t *testing.T) {
	n := network()
	sol := n.Solve(1)
	// One client: X = 1 / (Z + ΣD).
	var total float64
	for _, s := range n.Stations {
		total += s.Demand.Seconds()
	}
	want := 1 / (n.Think.Seconds() + total)
	if math.Abs(sol.Throughput-want) > 1e-9 {
		t.Fatalf("X(1) = %v, want %v", sol.Throughput, want)
	}
	if sol.ResponseTime != time.Duration(total*float64(time.Second)) {
		t.Fatalf("R(1) = %v, want sum of demands", sol.ResponseTime)
	}
}

func TestMVASaturationBound(t *testing.T) {
	n := network()
	sat := n.SaturationThroughput()
	sol := n.Solve(100000)
	if sol.Throughput > sat+1e-6 {
		t.Fatalf("X = %v exceeds the 1/Dmax bound %v", sol.Throughput, sat)
	}
	if sol.Throughput < 0.99*sat {
		t.Fatalf("X = %v far below saturation %v at huge population", sol.Throughput, sat)
	}
}

func TestMVAPredictsPaperThroughputs(t *testing.T) {
	// MVA over the calibrated mix must land on the paper's measured
	// throughputs for the three Fig. 1 workloads (±3%).
	n := network()
	tests := []struct {
		clients int
		want    float64
	}{
		{4000, 571},
		{7000, 1000}, // below saturation the delay term dominates: N/Z
		{8000, 1143},
	}
	for _, tt := range tests {
		sol := n.Solve(tt.clients)
		if math.Abs(sol.Throughput-tt.want)/tt.want > 0.03 {
			t.Errorf("X(%d) = %.0f, want ~%.0f", tt.clients, sol.Throughput, tt.want)
		}
	}
}

func TestMVABottleneckIsAppTier(t *testing.T) {
	n := network()
	sol := n.Solve(7000)
	if n.Stations[sol.Bottleneck].Name != "app" {
		t.Fatalf("bottleneck = %s, want app", n.Stations[sol.Bottleneck].Name)
	}
	// Utilizations ordered app > db > web at the calibrated demands.
	if !(sol.Utilizations[1] > sol.Utilizations[2] &&
		sol.Utilizations[2] > sol.Utilizations[0]) {
		t.Fatalf("utilizations = %v, want app > db > web", sol.Utilizations)
	}
	// App utilization at WL 7000 ≈ 75% (the paper's caption).
	if sol.Utilizations[1] < 0.70 || sol.Utilizations[1] > 0.80 {
		t.Fatalf("app util = %.2f, want ~0.75", sol.Utilizations[1])
	}
}

func TestMVAUtilizationConsistency(t *testing.T) {
	n := network()
	sol := n.Solve(5000)
	for i, s := range n.Stations {
		want := sol.Throughput * s.Demand.Seconds()
		if math.Abs(sol.Utilizations[i]-want) > 1e-9 {
			t.Fatalf("util[%d] = %v, want X·D = %v", i, sol.Utilizations[i], want)
		}
	}
}

func TestSaturationThroughputEmptyNetwork(t *testing.T) {
	n := &ClosedNetwork{Think: time.Second}
	if !math.IsInf(n.SaturationThroughput(), 1) {
		t.Fatal("no stations should mean unbounded throughput")
	}
}

func TestMM1TailProbability(t *testing.T) {
	// μ=1000/s, λ=430/s (43% util): P(RT>3s) = e^(-570·3) ≈ 0.
	p := MM1TailProbability(430, 1000, 3*time.Second)
	if p > 1e-300 {
		t.Fatalf("P = %v, want astronomically small", p)
	}
	// Unstable queue: probability 1.
	if MM1TailProbability(1000, 900, time.Second) != 1 {
		t.Fatal("unstable queue must return 1")
	}
	// Zero horizon: probability 1 for any stable queue.
	if got := MM1TailProbability(100, 1000, 0); got != 1 {
		t.Fatalf("P(RT>0) = %v, want 1", got)
	}
}

func TestVLRTOddsUnderQueueing(t *testing.T) {
	// The paper's operating points: even at 85% utilization with a
	// sub-millisecond service time, a 3-second response is impossible
	// under steady-state queueing.
	for _, util := range []float64{0.43, 0.75, 0.85} {
		p := VLRTOddsUnderQueueing(util, 750*time.Microsecond)
		if p > 1e-100 {
			t.Fatalf("util %.2f: P(VLRT) = %v, want ~0", util, p)
		}
	}
	// Only at essentially full saturation does the tail open up.
	if p := VLRTOddsUnderQueueing(0.999999, 750*time.Microsecond); p < 1e-10 {
		t.Fatalf("near saturation P = %v, want appreciable", p)
	}
	if VLRTOddsUnderQueueing(0.5, 0) != 0 {
		t.Fatal("zero service time should return 0")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	tests := []struct {
		c       int
		offered float64
		want    float64
		tol     float64
	}{
		// Single server: Erlang-C reduces to ρ.
		{1, 0.5, 0.5, 1e-9},
		// Classic tabulated value: c=2, a=1 → 1/3.
		{2, 1, 1.0 / 3, 1e-9},
		// c=5, a=4: published value ≈ 0.5541.
		{5, 4, 0.5541, 5e-4},
	}
	for _, tt := range tests {
		got := ErlangC(tt.c, tt.offered)
		if math.Abs(got-tt.want) > tt.tol {
			t.Errorf("ErlangC(%d, %v) = %v, want %v", tt.c, tt.offered, got, tt.want)
		}
	}
}

func TestErlangCEdgeCases(t *testing.T) {
	if ErlangC(0, 1) != 0 || ErlangC(2, -1) != 0 {
		t.Fatal("invalid inputs should return 0")
	}
	if ErlangC(2, 2) != 1 || ErlangC(2, 3) != 1 {
		t.Fatal("unstable systems should return 1")
	}
}

func TestMMcWaitTail(t *testing.T) {
	// With many servers and low load, waiting is near-impossible.
	if p := MMcWaitTailProbability(100, 10, 1, time.Second); p > 1e-6 {
		t.Fatalf("P = %v, want ~0", p)
	}
	if MMcWaitTailProbability(1, 10, 5, time.Second) != 1 {
		t.Fatal("unstable M/M/c must return 1")
	}
	if MMcWaitTailProbability(0, 1, 1, time.Second) != 1 {
		t.Fatal("c=0 must return 1")
	}
}

// Property: Erlang-C is within [0,1] and increases with offered load.
func TestPropertyErlangCMonotone(t *testing.T) {
	f := func(c8 uint8, load8 uint8) bool {
		c := int(c8%20) + 1
		a1 := float64(load8%100) / 100 * float64(c) * 0.98
		a2 := a1 * 1.01
		p1, p2 := ErlangC(c, a1), ErlangC(c, a2)
		if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
			return false
		}
		return p2 >= p1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: MVA throughput is monotone in population and bounded by both
// N/(Z+ΣD) from below... in fact bounded above by min(N/(Z+R(1)), 1/Dmax).
func TestPropertyMVABounds(t *testing.T) {
	f := func(n16 uint16) bool {
		n := network()
		clients := int(n16%9000) + 1
		sol := n.Solve(clients)
		if sol.Throughput <= 0 {
			return false
		}
		if sol.Throughput > n.SaturationThroughput()+1e-9 {
			return false
		}
		// Asymptotic optimism bound: X(N) <= N / (Z + R(1)).
		var minR float64
		for _, s := range n.Stations {
			minR += s.Demand.Seconds()
		}
		bound := float64(clients) / (n.Think.Seconds() + minR)
		return sol.Throughput <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsBracketMVA(t *testing.T) {
	n := network()
	for _, clients := range []int{1, 100, 4000, 7000, 20000} {
		lower, upper := n.Bounds(clients)
		sol := n.Solve(clients)
		if sol.Throughput < lower-1e-9 || sol.Throughput > upper+1e-9 {
			t.Errorf("N=%d: MVA X=%.2f outside bounds [%.2f, %.2f]",
				clients, sol.Throughput, lower, upper)
		}
	}
	if lo, hi := n.Bounds(0); lo != 0 || hi != 0 {
		t.Fatal("zero population bounds should be zero")
	}
}

// Property: bounds are ordered and monotone in population.
func TestPropertyBoundsMonotone(t *testing.T) {
	f := func(n16 uint16) bool {
		n := network()
		clients := int(n16%20000) + 1
		lo1, hi1 := n.Bounds(clients)
		lo2, hi2 := n.Bounds(clients + 100)
		if lo1 > hi1 || lo2 > hi2 {
			return false
		}
		return lo2 >= lo1-1e-12 && hi2 >= hi1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
