// Package analytic provides the classic queueing-theory baselines the
// paper argues against (Section III): exact Mean Value Analysis for the
// closed n-tier network, and M/M/1 / M/M/c tail probabilities.
//
// Two roles:
//
//   - Calibration: MVA predicts the throughput/utilization of the steady
//     system from the interaction mix alone; the simulation must agree in
//     the absence of millibottlenecks.
//   - The paper's argument, quantified: at 43–85% utilization, classic
//     queueing theory puts the probability of a multi-second response at
//     essentially zero — so the observed 3/6/9-second clusters cannot be
//     explained by steady-state queueing, only by the drop/retransmit
//     mechanism.
package analytic

import (
	"math"
	"time"

	"ctqosim/internal/workload"
)

// Station is one queueing resource visited by every request, described by
// its total service demand per request (visit ratio × per-visit time).
type Station struct {
	// Name identifies the station in solutions.
	Name string
	// Demand is the total service demand per request.
	Demand time.Duration
}

// ClosedNetwork is a product-form closed queueing network: N clients cycle
// through a think (delay) station and the queueing stations.
type ClosedNetwork struct {
	// Think is the mean think time (the delay station).
	Think time.Duration
	// Stations are the queueing resources.
	Stations []Station
}

// FromMix builds the 3-tier network implied by an interaction mix: one
// station per tier with the mix's mean demands.
func FromMix(mix *workload.Mix, think time.Duration) *ClosedNetwork {
	web, app, db := mix.MeanDemands()
	return &ClosedNetwork{
		Think: think,
		Stations: []Station{
			{Name: "web", Demand: web},
			{Name: "app", Demand: app},
			{Name: "db", Demand: db},
		},
	}
}

// Solution is the MVA result for a population size.
type Solution struct {
	// Clients echoes the population.
	Clients int
	// Throughput is the predicted system throughput in req/s.
	Throughput float64
	// ResponseTime is the predicted mean response time (excluding think).
	ResponseTime time.Duration
	// QueueLengths is the mean number of requests at each station.
	QueueLengths []float64
	// Utilizations is the predicted utilization of each station.
	Utilizations []float64
	// Bottleneck is the index of the highest-demand station.
	Bottleneck int
}

// Solve runs exact MVA for the given client population.
func (n *ClosedNetwork) Solve(clients int) Solution {
	k := len(n.Stations)
	demands := make([]float64, k)
	bottleneck := 0
	for i, s := range n.Stations {
		demands[i] = s.Demand.Seconds()
		if demands[i] > demands[bottleneck] {
			bottleneck = i
		}
	}
	think := n.Think.Seconds()

	queues := make([]float64, k)
	var x float64
	for pop := 1; pop <= clients; pop++ {
		var totalR float64
		resid := make([]float64, k)
		for i := range demands {
			resid[i] = demands[i] * (1 + queues[i])
			totalR += resid[i]
		}
		x = float64(pop) / (think + totalR)
		for i := range queues {
			queues[i] = x * resid[i]
		}
	}

	var rt float64
	utils := make([]float64, k)
	for i := range demands {
		utils[i] = x * demands[i]
		if x > 0 {
			rt += queues[i] / x
		}
	}
	return Solution{
		Clients:      clients,
		Throughput:   x,
		ResponseTime: time.Duration(rt * float64(time.Second)),
		QueueLengths: queues,
		Utilizations: utils,
		Bottleneck:   bottleneck,
	}
}

// Bounds returns the classic asymptotic throughput bounds for a
// population of n clients:
//
//	upper: X(n) ≤ min( n/(Z+D), 1/Dmax )
//	lower: X(n) ≥ n/(Z + n·D)
//
// where D is the total demand and Dmax the bottleneck demand. Exact MVA
// always falls between them; the bounds are cheap sanity rails for any
// measurement.
func (n *ClosedNetwork) Bounds(clients int) (lower, upper float64) {
	if clients < 1 {
		return 0, 0
	}
	var total float64
	for _, s := range n.Stations {
		total += s.Demand.Seconds()
	}
	z := n.Think.Seconds()
	nf := float64(clients)
	upper = nf / (z + total)
	if sat := n.SaturationThroughput(); sat < upper {
		upper = sat
	}
	lower = nf / (z + nf*total)
	return lower, upper
}

// SaturationThroughput is the asymptotic throughput bound 1/Dmax.
func (n *ClosedNetwork) SaturationThroughput() float64 {
	var dmax float64
	for _, s := range n.Stations {
		if d := s.Demand.Seconds(); d > dmax {
			dmax = d
		}
	}
	if dmax == 0 {
		return math.Inf(1)
	}
	return 1 / dmax
}

// MM1TailProbability returns P(response time > t) for an M/M/1-FCFS (or
// PS, whose sojourn tail matches in mean-exponential form) queue with the
// given arrival rate and service rate, both in 1/s. It returns 1 for an
// unstable queue.
func MM1TailProbability(arrival, serviceRate float64, t time.Duration) float64 {
	if serviceRate <= arrival {
		return 1
	}
	return math.Exp(-(serviceRate - arrival) * t.Seconds())
}

// ErlangC returns the probability an arriving request must wait in an
// M/M/c queue with c servers and offered load a = λ/μ (in Erlangs). It
// returns 1 when the queue is unstable (a >= c).
func ErlangC(c int, offered float64) float64 {
	if c < 1 || offered < 0 {
		return 0
	}
	if offered >= float64(c) {
		return 1
	}
	// Iteratively compute a^c/c! / Σ a^k/k! in a numerically stable way.
	sum := 1.0  // k=0 term / itself
	term := 1.0 // a^k / k!
	for k := 1; k <= c; k++ {
		term *= offered / float64(k)
		if k < c {
			sum += term
		}
	}
	rho := offered / float64(c)
	pc := term / (1 - rho)
	return pc / (sum + pc)
}

// MMcWaitTailProbability returns P(queueing delay > t) for M/M/c:
// ErlangC × exp(−(cμ−λ)t).
func MMcWaitTailProbability(c int, arrival, serviceRate float64, t time.Duration) float64 {
	if c < 1 || serviceRate <= 0 {
		return 1
	}
	if arrival >= float64(c)*serviceRate {
		return 1
	}
	pw := ErlangC(c, arrival/serviceRate)
	return pw * math.Exp(-(float64(c)*serviceRate-arrival)*t.Seconds())
}

// VLRTOddsUnderQueueing evaluates the paper's Section III argument: the
// probability classic queueing theory assigns to a >3s response at the
// given single-server utilization and mean service time. At the paper's
// operating points this is astronomically small, which is why steady-state
// queueing cannot explain the observed clusters.
func VLRTOddsUnderQueueing(utilization float64, meanService time.Duration) float64 {
	if meanService <= 0 {
		return 0
	}
	mu := 1 / meanService.Seconds()
	lambda := utilization * mu
	return MM1TailProbability(lambda, mu, 3*time.Second)
}
