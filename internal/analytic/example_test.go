package analytic_test

import (
	"fmt"
	"time"

	"ctqosim/internal/analytic"
	"ctqosim/internal/workload"
)

// Solve the paper's closed network at WL 4000 and compare with the
// measured 572 req/s.
func ExampleClosedNetwork_Solve() {
	model := analytic.FromMix(workload.DefaultMix(), workload.DefaultThinkTime)
	sol := model.Solve(4000)
	fmt.Printf("throughput: %.0f req/s\n", sol.Throughput)
	fmt.Printf("bottleneck: %s\n", model.Stations[sol.Bottleneck].Name)
	// Output:
	// throughput: 571 req/s
	// bottleneck: app
}

// The paper's Section III argument: at 43% utilization, steady-state
// queueing assigns essentially zero probability to a 3-second response.
func ExampleVLRTOddsUnderQueueing() {
	odds := analytic.VLRTOddsUnderQueueing(0.43, 750*time.Microsecond)
	fmt.Println(odds < 1e-100)
	// Output:
	// true
}
