package fault

import (
	"strings"
	"testing"
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
)

func setup() (*des.Simulator, *cpu.VM) {
	sim := des.NewSimulator(1)
	node := cpu.NewNode(sim, "n", 1)
	return sim, node.AddVM("vm", 1, 1)
}

func run(t *testing.T, sim *des.Simulator, horizon time.Duration) {
	t.Helper()
	if err := sim.Run(horizon); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
}

func mustLogFlush(t *testing.T, sim *des.Simulator, vm *cpu.VM, interval, duration time.Duration) *LogFlush {
	t.Helper()
	f, err := NewLogFlush(sim, vm, interval, duration)
	if err != nil {
		t.Fatalf("NewLogFlush: %v", err)
	}
	return f
}

func TestConstructorValidation(t *testing.T) {
	sim, vm := setup()
	tests := []struct {
		name string
		make func() error
		want string
	}{
		{"logflush nil sim", func() error {
			_, err := NewLogFlush(nil, vm, time.Second, time.Millisecond)
			return err
		}, "nil simulator"},
		{"logflush nil vm", func() error {
			_, err := NewLogFlush(sim, nil, time.Second, time.Millisecond)
			return err
		}, "nil VM"},
		{"logflush zero interval", func() error {
			_, err := NewLogFlush(sim, vm, 0, time.Millisecond)
			return err
		}, "interval must be > 0"},
		{"logflush negative duration", func() error {
			_, err := NewLogFlush(sim, vm, time.Second, -time.Millisecond)
			return err
		}, "duration must be > 0"},
		{"cpuhog nil sim", func() error {
			_, err := NewCPUHog(nil, vm, time.Second, time.Millisecond)
			return err
		}, "nil simulator"},
		{"cpuhog nil vm", func() error {
			_, err := NewCPUHog(sim, nil, time.Second, time.Millisecond)
			return err
		}, "nil VM"},
		{"cpuhog zero interval", func() error {
			_, err := NewCPUHog(sim, vm, 0, time.Millisecond)
			return err
		}, "interval must be > 0"},
		{"cpuhog zero demand", func() error {
			_, err := NewCPUHog(sim, vm, time.Second, 0)
			return err
		}, "demand must be > 0"},
		{"gcpause nil sim", func() error {
			_, err := NewGCPause(nil, vm, time.Second, time.Millisecond, 0, nil)
			return err
		}, "nil simulator"},
		{"gcpause nil vm", func() error {
			_, err := NewGCPause(sim, nil, time.Second, time.Millisecond, 0, nil)
			return err
		}, "nil VM"},
		{"gcpause negative interval", func() error {
			_, err := NewGCPause(sim, vm, -time.Second, time.Millisecond, 0, nil)
			return err
		}, "interval must be > 0"},
		{"gcpause negative base", func() error {
			_, err := NewGCPause(sim, vm, time.Second, -time.Millisecond, 0, nil)
			return err
		}, "must be >= 0"},
		{"gcpause all-zero pause", func() error {
			_, err := NewGCPause(sim, vm, time.Second, 0, 0, nil)
			return err
		}, "both zero"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.make()
			if err == nil {
				t.Fatal("constructor accepted invalid arguments")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestLogFlushStallsPeriodically(t *testing.T) {
	sim, vm := setup()
	f := mustLogFlush(t, sim, vm, 30*time.Second, 400*time.Millisecond)
	f.Start()

	run(t, sim, 95*time.Second)
	if f.Flushes() != 3 {
		t.Fatalf("flushes = %d, want 3 (at 30/60/90s)", f.Flushes())
	}
	u := vm.Usage()
	want := 3 * 400 * time.Millisecond
	if u.Blocked != want {
		t.Fatalf("blocked = %v, want %v", u.Blocked, want)
	}
}

func TestLogFlushStop(t *testing.T) {
	sim, vm := setup()
	f := mustLogFlush(t, sim, vm, time.Second, 10*time.Millisecond)
	f.Start()
	sim.Schedule(2500*time.Millisecond, f.Stop)
	run(t, sim, 10*time.Second)
	if f.Flushes() != 2 {
		t.Fatalf("flushes = %d, want 2", f.Flushes())
	}
}

func TestLogFlushStartIdempotent(t *testing.T) {
	sim, vm := setup()
	f := mustLogFlush(t, sim, vm, time.Second, 10*time.Millisecond)
	f.Start()
	f.Start()
	run(t, sim, 1500*time.Millisecond)
	if f.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1 (no double ticker)", f.Flushes())
	}
}

func TestInjectorInterfaceFiredCounts(t *testing.T) {
	sim, vm := setup()
	lf := mustLogFlush(t, sim, vm, time.Second, time.Millisecond)
	hog, err := NewCPUHog(sim, vm, time.Second, time.Millisecond)
	if err != nil {
		t.Fatalf("NewCPUHog: %v", err)
	}
	gc, err := NewGCPause(sim, vm, time.Second, time.Millisecond, 0, nil)
	if err != nil {
		t.Fatalf("NewGCPause: %v", err)
	}
	injectors := []Injector{lf, hog, gc}
	for _, in := range injectors {
		in.Start()
	}
	run(t, sim, 3500*time.Millisecond)
	for i, in := range injectors {
		if in.Fired() != 3 {
			t.Errorf("injector %d: Fired() = %d, want 3", i, in.Fired())
		}
		in.Stop()
	}
	run(t, sim, 10*time.Second)
	for i, in := range injectors {
		if in.Fired() != 3 {
			t.Errorf("injector %d fired after Stop: %d", i, in.Fired())
		}
	}
}

func TestCPUHogSaturatesSharedCore(t *testing.T) {
	sim := des.NewSimulator(1)
	node := cpu.NewNode(sim, "n", 1)
	steady := node.AddVM("steady", 1, 1)
	hogVM := node.AddVM("hog", 1, 1)

	hog, err := NewCPUHog(sim, hogVM, 15*time.Second, 400*time.Millisecond)
	if err != nil {
		t.Fatalf("NewCPUHog: %v", err)
	}
	hog.Start()

	// A steady job that should take 100ms alone.
	var doneAt time.Duration
	sim.Schedule(15*time.Second, func() {
		steady.Submit(100*time.Millisecond, func() { doneAt = sim.Now() })
	})
	run(t, sim, 20*time.Second)
	if hog.Bursts() != 1 {
		t.Fatalf("bursts = %d, want 1", hog.Bursts())
	}
	// Sharing the core with the 400ms hog burst, the 100ms job takes 200ms.
	want := 15*time.Second + 200*time.Millisecond
	if doneAt < want-time.Millisecond || doneAt > want+time.Millisecond {
		t.Fatalf("steady job finished at %v, want ~%v", doneAt, want)
	}
}

func TestGCPauseScalesWithLoad(t *testing.T) {
	sim, vm := setup()
	threads := 0
	g, err := NewGCPause(sim, vm, time.Second, 10*time.Millisecond, time.Millisecond, func() int {
		return threads
	})
	if err != nil {
		t.Fatalf("NewGCPause: %v", err)
	}
	g.Start()

	sim.Schedule(1500*time.Millisecond, func() { threads = 100 })
	run(t, sim, 2500*time.Millisecond)
	if g.Pauses() != 2 {
		t.Fatalf("pauses = %d, want 2", g.Pauses())
	}
	// First pause 10ms (0 threads), second 110ms (100 threads).
	u := vm.Usage()
	want := 120 * time.Millisecond
	if u.Blocked != want {
		t.Fatalf("blocked = %v, want %v", u.Blocked, want)
	}
}

func TestGCPauseNilLoadFn(t *testing.T) {
	sim, vm := setup()
	g, err := NewGCPause(sim, vm, time.Second, 5*time.Millisecond, time.Millisecond, nil)
	if err != nil {
		t.Fatalf("NewGCPause: %v", err)
	}
	g.Start()
	run(t, sim, 1100*time.Millisecond)
	if vm.Usage().Blocked != 5*time.Millisecond {
		t.Fatalf("blocked = %v, want 5ms", vm.Usage().Blocked)
	}
}
