package fault

import (
	"testing"
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
)

func setup() (*des.Simulator, *cpu.VM) {
	sim := des.NewSimulator(1)
	node := cpu.NewNode(sim, "n", 1)
	return sim, node.AddVM("vm", 1, 1)
}

func run(t *testing.T, sim *des.Simulator, horizon time.Duration) {
	t.Helper()
	if err := sim.Run(horizon); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
}

func TestLogFlushStallsPeriodically(t *testing.T) {
	sim, vm := setup()
	f := NewLogFlush(sim, vm, 30*time.Second, 400*time.Millisecond)
	f.Start()

	run(t, sim, 95*time.Second)
	if f.Flushes() != 3 {
		t.Fatalf("flushes = %d, want 3 (at 30/60/90s)", f.Flushes())
	}
	u := vm.Usage()
	want := 3 * 400 * time.Millisecond
	if u.Blocked != want {
		t.Fatalf("blocked = %v, want %v", u.Blocked, want)
	}
}

func TestLogFlushDefaults(t *testing.T) {
	sim, vm := setup()
	f := NewLogFlush(sim, vm, 0, 0)
	f.Start()
	run(t, sim, 31*time.Second)
	if f.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1 with default 30s interval", f.Flushes())
	}
}

func TestLogFlushStop(t *testing.T) {
	sim, vm := setup()
	f := NewLogFlush(sim, vm, time.Second, 10*time.Millisecond)
	f.Start()
	sim.Schedule(2500*time.Millisecond, f.Stop)
	run(t, sim, 10*time.Second)
	if f.Flushes() != 2 {
		t.Fatalf("flushes = %d, want 2", f.Flushes())
	}
}

func TestLogFlushStartIdempotent(t *testing.T) {
	sim, vm := setup()
	f := NewLogFlush(sim, vm, time.Second, 10*time.Millisecond)
	f.Start()
	f.Start()
	run(t, sim, 1500*time.Millisecond)
	if f.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1 (no double ticker)", f.Flushes())
	}
}

func TestCPUHogSaturatesSharedCore(t *testing.T) {
	sim := des.NewSimulator(1)
	node := cpu.NewNode(sim, "n", 1)
	steady := node.AddVM("steady", 1, 1)
	hogVM := node.AddVM("hog", 1, 1)

	hog := NewCPUHog(sim, hogVM, 15*time.Second, 400*time.Millisecond)
	hog.Start()

	// A steady job that should take 100ms alone.
	var doneAt time.Duration
	sim.Schedule(15*time.Second, func() {
		steady.Submit(100*time.Millisecond, func() { doneAt = sim.Now() })
	})
	run(t, sim, 20*time.Second)
	if hog.Bursts() != 1 {
		t.Fatalf("bursts = %d, want 1", hog.Bursts())
	}
	// Sharing the core with the 400ms hog burst, the 100ms job takes 200ms.
	want := 15*time.Second + 200*time.Millisecond
	if doneAt < want-time.Millisecond || doneAt > want+time.Millisecond {
		t.Fatalf("steady job finished at %v, want ~%v", doneAt, want)
	}
}

func TestCPUHogZeroIntervalNeverStarts(t *testing.T) {
	sim, vm := setup()
	h := NewCPUHog(sim, vm, 0, time.Second)
	h.Start()
	run(t, sim, 10*time.Second)
	if h.Bursts() != 0 {
		t.Fatalf("bursts = %d, want 0", h.Bursts())
	}
}

func TestGCPauseScalesWithLoad(t *testing.T) {
	sim, vm := setup()
	threads := 0
	g := NewGCPause(sim, vm, time.Second, 10*time.Millisecond, time.Millisecond, func() int {
		return threads
	})
	g.Start()

	sim.Schedule(1500*time.Millisecond, func() { threads = 100 })
	run(t, sim, 2500*time.Millisecond)
	if g.Pauses() != 2 {
		t.Fatalf("pauses = %d, want 2", g.Pauses())
	}
	// First pause 10ms (0 threads), second 110ms (100 threads).
	u := vm.Usage()
	want := 120 * time.Millisecond
	if u.Blocked != want {
		t.Fatalf("blocked = %v, want %v", u.Blocked, want)
	}
}

func TestGCPauseNilLoadFn(t *testing.T) {
	sim, vm := setup()
	g := NewGCPause(sim, vm, time.Second, 5*time.Millisecond, time.Millisecond, nil)
	g.Start()
	run(t, sim, 1100*time.Millisecond)
	if vm.Usage().Blocked != 5*time.Millisecond {
		t.Fatalf("blocked = %v, want 5ms", vm.Usage().Blocked)
	}
}

func TestGCPauseZeroPauseSkipsBlock(t *testing.T) {
	sim, vm := setup()
	g := NewGCPause(sim, vm, time.Second, 0, 0, nil)
	g.Start()
	run(t, sim, 2100*time.Millisecond)
	if g.Pauses() != 2 {
		t.Fatalf("pauses = %d, want 2", g.Pauses())
	}
	if vm.Usage().Blocked != 0 {
		t.Fatalf("blocked = %v, want 0", vm.Usage().Blocked)
	}
}
