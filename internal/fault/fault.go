// Package fault injects the millibottlenecks studied by the paper.
//
// Section IV reproduces VLRT requests from two millibottleneck sources:
// CPU contention caused by a consolidated bursty co-tenant (Fig. 3), and
// I/O stalls caused by the collectl monitor flushing its log to disk every
// 30 seconds (Fig. 5). The CPU case arises naturally from the ntier
// package's consolidated placement plus a bursty workload; this package
// provides the direct injectors: the periodic log-flush stall, a raw CPU
// hog for unit-level experiments, and a JVM garbage-collection pause model
// (the millibottleneck source of the authors' earlier TRIOS'14 study,
// cited as [32]).
//
// Every injector implements Injector — Start, Stop and a Fired count —
// so the scenario engine can script them uniformly: a timed event starts
// one mid-run, a later "stop" event addresses it by id, and the run
// report can say how often each one actually fired. Constructors
// validate their arguments and return an error instead of building an
// injector that would silently never fire.
package fault

import (
	"errors"
	"fmt"
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
)

// DefaultFlushInterval matches collectl's log-flush period in the paper.
const DefaultFlushInterval = 30 * time.Second

// DefaultFlushDuration is the observed length of the resulting I/O-wait
// millibottleneck (sub-second, Fig. 5a).
const DefaultFlushDuration = 400 * time.Millisecond

// Injector is the uniform face of every millibottleneck source: Start
// begins injecting, Stop cancels future injections (an in-progress stall
// completes), and Fired counts the injections so far.
type Injector interface {
	Start()
	Stop()
	Fired() int
}

// Compile-time checks that every injector satisfies Injector.
var (
	_ Injector = (*LogFlush)(nil)
	_ Injector = (*CPUHog)(nil)
	_ Injector = (*GCPause)(nil)
)

// validate rejects the argument mistakes every injector shares.
func validate(sim *des.Simulator, vm *cpu.VM) error {
	if sim == nil {
		return errors.New("nil simulator")
	}
	if vm == nil {
		return errors.New("nil VM")
	}
	return nil
}

// LogFlush periodically stalls a VM on I/O, modeling the monitoring tool's
// log flush from memory to disk.
type LogFlush struct {
	sim      *des.Simulator
	vm       *cpu.VM
	interval time.Duration
	duration time.Duration
	ticker   *des.Ticker
	flushes  int
}

// NewLogFlush creates a flush injector for vm that stalls it for duration
// every interval; both must be positive (DefaultFlushInterval and
// DefaultFlushDuration are the paper's values). Call Start to begin.
func NewLogFlush(sim *des.Simulator, vm *cpu.VM, interval, duration time.Duration) (*LogFlush, error) {
	if err := validate(sim, vm); err != nil {
		return nil, fmt.Errorf("logflush: %w", err)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("logflush: interval must be > 0, got %v", interval)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("logflush: duration must be > 0, got %v", duration)
	}
	return &LogFlush{sim: sim, vm: vm, interval: interval, duration: duration}, nil
}

// Start schedules flushes every interval.
func (f *LogFlush) Start() {
	if f.ticker != nil {
		return
	}
	f.ticker = des.NewTicker(f.sim, f.interval, func(time.Duration) {
		f.flushes++
		f.vm.Block(f.duration)
	})
}

// Stop cancels future flushes; an in-progress stall still completes.
func (f *LogFlush) Stop() {
	if f.ticker != nil {
		f.ticker.Stop()
	}
}

// Flushes returns the number of flushes injected so far.
func (f *LogFlush) Flushes() int { return f.flushes }

// Fired implements Injector.
func (f *LogFlush) Fired() int { return f.flushes }

// CPUHog periodically dumps a burst of CPU demand on a VM, saturating the
// node it shares. It is the distilled form of the consolidated
// SysBursty-MySQL co-tenant: useful where the full second system would be
// noise.
type CPUHog struct {
	sim      *des.Simulator
	vm       *cpu.VM
	interval time.Duration
	demand   time.Duration
	ticker   *des.Ticker
	bursts   int
}

// NewCPUHog creates a hog that submits demand of CPU work to vm every
// interval; both must be positive. Call Start to begin.
func NewCPUHog(sim *des.Simulator, vm *cpu.VM, interval, demand time.Duration) (*CPUHog, error) {
	if err := validate(sim, vm); err != nil {
		return nil, fmt.Errorf("cpuhog: %w", err)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("cpuhog: interval must be > 0, got %v", interval)
	}
	if demand <= 0 {
		return nil, fmt.Errorf("cpuhog: demand must be > 0, got %v", demand)
	}
	return &CPUHog{sim: sim, vm: vm, interval: interval, demand: demand}, nil
}

// Start schedules the bursts.
func (h *CPUHog) Start() {
	if h.ticker != nil {
		return
	}
	h.ticker = des.NewTicker(h.sim, h.interval, func(time.Duration) {
		h.bursts++
		h.vm.Submit(h.demand, nil)
	})
}

// Stop cancels future bursts.
func (h *CPUHog) Stop() {
	if h.ticker != nil {
		h.ticker.Stop()
	}
}

// Bursts returns the number of bursts injected so far.
func (h *CPUHog) Bursts() int { return h.bursts }

// Fired implements Injector.
func (h *CPUHog) Fired() int { return h.bursts }

// GCPause models JVM stop-the-world collections: the VM freezes for a
// pause whose length grows with the number of live threads, the non-linear
// effect the paper cites when arguing against 2000-thread pools
// (Section V-E). Used by the ablation benchmarks.
type GCPause struct {
	sim      *des.Simulator
	vm       *cpu.VM
	interval time.Duration
	base     time.Duration
	perItem  time.Duration
	loadFn   func() int
	ticker   *des.Ticker
	pauses   int
}

// NewGCPause creates a GC injector: every interval (which must be
// positive) the VM blocks for base + perItem × loadFn(). base and perItem
// must be non-negative and not both zero; loadFn typically reports live
// threads or heap-resident requests, nil means zero.
func NewGCPause(sim *des.Simulator, vm *cpu.VM, interval, base, perItem time.Duration, loadFn func() int) (*GCPause, error) {
	if err := validate(sim, vm); err != nil {
		return nil, fmt.Errorf("gcpause: %w", err)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("gcpause: interval must be > 0, got %v", interval)
	}
	if base < 0 || perItem < 0 {
		return nil, fmt.Errorf("gcpause: base and per-item pause must be >= 0, got %v and %v", base, perItem)
	}
	if base == 0 && perItem == 0 {
		return nil, errors.New("gcpause: base and per-item pause are both zero; the injector would never pause anything")
	}
	return &GCPause{
		sim: sim, vm: vm, interval: interval,
		base: base, perItem: perItem, loadFn: loadFn,
	}, nil
}

// Start schedules collections.
func (g *GCPause) Start() {
	if g.ticker != nil {
		return
	}
	g.ticker = des.NewTicker(g.sim, g.interval, func(time.Duration) {
		g.pauses++
		pause := g.base
		if g.loadFn != nil {
			pause += time.Duration(g.loadFn()) * g.perItem
		}
		if pause > 0 {
			g.vm.Block(pause)
		}
	})
}

// Stop cancels future collections.
func (g *GCPause) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
	}
}

// Pauses returns the number of collections injected so far.
func (g *GCPause) Pauses() int { return g.pauses }

// Fired implements Injector.
func (g *GCPause) Fired() int { return g.pauses }
