package span

import (
	"math/rand"
	"sort"
	"time"
)

// Sampler bounds trace memory: every trace whose response time exceeds the
// tail threshold is kept in full (those are the requests the analysis must
// explain), while normal traces flow through a classic reservoir sample of
// fixed capacity. The reservoir uses its own seeded RNG so sampling is
// reproducible and independent of the simulation's random stream.
type Sampler struct {
	threshold time.Duration
	capacity  int
	rng       *rand.Rand

	tail       []*Trace
	reservoir  []*Trace
	seenNormal int64
}

// NewSampler creates a sampler keeping all traces slower than threshold
// plus a reservoir of at most capacity normal ones.
func NewSampler(seed int64, threshold time.Duration, capacity int) *Sampler {
	if threshold <= 0 {
		threshold = DefaultTailThreshold
	}
	if capacity <= 0 {
		capacity = DefaultReservoir
	}
	return &Sampler{
		threshold: threshold,
		capacity:  capacity,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Offer presents a finished trace for keeping.
func (s *Sampler) Offer(t *Trace) {
	if t == nil {
		return
	}
	if t.ResponseTime() > s.threshold {
		s.tail = append(s.tail, t)
		return
	}
	s.seenNormal++
	if len(s.reservoir) < s.capacity {
		s.reservoir = append(s.reservoir, t)
		return
	}
	// Algorithm R: replace a random slot with probability capacity/seen.
	if j := s.rng.Int63n(s.seenNormal); j < int64(s.capacity) {
		s.reservoir[j] = t
	}
}

// TailExemplars returns the kept over-threshold traces, slowest first
// (ties broken by request ID for determinism).
func (s *Sampler) TailExemplars() []*Trace {
	out := make([]*Trace, len(s.tail))
	copy(out, s.tail)
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].ResponseTime(), out[j].ResponseTime()
		if ri != rj {
			return ri > rj
		}
		return out[i].RequestID < out[j].RequestID
	})
	return out
}

// Reservoir returns the current normal-trace sample (shared slice; callers
// must not mutate).
func (s *Sampler) Reservoir() []*Trace { return s.reservoir }

// SeenNormal returns how many sub-threshold traces were offered.
func (s *Sampler) SeenNormal() int64 { return s.seenNormal }

// Threshold returns the tail-exemplar latency bound.
func (s *Sampler) Threshold() time.Duration { return s.threshold }
