package span

import "time"

// DefaultTailThreshold marks a request as a tail exemplar: its full span
// tree is always kept. One second is well below the 3s VLRT criterion, so
// every retransmission-afflicted request qualifies, plus the deep-queue
// requests that almost made it.
const DefaultTailThreshold = time.Second

// DefaultReservoir is the seeded-reservoir capacity for sub-threshold
// traces.
const DefaultReservoir = 128

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// Seed drives the reservoir sampler's own RNG (never the
	// simulator's, so tracing does not perturb workload randomness).
	Seed int64
	// TailThreshold is the keep-everything latency bound; zero defaults
	// to DefaultTailThreshold.
	TailThreshold time.Duration
	// Reservoir is the normal-trace reservoir capacity; zero defaults to
	// DefaultReservoir.
	Reservoir int
}

// Tracer creates and collects per-request traces. Memory is bounded at
// high workloads: full trees are kept only for tail exemplars (plus a
// fixed-size reservoir of normal requests), while every finished trace is
// folded into a compact per-request breakdown record.
//
// Every exported method is safe on a nil receiver — that is how disabled
// tracing stays free on the hot path — and ctqo-lint's nilsafe analyzer
// enforces the guard on each of them.
//
//lint:nilsafe
type Tracer struct {
	now     func() time.Duration
	sampler *Sampler
	records []Record
	started int64
}

// Record is the compact critical-path summary of one finished request:
// its response time and the exclusive time per (tier, kind) category.
type Record struct {
	// RT is the end-to-end response time.
	RT time.Duration
	// Cats are the non-zero exclusive-time categories.
	Cats []SelfTime
}

// NewTracer creates a tracer reading time from now (the simulator clock,
// or a wall-clock offset for live mode).
func NewTracer(now func() time.Duration, cfg TracerConfig) *Tracer {
	if cfg.TailThreshold <= 0 {
		cfg.TailThreshold = DefaultTailThreshold
	}
	if cfg.Reservoir <= 0 {
		cfg.Reservoir = DefaultReservoir
	}
	return &Tracer{
		now:     now,
		sampler: NewSampler(cfg.Seed, cfg.TailThreshold, cfg.Reservoir),
	}
}

// StartRequest opens a trace for one request. On a nil tracer it returns
// nil, which disables all downstream span recording for the request.
//
//lint:hotpath disabled-tracer path must be free
func (tr *Tracer) StartRequest(reqID uint64, class string) *Trace {
	if tr == nil {
		return nil
	}
	tr.started++
	return newTrace(tr.now, reqID, class) //lint:allow allocs enabled tracer; a nil tracer returns before this
}

// Finish closes the trace, folds it into the breakdown records and offers
// the full tree to the tail-exemplar sampler. Safe on a nil tracer or a
// nil trace: everything past the guard is the enabled-tracer path, priced
// only when tracing is on.
//
//lint:hotpath disabled-tracer path must be free
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.finish()
	rec := Record{RT: t.ResponseTime()}
	for _, st := range t.SelfTimes() { //lint:allow allocs enabled-tracer decomposition
		if st.Self > 0 {
			rec.Cats = append(rec.Cats, st) //lint:allow allocs enabled-tracer record
		}
	}
	tr.records = append(tr.records, rec) //lint:allow allocs enabled-tracer record, one per finished request
	tr.sampler.Offer(t)                  //lint:allow allocs enabled-tracer sampling
}

// Started returns the number of traces handed out.
func (tr *Tracer) Started() int64 {
	if tr == nil {
		return 0
	}
	return tr.started
}

// Finished returns the number of traces folded into the breakdown.
func (tr *Tracer) Finished() int {
	if tr == nil {
		return 0
	}
	return len(tr.records)
}

// Records returns the compact per-request summaries (shared slice;
// callers must not mutate).
func (tr *Tracer) Records() []Record {
	if tr == nil {
		return nil
	}
	return tr.records
}

// TailExemplars returns the kept over-threshold traces, slowest first.
func (tr *Tracer) TailExemplars() []*Trace {
	if tr == nil {
		return nil
	}
	return tr.sampler.TailExemplars()
}

// Reservoir returns the seeded sample of normal (sub-threshold) traces.
func (tr *Tracer) Reservoir() []*Trace {
	if tr == nil {
		return nil
	}
	return tr.sampler.Reservoir()
}
