package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a settable clock standing in for the simulator.
type fakeClock struct{ at time.Duration }

func (c *fakeClock) now() time.Duration { return c.at }

func TestTraceTreeAndSelfTimes(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now, TracerConfig{Seed: 1})

	tc := tr.StartRequest(7, "browse")
	if !tc.Enabled() {
		t.Fatal("trace should be enabled")
	}
	// web: queue 10ms, then service 100ms containing a 60ms downstream.
	clk.at = 5 * time.Millisecond
	q := tc.Start(KindQueueWait, "web", RootID)
	clk.at = 15 * time.Millisecond
	tc.End(q)
	svc := tc.Start(KindService, "web", RootID)
	clk.at = 20 * time.Millisecond
	ds := tc.Start(KindDownstream, "app", svc)
	clk.at = 80 * time.Millisecond
	tc.End(ds)
	clk.at = 115 * time.Millisecond
	tc.End(svc)
	clk.at = 120 * time.Millisecond
	tr.Finish(tc)

	if got := tc.ResponseTime(); got != 120*time.Millisecond {
		t.Fatalf("response time = %v, want 120ms", got)
	}
	if len(tc.Spans()) != 4 {
		t.Fatalf("span count = %d, want 4", len(tc.Spans()))
	}

	// Self times must sum exactly to the response time.
	var sum time.Duration
	byKind := map[Kind]time.Duration{}
	for _, st := range tc.SelfTimes() {
		sum += st.Self
		byKind[st.Kind] += st.Self
	}
	if sum != tc.ResponseTime() {
		t.Fatalf("self times sum to %v, want %v", sum, tc.ResponseTime())
	}
	if byKind[KindQueueWait] != 10*time.Millisecond {
		t.Errorf("queue self = %v, want 10ms", byKind[KindQueueWait])
	}
	if byKind[KindService] != 40*time.Millisecond {
		t.Errorf("service self = %v, want 40ms (100ms minus 60ms downstream)",
			byKind[KindService])
	}
	if byKind[KindDownstream] != 60*time.Millisecond {
		t.Errorf("downstream self = %v, want 60ms", byKind[KindDownstream])
	}

	tree := tc.Tree()
	for _, want := range []string{"request 7", "queue-wait web", "service web", "downstream app"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tc := tr.StartRequest(1, "x")
	if tc != nil {
		t.Fatal("nil tracer must hand out nil traces")
	}
	if tc.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	id := tc.Start(KindService, "web", RootID)
	if id != 0 {
		t.Fatalf("nil trace Start = %d, want 0", id)
	}
	tc.End(id)
	tc.Annotate(id, "noop")
	tr.Finish(tc)
	if tr.Breakdown() != nil || tr.TailExemplars() != nil || tr.Records() != nil {
		t.Fatal("nil tracer accessors must return nil")
	}
	if got := tc.Tree(); !strings.Contains(got, "no trace") {
		t.Fatalf("nil trace Tree = %q", got)
	}
}

func TestEndIsIdempotentAndFinishClampsOpenSpans(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now, TracerConfig{Seed: 1})
	tc := tr.StartRequest(1, "x")
	s := tc.Start(KindService, "web", RootID)
	clk.at = 10 * time.Millisecond
	tc.End(s)
	clk.at = 50 * time.Millisecond
	tc.End(s) // second close must not move the end
	dangling := tc.Start(KindDownstream, "app", s)
	clk.at = 70 * time.Millisecond
	tr.Finish(tc)

	spans := tc.Spans()
	if d := spans[s-1].Duration(); d != 10*time.Millisecond {
		t.Errorf("re-closed span duration = %v, want 10ms", d)
	}
	if d := spans[dangling-1]; d.End != 70*time.Millisecond {
		t.Errorf("dangling span end = %v, want clamped to 70ms", d.End)
	}
}

func TestSamplerTailAndReservoirDeterminism(t *testing.T) {
	run := func(seed int64) ([]uint64, []uint64) {
		clk := &fakeClock{}
		tr := NewTracer(clk.now, TracerConfig{
			Seed: seed, TailThreshold: time.Second, Reservoir: 4,
		})
		base := time.Duration(0)
		for i := 0; i < 100; i++ {
			clk.at = base
			tc := tr.StartRequest(uint64(i), "x")
			rt := 10 * time.Millisecond
			if i%25 == 24 { // four tail requests
				rt = 3*time.Second + time.Duration(i)*time.Millisecond
			}
			clk.at = base + rt
			tr.Finish(tc)
			base += 5 * time.Second
		}
		var tail, res []uint64
		for _, x := range tr.TailExemplars() {
			tail = append(tail, x.RequestID)
		}
		for _, x := range tr.Reservoir() {
			res = append(res, x.RequestID)
		}
		return tail, res
	}

	tail1, res1 := run(42)
	tail2, res2 := run(42)
	if len(tail1) != 4 {
		t.Fatalf("tail exemplars = %d, want 4", len(tail1))
	}
	// Slowest first: request 99 had the largest RT.
	if tail1[0] != 99 {
		t.Errorf("slowest exemplar = %d, want 99", tail1[0])
	}
	if len(res1) != 4 {
		t.Fatalf("reservoir size = %d, want 4", len(res1))
	}
	for i := range tail1 {
		if tail1[i] != tail2[i] {
			t.Fatalf("tail not deterministic: %v vs %v", tail1, tail2)
		}
	}
	for i := range res1 {
		if res1[i] != res2[i] {
			t.Fatalf("reservoir not deterministic: %v vs %v", res1, res2)
		}
	}
}

func TestBreakdownAttributesTailToRetransmits(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now, TracerConfig{Seed: 1})
	base := time.Duration(0)
	// 990 fast all-service requests, 10 slow ones dominated by two 3s gaps.
	for i := 0; i < 1000; i++ {
		clk.at = base
		tc := tr.StartRequest(uint64(i), "x")
		svc := tc.Start(KindService, "web", RootID)
		if i >= 990 {
			g1 := tc.Start(KindRetransmit, "db", svc)
			clk.at = base + 3*time.Second
			tc.End(g1)
			g2 := tc.Start(KindRetransmit, "db", svc)
			clk.at = base + 6*time.Second
			tc.End(g2)
		}
		clk.at += 20 * time.Millisecond
		tc.End(svc)
		tr.Finish(tc)
		base = clk.at
	}

	b := tr.Breakdown()
	if b == nil || b.Requests != 1000 {
		t.Fatalf("breakdown over %v requests, want 1000", b)
	}
	if b.Deciles[0].Share(KindService) < 0.99 {
		t.Errorf("D1 service share = %v, want ~1", b.Deciles[0].Share(KindService))
	}
	if b.VLRT.Count != 10 {
		t.Fatalf("VLRT count = %d, want 10", b.VLRT.Count)
	}
	if s := b.VLRT.Share(KindRetransmit); s < 0.9 {
		t.Errorf("VLRT retransmit share = %v, want >= 0.9", s)
	}
	if ws := b.P999.WaitShare(); ws < 0.9 {
		t.Errorf("p99.9 wait share = %v, want >= 0.9", ws)
	}
	dbGaps := b.VLRT.ByTierKind[TierKind{Tier: "db", Kind: KindRetransmit}]
	if dbGaps != 10*6*time.Second {
		t.Errorf("db retransmit time = %v, want 60s", dbGaps)
	}
	out := b.String()
	for _, want := range []string{"VLRT>3s", "p99.9", "retran%"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTraceEvents(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now, TracerConfig{Seed: 1})
	tc := tr.StartRequest(42, "browse")
	svc := tc.Start(KindService, "web", RootID)
	gap := tc.Start(KindRetransmit, "db", svc)
	tc.Annotate(gap, "attempt 1 dropped by db; RTO wait")
	clk.at = 3 * time.Second
	tc.End(gap)
	clk.at = 3*time.Second + 20*time.Millisecond
	tc.End(svc)
	tr.Finish(tc)

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, []*Trace{tc, nil}); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   uint64         `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	var sawRetransmit, sawMeta bool
	for _, ev := range f.TraceEvents {
		if ev.PID != 42 && ev.PID != 0 {
			t.Errorf("pid = %d, want 42", ev.PID)
		}
		if ev.Phase == "M" {
			sawMeta = true
		}
		if ev.Phase == "X" && ev.Name == "retransmit" {
			sawRetransmit = true
			if ev.Dur != 3e6 {
				t.Errorf("retransmit dur = %v µs, want 3e6", ev.Dur)
			}
			if d, _ := ev.Args["detail"].(string); !strings.Contains(d, "dropped by db") {
				t.Errorf("retransmit args = %v, want drop annotation", ev.Args)
			}
		}
	}
	if !sawRetransmit || !sawMeta {
		t.Fatalf("missing events (retransmit=%v meta=%v):\n%s",
			sawRetransmit, sawMeta, buf.String())
	}
}
