// Package span implements per-request span-tree tracing for the n-tier
// reproduction: the micro-level counterpart of the aggregate CTQO report.
//
// The paper's Section IV methodology explains each Very Long Response Time
// request causally — which server dropped its packet, how many 3-second
// retransmission timeouts it waited through, where it queued. This package
// makes that decomposition first-class: every request carries a Trace, and
// each tier appends child spans for accept-queue wait, thread/worker
// service, downstream calls, connection-pool waits and retransmission gaps
// (annotated with the dropping server). A completed 6-second VLRT request
// therefore decomposes exactly into the paper's mechanisms: two 3s RTO
// gaps plus milliseconds of queueing and service.
//
// Tracing is opt-in and free when off: all Trace methods are safe on a nil
// receiver and a nil *Tracer hands out nil traces, so instrumented code
// calls them unconditionally and a disabled tracer costs no allocations on
// the hot path. Enabling tracing does not change simulation dynamics — the
// tracer schedules no events and draws from its own seeded RNG, never the
// simulator's.
package span

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind classifies what a span's interval was spent on.
type Kind uint8

// Span kinds, in causal-story order.
const (
	// KindRequest is the root span: the end-to-end request.
	KindRequest Kind = iota + 1
	// KindQueueWait is time spent admitted but unserved: a sync server's
	// accept queue or an async server's ready queue (including
	// continuation hand-offs waiting for a free worker).
	KindQueueWait
	// KindService is time holding a thread or worker. For a synchronous
	// server it covers the whole thread-held visit (downstream children
	// subtract out); for an asynchronous server it covers one CPU burst.
	KindService
	// KindDownstream is a call to the next tier, from send to reply.
	KindDownstream
	// KindRetransmit is an RTO gap: a delivery attempt was dropped and the
	// sender is waiting for the retransmission timer. Tier names the
	// server that dropped the packet.
	KindRetransmit
	// KindPoolWait is time blocked on a connection pool (the JDBC pool
	// between the app and database tiers).
	KindPoolWait
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindQueueWait:
		return "queue-wait"
	case KindService:
		return "service"
	case KindDownstream:
		return "downstream"
	case KindRetransmit:
		return "retransmit"
	case KindPoolWait:
		return "pool-wait"
	default:
		return "unknown"
	}
}

// ID identifies a span within its trace. The zero ID means "no span"; all
// operations on it are no-ops, so disabled-tracer code paths need no
// branches.
type ID int32

// RootID is the ID of every trace's root request span.
const RootID ID = 1

// open marks a span whose End has not been recorded yet.
const open = time.Duration(-1)

// Span is one timed interval of a request's life.
type Span struct {
	// ID is this span's identifier; Parent is the enclosing span (0 only
	// for the root).
	ID, Parent ID
	// Kind classifies the interval.
	Kind Kind
	// Tier is the server the interval belongs to; for KindRetransmit it is
	// the server that dropped the packet, for KindRequest the client.
	Tier string
	// Detail carries an optional annotation (e.g. which attempt was
	// dropped).
	Detail string
	// Start and End bound the interval in simulated (or live wall-clock)
	// time. End is negative while the span is open.
	Start, End time.Duration
}

// Duration returns the span length (zero while open).
func (s Span) Duration() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Trace is one request's span tree, stored as a flat slice indexed by ID.
// Exported methods are nil-receiver safe (enforced by ctqo-lint) so a
// disabled tracer's nil traces cost callers nothing.
//
//lint:nilsafe
type Trace struct {
	// RequestID echoes the workload request.
	RequestID uint64
	// Class is the interaction class name.
	Class string

	now   func() time.Duration
	spans []Span
}

// newTrace creates a trace with its root request span already open.
func newTrace(now func() time.Duration, reqID uint64, class string) *Trace {
	t := &Trace{RequestID: reqID, Class: class, now: now}
	t.spans = append(t.spans, Span{
		ID: RootID, Kind: KindRequest, Tier: "client", Start: now(), End: open,
	})
	return t
}

// Enabled reports whether the trace records spans; callers may use it to
// skip work (e.g. formatting annotations) that only matters when tracing.
//
//lint:hotpath
func (t *Trace) Enabled() bool { return t != nil }

// Start opens a child span of parent and returns its ID. On a nil trace it
// returns 0 and records nothing — the disabled-tracer path is the one the
// hot-path contract holds allocation-free.
//
//lint:hotpath disabled-tracer path must be free
func (t *Trace) Start(kind Kind, tier string, parent ID) ID {
	if t == nil {
		return 0
	}
	id := ID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ //lint:allow allocs enabled-tracer span; a nil trace records nothing
		ID: id, Parent: parent, Kind: kind, Tier: tier,
		Start: t.now(), End: open,
	})
	return id
}

// End closes the span. Safe on a nil trace, the zero ID and an already
// closed span (first close wins).
//
//lint:hotpath
func (t *Trace) End(id ID) {
	if t == nil || id <= 0 || int(id) > len(t.spans) {
		return
	}
	if s := &t.spans[id-1]; s.End == open {
		s.End = t.now()
	}
}

// Annotate sets the span's detail string.
//
//lint:hotpath
func (t *Trace) Annotate(id ID, detail string) {
	if t == nil || id <= 0 || int(id) > len(t.spans) {
		return
	}
	t.spans[id-1].Detail = detail
}

// finish closes the root and clamps any still-open span to the root's end
// (give-up paths can leave downstream spans dangling).
func (t *Trace) finish() {
	if t == nil {
		return
	}
	t.End(RootID)
	end := t.spans[0].End
	for i := range t.spans {
		if t.spans[i].End == open {
			t.spans[i].End = end
		}
	}
}

// Spans returns the recorded spans in creation order (shared slice;
// callers must not mutate).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Root returns the root request span.
func (t *Trace) Root() Span {
	if t == nil || len(t.spans) == 0 {
		return Span{}
	}
	return t.spans[0]
}

// ResponseTime returns the root span's duration.
func (t *Trace) ResponseTime() time.Duration { return t.Root().Duration() }

// Retransmits returns the number of retransmission-gap spans in the trace.
func (t *Trace) Retransmits() int {
	n := 0
	for _, s := range t.Spans() {
		if s.Kind == KindRetransmit {
			n++
		}
	}
	return n
}

// SelfTimes decomposes the trace into exclusive (self) times: each span's
// duration minus the durations of its direct children, clamped at zero.
// The self times of all spans sum to the response time (any uncovered
// remainder stays with the parent span), which is what makes the
// critical-path breakdown exact.
func (t *Trace) SelfTimes() []SelfTime {
	if t == nil || len(t.spans) == 0 {
		return nil
	}
	childSum := make([]time.Duration, len(t.spans))
	for _, s := range t.spans {
		if s.Parent > 0 {
			childSum[s.Parent-1] += s.Duration()
		}
	}
	out := make([]SelfTime, 0, len(t.spans))
	for i, s := range t.spans {
		self := s.Duration() - childSum[i]
		if self < 0 {
			self = 0
		}
		out = append(out, SelfTime{Kind: s.Kind, Tier: s.Tier, Self: self})
	}
	return out
}

// SelfTime is one span's exclusive contribution to the response time.
type SelfTime struct {
	// Kind and Tier identify the category.
	Kind Kind
	Tier string
	// Self is the exclusive duration.
	Self time.Duration
}

// Tree renders the span tree in human-readable indented form, children
// sorted by start time.
func (t *Trace) Tree() string {
	if t == nil || len(t.spans) == 0 {
		return "(no trace)\n"
	}
	children := make(map[ID][]Span)
	for _, s := range t.spans {
		if s.ID != RootID {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool {
			if c[i].Start != c[j].Start {
				return c[i].Start < c[j].Start
			}
			return c[i].ID < c[j].ID
		})
	}
	var b strings.Builder
	root := t.Root()
	fmt.Fprintf(&b, "request %d (%s) — %v\n",
		t.RequestID, t.Class, root.Duration().Round(time.Millisecond))
	var walk func(id ID, depth int)
	walk = func(id ID, depth int) {
		for _, s := range children[id] {
			fmt.Fprintf(&b, "%s%s %s @%v +%v",
				strings.Repeat("  ", depth), s.Kind, s.Tier,
				s.Start.Round(time.Millisecond),
				s.Duration().Round(time.Millisecond))
			if s.Detail != "" {
				fmt.Fprintf(&b, "  (%s)", s.Detail)
			}
			b.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(RootID, 1)
	return b.String()
}
