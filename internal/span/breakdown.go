package span

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// vlrtThreshold is the paper's Very Long Response Time criterion (kept
// local so the package stays dependency-free).
const vlrtThreshold = 3 * time.Second

// TierKind keys a breakdown category: where the time went and at which
// server.
type TierKind struct {
	// Tier is the server (for retransmit spans, the dropping server).
	Tier string
	// Kind is the span kind.
	Kind Kind
}

// Row aggregates the critical-path decomposition of one group of requests
// (a response-time decile, a tail percentile, or the VLRT population).
type Row struct {
	// Label names the group ("D1".."D10", "p99", "p99.9", "VLRT>3s").
	Label string
	// Count is the number of requests in the group.
	Count int
	// MeanRT and MaxRT summarize the group's response times.
	MeanRT, MaxRT time.Duration
	// Total is the summed response time — the 100% of the shares.
	Total time.Duration
	// ByKind is the summed exclusive time per span kind.
	ByKind map[Kind]time.Duration
	// ByTierKind is the summed exclusive time per (tier, kind).
	ByTierKind map[TierKind]time.Duration
}

// Share returns the fraction of the group's total time spent in kind.
func (r Row) Share(k Kind) float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.ByKind[k]) / float64(r.Total)
}

// WaitShare returns the fraction of the group's total time attributable to
// waiting rather than working: retransmission gaps plus queue and
// connection-pool waits. The paper's thesis is that this fraction, not
// service time, dominates the tail.
func (r Row) WaitShare() float64 {
	return r.Share(KindRetransmit) + r.Share(KindQueueWait) + r.Share(KindPoolWait)
}

// Breakdown is the per-decile critical-path table: where each slice of the
// response-time distribution spent its time. It tells the Fig. 3(c) story
// as a table — the fast deciles are all service, the tail is all
// retransmission gaps and cross-tier queueing.
type Breakdown struct {
	// Requests is the number of finished traces analyzed.
	Requests int
	// Deciles are the ten response-time deciles, fastest first.
	Deciles []Row
	// P99 and P999 cover the slowest 1% and 0.1%.
	P99, P999 Row
	// VLRT covers the >3s requests (Count 0 when there were none).
	VLRT Row
}

// Breakdown builds the critical-path table from every finished trace.
// It returns nil if no traces finished.
func (tr *Tracer) Breakdown() *Breakdown {
	if tr == nil || len(tr.records) == 0 {
		return nil
	}
	recs := make([]Record, len(tr.records))
	copy(recs, tr.records)
	sort.Slice(recs, func(i, j int) bool { return recs[i].RT < recs[j].RT })

	n := len(recs)
	b := &Breakdown{Requests: n}
	for d := 0; d < 10; d++ {
		lo, hi := n*d/10, n*(d+1)/10
		b.Deciles = append(b.Deciles,
			aggregate(fmt.Sprintf("D%d", d+1), recs[lo:hi]))
	}
	b.P99 = aggregate("p99", recs[n*99/100:])
	b.P999 = aggregate("p99.9", recs[n*999/1000:])
	vlrtFrom := sort.Search(n, func(i int) bool { return recs[i].RT > vlrtThreshold })
	b.VLRT = aggregate("VLRT>3s", recs[vlrtFrom:])
	return b
}

// aggregate folds a sorted slice of records into one row.
func aggregate(label string, recs []Record) Row {
	row := Row{
		Label:      label,
		Count:      len(recs),
		ByKind:     make(map[Kind]time.Duration),
		ByTierKind: make(map[TierKind]time.Duration),
	}
	for _, r := range recs {
		row.Total += r.RT
		if r.RT > row.MaxRT {
			row.MaxRT = r.RT
		}
		for _, c := range r.Cats {
			row.ByKind[c.Kind] += c.Self
			row.ByTierKind[TierKind{Tier: c.Tier, Kind: c.Kind}] += c.Self
		}
	}
	if row.Count > 0 {
		row.MeanRT = row.Total / time.Duration(row.Count)
	}
	return row
}

// tableKinds are the columns of the rendered table; everything else
// (root/request self time, downstream network residue) lands in "other".
var tableKinds = []Kind{KindQueueWait, KindService, KindRetransmit, KindPoolWait}

// otherShare is 1 minus the tabled shares.
func otherShare(r Row) float64 {
	if r.Total <= 0 {
		return 0
	}
	s := 1.0
	for _, k := range tableKinds {
		s -= r.Share(k)
	}
	if s < 0 {
		s = 0
	}
	return s
}

// String renders the per-decile table plus, when the tail exists, the
// per-tier decomposition of the VLRT population.
func (b *Breakdown) String() string {
	if b == nil {
		return "(no span breakdown)\n"
	}
	var w strings.Builder
	fmt.Fprintf(&w, "critical-path breakdown over %d traced requests "+
		"(exclusive time, %% of group response time)\n", b.Requests)
	fmt.Fprintf(&w, "  %-8s %8s %10s %10s %7s %8s %8s %6s %6s\n",
		"group", "n", "mean", "max", "queue%", "service%", "retran%", "pool%", "other%")
	rows := append(append([]Row{}, b.Deciles...), b.P99, b.P999)
	if b.VLRT.Count > 0 {
		rows = append(rows, b.VLRT)
	}
	for _, r := range rows {
		if r.Count == 0 {
			continue
		}
		fmt.Fprintf(&w, "  %-8s %8d %10v %10v %7.1f %8.1f %8.1f %6.1f %6.1f\n",
			r.Label, r.Count,
			r.MeanRT.Round(10*time.Microsecond),
			r.MaxRT.Round(10*time.Microsecond),
			100*r.Share(KindQueueWait), 100*r.Share(KindService),
			100*r.Share(KindRetransmit), 100*r.Share(KindPoolWait),
			100*otherShare(r))
	}
	if b.VLRT.Count > 0 {
		fmt.Fprintf(&w, "per-tier decomposition of the %d VLRT requests:\n", b.VLRT.Count)
		for _, tk := range sortedTierKinds(b.VLRT) {
			d := b.VLRT.ByTierKind[tk]
			fmt.Fprintf(&w, "  %-24s %-12s %12v %6.1f%%\n",
				tk.Tier, tk.Kind.String(), d.Round(time.Millisecond),
				100*float64(d)/float64(b.VLRT.Total))
		}
	}
	return w.String()
}

// sortedTierKinds orders a row's categories by descending time (ties by
// name for determinism).
func sortedTierKinds(r Row) []TierKind {
	out := make([]TierKind, 0, len(r.ByTierKind))
	for tk := range r.ByTierKind {
		out = append(out, tk)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := r.ByTierKind[out[i]], r.ByTierKind[out[j]]
		if di != dj {
			return di > dj
		}
		if out[i].Tier != out[j].Tier {
			return out[i].Tier < out[j].Tier
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
