package span

import "testing"

// BenchmarkRecordEnabled measures the span recording hot path: one
// queue-wait plus one service span per request, as a loaded sync tier
// emits. Measured at ~750ns and 6 allocs per request on a dev box
// (vs ~8ns and 0 allocs disabled) — negligible against the simulator's
// event scheduling.
func BenchmarkRecordEnabled(b *testing.B) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now, TracerConfig{Seed: 1, Reservoir: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := tr.StartRequest(uint64(i), "bench")
		q := tc.Start(KindQueueWait, "web", RootID)
		tc.End(q)
		s := tc.Start(KindService, "web", RootID)
		tc.End(s)
		tr.Finish(tc)
	}
}

// BenchmarkRecordDisabled is the same path with tracing off: a nil tracer
// hands out nil traces and every call must be a cheap early return.
func BenchmarkRecordDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := tr.StartRequest(uint64(i), "bench")
		q := tc.Start(KindQueueWait, "web", RootID)
		tc.End(q)
		s := tc.Start(KindService, "web", RootID)
		tc.End(s)
		tr.Finish(tc)
	}
}

// TestDisabledTracerZeroAlloc pins the disabled-path cost: exactly zero
// allocations, so leaving instrumentation calls unconditional in the
// servers is free when spans are off.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tc := tr.StartRequest(1, "x")
		q := tc.Start(KindQueueWait, "web", RootID)
		tc.End(q)
		s := tc.Start(KindService, "web", RootID)
		ds := tc.Start(KindDownstream, "app", s)
		tc.End(ds)
		tc.End(s)
		tr.Finish(tc)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %v per request, want 0", allocs)
	}
}
