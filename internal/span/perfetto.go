package span

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// traceEvent is one entry in the Chrome trace-event JSON format, which
// Perfetto (https://ui.perfetto.dev) loads directly. Timestamps and
// durations are in microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   uint64         `json:"pid"`
	TID   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON object.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	DisplayUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents emits the traces as Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing. Each request becomes a process (pid =
// request ID) and each tier a named thread lane inside it, so a 6-second
// VLRT exemplar shows its two 3-second retransmission gaps as wide slices
// on the dropping server's lane.
func WriteTraceEvents(w io.Writer, traces []*Trace) error {
	f := traceFile{DisplayUnit: "ms", TraceEvents: []traceEvent{}}
	for _, t := range traces {
		if t == nil || len(t.Spans()) == 0 {
			continue
		}
		pid := t.RequestID
		root := t.Root()
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": fmt.Sprintf("request %d (%s, %v)",
				t.RequestID, t.Class, root.Duration().Round(time.Millisecond))},
		})
		// A stable lane per tier, client first, emitted in lane order so
		// the JSON is byte-identical between runs.
		lanes, order := tierLanes(t)
		for tid, tier := range order {
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": tier},
			})
		}
		for _, s := range t.Spans() {
			ev := traceEvent{
				Name:  s.Kind.String(),
				Phase: "X",
				TS:    micros(s.Start),
				Dur:   micros(s.Duration()),
				PID:   pid,
				TID:   lanes[s.Tier],
				Cat:   s.Kind.String(),
				Args: map[string]any{
					"tier": s.Tier,
					"span": int32(s.ID),
				},
			}
			if s.Detail != "" {
				ev.Args["detail"] = s.Detail
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// tierLanes assigns each tier appearing in the trace a thread lane,
// ordered by first appearance (root's client tier is lane 0). The second
// result lists the tiers in lane order.
func tierLanes(t *Trace) (map[string]int, []string) {
	lanes := make(map[string]int)
	order := []string{}
	for _, s := range t.Spans() {
		if _, ok := lanes[s.Tier]; !ok {
			lanes[s.Tier] = len(order)
			order = append(order, s.Tier)
		}
	}
	return lanes, order
}

// micros converts a duration to fractional microseconds.
func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
