package profiling

import (
	"os"
	"testing"
)

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartEmptyPathsIsNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(t.TempDir()+"/no/such/dir/cpu.pprof", ""); err == nil {
		t.Fatal("Start with unwritable cpu path: no error")
	}
}
