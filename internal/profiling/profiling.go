// Package profiling wires the runtime/pprof CPU and heap profilers into
// the CLIs, so DES hot-path work has first-class profiling hooks:
//
//	stop, err := profiling.Start(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
//
// Both paths are optional; an empty path disables that profile. The
// package lives outside the sim-time packages on purpose — profilers are
// host-side measurement, not simulation state.
package profiling

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and arranges a
// heap profile at memPath (if non-empty). The returned stop function
// flushes and closes both; it is safe to call when both paths are empty
// (a no-op) and must be called at most once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("cpuprofile: %w", err))
			}
		}
		if memPath != "" {
			memFile, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, fmt.Errorf("memprofile: %w", err))
			} else {
				runtime.GC() // flush recent allocations into the heap profile
				if err := pprof.WriteHeapProfile(memFile); err != nil {
					errs = append(errs, fmt.Errorf("memprofile: %w", err))
				}
				if err := memFile.Close(); err != nil {
					errs = append(errs, fmt.Errorf("memprofile: %w", err))
				}
			}
		}
		return errors.Join(errs...)
	}, nil
}
