package des

import "time"

// Timer-wheel geometry. Bucket widths are powers of two in nanoseconds
// so placement is a shift, never a division, on the scheduling hot path.
const (
	wheelSlotBits = 8
	wheelSlots    = 1 << wheelSlotBits
	wheelMask     = wheelSlots - 1

	// g0Bits is the level-0 bucket width: 2^16 ns ≈ 65 µs, fine enough
	// that the near-term heap only ever holds one bucket's worth of
	// events — a few cache lines of nodes, so sifts stay in L1. The
	// level-0 span is 2^24 ns ≈ 16.8 ms.
	g0Bits = 16

	// g1Bits is the level-1 bucket width: 2^24 ns ≈ 16.8 ms, spanning
	// 2^32 ns ≈ 4.29 s — the paper's 3 s RTO retransmission timers park
	// here and take exactly two hops (one cascade, one promotion) on
	// their way to the heap.
	g1Bits = g0Bits + wheelSlotBits

	// g2Bits is the level-2 bucket width: 2^32 ns ≈ 4.29 s, spanning
	// 2^40 ns ≈ 18.3 min. Only timers beyond that reach the overflow
	// list, which is rescanned once per level-2 cascade (every ≈4.29 s
	// of simulated time), so even hour-scale timers cost a handful of
	// rescans.
	g2Bits = g1Bits + wheelSlotBits
)

// wheelNode parks one event in a bucket. Nodes are intrusive
// singly-linked and recycled through a freelist shared by every bucket,
// so steady-state scheduling allocates nothing and needs no per-slot
// warm-up. Order within a bucket is irrelevant: the heap re-establishes
// the (time, seq) total order at promotion.
type wheelNode struct {
	time time.Duration
	seq  uint64
	ev   *Event
	next *wheelNode
}

// wheel is a three-level hierarchical timer wheel plus an overflow
// list. Every event due beyond the promotion horizon costs O(1) to park
// and O(1) amortized to promote, keeping the heap no larger than one
// level-0 bucket — only events about to fire ever pay a sift.
type wheel struct {
	// p0 is the next unpromoted level-0 bucket (absolute index,
	// time >> g0Bits — no modulo wrap-around state). p0 << g0Bits is the
	// promotion horizon: every pending event strictly below it is
	// guaranteed to be in the heap, which is the whole determinism
	// argument (DESIGN.md §14).
	p0 int64

	// Resident node counts per container, tombstones included; promote
	// uses them to jump empty spans instead of stepping bucket by
	// bucket.
	count0, count1, count2, countOver int

	level0   [wheelSlots]*wheelNode
	level1   [wheelSlots]*wheelNode
	level2   [wheelSlots]*wheelNode
	overflow *wheelNode

	free *wheelNode
}

// resident returns the number of nodes parked anywhere in the wheel,
// tombstones included.
//
//lint:hotpath
func (w *wheel) resident() int { return w.count0 + w.count1 + w.count2 + w.countOver }

// takeNode pops the node freelist, heap-allocating only while the pool
// warms up.
//
//lint:hotpath
func (w *wheel) takeNode() *wheelNode {
	if n := w.free; n != nil {
		w.free = n.next
		n.next = nil
		return n
	}
	return &wheelNode{} //lint:allow allocs pool warm-up: one node per concurrent parked timer, reused forever after
}

// putNode wipes a node and pushes it onto the freelist.
//
//lint:hotpath
func (w *wheel) putNode(n *wheelNode) {
	*n = wheelNode{next: w.free}
	w.free = n
}

// place links a node into the finest container that can hold its due
// time: level 0 within 256 buckets of the horizon, level 1 within 256
// level-1 buckets, level 2 within 256 level-2 buckets, the overflow
// list beyond. The caller guarantees the time is at or beyond the
// promotion horizon.
//
//lint:hotpath
func (w *wheel) place(n *wheelNode) {
	b0 := int64(n.time >> g0Bits)
	if b0 < w.p0 {
		panic("des: wheel placement below the promotion horizon")
	}
	if b0-w.p0 < wheelSlots {
		slot := b0 & wheelMask
		n.next = w.level0[slot]
		w.level0[slot] = n
		w.count0++
		return
	}
	b1 := b0 >> wheelSlotBits
	if b1-(w.p0>>wheelSlotBits) < wheelSlots {
		slot := b1 & wheelMask
		n.next = w.level1[slot]
		w.level1[slot] = n
		w.count1++
		return
	}
	b2 := b1 >> wheelSlotBits
	if b2-(w.p0>>(2*wheelSlotBits)) < wheelSlots {
		slot := b2 & wheelMask
		n.next = w.level2[slot]
		w.level2[slot] = n
		w.count2++
		return
	}
	n.next = w.overflow
	w.overflow = n
	w.countOver++
}

// promote advances the promotion horizon by at least one level-0
// bucket, draining due nodes into the heap. Cancelled tombstones are
// dropped here for free — they never pay a heap insertion — and the
// number reclaimed is returned so the simulator's tombstone accounting
// stays exact. The caller guarantees the wheel is non-empty.
//
//lint:hotpath
func (w *wheel) promote(h *heap4) int {
	if w.count0 > 0 {
		dropped := 0
		slot := w.p0 & wheelMask
		for n := w.level0[slot]; n != nil; {
			next := n.next
			w.count0--
			if n.ev.state != eventCanceled {
				h.push(heapNode{time: n.time, seq: n.seq, ev: n.ev})
			} else {
				dropped++
			}
			w.putNode(n)
			n = next
		}
		w.level0[slot] = nil
		w.p0++
		return dropped + w.cascades()
	}
	// Level 0 is empty: jump the horizon instead of stepping 65 µs at a
	// time — to just past the heap minimum if that is nearer, else to
	// the next boundary of the shallowest occupied level, cascading the
	// bucket that starts there.
	var target int64
	switch {
	case w.count1 > 0:
		target = (w.p0 | wheelMask) + 1
	case w.count2 > 0 || w.countOver > 0:
		target = (w.p0 | (wheelSlots*wheelSlots - 1)) + 1
	default:
		panic("des: promote on an empty wheel")
	}
	if len(h.a) > 0 {
		if near := int64(h.a[0].time>>g0Bits) + 1; near < target {
			w.p0 = near
			return 0
		}
	}
	w.p0 = target
	return w.cascades()
}

// cascades redistributes whichever level boundaries the horizon just
// crossed: crossing a level-1 boundary (p0 a multiple of 256) spills
// one level-1 bucket downward; crossing a level-2 boundary (p0 a
// multiple of 256²) first spills one level-2 bucket and rescues
// overflow nodes that now fit the level-2 span. Nodes are filtered by
// absolute bucket index, never trusted positionally, so a slot shared
// across wheel revolutions cannot leak a far event into the near
// window. Returns the number of tombstones reclaimed.
//
//lint:hotpath
func (w *wheel) cascades() int {
	if w.p0&wheelMask != 0 {
		return 0
	}
	dropped := 0
	if w.p0&(wheelSlots*wheelSlots-1) == 0 {
		p2 := w.p0 >> (2 * wheelSlotBits)
		if w.countOver > 0 {
			var keep *wheelNode
			for n := w.overflow; n != nil; {
				next := n.next
				switch {
				case n.ev.state == eventCanceled:
					w.countOver--
					w.putNode(n)
					dropped++
				case int64(n.time>>g2Bits)-p2 < wheelSlots:
					w.countOver--
					w.place(n)
				default:
					n.next = keep
					keep = n
				}
				n = next
			}
			w.overflow = keep
		}
		dropped += w.spill(&w.level2, &w.count2, p2, g2Bits)
	}
	dropped += w.spill(&w.level1, &w.count1, w.p0>>wheelSlotBits, g1Bits)
	return dropped
}

// spill redistributes one bucket of a coarse level into the finer
// levels below it: nodes whose absolute bucket index matches the new
// horizon move down via place, cancelled nodes are reclaimed, and nodes
// from other wheel revolutions sharing the slot stay put. Returns the
// number of tombstones reclaimed.
//
//lint:hotpath
func (w *wheel) spill(level *[wheelSlots]*wheelNode, count *int, p int64, gBits uint) int {
	dropped := 0
	slot := p & wheelMask
	var keep *wheelNode
	for n := level[slot]; n != nil; {
		next := n.next
		if int64(n.time>>gBits) == p {
			*count = *count - 1
			if n.ev.state != eventCanceled {
				w.place(n)
			} else {
				w.putNode(n)
				dropped++
			}
		} else {
			n.next = keep
			keep = n
		}
		n = next
	}
	level[slot] = keep
	return dropped
}
