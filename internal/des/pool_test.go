package des

import (
	"testing"
	"time"
)

// freeLen counts the events sitting on the simulator's freelist.
func freeLen(s *Simulator) int {
	n := 0
	for e := s.free; e != nil; e = e.nextFree {
		n++
	}
	return n
}

func TestPostFires(t *testing.T) {
	sim := NewSimulator(1)
	var got string
	var at time.Duration
	sim.Post(5*time.Millisecond, func(a0, a1 any) {
		got = a0.(string) + a1.(string)
		at = sim.Now()
	}, "hello ", "world")
	for sim.Step() {
	}
	if got != "hello world" {
		t.Errorf("posted args = %q, want %q", got, "hello world")
	}
	if at != 5*time.Millisecond {
		t.Errorf("fired at %v, want 5ms", at)
	}
}

func TestPostClamping(t *testing.T) {
	sim := NewSimulator(1)
	var fired []time.Duration
	note := func(a0, a1 any) { fired = append(fired, sim.Now()) }
	sim.Post(time.Millisecond, func(a0, a1 any) {
		// From inside an event: negative delays and past absolute times
		// both clamp to now, like Schedule/ScheduleAt.
		sim.Post(-time.Second, note, nil, nil)
		sim.PostAt(0, note, nil, nil)
	}, nil, nil)
	for sim.Step() {
	}
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != time.Millisecond {
		t.Errorf("clamped posts fired at %v, want both at 1ms", fired)
	}
}

// TestPostScheduleSharedSeq pins the ordering contract: pooled and
// heap-allocated events share one (time, seq) sequence, so simultaneous
// events run in scheduling order regardless of which API created them.
func TestPostScheduleSharedSeq(t *testing.T) {
	sim := NewSimulator(1)
	var order []int
	sim.Post(time.Millisecond, func(a0, a1 any) { order = append(order, 0) }, nil, nil)
	sim.Schedule(time.Millisecond, func() { order = append(order, 1) })
	sim.Post(time.Millisecond, func(a0, a1 any) { order = append(order, 2) }, nil, nil)
	for sim.Step() {
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("simultaneous Post/Schedule order = %v, want [0 1 2]", order)
	}
}

// TestPostFreelistReuse pins the pool mechanics: fired events land on
// the freelist and the next Post takes from it instead of allocating.
func TestPostFreelistReuse(t *testing.T) {
	sim := NewSimulator(1)
	nop := func(a0, a1 any) {}
	for i := 0; i < 3; i++ {
		sim.Post(time.Duration(i)*time.Microsecond, nop, nil, nil)
	}
	for sim.Step() {
	}
	if n := freeLen(sim); n != 3 {
		t.Fatalf("freelist after draining 3 posts = %d events, want 3", n)
	}
	sim.Post(time.Microsecond, nop, nil, nil)
	if n := freeLen(sim); n != 2 {
		t.Errorf("freelist after reusing one slot = %d events, want 2", n)
	}
	for sim.Step() {
	}
	if n := freeLen(sim); n != 3 {
		t.Errorf("freelist after re-draining = %d events, want 3", n)
	}
}

// TestPostReleaseBeforeFire pins that the slot is recycled before the
// callback runs: a self-rescheduling event chain reuses one Event
// object forever instead of growing the pool.
func TestPostReleaseBeforeFire(t *testing.T) {
	sim := NewSimulator(1)
	count := 0
	var hop func(a0, a1 any)
	hop = func(a0, a1 any) {
		if count++; count < 100 {
			sim.Post(time.Microsecond, hop, nil, nil)
		}
	}
	sim.Post(0, hop, nil, nil)
	for sim.Step() {
	}
	if count != 100 {
		t.Fatalf("chain fired %d times, want 100", count)
	}
	if n := freeLen(sim); n != 1 {
		t.Errorf("self-rescheduling chain grew the pool to %d events, want 1", n)
	}
}

// TestPostZeroAllocSteadyState is the dynamic half of the hot-path
// contract for the kernel: once the pool and the heap's backing array
// are warm, Post+Step allocates nothing. The arguments are pointers —
// boxing a non-pointer value into the any parameters would allocate at
// the caller, which is exactly what the allocs analyzer flags there.
func TestPostZeroAllocSteadyState(t *testing.T) {
	sim := NewSimulator(1)
	nop := func(a0, a1 any) {}
	for i := 0; i < 64; i++ {
		sim.Post(time.Duration(i)*time.Microsecond, nop, sim, nil)
	}
	for sim.Step() {
	}
	allocs := testing.AllocsPerRun(200, func() {
		sim.Post(time.Microsecond, nop, sim, nil)
		sim.Step()
	})
	if allocs != 0 {
		t.Errorf("warm Post+Step allocates %.1f objects per op, want 0", allocs)
	}
}
