package des

import "time"

// heapNode is one pending entry of the near-term scheduler. The (time,
// seq) ordering key is stored inline so sift comparisons walk the
// contiguous backing array instead of chasing *Event pointers — the
// cache-friendliness half of the 4-ary layout (DESIGN.md §14).
type heapNode struct {
	time time.Duration
	seq  uint64
	ev   *Event
}

// before is the scheduler's total order: earlier time first, FIFO seq
// tie-break for simultaneous events. (time, seq) pairs are unique, so
// the order is strict — the pop sequence is the same for every valid
// heap layout, which is why promotions and sift variants cannot perturb
// determinism.
//
//lint:hotpath
func (n heapNode) before(m heapNode) bool {
	if n.time != m.time {
		return n.time < m.time
	}
	return n.seq < m.seq
}

// heap4 is a 4-ary min-heap ordered by heapNode.before. Four children
// per node halve the tree depth of the binary heap it replaces and keep
// the sibling scan inside one or two cache lines; push/pop sift with
// plain inlined loops — no heap.Interface, no dynamic dispatch, no any
// boxing. Cancellation never touches the heap: cancelled events stay in
// place as tombstones and are dropped when they reach the top
// (Simulator.settle), so no per-node index bookkeeping is needed.
type heap4 struct {
	a []heapNode
}

// push appends n and sifts it up toward the root, moving blocking
// parents down one hole at a time and writing n once at its final slot.
//
//lint:hotpath
func (h *heap4) push(n heapNode) {
	h.a = append(h.a, n) //lint:allow allocs amortized: the backing array doubles, then is reused for the run's lifetime
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !n.before(a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = n
}

// pop removes and returns the minimal node. It must not be called on an
// empty heap: the scheduler guarantees settle ran first, and the bounds
// check panics on that impossible state rather than masking it.
//
//lint:hotpath
func (h *heap4) pop() heapNode {
	a := h.a
	top := a[0]
	last := len(a) - 1
	n := a[last]
	a[last] = heapNode{} // release the *Event reference for the collector
	h.a = a[:last]
	if last > 0 {
		h.siftDown(n)
	}
	return top
}

// siftDown re-inserts n starting from the root hole, bottom-up: the hole
// first runs the min-child path all the way to a leaf (three comparisons
// per level — the four adjacent children are scanned without comparing
// against n), then n sifts up from the leaf hole. Because n is the old
// last leaf, it almost always belongs near the bottom, so the up phase
// is typically zero or one step — cheaper than paying a fourth
// comparison at every level of the classic top-down descent.
//
//lint:hotpath
func (h *heap4) siftDown(n heapNode) {
	a := h.a
	i := 0
	for {
		c := i<<2 + 1
		if c >= len(a) {
			break
		}
		m := c
		if c+3 < len(a) { // full fan: unrolled, bounds checks hoisted
			if a[c+1].before(a[m]) {
				m = c + 1
			}
			if a[c+2].before(a[m]) {
				m = c + 2
			}
			if a[c+3].before(a[m]) {
				m = c + 3
			}
		} else {
			for j := c + 1; j < len(a); j++ {
				if a[j].before(a[m]) {
					m = j
				}
			}
		}
		a[i] = a[m]
		i = m
	}
	for i > 0 {
		p := (i - 1) >> 2
		if !n.before(a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = n
}
