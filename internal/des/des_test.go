package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	sim := NewSimulator(1)

	var got []int
	sim.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	sim.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	sim.Schedule(20*time.Millisecond, func() { got = append(got, 2) })

	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	sim := NewSimulator(1)

	var got []int
	for i := 0; i < 10; i++ {
		i := i
		sim.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events ran out of order: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	sim := NewSimulator(1)

	var at time.Duration
	sim.Schedule(42*time.Millisecond, func() { at = sim.Now() })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 42*time.Millisecond {
		t.Fatalf("event saw Now()=%v, want 42ms", at)
	}
	if sim.Now() != time.Second {
		t.Fatalf("after Run, Now()=%v, want horizon 1s", sim.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	sim := NewSimulator(1)

	fired := false
	sim.Schedule(-time.Second, func() { fired = true })
	if !sim.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if !fired {
		t.Fatal("event with negative delay did not fire")
	}
	if sim.Now() != 0 {
		t.Fatalf("Now()=%v, want 0", sim.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	sim := NewSimulator(1)
	sim.Schedule(10*time.Millisecond, func() {
		ev := sim.ScheduleAt(5*time.Millisecond, func() {})
		if ev.Time() != 10*time.Millisecond {
			t.Errorf("past ScheduleAt time=%v, want clamped to 10ms", ev.Time())
		}
	})
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCancel(t *testing.T) {
	sim := NewSimulator(1)

	fired := false
	ev := sim.Schedule(10*time.Millisecond, func() { fired = true })
	sim.Cancel(ev)
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	sim := NewSimulator(1)
	ev := sim.Schedule(10*time.Millisecond, func() {})
	sim.Cancel(ev)
	sim.Cancel(ev) // must not panic
	sim.Cancel(nil)
}

func TestCancelAfterFire(t *testing.T) {
	sim := NewSimulator(1)
	fired := false
	ev := sim.Schedule(time.Millisecond, func() { fired = true })
	if !sim.Step() {
		t.Fatal("Step returned false")
	}
	if !fired {
		t.Fatal("event did not fire")
	}
	sim.Cancel(ev) // no-op: the callback already ran
	if ev.Canceled() {
		t.Fatal("Canceled() = true for an event whose callback ran")
	}
	if sim.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel-after-fire, want 0", sim.Pending())
	}
	sim.Cancel(ev) // still a no-op on repeat
	if sim.Pending() != 0 {
		t.Fatalf("Pending = %d after double cancel-after-fire, want 0", sim.Pending())
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	sim := NewSimulator(1)

	var got []int
	evs := make([]*Event, 0, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, sim.Schedule(time.Duration(i+1)*time.Millisecond, func() {
			got = append(got, i)
		}))
	}
	sim.Cancel(evs[2])
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	sim := NewSimulator(1)
	sim.Schedule(2*time.Second, func() {})
	err := sim.Run(time.Second)
	if err != ErrHorizon {
		t.Fatalf("Run = %v, want ErrHorizon", err)
	}
	if sim.Now() != time.Second {
		t.Fatalf("Now()=%v, want 1s", sim.Now())
	}
	if sim.Pending() != 1 {
		t.Fatalf("Pending()=%d, want 1", sim.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	sim := NewSimulator(1)

	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			sim.Schedule(time.Millisecond, chain)
		}
	}
	sim.Schedule(time.Millisecond, chain)
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 100 {
		t.Fatalf("count=%d, want 100", count)
	}
	if sim.Executed() != 100 {
		t.Fatalf("Executed()=%d, want 100", sim.Executed())
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		sim := NewSimulator(seed)
		var times []time.Duration
		for i := 0; i < 50; i++ {
			d := time.Duration(sim.Rand().Intn(1000)) * time.Millisecond
			sim.Schedule(d, func() { times = append(times, sim.Now()) })
		}
		if err := sim.Run(time.Minute); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return times
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatal("different lengths from same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTicker(t *testing.T) {
	sim := NewSimulator(1)

	var ticks []time.Duration
	tk := NewTicker(sim, 50*time.Millisecond, func(now time.Duration) {
		ticks = append(ticks, now)
		if len(ticks) == 4 {
			// Stop from within the callback.
		}
	})
	sim.Schedule(220*time.Millisecond, tk.Stop)
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ticks) != 4 {
		t.Fatalf("got %d ticks, want 4: %v", len(ticks), ticks)
	}
	for i, tick := range ticks {
		want := time.Duration(i+1) * 50 * time.Millisecond
		if tick != want {
			t.Fatalf("tick %d at %v, want %v", i, tick, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	sim := NewSimulator(1)

	count := 0
	var tk *Ticker
	tk = NewTicker(sim, 10*time.Millisecond, func(time.Duration) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Fatalf("count=%d, want 3", count)
	}
}

func TestTickerZeroPeriodNeverFires(t *testing.T) {
	sim := NewSimulator(1)
	fired := false
	NewTicker(sim, 0, func(time.Duration) { fired = true })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("zero-period ticker fired")
	}
}

// Property: events always execute in non-decreasing time order regardless of
// the order and values of scheduled delays.
func TestPropertyMonotonicExecution(t *testing.T) {
	f := func(delays []uint16) bool {
		sim := NewSimulator(3)
		var seen []time.Duration
		for _, d := range delays {
			sim.Schedule(time.Duration(d)*time.Millisecond, func() {
				seen = append(seen, sim.Now())
			})
		}
		if err := sim.Run(time.Hour); err != nil {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset of events executes exactly the
// complement, still in time order.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint16, mask []bool) bool {
		sim := NewSimulator(5)
		fired := make([]bool, len(delays))
		evs := make([]*Event, len(delays))
		for i, d := range delays {
			i := i
			evs[i] = sim.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired[i] = true
			})
		}
		for i := range delays {
			if i < len(mask) && mask[i] {
				sim.Cancel(evs[i])
			}
		}
		if err := sim.Run(time.Hour); err != nil {
			return false
		}
		for i := range delays {
			wantFired := !(i < len(mask) && mask[i])
			if fired[i] != wantFired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
