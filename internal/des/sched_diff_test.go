package des

// Differential check of the 4-ary heap + timer wheel scheduler against a
// reference implementation kept on container/heap — the structure the
// kernel used before the rewrite. Both sides consume the same decoded
// schedule+cancel trace; the pop order must match event for event, which
// pins the (time, seq) total order across every container the new
// scheduler can route an event through (near heap, wheel level 0/1,
// overflow, idle catch-up fallback).

import (
	"container/heap"
	"testing"
	"testing/quick"
	"time"
)

// refEvent is one reference-scheduler entry. The id is the trace-wide
// event index used to compare pop orders across implementations.
type refEvent struct {
	time     time.Duration
	seq      uint64
	id       int
	canceled bool
	fired    bool
	index    int
}

// refHeap is the retained container/heap implementation: binary heap,
// dynamic dispatch, eager index maintenance — the pre-rewrite scheduler
// shape, kept verbatim as the semantic oracle.
type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	e := old[n]
	old[n] = nil
	*h = old[:n]
	return e
}

// refFire is one pop-order entry: which event fired, and at what clock.
type refFire struct {
	id int
	at time.Duration
}

// refSim is the reference scheduler: same clamping, same per-schedule
// seq assignment, same cancel and horizon semantics as Simulator.
type refSim struct {
	now time.Duration
	seq uint64
	h   refHeap
	log []refFire
}

func (r *refSim) schedule(t time.Duration, id int) *refEvent {
	if t < r.now {
		t = r.now
	}
	e := &refEvent{time: t, seq: r.seq, id: id}
	r.seq++
	heap.Push(&r.h, e)
	return e
}

func (r *refSim) cancel(e *refEvent) {
	if e != nil && !e.fired {
		e.canceled = true
	}
}

func (r *refSim) run(horizon time.Duration) {
	for r.h.Len() > 0 {
		e := r.h[0]
		if e.canceled {
			heap.Pop(&r.h)
			continue
		}
		if e.time > horizon {
			break
		}
		heap.Pop(&r.h)
		r.now = e.time
		e.fired = true
		r.log = append(r.log, refFire{e.id, e.time})
	}
	if r.now < horizon {
		r.now = horizon
	}
}

// diffDriver applies one trace to both schedulers in lockstep.
type diffDriver struct {
	sim  *Simulator
	ref  refSim
	evs  []*Event
	refs []*refEvent
	log  []refFire
}

func newDiffDriver() *diffDriver {
	return &diffDriver{sim: NewSimulator(1)}
}

func (d *diffDriver) schedule(at time.Duration) {
	id := len(d.evs)
	d.evs = append(d.evs, d.sim.ScheduleAt(at, func() {
		d.log = append(d.log, refFire{id, d.sim.Now()})
	}))
	d.refs = append(d.refs, d.ref.schedule(at, id))
}

func (d *diffDriver) cancel(i int) {
	d.sim.Cancel(d.evs[i])
	d.ref.cancel(d.refs[i])
}

func (d *diffDriver) run(horizon time.Duration) {
	if err := d.sim.Run(horizon); err != nil && err != ErrHorizon {
		panic(err)
	}
	d.ref.run(horizon)
}

// applyDiffTrace decodes data as a schedule/cancel/advance op stream,
// applies it to both schedulers, then drains. The delay bands are chosen
// so traces reach every scheduler container: sub-ms delays stay in the
// near heap, the 3 s band lands in wheel level 0 (the RTO shape),
// minutes-scale delays reach level 1 and the overflow list, and advance
// ops move the clock so placements happen against moving horizons.
func applyDiffTrace(data []byte) *diffDriver {
	d := newDiffDriver()
	for i := 0; i+2 < len(data); i += 3 {
		op, a, b := data[i], data[i+1], data[i+2]
		ab := time.Duration(uint16(a)<<8 | uint16(b))
		switch op % 5 {
		case 0: // near band: µs-scale, heap-resident
			d.schedule(d.sim.Now() + ab*time.Microsecond)
		case 1: // RTO band: 3 s + jitter, wheel level 0
			d.schedule(d.sim.Now() + 3*time.Second + time.Duration(a)*time.Millisecond + time.Duration(b)*time.Microsecond)
		case 2: // deep band: minutes, wheel level 1 / overflow
			d.schedule(d.sim.Now() + time.Duration(a%30)*time.Minute + time.Duration(b)*time.Second)
		case 3: // cancel an arbitrary earlier event (possibly already fired)
			if len(d.evs) > 0 {
				d.cancel(int(ab) % len(d.evs))
			}
		case 4: // advance the clock up to ~65 s
			d.run(d.sim.Now() + ab*time.Millisecond)
		}
	}
	d.run(d.sim.Now() + time.Hour) // drain: every band is due within the hour
	return d
}

// checkDiff asserts both schedulers popped the same events at the same
// times in the same order, and agree on the final clock.
func checkDiff(t *testing.T, d *diffDriver) {
	t.Helper()
	if d.sim.Now() != d.ref.now {
		t.Fatalf("clock diverged: new %v, reference %v", d.sim.Now(), d.ref.now)
	}
	if len(d.log) != len(d.ref.log) {
		t.Fatalf("fired %d events, reference fired %d", len(d.log), len(d.ref.log))
	}
	for i := range d.log {
		if d.log[i] != d.ref.log[i] {
			t.Fatalf("pop %d diverged: new fired event %d at %v, reference event %d at %v",
				i, d.log[i].id, d.log[i].at, d.ref.log[i].id, d.ref.log[i].at)
		}
	}
	if d.sim.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", d.sim.Pending())
	}
}

// FuzzSchedulerDifferential fuzzes op traces through both schedulers.
func FuzzSchedulerDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 10, 0, 0, 10, 1, 0, 0, 1, 0, 0, 4, 0, 200}) // FIFO ties in both bands
	f.Add([]byte{1, 0, 0, 2, 5, 0, 2, 29, 255, 4, 255, 255, 3, 0, 1})
	f.Add([]byte{2, 0, 0, 4, 255, 255, 2, 0, 0, 4, 255, 255, 1, 0, 0}) // idle catch-up
	f.Add([]byte{0, 0, 1, 3, 0, 0, 3, 0, 0, 1, 0, 0, 3, 0, 1, 4, 16, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		checkDiff(t, applyDiffTrace(data))
	})
}

// TestSchedulerDifferentialProperty drives randomized traces through the
// differential harness under testing/quick, so the comparison runs on
// every ordinary `go test` invocation, not only under -fuzz.
func TestSchedulerDifferentialProperty(t *testing.T) {
	f := func(data []byte) bool {
		d := applyDiffTrace(data)
		if d.sim.Now() != d.ref.now || len(d.log) != len(d.ref.log) {
			return false
		}
		for i := range d.log {
			if d.log[i] != d.ref.log[i] {
				return false
			}
		}
		return d.sim.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerDifferentialTrace pins one handwritten trace that touches
// every container and cancels across them, as a deterministic anchor for
// the fuzz harness itself.
func TestSchedulerDifferentialTrace(t *testing.T) {
	d := newDiffDriver()
	d.schedule(d.sim.Now() + 50*time.Microsecond) // near
	d.schedule(d.sim.Now() + 3*time.Second)       // RTO, level 0
	d.schedule(d.sim.Now() + 3*time.Second)       // simultaneous RTO
	d.schedule(d.sim.Now() + 30*time.Second)      // level 1
	d.schedule(d.sim.Now() + 20*time.Minute)      // overflow
	d.cancel(2)
	d.run(d.sim.Now() + 10*time.Second)
	d.schedule(d.sim.Now() + 3*time.Second) // park against an advanced horizon
	d.cancel(3)
	d.cancel(0) // already fired: no-op on both sides
	d.run(d.sim.Now() + time.Hour)
	checkDiff(t, d)
}
