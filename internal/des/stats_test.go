package des

import (
	"strings"
	"testing"
	"time"
)

// TestPeakPending pins the heap high-water mark: scheduling N events
// before running peaks at N, and executing them never raises it.
func TestPeakPending(t *testing.T) {
	s := NewSimulator(1)
	if s.PeakPending() != 0 {
		t.Fatalf("fresh simulator PeakPending = %d", s.PeakPending())
	}
	for i := 0; i < 10; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if got := s.PeakPending(); got != 10 {
		t.Fatalf("PeakPending = %d, want 10", got)
	}
	if err := s.Run(time.Second); err != nil && err != ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if got := s.PeakPending(); got != 10 {
		t.Fatalf("PeakPending after drain = %d, want 10 (high-water mark)", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", s.Pending())
	}
}

// TestScheduledCountsCancelled pins that Scheduled counts every
// ScheduleAt call, including later-cancelled events, while Executed does
// not.
// TestPeakPendingCancelHeavy pins the live-events-only contract: a
// cancel-heavy workload leaves tombstones in the scheduler, but neither
// Pending nor the PeakPending high-water mark may count them. The
// schedule alternates near (heap) and 3 s far (wheel) timers so both
// tombstone paths are audited.
func TestPeakPendingCancelHeavy(t *testing.T) {
	s := NewSimulator(1)
	evs := make([]*Event, 0, 100)
	for i := 0; i < 100; i++ {
		at := time.Duration(i+1) * time.Millisecond
		if i%2 == 1 {
			at = 3*time.Second + time.Duration(i)*time.Millisecond
		}
		evs = append(evs, s.ScheduleAt(at, func() {}))
	}
	if got := s.PeakPending(); got != 100 {
		t.Fatalf("PeakPending = %d, want 100", got)
	}
	for i := 0; i < 90; i++ {
		s.Cancel(evs[i])
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("Pending after cancels = %d, want 10", got)
	}
	// 90 tombstones linger; scheduling 50 more live events must not push
	// the mark past the true live count (10+50=60 < 100).
	for i := 0; i < 50; i++ {
		s.Schedule(time.Duration(i+200)*time.Millisecond, func() {})
	}
	if got := s.PeakPending(); got != 100 {
		t.Fatalf("PeakPending after refill = %d, want 100 (tombstones must not count)", got)
	}
	if got := s.Pending(); got != 60 {
		t.Fatalf("Pending after refill = %d, want 60", got)
	}
	if err := s.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
	if got := uint64(60); s.Executed() != got {
		t.Fatalf("Executed = %d, want %d (cancelled events must not run)", s.Executed(), got)
	}
}

func TestScheduledCountsCancelled(t *testing.T) {
	s := NewSimulator(1)
	ran := 0
	keep := s.Schedule(time.Millisecond, func() { ran++ })
	drop := s.Schedule(2*time.Millisecond, func() { ran++ })
	s.Cancel(drop)
	_ = keep
	if err := s.Run(time.Second); err != nil && err != ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if got := s.Scheduled(); got != 2 {
		t.Fatalf("Scheduled = %d, want 2", got)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

// TestProfileWindow checks a profiling window measures only its own
// deltas: events before StartProfile are excluded, and the wall-clock
// fields are populated without perturbing deterministic state.
func TestProfileWindow(t *testing.T) {
	s := NewSimulator(1)
	for i := 0; i < 5; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.Run(10 * time.Millisecond); err != nil && err != ErrHorizon {
		t.Fatalf("Run: %v", err)
	}

	prof := s.StartProfile()
	var tick func(time.Duration)
	n := 0
	tick = func(at time.Duration) {
		n++
		if n < 100 {
			s.ScheduleAt(at+time.Millisecond, func() { tick(at + time.Millisecond) })
		}
	}
	s.ScheduleAt(11*time.Millisecond, func() { tick(11 * time.Millisecond) })
	if err := s.Run(time.Second); err != nil && err != ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	st := prof.Stats()

	if st.EventsExecuted != 100 {
		t.Fatalf("EventsExecuted = %d, want 100 (window only)", st.EventsExecuted)
	}
	if st.EventsScheduled != 100 {
		t.Fatalf("EventsScheduled = %d, want 100 (window only)", st.EventsScheduled)
	}
	if st.PeakPending < 1 {
		t.Fatalf("PeakPending = %d", st.PeakPending)
	}
	if st.WallSeconds <= 0 {
		t.Fatalf("WallSeconds = %v, want > 0", st.WallSeconds)
	}
	if st.EventsPerSecond <= 0 {
		t.Fatalf("EventsPerSecond = %v, want > 0", st.EventsPerSecond)
	}
	// Stats may be read again; both reads measure from the same start.
	st2 := prof.Stats()
	if st2.EventsExecuted != st.EventsExecuted {
		t.Fatalf("second Stats read diverges: %d vs %d", st2.EventsExecuted, st.EventsExecuted)
	}
}

// TestSimStatsString pins the report format carries the headline fields.
func TestSimStatsString(t *testing.T) {
	st := SimStats{
		EventsExecuted: 1234, EventsScheduled: 1300, PeakPending: 17,
		WallSeconds: 0.5, EventsPerSecond: 2468, AllocBytes: 2 << 20, GCCycles: 3,
	}
	out := st.String()
	for _, want := range []string{"1234 events executed", "1300 scheduled", "peak pending 17", "GC cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q, missing %q", out, want)
		}
	}
}
