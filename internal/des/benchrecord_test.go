package des

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"ctqosim/internal/benchrec"
)

// eventLoopBaselineNs is the PR 7 post_ns_per_op record (107 ns/op on
// the container/heap scheduler after event pooling). The 4-ary heap +
// timer wheel rewrite targets ≥2× this; the run fails when it lands
// below 1.5× — an enforced floor, overridable for noisy hardware with
// CTQO_BENCH_FLOOR (a replacement ratio; 0 disables the gate).
const (
	eventLoopBaselineNs = 107
	eventLoopFloorRatio = 1.5
)

// benchFloor resolves the enforced floor: CTQO_BENCH_FLOOR overrides
// the default, and a non-positive value disables the gate (the second
// return is false).
func benchFloor(t *testing.T, def float64) (float64, bool) {
	s := os.Getenv("CTQO_BENCH_FLOOR")
	if s == "" {
		return def, true
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("CTQO_BENCH_FLOOR=%q: %v", s, err)
	}
	if v <= 0 {
		return 0, false
	}
	return v, true
}

// TestEventLoopBenchRecord runs the EventLoop benchmark family and
// writes the comparison under the "event_loop" key of the keyed
// benchmark file named by CTQO_BENCHOUT (BENCH_parallel.json in CI):
// the Schedule/Post pair, the 100k-pending-RTO wheel stress, and the
// speedup over both the in-run Schedule baseline and the recorded PR 7
// baseline. Without the variable it skips, so ordinary test runs stay
// fast.
func TestEventLoopBenchRecord(t *testing.T) {
	path := os.Getenv("CTQO_BENCHOUT")
	if path == "" {
		t.Skip("set CTQO_BENCHOUT to record the event-loop benchmark")
	}
	sched := testing.Benchmark(BenchmarkEventLoopSchedule)
	post := testing.Benchmark(BenchmarkEventLoopPost)
	rto := testing.Benchmark(BenchmarkEventLoopRTO100k)
	baselineSpeedup := float64(eventLoopBaselineNs) / float64(post.NsPerOp())
	record := map[string]any{
		"benchmark":              "des-event-loop",
		"cpus":                   runtime.NumCPU(),
		"schedule_ns_per_op":     sched.NsPerOp(),
		"schedule_allocs_per_op": sched.AllocsPerOp(),
		"schedule_bytes_per_op":  sched.AllocedBytesPerOp(),
		"post_ns_per_op":         post.NsPerOp(),
		"post_allocs_per_op":     post.AllocsPerOp(),
		"post_bytes_per_op":      post.AllocedBytesPerOp(),
		"rto100k_ns_per_op":      rto.NsPerOp(),
		"rto100k_allocs_per_op":  rto.AllocsPerOp(),
		"rto100k_bytes_per_op":   rto.AllocedBytesPerOp(),
		"speedup":                float64(sched.NsPerOp()) / float64(post.NsPerOp()),
		"baseline_post_ns":       eventLoopBaselineNs,
		"baseline_speedup":       baselineSpeedup,
	}
	if err := benchrec.Update(path, "event_loop", record); err != nil {
		t.Fatal(err)
	}
	t.Logf("event_loop: schedule %d ns/op %d allocs/op -> post %d ns/op %d allocs/op, rto100k %d ns/op %d allocs/op, %.2fx PR7 baseline",
		sched.NsPerOp(), sched.AllocsPerOp(), post.NsPerOp(), post.AllocsPerOp(),
		rto.NsPerOp(), rto.AllocsPerOp(), baselineSpeedup)
	if floor, enforce := benchFloor(t, eventLoopFloorRatio); enforce && baselineSpeedup < floor {
		t.Errorf("event_loop post path is %.2fx the PR 7 baseline (%d ns/op vs %d ns/op), below the enforced %.1fx floor — kernel regression, or set CTQO_BENCH_FLOOR for noisy hardware (0 disables)",
			baselineSpeedup, post.NsPerOp(), eventLoopBaselineNs, floor)
	}
}
