package des

import (
	"os"
	"runtime"
	"testing"

	"ctqosim/internal/benchrec"
)

// TestEventLoopBenchRecord runs the EventLoop benchmark pair and writes
// the before/after comparison under the "event_loop" key of the keyed
// benchmark file named by CTQO_BENCHOUT (BENCH_parallel.json in CI).
// Without the variable it skips, so ordinary test runs stay fast.
func TestEventLoopBenchRecord(t *testing.T) {
	path := os.Getenv("CTQO_BENCHOUT")
	if path == "" {
		t.Skip("set CTQO_BENCHOUT to record the event-loop benchmark")
	}
	sched := testing.Benchmark(BenchmarkEventLoopSchedule)
	post := testing.Benchmark(BenchmarkEventLoopPost)
	record := map[string]any{
		"benchmark":              "des-event-loop",
		"cpus":                   runtime.NumCPU(),
		"schedule_ns_per_op":     sched.NsPerOp(),
		"schedule_allocs_per_op": sched.AllocsPerOp(),
		"schedule_bytes_per_op":  sched.AllocedBytesPerOp(),
		"post_ns_per_op":         post.NsPerOp(),
		"post_allocs_per_op":     post.AllocsPerOp(),
		"post_bytes_per_op":      post.AllocedBytesPerOp(),
		"speedup":                float64(sched.NsPerOp()) / float64(post.NsPerOp()),
	}
	if err := benchrec.Update(path, "event_loop", record); err != nil {
		t.Fatal(err)
	}
	t.Logf("event_loop: schedule %d ns/op %d allocs/op -> post %d ns/op %d allocs/op",
		sched.NsPerOp(), sched.AllocsPerOp(), post.NsPerOp(), post.AllocsPerOp())
}
