package des

import "time"

// Ticker fires a callback at a fixed simulated-time period until stopped or
// the simulation drains. It is the simulation analogue of time.Ticker and is
// used by monitors (50ms sampling) and periodic fault injectors (30s log
// flush).
type Ticker struct {
	sim    *Simulator
	period time.Duration
	fn     func(now time.Duration)
	next   *Event
	stop   bool
}

// NewTicker schedules fn every period, first firing one period from now.
// Period must be positive.
func NewTicker(sim *Simulator, period time.Duration, fn func(now time.Duration)) *Ticker {
	t := &Ticker{sim: sim, period: period, fn: fn}
	if period > 0 {
		t.arm()
	}
	return t
}

// Stop cancels all future firings. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stop = true
	if t.next != nil {
		t.sim.Cancel(t.next)
		t.next = nil
	}
}

func (t *Ticker) arm() {
	t.next = t.sim.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.fn(t.sim.Now())
		if !t.stop {
			t.arm()
		}
	})
}
