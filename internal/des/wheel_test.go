package des

// Timer-wheel semantics: far events must be invisible as wheel residents
// — same global (time, seq) firing order, same Pending/horizon behavior
// as if everything sat in the heap. These tests pin the promotion
// machinery at every level (level 0, level 1, overflow, idle catch-up)
// against that equivalence.

import (
	"testing"
	"time"
)

// TestFarTimerOrdering interleaves near events with 3 s RTO-shaped far
// timers and checks the global execution order ignores which container
// each event sat in.
func TestFarTimerOrdering(t *testing.T) {
	sim := NewSimulator(1)
	var got []string
	add := func(name string, at time.Duration) {
		sim.ScheduleAt(at, func() { got = append(got, name) })
	}
	add("rto-b", 3*time.Second+time.Millisecond) // wheel first, fires second
	add("near-a", 5*time.Millisecond)
	add("rto-a", 3*time.Second) // scheduled after rto-b, fires first
	add("near-b", 200*time.Millisecond)
	add("far", 10*time.Second)
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"near-a", "near-b", "rto-a", "rto-b", "far"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestWheelAllLevels lands one event in each wheel container — level 0
// (3 s), level 1 (30 s), overflow (20 min) — and checks each fires at
// exactly its timestamp.
func TestWheelAllLevels(t *testing.T) {
	sim := NewSimulator(1)
	times := []time.Duration{3 * time.Second, 30 * time.Second, 20 * time.Minute}
	fired := make([]time.Duration, 0, len(times))
	for _, at := range times {
		sim.ScheduleAt(at, func() { fired = append(fired, sim.Now()) })
	}
	if err := sim.Run(time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
	for i, at := range times {
		if fired[i] != at {
			t.Fatalf("event %d fired at %v, want %v", i, fired[i], at)
		}
	}
}

// TestWheelSimultaneousFIFO schedules far events at an identical
// timestamp and checks the FIFO seq tie-break survives wheel placement
// and promotion (buckets are unordered lists; the heap restores order).
func TestWheelSimultaneousFIFO(t *testing.T) {
	sim := NewSimulator(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		sim.ScheduleAt(3*time.Second, func() { got = append(got, i) })
	}
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous far events fired out of FIFO order: %v", got)
		}
	}
	if len(got) != 10 {
		t.Fatalf("fired %d, want 10", len(got))
	}
}

// TestWheelCancel cancels a parked far timer: it must not fire, Pending
// must drop immediately, and the tombstone must be reclaimed silently at
// promotion time.
func TestWheelCancel(t *testing.T) {
	sim := NewSimulator(1)
	fired := false
	ev := sim.Schedule(3*time.Second, func() { fired = true })
	keep := false
	sim.Schedule(4*time.Second, func() { keep = true })
	if sim.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", sim.Pending())
	}
	sim.Cancel(ev)
	if sim.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", sim.Pending())
	}
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled far timer fired")
	}
	if !keep {
		t.Fatal("surviving far timer did not fire")
	}
}

// TestRunHorizonWithFarTimer checks Run stops at the horizon with a far
// timer still parked in the wheel, reports it pending, and fires it on a
// later Run.
func TestRunHorizonWithFarTimer(t *testing.T) {
	sim := NewSimulator(1)
	fired := false
	sim.Schedule(3*time.Second, func() { fired = true })
	if err := sim.Run(time.Second); err != ErrHorizon {
		t.Fatalf("Run = %v, want ErrHorizon", err)
	}
	if sim.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", sim.Now())
	}
	if fired {
		t.Fatal("far timer fired before its due time")
	}
	if sim.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", sim.Pending())
	}
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !fired || sim.Now() != time.Minute {
		t.Fatalf("fired=%v Now=%v after second Run", fired, sim.Now())
	}
}

// TestWheelIdleCatchUp drains the wheel, advances the clock far past the
// stale promotion horizon with near events only, then parks a new far
// timer: the wheel must catch its horizon up to the clock rather than
// placing the event in a bucket that already elapsed.
func TestWheelIdleCatchUp(t *testing.T) {
	sim := NewSimulator(1)
	sim.Schedule(3*time.Second, func() {})
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Clock is at 1 min; the wheel is empty with its horizon near 3 s.
	fired := time.Duration(-1)
	sim.Schedule(3*time.Second, func() { fired = sim.Now() })
	if err := sim.Run(2 * time.Minute); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if want := time.Minute + 3*time.Second; fired != want {
		t.Fatalf("far timer after idle gap fired at %v, want %v", fired, want)
	}
}

// TestImpossibleStatesPanic pins the typed scheduler's corruption
// handling: the old container/heap implementation silently swallowed a
// failed *Event type assertion, hiding kernel corruption; the rewrite
// has no any boxing to fail, so the impossible states that remain —
// a fired event still queued, a wheel placement below the promotion
// horizon — must panic loudly instead of being masked.
func TestImpossibleStatesPanic(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic on impossible state", name)
			}
		}()
		f()
	}
	expectPanic("fired event still queued", func() {
		s := NewSimulator(1)
		s.heap.push(heapNode{time: time.Millisecond, seq: 0, ev: &Event{state: eventFired}})
		s.tombstones = 1 // force settle onto the state-inspection path
		s.Step()
	})
	expectPanic("placement below the promotion horizon", func() {
		s := NewSimulator(1)
		s.wheel.p0 = 1 << 20
		s.wheel.place(&wheelNode{time: time.Microsecond})
	})
}

// TestFarTimerScheduledDuringRun posts a 3 s retransmission from inside a
// callback — the simnet RTO shape — and checks it fires at the right
// simulated time within the same Run.
func TestFarTimerScheduledDuringRun(t *testing.T) {
	sim := NewSimulator(1)
	var retransmitAt time.Duration
	sim.Schedule(100*time.Millisecond, func() {
		sim.Schedule(3*time.Second, func() { retransmitAt = sim.Now() })
	})
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := 100*time.Millisecond + 3*time.Second; retransmitAt != want {
		t.Fatalf("retransmission fired at %v, want %v", retransmitAt, want)
	}
}

// TestWheelRevolutionAliasing parks two events exactly one level-1
// revolution apart: their level-1 slot indices alias modulo the wheel
// size, so the far one must be routed up to level 2 at placement and
// filtered by absolute bucket index at every spill — it must neither
// leak into the near window nor strand past its due time.
func TestWheelRevolutionAliasing(t *testing.T) {
	sim := NewSimulator(1)
	revolution := time.Duration(wheelSlots) * (time.Duration(1) << g1Bits)
	early := time.Second
	late := early + revolution // aliases early's level-1 slot index
	var got []time.Duration
	sim.ScheduleAt(late, func() { got = append(got, sim.Now()) })
	sim.ScheduleAt(early, func() { got = append(got, sim.Now()) })
	if err := sim.Run(2 * revolution); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != early || got[1] != late {
		t.Fatalf("aliased events fired at %v, want [%v %v]", got, early, late)
	}
}
