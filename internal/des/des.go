// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a virtual clock forward by executing scheduled events in
// timestamp order. Events with identical timestamps execute in the order they
// were scheduled (stable FIFO tie-breaking), so a simulation is fully
// reproducible given the same inputs and RNG seed.
//
// The kernel is intentionally single-threaded: all model code runs on the
// caller's goroutine inside Run/Step. This makes simulations deterministic
// and fast, and lets models share state without locks.
package des

import (
	"container/heap"
	"errors"
	"math/rand"
	"time"
)

// ErrHorizon is returned by Run when the simulation reaches the requested
// time horizon with events still pending.
var ErrHorizon = errors.New("des: horizon reached with pending events")

// Event is a scheduled callback. Events created by Schedule/ScheduleAt
// can be cancelled before they fire. Events created by Post/PostAt are
// pooled: the kernel recycles the object the moment it fires, so no
// handle to one ever escapes.
type Event struct {
	time     time.Duration
	seq      uint64
	index    int // position in the heap, -1 once removed
	fn       func()
	canceled bool

	// Pooled (Post) form: fn2 is called with the two stashed arguments,
	// and the object returns to the intrusive freelist before the call.
	fn2      func(a0, a1 any)
	a0, a1   any
	pooled   bool
	nextFree *Event
}

// Time returns the simulated time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) Time() time.Duration { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	free   *Event // intrusive freelist of recycled pooled events

	executed    uint64
	peakPending int
}

// NewSimulator returns a simulator whose clock starts at zero and whose RNG
// is seeded with seed.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulated time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Scheduled returns the number of events ever scheduled (including
// cancelled and pooled ones).
func (s *Simulator) Scheduled() uint64 { return s.seq }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return s.events.Len() }

// PeakPending returns the largest pending-heap depth seen so far — the
// kernel's own memory high-water mark, tracked unconditionally because a
// comparison per schedule is free next to the heap push.
func (s *Simulator) PeakPending() int { return s.peakPending }

// Schedule registers fn to run after delay of simulated time. A negative
// delay is treated as zero. The returned Event may be cancelled. Each call
// allocates an Event (the handle keeps it alive); fire-and-forget callers
// on hot paths should use Post, which recycles events through a pool.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute simulated time t. Times in the
// past are clamped to the current time.
func (s *Simulator) ScheduleAt(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	if n := s.events.Len(); n > s.peakPending {
		s.peakPending = n
	}
	return e
}

// Post registers fn to run after delay of simulated time with two
// caller-supplied arguments, on a pooled event: the kernel recycles
// event objects through an intrusive freelist, so steady-state posting
// allocates nothing. No handle is returned — a pooled event cannot be
// cancelled, because its object is reused the moment it fires. Use
// Schedule when the timer may need cancelling. A negative delay is
// treated as zero. Ordering is identical to Schedule: pooled and
// heap-allocated events share one (time, seq) sequence.
//
// Pass pointer-shaped arguments: boxing a non-pointer value into the
// any parameters allocates at the call site (the allocs analyzer flags
// it there).
//
//lint:hotpath DES kernel fire-and-forget scheduling path
func (s *Simulator) Post(delay time.Duration, fn func(a0, a1 any), a0, a1 any) {
	if delay < 0 {
		delay = 0
	}
	s.PostAt(s.now+delay, fn, a0, a1)
}

// PostAt is Post with an absolute simulated time, clamped to now.
//
//lint:hotpath DES kernel fire-and-forget scheduling path
func (s *Simulator) PostAt(t time.Duration, fn func(a0, a1 any), a0, a1 any) {
	if t < s.now {
		t = s.now
	}
	e := s.take()
	e.time, e.seq = t, s.seq
	e.fn2, e.a0, e.a1, e.pooled = fn, a0, a1, true
	s.seq++
	heap.Push(&s.events, e)
	if n := s.events.Len(); n > s.peakPending {
		s.peakPending = n
	}
}

// take pops the freelist, falling back to the heap allocator only while
// the pool is warming up.
//
//lint:hotpath
func (s *Simulator) take() *Event {
	if e := s.free; e != nil {
		s.free = e.nextFree
		e.nextFree = nil
		return e
	}
	return &Event{} //lint:allow allocs pool warm-up: one object per concurrent pending event, reused forever after
}

// release wipes a pooled event and pushes it onto the freelist.
//
//lint:hotpath
func (s *Simulator) release(e *Event) {
	*e = Event{nextFree: s.free}
	s.free = e
}

// Cancel removes the event from the queue if it has not yet fired. It is
// safe to call multiple times and after the event has fired.
//
//lint:hotpath
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&s.events, e.index)
}

// Step executes the single next event, advancing the clock to its timestamp.
// It returns false when no events remain. A pooled event is released back to
// the freelist before its callback runs, so the callback can Post and reuse
// the very slot it fired from.
//
//lint:hotpath DES kernel event loop
func (s *Simulator) Step() bool {
	for s.events.Len() > 0 {
		ev, ok := heap.Pop(&s.events).(*Event)
		if !ok {
			return false
		}
		if ev.canceled {
			if ev.pooled {
				s.release(ev)
			}
			continue
		}
		s.now = ev.time
		s.executed++
		if ev.pooled {
			fn2, a0, a1 := ev.fn2, ev.a0, ev.a1
			s.release(ev)
			fn2(a0, a1)
		} else {
			ev.fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or the clock would pass
// horizon. Events scheduled exactly at the horizon still execute. It returns
// ErrHorizon if events remain beyond the horizon, nil otherwise.
//
//lint:hotpath DES kernel event loop
func (s *Simulator) Run(horizon time.Duration) error {
	for s.events.Len() > 0 {
		next := s.events[0]
		if next.canceled {
			if ev, ok := heap.Pop(&s.events).(*Event); ok && ev.pooled {
				s.release(ev)
			}
			continue
		}
		if next.time > horizon {
			s.now = horizon
			return ErrHorizon
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// eventHeap orders events by (time, seq) so simultaneous events run FIFO.
// Its methods are annotated individually because container/heap reaches
// them through the heap.Interface — a dynamic dispatch the static allocs
// summary cannot see through (DESIGN.md §12).
type eventHeap []*Event

//lint:hotpath
func (h eventHeap) Len() int { return len(h) }

//lint:hotpath
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

//lint:hotpath
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

//lint:hotpath
func (h *eventHeap) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.index = len(*h)
	*h = append(*h, e) //lint:allow allocs amortized: the backing array doubles, then is reused for the run's lifetime
}

//lint:hotpath
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
