// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a virtual clock forward by executing scheduled events in
// timestamp order. Events with identical timestamps execute in the order they
// were scheduled (stable FIFO tie-breaking), so a simulation is fully
// reproducible given the same inputs and RNG seed.
//
// The scheduler is split by distance-to-due: events park in a three-level
// hierarchical timer wheel (wheel.go) for O(1) insertion — the paper's
// 3 s RTO retransmissions above all — and are promoted one 65 µs bucket
// at a time into a cache-friendly 4-ary min-heap (heap4.go) that only
// ever orders the events about to fire. Cancellation is O(1) and lazy: a
// cancelled event becomes a tombstone, dropped when the scheduler
// reaches it. DESIGN.md §14 describes the structure and its determinism
// argument.
//
// The kernel is intentionally single-threaded: all model code runs on the
// caller's goroutine inside Run/Step. This makes simulations deterministic
// and fast, and lets models share state without locks.
package des

import (
	"errors"
	"math/rand"
	"time"
)

// ErrHorizon is returned by Run when the simulation reaches the requested
// time horizon with events still pending.
var ErrHorizon = errors.New("des: horizon reached with pending events")

// Event lifecycle states. A pending event may fire or be cancelled, and
// each transition happens at most once; the zero value is pending so
// pooled events come out of the freelist ready to schedule.
const (
	eventPending uint8 = iota
	eventFired
	eventCanceled
)

// Event is a scheduled callback. Events created by Schedule/ScheduleAt
// can be cancelled before they fire. Events created by Post/PostAt are
// pooled: the kernel recycles the object the moment it fires, so no
// handle to one ever escapes.
type Event struct {
	time  time.Duration
	fn    func()
	state uint8

	// Pooled (Post) form: fn2 is called with the two stashed arguments,
	// and the object returns to the intrusive freelist before the call.
	fn2      func(a0, a1 any)
	a0, a1   any
	pooled   bool
	nextFree *Event
}

// Time returns the simulated time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) Time() time.Duration { return e.time }

// Canceled reports whether Cancel removed the event before it fired.
// Cancelling an event whose callback already ran is a no-op, so a fired
// event never reports true.
func (e *Event) Canceled() bool { return e.state == eventCanceled }

// Simulator owns the virtual clock and the pending-event schedule.
type Simulator struct {
	now   time.Duration
	heap  heap4
	wheel wheel
	seq   uint64
	rng   *rand.Rand
	free  *Event // intrusive freelist of recycled pooled events

	executed    uint64
	pending     int
	peakPending int
	tombstones  int // cancelled events not yet reclaimed from heap/wheel
}

// NewSimulator returns a simulator whose clock starts at zero and whose RNG
// is seeded with seed.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulated time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Scheduled returns the number of events ever scheduled (including
// cancelled and pooled ones).
func (s *Simulator) Scheduled() uint64 { return s.seq }

// Pending returns the number of live events currently scheduled.
// Cancelled events leave this count the moment Cancel runs, even though
// their tombstones are reclaimed lazily.
func (s *Simulator) Pending() int { return s.pending }

// PeakPending returns the largest number of simultaneously live events
// seen so far — the kernel's own memory high-water mark, tracked
// unconditionally because a comparison per schedule is free next to the
// enqueue. Cancelled events stop counting at Cancel time; lazy
// tombstones never inflate the mark.
func (s *Simulator) PeakPending() int { return s.peakPending }

// Schedule registers fn to run after delay of simulated time. A negative
// delay is treated as zero. The returned Event may be cancelled. Each call
// allocates an Event (the handle keeps it alive); fire-and-forget callers
// on hot paths should use Post, which recycles events through a pool.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute simulated time t. Times in the
// past are clamped to the current time.
func (s *Simulator) ScheduleAt(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{time: t, fn: fn}
	s.enqueue(t, e)
	return e
}

// Post registers fn to run after delay of simulated time with two
// caller-supplied arguments, on a pooled event: the kernel recycles
// event objects through an intrusive freelist, so steady-state posting
// allocates nothing. No handle is returned — a pooled event cannot be
// cancelled, because its object is reused the moment it fires. Use
// Schedule when the timer may need cancelling. A negative delay is
// treated as zero. Ordering is identical to Schedule: pooled and
// heap-allocated events share one (time, seq) sequence.
//
// Pass pointer-shaped arguments: boxing a non-pointer value into the
// any parameters allocates at the call site (the allocs analyzer flags
// it there).
//
//lint:hotpath DES kernel fire-and-forget scheduling path
func (s *Simulator) Post(delay time.Duration, fn func(a0, a1 any), a0, a1 any) {
	if delay < 0 {
		delay = 0
	}
	s.PostAt(s.now+delay, fn, a0, a1)
}

// PostAt is Post with an absolute simulated time, clamped to now.
//
//lint:hotpath DES kernel fire-and-forget scheduling path
func (s *Simulator) PostAt(t time.Duration, fn func(a0, a1 any), a0, a1 any) {
	if t < s.now {
		t = s.now
	}
	e := s.take()
	e.time = t
	e.fn2, e.a0, e.a1, e.pooled = fn, a0, a1, true
	s.enqueue(t, e)
}

// enqueue assigns the event its slot in the global (time, seq) order,
// bumps the live-event accounting, and routes it to the near-term heap
// or the timer wheel. The wheel is the default home: parking is O(1)
// and keeps the heap one bucket deep. Only events due below the
// promotion horizon — typically same-bucket microsecond chains, whose
// bucket has already been promoted — go straight to the heap, which is
// always correct because the heap may legally hold an event at any
// distance. If the wheel is idle its horizon may lag the clock
// arbitrarily, so it is first caught up (safe: there is nothing parked
// to skip).
//
//lint:hotpath
func (s *Simulator) enqueue(t time.Duration, e *Event) {
	seq := s.seq
	s.seq++
	s.pending++
	if s.pending > s.peakPending {
		s.peakPending = s.pending
	}
	w := &s.wheel
	if w.resident() == 0 {
		if b := int64(s.now >> g0Bits); b > w.p0 {
			w.p0 = b
		}
	}
	if int64(t>>g0Bits) < w.p0 {
		s.heap.push(heapNode{time: t, seq: seq, ev: e})
		return
	}
	n := w.takeNode()
	n.time, n.seq, n.ev = t, seq, e
	w.place(n)
}

// take pops the freelist, falling back to the heap allocator only while
// the pool is warming up.
//
//lint:hotpath
func (s *Simulator) take() *Event {
	if e := s.free; e != nil {
		s.free = e.nextFree
		e.nextFree = nil
		return e
	}
	return &Event{} //lint:allow allocs pool warm-up: one object per concurrent pending event, reused forever after
}

// release clears the reference fields of a pooled event — so the
// freelist does not pin caller objects — and pushes it onto the
// freelist. The scalar fields are left stale on purpose: PostAt
// overwrites every one of them, and a full struct wipe costs a duffzero
// on the hottest path in the kernel.
//
//lint:hotpath
func (s *Simulator) release(e *Event) {
	e.fn2, e.a0, e.a1 = nil, nil, nil
	e.nextFree = s.free
	s.free = e
}

// Cancel removes the event from the schedule if it has not yet fired:
// the event is tombstoned in O(1) — no heap surgery — and its slot is
// reclaimed lazily when the scheduler reaches it (settle drops heap
// tombstones, promote drops wheel tombstones). Cancelling an event whose
// callback already ran is a no-op and does not mark it Canceled; so are
// re-cancelling and passing nil.
//
//lint:hotpath
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.state != eventPending {
		return
	}
	e.state = eventCanceled
	s.pending--
	s.tombstones++
}

// settle drains cancelled tombstones off the heap top and promotes due
// timer-wheel buckets until the heap top is the globally minimal live
// event, reporting false when no live events remain anywhere. The wheel
// invariant makes the order exact: every pending event below the
// promotion horizon is already in the heap, and every parked event is at
// or beyond it, so a heap top below the horizon is the global minimum.
// While the tombstone count is zero — the steady state of cancel-free
// stretches — the top's Event is never even loaded.
//
//lint:hotpath
func (s *Simulator) settle() bool {
	for {
		if s.wheel.resident() > 0 &&
			(len(s.heap.a) == 0 || int64(s.heap.a[0].time>>g0Bits) >= s.wheel.p0) {
			s.tombstones -= s.wheel.promote(&s.heap)
			continue
		}
		if len(s.heap.a) == 0 {
			return false
		}
		if s.tombstones == 0 {
			return true
		}
		switch s.heap.a[0].ev.state {
		case eventPending:
			return true
		case eventCanceled:
			s.heap.pop() // lazy-cancellation tombstone: drop and move on
			s.tombstones--
		default:
			panic("des: fired event still queued")
		}
	}
}

// fire advances the clock to t and runs the event's callback. A pooled
// event is released back to the freelist before its callback runs, so
// the callback can Post and reuse the very slot it fired from.
//
//lint:hotpath
func (s *Simulator) fire(e *Event, t time.Duration) {
	s.now = t
	s.executed++
	s.pending--
	if e.pooled {
		fn2, a0, a1 := e.fn2, e.a0, e.a1
		s.release(e)
		fn2(a0, a1)
		return
	}
	e.state = eventFired
	e.fn()
}

// Step executes the single next event, advancing the clock to its
// timestamp. It returns false when no live events remain.
//
//lint:hotpath DES kernel event loop
func (s *Simulator) Step() bool {
	if !s.settle() {
		return false
	}
	n := s.heap.pop()
	s.fire(n.ev, n.time)
	return true
}

// Run executes events until the schedule drains or the clock would pass
// horizon. Events scheduled exactly at the horizon still execute. It returns
// ErrHorizon if live events remain beyond the horizon, nil otherwise.
//
//lint:hotpath DES kernel event loop
func (s *Simulator) Run(horizon time.Duration) error {
	for s.settle() {
		if s.heap.a[0].time > horizon {
			s.now = horizon
			return ErrHorizon
		}
		n := s.heap.pop()
		s.fire(n.ev, n.time)
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}
