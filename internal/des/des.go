// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a virtual clock forward by executing scheduled events in
// timestamp order. Events with identical timestamps execute in the order they
// were scheduled (stable FIFO tie-breaking), so a simulation is fully
// reproducible given the same inputs and RNG seed.
//
// The kernel is intentionally single-threaded: all model code runs on the
// caller's goroutine inside Run/Step. This makes simulations deterministic
// and fast, and lets models share state without locks.
package des

import (
	"container/heap"
	"errors"
	"math/rand"
	"time"
)

// ErrHorizon is returned by Run when the simulation reaches the requested
// time horizon with events still pending.
var ErrHorizon = errors.New("des: horizon reached with pending events")

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	time     time.Duration
	seq      uint64
	index    int // position in the heap, -1 once removed
	fn       func()
	canceled bool
}

// Time returns the simulated time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) Time() time.Duration { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	executed    uint64
	peakPending int
}

// NewSimulator returns a simulator whose clock starts at zero and whose RNG
// is seeded with seed.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulated time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Scheduled returns the number of events ever scheduled (including
// cancelled ones).
func (s *Simulator) Scheduled() uint64 { return s.seq }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return s.events.Len() }

// PeakPending returns the largest pending-heap depth seen so far — the
// kernel's own memory high-water mark, tracked unconditionally because a
// comparison per schedule is free next to the heap push.
func (s *Simulator) PeakPending() int { return s.peakPending }

// Schedule registers fn to run after delay of simulated time. A negative
// delay is treated as zero. The returned Event may be cancelled.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute simulated time t. Times in the
// past are clamped to the current time.
func (s *Simulator) ScheduleAt(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	if n := s.events.Len(); n > s.peakPending {
		s.peakPending = n
	}
	return e
}

// Cancel removes the event from the queue if it has not yet fired. It is
// safe to call multiple times and after the event has fired.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&s.events, e.index)
}

// Step executes the single next event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (s *Simulator) Step() bool {
	for s.events.Len() > 0 {
		ev, ok := heap.Pop(&s.events).(*Event)
		if !ok {
			return false
		}
		if ev.canceled {
			continue
		}
		s.now = ev.time
		s.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or the clock would pass
// horizon. Events scheduled exactly at the horizon still execute. It returns
// ErrHorizon if events remain beyond the horizon, nil otherwise.
func (s *Simulator) Run(horizon time.Duration) error {
	for s.events.Len() > 0 {
		next := s.events[0]
		if next.canceled {
			heap.Pop(&s.events)
			continue
		}
		if next.time > horizon {
			s.now = horizon
			return ErrHorizon
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// eventHeap orders events by (time, seq) so simultaneous events run FIFO.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
