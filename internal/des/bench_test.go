package des

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndFire(b *testing.B) {
	sim := NewSimulator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 0 {
			for sim.Step() {
			}
		}
	}
	for sim.Step() {
	}
}

func BenchmarkCancel(b *testing.B) {
	sim := NewSimulator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := sim.Schedule(time.Hour, func() {})
		sim.Cancel(ev)
	}
}
