package des

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndFire(b *testing.B) {
	sim := NewSimulator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 0 {
			for sim.Step() {
			}
		}
	}
	for sim.Step() {
	}
}

func BenchmarkCancel(b *testing.B) {
	sim := NewSimulator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := sim.Schedule(time.Hour, func() {})
		sim.Cancel(ev)
	}
}

// The EventLoop pair measures what the pooled Post API buys over
// closure-based Schedule on the kernel's steady-state path: both
// benchmarks run the same schedule-then-drain loop with a callback that
// bumps a counter through captured/passed state. Schedule allocates an
// Event and a capturing closure per iteration; Post recycles events
// through the freelist and passes state through the two any slots.

type benchCounter struct{ n int }

func benchBump(a0, a1 any) { a0.(*benchCounter).n++ }

func BenchmarkEventLoopSchedule(b *testing.B) {
	sim := NewSimulator(1)
	c := &benchCounter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Duration(i%1000)*time.Microsecond, func() { c.n++ })
		if i%1024 == 1023 {
			for sim.Step() {
			}
		}
	}
	for sim.Step() {
	}
}

func BenchmarkEventLoopPost(b *testing.B) {
	sim := NewSimulator(1)
	c := &benchCounter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Post(time.Duration(i%1000)*time.Microsecond, benchBump, c, nil)
		if i%1024 == 1023 {
			for sim.Step() {
			}
		}
	}
	for sim.Step() {
	}
}
