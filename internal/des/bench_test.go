package des

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndFire(b *testing.B) {
	sim := NewSimulator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 0 {
			for sim.Step() {
			}
		}
	}
	for sim.Step() {
	}
}

func BenchmarkCancel(b *testing.B) {
	sim := NewSimulator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := sim.Schedule(time.Hour, func() {})
		sim.Cancel(ev)
	}
}

// The EventLoop pair measures what the pooled Post API buys over
// closure-based Schedule on the kernel's steady-state path: both
// benchmarks run the same schedule-then-drain loop with a callback that
// bumps a counter through captured/passed state. Schedule allocates an
// Event and a capturing closure per iteration; Post recycles events
// through the freelist and passes state through the two any slots.

type benchCounter struct{ n int }

func benchBump(a0, a1 any) { a0.(*benchCounter).n++ }

func BenchmarkEventLoopSchedule(b *testing.B) {
	sim := NewSimulator(1)
	c := &benchCounter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Duration(i%1000)*time.Microsecond, func() { c.n++ })
		if i%1024 == 1023 {
			for sim.Step() {
			}
		}
	}
	for sim.Step() {
	}
}

func BenchmarkEventLoopPost(b *testing.B) {
	sim := NewSimulator(1)
	c := &benchCounter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Post(time.Duration(i%1000)*time.Microsecond, benchBump, c, nil)
		if i%1024 == 1023 {
			for sim.Step() {
			}
		}
	}
	for sim.Step() {
	}
}

// BenchmarkEventLoopRTO100k is the paper's tail mechanism as a scheduler
// stress: 100k pending 3 s RTO retransmission timers, spaced 30 µs apart
// so the population stays at 100k while each iteration posts one fresh
// RTO and fires the oldest. Under the old binary heap every operation
// paid O(log 100k) sifts through the full timer population; with the
// wheel the resident RTOs cost O(1) to park and the near-term heap stays
// small.
func BenchmarkEventLoopRTO100k(b *testing.B) {
	const rto = 3 * time.Second
	const spacing = 30 * time.Microsecond
	sim := NewSimulator(1)
	c := &benchCounter{}
	for i := 0; i < 100_000; i++ {
		sim.PostAt(sim.Now()+time.Duration(i)*spacing+rto, benchBump, c, nil)
	}
	// Advance to the first timer's due instant so each iteration's Step
	// fires exactly one timer while 100k remain pending.
	for sim.Now() < rto {
		sim.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Post(rto, benchBump, c, nil)
		sim.Step()
	}
}
