// DES self-profiling: the measurement-boundary code that reads the wall
// clock and the Go runtime's allocation counters around a run, so the
// kernel's own cost — the denominator of every "simulate millions of
// users" claim — is a first-class, recorded quantity.
//
// The wall-clock reads here are the sanctioned exception to the
// determinism contract: they happen only at run boundaries, never feed
// back into simulated time, and each carries a //lint:allow wallclock
// annotation (the measurement-boundary convention checked by ctqo-lint's
// fixtures).

package des

import (
	"fmt"
	"runtime"
	"time"
)

// SimStats is one profiled run's kernel self-measurement.
//
// EventsExecuted, EventsScheduled and PeakPending are deterministic —
// identical for identical seeds. WallSeconds, EventsPerSecond,
// AllocBytes and GCCycles read the host and vary run to run; they must
// never flow into simulation state or byte-compared artifacts.
type SimStats struct {
	// EventsExecuted is how many events the kernel ran in the window.
	EventsExecuted uint64
	// EventsScheduled is how many events were scheduled in the window
	// (including later-cancelled ones).
	EventsScheduled uint64
	// PeakPending is the pending-heap high-water mark over the whole
	// simulator lifetime.
	PeakPending int
	// WallSeconds is the host time the window took.
	WallSeconds float64
	// EventsPerSecond is EventsExecuted/WallSeconds — the kernel
	// throughput number the DES hot-path work is judged against.
	EventsPerSecond float64
	// AllocBytes is the runtime.MemStats TotalAlloc delta over the
	// window: bytes allocated, not bytes retained.
	AllocBytes uint64
	// GCCycles is the NumGC delta over the window.
	GCCycles uint32
}

// String renders the stats as a compact two-line report.
func (st SimStats) String() string {
	return fmt.Sprintf(
		"%d events executed (%d scheduled), peak pending %d\n"+
			"%.3fs wall, %.3gM events/s, %.1f MB allocated, %d GC cycles",
		st.EventsExecuted, st.EventsScheduled, st.PeakPending,
		st.WallSeconds, st.EventsPerSecond/1e6,
		float64(st.AllocBytes)/(1<<20), st.GCCycles)
}

// Profile is an open profiling window over one simulator.
type Profile struct {
	sim            *Simulator
	startWall      time.Time
	startExecuted  uint64
	startScheduled uint64
	startAlloc     uint64
	startGC        uint32
}

// StartProfile opens a profiling window at the current run boundary:
// it snapshots the kernel counters, the allocation totals and the wall
// clock. Call Stats after Run to close the window.
func (s *Simulator) StartProfile() *Profile {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return &Profile{
		sim:            s,
		startExecuted:  s.executed,
		startScheduled: s.seq,
		startAlloc:     m.TotalAlloc,
		startGC:        m.NumGC,
		startWall:      time.Now(), //lint:allow wallclock profiling measurement boundary
	}
}

// Stats closes the window and returns the deltas. It may be called more
// than once; each call measures from the same start.
func (p *Profile) Stats() SimStats {
	wall := time.Since(p.startWall) //lint:allow wallclock profiling measurement boundary
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	st := SimStats{
		EventsExecuted:  p.sim.executed - p.startExecuted,
		EventsScheduled: p.sim.seq - p.startScheduled,
		PeakPending:     p.sim.peakPending,
		WallSeconds:     wall.Seconds(),
		AllocBytes:      m.TotalAlloc - p.startAlloc,
		GCCycles:        m.NumGC - p.startGC,
	}
	if st.WallSeconds > 0 {
		st.EventsPerSecond = float64(st.EventsExecuted) / st.WallSeconds
	}
	return st
}
