package live

import (
	"testing"
	"time"
)

// FuzzParseRequest ensures the wire parser never panics and that every
// successfully parsed request re-encodes to something it can parse again.
func FuzzParseRequest(f *testing.F) {
	f.Add("1 1 1000 -")
	f.Add("42 2 3000000 1000000,2000000")
	f.Add("")
	f.Add("x y z w")
	f.Add("1 1 1000 ,")
	f.Fuzz(func(t *testing.T, line string) {
		req, err := parseRequest(line)
		if err != nil {
			return
		}
		again, err := parseRequest(req.encode())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", req.encode(), err)
		}
		if again.ID != req.ID || again.Service != req.Service ||
			len(again.Downstream) != len(req.Downstream) {
			t.Fatalf("round trip mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzEncodeStability: any request built from fuzzer-chosen fields encodes
// into a line the parser accepts with identical fields.
func FuzzEncodeStability(f *testing.F) {
	f.Add(uint64(1), 1, int64(time.Millisecond), int64(time.Second))
	f.Fuzz(func(t *testing.T, id uint64, attempt int, svcNs, downNs int64) {
		req := Request{
			ID:      id,
			Attempt: attempt,
			Service: time.Duration(svcNs),
		}
		if downNs != 0 {
			req.Downstream = []time.Duration{time.Duration(downNs)}
		}
		got, err := parseRequest(req.encode())
		if err != nil {
			t.Fatalf("encode of %+v not parseable: %v", req, err)
		}
		if got.ID != id || got.Service != req.Service {
			t.Fatalf("fields drifted: %+v vs %+v", req, got)
		}
	})
}
