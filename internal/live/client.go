package live

import (
	"fmt"
	"net"
	"time"

	"ctqosim/internal/span"
)

// Client performs request/response exchanges against a live tier with
// application-level retransmission: a refused or reset connection (the
// server's "drop") is retried after RTO, up to MaxAttempts — the enacted
// version of the kernel's SYN retransmission.
type Client struct {
	// Target is the tier's address.
	Target string
	// RTO is the retry delay; zero means 3s.
	RTO time.Duration
	// MaxAttempts bounds total attempts; zero means 5.
	MaxAttempts int
	// IOTimeout caps each dial/read/write; zero means 10s.
	IOTimeout time.Duration
	// Name labels the target tier in recorded spans; empty means Target.
	Name string
	// Collector, when non-nil, receives the whole exchange as a downstream
	// span plus one retransmission-gap span per RTO wait.
	Collector *Collector
}

func (c *Client) name() string {
	if c.Name != "" {
		return c.Name
	}
	return c.Target
}

func (c *Client) rto() time.Duration {
	if c.RTO > 0 {
		return c.RTO
	}
	return 3 * time.Second
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 5
}

func (c *Client) ioTimeout() time.Duration {
	if c.IOTimeout > 0 {
		return c.IOTimeout
	}
	return 10 * time.Second
}

// Do performs one exchange, retrying dropped attempts. It returns the
// number of attempts made and the first nil or final non-nil error.
func (c *Client) Do(req Request) (attempts int, err error) {
	col := c.Collector
	callStart := col.Clock()
	defer func() {
		detail := ""
		if err != nil {
			detail = "gave up"
		}
		col.Record(req.ID, span.KindDownstream, c.name(), callStart, col.Clock(), detail)
	}()
	for attempts = 1; ; attempts++ {
		req.Attempt = attempts
		err = c.once(req)
		if err == nil {
			return attempts, nil
		}
		if attempts >= c.maxAttempts() {
			return attempts, fmt.Errorf("live: gave up after %d attempts: %w", attempts, err)
		}
		gap := col.Clock()
		time.Sleep(c.rto())
		if col != nil {
			col.Record(req.ID, span.KindRetransmit, c.name(), gap, col.Clock(),
				fmt.Sprintf("attempt %d dropped by %s; waited RTO", attempts, c.name()))
		}
	}
}

func (c *Client) once(req Request) error {
	conn, err := net.DialTimeout("tcp", c.Target, c.ioTimeout())
	if err != nil {
		return fmt.Errorf("live: dial %s: %w", c.Target, err)
	}
	defer conn.Close()
	return exchange(conn, req, c.ioTimeout())
}

// Outcome is one client request's result in a load run.
type Outcome struct {
	// ID echoes the request.
	ID uint64
	// Latency is the end-to-end time including retries.
	Latency time.Duration
	// Attempts counts delivery attempts on the first hop.
	Attempts int
	// Err is non-nil if the request never completed.
	Err error
}

// RunLoad fires n concurrent requests at the target and collects all
// outcomes. Each request's chain sleeps the given per-tier service times.
func RunLoad(client Client, n int, services []time.Duration) []Outcome {
	if len(services) == 0 {
		services = []time.Duration{0}
	}
	results := make([]Outcome, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			req := Request{
				ID:         uint64(i),
				Service:    services[0],
				Downstream: services[1:],
			}
			rootStart := client.Collector.Clock()
			start := time.Now()
			attempts, err := client.Do(req)
			client.Collector.Record(req.ID, span.KindRequest, "client",
				rootStart, client.Collector.Clock(), "")
			results[i] = Outcome{
				ID:       uint64(i),
				Latency:  time.Since(start),
				Attempts: attempts,
				Err:      err,
			}
			done <- i
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return results
}
