package live

import (
	"strings"
	"testing"
	"time"

	"ctqosim/internal/span"
)

// TestCollectorAssemblesByContainment checks the tree reconstruction on
// hand-recorded intervals: the nesting must come out exactly as if the
// spans had been threaded through the call chain.
func TestCollectorAssemblesByContainment(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	c := NewCollector()
	c.Record(7, span.KindRequest, "client", ms(0), ms(100), "")
	c.Record(7, span.KindDownstream, "web", ms(1), ms(99), "")
	c.Record(7, span.KindQueueWait, "web", ms(2), ms(3), "")
	c.Record(7, span.KindService, "web", ms(3), ms(98), "")
	c.Record(7, span.KindRetransmit, "db", ms(10), ms(50), "attempt 1 dropped by db; waited RTO")
	c.Record(7, span.KindDownstream, "db", ms(50), ms(90), "")

	tr := c.Assemble(span.TracerConfig{Seed: 1, TailThreshold: time.Millisecond})
	traces := tr.TailExemplars()
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	tree := traces[0]
	if tree.RequestID != 7 || tree.ResponseTime() != ms(100) {
		t.Fatalf("root = request %d, %v; want 7, 100ms", tree.RequestID, tree.ResponseTime())
	}

	byID := map[span.ID]span.Span{}
	for _, s := range tree.Spans() {
		byID[s.ID] = s
	}
	parentKind := func(s span.Span) span.Kind { return byID[s.Parent].Kind }
	for _, s := range tree.Spans() {
		switch {
		case s.Kind == span.KindDownstream && s.Tier == "web":
			if parentKind(s) != span.KindRequest {
				t.Errorf("web downstream parented to %v, want request", parentKind(s))
			}
		case s.Kind == span.KindDownstream && s.Tier == "db":
			if parentKind(s) != span.KindService {
				t.Errorf("db downstream parented to %v, want web service", parentKind(s))
			}
		case s.Kind == span.KindQueueWait, s.Kind == span.KindService:
			if parentKind(s) != span.KindDownstream {
				t.Errorf("%v parented to %v, want downstream", s.Kind, parentKind(s))
			}
		case s.Kind == span.KindRetransmit:
			if parentKind(s) != span.KindService {
				t.Errorf("retransmit parented to %v, want the web service span", parentKind(s))
			}
		}
	}

	// Exclusive times must still sum exactly to the response time.
	var sum time.Duration
	for _, st := range tree.SelfTimes() {
		sum += st.Self
	}
	if sum != ms(100) {
		t.Errorf("self times sum to %v, want 100ms", sum)
	}
}

// TestCollectorSynthesizesRootForBareCalls covers Client.Do used without
// RunLoad: no client-side request interval exists, so the hull becomes the
// root.
func TestCollectorSynthesizesRootForBareCalls(t *testing.T) {
	c := NewCollector()
	c.Record(3, span.KindQueueWait, "web", 2*time.Millisecond, 5*time.Millisecond, "")
	c.Record(3, span.KindService, "web", 5*time.Millisecond, 20*time.Millisecond, "")

	tr := c.Assemble(span.TracerConfig{Seed: 1, TailThreshold: time.Millisecond})
	traces := tr.TailExemplars()
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	if rt := traces[0].ResponseTime(); rt != 18*time.Millisecond {
		t.Errorf("hull response time = %v, want 18ms", rt)
	}
}

// TestLiveSpansOnSockets runs a collector-instrumented two-tier chain over
// real TCP and checks that every request assembles into a complete span
// tree. The load is light (no drops), so the structure is deterministic
// even though the timings are not.
func TestLiveSpansOnSockets(t *testing.T) {
	col := NewCollector()
	db := serveTier(t, Config{Sync: true, Workers: 4, Queue: 8, Name: "db",
		Collector: col})
	web := serveTier(t, Config{Sync: true, Workers: 4, Queue: 8, Name: "web",
		Downstream: db.Addr(), RTO: fastRTO, Collector: col})

	client := Client{Target: web.Addr(), RTO: fastRTO, IOTimeout: 5 * time.Second,
		Name: "web", Collector: col}
	const n = 8
	outcomes := RunLoad(client, n, []time.Duration{time.Millisecond, time.Millisecond})
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("request %d failed: %v", o.ID, o.Err)
		}
	}

	tr := col.Assemble(span.TracerConfig{Seed: 1, TailThreshold: time.Microsecond})
	if tr.Finished() != n {
		t.Fatalf("assembled %d traces, want %d", tr.Finished(), n)
	}
	for _, trace := range tr.TailExemplars() {
		kinds := map[span.Kind][]string{}
		for _, s := range trace.Spans() {
			kinds[s.Kind] = append(kinds[s.Kind], s.Tier)
		}
		if got := len(kinds[span.KindQueueWait]); got != 2 {
			t.Errorf("request %d: %d queue-wait spans, want 2 (web+db)", trace.RequestID, got)
		}
		if got := len(kinds[span.KindService]); got != 2 {
			t.Errorf("request %d: %d service spans, want 2 (web+db)", trace.RequestID, got)
		}
		if got := strings.Join(kinds[span.KindService], ","); !strings.Contains(got, "web") || !strings.Contains(got, "db") {
			t.Errorf("request %d: service tiers = %s, want web and db", trace.RequestID, got)
		}
		// Both the client→web and web→db exchanges appear.
		if got := len(kinds[span.KindDownstream]); got != 2 {
			t.Errorf("request %d: %d downstream spans, want 2", trace.RequestID, got)
		}
	}
}

// TestLiveRetransmitSpansOnSockets overloads a tiny sync tier so that some
// requests are refused and must wait out the application-level RTO; those
// waits must surface as retransmission-gap spans naming the dropping tier.
func TestLiveRetransmitSpansOnSockets(t *testing.T) {
	col := NewCollector()
	s := serveTier(t, Config{Sync: true, Workers: 2, Queue: 2, Name: "web",
		Collector: col})
	client := Client{Target: s.Addr(), RTO: fastRTO, MaxAttempts: 20,
		IOTimeout: 5 * time.Second, Name: "web", Collector: col}

	outcomes := RunLoad(client, 12, []time.Duration{50 * time.Millisecond})
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("request %d failed permanently: %v", o.ID, o.Err)
		}
	}
	if s.Stats().Dropped() == 0 {
		t.Fatal("no drops despite 12 > MaxSysQDepth 4")
	}

	tr := col.Assemble(span.TracerConfig{Seed: 1, TailThreshold: time.Microsecond})
	gaps := 0
	for _, trace := range tr.TailExemplars() {
		for _, sp := range trace.Spans() {
			if sp.Kind != span.KindRetransmit {
				continue
			}
			gaps++
			if sp.Tier != "web" {
				t.Errorf("retransmit span blames %q, want web", sp.Tier)
			}
			if sp.Duration() < fastRTO {
				t.Errorf("retransmit gap %v shorter than the RTO %v", sp.Duration(), fastRTO)
			}
			if !strings.Contains(sp.Detail, "dropped by web") {
				t.Errorf("retransmit detail = %q, want the dropping server named", sp.Detail)
			}
		}
	}
	if gaps == 0 {
		t.Fatal("drops occurred but no retransmission-gap spans were recorded")
	}
}
