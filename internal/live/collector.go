package live

import (
	"sort"
	"sync"
	"time"

	"ctqosim/internal/span"
)

// Collector gathers span intervals from live tiers and load clients. The
// tiers run in separate goroutines (in a real deployment they would be
// separate processes), so unlike the simulation they cannot thread a
// *span.Trace through the call chain: instead every participant records
// flat (request, kind, tier, start, end) intervals against the collector's
// shared wall-clock origin, and Assemble reconstructs each request's span
// tree afterwards by interval containment.
//
// All methods are safe on a nil receiver and for concurrent use, so
// instrumented code calls them unconditionally; a nil collector disables
// recording.
type Collector struct {
	origin time.Time

	mu     sync.Mutex
	events map[uint64][]liveEvent
}

type liveEvent struct {
	kind       span.Kind
	tier       string
	detail     string
	start, end time.Duration
}

// NewCollector creates a collector whose clock starts now.
func NewCollector() *Collector {
	return &Collector{origin: time.Now(), events: make(map[uint64][]liveEvent)}
}

// Clock returns the time since the collector's origin (zero on nil): the
// common timeline all recorded intervals share.
func (c *Collector) Clock() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.origin)
}

// Record stores one completed interval of a request's life.
func (c *Collector) Record(reqID uint64, kind span.Kind, tier string, start, end time.Duration, detail string) {
	if c == nil || end < start {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events[reqID] = append(c.events[reqID], liveEvent{
		kind: kind, tier: tier, detail: detail, start: start, end: end,
	})
}

// Assemble folds everything recorded so far into a span.Tracer — one trace
// per request — so live runs get the same breakdown, tail-exemplar and
// Perfetto machinery as the simulation. Parenting is by interval
// containment: an event becomes a child of the innermost earlier event
// that encloses it, which reproduces the request → downstream → queue-wait
// / service → retransmit nesting without any cross-tier ID passing. The
// root is the client's KindRequest interval when present, else the hull of
// the request's events.
func (c *Collector) Assemble(cfg span.TracerConfig) *span.Tracer {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	byReq := make(map[uint64][]liveEvent, len(c.events))
	ids := make([]uint64, 0, len(c.events))
	for id, evs := range c.events {
		byReq[id] = append([]liveEvent(nil), evs...)
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// The tracer reads time through a cursor we move to each interval's
	// bounds while replaying it.
	var cursor time.Duration
	tr := span.NewTracer(func() time.Duration { return cursor }, cfg)
	for _, id := range ids {
		evs := byReq[id]
		root, children := splitRoot(evs)

		cursor = root.start
		t := tr.StartRequest(id, "live")

		// Wider-first within equal starts, so an enclosing interval is on
		// the stack before anything it contains.
		sort.Slice(children, func(i, j int) bool {
			if children[i].start != children[j].start {
				return children[i].start < children[j].start
			}
			return children[i].end > children[j].end
		})
		type frame struct {
			id  span.ID
			end time.Duration
		}
		stack := []frame{{span.RootID, root.end}}
		for _, ev := range children {
			for len(stack) > 1 && stack[len(stack)-1].end < ev.end {
				stack = stack[:len(stack)-1]
			}
			cursor = ev.start
			sid := t.Start(ev.kind, ev.tier, stack[len(stack)-1].id)
			if ev.detail != "" {
				t.Annotate(sid, ev.detail)
			}
			cursor = ev.end
			t.End(sid)
			stack = append(stack, frame{sid, ev.end})
		}
		cursor = root.end
		tr.Finish(t)
	}
	return tr
}

// splitRoot picks the request's root bounds and returns the rest.
func splitRoot(evs []liveEvent) (liveEvent, []liveEvent) {
	rootAt := -1
	for i, ev := range evs {
		if ev.kind == span.KindRequest {
			rootAt = i
			break
		}
	}
	if rootAt >= 0 {
		children := make([]liveEvent, 0, len(evs)-1)
		children = append(children, evs[:rootAt]...)
		children = append(children, evs[rootAt+1:]...)
		return evs[rootAt], children
	}
	// No client-side root (e.g. a bare Client.Do): synthesize one spanning
	// the recorded events.
	hull := liveEvent{kind: span.KindRequest, tier: "client", start: evs[0].start, end: evs[0].end}
	for _, ev := range evs[1:] {
		if ev.start < hull.start {
			hull.start = ev.start
		}
		if ev.end > hull.end {
			hull.end = ev.end
		}
	}
	return hull, evs
}
