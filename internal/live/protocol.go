// Package live runs the paper's server architectures over real TCP
// sockets on localhost — the runnable counterpart of the simulation.
//
// The simulation (internal/core) reproduces the paper's figures
// deterministically; this package demonstrates the same mechanisms on a
// real network stack: a synchronous tier holds a worker for the entire
// downstream round trip and refuses connections beyond
// threads+backlog, while an asynchronous tier parks requests in a large
// lightweight queue and never holds a worker across a downstream call.
//
// One deliberate substitution: the kernel's SYN-retransmission behaviour
// cannot be controlled from user space, so admission control and the
// retransmission timer are enacted at application level — an over-limit
// server closes the connection immediately (the "drop") and the client
// retries after a configurable RTO, defaulting to the paper's 3 seconds.
// Service times are slept, not computed, so the demo is light enough for
// CI.
package live

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Request is the wire message: an ID and a service-time specification for
// each tier hop, so a single generic server binary serves any tier.
type Request struct {
	// ID identifies the request end to end.
	ID uint64
	// Attempt counts delivery attempts on this hop (for diagnostics).
	Attempt int
	// Service is the local service time at the receiving tier.
	Service time.Duration
	// Downstream is the remaining service chain ("2ms,1ms" means: the
	// next tier sleeps 2ms, the one after 1ms).
	Downstream []time.Duration
}

// encode renders the request as a single line:
// "id attempt serviceNs down1Ns,down2Ns".
func (r Request) encode() string {
	downs := make([]string, 0, len(r.Downstream))
	for _, d := range r.Downstream {
		downs = append(downs, strconv.FormatInt(int64(d), 10))
	}
	chain := strings.Join(downs, ",")
	if chain == "" {
		chain = "-"
	}
	return fmt.Sprintf("%d %d %d %s\n", r.ID, r.Attempt, int64(r.Service), chain)
}

// parseRequest parses one encoded line.
func parseRequest(line string) (Request, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 4 {
		return Request{}, fmt.Errorf("live: malformed request %q", line)
	}
	id, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("live: bad id: %w", err)
	}
	attempt, err := strconv.Atoi(fields[1])
	if err != nil {
		return Request{}, fmt.Errorf("live: bad attempt: %w", err)
	}
	serviceNs, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("live: bad service: %w", err)
	}
	req := Request{ID: id, Attempt: attempt, Service: time.Duration(serviceNs)}
	if fields[3] != "-" {
		for _, part := range strings.Split(fields[3], ",") {
			ns, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				return Request{}, fmt.Errorf("live: bad downstream: %w", err)
			}
			req.Downstream = append(req.Downstream, time.Duration(ns))
		}
	}
	return req, nil
}

// okReply is the single-line success response.
const okReply = "ok\n"

// exchange performs one request/response over an established connection.
func exchange(conn net.Conn, req Request, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("live: set deadline: %w", err)
		}
	}
	if _, err := conn.Write([]byte(req.encode())); err != nil {
		return fmt.Errorf("live: write: %w", err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("live: read reply: %w", err)
	}
	if reply != okReply {
		return fmt.Errorf("live: unexpected reply %q", reply)
	}
	return nil
}
