package live

import (
	"testing"
	"time"
)

// fastRTO keeps the tests quick while preserving the retry mechanism.
const fastRTO = 100 * time.Millisecond

func serveTier(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := Serve(cfg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func TestProtocolRoundTrip(t *testing.T) {
	req := Request{
		ID:         42,
		Attempt:    2,
		Service:    3 * time.Millisecond,
		Downstream: []time.Duration{time.Millisecond, 2 * time.Millisecond},
	}
	got, err := parseRequest(req.encode())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.ID != 42 || got.Attempt != 2 || got.Service != 3*time.Millisecond {
		t.Fatalf("round trip = %+v", got)
	}
	if len(got.Downstream) != 2 || got.Downstream[1] != 2*time.Millisecond {
		t.Fatalf("downstream = %v", got.Downstream)
	}
}

func TestProtocolNoDownstream(t *testing.T) {
	got, err := parseRequest(Request{ID: 1}.encode())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got.Downstream) != 0 {
		t.Fatalf("downstream = %v, want empty", got.Downstream)
	}
}

func TestProtocolRejectsGarbage(t *testing.T) {
	for _, line := range []string{"", "1 2", "x 1 0 -", "1 x 0 -", "1 1 x -", "1 1 0 q"} {
		if _, err := parseRequest(line); err == nil {
			t.Errorf("parseRequest(%q) accepted", line)
		}
	}
}

func TestSingleTierServesRequests(t *testing.T) {
	s := serveTier(t, Config{Sync: true, Workers: 4, Queue: 8})
	client := Client{Target: s.Addr(), RTO: fastRTO, IOTimeout: 5 * time.Second}

	outcomes := RunLoad(client, 20, []time.Duration{time.Millisecond})
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("request %d failed: %v", o.ID, o.Err)
		}
	}
	if got := s.Stats().Completed(); got != 20 {
		t.Fatalf("completed = %d, want 20", got)
	}
}

func TestThreeTierChain(t *testing.T) {
	db := serveTier(t, Config{Sync: true, Workers: 4, Queue: 8})
	app := serveTier(t, Config{Sync: true, Workers: 4, Queue: 8,
		Downstream: db.Addr(), RTO: fastRTO})
	web := serveTier(t, Config{Sync: true, Workers: 4, Queue: 8,
		Downstream: app.Addr(), RTO: fastRTO})

	client := Client{Target: web.Addr(), RTO: fastRTO, IOTimeout: 5 * time.Second}
	outcomes := RunLoad(client, 10, []time.Duration{
		time.Millisecond, 2 * time.Millisecond, time.Millisecond,
	})
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("request %d failed: %v", o.ID, o.Err)
		}
		if o.Latency < 4*time.Millisecond {
			t.Fatalf("request %d latency %v below the 4ms service chain", o.ID, o.Latency)
		}
	}
	if db.Stats().Completed() != 10 || app.Stats().Completed() != 10 {
		t.Fatalf("chain completions: db=%d app=%d",
			db.Stats().Completed(), app.Stats().Completed())
	}
}

func TestSyncTierDropsBeyondMaxSysQDepth(t *testing.T) {
	// MaxSysQDepth = 2+2 = 4; a burst of 12 slow requests must see drops,
	// and the dropped ones recover via the application-level RTO.
	s := serveTier(t, Config{Sync: true, Workers: 2, Queue: 2})
	client := Client{Target: s.Addr(), RTO: fastRTO, MaxAttempts: 20, IOTimeout: 5 * time.Second}

	outcomes := RunLoad(client, 12, []time.Duration{50 * time.Millisecond})
	retried := 0
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("request %d failed permanently: %v", o.ID, o.Err)
		}
		if o.Attempts > 1 {
			retried++
		}
	}
	if s.Stats().Dropped() == 0 {
		t.Fatal("no drops despite 12 > MaxSysQDepth 4")
	}
	if retried == 0 {
		t.Fatal("no request needed a retransmission")
	}
	// The retried requests show the RTO in their latency — the VLRT
	// mechanism on real sockets.
	var worst time.Duration
	for _, o := range outcomes {
		if o.Latency > worst {
			worst = o.Latency
		}
	}
	if worst < fastRTO {
		t.Fatalf("worst latency %v below one RTO %v", worst, fastRTO)
	}
}

func TestAsyncTierAbsorbsSameBurst(t *testing.T) {
	// Same worker count, but a lightweight queue: the burst that made the
	// sync tier drop is absorbed without a single drop.
	s := serveTier(t, Config{Sync: false, Workers: 2, Queue: 1000})
	client := Client{Target: s.Addr(), RTO: fastRTO, IOTimeout: 10 * time.Second}

	outcomes := RunLoad(client, 12, []time.Duration{50 * time.Millisecond})
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("request %d failed: %v", o.ID, o.Err)
		}
		if o.Attempts != 1 {
			t.Fatalf("request %d needed %d attempts, want 1", o.ID, o.Attempts)
		}
	}
	if got := s.Stats().Dropped(); got != 0 {
		t.Fatalf("async tier dropped %d, want 0", got)
	}
}

func TestAsyncWorkerNotHeldAcrossDownstreamCall(t *testing.T) {
	// One async worker upstream of a slow-but-wide db tier: if the worker
	// were held across the downstream call, the 8 requests would take
	// 8×80ms serialized; released workers let the db serve them in
	// parallel.
	db := serveTier(t, Config{Sync: true, Workers: 16, Queue: 16})
	app := serveTier(t, Config{Sync: false, Workers: 1, Queue: 100,
		Downstream: db.Addr(), RTO: fastRTO})

	client := Client{Target: app.Addr(), RTO: fastRTO, IOTimeout: 10 * time.Second}
	start := time.Now()
	outcomes := RunLoad(client, 8, []time.Duration{0, 80 * time.Millisecond})
	elapsed := time.Since(start)
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("request %d failed: %v", o.ID, o.Err)
		}
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("8 requests took %v; a held worker would serialize to ~640ms", elapsed)
	}
}

func TestSyncWorkerHeldAcrossDownstreamCall(t *testing.T) {
	// The contrast case: one sync worker serializes the same load.
	db := serveTier(t, Config{Sync: true, Workers: 16, Queue: 16})
	app := serveTier(t, Config{Sync: true, Workers: 1, Queue: 100,
		Downstream: db.Addr(), RTO: fastRTO})

	client := Client{Target: app.Addr(), RTO: fastRTO, IOTimeout: 15 * time.Second}
	start := time.Now()
	outcomes := RunLoad(client, 6, []time.Duration{0, 80 * time.Millisecond})
	elapsed := time.Since(start)
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("request %d failed: %v", o.ID, o.Err)
		}
	}
	if elapsed < 6*80*time.Millisecond {
		t.Fatalf("6 requests took %v; the held worker must serialize to >=480ms", elapsed)
	}
}

func TestClientGivesUp(t *testing.T) {
	// A tier with zero capacity beyond its workers, all of them stuck.
	s := serveTier(t, Config{Sync: true, Workers: 1, Queue: 0})
	client := Client{Target: s.Addr(), RTO: 20 * time.Millisecond, MaxAttempts: 3, IOTimeout: 5 * time.Second}

	// Occupy the single worker.
	blocker := make(chan Outcome, 1)
	go func() {
		c := Client{Target: s.Addr(), RTO: fastRTO, IOTimeout: 10 * time.Second}
		_, err := c.Do(Request{ID: 99, Service: 2 * time.Second})
		blocker <- Outcome{Err: err}
	}()
	time.Sleep(100 * time.Millisecond) // let the blocker get the worker

	_, err := client.Do(Request{ID: 1})
	if err == nil {
		t.Fatal("expected give-up against a fully occupied zero-queue tier")
	}
	if got := <-blocker; got.Err != nil {
		t.Fatalf("blocker failed: %v", got.Err)
	}
}

func TestServerCloseIsClean(t *testing.T) {
	s, err := Serve(Config{Addr: "127.0.0.1:0", Sync: true, Workers: 2, Queue: 2})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	client := Client{Target: s.Addr(), RTO: fastRTO, MaxAttempts: 1, IOTimeout: 2 * time.Second}
	if _, err := client.Do(Request{ID: 1}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After close, requests are refused outright.
	if _, err := client.Do(Request{ID: 2}); err == nil {
		t.Fatal("request succeeded against a closed server")
	}
}

func TestDeployTopology(t *testing.T) {
	topo, err := Deploy(TopologySpec{Sync: true, Workers: 4, Queue: 8, RTO: fastRTO, IOTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer func() {
		if err := topo.Shutdown(); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	client := topo.Client(fastRTO, 10)
	client.IOTimeout = 5 * time.Second
	outcomes := RunLoad(client, 8, []time.Duration{time.Millisecond, time.Millisecond, time.Millisecond})
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("request %d: %v", o.ID, o.Err)
		}
	}
	if topo.DB.Stats().Completed() != 8 {
		t.Fatalf("db completed = %d", topo.DB.Stats().Completed())
	}
	if topo.TotalDrops() != 0 {
		t.Fatalf("drops = %d under light load", topo.TotalDrops())
	}
}

func TestDeploySyncVsAsyncContrast(t *testing.T) {
	// The paper's headline on real sockets via the topology helper: the
	// same burst drops on sync, sails through async.
	burstLoad := func(sync bool) (int64, int) {
		topo, err := Deploy(TopologySpec{Sync: sync, Workers: 2, RTO: fastRTO, IOTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("Deploy: %v", err)
		}
		defer topo.Shutdown()
		client := topo.Client(fastRTO, 20)
		client.IOTimeout = 10 * time.Second
		outcomes := RunLoad(client, 16, []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond})
		failed := 0
		for _, o := range outcomes {
			if o.Err != nil {
				failed++
			}
		}
		return topo.TotalDrops(), failed
	}
	syncDrops, syncFailed := burstLoad(true)
	asyncDrops, asyncFailed := burstLoad(false)
	if syncFailed != 0 || asyncFailed != 0 {
		t.Fatalf("permanent failures: sync=%d async=%d", syncFailed, asyncFailed)
	}
	if syncDrops == 0 {
		t.Fatal("sync topology dropped nothing under the burst")
	}
	if asyncDrops != 0 {
		t.Fatalf("async topology dropped %d", asyncDrops)
	}
}

func TestDeployNXLevelsOnSockets(t *testing.T) {
	// The paper's NX sweep on real sockets: under the same burst the drop
	// site follows the last synchronous tier until NX=3 removes it.
	runLevel := func(nx int) *Topology {
		topo, err := Deploy(TopologySpec{NX: nx, Sync: true, Workers: 2,
			RTO: fastRTO, IOTimeout: 15 * time.Second})
		if err != nil {
			t.Fatalf("Deploy NX=%d: %v", nx, err)
		}
		t.Cleanup(func() { _ = topo.Shutdown() })
		client := topo.Client(fastRTO, 30)
		client.IOTimeout = 15 * time.Second
		outcomes := RunLoad(client, 16,
			[]time.Duration{20 * time.Millisecond, 30 * time.Millisecond, 10 * time.Millisecond})
		for _, o := range outcomes {
			if o.Err != nil {
				t.Fatalf("NX=%d request %d: %v", nx, o.ID, o.Err)
			}
		}
		return topo
	}

	// NX=1: the web tier is async (no drops); drops move inward.
	nx1 := runLevel(1)
	if nx1.Web.Stats().Dropped() != 0 {
		t.Fatalf("NX=1: async web tier dropped %d", nx1.Web.Stats().Dropped())
	}
	if nx1.App.Stats().Dropped()+nx1.DB.Stats().Dropped() == 0 {
		t.Fatal("NX=1: no drops at the remaining synchronous tiers")
	}

	// NX=3: nothing drops anywhere.
	nx3 := runLevel(3)
	if nx3.TotalDrops() != 0 {
		t.Fatalf("NX=3 dropped %d on real sockets", nx3.TotalDrops())
	}
}
