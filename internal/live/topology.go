package live

import (
	"fmt"
	"time"
)

// TierRole names a position in the 3-tier chain.
type TierRole int

// Roles, client side first.
const (
	// RoleWeb is the client-facing tier.
	RoleWeb TierRole = iota + 1
	// RoleApp is the middle tier.
	RoleApp
	// RoleDB is the last tier.
	RoleDB
)

// TopologySpec describes a full live 3-tier deployment.
type TopologySpec struct {
	// Sync selects the architecture for all three tiers.
	Sync bool
	// NX, when 1–3, overrides Sync with the paper's mixed configurations:
	// that many tiers, starting from the web tier, run asynchronously
	// while the rest stay synchronous. Zero leaves Sync in charge.
	NX int
	// Workers per tier; zero means 2.
	Workers int
	// Queue per tier: the bounded backlog for sync (MaxSysQDepth =
	// Workers+Queue), the LiteQDepth for async. Zero defaults to Workers
	// (sync) or 10000 (async).
	Queue int
	// RTO is the application-level retransmission timeout between tiers;
	// zero means 3s.
	RTO time.Duration
	// IOTimeout caps socket operations; zero means 10s.
	IOTimeout time.Duration
	// Collector, when non-nil, records span intervals across all three
	// tiers (they share one process, hence one clock origin).
	Collector *Collector
}

// Topology is a running live 3-tier system on localhost.
type Topology struct {
	// Web, App, DB are the tiers, client side first.
	Web, App, DB *Server
}

// Deploy starts the three tiers wired web→app→db on loopback addresses.
// Close them with Shutdown.
func Deploy(spec TopologySpec) (*Topology, error) {
	workers := spec.Workers
	if workers < 1 {
		workers = 2
	}
	// tierConfig derives a tier's config: position 0 is the web tier.
	names := []string{"web", "app", "db", ""}
	tierConfig := func(position int, downstream string) Config {
		sync := spec.Sync
		if spec.NX > 0 {
			sync = position >= spec.NX
		}
		queue := spec.Queue
		if queue <= 0 {
			queue = workers // the bounded TCP-backlog analogue
			if !sync {
				queue = 10000 // LiteQDepth
			}
		}
		return Config{
			Addr:           "127.0.0.1:0",
			Sync:           sync,
			Workers:        workers,
			Queue:          queue,
			Downstream:     downstream,
			RTO:            spec.RTO,
			IOTimeout:      spec.IOTimeout,
			Name:           names[position],
			DownstreamName: names[position+1],
			Collector:      spec.Collector,
		}
	}

	db, err := Serve(tierConfig(2, ""))
	if err != nil {
		return nil, fmt.Errorf("live: db tier: %w", err)
	}
	app, err := Serve(tierConfig(1, db.Addr()))
	if err != nil {
		_ = db.Close()
		return nil, fmt.Errorf("live: app tier: %w", err)
	}
	web, err := Serve(tierConfig(0, app.Addr()))
	if err != nil {
		_ = app.Close()
		_ = db.Close()
		return nil, fmt.Errorf("live: web tier: %w", err)
	}
	return &Topology{Web: web, App: app, DB: db}, nil
}

// Client returns a load client aimed at the web tier, inheriting the
// topology's RTO and collector.
func (t *Topology) Client(rto time.Duration, maxAttempts int) Client {
	return Client{
		Target:      t.Web.Addr(),
		RTO:         rto,
		MaxAttempts: maxAttempts,
		Name:        "web",
		Collector:   t.Web.cfg.Collector,
	}
}

// TotalDrops sums refused connections across the three tiers.
func (t *Topology) TotalDrops() int64 {
	return t.Web.Stats().Dropped() + t.App.Stats().Dropped() + t.DB.Stats().Dropped()
}

// Shutdown closes all tiers, returning the first error.
func (t *Topology) Shutdown() error {
	var first error
	for _, s := range []*Server{t.Web, t.App, t.DB} {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
