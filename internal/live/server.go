package live

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ctqosim/internal/span"
)

// Stats counts a live server's outcomes. All fields are atomic.
type Stats struct {
	accepted  atomic.Int64
	completed atomic.Int64
	dropped   atomic.Int64
	failed    atomic.Int64
}

// Accepted returns admitted requests.
func (s *Stats) Accepted() int64 { return s.accepted.Load() }

// Completed returns successfully answered requests.
func (s *Stats) Completed() int64 { return s.completed.Load() }

// Dropped returns refused (over-limit) connections.
func (s *Stats) Dropped() int64 { return s.dropped.Load() }

// Failed returns requests whose downstream call failed permanently.
func (s *Stats) Failed() int64 { return s.failed.Load() }

// Config parameterizes a live server tier.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// Sync selects the architecture: true for thread-per-request with a
	// bounded queue, false for event-driven with a lightweight queue.
	Sync bool
	// Workers is the thread pool (sync) or event-loop worker count
	// (async).
	Workers int
	// Queue bounds the waiting requests: the TCP-backlog analogue for a
	// sync tier (MaxSysQDepth = Workers+Queue), LiteQDepth for an async
	// tier.
	Queue int
	// Downstream, if non-empty, is the next tier's address.
	Downstream string
	// RTO is the application-level retransmission timeout toward the
	// downstream tier; zero means 3s (the paper's kernel).
	RTO time.Duration
	// MaxAttempts bounds downstream attempts; zero means 5.
	MaxAttempts int
	// IOTimeout caps each read/write; zero means 10s.
	IOTimeout time.Duration
	// Name labels this tier in recorded spans; empty means the listen
	// address.
	Name string
	// DownstreamName labels the next tier in recorded spans; empty means
	// the Downstream address.
	DownstreamName string
	// Collector, when non-nil, receives span intervals (accept-queue wait,
	// service, and — via the downstream client — retransmission gaps) for
	// every handled request. Tiers sharing a process share one collector.
	Collector *Collector
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.RTO <= 0 {
		c.RTO = 3 * time.Second
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 5
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	return c
}

// Server is one live tier. Create with Serve, stop with Close.
type Server struct {
	cfg      Config
	listener net.Listener
	stats    Stats

	// admission: held (in service + queued) for sync; in-flight for async.
	held    atomic.Int64
	work    chan workItem
	closing atomic.Bool
	wg      sync.WaitGroup
}

// workItem carries an admitted connection plus its accept timestamp, so
// the worker that picks it up can record the queue-wait interval.
type workItem struct {
	conn     net.Conn
	accepted time.Duration
}

// Serve starts a tier listening on cfg.Addr and returns once the listener
// is ready. Close releases it.
func Serve(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		listener: ln,
		work:     make(chan workItem, cfg.Workers+cfg.Queue),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Stats exposes the server's counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Depth returns the number of requests currently held by the tier.
func (s *Server) Depth() int { return int(s.held.Load()) }

// MaxSysQDepth returns the admission bound.
func (s *Server) MaxSysQDepth() int { return s.cfg.Workers + s.cfg.Queue }

// name returns the span label for this tier.
func (s *Server) name() string {
	if s.cfg.Name != "" {
		return s.cfg.Name
	}
	return s.listener.Addr().String()
}

// Close stops accepting, waits for in-flight work to finish, and releases
// the listener.
func (s *Server) Close() error {
	s.closing.Store(true)
	err := s.listener.Close()
	close(s.work)
	s.wg.Wait()
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// acceptLoop admits connections up to the admission bound and drops the
// rest by closing them immediately — the application-level enactment of a
// TCP-backlog overflow.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if s.closing.Load() {
			_ = conn.Close()
			return
		}
		if int(s.held.Load()) >= s.MaxSysQDepth() {
			s.stats.dropped.Add(1)
			_ = conn.Close()
			continue
		}
		s.held.Add(1)
		s.stats.accepted.Add(1)
		select {
		case s.work <- workItem{conn: conn, accepted: s.cfg.Collector.Clock()}:
		default:
			// The channel mirrors the admission bound; reaching here means
			// a race lost against another accept — treat as a drop.
			s.held.Add(-1)
			s.stats.accepted.Add(-1)
			s.stats.dropped.Add(1)
			_ = conn.Close()
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for item := range s.work {
		s.handle(item)
	}
}

// handle serves one connection: read, sleep the service time, call the
// next tier, reply.
//
// The architectural difference lives here. A synchronous tier performs the
// downstream call on the worker itself, holding it for the full round trip
// (including retransmission waits) — the RPC coupling. An asynchronous
// tier hands the downstream call and the reply to a continuation goroutine
// and returns the worker to the pool immediately — the Fig. 14
// doGet/eventHandler split; the request stays admitted (held) until the
// continuation replies.
func (s *Server) handle(item workItem) {
	conn, col := item.conn, s.cfg.Collector
	picked := col.Clock()
	release := func() { s.held.Add(-1) }

	fail := func() {
		s.stats.failed.Add(1)
		_ = conn.Close()
		release()
	}
	if err := conn.SetDeadline(time.Now().Add(s.cfg.IOTimeout)); err != nil {
		fail()
		return
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		fail()
		return
	}
	req, err := parseRequest(line)
	if err != nil {
		fail()
		return
	}
	col.Record(req.ID, span.KindQueueWait, s.name(), item.accepted, picked, "")

	svcStart := col.Clock()
	time.Sleep(req.Service)

	// recordService closes this tier's service interval. For sync it runs
	// just before the reply (the span covers the whole thread-held visit,
	// so the downstream call nests inside it); for async it runs at the
	// worker hand-off (the span covers one worker-held burst only).
	recordService := func() {
		col.Record(req.ID, span.KindService, s.name(), svcStart, col.Clock(), "")
	}

	finish := func() {
		if s.cfg.Downstream != "" && len(req.Downstream) > 0 {
			next := Request{
				ID:         req.ID,
				Service:    req.Downstream[0],
				Downstream: req.Downstream[1:],
			}
			client := &Client{
				Target:      s.cfg.Downstream,
				RTO:         s.cfg.RTO,
				MaxAttempts: s.cfg.MaxAttempts,
				IOTimeout:   s.cfg.IOTimeout,
				Name:        s.cfg.DownstreamName,
				Collector:   col,
			}
			if _, err := client.Do(next); err != nil {
				// No reply: the upstream caller times out or retries.
				if s.cfg.Sync {
					recordService()
				}
				s.stats.failed.Add(1)
				_ = conn.Close()
				release()
				return
			}
		}
		if s.cfg.Sync {
			recordService()
		}
		if _, err := conn.Write([]byte(okReply)); err != nil {
			s.stats.failed.Add(1)
		} else {
			s.stats.completed.Add(1)
		}
		_ = conn.Close()
		release()
	}

	if s.cfg.Sync {
		finish()
		return
	}
	// Async: free the worker; the continuation carries the request.
	recordService()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		finish()
	}()
}
