package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"ctqosim/internal/des"
)

// fakeServer admits up to capacity concurrent calls and replies after a
// fixed service delay.
type fakeServer struct {
	sim      *des.Simulator
	name     string
	capacity int
	busy     int
	service  time.Duration
	accepted int
	refuse   bool // force-refuse all calls
}

func (f *fakeServer) Name() string { return f.name }

func (f *fakeServer) TryAccept(call *Call) bool {
	if f.refuse || f.busy >= f.capacity {
		return false
	}
	f.busy++
	f.accepted++
	f.sim.Schedule(f.service, func() {
		f.busy--
		if call.OnReply != nil {
			call.OnReply("ok")
		}
	})
	return true
}

type recordingListener struct {
	drops, retx, delivered, gaveUp int
}

func (l *recordingListener) Dropped(string, *Call)       { l.drops++ }
func (l *recordingListener) Retransmitted(string, *Call) { l.retx++ }
func (l *recordingListener) Delivered(string, *Call)     { l.delivered++ }
func (l *recordingListener) GaveUp(string, *Call)        { l.gaveUp++ }

func TestSendDeliversAndReplies(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	srv := &fakeServer{sim: sim, name: "s", capacity: 1, service: 10 * time.Millisecond}

	var reply any
	var repliedAt time.Duration
	tr.Send(srv, &Call{OnReply: func(r any) {
		reply = r
		repliedAt = sim.Now()
	}})
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reply != "ok" {
		t.Fatalf("reply = %v, want ok", reply)
	}
	if repliedAt != 10*time.Millisecond {
		t.Fatalf("replied at %v, want 10ms", repliedAt)
	}
	if got := tr.Stats("s"); got.Delivered != 1 || got.Dropped != 0 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestDropRetransmitsAfterRTO(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	srv := &fakeServer{sim: sim, name: "s", capacity: 1, service: 10 * time.Millisecond}

	// Occupy the only slot for 4s so the second call's first attempt drops
	// and its 3s retransmission succeeds.
	srv.busy = 1
	sim.Schedule(4*time.Second, func() { srv.busy = 0 })

	var repliedAt time.Duration
	call := &Call{OnReply: func(any) { repliedAt = sim.Now() }}
	tr.Send(srv, call)
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Dropped at t=0, retransmitted at 3s (still busy → dropped), again at
	// 6s (free) → service 10ms → reply at 6.01s.
	want := 6*time.Second + 10*time.Millisecond
	if repliedAt != want {
		t.Fatalf("replied at %v, want %v", repliedAt, want)
	}
	if call.Retransmits() != 2 {
		t.Fatalf("retransmits = %d, want 2", call.Retransmits())
	}
	if len(call.DroppedBy) != 2 || call.DroppedBy[0] != "s" {
		t.Fatalf("DroppedBy = %v", call.DroppedBy)
	}
}

func TestGiveUpAfterMaxAttempts(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	tr.MaxAttempts = 3
	srv := &fakeServer{sim: sim, name: "s", refuse: true}

	gaveUp := false
	var gaveUpAt time.Duration
	tr.Send(srv, &Call{OnGiveUp: func() {
		gaveUp = true
		gaveUpAt = sim.Now()
	}})
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !gaveUp {
		t.Fatal("OnGiveUp not invoked")
	}
	// Attempts at 0, 3, 6s: gave up at the third drop.
	if gaveUpAt != 6*time.Second {
		t.Fatalf("gave up at %v, want 6s", gaveUpAt)
	}
	s := tr.Stats("s")
	if s.Dropped != 3 || s.Retransmits != 2 || s.GaveUp != 1 || s.Delivered != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCustomRTO(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	tr.RTO = time.Second
	srv := &fakeServer{sim: sim, name: "s", capacity: 1, service: time.Millisecond}
	srv.busy = 1
	sim.Schedule(500*time.Millisecond, func() { srv.busy = 0 })

	var repliedAt time.Duration
	tr.Send(srv, &Call{OnReply: func(any) { repliedAt = sim.Now() }})
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if repliedAt != time.Second+time.Millisecond {
		t.Fatalf("replied at %v, want 1.001s", repliedAt)
	}
}

func TestExponentialBackoff(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	tr.Backoff = true
	tr.MaxAttempts = 4
	srv := &fakeServer{sim: sim, name: "s", refuse: true}

	var gaveUpAt time.Duration
	tr.Send(srv, &Call{OnGiveUp: func() { gaveUpAt = sim.Now() }})
	if err := sim.Run(time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Attempts at 0, 3, 3+6=9, 9+12=21s.
	if gaveUpAt != 21*time.Second {
		t.Fatalf("gave up at %v, want 21s", gaveUpAt)
	}
}

func TestListenerEvents(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	tr.MaxAttempts = 2
	l := &recordingListener{}
	tr.Listener = l
	srv := &fakeServer{sim: sim, name: "s", refuse: true}

	tr.Send(srv, &Call{})
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if l.drops != 2 || l.retx != 1 || l.gaveUp != 1 || l.delivered != 0 {
		t.Fatalf("listener = %+v", l)
	}
}

func TestFirstSentStampedOnce(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	srv := &fakeServer{sim: sim, name: "s", capacity: 1, service: time.Millisecond}
	srv.busy = 1
	sim.Schedule(time.Second, func() { srv.busy = 0 })

	call := &Call{OnReply: func(any) {}}
	sim.Schedule(100*time.Millisecond, func() { tr.Send(srv, call) })
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if call.FirstSent != 100*time.Millisecond {
		t.Fatalf("FirstSent = %v, want 100ms", call.FirstSent)
	}
}

func TestTotalDropsAcrossDestinations(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	tr.MaxAttempts = 1
	a := &fakeServer{sim: sim, name: "a", refuse: true}
	b := &fakeServer{sim: sim, name: "b", refuse: true}
	tr.Send(a, &Call{})
	tr.Send(b, &Call{})
	tr.Send(b, &Call{})
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.TotalDrops() != 3 {
		t.Fatalf("TotalDrops = %d, want 3", tr.TotalDrops())
	}
	if len(tr.Destinations()) != 2 {
		t.Fatalf("Destinations = %v", tr.Destinations())
	}
}

func TestResponseTimeClusters(t *testing.T) {
	// The Fig. 1 mechanism in miniature: a server with MaxSysQDepth 2
	// receives a burst of 8 simultaneous calls. The overflow retransmits at
	// 3s and, if dropped again, 6s — producing the multi-modal clusters.
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	srv := &fakeServer{sim: sim, name: "s", capacity: 2, service: 50 * time.Millisecond}

	buckets := make(map[int]int) // response time rounded to seconds
	for i := 0; i < 8; i++ {
		call := &Call{}
		call.OnReply = func(any) {
			rt := sim.Now() - call.FirstSent
			buckets[int(rt/time.Second)]++
		}
		tr.Send(srv, call)
	}
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if buckets[0] == 0 || buckets[3] == 0 || buckets[6] == 0 {
		t.Fatalf("expected clusters at 0s, 3s and 6s, got %v", buckets)
	}
}

func TestConnPoolImmediateAcquire(t *testing.T) {
	p := NewConnPool(2)
	ran := 0
	if !p.Acquire(func() { ran++ }) || !p.Acquire(func() { ran++ }) {
		t.Fatal("Acquire refused with free connections")
	}
	if ran != 2 || p.InUse() != 2 {
		t.Fatalf("ran=%d inUse=%d", ran, p.InUse())
	}
}

func TestConnPoolWaitsFIFO(t *testing.T) {
	p := NewConnPool(1)
	var order []int
	p.Acquire(func() { order = append(order, 0) })
	p.Acquire(func() { order = append(order, 1) })
	p.Acquire(func() { order = append(order, 2) })
	if p.Waiting() != 2 {
		t.Fatalf("Waiting = %d, want 2", p.Waiting())
	}
	p.Release()
	p.Release()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if p.PeakWaiting() != 2 {
		t.Fatalf("PeakWaiting = %d, want 2", p.PeakWaiting())
	}
}

func TestConnPoolReleaseBelowZero(t *testing.T) {
	p := NewConnPool(1)
	p.Release() // must not underflow
	if p.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", p.InUse())
	}
}

func TestConnPoolMaxWaiting(t *testing.T) {
	p := NewConnPool(1)
	p.MaxWaiting = 1
	p.Acquire(func() {})
	if !p.Acquire(func() {}) {
		t.Fatal("first waiter refused")
	}
	if p.Acquire(func() {}) {
		t.Fatal("second waiter admitted past MaxWaiting")
	}
}

// Property: the pool never has more than size connections in use, and every
// accepted acquire eventually runs exactly once after enough releases.
func TestPropertyConnPoolConservation(t *testing.T) {
	f := func(ops []bool, size uint8) bool {
		p := NewConnPool(int(size%8) + 1)
		ran := 0
		accepted := 0
		for _, acquire := range ops {
			if acquire {
				if p.Acquire(func() { ran++ }) {
					accepted++
				}
			} else {
				p.Release()
			}
			if p.InUse() > p.Size() {
				return false
			}
		}
		// Drain all waiters.
		for p.Waiting() > 0 {
			p.Release()
		}
		return ran == accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a cooperative receiver, a call's total drops equal
// attempts-1 when it eventually succeeds, and response time is
// drops × RTO + service.
func TestPropertyRetransmitArithmetic(t *testing.T) {
	f := func(busyFor uint8) bool {
		sim := des.NewSimulator(int64(busyFor))
		tr := NewTransport(sim)
		srv := &fakeServer{sim: sim, name: "s", capacity: 1, service: time.Millisecond}
		srv.busy = 1
		release := time.Duration(busyFor) * 100 * time.Millisecond
		sim.Schedule(release, func() { srv.busy = 0 })

		var rt time.Duration
		ok := false
		call := &Call{}
		call.OnReply = func(any) {
			rt = sim.Now() - call.FirstSent
			ok = true
		}
		tr.Send(srv, call)
		if err := sim.Run(time.Hour); err != nil {
			return false
		}
		if !ok {
			// Gave up: all attempts dropped; that needs >12s of busy.
			return release > 12*time.Second
		}
		want := time.Duration(call.Retransmits())*DefaultRTO + time.Millisecond
		return rt == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelProfileApply(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	ModernLinux.Apply(tr)
	if tr.RTO != time.Second || !tr.Backoff || tr.MaxAttempts != 6 {
		t.Fatalf("modern profile not applied: %+v", tr)
	}

	RHEL6.Apply(tr)
	if tr.RTO != 3*time.Second || tr.Backoff || tr.MaxAttempts != 5 {
		t.Fatalf("rhel6 profile not applied: %+v", tr)
	}
	if RHEL6.Backlog != 128 {
		t.Fatalf("RHEL6 backlog = %d, want the paper's 128", RHEL6.Backlog)
	}
}

func TestKernelProfilesDifferInClusterPlacement(t *testing.T) {
	// The same overload produces different cluster positions per kernel:
	// RHEL6 puts the first retransmission at 3s, modern Linux at 1s.
	place := func(p KernelProfile) time.Duration {
		sim := des.NewSimulator(1)
		tr := NewTransport(sim)
		p.Apply(tr)
		srv := &fakeServer{sim: sim, name: "s", capacity: 1, service: time.Millisecond}
		srv.busy = 1
		sim.Schedule(500*time.Millisecond, func() { srv.busy = 0 })
		var rt time.Duration
		call := &Call{}
		call.OnReply = func(any) { rt = sim.Now() - call.FirstSent }
		tr.Send(srv, call)
		if err := sim.Run(time.Minute); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rt
	}
	if got := place(RHEL6); got < 3*time.Second || got > 3100*time.Millisecond {
		t.Fatalf("RHEL6 first retransmission at %v, want ~3s", got)
	}
	if got := place(ModernLinux); got < time.Second || got > 1100*time.Millisecond {
		t.Fatalf("modern first retransmission at %v, want ~1s", got)
	}
}

func TestNetworkLatency(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	tr.Latency = 200 * time.Microsecond
	srv := &fakeServer{sim: sim, name: "s", capacity: 1, service: time.Millisecond}

	var repliedAt time.Duration
	tr.Send(srv, &Call{OnReply: func(any) { repliedAt = sim.Now() }})
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// One-way latency before delivery + 1ms service. (The reply path in
	// this fake is immediate.)
	want := 200*time.Microsecond + time.Millisecond
	if repliedAt != want {
		t.Fatalf("replied at %v, want %v", repliedAt, want)
	}
}

func TestNetworkLatencyAppliesToRetransmits(t *testing.T) {
	sim := des.NewSimulator(1)
	tr := NewTransport(sim)
	tr.Latency = time.Millisecond
	tr.RTO = time.Second
	srv := &fakeServer{sim: sim, name: "s", capacity: 1, service: time.Millisecond}
	srv.busy = 1
	sim.Schedule(500*time.Millisecond, func() { srv.busy = 0 })

	var repliedAt time.Duration
	tr.Send(srv, &Call{OnReply: func(any) { repliedAt = sim.Now() }})
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// First attempt arrives at 1ms (dropped); retransmit waits 1s + 1ms
	// latency → delivered at 1.002s, replies at 1.003s.
	want := time.Millisecond + time.Second + time.Millisecond + time.Millisecond
	if repliedAt != want {
		t.Fatalf("replied at %v, want %v", repliedAt, want)
	}
}

func TestConnPoolResizeGrowAdmitsWaiters(t *testing.T) {
	p := NewConnPool(1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		p.Acquire(func() { order = append(order, i) })
	}
	if len(order) != 1 || p.Waiting() != 3 {
		t.Fatalf("order = %v, waiting = %d; want 1 admitted, 3 queued", order, p.Waiting())
	}
	p.Resize(3)
	// Growing to 3 admits the two oldest waiters, FIFO.
	if got, want := len(order), 3; got != want {
		t.Fatalf("admitted %d after grow, want %d (order %v)", got, want, order)
	}
	for i, want := range []int{0, 1, 2} {
		if order[i] != want {
			t.Fatalf("order = %v, want FIFO admission", order)
		}
	}
	if p.InUse() != 3 || p.Waiting() != 1 {
		t.Fatalf("inUse = %d, waiting = %d; want 3 and 1", p.InUse(), p.Waiting())
	}
	p.Release() // hands to the last waiter
	if len(order) != 4 || p.InUse() != 3 {
		t.Fatalf("after release: order = %v, inUse = %d", order, p.InUse())
	}
}

func TestConnPoolResizeShrinkRetiresOnRelease(t *testing.T) {
	p := NewConnPool(3)
	for i := 0; i < 3; i++ {
		p.Acquire(func() {})
	}
	waited := false
	p.Acquire(func() { waited = true })
	p.Resize(1)
	if p.InUse() != 3 {
		t.Fatalf("resize revoked a held connection: inUse = %d", p.InUse())
	}
	// Above capacity: releases retire connections instead of serving the
	// waiter.
	p.Release()
	p.Release()
	if waited || p.InUse() != 1 {
		t.Fatalf("waited = %v, inUse = %d; want waiter still queued at capacity", waited, p.InUse())
	}
	// At capacity: the next release hands its connection to the waiter.
	p.Release()
	if !waited || p.InUse() != 1 {
		t.Fatalf("waited = %v, inUse = %d; want waiter served, pool full", waited, p.InUse())
	}
}

func TestConnPoolResizeClampsToOne(t *testing.T) {
	p := NewConnPool(2)
	p.Resize(0)
	if p.Size() != 1 {
		t.Fatalf("size = %d, want 1", p.Size())
	}
	p.Resize(-5)
	if p.Size() != 1 {
		t.Fatalf("size = %d, want 1", p.Size())
	}
}
