// Package simnet models the inter-server transport of the n-tier testbed:
// bounded admission at each receiver, packet drops on overflow, and the
// fixed TCP retransmission timer that turns a dropped packet into a
// multi-second response-time outlier.
//
// The paper (Section III) attributes the 3/6/9-second clusters in the
// response-time distribution to the 3-second TCP retransmission timeout of
// RHEL 6 (kernel 2.6.32). Transport reproduces that mechanism directly: a
// call that is refused by the receiver's admission control is retried after
// RTO, and each retry can itself be dropped, adding another RTO.
package simnet

import (
	"fmt"
	"sort"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/span"
)

// DefaultRTO is the retransmission timeout of the paper's kernel (2.6.32).
const DefaultRTO = 3 * time.Second

// DefaultMaxAttempts bounds delivery attempts (1 original + retries). Five
// attempts put the worst surviving response past the 9-second cluster that
// Fig. 1 shows.
const DefaultMaxAttempts = 5

// Admission is a receiver's ingress policy: a synchronous server admits up
// to threads+backlog requests (its MaxSysQDepth); an asynchronous server
// admits up to LiteQDepth. Implemented by the server package.
type Admission interface {
	// Name identifies the receiver in drop statistics and traces.
	Name() string
	// TryAccept admits the call (queuing or servicing it) and returns true,
	// or refuses it and returns false. A refused call is a dropped packet.
	TryAccept(call *Call) bool
}

// Call is one request/response exchange between a sender and a receiver.
type Call struct {
	// Payload is the message body, opaque to the transport.
	Payload any
	// OnReply is invoked when the receiver replies.
	OnReply func(reply any)
	// OnGiveUp is invoked if every delivery attempt is dropped.
	OnGiveUp func()

	// FirstSent is when the first attempt was made.
	FirstSent time.Duration
	// Attempts counts delivery attempts so far.
	Attempts int
	// DroppedBy lists the receiver name once per dropped attempt. The
	// workload layer uses it to attribute VLRT requests to the server that
	// dropped their packets (Figs. 3c, 7c, 8c, 9c).
	DroppedBy []string

	// Trace, when non-nil, is the end-to-end request's span tree; SpanID is
	// the span on whose behalf this call is in flight (the caller's service
	// span, or the root for the client's top-level call). The transport
	// parents retransmission-gap spans under it, and the receiving server
	// parents its queue-wait and service spans under it.
	Trace  *span.Trace
	SpanID span.ID

	// dst and retransGap carry per-call delivery state through the pooled
	// des.Post callbacks, so the transport schedules retransmissions and
	// latency hops without allocating a capturing closure per event.
	dst        Admission
	retransGap span.ID
}

// Retransmits returns the number of retransmissions (attempts beyond the
// first).
func (c *Call) Retransmits() int {
	if c.Attempts <= 1 {
		return 0
	}
	return c.Attempts - 1
}

// DropRecorder is implemented by payloads that want per-request drop
// attribution. The end-to-end workload request implements it, so drops on
// any hop of its invocation chain — client→web, web→app, app→db — are
// attributed to the server that dropped the packet, as in the paper's
// VLRT-per-server plots.
type DropRecorder interface {
	// DroppedAt records that server dropped a packet of this request.
	DroppedAt(server string)
}

// Listener observes transport events for metrics and tracing. All methods
// may be nil-safe no-ops; Transport checks for a nil listener.
type Listener interface {
	// Dropped fires when dst refuses an attempt of call.
	Dropped(dst string, call *Call)
	// Retransmitted fires when a retry is scheduled RTO in the future.
	Retransmitted(dst string, call *Call)
	// Delivered fires when dst admits the call.
	Delivered(dst string, call *Call)
	// GaveUp fires when the final attempt is dropped.
	GaveUp(dst string, call *Call)
}

// HopStats aggregates per-destination transport counters.
type HopStats struct {
	Attempts    int64
	Delivered   int64
	Dropped     int64
	Retransmits int64
	GaveUp      int64
}

// Transport delivers calls with drop/retransmission semantics.
type Transport struct {
	sim *des.Simulator

	// RTO is the retransmission timeout; zero means DefaultRTO.
	RTO time.Duration
	// MaxAttempts bounds total delivery attempts; zero means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Backoff, when true, doubles the timeout after every drop
	// (3s, 6s, 12s…) instead of the fixed timer. The paper's clusters at
	// exactly 3/6/9s correspond to the fixed timer; the exponential
	// variant exists for the ablation bench.
	Backoff bool
	// Latency is the one-way network delay per attempt, applied before
	// the receiver sees the packet. Zero models the paper's sub-100µs
	// LAN as instantaneous; set it to study WAN-separated tiers.
	Latency time.Duration
	// Listener, if non-nil, observes transport events.
	Listener Listener

	stats map[string]*HopStats
}

// NewTransport creates a transport with the paper's kernel defaults.
func NewTransport(sim *des.Simulator) *Transport {
	return &Transport{
		sim:   sim,
		stats: make(map[string]*HopStats),
	}
}

// Send attempts delivery of call to dst, retransmitting on drops. The call's
// FirstSent is stamped on the first attempt. Delivery and retransmission
// events ride pooled des.Post events with the *Transport and *Call as the
// two arguments, so steady-state sending allocates nothing.
//
//lint:hotpath simnet delivery path
func (t *Transport) Send(dst Admission, call *Call) {
	if call.Attempts == 0 {
		call.FirstSent = t.sim.Now()
	}
	call.dst = dst
	if t.Latency > 0 {
		t.sim.Post(t.Latency, deliverCall, t, call)
		return
	}
	t.attempt(dst, call)
}

// deliverCall is the pooled-event callback for a latency hop.
//
//lint:hotpath simnet delivery path
func deliverCall(a0, a1 any) {
	t, call := a0.(*Transport), a1.(*Call)
	t.attempt(call.dst, call)
}

// retransmitAttempt is the pooled-event callback for an RTO expiry: it
// closes the retransmission-gap span and redelivers.
//
//lint:hotpath simnet delivery path
func retransmitAttempt(a0, a1 any) {
	t, call := a0.(*Transport), a1.(*Call)
	call.Trace.End(call.retransGap)
	call.retransGap = 0
	t.attempt(call.dst, call)
}

// Stats returns the accumulated counters for a destination. The returned
// struct is a copy.
func (t *Transport) Stats(dst string) HopStats {
	if s, ok := t.stats[dst]; ok {
		return *s
	}
	return HopStats{}
}

// Destinations returns the names of all destinations with recorded
// traffic, sorted so downstream reports are deterministic.
func (t *Transport) Destinations() []string {
	names := make([]string, 0, len(t.stats))
	for name := range t.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TotalDrops returns the number of dropped packets across all destinations.
func (t *Transport) TotalDrops() int64 {
	var total int64
	for _, s := range t.stats {
		total += s.Dropped
	}
	return total
}

//lint:hotpath simnet delivery path
func (t *Transport) attempt(dst Admission, call *Call) {
	s := t.hop(dst.Name())
	s.Attempts++
	call.Attempts++

	if dst.TryAccept(call) {
		s.Delivered++
		if t.Listener != nil {
			t.Listener.Delivered(dst.Name(), call)
		}
		return
	}

	s.Dropped++
	call.DroppedBy = append(call.DroppedBy, dst.Name()) //lint:allow allocs drop path: bounded by MaxAttempts, never on clean delivery
	if r, ok := call.Payload.(DropRecorder); ok {
		r.DroppedAt(dst.Name())
	}
	if t.Listener != nil {
		t.Listener.Dropped(dst.Name(), call)
	}

	if call.Attempts >= t.maxAttempts() {
		s.GaveUp++
		if t.Listener != nil {
			t.Listener.GaveUp(dst.Name(), call)
		}
		if call.OnGiveUp != nil {
			call.OnGiveUp()
		}
		return
	}

	s.Retransmits++
	if t.Listener != nil {
		t.Listener.Retransmitted(dst.Name(), call)
	}
	// The RTO wait is the paper's tail mechanism; give it a span of its
	// own, attributed to the dropping server, closed when the retry fires.
	gap := call.Trace.Start(span.KindRetransmit, dst.Name(), call.SpanID)
	if gap != 0 {
		call.Trace.Annotate(gap, fmt.Sprintf( //lint:allow allocs enabled-tracer annotation on the (already rare) drop path
			"attempt %d dropped by %s; waiting RTO", call.Attempts, dst.Name()))
	}
	call.retransGap = gap
	t.sim.Post(t.timeout(call.Attempts)+t.Latency, retransmitAttempt, t, call)
}

//lint:hotpath
func (t *Transport) hop(name string) *HopStats {
	s, ok := t.stats[name]
	if !ok {
		s = &HopStats{} //lint:allow allocs one accumulator per destination, first traffic only
		t.stats[name] = s
	}
	return s
}

//lint:hotpath
func (t *Transport) rto() time.Duration {
	if t.RTO > 0 {
		return t.RTO
	}
	return DefaultRTO
}

//lint:hotpath
func (t *Transport) maxAttempts() int {
	if t.MaxAttempts > 0 {
		return t.MaxAttempts
	}
	return DefaultMaxAttempts
}

// timeout returns the wait before the next attempt, given the number of
// attempts already made.
//
//lint:hotpath
func (t *Transport) timeout(attempts int) time.Duration {
	rto := t.rto()
	if !t.Backoff {
		return rto
	}
	for i := 1; i < attempts; i++ {
		rto *= 2
	}
	return rto
}
