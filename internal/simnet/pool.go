package simnet

// ConnPool models a bounded connection pool such as Tomcat's JDBC pool
// (size 50 in the paper's setup, Appendix A). A synchronous caller that
// cannot get a connection waits in FIFO order — while continuing to occupy
// its server thread, which is how database-side congestion backs up into
// the application tier (Section V-B).
type ConnPool struct {
	size    int
	inUse   int
	waiters []func()

	// MaxWaiting caps the wait queue; 0 means unbounded. The paper's pool
	// waits are unbounded (the thread pool above bounds them in practice).
	MaxWaiting int

	peakWaiting int
}

// NewConnPool creates a pool with the given number of connections.
func NewConnPool(size int) *ConnPool {
	if size < 1 {
		size = 1
	}
	return &ConnPool{size: size}
}

// Acquire runs fn as soon as a connection is available — immediately and
// synchronously if the pool has a free connection, otherwise when one is
// released. It returns false if the wait queue is full (fn will never run).
func (p *ConnPool) Acquire(fn func()) bool {
	if p.inUse < p.size {
		p.inUse++
		fn()
		return true
	}
	if p.MaxWaiting > 0 && len(p.waiters) >= p.MaxWaiting {
		return false
	}
	p.waiters = append(p.waiters, fn)
	if len(p.waiters) > p.peakWaiting {
		p.peakWaiting = len(p.waiters)
	}
	return true
}

// Release returns a connection to the pool, handing it to the oldest waiter
// if any. After a shrinking Resize the freed connection is retired instead
// of handed on, until the pool drains down to its new capacity.
func (p *ConnPool) Release() {
	if len(p.waiters) > 0 && p.inUse <= p.size {
		next := p.waiters[0]
		copy(p.waiters, p.waiters[1:])
		p.waiters[len(p.waiters)-1] = nil
		p.waiters = p.waiters[:len(p.waiters)-1]
		next()
		return
	}
	if p.inUse > 0 {
		p.inUse--
	}
}

// Resize changes the pool capacity mid-run — the scenario engine's
// resize_pool event. Growing admits queued waiters (FIFO, synchronously)
// until the new capacity is reached; shrinking lets connections above the
// new capacity retire as they are released, never revoking one in use.
// Sizes below 1 are clamped to 1, matching NewConnPool.
func (p *ConnPool) Resize(size int) {
	if size < 1 {
		size = 1
	}
	p.size = size
	for len(p.waiters) > 0 && p.inUse < p.size {
		next := p.waiters[0]
		copy(p.waiters, p.waiters[1:])
		p.waiters[len(p.waiters)-1] = nil
		p.waiters = p.waiters[:len(p.waiters)-1]
		p.inUse++
		next()
	}
}

// Size returns the pool capacity.
func (p *ConnPool) Size() int { return p.size }

// InUse returns the number of connections currently held.
func (p *ConnPool) InUse() int { return p.inUse }

// Waiting returns the number of callers queued for a connection.
func (p *ConnPool) Waiting() int { return len(p.waiters) }

// PeakWaiting returns the maximum wait-queue length observed.
func (p *ConnPool) PeakWaiting() int { return p.peakWaiting }
