package simnet

import "time"

// KernelProfile bundles the TCP parameters a kernel version implies: the
// retransmission behaviour and the default accept-queue (backlog) size.
// The paper's testbed runs RHEL 6 (kernel 2.6.32), whose 3-second SYN
// retransmission timer is what places the latency clusters at 3/6/9s;
// later kernels use a 1-second initial timer with exponential backoff,
// which moves — but does not remove — the clusters.
type KernelProfile struct {
	// Name identifies the profile.
	Name string
	// RTO is the (initial) retransmission timeout.
	RTO time.Duration
	// Backoff selects exponential doubling of the timeout per retry.
	Backoff bool
	// MaxAttempts bounds delivery attempts (1 + retries).
	MaxAttempts int
	// Backlog is the default accept-queue size.
	Backlog int
}

// Kernel profiles.
var (
	// RHEL6 is the paper's kernel (2.6.32): fixed 3-second SYN
	// retransmission, backlog 128.
	RHEL6 = KernelProfile{
		Name:        "rhel6-2.6.32",
		RTO:         3 * time.Second,
		MaxAttempts: 5,
		Backlog:     128,
	}
	// ModernLinux approximates current kernels: 1-second initial SYN
	// timer with exponential backoff (1, 2, 4, 8…), larger somaxconn.
	ModernLinux = KernelProfile{
		Name:        "modern-linux",
		RTO:         time.Second,
		Backoff:     true,
		MaxAttempts: 6,
		Backlog:     4096,
	}
)

// Apply configures the transport with the profile's retransmission
// parameters. The backlog applies to server admission and is consumed by
// topology builders, not the transport.
func (k KernelProfile) Apply(t *Transport) {
	t.RTO = k.RTO
	t.Backoff = k.Backoff
	t.MaxAttempts = k.MaxAttempts
}
