package burst

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/simnet"
	"ctqosim/internal/workload"
)

func TestIndexOfDispersionPoissonLike(t *testing.T) {
	// Counts drawn as a constant sequence have zero variance → I = 0;
	// a Poisson-ish sequence has I ≈ 1.
	constant := make([]int, 100)
	for i := range constant {
		constant[i] = 10
	}
	if got := IndexOfDispersion(constant); got != 0 {
		t.Fatalf("constant counts I = %v, want 0", got)
	}

	// Alternating 9/11 around mean 10: variance 1, I = 1/10... a
	// hand-checkable value.
	alt := make([]int, 100)
	for i := range alt {
		alt[i] = 9
		if i%2 == 1 {
			alt[i] = 11
		}
	}
	got := IndexOfDispersion(alt)
	want := (100.0 / 99.0) / 10.0 // sample variance ≈ 1.0101, mean 10
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("I = %v, want %v", got, want)
	}
}

func TestIndexOfDispersionEdgeCases(t *testing.T) {
	if IndexOfDispersion(nil) != 0 {
		t.Fatal("nil counts should give 0")
	}
	if IndexOfDispersion([]int{5}) != 0 {
		t.Fatal("single window should give 0")
	}
	if IndexOfDispersion([]int{0, 0, 0}) != 0 {
		t.Fatal("zero-mean counts should give 0")
	}
}

func TestCountArrivals(t *testing.T) {
	arrivals := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, // window 0
		1100 * time.Millisecond,                  // window 1
		5 * time.Second, 5100 * time.Millisecond, // window 5
		11 * time.Second, // beyond horizon, dropped
	}
	counts := CountArrivals(arrivals, time.Second, 10*time.Second)
	if len(counts) != 10 {
		t.Fatalf("windows = %d, want 10", len(counts))
	}
	if counts[0] != 2 || counts[1] != 1 || counts[5] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if CountArrivals(arrivals, 0, time.Second) != nil {
		t.Fatal("zero window should return nil")
	}
}

func TestFitSatisfiesConstraints(t *testing.T) {
	m, err := Fit(1000, 100, 0.1, 10*time.Second)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if math.Abs(m.MeanRate()-1000) > 1e-6 {
		t.Fatalf("mean rate = %v, want 1000", m.MeanRate())
	}
	if math.Abs(m.IndexAtInfinity()-100) > 1e-6 {
		t.Fatalf("index = %v, want 100", m.IndexAtInfinity())
	}
	if math.Abs(m.StationaryHotFraction()-0.1) > 1e-9 {
		t.Fatalf("hot fraction = %v, want 0.1", m.StationaryHotFraction())
	}
	if m.RateHot <= m.RateCold {
		t.Fatalf("hot rate %v not above cold rate %v", m.RateHot, m.RateCold)
	}
}

func TestFitIndexOneIsPoisson(t *testing.T) {
	m, err := Fit(500, 1, 0.5, time.Second)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.RateHot != m.RateCold {
		t.Fatalf("index 1 should degenerate to constant rate: %+v", m)
	}
	if m.IndexAtInfinity() != 1 {
		t.Fatalf("index = %v, want 1", m.IndexAtInfinity())
	}
}

func TestFitRejectsImpossible(t *testing.T) {
	// A huge index at a tiny timescale forces a negative cold rate.
	if _, err := Fit(1000, 10000, 0.5, time.Millisecond); err == nil {
		t.Fatal("impossible fit accepted")
	}
	for _, bad := range []struct {
		rate, index, frac float64
		ts                time.Duration
	}{
		{0, 10, 0.5, time.Second},
		{100, 0.5, 0.5, time.Second},
		{100, 10, 0, time.Second},
		{100, 10, 1, time.Second},
		{100, 10, 0.5, 0},
	} {
		if _, err := Fit(bad.rate, bad.index, bad.frac, bad.ts); err == nil {
			t.Fatalf("bad inputs accepted: %+v", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (MMPP2{RateHot: -1, RateCold: 1, HoldHot: time.Second, HoldCold: time.Second}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := (MMPP2{RateHot: 1, RateCold: 1, HoldHot: 0, HoldCold: time.Second}).Validate(); err == nil {
		t.Fatal("zero holding time accepted")
	}
}

// instantServer admits and replies immediately.
type instantServer struct{ sim *des.Simulator }

func (s *instantServer) Name() string { return "instant" }

func (s *instantServer) TryAccept(call *simnet.Call) bool {
	s.sim.Schedule(0, func() {
		if call.OnReply != nil {
			call.OnReply(call.Payload)
		}
	})
	return true
}

func TestGeneratorMeanRate(t *testing.T) {
	sim := des.NewSimulator(5)
	srv := &instantServer{sim: sim}
	front := workload.Frontend{Transport: simnet.NewTransport(sim), Target: srv}

	m, err := Fit(200, 25, 0.2, 5*time.Second)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	g, err := NewGenerator(sim, front, m, nil, nil)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	g.Start()
	const horizon = 5 * time.Minute
	if err := sim.Run(horizon); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	rate := float64(g.Sent()) / horizon.Seconds()
	if rate < 150 || rate > 250 {
		t.Fatalf("measured rate = %.1f, want ~200", rate)
	}
}

func TestGeneratorRealizesBurstIndex(t *testing.T) {
	measure := func(index float64) float64 {
		sim := des.NewSimulator(9)
		srv := &instantServer{sim: sim}
		front := workload.Frontend{Transport: simnet.NewTransport(sim), Target: srv}
		m, err := Fit(500, index, 0.2, 10*time.Second)
		if err != nil {
			t.Fatalf("Fit: %v", err)
		}
		g, err := NewGenerator(sim, front, m, nil, nil)
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		g.Start()
		const horizon = 20 * time.Minute
		if err := sim.Run(horizon); err != nil && err != des.ErrHorizon {
			t.Fatalf("Run: %v", err)
		}
		counts := CountArrivals(g.Arrivals(), 30*time.Second, horizon)
		return IndexOfDispersion(counts)
	}

	poisson := measure(1)
	bursty := measure(50)
	// The Poisson case sits near 1 (loose statistical bound); the bursty
	// case must be at least an order of magnitude above it.
	if poisson > 5 {
		t.Fatalf("index-1 process measured I = %.1f, want ~1", poisson)
	}
	if bursty < 10*poisson || bursty < 15 {
		t.Fatalf("index-50 process measured I = %.1f vs poisson %.1f", bursty, poisson)
	}
}

func TestGeneratorStops(t *testing.T) {
	sim := des.NewSimulator(5)
	srv := &instantServer{sim: sim}
	front := workload.Frontend{Transport: simnet.NewTransport(sim), Target: srv}
	m, _ := Fit(1000, 1, 0.5, time.Second)
	g, err := NewGenerator(sim, front, m, nil, nil)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	g.Start()
	sim.Schedule(time.Second, g.Stop)
	if err := sim.Run(10 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	sent := g.Sent()
	if sent < 800 || sent > 1200 {
		t.Fatalf("sent = %d before stop, want ~1000", sent)
	}
}

func TestGeneratorRejectsInvalidProcess(t *testing.T) {
	sim := des.NewSimulator(5)
	front := workload.Frontend{Transport: simnet.NewTransport(sim), Target: &instantServer{sim: sim}}
	if _, err := NewGenerator(sim, front, MMPP2{}, nil, nil); err == nil {
		t.Fatal("invalid process accepted")
	}
}

// Property: any successful fit reproduces its own targets through the
// closed-form accessors, and the asymptotic index is always >= 1.
func TestPropertyFitRoundTrip(t *testing.T) {
	f := func(rate16, idx16 uint16, frac8, ts8 uint8) bool {
		rate := float64(rate16%5000) + 1
		index := float64(idx16%500) + 1
		frac := (float64(frac8%98) + 1) / 100
		ts := time.Duration(int(ts8%60)+1) * time.Second
		m, err := Fit(rate, index, frac, ts)
		if err != nil {
			return true // infeasible combinations are allowed to fail
		}
		if m.IndexAtInfinity() < 1-1e-9 {
			return false
		}
		return math.Abs(m.MeanRate()-rate) < 1e-6*rate &&
			math.Abs(m.IndexAtInfinity()-index) < 1e-6*index
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
