package burst

import (
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/simnet"
	"ctqosim/internal/workload"
)

// Generator drives an MMPP2 arrival process into a system frontend,
// the open-loop counterpart of the paper's burst-index workloads.
type Generator struct {
	sim     *des.Simulator
	front   workload.Frontend
	process MMPP2
	mix     *workload.Mix
	sink    workload.Sink

	hot      bool
	stopped  bool
	nextID   uint64
	sent     int64
	arrivals []time.Duration
}

// NewGenerator creates an MMPP generator; call Start to begin. A nil mix
// defaults to the RUBBoS mix; sink may be nil.
func NewGenerator(sim *des.Simulator, front workload.Frontend, process MMPP2, mix *workload.Mix, sink workload.Sink) (*Generator, error) {
	if err := process.Validate(); err != nil {
		return nil, err
	}
	if mix == nil {
		mix = workload.DefaultMix()
	}
	return &Generator{
		sim: sim, front: front, process: process, mix: mix, sink: sink,
	}, nil
}

// Start begins in the cold state (hot with the stationary probability
// would also be valid; cold keeps the first burst away from warm-up).
func (g *Generator) Start() {
	g.scheduleSwitch()
	g.scheduleArrival()
}

// Stop halts arrivals and state switches.
func (g *Generator) Stop() { g.stopped = true }

// Sent returns the number of requests emitted.
func (g *Generator) Sent() int64 { return g.sent }

// Arrivals returns the emission timestamps, for index-of-dispersion
// estimation.
func (g *Generator) Arrivals() []time.Duration { return g.arrivals }

func (g *Generator) rate() float64 {
	if g.hot {
		return g.process.RateHot
	}
	return g.process.RateCold
}

func (g *Generator) hold() time.Duration {
	if g.hot {
		return g.process.HoldHot
	}
	return g.process.HoldCold
}

func (g *Generator) scheduleSwitch() {
	stay := time.Duration(g.sim.Rand().ExpFloat64() * float64(g.hold()))
	g.sim.Schedule(stay, func() {
		if g.stopped {
			return
		}
		g.hot = !g.hot
		g.scheduleSwitch()
	})
}

// scheduleArrival draws the next arrival at the current state's rate.
// Rate changes between arrivals are approximated by re-drawing from the
// state in effect at scheduling time; with holding times much longer than
// inter-arrival gaps the approximation error is negligible.
func (g *Generator) scheduleArrival() {
	rate := g.rate()
	var gap time.Duration
	if rate <= 0 {
		// Idle state: poll for the next state switch at the holding
		// timescale.
		gap = g.hold()
	} else {
		gap = time.Duration(g.sim.Rand().ExpFloat64() / rate * float64(time.Second))
	}
	g.sim.Schedule(gap, func() {
		if g.stopped {
			return
		}
		if g.rate() > 0 {
			g.fire()
		}
		g.scheduleArrival()
	})
}

func (g *Generator) fire() {
	req := &workload.Request{
		ID:        g.nextID,
		Class:     g.mix.Pick(g.sim.Rand()),
		Submitted: g.sim.Now(),
	}
	g.nextID++
	g.sent++
	g.arrivals = append(g.arrivals, req.Submitted)

	call := &simnet.Call{Payload: req}
	finish := func(failed bool) {
		req.Completed = g.sim.Now()
		req.Failed = failed
		if g.sink != nil {
			g.sink.Record(req)
		}
	}
	call.OnReply = func(any) { finish(false) }
	call.OnGiveUp = func() { finish(true) }
	g.front.Transport.Send(g.front.Target, call)
}
