package burst_test

import (
	"fmt"
	"time"

	"ctqosim/internal/burst"
)

// Fit the paper's burst-index-100 SysBursty workload: a rare hot state
// carries the bursts while the long-run mean rate stays at the nominal
// value.
func ExampleFit() {
	process, err := burst.Fit(33, 100, 0.01, 15*time.Second)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("mean rate: %.0f req/s\n", process.MeanRate())
	fmt.Printf("index: %.0f\n", process.IndexAtInfinity())
	fmt.Printf("hot episodes are brief: %v\n", process.HoldHot < time.Second)
	fmt.Printf("hot rate is a burst: %v\n", process.RateHot > 10*process.RateCold)
	// Output:
	// mean rate: 33 req/s
	// index: 100
	// hot episodes are brief: true
	// hot rate is a burst: true
}
