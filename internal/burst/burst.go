// Package burst implements the workload-burstiness machinery the paper
// adopts from Mi et al., "Injecting realistic burstiness to a traditional
// client-server benchmark" (ICAC'09), cited as [23]: the index of
// dispersion for counts as the burstiness measure, and a two-state
// Markov-modulated Poisson process (MMPP-2) that realizes a target index
// at a target mean rate.
//
// The paper's SysSteady runs at RUBBoS burst index 1 (no modulation) and
// SysBursty at index 100 — the "Slashdot effect" traffic whose bursts
// create the consolidation millibottlenecks of Section IV-A.
package burst

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// IndexOfDispersion returns the index of dispersion for counts of an
// arrival process, estimated from per-window arrival counts:
// I = Var(N) / E(N). A Poisson process has I = 1; bursty traffic has
// I >> 1. It returns 0 for fewer than two windows or a zero mean.
func IndexOfDispersion(counts []int) float64 {
	if len(counts) < 2 {
		return 0
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	mean := sum / float64(len(counts))
	if mean == 0 {
		return 0
	}
	var sq float64
	for _, c := range counts {
		d := float64(c) - mean
		sq += d * d
	}
	variance := sq / float64(len(counts)-1)
	return variance / mean
}

// CountArrivals buckets arrival timestamps into windows of the given
// width over [0, horizon).
func CountArrivals(arrivals []time.Duration, window, horizon time.Duration) []int {
	if window <= 0 || horizon <= 0 {
		return nil
	}
	n := int(horizon / window)
	if n == 0 {
		return nil
	}
	counts := make([]int, n)
	for _, a := range arrivals {
		idx := int(a / window)
		if idx >= 0 && idx < n {
			counts[idx]++
		}
	}
	return counts
}

// MMPP2 is a two-state Markov-modulated Poisson process: arrivals are
// Poisson at RateHot while in the hot state and RateCold in the cold
// state; the state holds for an exponential time with the given means.
type MMPP2 struct {
	// RateHot and RateCold are the per-state arrival rates in req/s.
	RateHot, RateCold float64
	// HoldHot and HoldCold are the mean state-holding times.
	HoldHot, HoldCold time.Duration
}

// Validate checks the parameters describe a proper process.
func (m MMPP2) Validate() error {
	if m.RateHot < 0 || m.RateCold < 0 {
		return errors.New("mmpp: negative rate")
	}
	if m.HoldHot <= 0 || m.HoldCold <= 0 {
		return errors.New("mmpp: non-positive holding time")
	}
	return nil
}

// StationaryHotFraction is the long-run fraction of time spent hot.
func (m MMPP2) StationaryHotFraction() float64 {
	h, c := m.HoldHot.Seconds(), m.HoldCold.Seconds()
	return h / (h + c)
}

// MeanRate is the long-run arrival rate.
func (m MMPP2) MeanRate() float64 {
	p := m.StationaryHotFraction()
	return p*m.RateHot + (1-p)*m.RateCold
}

// IndexAtInfinity is the asymptotic index of dispersion for counts:
//
//	I(∞) = 1 + 2·π_h·π_c·(λ_h − λ_c)² / (λ̄·(σ_h + σ_c))
//
// where σ are the state-switching rates (1/holding time).
func (m MMPP2) IndexAtInfinity() float64 {
	p := m.StationaryHotFraction()
	lbar := m.MeanRate()
	if lbar == 0 {
		return 1
	}
	sh := 1 / m.HoldHot.Seconds()
	sc := 1 / m.HoldCold.Seconds()
	d := m.RateHot - m.RateCold
	return 1 + 2*p*(1-p)*d*d/(lbar*(sh+sc))
}

// Fit solves for an MMPP2 with the given long-run mean rate (req/s),
// asymptotic index of dispersion, hot-state stationary fraction
// (0 < hotFraction < 1) and switching time scale (the mean of the two
// holding times). Index 1 degenerates to a plain Poisson process.
func Fit(meanRate, index, hotFraction float64, timescale time.Duration) (MMPP2, error) {
	if meanRate <= 0 {
		return MMPP2{}, errors.New("mmpp fit: mean rate must be positive")
	}
	if index < 1 {
		return MMPP2{}, errors.New("mmpp fit: index must be >= 1")
	}
	if hotFraction <= 0 || hotFraction >= 1 {
		return MMPP2{}, errors.New("mmpp fit: hot fraction must be in (0,1)")
	}
	if timescale <= 0 {
		return MMPP2{}, errors.New("mmpp fit: timescale must be positive")
	}

	p := hotFraction
	holdHot := time.Duration(2 * p * float64(timescale))
	holdCold := time.Duration(2 * (1 - p) * float64(timescale))
	if index == 1 {
		return MMPP2{
			RateHot: meanRate, RateCold: meanRate,
			HoldHot: holdHot, HoldCold: holdCold,
		}, nil
	}

	sh := 1 / holdHot.Seconds()
	sc := 1 / holdCold.Seconds()
	// Invert IndexAtInfinity for Δ = λ_h − λ_c.
	delta := math.Sqrt((index - 1) * meanRate * (sh + sc) / (2 * p * (1 - p)))
	rateCold := meanRate - p*delta
	if rateCold < 0 {
		return MMPP2{}, fmt.Errorf(
			"mmpp fit: index %.0f unreachable at hot fraction %.2f and timescale %v (cold rate would be negative; increase the timescale or hot fraction)",
			index, hotFraction, timescale)
	}
	return MMPP2{
		RateHot:  meanRate + (1-p)*delta,
		RateCold: rateCold,
		HoldHot:  holdHot,
		HoldCold: holdCold,
	}, nil
}
