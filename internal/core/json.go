package core

import (
	"encoding/json"
	"time"

	"ctqosim/internal/metrics"
	"ctqosim/internal/simnet"
	"ctqosim/internal/span"
)

// SummaryJSON is the machine-readable form of a Result, stable for
// downstream tooling.
type SummaryJSON struct {
	Name             string             `json:"name"`
	Architecture     string             `json:"architecture"`
	Clients          int                `json:"clients"`
	Seed             int64              `json:"seed"`
	WarmUpSeconds    float64            `json:"warmUpSeconds"`
	DurationSeconds  float64            `json:"durationSeconds"`
	ThroughputReqS   float64            `json:"throughputReqS"`
	Requests         int                `json:"requests"`
	VLRT             int                `json:"vlrt"`
	Failed           int                `json:"failed"`
	TotalDrops       int64              `json:"totalDrops"`
	DropsPerServer   map[string]int64   `json:"dropsPerServer,omitempty"`
	MeanMillis       float64            `json:"meanMillis"`
	P50Millis        float64            `json:"p50Millis"`
	P99Millis        float64            `json:"p99Millis"`
	P999Millis       float64            `json:"p999Millis"`
	MaxMillis        float64            `json:"maxMillis"`
	MeanUtilByTier   map[string]float64 `json:"meanUtilByTier"`
	PeakQueueByTier  map[string]float64 `json:"peakQueueByTier"`
	ClustersSeconds  []int              `json:"clustersSeconds,omitempty"`
	CTQOEpisodes     int                `json:"ctqoEpisodes"`
	CTQODirections   map[string]int     `json:"ctqoDirections,omitempty"`
	HistogramBinMS   int64              `json:"histogramBinMs"`
	HistogramCounts  []int64            `json:"histogramCounts"`
	HistogramOverMax int64              `json:"histogramOverflow"`

	// EffectiveConfig echoes every knob after defaulting and kernel-profile
	// resolution, so the run is reproducible from this JSON alone.
	EffectiveConfig EffectiveConfigJSON `json:"effectiveConfig"`
	// SpanBreakdown is the critical-path decile table; present only when
	// the run recorded span traces.
	SpanBreakdown *SpanBreakdownJSON `json:"spanBreakdown,omitempty"`
	// SimStats is the kernel self-profile; present only when the run had
	// Config.SimStats (its wall-clock fields vary run to run, so it must
	// stay out of byte-compared default output).
	SimStats *SimStatsJSON `json:"simStats,omitempty"`
}

// SimStatsJSON is the machine-readable kernel self-profile.
type SimStatsJSON struct {
	EventsExecuted  uint64  `json:"eventsExecuted"`
	EventsScheduled uint64  `json:"eventsScheduled"`
	PeakPending     int     `json:"peakPending"`
	WallSeconds     float64 `json:"wallSeconds"`
	EventsPerSecond float64 `json:"eventsPerSecond"`
	AllocMB         float64 `json:"allocMB"`
	GCCycles        uint32  `json:"gcCycles"`
}

// EffectiveConfigJSON is the resolved configuration of a run: defaults
// applied, kernel profile folded into the transport knobs.
type EffectiveConfigJSON struct {
	Name                 string  `json:"name"`
	Seed                 int64   `json:"seed"`
	Architecture         string  `json:"architecture"`
	Clients              int     `json:"clients"`
	ThinkTimeSeconds     float64 `json:"thinkTimeSeconds"`
	BurstIndex           float64 `json:"burstIndex,omitempty"`
	WarmUpSeconds        float64 `json:"warmUpSeconds"`
	DurationSeconds      float64 `json:"durationSeconds"`
	SampleIntervalMillis float64 `json:"sampleIntervalMillis"`

	Kernel           string  `json:"kernel,omitempty"`
	RTOSeconds       float64 `json:"rtoSeconds"`
	MaxAttempts      int     `json:"maxAttempts"`
	Backoff          bool    `json:"backoff,omitempty"`
	NetLatencyMillis float64 `json:"netLatencyMillis,omitempty"`

	AppCores          float64 `json:"appCores,omitempty"`
	ThreadOverride    int     `json:"threadOverride,omitempty"`
	OverheadPerThread float64 `json:"overheadPerThread,omitempty"`

	Trace bool `json:"trace"`
	Spans bool `json:"spans"`

	TraceReservoir int    `json:"traceReservoir,omitempty"`
	Retention      string `json:"retention,omitempty"`
	HDRSigBits     int    `json:"hdrSigBits,omitempty"`
	HDRExactCap    int    `json:"hdrExactCap,omitempty"`
	MonitorCap     int    `json:"monitorCap,omitempty"`
	SimStats       bool   `json:"simStats,omitempty"`

	Consolidation *ConsolidationJSON `json:"consolidation,omitempty"`
	LogFlush      *LogFlushJSON      `json:"logFlush,omitempty"`
	GCPause       *GCPauseJSON       `json:"gcPause,omitempty"`
}

// ConsolidationJSON echoes a resolved ConsolidationSpec.
type ConsolidationJSON struct {
	Tier                 string  `json:"tier"`
	BatchSize            int     `json:"batchSize"`
	BatchIntervalSeconds float64 `json:"batchIntervalSeconds"`
	BatchOffsetSeconds   float64 `json:"batchOffsetSeconds,omitempty"`
	BatchClass           string  `json:"batchClass"`
	TrainLength          int     `json:"trainLength"`
	TrainSpacingSeconds  float64 `json:"trainSpacingSeconds"`
	MMPPIndex            float64 `json:"mmppIndex,omitempty"`
}

// LogFlushJSON echoes a resolved LogFlushSpec.
type LogFlushJSON struct {
	Tier            string  `json:"tier"`
	IntervalSeconds float64 `json:"intervalSeconds"`
	DurationSeconds float64 `json:"durationSeconds"`
}

// GCPauseJSON echoes a resolved GCPauseSpec.
type GCPauseJSON struct {
	Tier             string  `json:"tier"`
	IntervalSeconds  float64 `json:"intervalSeconds"`
	BaseMillis       float64 `json:"baseMillis"`
	PerRequestMillis float64 `json:"perRequestMillis"`
}

// SpanBreakdownJSON is the machine-readable critical-path table.
type SpanBreakdownJSON struct {
	Requests      int           `json:"requests"`
	Rows          []SpanRowJSON `json:"rows"`
	TailExemplars int           `json:"tailExemplars"`
	// VLRTWaitShare is the fraction of VLRT response time spent waiting
	// (retransmission gaps + queue waits + pool waits) rather than in
	// service — the paper's headline attribution.
	VLRTWaitShare float64 `json:"vlrtWaitShare"`
}

// SpanRowJSON is one group of the breakdown table.
type SpanRowJSON struct {
	Label        string  `json:"label"`
	Count        int     `json:"count"`
	MeanMillis   float64 `json:"meanMillis"`
	MaxMillis    float64 `json:"maxMillis"`
	QueueShare   float64 `json:"queueShare"`
	ServiceShare float64 `json:"serviceShare"`
	RetransShare float64 `json:"retransShare"`
	PoolShare    float64 `json:"poolShare"`
}

// Summarize builds the machine-readable summary of a result.
func Summarize(res *Result) SummaryJSON {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	out := SummaryJSON{
		Name:            res.Config.Name,
		Architecture:    res.Config.NX.String(),
		Clients:         res.Config.Clients,
		Seed:            res.Config.Seed,
		WarmUpSeconds:   res.Config.WarmUp.Seconds(),
		DurationSeconds: res.Config.Duration.Seconds(),
		ThroughputReqS:  res.Throughput,
		Requests:        res.Recorder.Len(),
		VLRT:            res.VLRTCount,
		Failed:          res.Recorder.FailedCount(),
		TotalDrops:      res.TotalDrops,
		DropsPerServer:  res.DropsPerServer,
		MeanMillis:      ms(res.Recorder.Mean()),
		P50Millis:       ms(res.Recorder.Percentile(0.50)),
		P99Millis:       ms(res.Recorder.Percentile(0.99)),
		P999Millis:      ms(res.Recorder.Percentile(0.999)),
		MaxMillis:       ms(res.Recorder.Percentile(1)),
		MeanUtilByTier:  make(map[string]float64, 3),
		PeakQueueByTier: make(map[string]float64, 3),
		ClustersSeconds: res.Histogram().ModeClusters(0.0005),
	}
	for _, tier := range res.System.TierNames() {
		out.MeanUtilByTier[tier] = res.MeanUtil(tier)
		out.PeakQueueByTier[tier] = res.QueueSeries(tier).Max()
	}
	if res.Report != nil {
		out.CTQODirections = make(map[string]int)
		for _, ep := range res.Report.CTQOEpisodes() {
			out.CTQOEpisodes++
			out.CTQODirections[ep.Direction.String()]++
		}
	}
	h := res.Histogram()
	out.HistogramBinMS = h.BinWidth().Milliseconds()
	out.HistogramCounts = make([]int64, h.Bins())
	for i := 0; i < h.Bins(); i++ {
		out.HistogramCounts[i] = h.Count(i)
	}
	out.HistogramOverMax = h.Count(h.Bins())
	out.EffectiveConfig = effectiveConfig(res.Config)
	out.SpanBreakdown = spanBreakdownJSON(res)
	if st := res.SimStats; st != nil {
		out.SimStats = &SimStatsJSON{
			EventsExecuted:  st.EventsExecuted,
			EventsScheduled: st.EventsScheduled,
			PeakPending:     st.PeakPending,
			WallSeconds:     st.WallSeconds,
			EventsPerSecond: st.EventsPerSecond,
			AllocMB:         float64(st.AllocBytes) / (1 << 20),
			GCCycles:        st.GCCycles,
		}
	}
	return out
}

// effectiveConfig resolves cfg into the exact knobs the run used.
func effectiveConfig(cfg Config) EffectiveConfigJSON {
	out := EffectiveConfigJSON{
		Name:                 cfg.Name,
		Seed:                 cfg.Seed,
		Architecture:         cfg.NX.String(),
		Clients:              cfg.Clients,
		ThinkTimeSeconds:     cfg.ThinkTime.Seconds(),
		WarmUpSeconds:        cfg.WarmUp.Seconds(),
		DurationSeconds:      cfg.Duration.Seconds(),
		SampleIntervalMillis: float64(cfg.SampleInterval) / float64(time.Millisecond),
		MaxAttempts:          cfg.MaxAttempts,
		Backoff:              cfg.Backoff,
		NetLatencyMillis:     float64(cfg.NetLatency) / float64(time.Millisecond),
		AppCores:             cfg.AppCores,
		ThreadOverride:       cfg.ThreadOverride,
		OverheadPerThread:    cfg.OverheadPerThread,
		Trace:                cfg.Trace,
		Spans:                cfg.Spans,
		TraceReservoir:       cfg.TraceReservoir,
		MonitorCap:           cfg.MonitorCap,
		SimStats:             cfg.SimStats,
	}
	if cfg.Retention == metrics.RetainBounded {
		out.Retention = "bounded"
		hdr := cfg.HDR.WithDefaults()
		out.HDRSigBits = hdr.SigBits
		out.HDRExactCap = hdr.ExactCap
	}
	if cfg.Burst != nil {
		out.BurstIndex = cfg.Burst.Index
	}
	// Fold the kernel profile into the transport knobs the same way Run
	// does: explicit overrides win, then the profile, then the defaults.
	rto, attempts := simnet.DefaultRTO, simnet.DefaultMaxAttempts
	if cfg.Kernel != nil {
		out.Kernel = cfg.Kernel.Name
		if cfg.Kernel.RTO > 0 {
			rto = cfg.Kernel.RTO
		}
		if cfg.Kernel.MaxAttempts > 0 {
			attempts = cfg.Kernel.MaxAttempts
		}
		out.Backoff = out.Backoff || cfg.Kernel.Backoff
	}
	if cfg.RTO > 0 {
		rto = cfg.RTO
	}
	if cfg.MaxAttempts > 0 {
		attempts = cfg.MaxAttempts
	}
	out.RTOSeconds = rto.Seconds()
	out.MaxAttempts = attempts
	if cfg.Consolidation != nil {
		c := cfg.Consolidation.withDefaults()
		out.Consolidation = &ConsolidationJSON{
			Tier:                 c.Tier.String(),
			BatchSize:            c.BatchSize,
			BatchIntervalSeconds: c.BatchInterval.Seconds(),
			BatchOffsetSeconds:   c.BatchOffset.Seconds(),
			BatchClass:           c.BatchClass.Name,
			TrainLength:          c.TrainLength,
			TrainSpacingSeconds:  c.TrainSpacing.Seconds(),
			MMPPIndex:            c.MMPPIndex,
		}
	}
	if cfg.LogFlush != nil {
		l := cfg.LogFlush.withDefaults()
		out.LogFlush = &LogFlushJSON{
			Tier:            l.Tier.String(),
			IntervalSeconds: l.Interval.Seconds(),
			DurationSeconds: l.Duration.Seconds(),
		}
	}
	if cfg.GCPause != nil {
		g := cfg.GCPause.withDefaults()
		out.GCPause = &GCPauseJSON{
			Tier:             g.Tier.String(),
			IntervalSeconds:  g.Interval.Seconds(),
			BaseMillis:       float64(g.Base) / float64(time.Millisecond),
			PerRequestMillis: float64(g.PerRequest) / float64(time.Millisecond),
		}
	}
	return out
}

// spanBreakdownJSON flattens the critical-path table; nil without spans.
func spanBreakdownJSON(res *Result) *SpanBreakdownJSON {
	b := res.SpanBreakdown
	if b == nil {
		return nil
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	out := &SpanBreakdownJSON{
		Requests:      b.Requests,
		TailExemplars: len(res.Spans.TailExemplars()),
		VLRTWaitShare: b.VLRT.WaitShare(),
	}
	rows := append(append([]span.Row{}, b.Deciles...), b.P99, b.P999, b.VLRT)
	for _, r := range rows {
		if r.Count == 0 {
			continue
		}
		out.Rows = append(out.Rows, SpanRowJSON{
			Label:        r.Label,
			Count:        r.Count,
			MeanMillis:   ms(r.MeanRT),
			MaxMillis:    ms(r.MaxRT),
			QueueShare:   r.Share(span.KindQueueWait),
			ServiceShare: r.Share(span.KindService),
			RetransShare: r.Share(span.KindRetransmit),
			PoolShare:    r.Share(span.KindPoolWait),
		})
	}
	return out
}

// JSON renders the result summary as indented JSON.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(Summarize(r), "", "  ")
}
