package core

import (
	"encoding/json"
	"time"
)

// SummaryJSON is the machine-readable form of a Result, stable for
// downstream tooling.
type SummaryJSON struct {
	Name             string             `json:"name"`
	Architecture     string             `json:"architecture"`
	Clients          int                `json:"clients"`
	Seed             int64              `json:"seed"`
	WarmUpSeconds    float64            `json:"warmUpSeconds"`
	DurationSeconds  float64            `json:"durationSeconds"`
	ThroughputReqS   float64            `json:"throughputReqS"`
	Requests         int                `json:"requests"`
	VLRT             int                `json:"vlrt"`
	Failed           int                `json:"failed"`
	TotalDrops       int64              `json:"totalDrops"`
	DropsPerServer   map[string]int64   `json:"dropsPerServer,omitempty"`
	MeanMillis       float64            `json:"meanMillis"`
	P50Millis        float64            `json:"p50Millis"`
	P99Millis        float64            `json:"p99Millis"`
	P999Millis       float64            `json:"p999Millis"`
	MaxMillis        float64            `json:"maxMillis"`
	MeanUtilByTier   map[string]float64 `json:"meanUtilByTier"`
	PeakQueueByTier  map[string]float64 `json:"peakQueueByTier"`
	ClustersSeconds  []int              `json:"clustersSeconds,omitempty"`
	CTQOEpisodes     int                `json:"ctqoEpisodes"`
	CTQODirections   map[string]int     `json:"ctqoDirections,omitempty"`
	HistogramBinMS   int64              `json:"histogramBinMs"`
	HistogramCounts  []int64            `json:"histogramCounts"`
	HistogramOverMax int64              `json:"histogramOverflow"`
}

// Summarize builds the machine-readable summary of a result.
func Summarize(res *Result) SummaryJSON {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	out := SummaryJSON{
		Name:            res.Config.Name,
		Architecture:    res.Config.NX.String(),
		Clients:         res.Config.Clients,
		Seed:            res.Config.Seed,
		WarmUpSeconds:   res.Config.WarmUp.Seconds(),
		DurationSeconds: res.Config.Duration.Seconds(),
		ThroughputReqS:  res.Throughput,
		Requests:        res.Recorder.Len(),
		VLRT:            res.VLRTCount,
		Failed:          res.Recorder.FailedCount(),
		TotalDrops:      res.TotalDrops,
		DropsPerServer:  res.DropsPerServer,
		MeanMillis:      ms(res.Recorder.Mean()),
		P50Millis:       ms(res.Recorder.Percentile(0.50)),
		P99Millis:       ms(res.Recorder.Percentile(0.99)),
		P999Millis:      ms(res.Recorder.Percentile(0.999)),
		MaxMillis:       ms(res.Recorder.Percentile(1)),
		MeanUtilByTier:  make(map[string]float64, 3),
		PeakQueueByTier: make(map[string]float64, 3),
		ClustersSeconds: res.Histogram().ModeClusters(0.0005),
	}
	for _, tier := range res.System.TierNames() {
		out.MeanUtilByTier[tier] = res.MeanUtil(tier)
		out.PeakQueueByTier[tier] = res.QueueSeries(tier).Max()
	}
	if res.Report != nil {
		out.CTQODirections = make(map[string]int)
		for _, ep := range res.Report.CTQOEpisodes() {
			out.CTQOEpisodes++
			out.CTQODirections[ep.Direction.String()]++
		}
	}
	h := res.Histogram()
	out.HistogramBinMS = h.BinWidth().Milliseconds()
	out.HistogramCounts = make([]int64, h.Bins())
	for i := 0; i < h.Bins(); i++ {
		out.HistogramCounts[i] = h.Count(i)
	}
	out.HistogramOverMax = h.Count(h.Bins())
	return out
}

// JSON renders the result summary as indented JSON.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(Summarize(r), "", "  ")
}
