package core

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// tinyConfig is a fast scenario for pool-mechanics tests: the content of
// the runs does not matter, only their identity and ordering.
func tinyConfig(i int) Config {
	return Config{
		Name:     fmt.Sprintf("tiny-%d", i),
		Clients:  200,
		WarmUp:   time.Second,
		Duration: 2 * time.Second,
		Seed:     int64(i + 1),
	}
}

// brokenConfig fails inside Experiment.Run: the requested index of
// dispersion is unreachable at the MMPP fitter's fixed hot fraction, so
// the run errors before simulating.
func brokenConfig(name string) Config {
	cfg := tinyConfig(0)
	cfg.Name = name
	cfg.Consolidation = &ConsolidationSpec{MMPPIndex: 1e12}
	return cfg
}

func TestRunnerResultsIndexedBySubmissionSlot(t *testing.T) {
	const n = 6
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = tinyConfig(i)
	}
	results, err := NewRunner(4).Run(cfgs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("slot %d is nil", i)
		}
		if got, want := res.Config.Name, cfgs[i].Name; got != want {
			t.Errorf("slot %d holds %q, want %q (completion order leaked)", i, got, want)
		}
	}
}

func TestRunnerCollectsErrorsAndKeepsCompletedSlots(t *testing.T) {
	cfgs := []Config{
		tinyConfig(0),
		brokenConfig("bad-a"),
		tinyConfig(2),
		brokenConfig("bad-b"),
	}
	results, err := NewRunner(4).Run(cfgs)
	if err == nil {
		t.Fatal("want a joined error, got nil")
	}
	for _, want := range []string{"run 1 (bad-a)", "run 3 (bad-b)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q does not mention %q", err, want)
		}
	}
	if results[0] == nil || results[2] == nil {
		t.Error("successful slots were dropped alongside the failures")
	}
	if results[1] != nil || results[3] != nil {
		t.Error("failed slots should be nil")
	}
}

func TestRunnerSerialPathMatchesDirectRuns(t *testing.T) {
	cfgs := []Config{tinyConfig(0), tinyConfig(1)}
	results, err := NewRunner(1).Run(cfgs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, cfg := range cfgs {
		direct := mustRun(t, cfg)
		if got, want := results[i].Summary(), direct.Summary(); got != want {
			t.Errorf("slot %d differs from a direct New(cfg).Run():\npool:   %s\ndirect: %s",
				i, got, want)
		}
	}
}

func TestRunnerWorkersResolution(t *testing.T) {
	if got, want := NewRunner(0).workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := NewRunner(-3).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := NewRunner(7).workers(); got != 7 {
		t.Errorf("workers(7) = %d, want 7", got)
	}
	var nilRunner *Runner
	if got := nilRunner.workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("nil runner workers() = %d, want GOMAXPROCS", got)
	}
}

func TestRunnerDoEmptyAndEachSlotOnce(t *testing.T) {
	if err := NewRunner(4).Do(0, func(int) error {
		t.Error("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatalf("Do(0): %v", err)
	}

	const n = 32
	counts := make([]int, n)
	err := NewRunner(4).Do(n, func(slot int) error {
		counts[slot]++ // per-slot write, the documented confinement rule
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("slot %d executed %d times, want exactly once", i, c)
		}
	}
}
