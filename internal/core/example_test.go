package core_test

import (
	"fmt"
	"time"

	"ctqosim/internal/core"
	"ctqosim/internal/ntier"
)

// The Section III arithmetic: the paper's illustrative numbers.
func ExamplePredictOverflow() {
	p := core.PredictOverflow(1000, 400*time.Millisecond, 278)
	fmt.Printf("arrivals=%d capacity=%d dropped=%d overflow=%v\n",
		p.Arrivals, p.Capacity, p.Dropped, p.Overflows())
	// Output:
	// arrivals=400 capacity=278 dropped=122 overflow=true
}

func ExampleMinBurstForOverflow() {
	d := core.MinBurstForOverflow(1000, 278)
	fmt.Println(d.Round(time.Millisecond))
	// Output:
	// 279ms
}

// Running a full experiment: the Fig. 3 consolidation scenario, shortened.
// The simulation is deterministic, so the qualitative outcome is stable.
func ExampleNew() {
	cfg := core.Figure3Config()
	cfg.Duration = 20 * time.Second
	cfg.Trace = false

	res, err := core.New(cfg).Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("architecture: %v\n", res.Config.NX)
	fmt.Printf("drops at web tier: %v\n", res.DropsPerServer["steady-apache"] > 0)
	fmt.Printf("drops at db tier: %v\n", res.DropsPerServer["steady-mysql"] > 0)
	fmt.Printf("VLRT observed: %v\n", res.VLRTCount > 0)
	// Output:
	// architecture: Apache-Tomcat-MySQL
	// drops at web tier: true
	// drops at db tier: false
	// VLRT observed: true
}

// The same millibottleneck against the fully asynchronous system.
func ExampleNew_async() {
	cfg := core.Figure3Config()
	cfg.NX = ntier.NX3
	cfg.Duration = 20 * time.Second
	cfg.Trace = false

	res, err := core.New(cfg).Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("architecture: %v\n", res.Config.NX)
	fmt.Printf("total drops: %d\n", res.TotalDrops)
	fmt.Printf("VLRT: %d\n", res.VLRTCount)
	// Output:
	// architecture: Nginx-XTomcat-XMySQL
	// total drops: 0
	// VLRT: 0
}
