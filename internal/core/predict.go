package core

import (
	"math"
	"time"
)

// Prediction is the outcome of the Section III arithmetic model.
type Prediction struct {
	// Arrivals is the number of requests arriving during the
	// millibottleneck (rate × duration).
	Arrivals int
	// Capacity is the server's MaxSysQDepth (threads + TCP backlog) or
	// LiteQDepth.
	Capacity int
	// Dropped is max(0, Arrivals − Capacity): the packets the model
	// expects the server to drop.
	Dropped int
}

// Overflows reports whether the model predicts dropped packets.
func (p Prediction) Overflows() bool { return p.Dropped > 0 }

// PredictOverflow evaluates the paper's static/dynamic-condition model
// (Section III): a millibottleneck of the given duration, under the given
// request arrival rate (req/s), against a server that can hold capacity
// requests. The paper's illustrative numbers — 1000 req/s × 0.4s = 400
// arrivals against 150+128 = 278 — predict 122 drops.
//
// The model assumes the bottlenecked server processes nothing during the
// millibottleneck, which Section IV shows holds for the consolidated-core
// and I/O-stall cases.
func PredictOverflow(rate float64, duration time.Duration, capacity int) Prediction {
	if rate < 0 {
		rate = 0
	}
	if capacity < 0 {
		capacity = 0
	}
	arrivals := int(rate * duration.Seconds())
	dropped := arrivals - capacity
	if dropped < 0 {
		dropped = 0
	}
	return Prediction{Arrivals: arrivals, Capacity: capacity, Dropped: dropped}
}

// MinBurstForOverflow inverts the model: the shortest millibottleneck that
// overflows the given capacity at the given arrival rate. It returns zero
// if the rate is non-positive.
func MinBurstForOverflow(rate float64, capacity int) time.Duration {
	if rate <= 0 {
		return 0
	}
	seconds := float64(capacity+1) / rate
	d := time.Duration(math.Ceil(seconds * float64(time.Second)))
	// Bump past any floating-point truncation so the forward model agrees.
	for !PredictOverflow(rate, d, capacity).Overflows() {
		d += time.Nanosecond
	}
	return d
}
