// Package core is the public face of the reproduction: it composes the
// substrate packages into runnable experiments that regenerate every
// figure of the paper, and exposes the Section III arithmetic model that
// predicts when a millibottleneck overflows a server's MaxSysQDepth.
//
// A typical use:
//
//	res, err := core.New(core.Figure3Config()).Run()
//	fmt.Println(res.Summary())
package core

import (
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/metrics"
	"ctqosim/internal/ntier"
	"ctqosim/internal/simnet"
	"ctqosim/internal/span"
	"ctqosim/internal/trace"
	"ctqosim/internal/workload"
)

// Tier identifies one of the three tiers of a system.
type Tier int

// Tiers, client side first.
const (
	// TierWeb is the web tier (Apache/Nginx).
	TierWeb Tier = iota + 1
	// TierApp is the application tier (Tomcat/XTomcat).
	TierApp
	// TierDB is the database tier (MySQL/XMySQL).
	TierDB
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierWeb:
		return "web"
	case TierApp:
		return "app"
	case TierDB:
		return "db"
	default:
		return "unknown"
	}
}

// BurstClass is the interaction SysBursty sends in batches: a cheap
// front/app path with a heavy database query, so a batch of 400 deposits
// ≈400ms of CPU on the consolidated node — the paper's illustrative
// 0.4-second millibottleneck.
var BurstClass = workload.Class{
	Name:      "BurstQuery",
	WebCPU:    50 * time.Microsecond,
	AppCPU:    100 * time.Microsecond,
	DBQueries: 1,
	DBCPU:     time.Millisecond,
}

// ConsolidationSpec co-locates SysBursty-MySQL with one tier of the steady
// system on a shared single-core node (the paper's Fig. 2), and drives
// SysBursty with deterministic request batches (Section V-B).
type ConsolidationSpec struct {
	// Tier is the steady tier placed on the shared node.
	Tier Tier
	// BatchSize is requests per burst; zero defaults to 400.
	BatchSize int
	// BatchInterval is the burst period; zero defaults to 15s.
	BatchInterval time.Duration
	// BatchOffset delays the first burst; zero fires after one interval.
	BatchOffset time.Duration
	// BatchClass overrides the burst interaction; nil uses BurstClass.
	BatchClass *workload.Class
	// TrainLength fires each burst as a train of this many sub-bursts
	// (default 1). High-burst-index traffic clusters its bursts — the
	// "Slashdot effect" — and a train whose spacing matches the 3s
	// retransmission timeout is what re-drops retransmitted packets,
	// producing the 6s and 9s clusters of Fig. 1.
	TrainLength int
	// TrainSpacing separates sub-bursts within a train; zero defaults to
	// the 3s retransmission timeout.
	TrainSpacing time.Duration
	// MMPPIndex, when > 1, replaces the deterministic batches with a
	// Markov-modulated Poisson SysBursty of this index of dispersion —
	// the paper's original burst-index-100 workload (Section IV-A), as
	// opposed to the modified reproducible batches of Section V-B. The
	// mean rate is BatchSize/BatchInterval.
	MMPPIndex float64
}

func (c *ConsolidationSpec) withDefaults() ConsolidationSpec {
	out := *c
	if out.Tier == 0 {
		out.Tier = TierApp
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 400
	}
	if out.BatchInterval <= 0 {
		out.BatchInterval = 15 * time.Second
	}
	if out.BatchClass == nil {
		cl := BurstClass
		out.BatchClass = &cl
	}
	if out.TrainLength <= 0 {
		out.TrainLength = 1
	}
	if out.TrainSpacing <= 0 {
		out.TrainSpacing = 3 * time.Second
	}
	return out
}

// LogFlushSpec injects the collectl log-flush I/O millibottleneck
// (Section IV-B) into one tier.
type LogFlushSpec struct {
	// Tier is the stalled tier; zero defaults to TierDB.
	Tier Tier
	// Interval between flushes; zero defaults to 30s.
	Interval time.Duration
	// Duration of each stall; zero defaults to 1s (the paper's flush
	// peaks).
	Duration time.Duration
}

func (l *LogFlushSpec) withDefaults() LogFlushSpec {
	out := *l
	if out.Tier == 0 {
		out.Tier = TierDB
	}
	if out.Interval <= 0 {
		out.Interval = 30 * time.Second
	}
	if out.Duration <= 0 {
		out.Duration = time.Second
	}
	return out
}

// GCPauseSpec injects JVM stop-the-world collections into one tier — the
// millibottleneck source of the authors' earlier "Lightning in the cloud"
// study (TRIOS'14, cited as [32]). The pause grows with the number of
// in-service requests, modeling heap pressure from request state.
type GCPauseSpec struct {
	// Tier is the collected tier; zero defaults to TierApp (the JVM).
	Tier Tier
	// Interval between collections; zero defaults to 10s.
	Interval time.Duration
	// Base is the fixed pause component; zero defaults to 50ms.
	Base time.Duration
	// PerRequest extends the pause per in-service request; zero defaults
	// to 2ms.
	PerRequest time.Duration
}

func (g *GCPauseSpec) withDefaults() GCPauseSpec {
	out := *g
	if out.Tier == 0 {
		out.Tier = TierApp
	}
	if out.Interval <= 0 {
		out.Interval = 10 * time.Second
	}
	if out.Base <= 0 {
		out.Base = 50 * time.Millisecond
	}
	if out.PerRequest <= 0 {
		out.PerRequest = 2 * time.Millisecond
	}
	return out
}

// Config fully describes one experiment.
//
// Configs are safe to submit to a Runner in batches that share pointer
// fields (Mix, Kernel, Consolidation, LogFlush, GCPause): a run only
// reads them — spec structs are copied by withDefaults before any
// adjustment, and Mix/KernelProfile are read-only at run time. The one
// escape hatch is Tweak, which runs on the worker goroutine: it receives
// a per-run *ntier.SystemSpec it may mutate freely, but it must not
// write state captured from outside (and must not read the wall clock or
// global rand — the determinism contract applies inside it, too).
type Config struct {
	// Name labels the experiment in summaries.
	Name string
	// Seed drives all randomness; zero defaults to 1.
	Seed int64

	// NX selects the architecture level (0–3).
	NX ntier.NX
	// Clients is the steady closed-loop population (the paper's "WL n").
	Clients int
	// ThinkTime is the mean client think time; zero defaults to the
	// RUBBoS 7s.
	ThinkTime time.Duration
	// Mix overrides the interaction mix; nil uses workload.DefaultMix.
	//lint:sharedptr
	Mix *workload.Mix
	// Burst modulates the steady population's think times.
	Burst *workload.BurstSpec

	// WarmUp is excluded from statistics; zero defaults to 10s.
	WarmUp time.Duration
	// Duration is the measured interval after warm-up; zero defaults to
	// 60s.
	Duration time.Duration
	// SampleInterval is the monitor period; zero defaults to 50ms.
	SampleInterval time.Duration

	// Consolidation, if non-nil, runs the VM-consolidation experiment.
	//lint:sharedptr
	Consolidation *ConsolidationSpec
	// LogFlush, if non-nil, injects the I/O millibottleneck.
	//lint:sharedptr
	LogFlush *LogFlushSpec
	// GCPause, if non-nil, injects JVM garbage-collection pauses.
	//lint:sharedptr
	GCPause *GCPauseSpec

	// AppCores scales the app tier VM (Fig. 5 uses 4); zero means 1.
	AppCores float64
	// ThreadOverride, if positive, sets every synchronous tier's thread
	// pool (the Fig. 12 "2000-thread" configuration).
	ThreadOverride int
	// OverheadPerThread enables the thread-management overhead model.
	OverheadPerThread float64

	// Kernel, if non-nil, applies a kernel profile: its retransmission
	// behaviour on the transport and its default backlog on every
	// synchronous tier (simnet.RHEL6 is the paper's testbed; the modern
	// profile is the bufferbloat ablation).
	//lint:sharedptr
	Kernel *simnet.KernelProfile
	// RTO overrides the retransmission timeout; zero keeps the profile's
	// (or the default 3s).
	RTO time.Duration
	// MaxAttempts overrides delivery attempts; zero keeps the default.
	MaxAttempts int
	// Backoff switches to exponential retransmission (ablation).
	Backoff bool
	// NetLatency is the one-way network delay per hop; zero models the
	// paper's LAN as instantaneous.
	NetLatency time.Duration

	// Trace enables the micro-level event log and CTQO analysis.
	Trace bool
	// TraceReservoir, when positive with Trace, caps the event log's
	// memory: drops/retransmissions/give-ups stay exact, delivered
	// events are reservoir-sampled to this many exemplars, and per-kind
	// counters stay exact (trace.NewCappedLog). Zero keeps every event.
	TraceReservoir int

	// Retention selects the recorder's memory policy: metrics.RetainAll
	// (default, exact, O(requests) memory) or metrics.RetainBounded
	// (constant-memory HDR aggregation for million-request runs).
	Retention metrics.Retention
	// HDR tunes the bounded-mode histograms; zero takes the defaults.
	HDR metrics.HDRConfig
	// MonitorCap, when positive, bounds every monitor series to this
	// many stored samples via deterministic ring-window downsampling.
	MonitorCap int
	// SimStats enables DES kernel self-profiling: events executed, wall
	// events/sec, peak pending-heap depth and allocation deltas are
	// captured at the run boundaries into Result.SimStats.
	SimStats bool

	// Spans enables per-request span-tree tracing: every tier records
	// queue-wait, service, downstream and retransmission-gap spans, and the
	// result carries the critical-path breakdown plus tail exemplars.
	Spans bool
	// SpanTailThreshold is the keep-full-tree latency bound; zero defaults
	// to span.DefaultTailThreshold (1s).
	SpanTailThreshold time.Duration
	// SpanReservoir is the normal-trace reservoir size; zero defaults to
	// span.DefaultReservoir.
	SpanReservoir int

	// Tweak, if non-nil, may adjust the steady system spec before build —
	// the escape hatch for ablations. It runs on the worker goroutine and
	// may mutate only its per-run argument, never captured state.
	//lint:nocapturewrite
	Tweak func(*ntier.SystemSpec)

	// Script, if non-nil, runs once after the system is built and before
	// the simulation starts: it receives the live run handles and
	// typically schedules a timed chaos script against them (the scenario
	// engine compiles its events section into this hook). Like Tweak it
	// runs on the worker goroutine, may mutate only through its per-run
	// argument, and is bound by the determinism contract.
	//lint:nocapturewrite
	Script func(*RunHandles)
}

// RunHandles exposes the live pieces of one run to a Config.Script:
// enough to schedule timed events (via Sim), target tier VMs and servers
// (via Steady and Bursty), and swap the workload mix (via Clients).
type RunHandles struct {
	// Sim is the run's simulator; scripts schedule events on it.
	Sim *des.Simulator
	// Steady is the built system under test.
	Steady *ntier.System
	// Bursty is the consolidation co-tenant; nil unless configured.
	Bursty *ntier.System
	// Clients is the steady closed-loop workload.
	Clients *workload.ClosedLoop
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = workload.DefaultThinkTime
	}
	if c.WarmUp <= 0 {
		c.WarmUp = 10 * time.Second
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = metrics.DefaultSampleInterval
	}
	return c
}

// Result carries everything an experiment produced. The raw recorder,
// monitor and trace stay accessible so callers can regenerate any figure.
type Result struct {
	// Config echoes the (defaulted) input.
	Config Config
	// System is the steady system under test.
	System *ntier.System
	// Bursty is the co-tenant system, nil without consolidation.
	Bursty *ntier.System
	// Recorder holds the steady system's completed requests.
	Recorder *metrics.Recorder
	// Monitor holds the 50ms timelines.
	Monitor *metrics.Monitor
	// TraceLog is the transport event log, nil unless Config.Trace.
	TraceLog *trace.Log
	// Report is the CTQO causal analysis, nil unless Config.Trace.
	Report *trace.Report
	// Spans is the per-request span tracer, nil unless Config.Spans.
	Spans *span.Tracer
	// SpanBreakdown is the critical-path decile table, nil unless
	// Config.Spans produced finished traces.
	SpanBreakdown *span.Breakdown

	// End is the total simulated time (warm-up + duration).
	End time.Duration
	// Throughput is completed steady requests per second over the
	// measured window.
	Throughput float64
	// TotalDrops counts dropped packets on all steady hops.
	TotalDrops int64
	// DropsPerServer breaks TotalDrops down by receiving server.
	DropsPerServer map[string]int64
	// VLRTCount is the number of >3s steady requests.
	VLRTCount int
	// SimStats is the kernel self-profile, nil unless Config.SimStats.
	SimStats *des.SimStats
}

// PeakUtil returns a watched VM's maximum windowed utilization (0..1).
func (r *Result) PeakUtil(vm string) float64 { return r.Monitor.Util(vm).Max() }

// MeanUtil returns a watched VM's mean utilization over the measured
// window (post warm-up).
func (r *Result) MeanUtil(vm string) float64 {
	return r.Monitor.Util(vm).MeanOver(r.Config.WarmUp, r.End)
}

// HighestMeanUtil returns the largest per-tier mean utilization of the
// steady system — the "highest average CPU util" in the paper's Fig. 1
// captions.
func (r *Result) HighestMeanUtil() (string, float64) {
	var bestName string
	best := 0.0
	for _, name := range r.System.TierNames() {
		if u := r.MeanUtil(name); u > best {
			best, bestName = u, name
		}
	}
	return bestName, best
}

// Histogram bins the steady response times for Fig. 1: 100ms bins to 10s
// plus overflow.
func (r *Result) Histogram() *metrics.Histogram {
	return r.Recorder.Histogram(100*time.Millisecond, 10*time.Second)
}

// VLRTSeries counts VLRT requests per monitor window, optionally filtered
// by the dropping server (Figs. 3c, 7c, 8c, 9c).
func (r *Result) VLRTSeries(server string) []int {
	return r.Recorder.VLRTSeries(r.Config.SampleInterval, r.End, server)
}

// QueueSeries returns a steady server's queued-requests timeline.
func (r *Result) QueueSeries(server string) *metrics.Series {
	return r.Monitor.Queue(server)
}

// TailExemplars returns up to n of the slowest fully-kept span traces
// (all of them for n <= 0). Nil unless the run had Config.Spans.
func (r *Result) TailExemplars(n int) []*span.Trace {
	ex := r.Spans.TailExemplars()
	if n > 0 && len(ex) > n {
		ex = ex[:n]
	}
	return ex
}
