package core

import (
	"math"
	"testing"
	"time"

	"ctqosim/internal/analytic"
	"ctqosim/internal/ntier"
	"ctqosim/internal/workload"
)

// TestSimulationMatchesMVA cross-validates the simulator against exact
// Mean Value Analysis: without millibottlenecks, the closed 3-tier system
// is a product-form network and the simulated throughput and bottleneck
// utilization must match the analytic solution.
func TestSimulationMatchesMVA(t *testing.T) {
	model := analytic.FromMix(workload.DefaultMix(), workload.DefaultThinkTime)

	for _, clients := range []int{4000, 7000} {
		clients := clients
		pred := model.Solve(clients)

		res := mustRun(t, Config{
			Name:     "mva-cross",
			NX:       ntier.NX0,
			Clients:  clients,
			Duration: 30 * time.Second,
		})
		if relErr(res.Throughput, pred.Throughput) > 0.05 {
			t.Errorf("WL %d: simulated X = %.0f, MVA predicts %.0f",
				clients, res.Throughput, pred.Throughput)
		}
		appUtil := res.MeanUtil("steady-tomcat")
		// The simulated "utilization" is the run-queue busy fraction; for
		// a near-M/M/1 station it tracks the analytic utilization.
		if math.Abs(appUtil-pred.Utilizations[1]) > 0.08 {
			t.Errorf("WL %d: simulated app util = %.2f, MVA predicts %.2f",
				clients, appUtil, pred.Utilizations[1])
		}
	}
}

// TestVLRTImpossibleUnderSteadyQueueing ties the analytic argument to the
// measurement: the same run that queueing theory says cannot produce >3s
// responses produces thousands of them via drops.
func TestVLRTImpossibleUnderSteadyQueueing(t *testing.T) {
	res := mustRun(t, shorten(Figure1Config(7000), 60*time.Second))
	_, util := res.HighestMeanUtil()

	odds := analytic.VLRTOddsUnderQueueing(util, 750*time.Microsecond)
	if odds > 1e-50 {
		t.Fatalf("analytic odds = %v, expected essentially zero", odds)
	}
	if res.VLRTCount == 0 {
		t.Fatal("the simulated system produced no VLRT requests")
	}
	// The measured VLRT fraction is many orders of magnitude above the
	// steady-state queueing prediction — the paper's class-3 argument.
	fraction := float64(res.VLRTCount) / float64(res.Recorder.Len())
	if fraction < 1e6*odds {
		t.Fatalf("measured VLRT fraction %.2g not >> analytic odds %.2g", fraction, odds)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}
