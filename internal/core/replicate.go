package core

import (
	"errors"
	"fmt"
	"math"
)

// MeanCI is a sample mean with a 95% confidence half-width.
type MeanCI struct {
	// Mean is the sample mean.
	Mean float64
	// HalfWidth is the 95% confidence interval half-width (Student's t).
	HalfWidth float64
	// N is the number of replications.
	N int
}

// Low and High bound the 95% interval.
func (m MeanCI) Low() float64 { return m.Mean - m.HalfWidth }

// High returns the upper bound of the 95% interval.
func (m MeanCI) High() float64 { return m.Mean + m.HalfWidth }

// String implements fmt.Stringer.
func (m MeanCI) String() string {
	return fmt.Sprintf("%.1f ± %.1f (n=%d)", m.Mean, m.HalfWidth, m.N)
}

// ReplicationStats aggregates independent replications of one experiment.
type ReplicationStats struct {
	// Throughput is req/s across replications.
	Throughput MeanCI
	// VLRT is VLRT requests per run.
	VLRT MeanCI
	// Drops is dropped packets per run.
	Drops MeanCI
	// P99Millis is the 99th-percentile response time per run.
	P99Millis MeanCI
	// Seeds lists the seeds of the replications that completed.
	Seeds []int64
}

// RunReplications runs the experiment n times with seeds baseSeed+0..n-1
// and returns cross-replication statistics — the standard methodology for
// reporting simulation results with confidence intervals. Replications
// are fanned across GOMAXPROCS workers; use Runner.Replicate to pick the
// pool size (the statistics are seed-determined either way).
func RunReplications(cfg Config, n int) (ReplicationStats, error) {
	return NewRunner(0).Replicate(cfg, n)
}

// validSeedSpan returns how many of the seeds base+0..n-1 fit in int64
// without wrapping. Seeds past the span are reported as errors instead of
// silently running with a wrapped (negative) seed.
func validSeedSpan(base int64, n int) int {
	if base <= math.MaxInt64-int64(n-1) {
		return n
	}
	span := math.MaxInt64 - base + 1 // base >= MaxInt64-n+2 > 0, no overflow
	if span < 0 {
		return 0
	}
	return int(span)
}

// seedOverflowError describes one replication whose seed would wrap.
func seedOverflowError(i int, base int64) error {
	return fmt.Errorf("replication %d: seed range overflows int64 (base seed %d + %d)", i, base, i)
}

// Replicate is RunReplications on this runner's pool: n independent
// seeds, aggregated in seed order, so the statistics are byte-identical
// for every pool size.
//
// Replicate follows the Runner.Run partial-results contract: a failed
// seed contributes a "run i (name): ..." entry to the joined error but
// does not discard the completed replications — the returned stats
// aggregate every seed that finished (Seeds lists them), alongside the
// non-nil error. Seeds that would wrap past MaxInt64 never run and are
// reported in the same joined error.
func (r *Runner) Replicate(cfg Config, n int) (ReplicationStats, error) {
	if n < 1 {
		n = 1
	}
	cfg = cfg.withDefaults()
	valid := validSeedSpan(cfg.Seed, n)
	cfgs := make([]Config, valid)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + int64(i)
	}
	results, runErr := r.Run(cfgs)
	errs := []error{runErr}
	for i := valid; i < n; i++ {
		errs = append(errs, seedOverflowError(i, cfg.Seed))
	}
	var (
		tputs, vlrts, drops, p99s []float64
		seeds                     []int64
	)
	for i, res := range results {
		if res == nil {
			continue // failed seed: reported in runErr, slot skipped
		}
		seeds = append(seeds, cfgs[i].Seed)
		tputs = append(tputs, res.Throughput)
		vlrts = append(vlrts, float64(res.VLRTCount))
		drops = append(drops, float64(res.TotalDrops))
		p99s = append(p99s, float64(res.Recorder.Percentile(0.99).Milliseconds()))
	}
	stats := ReplicationStats{
		Throughput: meanCI(tputs),
		VLRT:       meanCI(vlrts),
		Drops:      meanCI(drops),
		P99Millis:  meanCI(p99s),
		Seeds:      seeds,
	}
	if err := errors.Join(errs...); err != nil {
		return stats, fmt.Errorf("replications: %w", err)
	}
	return stats, nil
}

// meanCI computes a 95% Student's-t confidence interval.
func meanCI(xs []float64) MeanCI {
	n := len(xs)
	if n == 0 {
		return MeanCI{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return MeanCI{Mean: mean, N: 1}
	}
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	stderr := math.Sqrt(sq / float64(n-1) / float64(n))
	return MeanCI{Mean: mean, HalfWidth: tValue95(n-1) * stderr, N: n}
}

// tValue95 returns the two-sided 95% Student's t critical value. Exact
// table values cover df ≤ 40; beyond that a Cornish–Fisher expansion
// around the normal quantile tracks the true value to ~1e-3 (2.021 at
// df=40, 2.009 at 50, 2.000 at 60, 1.980 at 120) and decays monotonically
// to z ≈ 1.96 — no cliff at the old df=30 table edge, which understated
// CI half-widths by ~2-4% exactly where sharded sweeps land.
func tValue95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
		2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
		2.048, 2.045, 2.042, 2.040, 2.037, 2.035, 2.032, 2.030, 2.028,
		2.026, 2.024, 2.023, 2.021,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	// t_{0.975}(df) ≈ z + (z³+z)/(4·df) + (5z⁵+16z³+3z)/(96·df²).
	const z = 1.959964
	fdf := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	return z + (z3+z)/(4*fdf) + (5*z5+16*z3+3*z)/(96*fdf*fdf)
}
