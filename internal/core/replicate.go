package core

import (
	"fmt"
	"math"
)

// MeanCI is a sample mean with a 95% confidence half-width.
type MeanCI struct {
	// Mean is the sample mean.
	Mean float64
	// HalfWidth is the 95% confidence interval half-width (Student's t).
	HalfWidth float64
	// N is the number of replications.
	N int
}

// Low and High bound the 95% interval.
func (m MeanCI) Low() float64 { return m.Mean - m.HalfWidth }

// High returns the upper bound of the 95% interval.
func (m MeanCI) High() float64 { return m.Mean + m.HalfWidth }

// String implements fmt.Stringer.
func (m MeanCI) String() string {
	return fmt.Sprintf("%.1f ± %.1f (n=%d)", m.Mean, m.HalfWidth, m.N)
}

// ReplicationStats aggregates independent replications of one experiment.
type ReplicationStats struct {
	// Throughput is req/s across replications.
	Throughput MeanCI
	// VLRT is VLRT requests per run.
	VLRT MeanCI
	// Drops is dropped packets per run.
	Drops MeanCI
	// P99Millis is the 99th-percentile response time per run.
	P99Millis MeanCI
	// Seeds lists the seeds used.
	Seeds []int64
}

// RunReplications runs the experiment n times with seeds baseSeed+0..n-1
// and returns cross-replication statistics — the standard methodology for
// reporting simulation results with confidence intervals. Replications
// are fanned across GOMAXPROCS workers; use Runner.Replicate to pick the
// pool size (the statistics are seed-determined either way).
func RunReplications(cfg Config, n int) (ReplicationStats, error) {
	return NewRunner(0).Replicate(cfg, n)
}

// Replicate is RunReplications on this runner's pool: n independent
// seeds, aggregated in seed order, so the statistics are byte-identical
// for every pool size.
func (r *Runner) Replicate(cfg Config, n int) (ReplicationStats, error) {
	if n < 1 {
		n = 1
	}
	cfg = cfg.withDefaults()
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + int64(i)
	}
	results, err := r.Run(cfgs)
	if err != nil {
		return ReplicationStats{}, fmt.Errorf("replications: %w", err)
	}
	var (
		tputs, vlrts, drops, p99s []float64
		seeds                     []int64
	)
	for i, res := range results {
		seeds = append(seeds, cfgs[i].Seed)
		tputs = append(tputs, res.Throughput)
		vlrts = append(vlrts, float64(res.VLRTCount))
		drops = append(drops, float64(res.TotalDrops))
		p99s = append(p99s, float64(res.Recorder.Percentile(0.99).Milliseconds()))
	}
	return ReplicationStats{
		Throughput: meanCI(tputs),
		VLRT:       meanCI(vlrts),
		Drops:      meanCI(drops),
		P99Millis:  meanCI(p99s),
		Seeds:      seeds,
	}, nil
}

// meanCI computes a 95% Student's-t confidence interval.
func meanCI(xs []float64) MeanCI {
	n := len(xs)
	if n == 0 {
		return MeanCI{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return MeanCI{Mean: mean, N: 1}
	}
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	stderr := math.Sqrt(sq / float64(n-1) / float64(n))
	return MeanCI{Mean: mean, HalfWidth: tValue95(n-1) * stderr, N: n}
}

// tValue95 returns the two-sided 95% Student's t critical value.
func tValue95(df int) float64 {
	// Table for small degrees of freedom; 1.96 asymptotically.
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
		2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
		2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}
