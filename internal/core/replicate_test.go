package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRunReplications(t *testing.T) {
	cfg := shorten(Figure3Config(), 20*time.Second)
	cfg.Trace = false
	stats, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatalf("RunReplications: %v", err)
	}
	if len(stats.Seeds) != 3 {
		t.Fatalf("seeds = %v", stats.Seeds)
	}
	if stats.Seeds[0] == stats.Seeds[1] {
		t.Fatal("replications reused a seed")
	}
	if stats.Throughput.N != 3 {
		t.Fatalf("N = %d", stats.Throughput.N)
	}
	if stats.Throughput.Mean < 900 || stats.Throughput.Mean > 1100 {
		t.Fatalf("mean throughput = %v", stats.Throughput.Mean)
	}
	if stats.Drops.Mean <= 0 {
		t.Fatal("mean drops should be positive in the Fig. 3 scenario")
	}
	if stats.Throughput.Low() > stats.Throughput.Mean ||
		stats.Throughput.High() < stats.Throughput.Mean {
		t.Fatal("CI does not bracket the mean")
	}
}

func TestRunReplicationsSingle(t *testing.T) {
	cfg := shorten(Config{Name: "tiny", Clients: 50, WarmUp: time.Second}, 3*time.Second)
	stats, err := RunReplications(cfg, 1)
	if err != nil {
		t.Fatalf("RunReplications: %v", err)
	}
	if stats.Throughput.HalfWidth != 0 {
		t.Fatalf("single replication half-width = %v, want 0", stats.Throughput.HalfWidth)
	}
}

func TestRunReplicationsClampsN(t *testing.T) {
	cfg := shorten(Config{Name: "tiny", Clients: 10, WarmUp: time.Second}, 2*time.Second)
	stats, err := RunReplications(cfg, 0)
	if err != nil {
		t.Fatalf("RunReplications: %v", err)
	}
	if len(stats.Seeds) != 1 {
		t.Fatalf("n=0 should clamp to 1, got %d", len(stats.Seeds))
	}
}

func TestMeanCIString(t *testing.T) {
	s := MeanCI{Mean: 990.4, HalfWidth: 12.3, N: 5}.String()
	if !strings.Contains(s, "990.4") || !strings.Contains(s, "n=5") {
		t.Fatalf("String = %q", s)
	}
}

func TestMeanCIKnownValue(t *testing.T) {
	// {1,2,3}: mean 2, sd 1, stderr 1/sqrt(3), t(2)=4.303.
	ci := meanCI([]float64{1, 2, 3})
	if ci.Mean != 2 {
		t.Fatalf("mean = %v", ci.Mean)
	}
	want := 4.303 / math.Sqrt(3)
	if math.Abs(ci.HalfWidth-want) > 1e-9 {
		t.Fatalf("half-width = %v, want %v", ci.HalfWidth, want)
	}
}

func TestTValueTable(t *testing.T) {
	if tValue95(1) != 12.706 || tValue95(30) != 2.042 {
		t.Fatal("t-table wrong")
	}
	// True two-sided 95% values past the table edge; the expansion must
	// track them to ~1e-3, not jump to 1.96 at df=31.
	for _, tt := range []struct {
		df   int
		want float64
	}{
		{40, 2.021}, {50, 2.009}, {60, 2.000}, {80, 1.990},
		{100, 1.984}, {120, 1.980}, {1000, 1.962},
	} {
		if got := tValue95(tt.df); math.Abs(got-tt.want) > 2e-3 {
			t.Errorf("tValue95(%d) = %v, want ~%v", tt.df, got, tt.want)
		}
	}
	if got := tValue95(1 << 30); math.Abs(got-1.96) > 1e-4 {
		t.Errorf("asymptotic t = %v, want ~1.96", got)
	}
	if tValue95(0) != 0 {
		t.Fatal("df=0 should return 0")
	}
}

// TestTValueMonotone sweeps df across the table edge and the expansion:
// the critical value must be strictly decreasing (more data, tighter CI)
// and never dip below the normal quantile. The old implementation jumped
// from 2.042 at df=30 straight to 1.96 at df=31.
func TestTValueMonotone(t *testing.T) {
	prev := tValue95(1)
	for df := 2; df <= 2000; df++ {
		cur := tValue95(df)
		if cur >= prev {
			t.Fatalf("tValue95(%d) = %v >= tValue95(%d) = %v; not decreasing", df, cur, df-1, prev)
		}
		if cur < 1.9599 {
			t.Fatalf("tValue95(%d) = %v below the normal quantile", df, cur)
		}
		prev = cur
	}
	// The old cliff: 2.042 -> 1.96 was a 4% understatement. The step at
	// the table edge must now be a smooth ~0.1%.
	if drop := tValue95(30) - tValue95(31); drop > 0.005 {
		t.Fatalf("df=30 -> 31 step = %v, want < 0.005", drop)
	}
	if drop := tValue95(40) - tValue95(41); drop > 0.005 {
		t.Fatalf("df=40 -> 41 step = %v, want < 0.005", drop)
	}
}

// TestReplicateSeedOverflow: a base seed near MaxInt64 must produce clear
// per-replication errors for the wrapping seeds and partial stats for the
// seeds that fit — never a silently wrapped negative seed.
func TestReplicateSeedOverflow(t *testing.T) {
	cfg := shorten(Config{Name: "tiny", Clients: 20, WarmUp: time.Second}, 2*time.Second)
	cfg.Seed = math.MaxInt64 - 1 // seeds MaxInt64-1, MaxInt64 fit; +2, +3 wrap
	stats, err := RunReplications(cfg, 4)
	if err == nil {
		t.Fatal("overflowing seed range returned nil error")
	}
	if !strings.Contains(err.Error(), "overflows int64") {
		t.Fatalf("error %q does not mention the overflow", err)
	}
	if len(stats.Seeds) != 2 || stats.Seeds[0] != math.MaxInt64-1 || stats.Seeds[1] != math.MaxInt64 {
		t.Fatalf("partial seeds = %v, want the two valid ones", stats.Seeds)
	}
	if stats.Throughput.N != 2 {
		t.Fatalf("partial stats aggregated N = %d, want 2", stats.Throughput.N)
	}
	// Entirely-overflowing range: no runs, stats empty, error still clear.
	cfg.Seed = math.MaxInt64
	stats, err = RunReplications(cfg, 3)
	if err == nil || !strings.Contains(err.Error(), "overflows int64") {
		t.Fatalf("err = %v, want overflow error", err)
	}
	if stats.Throughput.N != 1 {
		t.Fatalf("N = %d, want 1 (only seed MaxInt64 itself runs)", stats.Throughput.N)
	}
}

func TestValidSeedSpan(t *testing.T) {
	tests := []struct {
		base int64
		n    int
		want int
	}{
		{1, 5, 5},
		{math.MaxInt64 - 4, 5, 5},
		{math.MaxInt64 - 3, 5, 4},
		{math.MaxInt64, 5, 1},
		{math.MaxInt64, 1, 1},
		{-10, 5, 5},
	}
	for _, tt := range tests {
		if got := validSeedSpan(tt.base, tt.n); got != tt.want {
			t.Errorf("validSeedSpan(%d, %d) = %d, want %d", tt.base, tt.n, got, tt.want)
		}
	}
}

// Property: the CI always brackets the mean, shrinks with more data of the
// same spread, and is zero for constant samples.
func TestPropertyMeanCI(t *testing.T) {
	f := func(vals []float64) bool {
		// Clamp to a sane measurement range: metric values are req/s or
		// counts, never near float64 extremes where the sums overflow.
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1e9)
		}
		ci := meanCI(vals)
		if len(vals) == 0 {
			return ci == MeanCI{}
		}
		return ci.Low() <= ci.Mean+1e-9 && ci.High() >= ci.Mean-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	constant := meanCI([]float64{5, 5, 5, 5})
	if constant.HalfWidth != 0 {
		t.Fatalf("constant samples half-width = %v", constant.HalfWidth)
	}
}
