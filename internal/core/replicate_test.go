package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRunReplications(t *testing.T) {
	cfg := shorten(Figure3Config(), 20*time.Second)
	cfg.Trace = false
	stats, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatalf("RunReplications: %v", err)
	}
	if len(stats.Seeds) != 3 {
		t.Fatalf("seeds = %v", stats.Seeds)
	}
	if stats.Seeds[0] == stats.Seeds[1] {
		t.Fatal("replications reused a seed")
	}
	if stats.Throughput.N != 3 {
		t.Fatalf("N = %d", stats.Throughput.N)
	}
	if stats.Throughput.Mean < 900 || stats.Throughput.Mean > 1100 {
		t.Fatalf("mean throughput = %v", stats.Throughput.Mean)
	}
	if stats.Drops.Mean <= 0 {
		t.Fatal("mean drops should be positive in the Fig. 3 scenario")
	}
	if stats.Throughput.Low() > stats.Throughput.Mean ||
		stats.Throughput.High() < stats.Throughput.Mean {
		t.Fatal("CI does not bracket the mean")
	}
}

func TestRunReplicationsSingle(t *testing.T) {
	cfg := shorten(Config{Name: "tiny", Clients: 50, WarmUp: time.Second}, 3*time.Second)
	stats, err := RunReplications(cfg, 1)
	if err != nil {
		t.Fatalf("RunReplications: %v", err)
	}
	if stats.Throughput.HalfWidth != 0 {
		t.Fatalf("single replication half-width = %v, want 0", stats.Throughput.HalfWidth)
	}
}

func TestRunReplicationsClampsN(t *testing.T) {
	cfg := shorten(Config{Name: "tiny", Clients: 10, WarmUp: time.Second}, 2*time.Second)
	stats, err := RunReplications(cfg, 0)
	if err != nil {
		t.Fatalf("RunReplications: %v", err)
	}
	if len(stats.Seeds) != 1 {
		t.Fatalf("n=0 should clamp to 1, got %d", len(stats.Seeds))
	}
}

func TestMeanCIString(t *testing.T) {
	s := MeanCI{Mean: 990.4, HalfWidth: 12.3, N: 5}.String()
	if !strings.Contains(s, "990.4") || !strings.Contains(s, "n=5") {
		t.Fatalf("String = %q", s)
	}
}

func TestMeanCIKnownValue(t *testing.T) {
	// {1,2,3}: mean 2, sd 1, stderr 1/sqrt(3), t(2)=4.303.
	ci := meanCI([]float64{1, 2, 3})
	if ci.Mean != 2 {
		t.Fatalf("mean = %v", ci.Mean)
	}
	want := 4.303 / math.Sqrt(3)
	if math.Abs(ci.HalfWidth-want) > 1e-9 {
		t.Fatalf("half-width = %v, want %v", ci.HalfWidth, want)
	}
}

func TestTValueTable(t *testing.T) {
	if tValue95(1) != 12.706 || tValue95(30) != 2.042 {
		t.Fatal("t-table wrong")
	}
	if tValue95(1000) != 1.96 {
		t.Fatal("asymptotic t wrong")
	}
	if tValue95(0) != 0 {
		t.Fatal("df=0 should return 0")
	}
}

// Property: the CI always brackets the mean, shrinks with more data of the
// same spread, and is zero for constant samples.
func TestPropertyMeanCI(t *testing.T) {
	f := func(vals []float64) bool {
		// Clamp to a sane measurement range: metric values are req/s or
		// counts, never near float64 extremes where the sums overflow.
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1e9)
		}
		ci := meanCI(vals)
		if len(vals) == 0 {
			return ci == MeanCI{}
		}
		return ci.Low() <= ci.Mean+1e-9 && ci.High() >= ci.Mean-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	constant := meanCI([]float64{5, 5, 5, 5})
	if constant.HalfWidth != 0 {
		t.Fatalf("constant samples half-width = %v", constant.HalfWidth)
	}
}
