package core

// Scenarios returns the named scenario registry shared by the CLI tools
// and tests: every paper figure plus the extension scenarios.
func Scenarios() map[string]Config {
	return map[string]Config{
		"fig1-wl4000":    Figure1Config(4000),
		"fig1-wl7000":    Figure1Config(7000),
		"fig1-wl8000":    Figure1Config(8000),
		"fig3":           Figure3Config(),
		"fig5":           Figure5Config(),
		"fig7":           Figure7Config(),
		"fig8":           Figure8Config(),
		"fig9":           Figure9Config(),
		"fig10":          Figure10Config(),
		"fig11":          Figure11Config(),
		"nx1-mysql":      NX1MySQLBottleneckConfig(),
		"async-highutil": AsyncHighUtilConfig(),
		"gc-sync":        GCMillibottleneckConfig(0),
		"gc-async":       GCMillibottleneckConfig(3),
	}
}
