package core

import (
	"io/fs"
	"strings"
)

// Scenarios returns the named scenario registry shared by the CLI tools
// and tests: every paper figure plus the extension scenarios, compiled
// from the embedded scenario files (one file per name, keyed by its
// basename). TestScenarioFilesMatchLegacyPresets pins each compiled
// config to the original hand-written Go preset.
func Scenarios() map[string]Config {
	out := make(map[string]Config)
	entries, err := fs.ReadDir(scenarioFS, "scenarios")
	if err != nil {
		panic("embedded scenarios: " + err.Error())
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		out[name] = mustScenario("scenarios/" + e.Name())
	}
	return out
}
