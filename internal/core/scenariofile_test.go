package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ctqosim/internal/ntier"
	"ctqosim/internal/scenario"
)

// TestFromScenarioTweakOverrides checks that per-tier overrides compile
// into a spec tweak that touches exactly the overridden fields.
func TestFromScenarioTweakOverrides(t *testing.T) {
	doc := &scenario.Document{
		Name: "override-test",
		Fleet: scenario.Fleet{
			NX:      0,
			Clients: 100,
			App:     &scenario.TierOverride{Arch: "async", Threads: 64, Cores: 2},
		},
	}
	cfg, err := FromScenario(doc)
	if err != nil {
		t.Fatalf("FromScenario: %v", err)
	}
	if cfg.Tweak == nil {
		t.Fatal("override did not produce a Tweak")
	}
	spec := ntier.Spec("steady", ntier.NX0)
	web := spec.Web
	cfg.Tweak(&spec)
	if spec.App.Arch != ntier.Async || spec.App.Threads != 64 || spec.App.Cores != 2 {
		t.Errorf("app override not applied: %+v", spec.App)
	}
	if spec.Web != web {
		t.Errorf("web tier changed without an override: %+v", spec.Web)
	}

	// A present-but-empty override must not manufacture a Tweak, or the
	// compiled config would diverge from the legacy preset shape.
	doc.Fleet.App = &scenario.TierOverride{}
	cfg, err = FromScenario(doc)
	if err != nil {
		t.Fatalf("FromScenario: %v", err)
	}
	if cfg.Tweak != nil {
		t.Error("empty override produced a Tweak")
	}
}

// TestFromScenarioCompileErrors covers the compile-time rejections that
// validation alone cannot catch (they need engine knowledge).
func TestFromScenarioCompileErrors(t *testing.T) {
	doc := &scenario.Document{
		Name:     "resize-on-async",
		Duration: scenario.Duration(10 * time.Second),
		Fleet:    scenario.Fleet{NX: 3, Clients: 100},
		Events: []scenario.Event{
			{At: scenario.Duration(time.Second), Action: scenario.ActionResizePool, Size: 10},
		},
	}
	if _, err := FromScenario(doc); err == nil ||
		!strings.Contains(err.Error(), "resize_pool") || !strings.Contains(err.Error(), "NX=3") {
		t.Errorf("resize_pool on NX=3 error = %v, want a resize_pool/NX=3 explanation", err)
	}

	if _, err := FromScenario(&scenario.Document{}); err == nil {
		t.Error("FromScenario accepted an invalid document")
	}
}

// TestFromScenarioMix checks mix compilation: built-in references and
// inline classes both land in the workload mix.
func TestFromScenarioMix(t *testing.T) {
	doc := &scenario.Document{
		Name: "mix-test",
		Fleet: scenario.Fleet{
			NX:      0,
			Clients: 10,
			Mix: []scenario.MixEntry{
				{Class: "ViewStory", Weight: 3},
				{Name: "HeavyQuery", Weight: 1, DBQueries: 4, DBCPU: scenario.Duration(2 * time.Millisecond)},
			},
		},
	}
	cfg, err := FromScenario(doc)
	if err != nil {
		t.Fatalf("FromScenario: %v", err)
	}
	if cfg.Mix == nil {
		t.Fatal("mix section compiled to nil")
	}
}

// TestChaosScenarioEndToEnd is the acceptance run: the embedded
// chaos-demo scenario — timed injector start/stop, a tier kill and
// restore, a pool resize — must run end to end, its assertions must
// pass against the outcome, and the run must be byte-identical when
// repeated and when scheduled through a multi-worker pool.
func TestChaosScenarioEndToEnd(t *testing.T) {
	docs := ScenarioDocs()
	doc, ok := docs["chaos-demo"]
	if !ok {
		t.Fatal("registry lost chaos-demo")
	}
	if len(doc.Events) == 0 || len(doc.Assertions) == 0 {
		t.Fatalf("chaos-demo must carry events and assertions, got %d/%d",
			len(doc.Events), len(doc.Assertions))
	}
	cfg, err := FromScenario(doc)
	if err != nil {
		t.Fatalf("FromScenario(chaos-demo): %v", err)
	}
	if cfg.Script == nil {
		t.Fatal("chaos-demo compiled without a script")
	}

	capture := func(workers int) [][]byte {
		t.Helper()
		cfgs := []Config{cfg, cfg}
		results, err := NewRunner(workers).Run(cfgs)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		out := make([][]byte, len(results))
		for i, res := range results {
			js, err := res.JSON()
			if err != nil {
				t.Fatalf("JSON: %v", err)
			}
			out[i] = js
		}
		// The two slots are the same config: run-twice identity within
		// one pool.
		if !bytes.Equal(out[0], out[1]) {
			t.Errorf("workers=%d: identical configs diverged:\n%s",
				workers, firstDiff(out[0], out[1]))
		}
		return out
	}

	serial := capture(1)
	parallel := capture(3)
	if !bytes.Equal(serial[0], parallel[0]) {
		t.Errorf("chaos run differs between workers=1 and workers=3:\n%s",
			firstDiff(serial[0], parallel[0]))
	}

	// Assertion evaluation against the real outcome.
	res := mustRun(t, cfg)
	report := scenario.Evaluate(doc.Assertions, res.Outcome())
	if !report.Pass() {
		t.Errorf("chaos-demo assertions failed:\n%s", report)
	}

	// The script's observable effects: the kill/restore window plus the
	// flush stalls must produce VLRTs and drops the baseline run (same
	// fleet, no events) does not show at the DB tier.
	if res.VLRTCount == 0 {
		t.Error("chaos script produced no VLRT requests")
	}
	if res.TotalDrops == 0 {
		t.Error("chaos script produced no drops")
	}
}

// TestGeneratedScenariosProperty is the stress-generator property test:
// 100 seeded random scenarios must validate, compile, run without panic
// or deadlock, satisfy their generated assertions, and reproduce byte-
// identically on a second run — all through the worker pool, so the
// check also exercises pool scheduling under -race.
func TestGeneratedScenariosProperty(t *testing.T) {
	const n = 100
	cfgs := make([]Config, 0, n)
	docs := make([]*scenario.Document, 0, n)
	for seed := int64(1); seed <= n; seed++ {
		doc := scenario.Generate(seed)
		if err := doc.Validate(); err != nil {
			t.Fatalf("Generate(%d) invalid: %v", seed, err)
		}
		cfg, err := FromScenario(doc)
		if err != nil {
			t.Fatalf("Generate(%d) does not compile: %v", seed, err)
		}
		cfgs = append(cfgs, cfg)
		docs = append(docs, doc)
	}

	run := func() [][]byte {
		t.Helper()
		results, err := NewRunner(0).Run(cfgs)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		out := make([][]byte, len(results))
		for i, res := range results {
			js, err := res.JSON()
			if err != nil {
				t.Fatalf("JSON: %v", err)
			}
			out[i] = js
			if report := scenario.Evaluate(docs[i].Assertions, res.Outcome()); !report.Pass() {
				t.Errorf("seed %d: generated assertions failed:\n%s", i+1, report)
			}
		}
		return out
	}

	first := run()
	second := run()
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Errorf("seed %d: generated scenario not reproducible:\n%s",
				i+1, firstDiff(first[i], second[i]))
		}
	}
}

// TestScenarioRegistryParsesAndCompiles walks every embedded file —
// registry, templates and matrix cells — through parse and compile, so a
// malformed committed file fails fast even if no preset loads it.
func TestScenarioRegistryParsesAndCompiles(t *testing.T) {
	paths := []string{}
	for _, dir := range []string{"scenarios", "scenarios/templates", "scenarios/cells"} {
		entries, err := scenarioFS.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir(%s): %v", dir, err)
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
				paths = append(paths, dir+"/"+e.Name())
			}
		}
	}
	if len(paths) < 33 { // 15 registry + 2 templates + 16 cells
		t.Fatalf("embedded only %d scenario files, want >= 33", len(paths))
	}
	for _, p := range paths {
		data, err := scenarioFS.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", p, err)
		}
		doc, err := scenario.Parse(p, data)
		if err != nil {
			t.Errorf("parse %s: %v", p, err)
			continue
		}
		if _, err := FromScenario(doc); err != nil {
			t.Errorf("compile %s: %v", p, err)
		}
		// Canonical formatting: marshaling the parsed document and
		// re-parsing must reach a fixed point, so files stay
		// diff-stable under tooling.
		canon, err := doc.Marshal()
		if err != nil {
			t.Errorf("marshal %s: %v", p, err)
			continue
		}
		doc2, err := scenario.Parse(p, canon)
		if err != nil {
			t.Errorf("re-parse %s: %v", p, err)
			continue
		}
		canon2, err := doc2.Marshal()
		if err != nil {
			t.Errorf("re-marshal %s: %v", p, err)
		} else if !bytes.Equal(canon, canon2) {
			t.Errorf("%s: marshal round-trip is not a fixed point", p)
		}
	}
}
