package core

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// WriteCSVs exports a result's timelines and histogram into dir, one CSV
// per figure panel:
//
//	queues.csv    — queued requests per server per sample (Figs. 3b, 5b, …)
//	util.csv      — CPU utilization per VM per sample (Figs. 3a, 7a, …)
//	iowait.csv    — I/O wait per VM per sample (Figs. 5a, 11a)
//	vlrt.csv      — VLRT counts per window per dropping server (Figs. 3c, …)
//	histogram.csv — response-time frequency per 100ms bin (Fig. 1)
func WriteCSVs(res *Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("csv dir: %w", err)
	}
	tiers := res.System.TierNames()

	queueCols := make([]namedSeries, 0, len(tiers))
	utilCols := make([]namedSeries, 0, len(tiers)+1)
	waitCols := make([]namedSeries, 0, len(tiers))
	for _, tier := range tiers {
		queueCols = append(queueCols, namedSeries{tier, res.Monitor.Queue(tier).Values})
		utilCols = append(utilCols, namedSeries{tier, res.Monitor.Util(tier).Values})
		waitCols = append(waitCols, namedSeries{tier, res.Monitor.IOWait(tier).Values})
	}
	if res.Bursty != nil {
		name := res.Bursty.DB.Name()
		utilCols = append(utilCols, namedSeries{name, res.Monitor.Util(name).Values})
	}

	interval := res.Config.SampleInterval
	if err := writeSeriesCSV(filepath.Join(dir, "queues.csv"), interval, queueCols); err != nil {
		return err
	}
	if err := writeSeriesCSV(filepath.Join(dir, "util.csv"), interval, utilCols); err != nil {
		return err
	}
	if err := writeSeriesCSV(filepath.Join(dir, "iowait.csv"), interval, waitCols); err != nil {
		return err
	}
	if err := writeVLRTCSV(filepath.Join(dir, "vlrt.csv"), res, tiers); err != nil {
		return err
	}
	return writeHistogramCSV(filepath.Join(dir, "histogram.csv"), res)
}

type namedSeries struct {
	name   string
	values []float64
}

func writeSeriesCSV(path string, interval time.Duration, cols []namedSeries) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	w := csv.NewWriter(f)
	header := make([]string, 0, len(cols)+1)
	header = append(header, "time_s")
	maxLen := 0
	for _, c := range cols {
		header = append(header, c.name)
		if len(c.values) > maxLen {
			maxLen = len(c.values)
		}
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(cols)+1)
		t := time.Duration(i+1) * interval
		row = append(row, strconv.FormatFloat(t.Seconds(), 'f', 3, 64))
		for _, c := range cols {
			v := 0.0
			if i < len(c.values) {
				v = c.values[i]
			}
			row = append(row, strconv.FormatFloat(v, 'f', 4, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeVLRTCSV(path string, res *Result, tiers []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	w := csv.NewWriter(f)
	header := append([]string{"time_s", "all"}, tiers...)
	if err := w.Write(header); err != nil {
		return err
	}
	all := res.VLRTSeries("")
	perTier := make([][]int, len(tiers))
	for i, tier := range tiers {
		perTier[i] = res.VLRTSeries(tier)
	}
	for i := range all {
		row := make([]string, 0, len(tiers)+2)
		t := res.Config.WarmUp + time.Duration(i)*res.Config.SampleInterval
		row = append(row, strconv.FormatFloat(t.Seconds(), 'f', 3, 64))
		row = append(row, strconv.Itoa(all[i]))
		for _, series := range perTier {
			v := 0
			if i < len(series) {
				v = series[i]
			}
			row = append(row, strconv.Itoa(v))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeHistogramCSV(path string, res *Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	w := csv.NewWriter(f)
	if err := w.Write([]string{"rt_ms", "frequency"}); err != nil {
		return err
	}
	h := res.Histogram()
	for i := 0; i <= h.Bins(); i++ {
		ms := h.BinStart(i).Milliseconds()
		if err := w.Write([]string{
			strconv.FormatInt(ms, 10),
			strconv.FormatInt(h.Count(i), 10),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
