package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"ctqosim/internal/metrics"
)

// TestSweepByteIdentityBothRetentions extends the any-worker-count
// byte-identity contract to both recorder retention modes: sharded sweep
// reports must render identically from one worker and several whether
// requests are retained exactly or aggregated into constant-memory
// telemetry.
func TestSweepByteIdentityBothRetentions(t *testing.T) {
	for _, mode := range []struct {
		name string
		ret  metrics.Retention
	}{
		{"retain-all", metrics.RetainAll},
		{"retain-bounded", metrics.RetainBounded},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := tinySweepConfig()
			cfg.Retention = mode.ret
			sc := SweepConfig{Config: cfg, Seeds: 48, ShardSize: 8}
			type rendering struct {
				csv, js []byte
				text    string
			}
			capture := func(workers int) rendering {
				t.Helper()
				stats, err := NewRunner(workers).Sweep(sc)
				if err != nil {
					t.Fatalf("Sweep(workers=%d): %v", workers, err)
				}
				js, err := stats.JSON()
				if err != nil {
					t.Fatalf("JSON: %v", err)
				}
				return rendering{csv: stats.CSV(), js: js, text: stats.String()}
			}
			serial := capture(1)
			parallel := capture(4)
			if !bytes.Equal(serial.csv, parallel.csv) {
				t.Error("sweep CSV differs between workers=1 and workers=4")
			}
			if !bytes.Equal(serial.js, parallel.js) {
				t.Error("sweep JSON differs between workers=1 and workers=4")
			}
			if serial.text != parallel.text {
				t.Error("sweep text differs between workers=1 and workers=4")
			}
		})
	}
}

// TestBoundedRunMatchesExact runs one scenario in both retention modes
// with the same seed and pins the degradation contract at experiment
// level: everything countable is identical, and percentiles agree within
// the HDR histogram's configured relative error.
func TestBoundedRunMatchesExact(t *testing.T) {
	base := shorten(Figure3Config(), 20*time.Second)
	exact := mustRun(t, base)

	cfg := base
	cfg.Retention = metrics.RetainBounded
	bounded := mustRun(t, cfg)

	if exact.Recorder.Len() != bounded.Recorder.Len() {
		t.Fatalf("Len: exact %d, bounded %d", exact.Recorder.Len(), bounded.Recorder.Len())
	}
	if exact.Throughput != bounded.Throughput {
		t.Fatalf("Throughput: exact %v, bounded %v", exact.Throughput, bounded.Throughput)
	}
	if exact.VLRTCount != bounded.VLRTCount {
		t.Fatalf("VLRTCount: exact %d, bounded %d", exact.VLRTCount, bounded.VLRTCount)
	}
	if exact.Recorder.FailedCount() != bounded.Recorder.FailedCount() {
		t.Fatal("FailedCount diverges")
	}
	if exact.Recorder.Mean() != bounded.Recorder.Mean() {
		t.Fatalf("Mean: exact %v, bounded %v (sums must never degrade)",
			exact.Recorder.Mean(), bounded.Recorder.Mean())
	}
	if exact.TotalDrops != bounded.TotalDrops {
		t.Fatal("TotalDrops diverges (transport stats are retention-independent)")
	}

	maxErr := metrics.NewHDRHistogram(metrics.HDRConfig{}).RelativeError()
	for _, p := range []float64{0.5, 0.99, 0.999} {
		e, b := exact.Recorder.Percentile(p), bounded.Recorder.Percentile(p)
		if e == 0 && b == 0 {
			continue
		}
		relErr := math.Abs(float64(b-e)) / float64(e)
		if relErr > maxErr {
			t.Fatalf("Percentile(%v): exact %v, bounded %v — error %.5f > %.5f",
				p, e, b, relErr, maxErr)
		}
	}

	// The windowed VLRT series is retained at the monitor interval.
	eSeries := exact.VLRTSeries("")
	bSeries := bounded.VLRTSeries("")
	if len(eSeries) != len(bSeries) {
		t.Fatalf("VLRTSeries length: exact %d, bounded %d", len(eSeries), len(bSeries))
	}
	for i := range eSeries {
		if eSeries[i] != bSeries[i] {
			t.Fatalf("VLRTSeries[%d]: exact %d, bounded %d", i, eSeries[i], bSeries[i])
		}
	}
}

// TestSimStatsWiring checks the self-profiling plumbing end to end:
// enabled, the result and its JSON carry the kernel stats; disabled (the
// default), the JSON is byte-free of them so determinism tests are
// unaffected.
func TestSimStatsWiring(t *testing.T) {
	cfg := shorten(Config{Name: "tiny", Clients: 10, WarmUp: time.Second}, 2*time.Second)
	cfg.SimStats = true
	res := mustRun(t, cfg)
	if res.SimStats == nil {
		t.Fatal("SimStats requested but Result.SimStats is nil")
	}
	if res.SimStats.EventsExecuted == 0 || res.SimStats.EventsScheduled == 0 {
		t.Fatalf("kernel counters empty: %+v", res.SimStats)
	}
	if res.SimStats.PeakPending <= 0 {
		t.Fatalf("PeakPending = %d", res.SimStats.PeakPending)
	}
	if res.SimStats.EventsPerSecond <= 0 {
		t.Fatalf("EventsPerSecond = %v", res.SimStats.EventsPerSecond)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !strings.Contains(string(data), `"simStats"`) {
		t.Fatal("summary JSON missing simStats block")
	}
	if !strings.Contains(string(data), `"eventsExecuted"`) {
		t.Fatal("simStats block missing eventsExecuted")
	}

	// Default run: no simStats key anywhere in the JSON.
	cfg.SimStats = false
	plain := mustRun(t, cfg)
	if plain.SimStats != nil {
		t.Fatal("SimStats present without being requested")
	}
	data, err = plain.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if strings.Contains(string(data), "simStats") {
		t.Fatal("default JSON gained a simStats key — breaks byte-identity")
	}
}

// TestEffectiveConfigEchoesRetention pins the JSON echo of the new
// telemetry knobs: bounded runs advertise their retention and HDR
// parameters; default runs' JSON bytes are unchanged.
func TestEffectiveConfigEchoesRetention(t *testing.T) {
	cfg := shorten(Config{Name: "tiny", Clients: 10, WarmUp: time.Second}, 2*time.Second)
	cfg.Retention = metrics.RetainBounded
	res := mustRun(t, cfg)
	data, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	s := string(data)
	for _, want := range []string{`"retention": "bounded"`, `"hdrSigBits"`, `"hdrExactCap"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("bounded-run JSON missing %s:\n%s", want, s)
		}
	}

	plain := mustRun(t, shorten(Config{Name: "tiny", Clients: 10, WarmUp: time.Second}, 2*time.Second))
	data, err = plain.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	for _, banned := range []string{"retention", "hdrSigBits", "traceReservoir", "monitorCap"} {
		if strings.Contains(string(data), banned) {
			t.Fatalf("default JSON gained %q — breaks byte-identity", banned)
		}
	}
}

// TestMonitorCapAndTraceReservoirWiring checks the remaining telemetry
// knobs reach their subsystems through Config.
func TestMonitorCapAndTraceReservoirWiring(t *testing.T) {
	cfg := shorten(Figure3Config(), 10*time.Second)
	cfg.MonitorCap = 16
	cfg.TraceReservoir = 32
	res := mustRun(t, cfg)

	for _, tier := range res.System.TierNames() {
		if q := res.Monitor.Queue(tier); len(q.Values) > 16 {
			t.Fatalf("%s queue series holds %d samples, cap 16", tier, len(q.Values))
		}
	}
	if res.TraceLog == nil || !res.TraceLog.Capped() {
		t.Fatal("TraceReservoir did not produce a capped log")
	}
	// Counters stay exact even with the reservoir on.
	var delivered int64
	for _, c := range res.TraceLog.Counters() {
		delivered += c.Count
	}
	if delivered == 0 {
		t.Fatal("capped log counters empty")
	}
}
