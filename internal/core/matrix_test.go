package core

import (
	"strings"
	"testing"
	"time"

	"ctqosim/internal/ntier"
	"ctqosim/internal/trace"
)

func TestCTQOMatrixSyncVsAsync(t *testing.T) {
	// The conclusion's summary, computed: the fully synchronous system
	// suffers CTQO from a CPU millibottleneck in either tier; the fully
	// asynchronous one never does.
	cells, err := RunCTQOMatrix(MatrixConfig{
		Duration: 35 * time.Second,
		Levels:   []ntier.NX{ntier.NX0, ntier.NX3},
		Kinds:    []string{"cpu"},
	})
	if err != nil {
		t.Fatalf("RunCTQOMatrix: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4 (2 levels × 2 tiers)", len(cells))
	}
	for _, c := range cells {
		switch c.NX {
		case ntier.NX0:
			if c.VLRT == 0 || c.Direction == trace.DirectionNone {
				t.Errorf("NX0 %s/%s: VLRT=%d direction=%v, want CTQO",
					c.Kind, c.Bottleneck, c.VLRT, c.Direction)
			}
			if c.DropSite == "" {
				t.Errorf("NX0 %s/%s: no drop site", c.Kind, c.Bottleneck)
			}
		case ntier.NX3:
			if c.VLRT != 0 || c.Direction != trace.DirectionNone {
				t.Errorf("NX3 %s/%s: VLRT=%d direction=%v, want none",
					c.Kind, c.Bottleneck, c.VLRT, c.Direction)
			}
		}
	}
}

func TestCTQOMatrixDropSiteMigration(t *testing.T) {
	// App-tier CPU millibottleneck: the drop site must move down the
	// chain as tiers become asynchronous — Apache (NX0), Tomcat (NX1),
	// MySQL (NX2), nowhere (NX3).
	cells, err := RunCTQOMatrix(MatrixConfig{
		Duration: 35 * time.Second,
		Kinds:    []string{"cpu"},
	})
	if err != nil {
		t.Fatalf("RunCTQOMatrix: %v", err)
	}
	want := map[ntier.NX]string{
		ntier.NX0: "steady-apache",
		ntier.NX1: "steady-tomcat",
		ntier.NX2: "steady-mysql",
		ntier.NX3: "",
	}
	for _, c := range cells {
		if c.Bottleneck != TierApp {
			continue
		}
		if c.DropSite != want[c.NX] {
			t.Errorf("NX%d app bottleneck: drop site %q, want %q",
				c.NX, c.DropSite, want[c.NX])
		}
	}
}

func TestFormatMatrix(t *testing.T) {
	cells := []MatrixCell{
		{NX: ntier.NX0, Bottleneck: TierApp, Kind: "cpu",
			VLRT: 42, DropSite: "steady-apache", Direction: trace.DirectionUpstream},
		{NX: ntier.NX3, Bottleneck: TierDB, Kind: "io",
			Direction: trace.DirectionNone},
	}
	s := FormatMatrix(cells)
	for _, want := range []string{"Apache-Tomcat-MySQL", "steady-apache", "upstream CTQO", "no CTQO", "42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("matrix missing %q:\n%s", want, s)
		}
	}
}

func TestCTQOMatrixIOKind(t *testing.T) {
	// The I/O-stall column of the grid: the synchronous system suffers
	// CTQO from a DB log flush; the asynchronous one does not.
	cells, err := RunCTQOMatrix(MatrixConfig{
		Duration: 35 * time.Second,
		Levels:   []ntier.NX{ntier.NX0, ntier.NX3},
		Kinds:    []string{"io"},
	})
	if err != nil {
		t.Fatalf("RunCTQOMatrix: %v", err)
	}
	for _, c := range cells {
		if c.Bottleneck != TierDB {
			continue
		}
		switch c.NX {
		case ntier.NX0:
			if c.VLRT == 0 || c.DropSite == "" {
				t.Errorf("NX0 io/db: VLRT=%d dropSite=%q, want CTQO", c.VLRT, c.DropSite)
			}
		case ntier.NX3:
			if c.VLRT != 0 {
				t.Errorf("NX3 io/db: VLRT=%d, want 0", c.VLRT)
			}
		}
	}
}
