package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Runner fans independent experiments across a pool of worker goroutines.
//
// Every experiment in this repository is a self-contained, seed-driven,
// single-threaded DES: all mutable state hangs off the per-run
// des.Simulator, so distinct runs share nothing but read-only
// configuration (class tables, kernel profiles, mixes). The Runner
// exploits that: it executes many runs concurrently while keeping every
// output byte-identical to the serial path, because results are indexed
// by submission slot — never by completion order — and each run's
// internal event order is untouched (parallel across runs, serial within
// a run; DESIGN.md §9).
//
// The determinism contract therefore extends to the pool: for any config
// slice, Runner{Workers: k}.Run produces byte-for-byte the same results
// slice as Runner{Workers: 1}.Run, for every k.
type Runner struct {
	// Workers is the pool size. Zero or negative defaults to
	// runtime.GOMAXPROCS(0); 1 degrades to today's strictly serial
	// path (submission order, no goroutines).
	Workers int
}

// NewRunner returns a Runner with the given pool size (0 = GOMAXPROCS).
func NewRunner(workers int) *Runner { return &Runner{Workers: workers} }

// workers resolves the effective pool size.
func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// Run executes every config and returns the results indexed by
// submission slot. A failed run leaves a nil slot and contributes a
// "run i (name): ..." error to the joined error; completed slots are
// returned alongside it, so a caller can keep partial output. Unlike the
// pre-Runner entry points, a failure does not abort the remaining runs —
// the same work completes whatever the pool size, which is what keeps
// workers=K output identical to workers=1.
func (r *Runner) Run(cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	err := r.Do(len(cfgs), func(slot int) error {
		res, err := New(cfgs[slot]).Run()
		if err != nil {
			return fmt.Errorf("run %d (%s): %w", slot, cfgs[slot].Name, err)
		}
		results[slot] = res
		return nil
	})
	return results, err
}

// Do is the generic pool engine under Run: it executes fn(0) … fn(n-1),
// each exactly once, and returns the per-slot errors joined in slot
// order (nil if all succeeded). With one worker the calls happen inline
// in slot order; with more they are claimed from a channel by a fixed
// pool, so at most workers() calls run at once. fn must confine its
// writes to per-slot state (e.g. its own index of a pre-sized slice):
// slot i's write happens-before Do returns, but nothing orders slots
// relative to each other.
func (r *Runner) Do(n int, fn func(slot int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	if w := min(r.workers(), n); w <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		slots := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range slots {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			slots <- i
		}
		close(slots)
		wg.Wait()
	}
	return errors.Join(errs...)
}
