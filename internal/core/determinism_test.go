package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ctqosim/internal/span"
)

// TestRunDeterminism locks in the determinism contract end to end: two
// runs of the fig3 consolidation scenario with the same seed must agree
// byte for byte on the -json summary (which embeds the effective config
// and the span breakdown), on the rendered critical-path table, and on
// the Perfetto trace-event export. ctqo-lint catches wall-clock, global
// rand and map-order leaks statically; this test catches whatever slips
// past it dynamically, so future nondeterminism fails tier-1 tests, not
// just lint.
func TestRunDeterminism(t *testing.T) {
	cfg := Scenarios()["fig3"]
	cfg = shorten(cfg, 30*time.Second)
	cfg.Spans = true

	type snapshot struct {
		json      []byte
		breakdown string
		perfetto  []byte
	}
	capture := func() snapshot {
		res := mustRun(t, cfg)
		js, err := res.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		var pf bytes.Buffer
		exemplars := res.Spans.TailExemplars()
		if len(exemplars) == 0 {
			exemplars = res.Spans.Reservoir()
		}
		if err := span.WriteTraceEvents(&pf, exemplars); err != nil {
			t.Fatalf("WriteTraceEvents: %v", err)
		}
		return snapshot{
			json:      js,
			breakdown: res.SpanBreakdown.String(),
			perfetto:  pf.Bytes(),
		}
	}

	first := capture()
	second := capture()

	if !bytes.Equal(first.json, second.json) {
		t.Errorf("summary JSON differs between identical runs:\n%s",
			firstDiff(first.json, second.json))
	}
	if first.breakdown != second.breakdown {
		t.Errorf("span breakdown differs between identical runs:\n%s",
			firstDiff([]byte(first.breakdown), []byte(second.breakdown)))
	}
	if !bytes.Equal(first.perfetto, second.perfetto) {
		t.Errorf("perfetto export differs between identical runs:\n%s",
			firstDiff(first.perfetto, second.perfetto))
	}
}

// TestRunSeedSensitivity is the complementary check: a different seed
// must actually change the run, or the determinism test above would pass
// vacuously on a simulator that ignores its seed.
func TestRunSeedSensitivity(t *testing.T) {
	cfg := Scenarios()["fig3"]
	cfg = shorten(cfg, 30*time.Second)
	// Explicit seeds: a zero seed defaults to 1, so "0 vs 1" would
	// compare a run against itself.
	cfg.Seed = 7
	a := mustRun(t, cfg)
	cfg.Seed = 8
	b := mustRun(t, cfg)
	ja, err := a.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if bytes.Equal(ja, jb) {
		t.Error("changing the seed left the summary JSON byte-identical; the seed is not wired through")
	}
}

// firstDiff renders the first line where two byte slices diverge.
func firstDiff(a, b []byte) string {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d:\n  run 1: %s\n  run 2: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}
