package core

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"ctqosim/internal/ntier"
	"ctqosim/internal/span"
)

// TestRunDeterminism locks in the determinism contract end to end: two
// runs of the fig3 consolidation scenario with the same seed must agree
// byte for byte on the -json summary (which embeds the effective config
// and the span breakdown), on the rendered critical-path table, and on
// the Perfetto trace-event export. ctqo-lint catches wall-clock, global
// rand and map-order leaks statically; this test catches whatever slips
// past it dynamically, so future nondeterminism fails tier-1 tests, not
// just lint.
func TestRunDeterminism(t *testing.T) {
	cfg := Scenarios()["fig3"]
	cfg = shorten(cfg, 30*time.Second)
	cfg.Spans = true

	type snapshot struct {
		json      []byte
		breakdown string
		perfetto  []byte
	}
	capture := func() snapshot {
		res := mustRun(t, cfg)
		js, err := res.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		var pf bytes.Buffer
		exemplars := res.Spans.TailExemplars()
		if len(exemplars) == 0 {
			exemplars = res.Spans.Reservoir()
		}
		if err := span.WriteTraceEvents(&pf, exemplars); err != nil {
			t.Fatalf("WriteTraceEvents: %v", err)
		}
		return snapshot{
			json:      js,
			breakdown: res.SpanBreakdown.String(),
			perfetto:  pf.Bytes(),
		}
	}

	first := capture()
	second := capture()

	if !bytes.Equal(first.json, second.json) {
		t.Errorf("summary JSON differs between identical runs:\n%s",
			firstDiff(first.json, second.json))
	}
	if first.breakdown != second.breakdown {
		t.Errorf("span breakdown differs between identical runs:\n%s",
			firstDiff([]byte(first.breakdown), []byte(second.breakdown)))
	}
	if !bytes.Equal(first.perfetto, second.perfetto) {
		t.Errorf("perfetto export differs between identical runs:\n%s",
			firstDiff(first.perfetto, second.perfetto))
	}
}

// TestRunSeedSensitivity is the complementary check: a different seed
// must actually change the run, or the determinism test above would pass
// vacuously on a simulator that ignores its seed.
func TestRunSeedSensitivity(t *testing.T) {
	cfg := Scenarios()["fig3"]
	cfg = shorten(cfg, 30*time.Second)
	// Explicit seeds: a zero seed defaults to 1, so "0 vs 1" would
	// compare a run against itself.
	cfg.Seed = 7
	a := mustRun(t, cfg)
	cfg.Seed = 8
	b := mustRun(t, cfg)
	ja, err := a.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if bytes.Equal(ja, jb) {
		t.Error("changing the seed left the summary JSON byte-identical; the seed is not wired through")
	}
}

// TestRunnerParallelFig3ByteIdentity extends the determinism contract to
// the worker pool (DESIGN.md §9): running the fig3 scenario through
// Runner at workers=4 must produce byte-for-byte the JSON summary,
// rendered summary and CSV exports of workers=1. The batch pads the
// scenario with sibling runs so the pool actually schedules concurrently
// around the slot under test.
func TestRunnerParallelFig3ByteIdentity(t *testing.T) {
	base := Scenarios()["fig3"]
	base = shorten(base, 20*time.Second)
	base.Spans = true
	batch := func() []Config {
		cfgs := make([]Config, 4)
		for i := range cfgs {
			cfgs[i] = base
			cfgs[i].Seed = int64(i + 1)
		}
		return cfgs
	}

	capture := func(workers int) (jsons [][]byte, summaries []string, csvDirs []string) {
		t.Helper()
		results, err := NewRunner(workers).Run(batch())
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		for i, res := range results {
			js, err := res.JSON()
			if err != nil {
				t.Fatalf("JSON: %v", err)
			}
			dir := filepath.Join(t.TempDir(), fmt.Sprintf("w%d-%d", workers, i))
			if err := WriteCSVs(res, dir); err != nil {
				t.Fatalf("WriteCSVs: %v", err)
			}
			jsons = append(jsons, js)
			summaries = append(summaries, res.Summary())
			csvDirs = append(csvDirs, dir)
		}
		return jsons, summaries, csvDirs
	}

	serialJSON, serialSummary, serialCSV := capture(1)
	parallelJSON, parallelSummary, parallelCSV := capture(4)

	for i := range serialJSON {
		if !bytes.Equal(serialJSON[i], parallelJSON[i]) {
			t.Errorf("slot %d: JSON differs between workers=1 and workers=4:\n%s",
				i, firstDiff(serialJSON[i], parallelJSON[i]))
		}
		if serialSummary[i] != parallelSummary[i] {
			t.Errorf("slot %d: summary differs between workers=1 and workers=4:\n%s",
				i, firstDiff([]byte(serialSummary[i]), []byte(parallelSummary[i])))
		}
		compareDirsBytewise(t, serialCSV[i], parallelCSV[i])
	}
}

// TestRunnerParallelMatrixByteIdentity runs a reduced CTQO grid through
// the pool at workers=1 and workers=4 and requires the rendered table —
// the user-visible output of the matrix path — to match byte for byte.
func TestRunnerParallelMatrixByteIdentity(t *testing.T) {
	grid := func(workers int) string {
		t.Helper()
		cells, err := RunCTQOMatrix(MatrixConfig{
			Clients:  7000,
			Duration: 15 * time.Second,
			Levels:   []ntier.NX{ntier.NX0, ntier.NX2},
			Kinds:    []string{"cpu"},
			Workers:  workers,
		})
		if err != nil {
			t.Fatalf("RunCTQOMatrix(workers=%d): %v", workers, err)
		}
		return FormatMatrix(cells)
	}
	serial := grid(1)
	parallel := grid(4)
	if serial != parallel {
		t.Errorf("matrix table differs between workers=1 and workers=4:\n%s",
			firstDiff([]byte(serial), []byte(parallel)))
	}
}

// TestRunnerParallelFigure12ByteIdentity covers the third multi-run entry
// point: the Fig. 12 concurrency sweep must return the same rows — and
// hence the same rendered table — from one worker and from four.
func TestRunnerParallelFigure12ByteIdentity(t *testing.T) {
	sweep := func(workers int) string {
		t.Helper()
		rows, err := NewRunner(workers).Figure12([]int{100, 400})
		if err != nil {
			t.Fatalf("Figure12(workers=%d): %v", workers, err)
		}
		var b strings.Builder
		for _, p := range rows {
			fmt.Fprintf(&b, "%d,%.3f,%.3f\n", p.Concurrency, p.Sync, p.Async)
		}
		return b.String()
	}
	serial := sweep(1)
	parallel := sweep(4)
	if serial != parallel {
		t.Errorf("fig12 rows differ between workers=1 and workers=4:\n%s",
			firstDiff([]byte(serial), []byte(parallel)))
	}
}

// TestSweepParallelByteIdentity extends the §9 byte-identity contract to
// the sharded sweep engine at acceptance scale: a 200-seed sweep must
// render byte-identical CSV, JSON and text reports from one worker and
// from several (including a worker count that does not divide the shard
// count), because shards are merged in shard order regardless of which
// worker finished them when.
func TestSweepParallelByteIdentity(t *testing.T) {
	sc := SweepConfig{Config: tinySweepConfig(), Seeds: 200, ShardSize: 16}
	type rendering struct {
		csv, js []byte
		text    string
	}
	capture := func(workers int) rendering {
		t.Helper()
		stats, err := NewRunner(workers).Sweep(sc)
		if err != nil {
			t.Fatalf("Sweep(workers=%d): %v", workers, err)
		}
		js, err := stats.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return rendering{csv: stats.CSV(), js: js, text: stats.String()}
	}
	serial := capture(1)
	for _, workers := range []int{4, 7} {
		parallel := capture(workers)
		if !bytes.Equal(serial.csv, parallel.csv) {
			t.Errorf("sweep CSV differs between workers=1 and workers=%d:\n%s",
				workers, firstDiff(serial.csv, parallel.csv))
		}
		if !bytes.Equal(serial.js, parallel.js) {
			t.Errorf("sweep JSON differs between workers=1 and workers=%d:\n%s",
				workers, firstDiff(serial.js, parallel.js))
		}
		if serial.text != parallel.text {
			t.Errorf("sweep text differs between workers=1 and workers=%d:\n%s",
				workers, firstDiff([]byte(serial.text), []byte(parallel.text)))
		}
	}
}

// TestReplicatePartialFailureByteIdentity covers the Runner partial-
// failure path across pool sizes: when part of a replication's seed range
// is invalid (it runs past MaxInt64), the partial statistics AND the
// joined error text must be identical at workers=1 and workers=4 — a
// failure's position in the output may not depend on scheduling.
func TestReplicatePartialFailureByteIdentity(t *testing.T) {
	cfg := tinySweepConfig()
	cfg.Seed = math.MaxInt64 - 2 // 3 valid seeds, 2 invalid
	capture := func(workers int) (string, string) {
		t.Helper()
		stats, err := NewRunner(workers).Replicate(cfg, 5)
		if err == nil {
			t.Fatalf("Replicate(workers=%d): expected a joined error", workers)
		}
		if stats.Throughput.N != 3 || len(stats.Seeds) != 3 {
			t.Fatalf("Replicate(workers=%d): partial stats N=%d seeds=%v, want 3 completed",
				workers, stats.Throughput.N, stats.Seeds)
		}
		return fmt.Sprintf("%+v", stats), err.Error()
	}
	serialStats, serialErr := capture(1)
	parallelStats, parallelErr := capture(4)
	if serialStats != parallelStats {
		t.Errorf("partial stats differ between workers=1 and workers=4:\n%s",
			firstDiff([]byte(serialStats), []byte(parallelStats)))
	}
	if serialErr != parallelErr {
		t.Errorf("joined error differs between workers=1 and workers=4:\n%s",
			firstDiff([]byte(serialErr), []byte(parallelErr)))
	}
}

// TestSweepPartialFailureByteIdentity is the sweep-engine counterpart:
// with the last shard entirely invalid and the middle one partially so,
// every rendering and the joined error text must match across pool sizes.
func TestSweepPartialFailureByteIdentity(t *testing.T) {
	cfg := tinySweepConfig()
	cfg.Seed = math.MaxInt64 - 5 // seeds +0..5 fit; +6..11 wrap
	sc := SweepConfig{Config: cfg, Seeds: 12, ShardSize: 4}
	capture := func(workers int) (csv []byte, errText string) {
		t.Helper()
		stats, err := NewRunner(workers).Sweep(sc)
		if err == nil {
			t.Fatalf("Sweep(workers=%d): expected a joined error", workers)
		}
		if stats.Completed != 6 || stats.Failed != 6 {
			t.Fatalf("Sweep(workers=%d): completed/failed = %d/%d, want 6/6",
				workers, stats.Completed, stats.Failed)
		}
		return stats.CSV(), err.Error()
	}
	serialCSV, serialErr := capture(1)
	parallelCSV, parallelErr := capture(4)
	if !bytes.Equal(serialCSV, parallelCSV) {
		t.Errorf("partial sweep CSV differs between workers=1 and workers=4:\n%s",
			firstDiff(serialCSV, parallelCSV))
	}
	if serialErr != parallelErr {
		t.Errorf("joined error differs between workers=1 and workers=4:\n%s",
			firstDiff([]byte(serialErr), []byte(parallelErr)))
	}
}

// compareDirsBytewise asserts two directories hold the same file names
// with byte-identical contents.
func compareDirsBytewise(t *testing.T, a, b string) {
	t.Helper()
	names := func(dir string) []string {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir(%s): %v", dir, err)
		}
		out := make([]string, 0, len(entries))
		for _, e := range entries {
			out = append(out, e.Name())
		}
		sort.Strings(out)
		return out
	}
	na, nb := names(a), names(b)
	if fmt.Sprint(na) != fmt.Sprint(nb) {
		t.Fatalf("directory listings differ: %v vs %v", na, nb)
	}
	for _, name := range na {
		da, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Errorf("%s differs between workers=1 and workers=4:\n%s",
				name, firstDiff(da, db))
		}
	}
}

// firstDiff renders the first line where two byte slices diverge.
func firstDiff(a, b []byte) string {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d:\n  run 1: %s\n  run 2: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}
