package core

import (
	"strings"
	"testing"
	"time"

	"ctqosim/internal/ntier"
	"ctqosim/internal/simnet"
	"ctqosim/internal/trace"
	"ctqosim/internal/workload"
)

// shorten trims a scenario so the test suite stays fast while still
// spanning several millibottleneck periods.
func shorten(cfg Config, d time.Duration) Config {
	cfg.Duration = d
	return cfg
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := New(cfg).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// hasDirection reports whether the CTQO report contains an episode with
// the given direction.
func hasDirection(res *Result, d trace.Direction) bool {
	for _, ep := range res.Report.CTQOEpisodes() {
		if ep.Direction == d || ep.Direction == trace.DirectionBoth {
			return true
		}
	}
	return false
}

func TestConfigDefaults(t *testing.T) {
	cfg := New(Config{}).Config()
	if cfg.Seed != 1 || cfg.WarmUp != 10*time.Second || cfg.Duration != 60*time.Second {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.ThinkTime != 7*time.Second {
		t.Fatalf("think time default = %v", cfg.ThinkTime)
	}
}

func TestTierString(t *testing.T) {
	if TierWeb.String() != "web" || TierApp.String() != "app" ||
		TierDB.String() != "db" || Tier(0).String() != "unknown" {
		t.Fatal("Tier.String wrong")
	}
}

func TestSteadyBaselineNoDrops(t *testing.T) {
	// Without any millibottleneck source, the synchronous system at 75%
	// utilization drops nothing — drops need a trigger, not just load.
	res := mustRun(t, shorten(Config{
		Name: "baseline", NX: ntier.NX0, Clients: 7000,
	}, 30*time.Second))
	if res.TotalDrops != 0 {
		t.Fatalf("baseline dropped %d packets", res.TotalDrops)
	}
	if res.Throughput < 900 || res.Throughput > 1100 {
		t.Fatalf("throughput = %.0f, want ~990", res.Throughput)
	}
}

func TestFigure1MultiModalDistribution(t *testing.T) {
	res := mustRun(t, shorten(Figure1Config(7000), 90*time.Second))

	if res.Throughput < 850 || res.Throughput > 1100 {
		t.Fatalf("throughput = %.0f, want ~990 req/s", res.Throughput)
	}
	_, util := res.HighestMeanUtil()
	if util < 0.65 || util > 0.95 {
		t.Fatalf("highest util = %.2f, want ~0.75-0.85", util)
	}
	clusters := res.Histogram().ModeClusters(0.0005)
	want := map[int]bool{0: false, 3: false, 6: false}
	for _, c := range clusters {
		if _, ok := want[c]; ok {
			want[c] = true
		}
	}
	for sec, seen := range want {
		if !seen {
			t.Fatalf("missing response-time cluster at %ds (got %v)", sec, clusters)
		}
	}
}

func TestFigure1LowUtilizationStillDrops(t *testing.T) {
	// The headline of Section III: VLRT requests appear at moderate
	// utilization, far from saturation.
	res := mustRun(t, shorten(Figure1Config(4000), 90*time.Second))
	if res.VLRTCount == 0 {
		t.Fatal("no VLRT requests at WL 4000; the paper reproduces them at 43% util")
	}
	_, util := res.HighestMeanUtil()
	if util > 0.60 {
		t.Fatalf("highest util = %.2f — too high to demonstrate the moderate-load claim", util)
	}
}

func TestFigure3UpstreamCTQO(t *testing.T) {
	res := mustRun(t, Figure3Config())

	if res.DropsPerServer["steady-apache"] == 0 {
		t.Fatalf("no drops at Apache; drops = %v", res.DropsPerServer)
	}
	if res.DropsPerServer["steady-mysql"] != 0 {
		t.Fatalf("MySQL dropped packets in the sync system: %v", res.DropsPerServer)
	}
	if !hasDirection(res, trace.DirectionUpstream) {
		t.Fatalf("no upstream CTQO episode:\n%s", res.Report)
	}
	// Fig. 3(b): Apache exceeds the base MaxSysQDepth of 278 and, after
	// the spare process spawns, approaches 428; Tomcat caps at 293; MySQL
	// at the 50-connection pool.
	if peak := res.QueueSeries("steady-apache").Max(); peak <= 278 || peak > 428 {
		t.Fatalf("Apache peak queue = %.0f, want in (278, 428]", peak)
	}
	if peak := res.QueueSeries("steady-tomcat").Max(); peak > 293 {
		t.Fatalf("Tomcat peak queue = %.0f, want <= MaxSysQDepth 293", peak)
	}
	if peak := res.QueueSeries("steady-mysql").Max(); peak > 50 {
		t.Fatalf("MySQL peak queue = %.0f, want <= pool size 50", peak)
	}
	if res.VLRTCount == 0 {
		t.Fatal("no VLRT requests")
	}
}

func TestFigure5IOMillibottleneck(t *testing.T) {
	res := mustRun(t, shorten(Figure5Config(), 70*time.Second))

	if res.DropsPerServer["steady-apache"] == 0 {
		t.Fatalf("no drops at Apache; drops = %v", res.DropsPerServer)
	}
	// The analyzer must see I/O-wait millibottlenecks on MySQL.
	sawIO := false
	for _, ep := range res.Report.CTQOEpisodes() {
		if ep.Bottleneck.IOWait && ep.Bottleneck.VM == "steady-mysql" {
			sawIO = true
		}
	}
	if !sawIO {
		t.Fatalf("no I/O millibottleneck attributed to MySQL:\n%s", res.Report)
	}
	if !hasDirection(res, trace.DirectionUpstream) {
		t.Fatalf("no upstream CTQO:\n%s", res.Report)
	}
}

func TestFigure7DownstreamCTQOAtTomcat(t *testing.T) {
	res := mustRun(t, Figure7Config())

	if res.DropsPerServer["steady-nginx"] != 0 {
		t.Fatalf("the async web tier dropped packets: %v", res.DropsPerServer)
	}
	if res.DropsPerServer["steady-tomcat"] == 0 {
		t.Fatalf("no drops at Tomcat; drops = %v", res.DropsPerServer)
	}
	if !hasDirection(res, trace.DirectionDownstream) {
		t.Fatalf("no downstream CTQO episode:\n%s", res.Report)
	}
	// MaxSysQDepth(Tomcat) = 293 bounds its queue.
	if peak := res.QueueSeries("steady-tomcat").Max(); peak > 293 {
		t.Fatalf("Tomcat peak queue = %.0f, want <= 293", peak)
	}
}

func TestFigure8DownstreamCTQOAtMySQL(t *testing.T) {
	res := mustRun(t, Figure8Config())

	if res.DropsPerServer["steady-mysql"] == 0 {
		t.Fatalf("no drops at MySQL; drops = %v", res.DropsPerServer)
	}
	if res.DropsPerServer["steady-nginx"] != 0 || res.DropsPerServer["steady-xtomcat"] != 0 {
		t.Fatalf("async tiers dropped packets: %v", res.DropsPerServer)
	}
	if peak := res.QueueSeries("steady-mysql").Max(); peak > 228 {
		t.Fatalf("MySQL peak queue = %.0f, want <= MaxSysQDepth 228", peak)
	}
}

func TestFigure9BatchReleaseOverflowsMySQL(t *testing.T) {
	res := mustRun(t, Figure9Config())

	if res.DropsPerServer["steady-mysql"] == 0 {
		t.Fatalf("no drops at MySQL; drops = %v", res.DropsPerServer)
	}
	if res.DropsPerServer["steady-xtomcat"] != 0 {
		t.Fatalf("XTomcat dropped packets: %v", res.DropsPerServer)
	}
	// The lightweight queues upstream hold the backlog without dropping.
	if peak := res.QueueSeries("steady-xtomcat").Max(); peak < 300 {
		t.Fatalf("XTomcat peak queue = %.0f, want a deep backlog", peak)
	}
	if peak := res.QueueSeries("steady-mysql").Max(); peak < 200 || peak > 228 {
		t.Fatalf("MySQL peak queue = %.0f, want ~MaxSysQDepth 228", peak)
	}
}

func TestFigure10NoCTQO(t *testing.T) {
	res := mustRun(t, Figure10Config())

	if res.TotalDrops != 0 {
		t.Fatalf("NX=3 dropped %d packets under the same millibottleneck", res.TotalDrops)
	}
	if res.VLRTCount != 0 {
		t.Fatalf("NX=3 produced %d VLRT requests", res.VLRTCount)
	}
	if len(res.Report.CTQOEpisodes()) != 0 {
		t.Fatalf("CTQO reported for NX=3:\n%s", res.Report)
	}
	// The backlog is absorbed by XMySQL's lightweight queue.
	if peak := res.QueueSeries("steady-xmysql").Max(); peak < 100 || peak > 2000 {
		t.Fatalf("XMySQL peak queue = %.0f, want substantial but within LiteQDepth", peak)
	}
}

func TestFigure11NoCTQOUnderIOStall(t *testing.T) {
	res := mustRun(t, shorten(Figure11Config(), 70*time.Second))

	if res.TotalDrops != 0 || res.VLRTCount != 0 {
		t.Fatalf("NX=3 under I/O stalls: drops=%d vlrt=%d, want 0/0",
			res.TotalDrops, res.VLRTCount)
	}
	// The stall itself must be visible as I/O wait on XMySQL.
	if res.Monitor.IOWait("steady-xmysql").Max() < 0.9 {
		t.Fatal("log-flush stall not visible in the I/O-wait timeline")
	}
}

func TestNX1MySQLBottleneckUpstreamAtTomcat(t *testing.T) {
	res := mustRun(t, NX1MySQLBottleneckConfig())

	if res.DropsPerServer["steady-tomcat"] == 0 {
		t.Fatalf("no drops at Tomcat; drops = %v", res.DropsPerServer)
	}
	if res.DropsPerServer["steady-nginx"] != 0 {
		t.Fatalf("Nginx dropped packets: %v", res.DropsPerServer)
	}
	if !hasDirection(res, trace.DirectionUpstream) {
		t.Fatalf("no upstream CTQO from MySQL to Tomcat:\n%s", res.Report)
	}
}

func TestAsyncHighUtilizationNoDrops(t *testing.T) {
	res := mustRun(t, AsyncHighUtilConfig())

	_, util := res.HighestMeanUtil()
	if util < 0.78 {
		t.Fatalf("highest util = %.2f, want >= ~0.8 (the 83%% claim)", util)
	}
	if res.TotalDrops != 0 || res.VLRTCount != 0 {
		t.Fatalf("drops=%d vlrt=%d at high utilization, want 0/0",
			res.TotalDrops, res.VLRTCount)
	}
}

func TestFigure12Shape(t *testing.T) {
	points, err := RunFigure12([]int{100, 1600})
	if err != nil {
		t.Fatalf("RunFigure12: %v", err)
	}
	low, high := points[0], points[1]
	// The paper: 1159 → 374 req/s for sync; async wins at high concurrency.
	if high.Sync >= low.Sync/2 {
		t.Fatalf("sync did not collapse: %.0f -> %.0f", low.Sync, high.Sync)
	}
	if high.Async < 2.5*high.Sync {
		t.Fatalf("async (%.0f) does not clearly beat sync (%.0f) at 1600", high.Async, high.Sync)
	}
	if high.Async < 0.85*low.Async {
		t.Fatalf("async throughput not stable: %.0f -> %.0f", low.Async, high.Async)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	cfg := shorten(Figure3Config(), 30*time.Second)
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.TotalDrops != b.TotalDrops || a.VLRTCount != b.VLRTCount ||
		a.Recorder.Len() != b.Recorder.Len() {
		t.Fatalf("runs diverged: drops %d/%d vlrt %d/%d n %d/%d",
			a.TotalDrops, b.TotalDrops, a.VLRTCount, b.VLRTCount,
			a.Recorder.Len(), b.Recorder.Len())
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := shorten(Figure3Config(), 30*time.Second)
	a := mustRun(t, cfg)
	cfg.Seed = 99
	b := mustRun(t, cfg)
	if a.Recorder.Mean() == b.Recorder.Mean() && a.TotalDrops == b.TotalDrops &&
		a.Recorder.Len() == b.Recorder.Len() {
		t.Fatal("different seeds produced identical results; RNG not wired through")
	}
}

func TestSummaryRendering(t *testing.T) {
	res := mustRun(t, shorten(Figure3Config(), 30*time.Second))
	s := res.Summary()
	for _, want := range []string{"figure-3", "throughput", "VLRT", "dropped packets", "p99"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestVLRTSeriesAlignsWithBursts(t *testing.T) {
	// VLRT requests appear around burst times (15s periods), not uniformly.
	res := mustRun(t, shorten(Figure3Config(), 40*time.Second))
	series := res.VLRTSeries("steady-apache")
	var total, nonZeroWindows int
	for _, c := range series {
		total += c
		if c > 0 {
			nonZeroWindows++
		}
	}
	if total == 0 {
		t.Fatal("empty VLRT series")
	}
	// Drops concentrate in few 50ms windows around the bursts.
	if nonZeroWindows > len(series)/5 {
		t.Fatalf("VLRTs spread over %d/%d windows; expected concentration at bursts",
			nonZeroWindows, len(series))
	}
}

func TestTweakHook(t *testing.T) {
	cfg := shorten(Figure3Config(), 20*time.Second)
	cfg.Trace = false
	cfg.Tweak = func(spec *ntier.SystemSpec) {
		spec.Web.Backlog = 1024 // deep backlog swallows the burst
	}
	res := mustRun(t, cfg)
	if res.System.Web.MaxSysQDepth() != 150+1024 {
		t.Fatalf("tweak not applied: MaxSysQDepth = %d", res.System.Web.MaxSysQDepth())
	}
}

func TestGCMillibottleneckSyncVsAsync(t *testing.T) {
	// GC pauses in the app tier: the synchronous system turns them into
	// drops and VLRT requests; the asynchronous one absorbs them — the
	// paper's claim that the async fix is agnostic to the millibottleneck
	// cause (Section II, third class).
	syncRes := mustRun(t, shorten(GCMillibottleneckConfig(ntier.NX0), 40*time.Second))
	if syncRes.TotalDrops == 0 || syncRes.VLRTCount == 0 {
		t.Fatalf("sync under GC: drops=%d vlrt=%d, want CTQO",
			syncRes.TotalDrops, syncRes.VLRTCount)
	}
	if !hasDirection(syncRes, trace.DirectionUpstream) {
		t.Fatalf("no upstream CTQO from the GC stall:\n%s", syncRes.Report)
	}

	asyncRes := mustRun(t, shorten(GCMillibottleneckConfig(ntier.NX3), 40*time.Second))
	if asyncRes.TotalDrops != 0 || asyncRes.VLRTCount != 0 {
		t.Fatalf("async under GC: drops=%d vlrt=%d, want 0/0",
			asyncRes.TotalDrops, asyncRes.VLRTCount)
	}
}

func TestKernelProfileChangesBehaviour(t *testing.T) {
	// RHEL6 (the paper): drops with 3s retransmission. Modern Linux:
	// the huge backlog absorbs the burst (bufferbloat trade-off) — no
	// drops but the burst is served late from a deep queue.
	base := shorten(Figure3Config(), 30*time.Second)
	base.Trace = false

	rhel := base
	rhel.Kernel = &simnet.RHEL6
	rhelRes := mustRun(t, rhel)
	if rhelRes.TotalDrops == 0 {
		t.Fatal("RHEL6 profile produced no drops in the Fig. 3 scenario")
	}

	modern := base
	modern.Kernel = &simnet.ModernLinux
	modernRes := mustRun(t, modern)
	if modernRes.TotalDrops != 0 {
		t.Fatalf("modern profile dropped %d packets; the 4096 backlog should absorb the burst",
			modernRes.TotalDrops)
	}
	// Bufferbloat: no retransmission spikes, but the queueing delay tail
	// is fatter than an un-bottlenecked system's.
	if p99 := modernRes.Recorder.Percentile(0.99); p99 < 50*time.Millisecond {
		t.Fatalf("modern p99 = %v; deep buffers should show queueing delay", p99)
	}
	// And the overall worst case is far better than RHEL6's 3s+.
	if modernRes.Recorder.Percentile(1) >= rhelRes.Recorder.Percentile(1) {
		t.Fatal("absorbing the burst should beat dropping it on max RT")
	}
}

func TestMMPPBurstyProducesCTQO(t *testing.T) {
	// The stochastic SysBursty (burst index 100, as in the paper's
	// Section IV-A) must also produce drops in the synchronous system,
	// not just the deterministic batches.
	cfg := Config{
		Name:     "mmpp consolidation",
		NX:       ntier.NX0,
		Clients:  7000,
		Duration: 120 * time.Second,
		Consolidation: &ConsolidationSpec{
			Tier:      TierApp,
			MMPPIndex: 100,
			BatchSize: 500, // mean rate 500/15s ≈ 33 req/s
		},
	}
	res := mustRun(t, cfg)
	if res.TotalDrops == 0 || res.VLRTCount == 0 {
		t.Fatalf("MMPP bursty: drops=%d vlrt=%d, want CTQO", res.TotalDrops, res.VLRTCount)
	}
	if res.DropsPerServer["steady-apache"] == 0 {
		t.Fatalf("drops = %v, want them at Apache", res.DropsPerServer)
	}
}

func TestMMPPBurstyInfeasibleIndexFails(t *testing.T) {
	cfg := Config{
		Name:     "mmpp infeasible",
		NX:       ntier.NX0,
		Clients:  100,
		Duration: 5 * time.Second,
		Consolidation: &ConsolidationSpec{
			Tier:      TierApp,
			MMPPIndex: 1e9, // unreachable at the default timescale
		},
	}
	if _, err := New(cfg).Run(); err == nil {
		t.Fatal("infeasible MMPP index accepted")
	}
}

func TestVLRTIsClassBlind(t *testing.T) {
	// Section III: VLRT requests "only take milliseconds when executed by
	// themselves" — the tail is caused by drops at admission, so even the
	// cheapest static requests land in it. Verify the VLRT population
	// spans all interaction classes, including Static.
	res := mustRun(t, shorten(Figure1Config(7000), 60*time.Second))
	classes := res.Recorder.ByClass()
	if len(classes) != 4 {
		t.Fatalf("classes = %d, want the 4 RUBBoS interactions", len(classes))
	}
	for _, cs := range classes {
		if cs.VLRT == 0 {
			t.Errorf("class %s has no VLRT requests; the tail should be class-blind", cs.Class)
		}
		// And each class's median stays in the milliseconds.
		if cs.Mean > time.Second {
			t.Errorf("class %s mean = %v; the body of every class is fast", cs.Class, cs.Mean)
		}
	}
}

func TestEveryScenarioIsDeterministic(t *testing.T) {
	// Every registry scenario, run twice at a short duration, must be
	// byte-for-byte reproducible in its headline counters.
	for name, cfg := range Scenarios() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.Duration = 12 * time.Second
			cfg.Trace = false
			a := mustRun(t, cfg)
			b := mustRun(t, cfg)
			if a.TotalDrops != b.TotalDrops || a.VLRTCount != b.VLRTCount ||
				a.Recorder.Len() != b.Recorder.Len() {
				t.Fatalf("scenario %s diverged: drops %d/%d vlrt %d/%d n %d/%d",
					name, a.TotalDrops, b.TotalDrops, a.VLRTCount, b.VLRTCount,
					a.Recorder.Len(), b.Recorder.Len())
			}
		})
	}
}

func TestNetLatencyAddsToResponseTime(t *testing.T) {
	base := shorten(Config{Name: "lat0", Clients: 500}, 20*time.Second)
	res0 := mustRun(t, base)

	lagged := base
	lagged.Name = "lat5ms"
	lagged.NetLatency = 5 * time.Millisecond
	res5 := mustRun(t, lagged)

	// A dynamic request crosses ≥3 hops each way; 5ms per one-way hop
	// must raise the median by ~tens of ms.
	diff := res5.Recorder.Percentile(0.5) - res0.Recorder.Percentile(0.5)
	if diff < 10*time.Millisecond {
		t.Fatalf("median rose by only %v with 5ms hop latency", diff)
	}
}

func TestSubmissionMixScenario(t *testing.T) {
	// The CTQO phenomena are mix-independent: the read-write submission
	// mix under the same consolidation bursts still drops at Apache in
	// NX=0 and nowhere in NX=3.
	base := shorten(Figure3Config(), 30*time.Second)
	base.Trace = false
	base.Mix = workload.SubmissionMix()

	syncRes := mustRun(t, base)
	if syncRes.DropsPerServer["steady-apache"] == 0 {
		t.Fatalf("write mix: no drops at Apache: %v", syncRes.DropsPerServer)
	}

	asyncCfg := base
	asyncCfg.NX = ntier.NX3
	asyncRes := mustRun(t, asyncCfg)
	if asyncRes.TotalDrops != 0 {
		t.Fatalf("write mix under NX=3 dropped %d", asyncRes.TotalDrops)
	}
}
