package core

import (
	"fmt"
	"strings"
	"time"

	"ctqosim/internal/burst"
	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
	"ctqosim/internal/fault"
	"ctqosim/internal/metrics"
	"ctqosim/internal/ntier"
	"ctqosim/internal/span"
	"ctqosim/internal/trace"
	"ctqosim/internal/workload"
)

// sharedNodeName is the consolidated host of Fig. 2.
const sharedNodeName = "consolidated-host"

// Experiment is a configured, runnable reproduction scenario.
type Experiment struct {
	cfg Config
}

// New creates an experiment from cfg (missing fields take paper defaults).
func New(cfg Config) *Experiment {
	return &Experiment{cfg: cfg.withDefaults()}
}

// Config returns the defaulted configuration.
func (e *Experiment) Config() Config { return e.cfg }

// Run executes the experiment to completion and assembles the result.
func (e *Experiment) Run() (*Result, error) {
	cfg := e.cfg
	sim := des.NewSimulator(cfg.Seed)
	cluster := ntier.NewCluster(sim)

	// --- steady system spec -------------------------------------------
	spec := ntier.Spec("steady", cfg.NX)
	if cfg.AppCores > 0 {
		spec.App.Cores = cfg.AppCores
	}
	if cfg.ThreadOverride > 0 {
		for _, t := range []*ntier.TierSpec{&spec.Web, &spec.App, &spec.DB} {
			if t.Arch == ntier.Sync {
				t.Threads = cfg.ThreadOverride
			}
		}
	}
	if cfg.OverheadPerThread > 0 {
		spec.Web.OverheadPerThread = cfg.OverheadPerThread
		spec.App.OverheadPerThread = cfg.OverheadPerThread
		spec.DB.OverheadPerThread = cfg.OverheadPerThread
	}
	if cfg.Kernel != nil {
		for _, t := range []*ntier.TierSpec{&spec.Web, &spec.App, &spec.DB} {
			if t.Arch == ntier.Sync {
				t.Backlog = cfg.Kernel.Backlog
			}
		}
	}

	var consolidation ConsolidationSpec
	if cfg.Consolidation != nil {
		consolidation = cfg.Consolidation.withDefaults()
		switch consolidation.Tier {
		case TierWeb:
			spec.Web.Node = sharedNodeName
		case TierDB:
			spec.DB.Node = sharedNodeName
		case TierApp:
			fallthrough
		default:
			spec.App.Node = sharedNodeName
		}
	}
	if cfg.Tweak != nil {
		cfg.Tweak(&spec)
	}

	steady := cluster.Build(spec)
	if cfg.Kernel != nil {
		cfg.Kernel.Apply(steady.Transport)
	}
	if cfg.RTO > 0 {
		steady.Transport.RTO = cfg.RTO
	}
	if cfg.MaxAttempts > 0 {
		steady.Transport.MaxAttempts = cfg.MaxAttempts
	}
	if cfg.Backoff {
		steady.Transport.Backoff = true
	}
	if cfg.NetLatency > 0 {
		steady.Transport.Latency = cfg.NetLatency
	}

	// --- monitoring ----------------------------------------------------
	mon := metrics.NewMonitor(sim, cfg.SampleInterval)
	if cfg.MonitorCap > 0 {
		mon.LimitSamples(cfg.MonitorCap)
	}
	for _, srv := range steady.Servers() {
		mon.WatchServer(srv)
	}
	for i, vm := range steady.VMs() {
		mon.WatchVM(steady.TierNames()[i], vm)
	}

	var log *trace.Log
	if cfg.Trace {
		if cfg.TraceReservoir > 0 {
			log = trace.NewCappedLog(sim, cfg.Seed, cfg.TraceReservoir)
		} else {
			log = trace.NewLog(sim)
		}
		steady.Transport.Listener = log
	}

	var tracer *span.Tracer
	if cfg.Spans {
		tracer = span.NewTracer(sim.Now, span.TracerConfig{
			Seed:          cfg.Seed,
			TailThreshold: cfg.SpanTailThreshold,
			Reservoir:     cfg.SpanReservoir,
		})
	}

	// --- steady workload -----------------------------------------------
	rec := metrics.NewRecorder()
	rec.WarmUp = cfg.WarmUp
	rec.Retention = cfg.Retention
	rec.HDR = cfg.HDR
	// Bounded mode buckets VLRTs at the monitor interval, which is what
	// Result.VLRTSeries asks for.
	rec.SeriesWindow = cfg.SampleInterval
	cl := workload.NewClosedLoop(sim, steady.Frontend(), workload.ClosedLoopConfig{
		Clients:   cfg.Clients,
		ThinkTime: cfg.ThinkTime,
		Mix:       cfg.Mix,
		Burst:     cfg.Burst,
		Sink:      rec,
		Tracer:    tracer,
	})
	cl.Start()

	// --- consolidation co-tenant ----------------------------------------
	var bursty *ntier.System
	if cfg.Consolidation != nil {
		bursty = cluster.Build(ntier.BurstySpec("bursty", "mysql", sharedNodeName))
		// The shared core time-slices among runnable threads, so the
		// co-tenant's batch effectively stops the steady tier (§IV-A).
		bursty.DBVM.Node().SetPolicy(cpu.JobProportional)
		mon.WatchVM(bursty.DB.Name(), bursty.DBVM)

		if consolidation.MMPPIndex > 1 {
			if err := startMMPPBursty(sim, bursty, consolidation); err != nil {
				return nil, fmt.Errorf("%s: %w", cfg.Name, err)
			}
		} else {
			// Each train element is its own periodic batch, offset by the
			// train spacing; all share the burst interval. The first train
			// starts one interval in (or at BatchOffset if given).
			base := consolidation.BatchOffset
			if base <= 0 {
				base = consolidation.BatchInterval
			}
			for k := 0; k < consolidation.TrainLength; k++ {
				batch := workload.NewBatch(sim, bursty.Frontend(), workload.BatchConfig{
					Size:     consolidation.BatchSize,
					Interval: consolidation.BatchInterval,
					Offset:   base + time.Duration(k)*consolidation.TrainSpacing,
					Class:    *consolidation.BatchClass,
				})
				batch.Start()
			}
		}
	}

	// --- I/O millibottleneck ---------------------------------------------
	if cfg.LogFlush != nil {
		lf := cfg.LogFlush.withDefaults()
		vm := steady.DBVM
		switch lf.Tier {
		case TierWeb:
			vm = steady.WebVM
		case TierApp:
			vm = steady.AppVM
		case TierDB:
			// vm already defaults to the DB tier above.
		}
		flush, err := fault.NewLogFlush(sim, vm, lf.Interval, lf.Duration)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		flush.Start()
	}

	// --- GC millibottleneck -----------------------------------------------
	if cfg.GCPause != nil {
		gc := cfg.GCPause.withDefaults()
		vm, srv := steady.AppVM, steady.App
		switch gc.Tier {
		case TierWeb:
			vm, srv = steady.WebVM, steady.Web
		case TierApp:
			// vm, srv already default to the app tier above.
		case TierDB:
			vm, srv = steady.DBVM, steady.DB
		}
		pauser, err := fault.NewGCPause(sim, vm, gc.Interval, gc.Base, gc.PerRequest,
			srv.InService)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		pauser.Start()
	}

	mon.Start()

	// --- scenario event script --------------------------------------------
	if cfg.Script != nil {
		cfg.Script(&RunHandles{
			Sim:     sim,
			Steady:  steady,
			Bursty:  bursty,
			Clients: cl,
		})
	}

	// --- run -------------------------------------------------------------
	var prof *des.Profile
	if cfg.SimStats {
		prof = sim.StartProfile()
	}
	end := cfg.WarmUp + cfg.Duration
	if err := sim.Run(end); err != nil && err != des.ErrHorizon {
		return nil, fmt.Errorf("simulate %s: %w", cfg.Name, err)
	}

	// --- assemble ----------------------------------------------------------
	res := &Result{
		Config:         cfg,
		System:         steady,
		Bursty:         bursty,
		Recorder:       rec,
		Monitor:        mon,
		TraceLog:       log,
		End:            end,
		Throughput:     rec.Throughput(end),
		TotalDrops:     steady.TotalDrops(),
		DropsPerServer: make(map[string]int64),
		VLRTCount:      rec.VLRTCount(),
	}
	if prof != nil {
		st := prof.Stats()
		res.SimStats = &st
	}
	for _, name := range steady.Transport.Destinations() {
		if d := steady.Transport.Stats(name).Dropped; d > 0 {
			res.DropsPerServer[name] = d
		}
	}
	if cfg.Trace {
		analyzer := &trace.Analyzer{
			Tiers:    steady.TierNames(),
			TierOfVM: tierOfVM(steady),
		}
		res.Report = analyzer.Analyze(mon, steady.TierNames(), log)
	}
	if tracer != nil {
		res.Spans = tracer
		res.SpanBreakdown = tracer.Breakdown()
	}
	return res, nil
}

// startMMPPBursty drives SysBursty with a Markov-modulated Poisson
// process: long cold stretches at a trickle, rare hot epochs whose rate is
// high enough that the co-tenant's CPU backlog saturates the shared core —
// the stochastic original of the deterministic batches.
func startMMPPBursty(sim *des.Simulator, bursty *ntier.System, spec ConsolidationSpec) error {
	meanRate := float64(spec.BatchSize) / spec.BatchInterval.Seconds()
	process, err := burst.Fit(meanRate, spec.MMPPIndex,
		0.01 /* hot fraction */, spec.BatchInterval)
	if err != nil {
		return fmt.Errorf("mmpp bursty: %w", err)
	}
	mix := workload.NewMix().Add(*spec.BatchClass, 1)
	gen, err := burst.NewGenerator(sim, bursty.Frontend(), process, mix, nil)
	if err != nil {
		return fmt.Errorf("mmpp bursty: %w", err)
	}
	gen.Start()
	return nil
}

// tierOfVM maps VM names to tier names; the monitor registers VMs under
// their tier names, so the map is the identity over the tier set.
func tierOfVM(sys *ntier.System) map[string]string {
	out := make(map[string]string, 3)
	for _, name := range sys.TierNames() {
		out[name] = name
	}
	return out
}

// Summary renders the headline numbers of a result.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s, WL %d]\n", r.Config.Name, r.Config.NX, r.Config.Clients)
	fmt.Fprintf(&b, "  throughput: %.0f req/s over %v\n",
		r.Throughput, r.Config.Duration)
	name, util := r.HighestMeanUtil()
	fmt.Fprintf(&b, "  highest avg CPU util: %.0f%% (%s)\n", util*100, name)
	fmt.Fprintf(&b, "  requests: %d, VLRT (>3s): %d, failed: %d\n",
		r.Recorder.Len(), r.VLRTCount, r.Recorder.FailedCount())
	fmt.Fprintf(&b, "  dropped packets: %d", r.TotalDrops)
	if len(r.DropsPerServer) > 0 {
		parts := make([]string, 0, len(r.DropsPerServer))
		for _, tier := range r.System.TierNames() {
			if d, ok := r.DropsPerServer[tier]; ok {
				parts = append(parts, fmt.Sprintf("%s=%d", tier, d))
			}
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  p50=%v p99=%v p99.9=%v max=%v\n",
		r.Recorder.Percentile(0.50).Round(time.Millisecond),
		r.Recorder.Percentile(0.99).Round(time.Millisecond),
		r.Recorder.Percentile(0.999).Round(time.Millisecond),
		r.Recorder.Percentile(1).Round(time.Millisecond))
	if bd := r.SpanBreakdown; bd != nil && bd.VLRT.Count > 0 {
		fmt.Fprintf(&b, "  VLRT time: %.0f%% waiting (%.0f%% retransmission gaps, "+
			"%.0f%% queue/pool wait), %.0f%% service — %d tail exemplars kept\n",
			100*bd.VLRT.WaitShare(),
			100*bd.VLRT.Share(span.KindRetransmit),
			100*(bd.VLRT.Share(span.KindQueueWait)+bd.VLRT.Share(span.KindPoolWait)),
			100*bd.VLRT.Share(span.KindService),
			len(r.Spans.TailExemplars()))
	}
	return b.String()
}
