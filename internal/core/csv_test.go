package core

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestWriteCSVs(t *testing.T) {
	res := mustRun(t, shorten(Figure3Config(), 20*time.Second))
	dir := t.TempDir()
	if err := WriteCSVs(res, dir); err != nil {
		t.Fatalf("WriteCSVs: %v", err)
	}

	for _, name := range []string{"queues.csv", "util.csv", "iowait.csv", "vlrt.csv", "histogram.csv"} {
		rows := readCSV(t, filepath.Join(dir, name))
		if len(rows) < 2 {
			t.Fatalf("%s has %d rows, want header + data", name, len(rows))
		}
	}

	// queues.csv: header has the three tiers; rows align with samples.
	rows := readCSV(t, filepath.Join(dir, "queues.csv"))
	if got := len(rows[0]); got != 4 {
		t.Fatalf("queues.csv header = %v", rows[0])
	}
	wantRows := len(res.Monitor.Queue("steady-apache").Values) + 1
	if len(rows) != wantRows {
		t.Fatalf("queues.csv rows = %d, want %d", len(rows), wantRows)
	}

	// util.csv includes the bursty co-tenant column.
	rows = readCSV(t, filepath.Join(dir, "util.csv"))
	if got := len(rows[0]); got != 5 {
		t.Fatalf("util.csv header = %v", rows[0])
	}
	foundBursty := false
	for _, col := range rows[0] {
		if col == "bursty-mysql" {
			foundBursty = true
		}
	}
	if !foundBursty {
		t.Fatalf("util.csv missing bursty co-tenant column: %v", rows[0])
	}

	// histogram.csv frequencies sum to the recorded request count.
	rows = readCSV(t, filepath.Join(dir, "histogram.csv"))
	var sum int64
	for _, row := range rows[1:] {
		n, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			t.Fatalf("histogram.csv value %q: %v", row[1], err)
		}
		sum += n
	}
	if sum != int64(res.Recorder.Len()) {
		t.Fatalf("histogram sum = %d, want %d", sum, res.Recorder.Len())
	}
}

func TestWriteCSVsBadDir(t *testing.T) {
	res := mustRun(t, shorten(Config{Name: "tiny", Clients: 10, WarmUp: time.Second}, 2*time.Second))
	// A file in place of the directory must fail cleanly.
	dir := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSVs(res, dir); err == nil {
		t.Fatal("WriteCSVs into a file path succeeded, want error")
	}
}

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return rows
}

// TestEndToEndInvariants checks cross-cutting conservation laws on a run
// that includes drops, retransmissions and all three tiers.
func TestEndToEndInvariants(t *testing.T) {
	res := mustRun(t, shorten(Figure3Config(), 30*time.Second))

	// Every VLRT request carries at least one recorded drop, and the drop
	// attribution matches a real tier.
	tierSet := make(map[string]bool)
	for _, tier := range res.System.TierNames() {
		tierSet[tier] = true
	}
	for _, req := range res.Recorder.Requests() {
		if req.VLRT() && len(req.Drops) == 0 {
			t.Fatalf("request %d is VLRT with no recorded drop", req.ID)
		}
		for _, d := range req.Drops {
			if !tierSet[d] {
				t.Fatalf("request %d dropped at unknown server %q", req.ID, d)
			}
		}
	}

	// Per-server transport drops are an upper bound for the recorder's
	// per-request attribution (warm-up requests are excluded there).
	for _, sd := range res.Recorder.DropsByServer() {
		if int64(sd.Drops) > res.DropsPerServer[sd.Server] {
			t.Fatalf("%s: recorder sees %d drops, transport only %d",
				sd.Server, sd.Drops, res.DropsPerServer[sd.Server])
		}
	}

	// Server accounting balances at quiescence is not guaranteed mid-run,
	// but accepted >= completed always holds.
	for _, srv := range res.System.Servers() {
		st := srv.Stats()
		if st.Completed+st.Failed > st.Accepted {
			t.Fatalf("%s: completed+failed %d > accepted %d",
				srv.Name(), st.Completed+st.Failed, st.Accepted)
		}
	}
}

func TestWriteSVGs(t *testing.T) {
	res := mustRun(t, shorten(Figure3Config(), 20*time.Second))
	dir := t.TempDir()
	if err := WriteSVGs(res, dir); err != nil {
		t.Fatalf("WriteSVGs: %v", err)
	}
	for _, name := range []string{"util.svg", "queues.svg", "vlrt.svg", "histogram.svg", "iowait.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if len(data) < 500 {
			t.Fatalf("%s suspiciously small (%d bytes)", name, len(data))
		}
		s := string(data)
		if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(s, "</svg>") {
			t.Fatalf("%s is not an SVG document", name)
		}
	}
	// The queue chart carries the MaxSysQDepth reference lines.
	queues, err := os.ReadFile(filepath.Join(dir, "queues.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(queues), "MaxSysQDepth=278") {
		t.Fatal("queues.svg missing the 278 reference line")
	}
}
