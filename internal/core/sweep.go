package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"ctqosim/internal/metrics"
)

// This file is the big-n replication engine: hundreds of seeds partitioned
// into shards, each shard run serially on one Runner pool slot and folded
// into a mergeable accumulator, shards merged in shard order. Tail
// quantities of per-run metrics — the p99.9 of VLRT counts the paper's
// phenomenon lives in — need this scale; a handful of replications
// (Runner.Replicate) estimates means, not tails.
//
// The determinism contract (DESIGN.md §9) extends to sweeps: for a fixed
// SweepConfig (including shard size), the report — text, CSV and JSON —
// is byte-identical for every worker count, because shard partitioning
// depends only on (seeds, shard size) and merging happens in shard order.

// DefaultSweepShardSize is the seeds-per-shard default. Small enough to
// keep every worker busy on hundred-seed sweeps, large enough that shard
// bookkeeping is noise next to a single DES run.
const DefaultSweepShardSize = 25

// SweepConfig describes a sharded seed sweep.
type SweepConfig struct {
	// Config is the scenario; its Seed is the sweep's first seed.
	Config Config
	// Seeds is the number of replications (seeds Seed..Seed+Seeds-1);
	// values below 1 clamp to 1.
	Seeds int
	// ShardSize is seeds per shard; 0 defaults to DefaultSweepShardSize.
	// The report is byte-identical across worker counts for any fixed
	// shard size.
	ShardSize int
}

// metricAccum is the mergeable per-metric accumulator: moment sums for
// the mean and CI, plus the exact per-run values (in seed order) for tail
// quantiles. Merging finished MeanCIs would be lossy — a half-width
// cannot be reconstructed from two half-widths — so shards carry moments
// and samples instead, and statistics are computed once, after the merge.
type metricAccum struct {
	n          int
	sum, sumSq float64
	values     []float64
}

// observe folds one per-run value in.
func (a *metricAccum) observe(x float64) {
	a.n++
	a.sum += x
	a.sumSq += x * x
	a.values = append(a.values, x)
}

// merge folds another accumulator in; with shards merged in shard order
// the moment sums and the value order are reproducible.
func (a *metricAccum) merge(b *metricAccum) {
	a.n += b.n
	a.sum += b.sum
	a.sumSq += b.sumSq
	a.values = append(a.values, b.values...)
}

// ci computes the 95% Student's-t interval from the merged moments,
// sharing tValue95 with meanCI (and agreeing with it to float rounding;
// see TestMetricAccumMatchesMeanCI).
func (a *metricAccum) ci() MeanCI {
	if a.n == 0 {
		return MeanCI{}
	}
	mean := a.sum / float64(a.n)
	if a.n == 1 {
		return MeanCI{Mean: mean, N: 1}
	}
	variance := (a.sumSq - a.sum*a.sum/float64(a.n)) / float64(a.n-1)
	if variance < 0 {
		variance = 0 // float rounding on near-constant samples
	}
	stderr := math.Sqrt(variance / float64(a.n))
	return MeanCI{Mean: mean, HalfWidth: tValue95(a.n-1) * stderr, N: a.n}
}

// summary sorts a copy of the merged values and reads the nearest-rank
// quantiles (rank ceil(p*n), matching metrics.Recorder.Percentile).
func (a *metricAccum) summary() MetricSweep {
	out := MetricSweep{N: a.n}
	ci := a.ci()
	out.Mean, out.CI95 = ci.Mean, ci.HalfWidth
	if a.n == 0 {
		return out
	}
	sorted := make([]float64, len(a.values))
	copy(sorted, a.values)
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		return sorted[metrics.NearestRank(p, len(sorted))]
	}
	out.P50, out.P90, out.P99, out.P999 = rank(0.50), rank(0.90), rank(0.99), rank(0.999)
	out.Min, out.Max = sorted[0], sorted[len(sorted)-1]
	return out
}

// shardAccum aggregates one shard's completed runs across all metrics.
type shardAccum struct {
	completed              int
	tput, vlrt, drops, p99 metricAccum
}

// observe folds one completed run in.
func (s *shardAccum) observe(res *Result) {
	s.completed++
	s.tput.observe(res.Throughput)
	s.vlrt.observe(float64(res.VLRTCount))
	s.drops.observe(float64(res.TotalDrops))
	s.p99.observe(float64(res.Recorder.Percentile(0.99).Milliseconds()))
}

// merge folds another shard in (callers merge in shard order).
func (s *shardAccum) merge(b *shardAccum) {
	s.completed += b.completed
	s.tput.merge(&b.tput)
	s.vlrt.merge(&b.vlrt)
	s.drops.merge(&b.drops)
	s.p99.merge(&b.p99)
}

// MetricSweep summarizes one per-run metric's distribution over a sweep:
// the mean with a 95% CI, and the nearest-rank tail quantiles of the
// per-run values.
type MetricSweep struct {
	// N is the number of completed runs.
	N int `json:"n"`
	// Mean is the cross-run sample mean.
	Mean float64 `json:"mean"`
	// CI95 is the 95% Student's-t half-width around Mean.
	CI95 float64 `json:"ci95"`
	// P50..P999 are nearest-rank quantiles of the per-run values.
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	// Min and Max bound the per-run values.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// MeanCI returns the mean±CI view of the metric.
func (m MetricSweep) MeanCI() MeanCI {
	return MeanCI{Mean: m.Mean, HalfWidth: m.CI95, N: m.N}
}

// SweepStats is the report of a sharded seed sweep.
type SweepStats struct {
	// Scenario is the swept configuration's name.
	Scenario string `json:"scenario"`
	// SeedStart is the first seed; the sweep covers
	// SeedStart..SeedStart+Requested-1.
	SeedStart int64 `json:"seedStart"`
	// Requested is the number of seeds asked for.
	Requested int `json:"requested"`
	// Completed is the number of runs that finished; Failed the rest
	// (failed runs are detailed in the error returned alongside).
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// ShardSize and Shards record the partition the report was merged
	// under (the report is worker-count-independent for a fixed partition).
	ShardSize int `json:"shardSize"`
	Shards    int `json:"shards"`

	// Throughput is req/s per run.
	Throughput MetricSweep `json:"throughput"`
	// VLRT is VLRT requests per run — P999 here is the paper-motivating
	// p99.9 of per-run VLRT counts.
	VLRT MetricSweep `json:"vlrtPerRun"`
	// Drops is dropped packets per run.
	Drops MetricSweep `json:"dropsPerRun"`
	// P99Millis is each run's p99 response time in milliseconds.
	P99Millis MetricSweep `json:"p99Millis"`
}

// RunSweep runs a sharded seed sweep on GOMAXPROCS workers; use
// Runner.Sweep to pick the pool size (the report is byte-identical
// either way).
func RunSweep(sc SweepConfig) (*SweepStats, error) {
	return NewRunner(0).Sweep(sc)
}

// Sweep partitions the seed range into shards, fans the shards across
// this runner's pool, and merges the shard accumulators in shard order.
//
// Sweep follows the partial-results contract: a failed seed contributes a
// "seed N: ..." entry to the joined error (grouped by shard, shards in
// order, seeds in order within a shard) without discarding the rest of
// the sweep; SweepStats counts it under Failed. Seeds that would wrap
// past MaxInt64 never run and are reported the same way.
func (r *Runner) Sweep(sc SweepConfig) (*SweepStats, error) {
	cfg := sc.Config.withDefaults()
	n := sc.Seeds
	if n < 1 {
		n = 1
	}
	shardSize := sc.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultSweepShardSize
	}
	numShards := (n + shardSize - 1) / shardSize
	valid := validSeedSpan(cfg.Seed, n)

	shards := make([]*shardAccum, numShards)
	err := r.Do(numShards, func(s int) error {
		acc := &shardAccum{}
		shards[s] = acc
		var errs []error
		hi := min((s+1)*shardSize, n)
		for i := s * shardSize; i < hi; i++ {
			if i >= valid {
				errs = append(errs, seedOverflowError(i, cfg.Seed))
				continue
			}
			run := cfg
			run.Seed = cfg.Seed + int64(i)
			res, err := New(run).Run()
			if err != nil {
				errs = append(errs, fmt.Errorf("seed %d: %w", run.Seed, err))
				continue
			}
			acc.observe(res)
		}
		return errors.Join(errs...)
	})

	total := &shardAccum{}
	for _, sh := range shards {
		total.merge(sh)
	}
	stats := &SweepStats{
		Scenario:   cfg.Name,
		SeedStart:  cfg.Seed,
		Requested:  n,
		Completed:  total.completed,
		Failed:     n - total.completed,
		ShardSize:  shardSize,
		Shards:     numShards,
		Throughput: total.tput.summary(),
		VLRT:       total.vlrt.summary(),
		Drops:      total.drops.summary(),
		P99Millis:  total.p99.summary(),
	}
	if err != nil {
		return stats, fmt.Errorf("sweep: %w", err)
	}
	return stats, nil
}

// metricRows pairs each metric with its CSV/table label, in fixed order.
func (s *SweepStats) metricRows() []struct {
	label string
	m     MetricSweep
} {
	return []struct {
		label string
		m     MetricSweep
	}{
		{"throughput_req_s", s.Throughput},
		{"vlrt_per_run", s.VLRT},
		{"drops_per_run", s.Drops},
		{"p99_ms", s.P99Millis},
	}
}

// CSV renders the per-metric report as CSV: one row per metric with the
// mean, CI half-width and nearest-rank quantiles of the per-run values.
// %g keeps full float precision, so the bytes are a determinism witness.
func (s *SweepStats) CSV() []byte {
	var b strings.Builder
	b.WriteString("metric,n,mean,ci95,p50,p90,p99,p999,min,max\n")
	for _, row := range s.metricRows() {
		m := row.m
		fmt.Fprintf(&b, "%s,%d,%g,%g,%g,%g,%g,%g,%g,%g\n",
			row.label, m.N, m.Mean, m.CI95, m.P50, m.P90, m.P99, m.P999, m.Min, m.Max)
	}
	return []byte(b.String())
}

// JSON renders the report as indented JSON.
func (s *SweepStats) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// String renders the human-readable report.
func (s *SweepStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: seeds %d..%d (%d requested, %d completed, %d failed; %d shards × %d)\n",
		s.Scenario, s.SeedStart, s.SeedStart+int64(s.Requested)-1,
		s.Requested, s.Completed, s.Failed, s.Shards, s.ShardSize)
	fmt.Fprintf(&b, "  %-20s %-24s %10s %10s %10s %10s\n",
		"metric", "mean ± 95% CI", "p50", "p99", "p99.9", "max")
	labels := []string{"throughput [req/s]", "VLRT per run", "drops per run", "p99 [ms]"}
	for i, row := range s.metricRows() {
		m := row.m
		fmt.Fprintf(&b, "  %-20s %-24s %10.6g %10.6g %10.6g %10.6g\n",
			labels[i], m.MeanCI().String(), m.P50, m.P99, m.P999, m.Max)
	}
	return b.String()
}
