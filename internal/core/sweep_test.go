package core

import (
	"math"
	"strings"
	"testing"
	"time"
)

// tinySweepConfig is a sub-millisecond scenario for big-n sweep tests.
func tinySweepConfig() Config {
	return Config{Name: "tiny-sweep", Clients: 30, WarmUp: time.Second, Duration: 2 * time.Second}
}

func TestSweepBasics(t *testing.T) {
	stats, err := RunSweep(SweepConfig{Config: tinySweepConfig(), Seeds: 60, ShardSize: 16})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if stats.Requested != 60 || stats.Completed != 60 || stats.Failed != 0 {
		t.Fatalf("requested/completed/failed = %d/%d/%d", stats.Requested, stats.Completed, stats.Failed)
	}
	if stats.SeedStart != 1 {
		t.Fatalf("seedStart = %d, want the defaulted 1", stats.SeedStart)
	}
	if stats.Shards != 4 || stats.ShardSize != 16 {
		t.Fatalf("shards = %d × %d, want 4 × 16", stats.Shards, stats.ShardSize)
	}
	if stats.Throughput.N != 60 || stats.Throughput.Mean <= 0 {
		t.Fatalf("throughput = %+v", stats.Throughput)
	}
	for _, m := range []MetricSweep{stats.Throughput, stats.VLRT, stats.Drops, stats.P99Millis} {
		if m.Min > m.P50 || m.P50 > m.P90 || m.P90 > m.P99 || m.P99 > m.P999 || m.P999 > m.Max {
			t.Fatalf("quantiles out of order: %+v", m)
		}
		ci := m.MeanCI()
		if ci.Low() > ci.Mean || ci.High() < ci.Mean {
			t.Fatalf("CI does not bracket the mean: %+v", m)
		}
	}
}

func TestSweepClampsAndDefaults(t *testing.T) {
	stats, err := RunSweep(SweepConfig{Config: tinySweepConfig()})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if stats.Requested != 1 || stats.Completed != 1 {
		t.Fatalf("zero Seeds should clamp to 1, got %d/%d", stats.Requested, stats.Completed)
	}
	if stats.ShardSize != DefaultSweepShardSize {
		t.Fatalf("shardSize = %d, want default %d", stats.ShardSize, DefaultSweepShardSize)
	}
	if stats.Throughput.CI95 != 0 {
		t.Fatalf("single-run CI half-width = %v, want 0", stats.Throughput.CI95)
	}
}

// TestSweepMatchesReplicate cross-checks the two replication engines: over
// the same seed range, the sweep's moment-accumulated mean±CI must equal
// Runner.Replicate's slice-based meanCI to float tolerance, and the
// completed-seed counts must agree.
func TestSweepMatchesReplicate(t *testing.T) {
	cfg := tinySweepConfig()
	const n = 40
	stats, err := RunSweep(SweepConfig{Config: cfg, Seeds: n, ShardSize: 7})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	rep, err := RunReplications(cfg, n)
	if err != nil {
		t.Fatalf("RunReplications: %v", err)
	}
	pairs := []struct {
		name  string
		sweep MetricSweep
		repl  MeanCI
	}{
		{"throughput", stats.Throughput, rep.Throughput},
		{"vlrt", stats.VLRT, rep.VLRT},
		{"drops", stats.Drops, rep.Drops},
		{"p99ms", stats.P99Millis, rep.P99Millis},
	}
	for _, p := range pairs {
		if p.sweep.N != p.repl.N {
			t.Errorf("%s: N %d vs %d", p.name, p.sweep.N, p.repl.N)
		}
		if relDiff(p.sweep.Mean, p.repl.Mean) > 1e-9 {
			t.Errorf("%s: mean %v vs %v", p.name, p.sweep.Mean, p.repl.Mean)
		}
		if relDiff(p.sweep.CI95, p.repl.HalfWidth) > 1e-6 {
			t.Errorf("%s: ci %v vs %v", p.name, p.sweep.CI95, p.repl.HalfWidth)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestMetricAccumMatchesMeanCI pins the moment-based CI to the fixed
// slice-based meanCI, including after an arbitrary shard split: merging
// accumulators must lose nothing (the reason finished MeanCIs are never
// merged — they can't satisfy this test).
func TestMetricAccumMatchesMeanCI(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2.5, 6, 5.25, 3.5, 8.75, 9.5}
	want := meanCI(vals)
	for _, split := range []int{0, 1, 5, len(vals)} {
		var a, b, merged metricAccum
		for _, v := range vals[:split] {
			a.observe(v)
		}
		for _, v := range vals[split:] {
			b.observe(v)
		}
		merged.merge(&a)
		merged.merge(&b)
		got := merged.ci()
		if got.N != want.N || relDiff(got.Mean, want.Mean) > 1e-12 ||
			relDiff(got.HalfWidth, want.HalfWidth) > 1e-9 {
			t.Errorf("split %d: moments CI %+v, meanCI %+v", split, got, want)
		}
	}
	var empty metricAccum
	if empty.ci() != (MeanCI{}) {
		t.Error("empty accumulator should yield a zero MeanCI")
	}
	var constant metricAccum
	for i := 0; i < 4; i++ {
		constant.observe(7)
	}
	if ci := constant.ci(); ci.HalfWidth != 0 {
		t.Errorf("constant samples half-width = %v, want 0", ci.HalfWidth)
	}
}

// TestSweepSeedOverflowPartial: a sweep whose seed range runs past
// MaxInt64 completes the valid prefix and reports each wrapping seed in
// the joined error — the shard holding them is partially (or entirely)
// invalid, and the rest of the sweep is unaffected.
func TestSweepSeedOverflowPartial(t *testing.T) {
	cfg := tinySweepConfig()
	cfg.Seed = math.MaxInt64 - 6 // seeds +0..6 fit, +7..9 wrap
	stats, err := RunSweep(SweepConfig{Config: cfg, Seeds: 10, ShardSize: 4})
	if err == nil {
		t.Fatal("overflowing sweep returned nil error")
	}
	if got := strings.Count(err.Error(), "overflows int64"); got != 3 {
		t.Fatalf("error mentions %d overflow seeds, want 3:\n%v", got, err)
	}
	if stats.Completed != 7 || stats.Failed != 3 {
		t.Fatalf("completed/failed = %d/%d, want 7/3", stats.Completed, stats.Failed)
	}
	if stats.Throughput.N != 7 {
		t.Fatalf("partial stats N = %d, want 7", stats.Throughput.N)
	}
}

// TestSweepReportIncludesVLRTTail pins the report surface the sweep
// exists for: the p99.9 of per-run VLRT counts must be present (and
// coherent) in all three renderings.
func TestSweepReportIncludesVLRTTail(t *testing.T) {
	stats, err := RunSweep(SweepConfig{Config: tinySweepConfig(), Seeds: 30})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if stats.VLRT.P999 < stats.VLRT.P50 || stats.VLRT.P999 > stats.VLRT.Max {
		t.Fatalf("VLRT p99.9 = %v outside [p50=%v, max=%v]", stats.VLRT.P999, stats.VLRT.P50, stats.VLRT.Max)
	}
	csv := string(stats.CSV())
	if !strings.Contains(csv, "p999") || !strings.Contains(csv, "vlrt_per_run") {
		t.Fatalf("CSV missing the VLRT p99.9 column:\n%s", csv)
	}
	js, err := stats.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !strings.Contains(string(js), `"vlrtPerRun"`) || !strings.Contains(string(js), `"p999"`) {
		t.Fatalf("JSON missing vlrtPerRun.p999:\n%s", js)
	}
	if !strings.Contains(stats.String(), "p99.9") {
		t.Fatalf("text report missing p99.9 column:\n%s", stats)
	}
}
