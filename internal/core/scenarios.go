package core

import (
	"fmt"
	"time"

	"ctqosim/internal/ntier"
)

// Scenario presets, one per paper figure. Durations are chosen so each run
// spans many millibottleneck periods; Fig. 1 runs longer to populate the
// histogram tail.

// Figure1Config reproduces one panel of Fig. 1: the multi-modal
// response-time histogram of the fully synchronous system under VM
// consolidation, at the given client population (the paper uses 4000,
// 7000 and 8000).
func Figure1Config(clients int) Config {
	return Config{
		Name:     fmt.Sprintf("figure-1 WL %d", clients),
		NX:       ntier.NX0,
		Clients:  clients,
		Duration: 180 * time.Second,
		// Burst trains model the clustered bursts of the RUBBoS burst
		// index 100: sub-bursts 3s apart re-drop retransmitted packets,
		// which is what populates the 6s and 9s histogram clusters. The
		// 500-request sub-burst (~0.5s millibottleneck) overflows
		// MaxSysQDepth(Apache)=278 even at the WL 4000 arrival rate.
		Consolidation: &ConsolidationSpec{
			Tier:        TierApp,
			BatchSize:   500,
			TrainLength: 3,
		},
	}
}

// Figure3Config reproduces Fig. 3: upstream CTQO from CPU millibottlenecks
// in SysSteady-Tomcat, co-located with SysBursty-MySQL; drops at Apache.
func Figure3Config() Config {
	return Config{
		Name:     "figure-3 VM consolidation, upstream CTQO",
		NX:       ntier.NX0,
		Clients:  7000,
		Duration: 60 * time.Second,
		// A two-burst train reproduces Fig. 3's irregular burst pattern
		// (2, 5, 9, 15s) and sustains Apache saturation long enough for
		// the spare httpd process to raise MaxSysQDepth to 428 — the
		// second queue plateau of Fig. 3(b).
		Consolidation: &ConsolidationSpec{Tier: TierApp, TrainLength: 2},
		Trace:         true,
		// Span traces turn the aggregate story into per-request causality:
		// the -breakdown table attributes the VLRT tail to retransmission
		// gaps and queue waits, and the 6s exemplars show two 3s RTO spans.
		Spans: true,
	}
}

// Figure5Config reproduces Fig. 5: upstream CTQO from I/O millibottlenecks
// (collectl log flush every 30s in MySQL), with the app tier scaled to 4
// cores so the app tier is no longer the bottleneck.
func Figure5Config() Config {
	return Config{
		Name:     "figure-5 log flush, upstream CTQO",
		NX:       ntier.NX0,
		Clients:  7000,
		Duration: 90 * time.Second,
		AppCores: 4,
		LogFlush: &LogFlushSpec{Tier: TierDB},
		Trace:    true,
	}
}

// Figure7Config reproduces Fig. 7: NX=1 (Nginx-Tomcat-MySQL) with
// millibottlenecks in Tomcat — no upstream CTQO at Nginx, but downstream
// CTQO and drops at Tomcat.
func Figure7Config() Config {
	cfg := Figure3Config()
	cfg.Name = "figure-7 NX=1, downstream CTQO at Tomcat"
	cfg.NX = ntier.NX1
	return cfg
}

// Figure8Config reproduces Fig. 8: NX=2 (Nginx-XTomcat-MySQL) with
// millibottlenecks in MySQL — downstream CTQO and drops at MySQL.
func Figure8Config() Config {
	return Config{
		Name:          "figure-8 NX=2, downstream CTQO at MySQL",
		NX:            ntier.NX2,
		Clients:       7000,
		Duration:      60 * time.Second,
		Consolidation: &ConsolidationSpec{Tier: TierDB},
		Trace:         true,
	}
}

// Figure9Config reproduces Fig. 9: NX=2 with millibottlenecks in XTomcat —
// the post-millibottleneck batch release overflows MySQL.
func Figure9Config() Config {
	return Config{
		Name:     "figure-9 NX=2, batch release overflows MySQL",
		NX:       ntier.NX2,
		Clients:  7000,
		Duration: 60 * time.Second,
		// A deeper app-tier millibottleneck (~0.6s) builds the backlog
		// whose batch release overflows MaxSysQDepth(MySQL)=228.
		Consolidation: &ConsolidationSpec{Tier: TierApp, BatchSize: 600},
		Trace:         true,
	}
}

// Figure10Config reproduces Fig. 10: NX=3 with millibottlenecks in
// XTomcat — no CTQO, no drops.
func Figure10Config() Config {
	return Config{
		Name:     "figure-10 NX=3, no CTQO (CPU millibottleneck)",
		NX:       ntier.NX3,
		Clients:  7000,
		Duration: 60 * time.Second,
		// The same millibottleneck as Fig. 9 — the comparison is the
		// point: with XMySQL's lightweight queue the batch is absorbed.
		Consolidation: &ConsolidationSpec{Tier: TierApp, BatchSize: 600},
		Trace:         true,
	}
}

// Figure11Config reproduces Fig. 11: NX=3 with I/O millibottlenecks in
// XMySQL — no CTQO, no drops.
func Figure11Config() Config {
	return Config{
		Name:     "figure-11 NX=3, no CTQO (I/O millibottleneck)",
		NX:       ntier.NX3,
		Clients:  7000,
		Duration: 90 * time.Second,
		AppCores: 4,
		LogFlush: &LogFlushSpec{Tier: TierDB},
		Trace:    true,
	}
}

// NX1MySQLBottleneckConfig reproduces the experiment the paper describes
// but omits for space in Section V-B: NX=1 with millibottlenecks in
// MySQL, causing upstream CTQO at Tomcat.
func NX1MySQLBottleneckConfig() Config {
	return Config{
		Name:          "NX=1, MySQL millibottleneck, upstream CTQO at Tomcat",
		NX:            ntier.NX1,
		Clients:       7000,
		Duration:      60 * time.Second,
		Consolidation: &ConsolidationSpec{Tier: TierDB},
		Trace:         true,
	}
}

// Figure12Overhead is the calibrated per-thread CPU inflation that decays
// the 2000-thread synchronous system from ≈1159 to ≈374 req/s over
// concurrency 100→1600 (Section V-E).
const Figure12Overhead = 0.0013

// Figure12Threads is the "RPC purist" pool size of Section V-E.
const Figure12Threads = 2000

// Figure12Config returns one cell of the Fig. 12 sweep: the given
// architecture under the given request concurrency (closed loop with
// near-zero think time).
func Figure12Config(level ntier.NX, concurrency int) Config {
	cfg := Config{
		Name:      fmt.Sprintf("figure-12 %s at concurrency %d", level, concurrency),
		NX:        level,
		Clients:   concurrency,
		ThinkTime: time.Millisecond,
		WarmUp:    5 * time.Second,
		Duration:  20 * time.Second,
	}
	if level == ntier.NX0 {
		cfg.ThreadOverride = Figure12Threads
		cfg.OverheadPerThread = Figure12Overhead
	}
	return cfg
}

// ThroughputPoint is one cell of the Fig. 12 sweep.
type ThroughputPoint struct {
	// Concurrency is the number of concurrent requests.
	Concurrency int
	// Sync is the 2000-thread synchronous system's throughput (req/s).
	Sync float64
	// Async is the asynchronous system's throughput (req/s).
	Async float64
}

// Figure12Concurrencies is the paper's x-axis.
var Figure12Concurrencies = []int{100, 200, 400, 800, 1600}

// RunFigure12 sweeps concurrency for both architectures and returns the
// throughput table of Fig. 12, fanning the 2×len(concurrencies)
// independent runs across GOMAXPROCS workers; use Runner.Figure12 to
// pick the pool size (the table is identical either way).
func RunFigure12(concurrencies []int) ([]ThroughputPoint, error) {
	return NewRunner(0).Figure12(concurrencies)
}

// Figure12 is RunFigure12 on this runner's pool: each concurrency level
// contributes one sync and one async run, flattened into a single batch
// and re-paired by submission slot, so the rows come back in sweep order
// regardless of scheduling.
func (r *Runner) Figure12(concurrencies []int) ([]ThroughputPoint, error) {
	if len(concurrencies) == 0 {
		concurrencies = Figure12Concurrencies
	}
	cfgs := make([]Config, 0, 2*len(concurrencies))
	for _, n := range concurrencies {
		cfgs = append(cfgs,
			Figure12Config(ntier.NX0, n),
			Figure12Config(ntier.NX3, n))
	}
	results, err := r.Run(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]ThroughputPoint, 0, len(concurrencies))
	for i, n := range concurrencies {
		out = append(out, ThroughputPoint{
			Concurrency: n,
			Sync:        results[2*i].Throughput,
			Async:       results[2*i+1].Throughput,
		})
	}
	return out, nil
}

// AsyncHighUtilConfig checks the abstract's headline claim: with all three
// tiers asynchronous, CTQO and dropped packets remain absent at utilization
// as high as 83% (WL 8000), despite the same millibottlenecks.
func AsyncHighUtilConfig() Config {
	cfg := Figure10Config()
	cfg.Name = "NX=3 at ~83% utilization, no CTQO"
	cfg.Clients = 8000
	return cfg
}

// GCMillibottleneckConfig reproduces the millibottleneck source of the
// authors' earlier TRIOS'14 study, cited by Section II as a cause this
// paper's solution is agnostic to: periodic JVM garbage collections in the
// app tier stall it long enough to trigger CTQO in the synchronous system.
func GCMillibottleneckConfig(level ntier.NX) Config {
	return Config{
		Name:     fmt.Sprintf("GC millibottleneck under %s", level),
		NX:       level,
		Clients:  7000,
		Duration: 60 * time.Second,
		// Full-collection pauses: the TRIOS'14 study measured multi-hundred
		// millisecond stop-the-world GCs; 400ms puts the pause right at the
		// Section III overflow boundary for this arrival rate.
		GCPause: &GCPauseSpec{
			Tier:       TierApp,
			Interval:   10 * time.Second,
			Base:       400 * time.Millisecond,
			PerRequest: 2 * time.Millisecond,
		},
		Trace: true,
	}
}
