package core

import (
	"fmt"

	"ctqosim/internal/ntier"
)

// Scenario presets, one per paper figure. Each constructor loads its
// embedded scenario file (internal/core/scenarios/) and applies only the
// parameter the constructor's signature varies — the files are the source
// of truth, and TestScenarioFilesMatchLegacyPresets pins them to the
// original hand-written values. Durations are chosen so each run spans
// many millibottleneck periods; Fig. 1 runs longer to populate the
// histogram tail.

// Figure1Config reproduces one panel of Fig. 1: the multi-modal
// response-time histogram of the fully synchronous system under VM
// consolidation, at the given client population (the paper uses 4000,
// 7000 and 8000; the registry embeds one file per panel).
func Figure1Config(clients int) Config {
	cfg := mustScenario("scenarios/fig1-wl7000.json")
	cfg.Name = fmt.Sprintf("figure-1 WL %d", clients)
	cfg.Clients = clients
	return cfg
}

// Figure3Config reproduces Fig. 3: upstream CTQO from CPU millibottlenecks
// in SysSteady-Tomcat, co-located with SysBursty-MySQL; drops at Apache.
func Figure3Config() Config {
	return mustScenario("scenarios/fig3.json")
}

// Figure5Config reproduces Fig. 5: upstream CTQO from I/O millibottlenecks
// (collectl log flush every 30s in MySQL), with the app tier scaled to 4
// cores so the app tier is no longer the bottleneck.
func Figure5Config() Config {
	return mustScenario("scenarios/fig5.json")
}

// Figure7Config reproduces Fig. 7: NX=1 (Nginx-Tomcat-MySQL) with
// millibottlenecks in Tomcat — no upstream CTQO at Nginx, but downstream
// CTQO and drops at Tomcat.
func Figure7Config() Config {
	return mustScenario("scenarios/fig7.json")
}

// Figure8Config reproduces Fig. 8: NX=2 (Nginx-XTomcat-MySQL) with
// millibottlenecks in MySQL — downstream CTQO and drops at MySQL.
func Figure8Config() Config {
	return mustScenario("scenarios/fig8.json")
}

// Figure9Config reproduces Fig. 9: NX=2 with millibottlenecks in XTomcat —
// the post-millibottleneck batch release overflows MySQL.
func Figure9Config() Config {
	return mustScenario("scenarios/fig9.json")
}

// Figure10Config reproduces Fig. 10: NX=3 with millibottlenecks in
// XTomcat — no CTQO, no drops.
func Figure10Config() Config {
	return mustScenario("scenarios/fig10.json")
}

// Figure11Config reproduces Fig. 11: NX=3 with I/O millibottlenecks in
// XMySQL — no CTQO, no drops.
func Figure11Config() Config {
	return mustScenario("scenarios/fig11.json")
}

// NX1MySQLBottleneckConfig reproduces the experiment the paper describes
// but omits for space in Section V-B: NX=1 with millibottlenecks in
// MySQL, causing upstream CTQO at Tomcat.
func NX1MySQLBottleneckConfig() Config {
	return mustScenario("scenarios/nx1-mysql.json")
}

// Figure12Overhead is the calibrated per-thread CPU inflation that decays
// the 2000-thread synchronous system from ≈1159 to ≈374 req/s over
// concurrency 100→1600 (Section V-E).
const Figure12Overhead = 0.0013

// Figure12Threads is the "RPC purist" pool size of Section V-E.
const Figure12Threads = 2000

// Figure12Config returns one cell of the Fig. 12 sweep: the given
// architecture under the given request concurrency (closed loop with
// near-zero think time). The sync/async templates live in
// scenarios/templates/; the cell's level and concurrency are filled here.
func Figure12Config(level ntier.NX, concurrency int) Config {
	path := "scenarios/templates/fig12-async.json"
	if level == ntier.NX0 {
		path = "scenarios/templates/fig12-sync.json"
	}
	cfg := mustScenario(path)
	cfg.Name = fmt.Sprintf("figure-12 %s at concurrency %d", level, concurrency)
	cfg.NX = level
	cfg.Clients = concurrency
	return cfg
}

// ThroughputPoint is one cell of the Fig. 12 sweep.
type ThroughputPoint struct {
	// Concurrency is the number of concurrent requests.
	Concurrency int
	// Sync is the 2000-thread synchronous system's throughput (req/s).
	Sync float64
	// Async is the asynchronous system's throughput (req/s).
	Async float64
}

// Figure12Concurrencies is the paper's x-axis.
var Figure12Concurrencies = []int{100, 200, 400, 800, 1600}

// RunFigure12 sweeps concurrency for both architectures and returns the
// throughput table of Fig. 12, fanning the 2×len(concurrencies)
// independent runs across GOMAXPROCS workers; use Runner.Figure12 to
// pick the pool size (the table is identical either way).
func RunFigure12(concurrencies []int) ([]ThroughputPoint, error) {
	return NewRunner(0).Figure12(concurrencies)
}

// Figure12 is RunFigure12 on this runner's pool: each concurrency level
// contributes one sync and one async run, flattened into a single batch
// and re-paired by submission slot, so the rows come back in sweep order
// regardless of scheduling.
func (r *Runner) Figure12(concurrencies []int) ([]ThroughputPoint, error) {
	if len(concurrencies) == 0 {
		concurrencies = Figure12Concurrencies
	}
	cfgs := make([]Config, 0, 2*len(concurrencies))
	for _, n := range concurrencies {
		cfgs = append(cfgs,
			Figure12Config(ntier.NX0, n),
			Figure12Config(ntier.NX3, n))
	}
	results, err := r.Run(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]ThroughputPoint, 0, len(concurrencies))
	for i, n := range concurrencies {
		out = append(out, ThroughputPoint{
			Concurrency: n,
			Sync:        results[2*i].Throughput,
			Async:       results[2*i+1].Throughput,
		})
	}
	return out, nil
}

// AsyncHighUtilConfig checks the abstract's headline claim: with all three
// tiers asynchronous, CTQO and dropped packets remain absent at utilization
// as high as 83% (WL 8000), despite the same millibottlenecks.
func AsyncHighUtilConfig() Config {
	return mustScenario("scenarios/async-highutil.json")
}

// GCMillibottleneckConfig reproduces the millibottleneck source of the
// authors' earlier TRIOS'14 study, cited by Section II as a cause this
// paper's solution is agnostic to: periodic JVM garbage collections in the
// app tier stall it long enough to trigger CTQO in the synchronous system.
func GCMillibottleneckConfig(level ntier.NX) Config {
	cfg := mustScenario("scenarios/gc-sync.json")
	cfg.Name = fmt.Sprintf("GC millibottleneck under %s", level)
	cfg.NX = level
	return cfg
}
