package core

// The hand-written Go presets that the embedded scenario files replaced,
// kept verbatim as the migration pin: TestScenarioFilesMatchLegacyPresets
// proves every file compiles to exactly the config the Go literal built,
// so the declarative migration cannot silently drift a paper figure.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"ctqosim/internal/ntier"
)

func legacyFigure1Config(clients int) Config {
	return Config{
		Name:     fmt.Sprintf("figure-1 WL %d", clients),
		NX:       ntier.NX0,
		Clients:  clients,
		Duration: 180 * time.Second,
		Consolidation: &ConsolidationSpec{
			Tier:        TierApp,
			BatchSize:   500,
			TrainLength: 3,
		},
	}
}

func legacyFigure3Config() Config {
	return Config{
		Name:          "figure-3 VM consolidation, upstream CTQO",
		NX:            ntier.NX0,
		Clients:       7000,
		Duration:      60 * time.Second,
		Consolidation: &ConsolidationSpec{Tier: TierApp, TrainLength: 2},
		Trace:         true,
		Spans:         true,
	}
}

func legacyFigure5Config() Config {
	return Config{
		Name:     "figure-5 log flush, upstream CTQO",
		NX:       ntier.NX0,
		Clients:  7000,
		Duration: 90 * time.Second,
		AppCores: 4,
		LogFlush: &LogFlushSpec{Tier: TierDB},
		Trace:    true,
	}
}

func legacyFigure7Config() Config {
	cfg := legacyFigure3Config()
	cfg.Name = "figure-7 NX=1, downstream CTQO at Tomcat"
	cfg.NX = ntier.NX1
	return cfg
}

func legacyFigure8Config() Config {
	return Config{
		Name:          "figure-8 NX=2, downstream CTQO at MySQL",
		NX:            ntier.NX2,
		Clients:       7000,
		Duration:      60 * time.Second,
		Consolidation: &ConsolidationSpec{Tier: TierDB},
		Trace:         true,
	}
}

func legacyFigure9Config() Config {
	return Config{
		Name:          "figure-9 NX=2, batch release overflows MySQL",
		NX:            ntier.NX2,
		Clients:       7000,
		Duration:      60 * time.Second,
		Consolidation: &ConsolidationSpec{Tier: TierApp, BatchSize: 600},
		Trace:         true,
	}
}

func legacyFigure10Config() Config {
	return Config{
		Name:          "figure-10 NX=3, no CTQO (CPU millibottleneck)",
		NX:            ntier.NX3,
		Clients:       7000,
		Duration:      60 * time.Second,
		Consolidation: &ConsolidationSpec{Tier: TierApp, BatchSize: 600},
		Trace:         true,
	}
}

func legacyFigure11Config() Config {
	return Config{
		Name:     "figure-11 NX=3, no CTQO (I/O millibottleneck)",
		NX:       ntier.NX3,
		Clients:  7000,
		Duration: 90 * time.Second,
		AppCores: 4,
		LogFlush: &LogFlushSpec{Tier: TierDB},
		Trace:    true,
	}
}

func legacyNX1MySQLBottleneckConfig() Config {
	return Config{
		Name:          "NX=1, MySQL millibottleneck, upstream CTQO at Tomcat",
		NX:            ntier.NX1,
		Clients:       7000,
		Duration:      60 * time.Second,
		Consolidation: &ConsolidationSpec{Tier: TierDB},
		Trace:         true,
	}
}

func legacyFigure12Config(level ntier.NX, concurrency int) Config {
	cfg := Config{
		Name:      fmt.Sprintf("figure-12 %s at concurrency %d", level, concurrency),
		NX:        level,
		Clients:   concurrency,
		ThinkTime: time.Millisecond,
		WarmUp:    5 * time.Second,
		Duration:  20 * time.Second,
	}
	if level == ntier.NX0 {
		cfg.ThreadOverride = Figure12Threads
		cfg.OverheadPerThread = Figure12Overhead
	}
	return cfg
}

func legacyAsyncHighUtilConfig() Config {
	cfg := legacyFigure10Config()
	cfg.Name = "NX=3 at ~83% utilization, no CTQO"
	cfg.Clients = 8000
	return cfg
}

func legacyGCMillibottleneckConfig(level ntier.NX) Config {
	return Config{
		Name:     fmt.Sprintf("GC millibottleneck under %s", level),
		NX:       level,
		Clients:  7000,
		Duration: 60 * time.Second,
		GCPause: &GCPauseSpec{
			Tier:       TierApp,
			Interval:   10 * time.Second,
			Base:       400 * time.Millisecond,
			PerRequest: 2 * time.Millisecond,
		},
		Trace: true,
	}
}

func legacyCellConfig(cfg MatrixConfig, level ntier.NX, tier Tier, kind string) Config {
	expCfg := Config{
		Name:     fmt.Sprintf("matrix NX=%d %s %s", level, kind, tier),
		NX:       level,
		Clients:  cfg.Clients,
		Duration: cfg.Duration,
		Seed:     cfg.Seed,
		Trace:    true,
	}
	switch kind {
	case "io":
		expCfg.LogFlush = &LogFlushSpec{Tier: tier}
		if tier == TierDB {
			expCfg.AppCores = 4
		}
	default:
		expCfg.Consolidation = &ConsolidationSpec{Tier: tier, BatchSize: 600}
	}
	return expCfg
}

// TestScenarioFilesMatchLegacyPresets pins every file-compiled registry
// entry, sweep template and matrix cell to its legacy Go literal. All
// function and pointer-to-func fields are nil on both sides, so
// reflect.DeepEqual compares the full configuration.
func TestScenarioFilesMatchLegacyPresets(t *testing.T) {
	legacy := map[string]Config{
		"fig1-wl4000":    legacyFigure1Config(4000),
		"fig1-wl7000":    legacyFigure1Config(7000),
		"fig1-wl8000":    legacyFigure1Config(8000),
		"fig3":           legacyFigure3Config(),
		"fig5":           legacyFigure5Config(),
		"fig7":           legacyFigure7Config(),
		"fig8":           legacyFigure8Config(),
		"fig9":           legacyFigure9Config(),
		"fig10":          legacyFigure10Config(),
		"fig11":          legacyFigure11Config(),
		"nx1-mysql":      legacyNX1MySQLBottleneckConfig(),
		"async-highutil": legacyAsyncHighUtilConfig(),
		"gc-sync":        legacyGCMillibottleneckConfig(0),
		"gc-async":       legacyGCMillibottleneckConfig(3),
	}
	got := Scenarios()
	for name, want := range legacy {
		cfg, ok := got[name]
		if !ok {
			t.Errorf("registry lost scenario %q", name)
			continue
		}
		if !reflect.DeepEqual(cfg, want) {
			t.Errorf("%s: file-compiled config diverged from legacy preset:\n got %+v\nwant %+v", name, cfg, want)
		}
	}
	// The registry may add scenarios (chaos-demo), but every addition must
	// at least compile; reaching here means Scenarios() already did.

	// Constructor wrappers: Figure1Config varies the population around the
	// WL 7000 file, GCMillibottleneckConfig varies the level.
	for _, wl := range []int{4000, 5500, 7000, 8000} {
		if gotC, want := Figure1Config(wl), legacyFigure1Config(wl); !reflect.DeepEqual(gotC, want) {
			t.Errorf("Figure1Config(%d) diverged:\n got %+v\nwant %+v", wl, gotC, want)
		}
	}
	for _, level := range []ntier.NX{ntier.NX0, ntier.NX1, ntier.NX2, ntier.NX3} {
		if gotC, want := GCMillibottleneckConfig(level), legacyGCMillibottleneckConfig(level); !reflect.DeepEqual(gotC, want) {
			t.Errorf("GCMillibottleneckConfig(%v) diverged:\n got %+v\nwant %+v", level, gotC, want)
		}
	}

	// Fig. 12 templates across every level and concurrency of the sweep.
	for _, level := range []ntier.NX{ntier.NX0, ntier.NX1, ntier.NX2, ntier.NX3} {
		for _, n := range Figure12Concurrencies {
			if gotC, want := Figure12Config(level, n), legacyFigure12Config(level, n); !reflect.DeepEqual(gotC, want) {
				t.Errorf("Figure12Config(%v, %d) diverged:\n got %+v\nwant %+v", level, n, gotC, want)
			}
		}
	}

	// All 16 matrix cells, at both default-shaped and custom sweeps.
	for _, mc := range []MatrixConfig{
		{Clients: 7000, Duration: 45 * time.Second, Seed: 1},
		{Clients: 5000, Duration: 30 * time.Second, Seed: 7},
	} {
		for _, level := range []ntier.NX{ntier.NX0, ntier.NX1, ntier.NX2, ntier.NX3} {
			for _, kind := range []string{"cpu", "io"} {
				for _, tier := range []Tier{TierApp, TierDB} {
					gotC := cellConfig(mc, level, tier, kind)
					want := legacyCellConfig(mc, level, tier, kind)
					if !reflect.DeepEqual(gotC, want) {
						t.Errorf("cellConfig(%+v, %v, %v, %s) diverged:\n got %+v\nwant %+v", mc, level, tier, kind, gotC, want)
					}
				}
			}
		}
	}
}
