package core

import (
	"fmt"
	"io"
	"time"

	"ctqosim/internal/plot"
	"ctqosim/internal/span"
)

// TraceWaterfall converts one span trace into a plot.Waterfall: a lane per
// tier, bars colored by span kind, time measured from the request's start.
// A 6-second VLRT exemplar renders as a thin service chain dwarfed by two
// 3-second retransmission bars on the dropping server's lane.
func TraceWaterfall(t *span.Trace) *plot.Waterfall {
	w := &plot.Waterfall{XLabel: "time since request start [s]"}
	if t == nil || len(t.Spans()) == 0 {
		w.Title = "waterfall (no trace)"
		return w
	}
	root := t.Root()
	w.Title = fmt.Sprintf("request %d (%s) — %v, %d retransmission gaps",
		t.RequestID, t.Class, root.Duration().Round(time.Millisecond),
		t.Retransmits())

	depth := spanDepths(t)
	for _, s := range t.Spans() {
		bar := plot.WaterfallBar{
			Lane:     s.Tier,
			Category: s.Kind.String(),
			Start:    (s.Start - root.Start).Seconds(),
			End:      (s.End - root.Start).Seconds(),
			Depth:    depth[s.ID],
		}
		if s.Kind == span.KindRetransmit {
			bar.Label = s.Detail
		}
		w.Add(bar)
	}
	return w
}

// spanDepths computes each span's nesting depth under the root.
func spanDepths(t *span.Trace) map[span.ID]int {
	out := make(map[span.ID]int, len(t.Spans()))
	for _, s := range t.Spans() {
		d := 0
		for p := s.Parent; p > 0; d++ {
			p = t.Spans()[p-1].Parent
		}
		out[s.ID] = d
	}
	return out
}

// WriteWaterfallSVG renders the trace's waterfall SVG to w.
func WriteWaterfallSVG(w io.Writer, t *span.Trace) error {
	_, err := io.WriteString(w, TraceWaterfall(t).SVG())
	return err
}
