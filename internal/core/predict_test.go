package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPredictOverflowPaperExample(t *testing.T) {
	// Section III: 1000 req/s × 0.4s = 400 arrivals against 150+128=278.
	p := PredictOverflow(1000, 400*time.Millisecond, 278)
	if p.Arrivals != 400 {
		t.Fatalf("Arrivals = %d, want 400", p.Arrivals)
	}
	if !p.Overflows() {
		t.Fatal("paper's example must overflow")
	}
	if p.Dropped != 122 {
		t.Fatalf("Dropped = %d, want 122", p.Dropped)
	}
}

func TestPredictOverflowNoOverflow(t *testing.T) {
	p := PredictOverflow(500, 400*time.Millisecond, 278)
	if p.Overflows() || p.Dropped != 0 {
		t.Fatalf("200 arrivals against 278 must not overflow: %+v", p)
	}
}

func TestPredictOverflowNegativeInputs(t *testing.T) {
	p := PredictOverflow(-5, time.Second, -3)
	if p.Arrivals != 0 || p.Capacity != 0 || p.Dropped != 0 {
		t.Fatalf("negative inputs not clamped: %+v", p)
	}
}

func TestMinBurstForOverflow(t *testing.T) {
	// At 1000 req/s, overflowing 278 takes 279 arrivals → 279ms.
	got := MinBurstForOverflow(1000, 278)
	if got != 279*time.Millisecond {
		t.Fatalf("MinBurstForOverflow = %v, want 279ms", got)
	}
	if MinBurstForOverflow(0, 278) != 0 {
		t.Fatal("zero rate must return 0")
	}
}

// Property: the inverse model is consistent with the forward model — a
// burst one step shorter than MinBurstForOverflow never overflows, the
// returned burst always does.
func TestPropertyPredictInverse(t *testing.T) {
	f := func(rate16 uint16, cap16 uint16) bool {
		rate := float64(rate16%5000) + 1
		capacity := int(cap16 % 2000)
		minBurst := MinBurstForOverflow(rate, capacity)
		if !PredictOverflow(rate, minBurst, capacity).Overflows() {
			return false
		}
		shorter := minBurst - minBurst/100 - time.Millisecond
		if shorter <= 0 {
			return true
		}
		p := PredictOverflow(rate, shorter, capacity)
		return p.Dropped <= 1 // rounding may allow at most a single drop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
