package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzEffectiveConfigRoundTrip checks that the effective-config record —
// the part of the summary JSON a run can be reproduced from — survives a
// marshal → unmarshal → marshal cycle byte-identically, and that the
// decoded struct equals the original. Byte-stable re-marshalling is what
// lets the determinism test compare whole summaries with bytes.Equal.
func FuzzEffectiveConfigRoundTrip(f *testing.F) {
	f.Add("fig3", int64(1), "1-2-1-1S", 3000, 0.3, 300.0, "linux-2.6.32", 3.0, 3, true, 1.5, 0, 0.002)
	f.Add("", int64(0), "", 0, 0.0, 0.0, "", 0.0, 0, false, 0.0, 0, 0.0)
	f.Add("weird\"name", int64(-9), "1-4-1-1A", -1, -0.5, 1e9, "k,ernel", 0.25, 100, true, 0.0, -7, -1.0)
	f.Add("ünïcode", int64(math.MaxInt64), "x", 1, 1e-12, 86400.0, "rhel", 0.2, 15, false, 48.0, 1024, 3.5)
	f.Fuzz(func(t *testing.T, name string, seed int64, arch string, clients int,
		think, duration float64, kernel string, rto float64, attempts int,
		backoff bool, cores float64, threads int, overhead float64) {
		for _, v := range []float64{think, duration, rto, cores, overhead} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("json.Marshal rejects NaN/Inf")
			}
		}
		in := EffectiveConfigJSON{
			Name:              name,
			Seed:              seed,
			Architecture:      arch,
			Clients:           clients,
			ThinkTimeSeconds:  think,
			DurationSeconds:   duration,
			Kernel:            kernel,
			RTOSeconds:        rto,
			MaxAttempts:       attempts,
			Backoff:           backoff,
			AppCores:          cores,
			ThreadOverride:    threads,
			OverheadPerThread: overhead,
			Consolidation: &ConsolidationJSON{
				Tier:                 arch,
				BatchSize:            clients,
				BatchIntervalSeconds: duration,
				BatchClass:           name,
			},
		}
		b1, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var out EffectiveConfigJSON
		if err := json.Unmarshal(b1, &out); err != nil {
			t.Fatalf("unmarshal own output %s: %v", b1, err)
		}
		b2, err := json.Marshal(out)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		// json.Marshal coerces invalid UTF-8 to U+FFFD — and emits it
		// escaped (`�`) on the first pass but as a literal rune once
		// the string actually contains U+FFFD — so byte-level fixed point
		// and value equality only hold for valid string inputs.
		if utf8.ValidString(name) && utf8.ValidString(arch) && utf8.ValidString(kernel) {
			if !bytes.Equal(b1, b2) {
				t.Errorf("marshal is not a fixed point:\n  first:  %s\n  second: %s", b1, b2)
			}
			if !reflect.DeepEqual(in, out) {
				t.Errorf("round trip changed the value:\n  in:  %+v\n  out: %+v", in, out)
			}
		}
		// From the second cycle on, marshalling must be a fixed point for
		// any input: the summary JSON a run emits is already normalized.
		var out2 EffectiveConfigJSON
		if err := json.Unmarshal(b2, &out2); err != nil {
			t.Fatalf("unmarshal normalized output %s: %v", b2, err)
		}
		b3, err := json.Marshal(out2)
		if err != nil {
			t.Fatalf("third marshal: %v", err)
		}
		if !bytes.Equal(b2, b3) {
			t.Errorf("normalized marshal is not a fixed point:\n  second: %s\n  third:  %s", b2, b3)
		}
	})
}
