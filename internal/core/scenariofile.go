package core

import (
	"fmt"
	"io/fs"
	"strings"
	"time"

	"embed"

	"ctqosim/internal/cpu"
	"ctqosim/internal/fault"
	"ctqosim/internal/ntier"
	"ctqosim/internal/scenario"
	"ctqosim/internal/server"
	"ctqosim/internal/workload"
)

// scenarioFS embeds every committed scenario file: the named registry at
// the top level, the Fig. 12 sweep templates, and the CTQO matrix cells.
// The presets in scenarios.go are loaded from here, so the files are the
// single source of truth for the paper's experiment parameters.
//
//go:embed scenarios
var scenarioFS embed.FS

// classByName maps the scenario mix vocabulary onto the built-in RUBBoS
// interaction classes (plus the consolidation burst query).
var classByName = map[string]workload.Class{
	"Static":          workload.ClassStatic,
	"StoriesOfTheDay": workload.ClassStoriesOfTheDay,
	"ViewStory":       workload.ClassViewStory,
	"ViewComment":     workload.ClassViewComment,
	"StoreComment":    workload.ClassStoreComment,
	"SubmitStory":     workload.ClassSubmitStory,
	"BurstQuery":      BurstClass,
}

// FromScenario compiles a validated scenario document into a runnable
// Config: the fleet section maps onto the Config fields (zero values flow
// through so the engine's run-time defaults apply, exactly as they do for
// hand-written configs), the events section compiles into a Config.Script
// chaos closure, and the assertions travel with the document — evaluate
// them against Result.Outcome() after the run.
func FromScenario(doc *scenario.Document) (Config, error) {
	if err := doc.Validate(); err != nil {
		return Config{}, err
	}
	f := doc.Fleet
	cfg := Config{
		Name:              doc.Name,
		Seed:              doc.Seed,
		NX:                ntier.NX(f.NX),
		Clients:           f.Clients,
		ThinkTime:         f.ThinkTime.D(),
		WarmUp:            doc.WarmUp.D(),
		Duration:          doc.Duration.D(),
		SampleInterval:    doc.SampleInterval.D(),
		AppCores:          f.AppCores,
		ThreadOverride:    f.ThreadOverride,
		OverheadPerThread: f.OverheadPerThread,
		Trace:             doc.Trace,
		Spans:             doc.Spans,
	}
	if len(f.Mix) > 0 {
		mix, err := compileMix(f.Mix)
		if err != nil {
			return Config{}, fmt.Errorf("fleet.mix: %w", err)
		}
		cfg.Mix = mix
	}
	if b := f.Burst; b != nil {
		cfg.Burst = &workload.BurstSpec{Index: b.Index, Epoch: b.Epoch.D()}
	}
	if c := f.Consolidation; c != nil {
		cfg.Consolidation = &ConsolidationSpec{
			Tier:          tierOf(c.Tier),
			BatchSize:     c.BatchSize,
			BatchInterval: c.BatchInterval.D(),
			BatchOffset:   c.BatchOffset.D(),
			TrainLength:   c.TrainLength,
			TrainSpacing:  c.TrainSpacing.D(),
			MMPPIndex:     c.MMPPIndex,
		}
	}
	if lf := f.LogFlush; lf != nil {
		cfg.LogFlush = &LogFlushSpec{
			Tier:     tierOf(lf.Tier),
			Interval: lf.Interval.D(),
			Duration: lf.Duration.D(),
		}
	}
	if gc := f.GCPause; gc != nil {
		cfg.GCPause = &GCPauseSpec{
			Tier:       tierOf(gc.Tier),
			Interval:   gc.Interval.D(),
			Base:       gc.Base.D(),
			PerRequest: gc.PerRequest.D(),
		}
	}
	if tw := compileTweak(f.Web, f.App, f.DB); tw != nil {
		cfg.Tweak = tw
	}
	script, err := compileScript(doc)
	if err != nil {
		return Config{}, err
	}
	cfg.Script = script
	return cfg, nil
}

// compileMix builds a workload mix from the document's entries. Validation
// has already vetted the shape; the only residual error is an unknown
// built-in class name, kept as a defensive check for callers that skip
// Validate.
func compileMix(entries []scenario.MixEntry) (*workload.Mix, error) {
	m := workload.NewMix()
	for i, e := range entries {
		var cl workload.Class
		if e.Class != "" {
			c, ok := classByName[e.Class]
			if !ok {
				return nil, fmt.Errorf("[%d]: unknown built-in class %q", i, e.Class)
			}
			cl = c
		} else {
			cl = workload.Class{
				Name:      e.Name,
				Static:    e.Static,
				WebCPU:    e.WebCPU.D(),
				AppCPU:    e.AppCPU.D(),
				DBQueries: e.DBQueries,
				DBCPU:     e.DBCPU.D(),
			}
		}
		m.Add(cl, e.Weight)
	}
	return m, nil
}

// compileTweak folds the per-tier overrides into a spec tweak; nil when no
// override changes anything, so override-free documents compile to configs
// with a nil Tweak, byte-identical to the legacy Go presets. The returned
// closure runs under the Tweak contract: it may only write through the
// spec handed to it.
//
//lint:pure
func compileTweak(web, app, db *scenario.TierOverride) func(*ntier.SystemSpec) {
	if (web == nil || web.Zero()) && (app == nil || app.Zero()) && (db == nil || db.Zero()) {
		return nil
	}
	return func(s *ntier.SystemSpec) {
		applyOverride(&s.Web, web)
		applyOverride(&s.App, app)
		applyOverride(&s.DB, db)
	}
}

// applyOverride adjusts one tier spec in place; only set fields override.
func applyOverride(dst *ntier.TierSpec, ov *scenario.TierOverride) {
	if ov == nil {
		return
	}
	switch ov.Arch {
	case "sync":
		dst.Arch = ntier.Sync
	case "async":
		dst.Arch = ntier.Async
	}
	if ov.Threads > 0 {
		dst.Threads = ov.Threads
	}
	if ov.Backlog > 0 {
		dst.Backlog = ov.Backlog
	}
	if ov.LiteQDepth > 0 {
		dst.LiteQDepth = ov.LiteQDepth
	}
	if ov.Cores > 0 {
		dst.Cores = ov.Cores
	}
}

// compiledEvent is one pre-compiled script step: everything that can fail
// has been resolved at compile time, so fire cannot error mid-run.
type compiledEvent struct {
	at   time.Duration
	fire func(h *RunHandles, injectors map[string]fault.Injector)
}

// compileScript turns the events section into a Config.Script closure.
// Events with equal sim times are scheduled in file order, and the DES
// kernel fires equal-time events in schedule order — that is the script
// determinism contract (DESIGN.md §13). Returns nil for an empty script.
func compileScript(doc *scenario.Document) (func(*RunHandles), error) {
	if len(doc.Events) == 0 {
		return nil, nil
	}
	events := make([]compiledEvent, 0, len(doc.Events))
	for i := range doc.Events {
		ce, err := compileEvent(&doc.Events[i], doc)
		if err != nil {
			return nil, fmt.Errorf("events[%d]: %w", i, err)
		}
		events = append(events, ce)
	}
	return func(h *RunHandles) {
		injectors := make(map[string]fault.Injector)
		for i := range events {
			ev := events[i]
			h.Sim.Schedule(ev.at, func() { ev.fire(h, injectors) })
		}
	}, nil
}

// compileEvent resolves one event against the document. The returned fire
// closures read only their pre-compiled captures and write only through
// the run handles and the per-run injector map.
func compileEvent(ev *scenario.Event, doc *scenario.Document) (compiledEvent, error) {
	at := ev.At.D()
	id := ev.ID
	tier := tierOf(ev.Tier)
	switch ev.Action {
	case scenario.ActionLogFlush:
		interval, dur := ev.Interval.D(), ev.Duration.D()
		if interval <= 0 {
			interval = fault.DefaultFlushInterval
		}
		if dur <= 0 {
			dur = fault.DefaultFlushDuration
		}
		return compiledEvent{at, func(h *RunHandles, inj map[string]fault.Injector) {
			in, err := fault.NewLogFlush(h.Sim, tierVM(h.Steady, tier), interval, dur)
			if err != nil {
				panic(fmt.Sprintf("scenario logflush event: %v", err))
			}
			in.Start()
			if id != "" {
				inj[id] = in
			}
		}}, nil
	case scenario.ActionCPUHog:
		interval, demand := ev.Interval.D(), ev.Demand.D()
		return compiledEvent{at, func(h *RunHandles, inj map[string]fault.Injector) {
			in, err := fault.NewCPUHog(h.Sim, tierVM(h.Steady, tier), interval, demand)
			if err != nil {
				panic(fmt.Sprintf("scenario cpuhog event: %v", err))
			}
			in.Start()
			if id != "" {
				inj[id] = in
			}
		}}, nil
	case scenario.ActionGCPause:
		interval, base, perReq := ev.Interval.D(), ev.Base.D(), ev.PerRequest.D()
		if interval <= 0 {
			interval = 10 * time.Second
		}
		if base <= 0 && perReq <= 0 {
			base, perReq = 50*time.Millisecond, 2*time.Millisecond
		}
		return compiledEvent{at, func(h *RunHandles, inj map[string]fault.Injector) {
			srv := tierServer(h.Steady, tier)
			in, err := fault.NewGCPause(h.Sim, tierVM(h.Steady, tier), interval, base, perReq, srv.InService)
			if err != nil {
				panic(fmt.Sprintf("scenario gcpause event: %v", err))
			}
			in.Start()
			if id != "" {
				inj[id] = in
			}
		}}, nil
	case scenario.ActionStop:
		return compiledEvent{at, func(h *RunHandles, inj map[string]fault.Injector) {
			if in, ok := inj[id]; ok {
				in.Stop()
			}
		}}, nil
	case scenario.ActionKillTier:
		return compiledEvent{at, func(h *RunHandles, inj map[string]fault.Injector) {
			tierVM(h.Steady, tier).Stall()
		}}, nil
	case scenario.ActionRestoreTier:
		return compiledEvent{at, func(h *RunHandles, inj map[string]fault.Injector) {
			tierVM(h.Steady, tier).Resume()
		}}, nil
	case scenario.ActionResizePool:
		// The pool exists only while the app→db connector is synchronous
		// (NX 0 and 1); reject at compile time so the script cannot no-op.
		if doc.Fleet.NX > 1 {
			return compiledEvent{}, fmt.Errorf("resize_pool: NX=%d has no app→db connection pool (the async connector is unpooled)", doc.Fleet.NX)
		}
		size := ev.Size
		return compiledEvent{at, func(h *RunHandles, inj map[string]fault.Injector) {
			if h.Steady.Pool != nil {
				h.Steady.Pool.Resize(size)
			}
		}}, nil
	case scenario.ActionShiftMix:
		mix, err := compileMix(ev.Mix)
		if err != nil {
			return compiledEvent{}, fmt.Errorf("shift_mix: %w", err)
		}
		return compiledEvent{at, func(h *RunHandles, inj map[string]fault.Injector) {
			h.Clients.SetMix(mix)
		}}, nil
	default:
		return compiledEvent{}, fmt.Errorf("unknown action %q", ev.Action)
	}
}

// tierOf maps a scenario tier name onto the core enum; "" stays zero so
// the spec defaults apply.
func tierOf(name string) Tier {
	switch name {
	case scenario.TierWeb:
		return TierWeb
	case scenario.TierApp:
		return TierApp
	case scenario.TierDB:
		return TierDB
	default:
		return 0
	}
}

// tierVM returns the steady system's VM for a tier.
func tierVM(sys *ntier.System, t Tier) *cpu.VM {
	switch t {
	case TierWeb:
		return sys.WebVM
	case TierApp:
		return sys.AppVM
	case TierDB:
		return sys.DBVM
	default:
		return sys.DBVM
	}
}

// tierServer returns the steady system's server for a tier.
func tierServer(sys *ntier.System, t Tier) server.Server {
	switch t {
	case TierWeb:
		return sys.Web
	case TierApp:
		return sys.App
	case TierDB:
		return sys.DB
	default:
		return sys.DB
	}
}

// mustScenario loads and compiles an embedded scenario file. The files
// are committed and covered by tests, so a failure here is a build defect;
// panicking keeps the preset constructors' signatures unchanged.
func mustScenario(path string) Config {
	data, err := scenarioFS.ReadFile(path)
	if err != nil {
		panic(fmt.Sprintf("embedded scenario %s: %v", path, err))
	}
	doc, err := scenario.Parse(path, data)
	if err != nil {
		panic(fmt.Sprintf("embedded scenario: %v", err))
	}
	cfg, err := FromScenario(doc)
	if err != nil {
		panic(fmt.Sprintf("embedded scenario %s: %v", path, err))
	}
	return cfg
}

// mustScenarioDoc parses an embedded scenario file without compiling it,
// for callers that need the assertions section.
func mustScenarioDoc(path string) *scenario.Document {
	data, err := scenarioFS.ReadFile(path)
	if err != nil {
		panic(fmt.Sprintf("embedded scenario %s: %v", path, err))
	}
	doc, err := scenario.Parse(path, data)
	if err != nil {
		panic(fmt.Sprintf("embedded scenario: %v", err))
	}
	return doc
}

// ScenarioDocs returns the parsed documents of the named registry, keyed
// like Scenarios(); the CLI uses it to evaluate a named scenario's
// assertions after the run.
func ScenarioDocs() map[string]*scenario.Document {
	out := make(map[string]*scenario.Document)
	entries, err := fs.ReadDir(scenarioFS, "scenarios")
	if err != nil {
		panic(fmt.Sprintf("embedded scenarios: %v", err))
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		out[name] = mustScenarioDoc("scenarios/" + e.Name())
	}
	return out
}

// Outcome snapshots the run's aggregate statistics in the scenario
// package's assertion vocabulary; feed it to scenario.Evaluate.
func (r *Result) Outcome() scenario.Outcome {
	return scenario.Outcome{
		Throughput:     r.Throughput,
		Requests:       r.Recorder.Len(),
		VLRT:           r.VLRTCount,
		Failed:         r.Recorder.FailedCount(),
		TotalDrops:     r.TotalDrops,
		DropsPerServer: r.DropsPerServer,
		P50:            r.Recorder.Percentile(0.50),
		P99:            r.Recorder.Percentile(0.99),
		P999:           r.Recorder.Percentile(0.999),
		MaxRT:          r.Recorder.Percentile(1),
	}
}
