package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ctqosim/internal/plot"
)

// WriteSVGs renders a result's figure panels as SVG files in dir,
// mirroring the paper's layout:
//
//	util.svg      — panel (a): CPU utilization timelines
//	queues.svg    — panel (b): queued requests with MaxSysQDepth references
//	vlrt.svg      — panel (c): VLRT requests per window
//	histogram.svg — the Fig. 1 semi-log response-time histogram
//	iowait.svg    — I/O wait timelines (log-flush scenarios)
func WriteSVGs(res *Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("svg dir: %w", err)
	}
	files := map[string]*plot.Chart{
		"util.svg":      utilChart(res),
		"queues.svg":    queueChart(res),
		"vlrt.svg":      vlrtChart(res),
		"histogram.svg": histogramChart(res),
		"iowait.svg":    iowaitChart(res),
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	// Sorted so a failure always blames the same file.
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(files[name].SVG()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
	}
	return nil
}

// timesOf builds the x values (seconds) for n monitor samples.
func timesOf(res *Result, n int) []float64 {
	out := make([]float64, n)
	step := res.Config.SampleInterval.Seconds()
	for i := range out {
		out[i] = float64(i+1) * step
	}
	return out
}

func utilChart(res *Result) *plot.Chart {
	c := &plot.Chart{
		Title:  res.Config.Name + " — CPU utilization",
		XLabel: "time [s]", YLabel: "util [0..1]", YMax: 1,
	}
	names := res.System.TierNames()
	if res.Bursty != nil {
		names = append(names, res.Bursty.DB.Name())
	}
	for _, name := range names {
		s := res.Monitor.Util(name)
		if s == nil || len(s.Values) == 0 {
			continue
		}
		c.Add(plot.Series{Name: name, XS: timesOf(res, len(s.Values)), YS: s.Values})
	}
	return c
}

func iowaitChart(res *Result) *plot.Chart {
	c := &plot.Chart{
		Title:  res.Config.Name + " — I/O wait",
		XLabel: "time [s]", YLabel: "iowait [0..1]", YMax: 1,
	}
	for _, name := range res.System.TierNames() {
		s := res.Monitor.IOWait(name)
		if s == nil || len(s.Values) == 0 {
			continue
		}
		c.Add(plot.Series{Name: name, XS: timesOf(res, len(s.Values)), YS: s.Values})
	}
	return c
}

func queueChart(res *Result) *plot.Chart {
	c := &plot.Chart{
		Title:  res.Config.Name + " — queued requests",
		XLabel: "time [s]", YLabel: "queued requests",
	}
	for _, name := range res.System.TierNames() {
		s := res.Monitor.Queue(name)
		if s == nil || len(s.Values) == 0 {
			continue
		}
		c.Add(plot.Series{Name: name, XS: timesOf(res, len(s.Values)), YS: s.Values})
	}
	// Reference lines at each bounded tier's MaxSysQDepth, deduplicated.
	seen := make(map[int]bool)
	for _, srv := range res.System.Servers() {
		depth := srv.MaxSysQDepth()
		// LiteQDepth-scale bounds would dwarf the plot.
		if depth > 2048 || seen[depth] {
			continue
		}
		seen[depth] = true
		c.Ref(fmt.Sprintf("MaxSysQDepth=%d", depth), float64(depth))
	}
	return c
}

func vlrtChart(res *Result) *plot.Chart {
	c := &plot.Chart{
		Title:  res.Config.Name + " — VLRT requests (>3s) per window",
		XLabel: "time [s]", YLabel: "VLRT requests",
		Kind: plot.Bars,
	}
	series := res.VLRTSeries("")
	xs := make([]float64, len(series))
	ys := make([]float64, len(series))
	warm := res.Config.WarmUp.Seconds()
	step := res.Config.SampleInterval.Seconds()
	for i, v := range series {
		xs[i] = warm + float64(i)*step
		ys[i] = float64(v)
	}
	c.Add(plot.Series{Name: "VLRT", XS: xs, YS: ys})
	return c
}

func histogramChart(res *Result) *plot.Chart {
	c := &plot.Chart{
		Title:  res.Config.Name + " — response-time frequency (semi-log)",
		XLabel: "response time [s]", YLabel: "frequency",
		Kind: plot.Bars, LogY: true,
	}
	h := res.Histogram()
	n := h.Bins() + 1
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		xs = append(xs, h.BinStart(i).Seconds())
		ys = append(ys, float64(h.Count(i)))
	}
	c.Add(plot.Series{Name: "requests", XS: xs, YS: ys})
	return c
}
