package core

import (
	"fmt"
	"strings"
	"time"

	"ctqosim/internal/ntier"
	"ctqosim/internal/trace"
)

// MatrixCell is one cell of the CTQO matrix: an architecture level crossed
// with a millibottleneck location and kind.
type MatrixCell struct {
	// NX is the architecture level.
	NX ntier.NX
	// Bottleneck is the tier where the millibottleneck is injected.
	Bottleneck Tier
	// Kind is "cpu" (consolidation) or "io" (log flush).
	Kind string

	// Drops counts dropped packets per server.
	Drops map[string]int64
	// VLRT is the number of >3s requests.
	VLRT int
	// Direction summarizes the CTQO classification across episodes.
	Direction trace.Direction
	// DropSite is the tier that dropped most packets, or "" if none.
	DropSite string
}

// MatrixConfig tunes the sweep.
type MatrixConfig struct {
	// Clients is the steady population; zero defaults to 7000.
	Clients int
	// Duration per cell; zero defaults to 45s.
	Duration time.Duration
	// Levels restricts the NX levels; empty runs all four.
	Levels []ntier.NX
	// Kinds restricts the millibottleneck kinds; empty runs cpu and io.
	Kinds []string
	// Seed for every cell; zero defaults to 1.
	Seed int64
}

// RunCTQOMatrix runs the full evaluation grid of the paper's Section IV/V —
// every architecture level against millibottlenecks in the app and db
// tiers, both CPU and I/O — and returns one row per cell. It is the
// conclusion's upstream/downstream summary, computed.
func RunCTQOMatrix(cfg MatrixConfig) ([]MatrixCell, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 7000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 45 * time.Second
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []ntier.NX{ntier.NX0, ntier.NX1, ntier.NX2, ntier.NX3}
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []string{"cpu", "io"}
	}

	var out []MatrixCell
	for _, level := range levels {
		for _, kind := range kinds {
			for _, tier := range []Tier{TierApp, TierDB} {
				cell, err := runCell(cfg, level, tier, kind)
				if err != nil {
					return nil, err
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}

func runCell(cfg MatrixConfig, level ntier.NX, tier Tier, kind string) (MatrixCell, error) {
	expCfg := Config{
		Name:     fmt.Sprintf("matrix NX=%d %s %s", level, kind, tier),
		NX:       level,
		Clients:  cfg.Clients,
		Duration: cfg.Duration,
		Seed:     cfg.Seed,
		Trace:    true,
	}
	switch kind {
	case "io":
		expCfg.LogFlush = &LogFlushSpec{Tier: tier}
		if tier == TierDB {
			expCfg.AppCores = 4
		}
	default:
		// The deeper Fig. 9 burst is used uniformly so every cell sees the
		// identical millibottleneck; NX=3 absorbs even this one.
		expCfg.Consolidation = &ConsolidationSpec{Tier: tier, BatchSize: 600}
	}
	res, err := New(expCfg).Run()
	if err != nil {
		return MatrixCell{}, err
	}

	cell := MatrixCell{
		NX:         level,
		Bottleneck: tier,
		Kind:       kind,
		Drops:      res.DropsPerServer,
		VLRT:       res.VLRTCount,
		Direction:  overallDirection(res),
		DropSite:   dominantDropSite(res),
	}
	return cell, nil
}

// overallDirection folds the per-episode classifications into one label.
func overallDirection(res *Result) trace.Direction {
	up, down := false, false
	for _, ep := range res.Report.CTQOEpisodes() {
		switch ep.Direction {
		case trace.DirectionUpstream:
			up = true
		case trace.DirectionDownstream:
			down = true
		case trace.DirectionBoth:
			up, down = true, true
		}
	}
	switch {
	case up && down:
		return trace.DirectionBoth
	case up:
		return trace.DirectionUpstream
	case down:
		return trace.DirectionDownstream
	default:
		return trace.DirectionNone
	}
}

func dominantDropSite(res *Result) string {
	var best string
	var bestN int64
	for _, tier := range res.System.TierNames() {
		if d := res.DropsPerServer[tier]; d > bestN {
			bestN, best = d, tier
		}
	}
	return best
}

// FormatMatrix renders the matrix as an aligned text table.
func FormatMatrix(cells []MatrixCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-4s %-5s %-8s %-18s %s\n",
		"configuration", "kind", "where", "VLRT", "drop site", "classification")
	for _, c := range cells {
		site := c.DropSite
		if site == "" {
			site = "-"
		}
		fmt.Fprintf(&b, "%-22s %-4s %-5s %-8d %-18s %s\n",
			c.NX, c.Kind, c.Bottleneck, c.VLRT, site, c.Direction)
	}
	return b.String()
}
