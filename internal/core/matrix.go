package core

import (
	"fmt"
	"strings"
	"time"

	"ctqosim/internal/ntier"
	"ctqosim/internal/trace"
)

// MatrixCell is one cell of the CTQO matrix: an architecture level crossed
// with a millibottleneck location and kind.
type MatrixCell struct {
	// NX is the architecture level.
	NX ntier.NX
	// Bottleneck is the tier where the millibottleneck is injected.
	Bottleneck Tier
	// Kind is "cpu" (consolidation) or "io" (log flush).
	Kind string

	// Drops counts dropped packets per server.
	Drops map[string]int64
	// VLRT is the number of >3s requests.
	VLRT int
	// Direction summarizes the CTQO classification across episodes.
	Direction trace.Direction
	// DropSite is the tier that dropped most packets, or "" if none.
	DropSite string
}

// MatrixConfig tunes the sweep.
type MatrixConfig struct {
	// Clients is the steady population; zero defaults to 7000.
	Clients int
	// Duration per cell; zero defaults to 45s.
	Duration time.Duration
	// Levels restricts the NX levels; empty runs all four.
	Levels []ntier.NX
	// Kinds restricts the millibottleneck kinds; empty runs cpu and io.
	Kinds []string
	// Seed for every cell; zero defaults to 1.
	Seed int64
	// Workers is the Runner pool size fanning the grid's independent
	// cells; zero defaults to GOMAXPROCS, 1 runs strictly serially. The
	// returned rows are identical for every value.
	Workers int
}

// RunCTQOMatrix runs the full evaluation grid of the paper's Section IV/V —
// every architecture level against millibottlenecks in the app and db
// tiers, both CPU and I/O — and returns one row per cell, in fixed grid
// order (level, kind, tier), regardless of the worker pool's scheduling.
// It is the conclusion's upstream/downstream summary, computed.
//
// A failing cell does not abort the grid: its row is skipped, the
// remaining cells still run, and the joined per-cell errors are returned
// alongside the completed rows.
func RunCTQOMatrix(cfg MatrixConfig) ([]MatrixCell, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 7000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 45 * time.Second
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []ntier.NX{ntier.NX0, ntier.NX1, ntier.NX2, ntier.NX3}
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []string{"cpu", "io"}
	}

	var cfgs []Config
	for _, level := range levels {
		for _, kind := range kinds {
			for _, tier := range []Tier{TierApp, TierDB} {
				cfgs = append(cfgs, cellConfig(cfg, level, tier, kind))
			}
		}
	}
	results, err := NewRunner(cfg.Workers).Run(cfgs)
	var out []MatrixCell
	for _, res := range results {
		if res == nil {
			continue
		}
		out = append(out, buildCell(res))
	}
	return out, err
}

// cellConfig assembles one cell's experiment configuration from its
// embedded scenario file (scenarios/cells/); the sweep's population,
// duration and seed override the file's placeholders. Unknown kinds fall
// back to the cpu cell — the deeper Fig. 9 burst used uniformly so every
// cell sees the identical millibottleneck; NX=3 absorbs even this one.
func cellConfig(cfg MatrixConfig, level ntier.NX, tier Tier, kind string) Config {
	fileKind := "cpu"
	if kind == "io" {
		fileKind = "io"
	}
	expCfg := mustScenario(fmt.Sprintf("scenarios/cells/nx%d-%s-%s.json", level, fileKind, tier))
	expCfg.Name = fmt.Sprintf("matrix NX=%d %s %s", level, kind, tier)
	expCfg.Clients = cfg.Clients
	expCfg.Duration = cfg.Duration
	expCfg.Seed = cfg.Seed
	return expCfg
}

// buildCell recovers a cell's grid coordinates from its result and
// summarizes the run.
func buildCell(res *Result) MatrixCell {
	kind := "cpu"
	tier := TierApp
	if res.Config.LogFlush != nil {
		kind = "io"
		tier = res.Config.LogFlush.Tier
	} else if res.Config.Consolidation != nil {
		tier = res.Config.Consolidation.Tier
	}
	return MatrixCell{
		NX:         res.Config.NX,
		Bottleneck: tier,
		Kind:       kind,
		Drops:      res.DropsPerServer,
		VLRT:       res.VLRTCount,
		Direction:  overallDirection(res),
		DropSite:   dominantDropSite(res),
	}
}

// overallDirection folds the per-episode classifications into one label.
func overallDirection(res *Result) trace.Direction {
	up, down := false, false
	for _, ep := range res.Report.CTQOEpisodes() {
		switch ep.Direction {
		case trace.DirectionUpstream:
			up = true
		case trace.DirectionDownstream:
			down = true
		case trace.DirectionBoth:
			up, down = true, true
		case trace.DirectionNone:
			// An undirected episode contributes to neither side.
		}
	}
	switch {
	case up && down:
		return trace.DirectionBoth
	case up:
		return trace.DirectionUpstream
	case down:
		return trace.DirectionDownstream
	default:
		return trace.DirectionNone
	}
}

func dominantDropSite(res *Result) string {
	var best string
	var bestN int64
	for _, tier := range res.System.TierNames() {
		if d := res.DropsPerServer[tier]; d > bestN {
			bestN, best = d, tier
		}
	}
	return best
}

// FormatMatrix renders the matrix as an aligned text table.
func FormatMatrix(cells []MatrixCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-4s %-5s %-8s %-18s %s\n",
		"configuration", "kind", "where", "VLRT", "drop site", "classification")
	for _, c := range cells {
		site := c.DropSite
		if site == "" {
			site = "-"
		}
		fmt.Fprintf(&b, "%-22s %-4s %-5s %-8d %-18s %s\n",
			c.NX, c.Kind, c.Bottleneck, c.VLRT, site, c.Direction)
	}
	return b.String()
}
