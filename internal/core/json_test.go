package core

import (
	"encoding/json"
	"testing"
	"time"
)

func TestResultJSON(t *testing.T) {
	res := mustRun(t, shorten(Figure3Config(), 25*time.Second))
	data, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}

	var got SummaryJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got.Architecture != "Apache-Tomcat-MySQL" {
		t.Fatalf("architecture = %q", got.Architecture)
	}
	if got.Clients != 7000 || got.Seed != 1 {
		t.Fatalf("config echo wrong: %+v", got)
	}
	if got.ThroughputReqS < 900 || got.ThroughputReqS > 1100 {
		t.Fatalf("throughput = %v", got.ThroughputReqS)
	}
	if got.Requests == 0 || got.VLRT == 0 || got.TotalDrops == 0 {
		t.Fatalf("counters empty: %+v", got)
	}
	if len(got.MeanUtilByTier) != 3 || len(got.PeakQueueByTier) != 3 {
		t.Fatalf("per-tier maps wrong: %+v", got)
	}
	if got.P999Millis < got.P50Millis {
		t.Fatal("percentiles out of order")
	}
	if got.HistogramBinMS != 100 || len(got.HistogramCounts) != 100 {
		t.Fatalf("histogram shape: bin=%d len=%d", got.HistogramBinMS, len(got.HistogramCounts))
	}
	var histTotal int64
	for _, c := range got.HistogramCounts {
		histTotal += c
	}
	histTotal += got.HistogramOverMax
	if histTotal != int64(got.Requests) {
		t.Fatalf("histogram total %d != requests %d", histTotal, got.Requests)
	}
	if got.CTQOEpisodes == 0 || got.CTQODirections["upstream CTQO"] == 0 {
		t.Fatalf("CTQO summary empty: %+v", got)
	}
}

func TestResultJSONWithoutTrace(t *testing.T) {
	cfg := shorten(Figure3Config(), 20*time.Second)
	cfg.Trace = false
	res := mustRun(t, cfg)
	data, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var got SummaryJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got.CTQOEpisodes != 0 || got.CTQODirections != nil {
		t.Fatalf("traceless run should have empty CTQO summary: %+v", got)
	}
}
