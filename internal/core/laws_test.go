package core

import (
	"math"
	"testing"
	"time"

	"ctqosim/internal/ntier"
	"ctqosim/internal/workload"
)

// TestOperationalLaws validates the simulator against the operational laws
// of queueing theory, which hold for ANY system regardless of
// distributional assumptions:
//
//	Utilization law:  U_i = X_i × S_i  (CPU consumed = completions × demand)
//	Little's law:     N̄_i = X_i × R̄_i (mean queue = throughput × residence)
//
// The utilization law is checked exactly from the CPU accounting; Little's
// law is checked at the whole-system level from the recorder.
func TestOperationalLaws(t *testing.T) {
	cfg := Config{
		Name:     "laws",
		NX:       ntier.NX0,
		Clients:  5000,
		WarmUp:   5 * time.Second,
		Duration: 40 * time.Second,
	}
	res := mustRun(t, cfg)
	horizon := res.End.Seconds()

	// Utilization law per tier: core-seconds consumed over the whole run
	// must equal completions × mean demand per completion.
	web, app, db := workload.DefaultMix().MeanDemands()
	demands := map[string]time.Duration{
		"steady-apache": web,
		"steady-tomcat": app,
		"steady-mysql":  db,
	}
	// Demands are per end-to-end request (DB demand already folds in the
	// per-request query count), so the request count is the web tier's
	// completions throughout.
	requests := float64(res.System.Web.Stats().Completed)
	names := res.System.TierNames()
	for i, vm := range res.System.VMs() {
		name := names[i]
		consumed := vm.Usage().CPUSeconds
		expected := requests * demands[name].Seconds()
		if relErr(consumed, expected) > 0.08 {
			t.Errorf("%s: utilization law violated: consumed %.2f core-s over %.0fs, X·S = %.2f",
				name, consumed, horizon, expected)
		}
	}

	// Little's law for the whole closed system: clients = X × (R̄ + Z̄).
	x := res.Throughput
	rMean := res.Recorder.Mean().Seconds()
	z := cfg.ThinkTime.Seconds()
	if z == 0 {
		z = workload.DefaultThinkTime.Seconds()
	}
	implied := x * (rMean + z)
	if relErr(implied, float64(cfg.Clients)) > 0.05 {
		t.Errorf("Little's law violated: X(R+Z) = %.0f, clients = %d", implied, cfg.Clients)
	}
}

// TestLittlesLawPerTierQueue checks N̄ = X·R̄ at the app tier using the
// monitored queue depth: mean depth ≈ throughput × mean residence there.
// Residence is estimated from the demand under light contention.
func TestLittlesLawPerTierQueue(t *testing.T) {
	res := mustRun(t, Config{
		Name:     "little-tier",
		NX:       ntier.NX0,
		Clients:  3000, // ~43% load: low contention keeps R ≈ S·(1/(1-ρ))
		WarmUp:   5 * time.Second,
		Duration: 40 * time.Second,
	})
	meanDepth := res.Monitor.Queue("steady-tomcat").MeanOver(res.Config.WarmUp, res.End)

	_, app, _ := workload.DefaultMix().MeanDemands()
	x := res.Throughput * 0.8 // dynamic fraction of requests reach the app tier
	rho := res.MeanUtil("steady-tomcat")
	residence := app.Seconds() / math.Max(1-rho, 0.05) // M/M/1-ish estimate
	implied := x * residence

	// Loose bound: the estimate is approximate, but must be the right
	// order of magnitude and side.
	if meanDepth < implied*0.3 || meanDepth > implied*3 {
		t.Errorf("Little check off: mean depth %.2f vs X·R %.2f (rho=%.2f)",
			meanDepth, implied, rho)
	}
}
