package server

import (
	"testing"
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
	"ctqosim/internal/simnet"
)

// rig bundles the common test fixture: one simulator, one transport and a
// one-core node per server.
type rig struct {
	sim *des.Simulator
	tr  *simnet.Transport
}

func newRig(seed int64) *rig {
	sim := des.NewSimulator(seed)
	return &rig{sim: sim, tr: simnet.NewTransport(sim)}
}

func (r *rig) vm(name string) *cpu.VM {
	return cpu.NewNode(r.sim, name+"-node", 1).AddVM(name, 1, 1)
}

// cpuOnly returns a plan of a single CPU stage.
func cpuOnly(d time.Duration) PlanFunc {
	return func(any) Program { return Program{{CPU: d}} }
}

// callThrough returns a plan with CPU, a downstream call, then more CPU.
func callThrough(pre time.Duration, dest simnet.Admission, pool *simnet.ConnPool, post time.Duration) PlanFunc {
	return func(any) Program {
		return Program{
			{CPU: pre, Call: &Downstream{Dest: dest, Pool: pool}},
			{CPU: post},
		}
	}
}

func sendAndTime(r *rig, dst simnet.Admission, rt *time.Duration) {
	call := &simnet.Call{}
	call.OnReply = func(any) { *rt = r.sim.Now() - call.FirstSent }
	r.tr.Send(dst, call)
}

func TestSyncSimpleRequest(t *testing.T) {
	r := newRig(1)
	srv := NewSync(r.sim, r.vm("s"), r.tr, cpuOnly(10*time.Millisecond),
		SyncConfig{Name: "s", Threads: 4, Backlog: 8})

	var rt time.Duration
	sendAndTime(r, srv, &rt)
	if err := r.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rt != 10*time.Millisecond {
		t.Fatalf("response time = %v, want 10ms", rt)
	}
	st := srv.Stats()
	if st.Accepted != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSyncAdmissionBound(t *testing.T) {
	r := newRig(1)
	srv := NewSync(r.sim, r.vm("s"), r.tr, cpuOnly(time.Second),
		SyncConfig{Name: "s", Threads: 2, Backlog: 1})

	if srv.MaxSysQDepth() != 3 {
		t.Fatalf("MaxSysQDepth = %d, want 3", srv.MaxSysQDepth())
	}
	accepted := 0
	for i := 0; i < 5; i++ {
		if srv.TryAccept(&simnet.Call{OnReply: func(any) {}}) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d, want 3 (threads+backlog)", accepted)
	}
	if srv.Depth() != 3 || srv.InService() != 2 || srv.Queued() != 1 {
		t.Fatalf("depth=%d inService=%d queued=%d", srv.Depth(), srv.InService(), srv.Queued())
	}
}

func TestSyncQueueDrainsFIFO(t *testing.T) {
	r := newRig(1)
	srv := NewSync(r.sim, r.vm("s"), r.tr, cpuOnly(10*time.Millisecond),
		SyncConfig{Name: "s", Threads: 1, Backlog: 8})

	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.tr.Send(srv, &simnet.Call{OnReply: func(any) { order = append(order, i) }})
	}
	if err := r.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order = %v, want FIFO", order)
		}
	}
}

func TestSyncThreadHeldAcrossDownstreamCall(t *testing.T) {
	// The RPC coupling: with the downstream tier stalled, the upstream
	// server's threads stay occupied, so its admission bound is reached by
	// waiting — not working — threads.
	r := newRig(1)
	dbVM := r.vm("db")
	db := NewSync(r.sim, dbVM, r.tr, cpuOnly(5*time.Millisecond),
		SyncConfig{Name: "db", Threads: 100, Backlog: 128})
	app := NewSync(r.sim, r.vm("app"), r.tr, callThrough(time.Millisecond, db, nil, time.Millisecond),
		SyncConfig{Name: "app", Threads: 2, Backlog: 0})

	dbVM.Block(10 * time.Second) // millibottleneck in the DB tier

	results := make([]bool, 3)
	for i := 0; i < 3; i++ {
		i := i
		r.sim.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			call := &simnet.Call{OnReply: func(any) {}}
			results[i] = app.TryAccept(call)
		})
	}
	if err := r.sim.Run(time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if !results[0] || !results[1] {
		t.Fatal("first two requests should occupy the two threads")
	}
	if results[2] {
		t.Fatal("third request admitted although both threads wait on the stalled DB")
	}
	if app.InService() != 2 {
		t.Fatalf("InService = %d, want 2 blocked threads", app.InService())
	}
}

func TestSyncSpareProcessEscalation(t *testing.T) {
	r := newRig(1)
	srv := NewSync(r.sim, r.vm("s"), r.tr, cpuOnly(30*time.Second),
		SyncConfig{Name: "s", Threads: 2, Backlog: 2, SpareThreads: 2, SpareAfter: time.Second})

	for i := 0; i < 4; i++ {
		r.tr.Send(srv, &simnet.Call{OnReply: func(any) {}})
	}
	if srv.MaxSysQDepth() != 4 {
		t.Fatalf("MaxSysQDepth before escalation = %d, want 4", srv.MaxSysQDepth())
	}
	if err := r.sim.Run(2 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	// After 1s of sustained saturation the spare process adds 2 threads
	// and absorbs the queue.
	if srv.MaxSysQDepth() != 6 {
		t.Fatalf("MaxSysQDepth after escalation = %d, want 6", srv.MaxSysQDepth())
	}
	if srv.InService() != 4 || srv.Queued() != 0 {
		t.Fatalf("inService=%d queued=%d, want 4/0", srv.InService(), srv.Queued())
	}
}

func TestSyncSpareNotAddedIfPressureSubsides(t *testing.T) {
	r := newRig(1)
	srv := NewSync(r.sim, r.vm("s"), r.tr, cpuOnly(100*time.Millisecond),
		SyncConfig{Name: "s", Threads: 1, Backlog: 2, SpareThreads: 5, SpareAfter: time.Second})

	// Saturate briefly; all requests finish well before the spare check.
	for i := 0; i < 3; i++ {
		r.tr.Send(srv, &simnet.Call{OnReply: func(any) {}})
	}
	if err := r.sim.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if srv.MaxSysQDepth() != 3 {
		t.Fatalf("MaxSysQDepth = %d, want 3 (no escalation)", srv.MaxSysQDepth())
	}
}

func TestSyncFailurePropagation(t *testing.T) {
	r := newRig(1)
	r.tr.MaxAttempts = 2
	db := NewSync(r.sim, r.vm("db"), r.tr, cpuOnly(time.Hour),
		SyncConfig{Name: "db", Threads: 1, Backlog: 0})
	app := NewSync(r.sim, r.vm("app"), r.tr, callThrough(time.Millisecond, db, nil, time.Millisecond),
		SyncConfig{Name: "app", Threads: 4, Backlog: 4})

	// Occupy the single DB thread forever.
	r.tr.Send(db, &simnet.Call{})

	var reply any
	r.sim.Schedule(time.Millisecond, func() {
		r.tr.Send(app, &simnet.Call{OnReply: func(rep any) { reply = rep }})
	})
	if err := r.sim.Run(time.Minute); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	f, ok := reply.(Failure)
	if !ok {
		t.Fatalf("reply = %#v, want Failure", reply)
	}
	if f.Server != "db" {
		t.Fatalf("Failure.Server = %q, want db", f.Server)
	}
	if app.Stats().Failed != 1 {
		t.Fatalf("app failed = %d, want 1", app.Stats().Failed)
	}
	// The app thread must have been released after the failure.
	if app.InService() != 0 {
		t.Fatalf("app InService = %d, want 0", app.InService())
	}
}

func TestSyncConnPoolSerializesDownstream(t *testing.T) {
	r := newRig(1)
	pool := simnet.NewConnPool(1)
	db := NewSync(r.sim, r.vm("db"), r.tr, cpuOnly(100*time.Millisecond),
		SyncConfig{Name: "db", Threads: 10, Backlog: 10})
	app := NewSync(r.sim, r.vm("app"), r.tr, callThrough(0, db, pool, 0),
		SyncConfig{Name: "app", Threads: 10, Backlog: 10})

	var last time.Duration
	for i := 0; i < 3; i++ {
		call := &simnet.Call{}
		call.OnReply = func(any) { last = r.sim.Now() }
		r.tr.Send(app, call)
	}
	if err := r.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Pool of 1 serializes the three 100ms DB calls.
	if last < 300*time.Millisecond {
		t.Fatalf("last completion at %v, want >= 300ms (serialized)", last)
	}
	if db.Stats().Completed != 3 {
		t.Fatalf("db completed = %d, want 3", db.Stats().Completed)
	}
}

func TestSyncOverheadInflation(t *testing.T) {
	base := func(overhead float64) time.Duration {
		r := newRig(1)
		srv := NewSync(r.sim, r.vm("s"), r.tr, cpuOnly(10*time.Millisecond),
			SyncConfig{Name: "s", Threads: 100, Backlog: 0, OverheadPerThread: overhead})
		var last time.Duration
		for i := 0; i < 50; i++ {
			call := &simnet.Call{}
			call.OnReply = func(any) {
				if r.sim.Now() > last {
					last = r.sim.Now()
				}
			}
			r.tr.Send(srv, call)
		}
		if err := r.sim.Run(time.Hour); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return last
	}
	noOverhead := base(0)
	withOverhead := base(0.02)
	if withOverhead <= noOverhead {
		t.Fatalf("overhead model had no effect: %v vs %v", noOverhead, withOverhead)
	}
}

func TestAsyncSimpleRequest(t *testing.T) {
	r := newRig(1)
	srv := NewAsync(r.sim, r.vm("s"), r.tr, cpuOnly(10*time.Millisecond),
		AsyncConfig{Name: "s", Workers: 2, LiteQDepth: 100})

	var rt time.Duration
	sendAndTime(r, srv, &rt)
	if err := r.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rt != 10*time.Millisecond {
		t.Fatalf("response time = %v, want 10ms", rt)
	}
}

func TestAsyncAbsorbsBurstWithoutDrops(t *testing.T) {
	// The same burst that overflows a sync server's MaxSysQDepth sits
	// harmlessly in the async server's lightweight queue.
	const burst = 500

	syncRig := newRig(1)
	syncSrv := NewSync(syncRig.sim, syncRig.vm("s"), syncRig.tr, cpuOnly(time.Millisecond),
		SyncConfig{Name: "s", Threads: 150, Backlog: 128})
	for i := 0; i < burst; i++ {
		syncRig.tr.Send(syncSrv, &simnet.Call{OnReply: func(any) {}})
	}
	if err := syncRig.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if syncRig.tr.Stats("s").Dropped == 0 {
		t.Fatal("sync server should drop part of the burst (500 > 278)")
	}

	asyncRig := newRig(1)
	asyncSrv := NewAsync(asyncRig.sim, asyncRig.vm("s"), asyncRig.tr, cpuOnly(time.Millisecond),
		AsyncConfig{Name: "s", Workers: 4, LiteQDepth: 65535})
	completed := 0
	for i := 0; i < burst; i++ {
		asyncRig.tr.Send(asyncSrv, &simnet.Call{OnReply: func(any) { completed++ }})
	}
	if err := asyncRig.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := asyncRig.tr.Stats("s").Dropped; got != 0 {
		t.Fatalf("async server dropped %d packets, want 0", got)
	}
	if completed != burst {
		t.Fatalf("completed %d, want %d", completed, burst)
	}
}

func TestAsyncLiteQDepthBound(t *testing.T) {
	r := newRig(1)
	srv := NewAsync(r.sim, r.vm("s"), r.tr, cpuOnly(time.Hour),
		AsyncConfig{Name: "s", Workers: 1, LiteQDepth: 3})

	accepted := 0
	for i := 0; i < 5; i++ {
		if srv.TryAccept(&simnet.Call{OnReply: func(any) {}}) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d, want LiteQDepth=3", accepted)
	}
	if srv.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", srv.Depth())
	}
}

func TestAsyncWorkerReleasedDuringDownstreamCall(t *testing.T) {
	// One worker, many concurrent in-flight requests: the worker must not
	// be held during the downstream wait.
	r := newRig(1)
	db := NewSync(r.sim, r.vm("db"), r.tr, cpuOnly(100*time.Millisecond),
		SyncConfig{Name: "db", Threads: 50, Backlog: 50})
	app := NewAsync(r.sim, r.vm("app"), r.tr, callThrough(time.Microsecond, db, nil, time.Microsecond),
		AsyncConfig{Name: "app", Workers: 1, LiteQDepth: 1000})

	completed := 0
	for i := 0; i < 20; i++ {
		r.tr.Send(app, &simnet.Call{OnReply: func(any) { completed++ }})
	}
	var peakConcurrentDB int
	des.NewTicker(r.sim, time.Millisecond, func(time.Duration) {
		if db.InService() > peakConcurrentDB {
			peakConcurrentDB = db.InService()
		}
	})
	if err := r.sim.Run(5 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if completed != 20 {
		t.Fatalf("completed %d, want 20", completed)
	}
	if peakConcurrentDB < 10 {
		t.Fatalf("peak concurrent DB calls = %d; a held worker would serialize them", peakConcurrentDB)
	}
}

func TestAsyncFailurePropagation(t *testing.T) {
	r := newRig(1)
	r.tr.MaxAttempts = 1
	db := NewSync(r.sim, r.vm("db"), r.tr, cpuOnly(time.Hour),
		SyncConfig{Name: "db", Threads: 1, Backlog: 0})
	app := NewAsync(r.sim, r.vm("app"), r.tr, callThrough(time.Microsecond, db, nil, 0),
		AsyncConfig{Name: "app", Workers: 2, LiteQDepth: 100})

	r.tr.Send(db, &simnet.Call{}) // occupy DB forever

	var reply any
	r.sim.Schedule(time.Millisecond, func() {
		r.tr.Send(app, &simnet.Call{OnReply: func(rep any) { reply = rep }})
	})
	if err := r.sim.Run(time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if f, ok := reply.(Failure); !ok || f.Server != "db" {
		t.Fatalf("reply = %#v, want Failure{db}", reply)
	}
	if app.Depth() != 0 {
		t.Fatalf("Depth = %d, want 0 after failure", app.Depth())
	}
}

func TestAsyncBatchReleaseAfterStall(t *testing.T) {
	// Fig. 9 mechanism: during an app-tier millibottleneck the async server
	// buffers everything; when the stall ends it fires the whole batch
	// downstream almost at once.
	r := newRig(1)
	appVM := r.vm("app")
	db := NewSync(r.sim, r.vm("db"), r.tr, cpuOnly(time.Millisecond),
		SyncConfig{Name: "db", Threads: 10, Backlog: 20})
	app := NewAsync(r.sim, appVM, r.tr, callThrough(100*time.Microsecond, db, nil, 0),
		AsyncConfig{Name: "app", Workers: 4, LiteQDepth: 65535})

	appVM.Block(time.Second)
	for i := 0; i < 100; i++ {
		r.tr.Send(app, &simnet.Call{OnReply: func(any) {}})
	}
	// During the stall nothing has reached the DB.
	r.sim.Schedule(900*time.Millisecond, func() {
		if got := r.tr.Stats("db").Attempts; got != 0 {
			t.Errorf("DB saw %d attempts during the stall, want 0", got)
		}
		if app.Depth() != 100 {
			t.Errorf("app depth during stall = %d, want 100", app.Depth())
		}
	})
	// Shortly after the stall ends, the batch has hit the DB and overflowed
	// its MaxSysQDepth of 30.
	r.sim.Schedule(1100*time.Millisecond, func() {
		if got := r.tr.Stats("db").Dropped; got == 0 {
			t.Error("DB dropped nothing after the batch release; want downstream CTQO")
		}
	})
	if err := r.sim.Run(20 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
}

func TestConservationOfRequests(t *testing.T) {
	// Every accepted request is eventually completed or failed, for both
	// architectures, under a random-ish load with a mid-run stall.
	r := newRig(42)
	dbVM := r.vm("db")
	db := NewSync(r.sim, dbVM, r.tr, cpuOnly(2*time.Millisecond),
		SyncConfig{Name: "db", Threads: 20, Backlog: 30})
	app := NewAsync(r.sim, r.vm("app"), r.tr, callThrough(500*time.Microsecond, db, nil, 200*time.Microsecond),
		AsyncConfig{Name: "app", Workers: 4, LiteQDepth: 500})
	web := NewSync(r.sim, r.vm("web"), r.tr,
		callThrough(200*time.Microsecond, app, nil, 100*time.Microsecond),
		SyncConfig{Name: "web", Threads: 50, Backlog: 64})

	sent := 0
	for i := 0; i < 300; i++ {
		delay := time.Duration(r.sim.Rand().Intn(2000)) * time.Millisecond
		r.sim.Schedule(delay, func() {
			sent++
			r.tr.Send(web, &simnet.Call{OnReply: func(any) {}, OnGiveUp: func() {}})
		})
	}
	r.sim.Schedule(time.Second, func() { dbVM.Block(500 * time.Millisecond) })
	if err := r.sim.Run(5 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, srv := range []Server{web, app, db} {
		st := srv.Stats()
		if st.Accepted != st.Completed+st.Failed {
			t.Errorf("%s: accepted=%d completed=%d failed=%d (leak)",
				srv.Name(), st.Accepted, st.Completed, st.Failed)
		}
		if srv.Depth() != 0 {
			t.Errorf("%s: depth=%d at quiescence, want 0", srv.Name(), srv.Depth())
		}
	}
}

func TestSyncMultiStageProgram(t *testing.T) {
	// A ViewStory-like program: CPU, call, CPU, call, CPU.
	r := newRig(1)
	db := NewSync(r.sim, r.vm("db"), r.tr, cpuOnly(2*time.Millisecond),
		SyncConfig{Name: "db", Threads: 10, Backlog: 10})
	plan := func(any) Program {
		return Program{
			{CPU: time.Millisecond, Call: &Downstream{Dest: db}},
			{CPU: time.Millisecond, Call: &Downstream{Dest: db}},
			{CPU: 3 * time.Millisecond},
		}
	}
	app := NewSync(r.sim, r.vm("app"), r.tr, plan,
		SyncConfig{Name: "app", Threads: 4, Backlog: 4})

	var rt time.Duration
	sendAndTime(r, app, &rt)
	if err := r.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 1+2+1+2+3 = 9ms end to end.
	if rt != 9*time.Millisecond {
		t.Fatalf("RT = %v, want 9ms", rt)
	}
	if db.Stats().Completed != 2 {
		t.Fatalf("db completed = %d, want 2", db.Stats().Completed)
	}
}

func TestSyncEmptyProgram(t *testing.T) {
	r := newRig(1)
	srv := NewSync(r.sim, r.vm("s"), r.tr, func(any) Program { return nil },
		SyncConfig{Name: "s", Threads: 1, Backlog: 0})
	done := false
	r.tr.Send(srv, &simnet.Call{OnReply: func(any) { done = true }})
	if err := r.sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("empty program never replied")
	}
	if srv.InService() != 0 {
		t.Fatal("thread leaked on empty program")
	}
}

func TestAsyncContinuationsFIFO(t *testing.T) {
	// Continuations and new arrivals share the ready queue in FIFO order;
	// completion order matches arrival order for identical work.
	r := newRig(1)
	db := NewSync(r.sim, r.vm("db"), r.tr, cpuOnly(time.Millisecond),
		SyncConfig{Name: "db", Threads: 50, Backlog: 50})
	app := NewAsync(r.sim, r.vm("app"), r.tr,
		callThrough(100*time.Microsecond, db, nil, 100*time.Microsecond),
		AsyncConfig{Name: "app", Workers: 1, LiteQDepth: 100})

	var order []int
	for i := 0; i < 10; i++ {
		i := i
		r.tr.Send(app, &simnet.Call{OnReply: func(any) { order = append(order, i) }})
	}
	if err := r.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 10 {
		t.Fatalf("completed %d, want 10", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order = %v, want FIFO", order)
		}
	}
}

func TestAsyncOverheadInflation(t *testing.T) {
	run := func(overhead float64) time.Duration {
		r := newRig(1)
		srv := NewAsync(r.sim, r.vm("s"), r.tr, cpuOnly(10*time.Millisecond),
			AsyncConfig{Name: "s", Workers: 8, LiteQDepth: 100, OverheadPerThread: overhead})
		var last time.Duration
		for i := 0; i < 8; i++ {
			call := &simnet.Call{}
			call.OnReply = func(any) {
				if r.sim.Now() > last {
					last = r.sim.Now()
				}
			}
			r.tr.Send(srv, call)
		}
		if err := r.sim.Run(time.Hour); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return last
	}
	if run(0.5) <= run(0) {
		t.Fatal("async overhead model had no effect")
	}
}

func TestSyncStatsFailuresViaPool(t *testing.T) {
	// A failure path must release the pooled connection.
	r := newRig(1)
	r.tr.MaxAttempts = 1
	pool := simnet.NewConnPool(1)
	db := NewSync(r.sim, r.vm("db"), r.tr, cpuOnly(time.Hour),
		SyncConfig{Name: "db", Threads: 1, Backlog: 0})
	app := NewSync(r.sim, r.vm("app"), r.tr, callThrough(0, db, pool, 0),
		SyncConfig{Name: "app", Threads: 4, Backlog: 4})

	r.tr.Send(db, &simnet.Call{}) // occupy db forever
	replies := 0
	for i := 0; i < 3; i++ {
		r.sim.Schedule(time.Duration(i)*time.Millisecond, func() {
			r.tr.Send(app, &simnet.Call{OnReply: func(any) { replies++ }})
		})
	}
	if err := r.sim.Run(time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if replies != 3 {
		t.Fatalf("replies = %d, want 3 failures", replies)
	}
	if pool.InUse() != 0 || pool.Waiting() != 0 {
		t.Fatalf("pool leaked: inUse=%d waiting=%d", pool.InUse(), pool.Waiting())
	}
	if app.Stats().Failed != 3 {
		t.Fatalf("failed = %d, want 3", app.Stats().Failed)
	}
}

func TestSyncQueueTimeoutSheds(t *testing.T) {
	r := newRig(1)
	srv := NewSync(r.sim, r.vm("s"), r.tr, cpuOnly(10*time.Second),
		SyncConfig{Name: "s", Threads: 1, Backlog: 5, QueueTimeout: 100 * time.Millisecond})

	var failures int
	for i := 0; i < 4; i++ {
		r.tr.Send(srv, &simnet.Call{OnReply: func(rep any) {
			if _, ok := rep.(Failure); ok {
				failures++
			}
		}})
	}
	if err := r.sim.Run(time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	// One request holds the thread for 10s; the other three queue and are
	// shed at 100ms.
	if srv.Shed() != 3 || failures != 3 {
		t.Fatalf("shed=%d failures=%d, want 3/3", srv.Shed(), failures)
	}
	if srv.Queued() != 0 {
		t.Fatalf("queued = %d after shedding, want 0", srv.Queued())
	}
	if srv.Stats().Failed != 3 {
		t.Fatalf("stats.Failed = %d, want 3", srv.Stats().Failed)
	}
}

func TestSyncQueueTimeoutCancelledOnService(t *testing.T) {
	r := newRig(1)
	srv := NewSync(r.sim, r.vm("s"), r.tr, cpuOnly(10*time.Millisecond),
		SyncConfig{Name: "s", Threads: 1, Backlog: 5, QueueTimeout: time.Second})

	completed := 0
	for i := 0; i < 4; i++ {
		r.tr.Send(srv, &simnet.Call{OnReply: func(rep any) {
			if _, ok := rep.(Failure); !ok {
				completed++
			}
		}})
	}
	if err := r.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// All four finish within 40ms — nothing should be shed.
	if srv.Shed() != 0 || completed != 4 {
		t.Fatalf("shed=%d completed=%d, want 0/4", srv.Shed(), completed)
	}
}

func TestSyncQueueTimeoutDisabledByDefault(t *testing.T) {
	r := newRig(1)
	srv := NewSync(r.sim, r.vm("s"), r.tr, cpuOnly(500*time.Millisecond),
		SyncConfig{Name: "s", Threads: 1, Backlog: 5})
	for i := 0; i < 4; i++ {
		r.tr.Send(srv, &simnet.Call{OnReply: func(any) {}})
	}
	if err := r.sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if srv.Shed() != 0 {
		t.Fatalf("shed = %d with no timeout configured", srv.Shed())
	}
	if srv.Stats().Completed != 4 {
		t.Fatalf("completed = %d, want 4", srv.Stats().Completed)
	}
}
