package server

import (
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
	"ctqosim/internal/simnet"
	"ctqosim/internal/span"
)

// AsyncConfig parameterizes an event-driven server.
type AsyncConfig struct {
	// Name identifies the server in statistics and traces.
	Name string
	// Workers is the number of event-loop threads executing CPU bursts
	// (e.g. a handful of Nginx workers, or InnoDB's thread concurrency of
	// 8 for XMySQL).
	Workers int
	// LiteQDepth bounds the lightweight queue of admitted-but-unfinished
	// requests: 65535 for Nginx/XTomcat (all ephemeral ports), 2000 for
	// XMySQL's InnoDB wait queue.
	LiteQDepth int
	// OverheadPerThread inflates CPU demand with the number of busy
	// workers. With a handful of workers the effect is negligible — that
	// asymmetry versus thousands of sync threads is the point of Fig. 12.
	OverheadPerThread float64
}

// AsyncServer is an event-driven server with continuation-passing
// downstream calls.
type AsyncServer struct {
	sim       *des.Simulator
	vm        *cpu.VM
	transport *simnet.Transport
	plan      PlanFunc
	cfg       AsyncConfig

	busy     int // workers executing a CPU burst
	inFlight int // admitted requests not yet replied
	ready    []func()
	stats    Stats
}

var _ Server = (*AsyncServer)(nil)

// NewAsync creates an asynchronous server running on vm.
func NewAsync(sim *des.Simulator, vm *cpu.VM, transport *simnet.Transport, plan PlanFunc, cfg AsyncConfig) *AsyncServer {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.LiteQDepth < 1 {
		cfg.LiteQDepth = 1
	}
	return &AsyncServer{sim: sim, vm: vm, transport: transport, plan: plan, cfg: cfg}
}

// Name implements simnet.Admission.
func (a *AsyncServer) Name() string { return a.cfg.Name }

// VM implements Server.
func (a *AsyncServer) VM() *cpu.VM { return a.vm }

// Stats implements Server.
func (a *AsyncServer) Stats() Stats { return a.stats }

// Depth implements Server: every admitted, unfinished request is held in
// the lightweight queue (possibly parked waiting for a downstream reply).
func (a *AsyncServer) Depth() int { return a.inFlight }

// InService implements Server.
func (a *AsyncServer) InService() int { return a.busy }

// MaxSysQDepth implements Server.
func (a *AsyncServer) MaxSysQDepth() int { return a.cfg.LiteQDepth }

// Ready returns the number of runnable work items waiting for a worker.
func (a *AsyncServer) Ready() int { return len(a.ready) }

// TryAccept implements simnet.Admission: admit unless the lightweight
// queue is exhausted.
func (a *AsyncServer) TryAccept(call *simnet.Call) bool {
	if a.inFlight >= a.cfg.LiteQDepth {
		return false
	}
	a.inFlight++
	a.stats.Accepted++
	prog := a.plan(call.Payload)
	a.enqueueWait(call, func() { a.runStage(call, prog, 0) })
	return true
}

// enqueueWait is enqueue plus a queue-wait span covering the time the work
// item sits in the ready queue before a worker picks it up. Continuation
// hand-offs go through here too, so a request that bounces between bursts
// accumulates every wait. With tracing off the span ID is zero and the
// item is enqueued untouched — identical dynamics either way.
func (a *AsyncServer) enqueueWait(call *simnet.Call, item func()) {
	wait := call.Trace.Start(span.KindQueueWait, a.cfg.Name, call.SpanID)
	if wait == 0 {
		a.enqueue(item)
		return
	}
	a.enqueue(func() {
		call.Trace.End(wait)
		item()
	})
}

// enqueue adds a runnable work item and dispatches if a worker is free.
// Continuations (downstream replies) re-enter through here as well; they
// are never dropped — LiteQDepth bounds admissions, not continuations.
func (a *AsyncServer) enqueue(item func()) {
	a.ready = append(a.ready, item)
	a.dispatch()
}

func (a *AsyncServer) dispatch() {
	for a.busy < a.cfg.Workers && len(a.ready) > 0 {
		item := a.ready[0]
		copy(a.ready, a.ready[1:])
		a.ready[len(a.ready)-1] = nil
		a.ready = a.ready[:len(a.ready)-1]
		a.busy++
		item()
	}
}

// runStage executes stage i: the worker is held only for the CPU burst;
// a downstream call parks the request and frees the worker.
func (a *AsyncServer) runStage(call *simnet.Call, prog Program, i int) {
	if i >= len(prog) {
		a.release()
		a.finish(call, call.Payload, false)
		return
	}
	stage := prog[i]
	// One service span per CPU burst: an async request's service time is
	// the sum of its bursts, with the waits between them showing up as
	// queue-wait and downstream spans instead.
	svc := call.Trace.Start(span.KindService, a.cfg.Name, call.SpanID)
	a.vm.Submit(a.inflate(stage.CPU), func() {
		call.Trace.End(svc)
		if stage.Call == nil {
			a.release()
			a.enqueueWait(call, func() { a.runStage(call, prog, i+1) })
			return
		}
		a.callDownstream(call, prog, i, stage.Call)
	})
}

func (a *AsyncServer) callDownstream(call *simnet.Call, prog Program, i int, d *Downstream) {
	ds := call.Trace.Start(span.KindDownstream, d.Dest.Name(), call.SpanID)
	var poolWait span.ID
	send := func() {
		call.Trace.End(poolWait)
		sub := &simnet.Call{Payload: call.Payload, Trace: call.Trace, SpanID: ds}
		sub.OnReply = func(reply any) {
			if d.Pool != nil {
				d.Pool.Release()
			}
			call.Trace.End(ds)
			if f, ok := reply.(Failure); ok {
				a.finish(call, f, true)
				return
			}
			a.enqueueWait(call, func() { a.runStage(call, prog, i+1) })
		}
		sub.OnGiveUp = func() {
			if d.Pool != nil {
				d.Pool.Release()
			}
			call.Trace.End(ds)
			a.finish(call, Failure{Server: d.Dest.Name()}, true)
		}
		a.transport.Send(d.Dest, sub)
	}
	// The worker is released before the call is issued; the reply arrives
	// as a continuation. This is the doGet/eventHandler split of the
	// paper's Fig. 14.
	a.release()
	if d.Pool != nil {
		poolWait = call.Trace.Start(span.KindPoolWait, d.Dest.Name(), ds)
		d.Pool.Acquire(send)
		return
	}
	send()
}

func (a *AsyncServer) release() {
	a.busy--
	// Dispatch is deferred to a fresh event so the released worker picks
	// up queued work after the current call stack unwinds.
	a.sim.Schedule(0, a.dispatch)
}

func (a *AsyncServer) finish(call *simnet.Call, payload any, failed bool) {
	if failed {
		a.stats.Failed++
	} else {
		a.stats.Completed++
	}
	a.inFlight--
	replyNow(call, payload)
}

func (a *AsyncServer) inflate(d time.Duration) time.Duration {
	if a.cfg.OverheadPerThread <= 0 {
		return d
	}
	factor := 1 + a.cfg.OverheadPerThread*float64(a.busy)
	return time.Duration(float64(d) * factor)
}
