package server

import (
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
	"ctqosim/internal/simnet"
	"ctqosim/internal/span"
)

// SyncConfig parameterizes a synchronous RPC server.
type SyncConfig struct {
	// Name identifies the server in statistics and traces.
	Name string
	// Threads is the request thread pool size (Apache 150, Tomcat 165,
	// MySQL 100 in the paper).
	Threads int
	// Backlog is the TCP accept-queue capacity (128 in the paper's
	// kernel). Threads+Backlog is the MaxSysQDepth.
	Backlog int
	// SpareThreads, if positive, models Apache's spare-process escalation:
	// after the pool stays saturated for SpareAfter, a second process adds
	// SpareThreads more threads (the paper's Fig. 3b second plateau at
	// 428 = 278 + 150).
	SpareThreads int
	// SpareAfter is the sustained-saturation delay before escalation.
	// Zero with SpareThreads>0 defaults to 10 seconds.
	SpareAfter time.Duration
	// OverheadPerThread inflates every CPU demand by
	// (1 + OverheadPerThread × busyThreads), modeling context-switch and
	// scheduling overhead at high thread counts (the paper's Fig. 12).
	OverheadPerThread float64
	// QueueTimeout, if positive, sheds requests that wait in the accept
	// queue longer than this: they are answered with a Failure instead of
	// holding the queue — the fail-fast alternative to the paper's
	// enlarge-the-buffers discussion (Section V-E). Zero disables
	// shedding.
	QueueTimeout time.Duration
}

const defaultSpareAfter = 10 * time.Second

// SyncServer is a thread-per-request RPC server.
type SyncServer struct {
	sim       *des.Simulator
	vm        *cpu.VM
	transport *simnet.Transport
	plan      PlanFunc
	cfg       SyncConfig

	busy       int
	spareAdded bool
	spareArmed bool
	queue      []*queuedCall
	stats      Stats
	shed       int64
}

// queuedCall is an accept-queue entry with its optional shedding timer and
// its open queue-wait span.
type queuedCall struct {
	call  *simnet.Call
	timer *des.Event
	wait  span.ID
}

var _ Server = (*SyncServer)(nil)

// NewSync creates a synchronous server running on vm, planning request
// programs with plan and issuing downstream calls over transport.
func NewSync(sim *des.Simulator, vm *cpu.VM, transport *simnet.Transport, plan PlanFunc, cfg SyncConfig) *SyncServer {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Backlog < 0 {
		cfg.Backlog = 0
	}
	if cfg.SpareThreads > 0 && cfg.SpareAfter <= 0 {
		cfg.SpareAfter = defaultSpareAfter
	}
	return &SyncServer{sim: sim, vm: vm, transport: transport, plan: plan, cfg: cfg}
}

// Name implements simnet.Admission.
func (s *SyncServer) Name() string { return s.cfg.Name }

// VM implements Server.
func (s *SyncServer) VM() *cpu.VM { return s.vm }

// Stats implements Server.
func (s *SyncServer) Stats() Stats { return s.stats }

// Depth implements Server.
func (s *SyncServer) Depth() int { return s.busy + len(s.queue) }

// InService implements Server.
func (s *SyncServer) InService() int { return s.busy }

// MaxSysQDepth implements Server. It reflects the current thread count, so
// it rises when the spare process has spawned.
func (s *SyncServer) MaxSysQDepth() int { return s.threadCap() + s.cfg.Backlog }

// Queued returns the number of requests waiting in the accept queue.
func (s *SyncServer) Queued() int { return len(s.queue) }

// TryAccept implements simnet.Admission: admit to a free thread, else to
// the accept queue, else drop.
func (s *SyncServer) TryAccept(call *simnet.Call) bool {
	if s.busy < s.threadCap() {
		s.stats.Accepted++
		s.startOnThread(call)
		return true
	}
	s.maybeArmSpare()
	if len(s.queue) < s.cfg.Backlog {
		s.stats.Accepted++
		entry := &queuedCall{
			call: call,
			wait: call.Trace.Start(span.KindQueueWait, s.cfg.Name, call.SpanID),
		}
		if s.cfg.QueueTimeout > 0 {
			entry.timer = s.sim.Schedule(s.cfg.QueueTimeout, func() {
				s.shedEntry(entry)
			})
		}
		s.queue = append(s.queue, entry)
		return true
	}
	return false
}

// Shed returns the number of requests dropped from the accept queue by
// the QueueTimeout policy.
func (s *SyncServer) Shed() int64 { return s.shed }

// shedEntry removes a timed-out entry from the queue and fails it fast.
func (s *SyncServer) shedEntry(entry *queuedCall) {
	for i, q := range s.queue {
		if q != entry {
			continue
		}
		copy(s.queue[i:], s.queue[i+1:])
		s.queue[len(s.queue)-1] = nil
		s.queue = s.queue[:len(s.queue)-1]
		s.shed++
		s.stats.Failed++
		entry.call.Trace.End(entry.wait)
		entry.call.Trace.Annotate(entry.wait, "shed by queue timeout")
		replyNow(entry.call, Failure{Server: s.cfg.Name})
		return
	}
}

func (s *SyncServer) threadCap() int {
	if s.spareAdded {
		return s.cfg.Threads + s.cfg.SpareThreads
	}
	return s.cfg.Threads
}

// maybeArmSpare schedules the spare-process check the first time the pool
// saturates. If the pool is still saturated when the check fires, the spare
// threads come online and absorb the accept queue.
func (s *SyncServer) maybeArmSpare() {
	if s.cfg.SpareThreads <= 0 || s.spareAdded || s.spareArmed {
		return
	}
	s.spareArmed = true
	s.sim.Schedule(s.cfg.SpareAfter, func() {
		s.spareArmed = false
		if s.busy < s.threadCap() {
			return // pressure subsided; stay at the base pool
		}
		s.spareAdded = true
		s.drainQueue()
	})
}

func (s *SyncServer) startOnThread(call *simnet.Call) {
	s.busy++
	prog := s.plan(call.Payload)
	// The service span covers the whole thread-held visit; downstream and
	// retransmission children subtract out of its exclusive time.
	svc := call.Trace.Start(span.KindService, s.cfg.Name, call.SpanID)
	s.runStage(call, svc, prog, 0)
}

// runStage executes stage i of the program: CPU burst, then the optional
// downstream call, then the next stage. The thread (busy slot) is held
// throughout, including downstream retransmission waits.
func (s *SyncServer) runStage(call *simnet.Call, svc span.ID, prog Program, i int) {
	if i >= len(prog) {
		s.finish(call, svc, call.Payload, false)
		return
	}
	stage := prog[i]
	demand := s.inflate(stage.CPU)
	s.vm.Submit(demand, func() {
		if stage.Call == nil {
			s.runStage(call, svc, prog, i+1)
			return
		}
		s.callDownstream(call, svc, prog, i, stage.Call)
	})
}

func (s *SyncServer) callDownstream(call *simnet.Call, svc span.ID, prog Program, i int, d *Downstream) {
	ds := call.Trace.Start(span.KindDownstream, d.Dest.Name(), svc)
	var poolWait span.ID
	send := func() {
		call.Trace.End(poolWait)
		sub := &simnet.Call{Payload: call.Payload, Trace: call.Trace, SpanID: ds}
		sub.OnReply = func(reply any) {
			if d.Pool != nil {
				d.Pool.Release()
			}
			call.Trace.End(ds)
			if f, ok := reply.(Failure); ok {
				s.finish(call, svc, f, true)
				return
			}
			s.runStage(call, svc, prog, i+1)
		}
		sub.OnGiveUp = func() {
			if d.Pool != nil {
				d.Pool.Release()
			}
			call.Trace.End(ds)
			s.finish(call, svc, Failure{Server: d.Dest.Name()}, true)
		}
		s.transport.Send(d.Dest, sub)
	}
	if d.Pool != nil {
		// The thread waits (still held) until a connection frees up.
		poolWait = call.Trace.Start(span.KindPoolWait, d.Dest.Name(), ds)
		d.Pool.Acquire(send)
		return
	}
	send()
}

// finish replies upstream, releases the thread and pulls the next queued
// request onto it.
func (s *SyncServer) finish(call *simnet.Call, svc span.ID, payload any, failed bool) {
	if failed {
		s.stats.Failed++
	} else {
		s.stats.Completed++
	}
	s.busy--
	call.Trace.End(svc)
	s.drainQueue()
	replyNow(call, payload)
}

func (s *SyncServer) drainQueue() {
	for s.busy < s.threadCap() && len(s.queue) > 0 {
		next := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue[len(s.queue)-1] = nil
		s.queue = s.queue[:len(s.queue)-1]
		if next.timer != nil {
			s.sim.Cancel(next.timer)
		}
		next.call.Trace.End(next.wait)
		s.startOnThread(next.call)
	}
}

// inflate applies the thread-management overhead model of Fig. 12.
func (s *SyncServer) inflate(d time.Duration) time.Duration {
	if s.cfg.OverheadPerThread <= 0 {
		return d
	}
	factor := 1 + s.cfg.OverheadPerThread*float64(s.busy)
	return time.Duration(float64(d) * factor)
}
