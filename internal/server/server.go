// Package server implements the two server architectures the paper
// compares.
//
// SyncServer models a thread-per-request RPC server (Apache worker MPM,
// Tomcat with the BIO connector, MySQL): a bounded thread pool serves
// admitted requests, a bounded accept queue (the TCP backlog) holds the
// overflow, and anything beyond threads+backlog — the paper's MaxSysQDepth —
// is a dropped packet. Crucially, a thread is held for the full duration of
// every downstream RPC, including retransmission waits, which is the
// coupling that propagates congestion upstream (upstream CTQO).
//
// AsyncServer models an event-driven server (Nginx, XTomcat, XMySQL's
// InnoDB queue): a few event-loop workers execute CPU bursts, downstream
// calls release the worker and resume as continuations, and admitted
// requests wait in a lightweight queue bounded only by LiteQDepth (e.g.
// 65535). Nothing is dropped until LiteQDepth is exceeded, which removes
// the server from the cross-tier dependency chain.
package server

import (
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/simnet"
)

// Stage is one step of a request's processing at a server: a CPU burst
// followed by an optional downstream call.
type Stage struct {
	// CPU is the CPU demand consumed before the call (if any).
	CPU time.Duration
	// Call, if non-nil, is issued after the CPU burst completes.
	Call *Downstream
}

// Downstream describes a call to the next tier.
type Downstream struct {
	// Dest is the receiving server.
	Dest simnet.Admission
	// Pool, if non-nil, is acquired before sending and released when the
	// reply arrives (the JDBC connection pool between Tomcat and MySQL).
	Pool *simnet.ConnPool
}

// Program is the processing recipe for one request at one server.
type Program []Stage

// PlanFunc derives a Program from a request payload; the ntier package
// supplies one per tier, encoding the RUBBoS interaction mix.
type PlanFunc func(payload any) Program

// Stats counts a server's request outcomes.
type Stats struct {
	Accepted  int64 // admitted requests
	Completed int64 // replied successfully
	Failed    int64 // completed with a failed downstream call
}

// Server is the interface shared by both architectures; ntier wires tiers
// against it and the metrics monitor samples it.
type Server interface {
	simnet.Admission
	// Depth is the number of requests held by the server: in service plus
	// queued. The paper's "queued requests" timelines plot this value.
	Depth() int
	// InService is the number of requests currently holding a thread or
	// worker (including sync threads blocked on downstream calls).
	InService() int
	// MaxSysQDepth is the admission bound: threads+backlog for a sync
	// server, LiteQDepth for an async one.
	MaxSysQDepth() int
	// VM returns the virtual machine the server runs on.
	VM() *cpu.VM
	// Stats returns a copy of the server's counters.
	Stats() Stats
}

// Failure is delivered as the reply payload when a request could not be
// completed because a downstream call exhausted its retransmissions.
type Failure struct {
	// Server is the downstream destination that never admitted the call.
	Server string
}

// replyNow invokes a call's reply callback if present.
func replyNow(call *simnet.Call, payload any) {
	if call.OnReply != nil {
		call.OnReply(payload)
	}
}
