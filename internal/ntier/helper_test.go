package ntier

import "ctqosim/internal/simnet"

// newCallWithReply builds a payload-less call that flips done on reply.
func newCallWithReply(done *bool) *simnet.Call {
	return &simnet.Call{
		Payload: "not-a-request",
		OnReply: func(any) { *done = true },
	}
}
