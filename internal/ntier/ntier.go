// Package ntier assembles complete 3-tier systems out of the substrate
// packages, mirroring the paper's testbed (Fig. 13): a web tier, an
// application tier and a database tier, each on its own VM, with optional
// VM consolidation (two systems sharing one physical node, Fig. 2) and the
// four architecture levels of the evaluation:
//
//	NX=0  Apache — Tomcat — MySQL      (all synchronous)
//	NX=1  Nginx — Tomcat — MySQL
//	NX=2  Nginx — XTomcat — MySQL
//	NX=3  Nginx — XTomcat — XMySQL     (all asynchronous)
package ntier

import (
	"fmt"
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
	"ctqosim/internal/server"
	"ctqosim/internal/simnet"
	"ctqosim/internal/workload"
)

// Arch selects a tier's server architecture.
type Arch int

// Architectures.
const (
	// Sync is a thread-per-request RPC server.
	Sync Arch = iota + 1
	// Async is an event-driven server with a lightweight queue.
	Async
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case Sync:
		return "sync"
	case Async:
		return "async"
	default:
		return "unknown"
	}
}

// TierSpec describes one tier of a system.
type TierSpec struct {
	// Name is the server name (e.g. "apache"); the full name is prefixed
	// with the system name.
	Name string
	// Arch selects sync or async.
	Arch Arch
	// Threads is the thread pool size (sync) or worker count (async).
	Threads int
	// Backlog is the TCP accept queue (sync only).
	Backlog int
	// LiteQDepth bounds the lightweight queue (async only).
	LiteQDepth int
	// SpareThreads and SpareAfter configure the sync spare-process
	// escalation (Apache).
	SpareThreads int
	SpareAfter   time.Duration
	// OverheadPerThread is the per-busy-thread CPU inflation (Fig. 12).
	OverheadPerThread float64
	// QueueTimeout enables fail-fast load shedding from the sync accept
	// queue (see server.SyncConfig.QueueTimeout).
	QueueTimeout time.Duration
	// Cores is the VM's vCPU count; zero means 1.
	Cores float64
	// Node optionally places the tier's VM on a named shared node for
	// consolidation experiments; empty means a dedicated node.
	Node string
	// Weight is the VM's CPU share on its node; zero means 1.
	Weight float64
}

// SystemSpec describes a complete 3-tier system.
type SystemSpec struct {
	// Name prefixes all server and VM names ("steady", "bursty").
	Name string
	// Web, App, DB are the three tiers, client side first.
	Web, App, DB TierSpec
	// DBConnPool bounds the app→db connection pool (sync JDBC, 50 in the
	// paper); zero disables pooling (the async connector).
	DBConnPool int
}

// System is a wired 3-tier system.
type System struct {
	// Spec echoes the build input.
	Spec SystemSpec
	// Web, App, DB are the running servers, client side first.
	Web, App, DB server.Server
	// WebVM, AppVM, DBVM are the hosting VMs.
	WebVM, AppVM, DBVM *cpu.VM
	// Pool is the app→db connection pool, nil when disabled.
	Pool *simnet.ConnPool
	// Transport carries this system's inter-tier and client packets.
	Transport *simnet.Transport
}

// Servers returns the tiers in invocation order.
func (s *System) Servers() []server.Server {
	return []server.Server{s.Web, s.App, s.DB}
}

// VMs returns the tier VMs in invocation order.
func (s *System) VMs() []*cpu.VM {
	return []*cpu.VM{s.WebVM, s.AppVM, s.DBVM}
}

// TierNames returns the full server names in invocation order.
func (s *System) TierNames() []string {
	return []string{s.Web.Name(), s.App.Name(), s.DB.Name()}
}

// Frontend returns the workload entry point for this system.
func (s *System) Frontend() workload.Frontend {
	return workload.Frontend{Transport: s.Transport, Target: s.Web}
}

// TotalDrops sums dropped packets across all hops of this system.
func (s *System) TotalDrops() int64 { return s.Transport.TotalDrops() }

// Cluster owns the physical nodes so multiple systems can share them
// (VM consolidation).
type Cluster struct {
	sim   *des.Simulator
	nodes map[string]*cpu.Node
}

// NewCluster creates an empty cluster.
func NewCluster(sim *des.Simulator) *Cluster {
	return &Cluster{sim: sim, nodes: make(map[string]*cpu.Node)}
}

// Node returns the named physical node, creating it with the given core
// count on first use.
func (c *Cluster) Node(name string, cores float64) *cpu.Node {
	if n, ok := c.nodes[name]; ok {
		return n
	}
	n := cpu.NewNode(c.sim, name, cores)
	c.nodes[name] = n
	return n
}

// Build wires a system per spec. Each tier gets its own transport-visible
// server; tiers with an explicit Node share that physical node with
// whatever else is placed there.
func (c *Cluster) Build(spec SystemSpec) *System {
	tr := simnet.NewTransport(c.sim)
	sys := &System{Spec: spec, Transport: tr}

	if spec.DBConnPool > 0 {
		sys.Pool = simnet.NewConnPool(spec.DBConnPool)
	}

	sys.DBVM = c.placeVM(spec.Name, spec.DB)
	sys.DB = c.buildServer(spec.Name, spec.DB, sys.DBVM, tr, dbPlan())

	sys.AppVM = c.placeVM(spec.Name, spec.App)
	sys.App = c.buildServer(spec.Name, spec.App, sys.AppVM, tr,
		appPlan(sys.DB, sys.Pool))

	sys.WebVM = c.placeVM(spec.Name, spec.Web)
	sys.Web = c.buildServer(spec.Name, spec.Web, sys.WebVM, tr,
		webPlan(sys.App))

	return sys
}

func (c *Cluster) placeVM(sysName string, t TierSpec) *cpu.VM {
	cores := t.Cores
	if cores <= 0 {
		cores = 1
	}
	weight := t.Weight
	if weight <= 0 {
		weight = 1
	}
	vmName := fullName(sysName, t.Name)
	nodeName := t.Node
	if nodeName == "" {
		nodeName = vmName + "-host"
	}
	// A dedicated node exactly fits the VM; a shared node is created with
	// a single core (the paper's consolidation host) unless it already
	// exists.
	node := c.Node(nodeName, cores)
	return node.AddVM(vmName, weight, cores)
}

func (c *Cluster) buildServer(sysName string, t TierSpec, vm *cpu.VM, tr *simnet.Transport, plan server.PlanFunc) server.Server {
	name := fullName(sysName, t.Name)
	switch t.Arch {
	case Async:
		return server.NewAsync(c.sim, vm, tr, plan, server.AsyncConfig{
			Name:              name,
			Workers:           t.Threads,
			LiteQDepth:        t.LiteQDepth,
			OverheadPerThread: t.OverheadPerThread,
		})
	case Sync:
		fallthrough
	default:
		return server.NewSync(c.sim, vm, tr, plan, server.SyncConfig{
			Name:              name,
			Threads:           t.Threads,
			Backlog:           t.Backlog,
			SpareThreads:      t.SpareThreads,
			SpareAfter:        t.SpareAfter,
			OverheadPerThread: t.OverheadPerThread,
			QueueTimeout:      t.QueueTimeout,
		})
	}
}

func fullName(sys, tier string) string {
	if sys == "" {
		return tier
	}
	return fmt.Sprintf("%s-%s", sys, tier)
}

// classOf extracts the interaction class from a request payload; unknown
// payloads get a small default demand so stray calls stay harmless.
func classOf(payload any) workload.Class {
	if req, ok := payload.(*workload.Request); ok {
		return req.Class
	}
	return workload.Class{Name: "unknown", WebCPU: 100 * time.Microsecond}
}

// webPlan serves static requests locally and proxies dynamic ones to the
// app tier.
func webPlan(app server.Server) server.PlanFunc {
	return func(payload any) server.Program {
		c := classOf(payload)
		if c.Static || app == nil {
			return server.Program{{CPU: c.WebCPU}}
		}
		half := c.WebCPU / 2
		return server.Program{
			{CPU: half, Call: &server.Downstream{Dest: app}},
			{CPU: c.WebCPU - half},
		}
	}
}

// appPlan splits the app demand around the class's DB queries, mirroring
// the servlet structure of the paper's Fig. 14: a small pre-processing
// chunk before each query (forming the query is cheap) and the bulk of the
// work after the last result (post-processing and response rendering).
// The small pre-query chunk matters for Fig. 9: after an app-tier
// millibottleneck ends, the backlog's first query fires after only ~15% of
// the app demand, so the batch hits the database faster than the database
// can serve it.
func appPlan(db server.Server, pool *simnet.ConnPool) server.PlanFunc {
	return func(payload any) server.Program {
		c := classOf(payload)
		if c.DBQueries <= 0 || db == nil {
			return server.Program{{CPU: c.AppCPU}}
		}
		chunk := c.AppCPU * 15 / 100
		prog := make(server.Program, 0, c.DBQueries+1)
		for q := 0; q < c.DBQueries; q++ {
			prog = append(prog, server.Stage{
				CPU:  chunk,
				Call: &server.Downstream{Dest: db, Pool: pool},
			})
		}
		post := c.AppCPU - chunk*time.Duration(c.DBQueries)
		if post < 0 {
			post = 0
		}
		prog = append(prog, server.Stage{CPU: post})
		return prog
	}
}

// dbPlan executes one query's worth of CPU.
func dbPlan() server.PlanFunc {
	return func(payload any) server.Program {
		return server.Program{{CPU: classOf(payload).DBCPU}}
	}
}
