package ntier

import (
	"testing"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/workload"
)

func run(t *testing.T, sim *des.Simulator, horizon time.Duration) {
	t.Helper()
	if err := sim.Run(horizon); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
}

func TestSpecMaxSysQDepthsMatchPaper(t *testing.T) {
	sim := des.NewSimulator(1)
	sys := NewCluster(sim).Build(Spec("s", NX0))

	if got := sys.Web.MaxSysQDepth(); got != 278 {
		t.Errorf("MaxSysQDepth(Apache) = %d, want 278", got)
	}
	if got := sys.App.MaxSysQDepth(); got != 293 {
		t.Errorf("MaxSysQDepth(Tomcat) = %d, want 293", got)
	}
	if got := sys.DB.MaxSysQDepth(); got != 228 {
		t.Errorf("MaxSysQDepth(MySQL) = %d, want 228", got)
	}
	if sys.Pool == nil || sys.Pool.Size() != 50 {
		t.Error("NX0 must have the 50-connection JDBC pool")
	}
}

func TestSpecNXLevels(t *testing.T) {
	tests := []struct {
		level    NX
		webArch  Arch
		appArch  Arch
		dbArch   Arch
		withPool bool
	}{
		{NX0, Sync, Sync, Sync, true},
		{NX1, Async, Sync, Sync, true},
		{NX2, Async, Async, Sync, false},
		{NX3, Async, Async, Async, false},
	}
	for _, tt := range tests {
		spec := Spec("s", tt.level)
		if spec.Web.Arch != tt.webArch || spec.App.Arch != tt.appArch || spec.DB.Arch != tt.dbArch {
			t.Errorf("%v: archs = %v/%v/%v", tt.level, spec.Web.Arch, spec.App.Arch, spec.DB.Arch)
		}
		if (spec.DBConnPool > 0) != tt.withPool {
			t.Errorf("%v: pool = %d", tt.level, spec.DBConnPool)
		}
	}
}

func TestNXString(t *testing.T) {
	if NX0.String() != "Apache-Tomcat-MySQL" || NX3.String() != "Nginx-XTomcat-XMySQL" {
		t.Fatalf("NX names wrong: %v, %v", NX0, NX3)
	}
	if NX(9).String() != "invalid" {
		t.Fatal("invalid NX level should say so")
	}
}

func TestEndToEndRequestAllLevels(t *testing.T) {
	for _, level := range []NX{NX0, NX1, NX2, NX3} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			sim := des.NewSimulator(1)
			sys := NewCluster(sim).Build(Spec("s", level))

			rec := make([]*workload.Request, 0, 1)
			cl := workload.NewClosedLoop(sim, sys.Frontend(), workload.ClosedLoopConfig{
				Clients:   20,
				ThinkTime: 500 * time.Millisecond,
				Sink:      workload.SinkFunc(func(r *workload.Request) { rec = append(rec, r) }),
			})
			cl.Start()
			run(t, sim, 10*time.Second)

			if len(rec) < 100 {
				t.Fatalf("completed %d requests, want many", len(rec))
			}
			for _, r := range rec {
				if r.Failed {
					t.Fatalf("request %d failed", r.ID)
				}
				if rt := r.ResponseTime(); rt <= 0 || rt > time.Second {
					t.Fatalf("request %d RT = %v", r.ID, rt)
				}
			}
			if sys.TotalDrops() != 0 {
				t.Fatalf("drops = %d under light load, want 0", sys.TotalDrops())
			}
		})
	}
}

func TestStaticRequestsSkipAppTier(t *testing.T) {
	sim := des.NewSimulator(1)
	sys := NewCluster(sim).Build(Spec("s", NX0))

	mix := workload.NewMix().Add(workload.ClassStatic, 1)
	cl := workload.NewClosedLoop(sim, sys.Frontend(), workload.ClosedLoopConfig{
		Clients: 10, ThinkTime: 100 * time.Millisecond, Mix: mix,
	})
	cl.Start()
	run(t, sim, 5*time.Second)

	if sys.App.Stats().Accepted != 0 || sys.DB.Stats().Accepted != 0 {
		t.Fatalf("static requests reached app/db: app=%d db=%d",
			sys.App.Stats().Accepted, sys.DB.Stats().Accepted)
	}
	if sys.Web.Stats().Completed == 0 {
		t.Fatal("web tier completed nothing")
	}
}

func TestDBQueriesPerRequest(t *testing.T) {
	sim := des.NewSimulator(1)
	sys := NewCluster(sim).Build(Spec("s", NX0))

	// ViewStory issues 2 DB queries.
	mix := workload.NewMix().Add(workload.ClassViewStory, 1)
	cl := workload.NewClosedLoop(sim, sys.Frontend(), workload.ClosedLoopConfig{
		Clients: 5, ThinkTime: time.Second, Mix: mix,
	})
	cl.Start()
	run(t, sim, 10*time.Second)

	web := sys.Web.Stats().Completed
	db := sys.DB.Stats().Completed
	if web == 0 {
		t.Fatal("no completions")
	}
	if db != 2*web {
		t.Fatalf("db completions = %d, want 2× web (%d)", db, 2*web)
	}
}

func TestConsolidationSharesNode(t *testing.T) {
	sim := des.NewSimulator(1)
	cluster := NewCluster(sim)

	steadySpec := Spec("steady", NX0)
	steadySpec.App.Node = "shared-host" // SysSteady-Tomcat on the shared core
	steady := cluster.Build(steadySpec)
	bursty := cluster.Build(BurstySpec("bursty", "mysql", "shared-host"))

	if steady.AppVM.Node() != bursty.DBVM.Node() {
		t.Fatal("consolidated VMs are not on the same physical node")
	}
	if steady.AppVM.Node().Name() != "shared-host" {
		t.Fatalf("node name = %q", steady.AppVM.Node().Name())
	}
	// The other tiers remain on dedicated hosts.
	if steady.WebVM.Node() == steady.AppVM.Node() {
		t.Fatal("web tier wrongly placed on the shared node")
	}
}

func TestBurstySpecNeverDropsItsOwnBatches(t *testing.T) {
	sim := des.NewSimulator(1)
	cluster := NewCluster(sim)
	bursty := cluster.Build(BurstySpec("bursty", "mysql", "shared"))

	b := workload.NewBatch(sim, bursty.Frontend(), workload.BatchConfig{
		Size: 400, Interval: 15 * time.Second,
	})
	b.Start()
	run(t, sim, 40*time.Second)

	if bursty.TotalDrops() != 0 {
		t.Fatalf("SysBursty dropped %d of its own packets; its queues must be generous", bursty.TotalDrops())
	}
	if bursty.DB.Stats().Completed == 0 {
		t.Fatal("no bursty completions")
	}
}

func TestUtilizationCalibration(t *testing.T) {
	// Scaled-down WL 7000: 700 clients at 0.7s think ≈ 1000 req/s.
	// The app tier must be the busiest at roughly 75%.
	sim := des.NewSimulator(1)
	sys := NewCluster(sim).Build(Spec("s", NX0))

	cl := workload.NewClosedLoop(sim, sys.Frontend(), workload.ClosedLoopConfig{
		Clients: 700, ThinkTime: 700 * time.Millisecond,
	})
	cl.Start()
	run(t, sim, 30*time.Second)

	appUtil := sys.AppVM.Usage().Runnable.Seconds() / 30
	if appUtil < 0.6 || appUtil > 0.9 {
		t.Fatalf("app utilization = %.2f, want ~0.75", appUtil)
	}
	webUtil := sys.WebVM.Usage().Runnable.Seconds() / 30
	dbUtil := sys.DBVM.Usage().Runnable.Seconds() / 30
	if webUtil >= appUtil || dbUtil >= appUtil {
		t.Fatalf("app must dominate: web=%.2f app=%.2f db=%.2f", webUtil, appUtil, dbUtil)
	}
	if sys.TotalDrops() != 0 {
		t.Fatalf("steady 75%% load dropped %d packets", sys.TotalDrops())
	}
}

func TestTierNamesAndAccessors(t *testing.T) {
	sim := des.NewSimulator(1)
	sys := NewCluster(sim).Build(Spec("steady", NX0))

	names := sys.TierNames()
	want := []string{"steady-apache", "steady-tomcat", "steady-mysql"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("TierNames = %v, want %v", names, want)
		}
	}
	if len(sys.Servers()) != 3 || len(sys.VMs()) != 3 {
		t.Fatal("Servers/VMs accessors wrong length")
	}
}

func TestClusterNodeReuse(t *testing.T) {
	sim := des.NewSimulator(1)
	c := NewCluster(sim)
	a := c.Node("n", 1)
	b := c.Node("n", 4) // existing node wins; cores ignored
	if a != b {
		t.Fatal("Node did not reuse the existing node")
	}
	if a.Cores() != 1 {
		t.Fatalf("cores = %v, want 1 (first creation)", a.Cores())
	}
}

func TestArchString(t *testing.T) {
	if Sync.String() != "sync" || Async.String() != "async" || Arch(0).String() != "unknown" {
		t.Fatal("Arch.String wrong")
	}
}

func TestUnknownPayloadGetsDefaultPlan(t *testing.T) {
	// A stray non-Request payload should still be processed harmlessly.
	sim := des.NewSimulator(1)
	sys := NewCluster(sim).Build(Spec("s", NX0))

	done := false
	sys.Transport.Send(sys.Web, newCallWithReply(&done))
	run(t, sim, time.Second)
	if !done {
		t.Fatal("unknown payload never completed")
	}
}
