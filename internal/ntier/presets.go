package ntier

import "time"

// Paper configuration constants (Sections III–V and Appendix A).
const (
	// KernelBacklog is the Linux TCP accept-queue size of the paper's
	// kernel.
	KernelBacklog = 128

	// ApacheThreads is the web-tier worker pool (MaxSysQDepth(Apache) =
	// 150+128 = 278).
	ApacheThreads = 150
	// ApacheSpareThreads is the second httpd process that raises
	// MaxSysQDepth(Apache) to 428 under sustained saturation (Fig. 3b).
	ApacheSpareThreads = 150

	// TomcatThreads is the app-tier pool (MaxSysQDepth(Tomcat) = 165+128 =
	// 293, Fig. 7b).
	TomcatThreads = 165
	// MySQLThreads is the db-tier pool (MaxSysQDepth(MySQL) = 100+128 =
	// 228, Figs. 8b/9b).
	MySQLThreads = 100
	// JDBCPoolSize is Tomcat's connection pool to MySQL; in the fully
	// synchronous system it caps MySQL's effective queue at ~50.
	JDBCPoolSize = 50

	// NginxWorkers is the web tier's event-loop worker count.
	NginxWorkers = 4
	// XTomcatWorkers is the app tier's event-loop worker count.
	XTomcatWorkers = 8
	// InnoDBThreads is XMySQL's innodb_thread_concurrency.
	InnoDBThreads = 8

	// WebLiteQDepth is LiteQDepth(Nginx)/LiteQDepth(XTomcat): all
	// ephemeral port numbers.
	WebLiteQDepth = 65535
	// InnoDBLiteQDepth is XMySQL's lightweight wait queue.
	InnoDBLiteQDepth = 2000
)

// NX is the paper's count of asynchronous tiers, 0 through 3.
type NX int

// The four evaluated configurations.
const (
	// NX0 is Apache-Tomcat-MySQL.
	NX0 NX = 0
	// NX1 is Nginx-Tomcat-MySQL (Section V-B).
	NX1 NX = 1
	// NX2 is Nginx-XTomcat-MySQL (Section V-C).
	NX2 NX = 2
	// NX3 is Nginx-XTomcat-XMySQL (Section V-D).
	NX3 NX = 3
)

// String implements fmt.Stringer.
func (n NX) String() string {
	switch n {
	case NX0:
		return "Apache-Tomcat-MySQL"
	case NX1:
		return "Nginx-Tomcat-MySQL"
	case NX2:
		return "Nginx-XTomcat-MySQL"
	case NX3:
		return "Nginx-XTomcat-XMySQL"
	default:
		return "invalid"
	}
}

// apacheTier returns the synchronous web tier.
func apacheTier() TierSpec {
	return TierSpec{
		Name:         "apache",
		Arch:         Sync,
		Threads:      ApacheThreads,
		Backlog:      KernelBacklog,
		SpareThreads: ApacheSpareThreads,
		SpareAfter:   3 * time.Second,
	}
}

// nginxTier returns the asynchronous web tier.
func nginxTier() TierSpec {
	return TierSpec{
		Name:       "nginx",
		Arch:       Async,
		Threads:    NginxWorkers,
		LiteQDepth: WebLiteQDepth,
	}
}

// tomcatTier returns the synchronous app tier.
func tomcatTier() TierSpec {
	return TierSpec{
		Name:    "tomcat",
		Arch:    Sync,
		Threads: TomcatThreads,
		Backlog: KernelBacklog,
	}
}

// xtomcatTier returns the asynchronous app tier.
func xtomcatTier() TierSpec {
	return TierSpec{
		Name:       "xtomcat",
		Arch:       Async,
		Threads:    XTomcatWorkers,
		LiteQDepth: WebLiteQDepth,
	}
}

// mysqlTier returns the synchronous db tier.
func mysqlTier() TierSpec {
	return TierSpec{
		Name:    "mysql",
		Arch:    Sync,
		Threads: MySQLThreads,
		Backlog: KernelBacklog,
	}
}

// xmysqlTier returns the asynchronous db tier (InnoDB lightweight queue).
func xmysqlTier() TierSpec {
	return TierSpec{
		Name:       "xmysql",
		Arch:       Async,
		Threads:    InnoDBThreads,
		LiteQDepth: InnoDBLiteQDepth,
	}
}

// Spec returns the paper's system configuration at the given NX level,
// named sysName.
func Spec(sysName string, level NX) SystemSpec {
	spec := SystemSpec{Name: sysName}
	switch level {
	case NX1:
		spec.Web, spec.App, spec.DB = nginxTier(), tomcatTier(), mysqlTier()
		spec.DBConnPool = JDBCPoolSize
	case NX2:
		// XTomcat uses the asynchronous MySQL connector: no bounded JDBC
		// pool, so MySQL's own MaxSysQDepth (228) is the effective bound.
		spec.Web, spec.App, spec.DB = nginxTier(), xtomcatTier(), mysqlTier()
	case NX3:
		spec.Web, spec.App, spec.DB = nginxTier(), xtomcatTier(), xmysqlTier()
	case NX0:
		fallthrough
	default:
		spec.Web, spec.App, spec.DB = apacheTier(), tomcatTier(), mysqlTier()
		spec.DBConnPool = JDBCPoolSize
	}
	return spec
}

// BurstySpec returns the SysBursty co-tenant of the consolidation
// experiments: a small synchronous 3-tier system with queues generous
// enough that its own batches never drop — its only role is to saturate
// whichever shared node hosts the tier named by sharedTier ("mysql" places
// SysBursty-MySQL on sharedNode, as in Fig. 2).
func BurstySpec(sysName, sharedTier, sharedNode string) SystemSpec {
	big := func(name string) TierSpec {
		t := TierSpec{
			Name:    name,
			Arch:    Sync,
			Threads: 1000,
			Backlog: 1000,
		}
		if name == sharedTier {
			t.Node = sharedNode
		}
		return t
	}
	return SystemSpec{
		Name: sysName,
		Web:  big("apache"),
		App:  big("tomcat"),
		DB:   big("mysql"),
	}
}
