package lint

import (
	"strings"
	"testing"
)

// FuzzParseAllowNames drives the //lint:allow directive parser with
// adversarial comment text and checks its contract: it accepts exactly
// the well-formed directives (prefix, then a space or tab, then a
// non-empty first field) and returns the comma-split of that first
// field, never anything derived from the free-form justification. The
// parser gates every suppression in the repo — a parse bug either
// silences analyzers that should fire or un-silences audited escape
// hatches — so its acceptance language is pinned by fuzzing rather than
// by a handful of examples.
func FuzzParseAllowNames(f *testing.F) {
	f.Add("//lint:allow wallclock the live harness reads real time")
	f.Add("//lint:allow wallclock,seededrand two at once")
	f.Add("//lint:allow\tsharedmut tab separator")
	f.Add("//lint:allow")
	f.Add("//lint:allowx not a directive")
	f.Add("// lint:allow leading space disqualifies")
	f.Add("//lint:allow  maporder   extra   spacing")
	f.Add("//lint:allow ,,, odd name list")
	f.Add("/*lint:allow exhaustive block comment*/")
	f.Add("//lint:nilsafe")
	f.Add("//lint:allow chanselect")
	f.Fuzz(func(t *testing.T, text string) {
		names := parseAllowNames(text)

		// Differential well-formedness check against a direct
		// reimplementation of the documented acceptance rule.
		rest, hasPrefix := strings.CutPrefix(text, "//lint:allow")
		wellFormed := hasPrefix &&
			rest != "" && (rest[0] == ' ' || rest[0] == '\t') &&
			len(strings.Fields(rest)) > 0
		if wellFormed != (names != nil) {
			t.Fatalf("parseAllowNames(%q) = %v, but well-formed = %v", text, names, wellFormed)
		}
		if names == nil {
			return
		}

		// The names are exactly the comma-split of the first field: no
		// empties invented, none dropped, and nothing from the
		// justification text after it.
		first := strings.Fields(rest)[0]
		want := strings.Split(first, ",")
		if len(names) != len(want) {
			t.Fatalf("parseAllowNames(%q) = %v, want %v", text, names, want)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("parseAllowNames(%q)[%d] = %q, want %q", text, i, names[i], want[i])
			}
		}
		for _, n := range names {
			if strings.ContainsAny(n, ", \t") {
				t.Fatalf("parseAllowNames(%q) returned name %q containing a separator", text, n)
			}
		}

		// Idempotence: parsing is a pure function of the text.
		again := parseAllowNames(text)
		if len(again) != len(names) {
			t.Fatalf("parseAllowNames(%q) is not deterministic: %v vs %v", text, names, again)
		}
	})
}
