// Package analysistest runs an analyzer over GOPATH-style fixture
// packages under a testdata directory and checks its diagnostics against
// "// want" expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line may carry one or more expectations:
//
//	time.Now() // want `wall-clock`
//	foo()      // want "first" "second"
//
// Each expectation is a regular expression that must match the message of
// exactly one diagnostic reported on that line; diagnostics with no
// matching expectation, and expectations with no matching diagnostic,
// both fail the test. //lint:allow suppression is applied before
// matching, so fixtures can also demonstrate the escape hatch.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ctqosim/internal/lint"
	"ctqosim/internal/lint/analysis"
	"ctqosim/internal/lint/loader"
)

// expectation is one parsed "// want" clause.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRx matches the quoted patterns after a "want" keyword.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts expectations from a file's comments.
func parseWants(t *testing.T, l *loader.Loader, file *ast.File) []expectation {
	t.Helper()
	var out []expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "/*"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			pos := l.Fset.Position(c.Pos())
			for _, q := range wantRx.FindAllString(rest, -1) {
				pat := q
				if strings.HasPrefix(q, "\"") {
					u, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					pat = u
				} else {
					pat = strings.Trim(q, "`")
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// analyzeWithDeps loads the fixture package at path together with its
// fixture-local dependency closure, runs the analyzer over every package
// of the closure in dependency order — sharing one fact store, so facts
// exported by dependencies are visible, exactly as in a real lint run —
// and returns the subject package with the analyzer's findings on it
// (diagnostics in dependency packages are discarded). A nil package
// means loading failed; errors are reported through t.
func analyzeWithDeps(t *testing.T, srcRoot string, a *analysis.Analyzer, path string) (*loader.Loader, *loader.Package, []lint.Finding) {
	t.Helper()
	l := loader.New("", "", srcRoot)
	order, err := l.Closure([]string{path})
	if err != nil {
		t.Errorf("closure %s: %v", path, err)
		return l, nil, nil
	}
	facts := analysis.NewStore()
	var subject *loader.Package
	var findings []lint.Finding
	for _, p := range order {
		pkg, err := l.Load(p)
		if err != nil {
			t.Errorf("load %s: %v", p, err)
			return l, nil, nil
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", p, terr)
		}
		fs, err := lint.RunPackage(l, pkg, []*analysis.Analyzer{a}, "", facts)
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, p, err)
			return l, nil, nil
		}
		if p == path {
			subject, findings = pkg, fs
		}
	}
	return l, subject, findings
}

// Run loads each fixture package from testdata/src/<path> (with its
// fixture-local dependency closure, for analyzers that rely on facts),
// applies the analyzer, and reports mismatches between diagnostics and
// expectations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	srcRoot := testdata + "/src"
	for _, path := range paths {
		l, pkg, findings := analyzeWithDeps(t, srcRoot, a, path)
		if pkg == nil {
			continue
		}
		lint.Sort(findings)

		var wants []expectation
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, l, f)...)
		}
		for _, f := range findings {
			if !claim(wants, f) {
				t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: expected diagnostic at %s:%d matching %q, got none",
					a.Name, w.file, w.line, w.re)
			}
		}
	}
}

// claim marks the first unmatched expectation covering f and reports
// whether one existed.
func claim(wants []expectation, f lint.Finding) bool {
	for i := range wants {
		w := &wants[i]
		if w.matched || w.line != f.Line || w.file != f.File {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// RunExpectClean is a convenience for fixtures that must produce no
// diagnostics at all (e.g. an allow-listed package).
func RunExpectClean(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		_, pkg, findings := analyzeWithDeps(t, testdata+"/src", a, path)
		if pkg == nil {
			continue
		}
		for _, f := range findings {
			t.Errorf("%s: unexpected diagnostic in clean fixture: %s", a.Name, f)
		}
	}
}

// String implements fmt.Stringer for error messages.
func (e expectation) String() string {
	return fmt.Sprintf("%s:%d ~ %s", e.file, e.line, e.re)
}
