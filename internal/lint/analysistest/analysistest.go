// Package analysistest runs an analyzer over GOPATH-style fixture
// packages under a testdata directory and checks its diagnostics against
// "// want" expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line may carry one or more expectations:
//
//	time.Now() // want `wall-clock`
//	foo()      // want "first" "second"
//
// A directive comment can carry its expectation inline after a second
// "//" (the only way to attach a want to a line that is itself one
// comment): //lint:hotpath allocs=x // want `malformed`
//
// Each expectation is a regular expression that must match the message of
// exactly one diagnostic reported on that line; diagnostics with no
// matching expectation, and expectations with no matching diagnostic,
// both fail the test. //lint:allow suppression is applied before
// matching, so fixtures can also demonstrate the escape hatch.
//
// A clause of the form name:"regexp" is a fact expectation instead: the
// object called name declared on that line must carry an exported fact
// whose fmt.Sprint matches the pattern (the x/tools convention, used by
// the allocs fixtures to pin AllocsFact summaries):
//
//	func Grow(s []int) []int { // want Grow:`allocs\(append may grow\)`
//
// Unclaimed fact expectations fail the test; facts without expectations
// are ignored (facts are internal currency — most fixtures care only
// about the diagnostics they feed).
//
// The analyzer's Requires closure runs with it, sharing the fact store,
// so fixtures for fact-consuming analyzers (hotpath) work unmodified.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ctqosim/internal/lint"
	"ctqosim/internal/lint/analysis"
	"ctqosim/internal/lint/loader"
)

// expectation is one parsed "// want" clause. A non-empty obj makes it a
// fact expectation (name:"pattern") instead of a diagnostic one.
type expectation struct {
	file    string
	line    int
	obj     string
	re      *regexp.Regexp
	matched bool
}

// wantRx matches the clauses after a "want" keyword: an optional
// "name:" prefix followed by a quoted pattern.
var wantRx = regexp.MustCompile("(?:([A-Za-z_][A-Za-z0-9_]*):)?(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// parseWants extracts expectations from a file's comments.
func parseWants(t *testing.T, l *loader.Loader, file *ast.File) []expectation {
	t.Helper()
	var out []expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "/*"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				// Inline form: a directive comment may carry its own
				// expectation after a second "//", e.g.
				// "//lint:hotpath allocs=x // want `malformed`".
				if i := strings.Index(c.Text, "// want "); i > 0 {
					rest, ok = c.Text[i+len("// want "):], true
				}
			}
			if !ok {
				continue
			}
			pos := l.Fset.Position(c.Pos())
			for _, m := range wantRx.FindAllStringSubmatch(rest, -1) {
				name, q := m[1], m[2]
				pat := q
				if strings.HasPrefix(q, "\"") {
					u, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					pat = u
				} else {
					pat = strings.Trim(q, "`")
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, expectation{file: pos.Filename, line: pos.Line, obj: name, re: re})
			}
		}
	}
	return out
}

// analyzeWithDeps loads the fixture package at path together with its
// fixture-local dependency closure, runs the analyzer over every package
// of the closure in dependency order — sharing one fact store, so facts
// exported by dependencies are visible, exactly as in a real lint run —
// and returns the subject package with the analyzer's findings on it
// (diagnostics in dependency packages are discarded). A nil package
// means loading failed; errors are reported through t.
func analyzeWithDeps(t *testing.T, srcRoot string, a *analysis.Analyzer, path string) (*loader.Loader, *loader.Package, []lint.Finding, *analysis.Store) {
	t.Helper()
	l := loader.New("", "", srcRoot)
	order, err := l.Closure([]string{path})
	if err != nil {
		t.Errorf("closure %s: %v", path, err)
		return l, nil, nil, nil
	}
	facts := analysis.NewStore()
	var subject *loader.Package
	var findings []lint.Finding
	for _, p := range order {
		pkg, err := l.Load(p)
		if err != nil {
			t.Errorf("load %s: %v", p, err)
			return l, nil, nil, nil
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", p, terr)
		}
		fs, err := lint.RunPackage(l, pkg, []*analysis.Analyzer{a}, "", facts, nil)
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, p, err)
			return l, nil, nil, nil
		}
		if p == path {
			subject, findings = pkg, fs
		}
	}
	return l, subject, findings, facts
}

// Run loads each fixture package from testdata/src/<path> (with its
// fixture-local dependency closure, for analyzers that rely on facts),
// applies the analyzer, and reports mismatches between diagnostics and
// expectations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	srcRoot := testdata + "/src"
	for _, path := range paths {
		l, pkg, findings, facts := analyzeWithDeps(t, srcRoot, a, path)
		if pkg == nil {
			continue
		}
		lint.Sort(findings)

		var wants []expectation
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, l, f)...)
		}
		for _, f := range findings {
			if !claim(wants, f) {
				t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
			}
		}
		claimFacts(l, facts, wants)
		for _, w := range wants {
			if w.matched {
				continue
			}
			if w.obj != "" {
				t.Errorf("%s: expected fact on %s at %s:%d matching %q, got none",
					a.Name, w.obj, w.file, w.line, w.re)
			} else {
				t.Errorf("%s: expected diagnostic at %s:%d matching %q, got none",
					a.Name, w.file, w.line, w.re)
			}
		}
	}
}

// claimFacts matches fact expectations against the store: the object must
// be named by the clause, declared on the expectation's line, and carry a
// fact whose fmt.Sprint matches.
func claimFacts(l *loader.Loader, facts *analysis.Store, wants []expectation) {
	if facts == nil {
		return
	}
	for _, e := range facts.Entries() {
		pos := l.Fset.Position(e.Obj.Pos())
		rendered := fmt.Sprint(e.Fact)
		for i := range wants {
			w := &wants[i]
			if w.matched || w.obj == "" || w.obj != e.Obj.Name() ||
				w.line != pos.Line || w.file != pos.Filename {
				continue
			}
			if w.re.MatchString(rendered) {
				w.matched = true
				break
			}
		}
	}
}

// claim marks the first unmatched expectation covering f and reports
// whether one existed.
func claim(wants []expectation, f lint.Finding) bool {
	for i := range wants {
		w := &wants[i]
		if w.matched || w.obj != "" || w.line != f.Line || w.file != f.File {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// RunExpectClean is a convenience for fixtures that must produce no
// diagnostics at all (e.g. an allow-listed package).
func RunExpectClean(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		_, pkg, findings, _ := analyzeWithDeps(t, testdata+"/src", a, path)
		if pkg == nil {
			continue
		}
		for _, f := range findings {
			t.Errorf("%s: unexpected diagnostic in clean fixture: %s", a.Name, f)
		}
	}
}

// String implements fmt.Stringer for error messages.
func (e expectation) String() string {
	return fmt.Sprintf("%s:%d ~ %s", e.file, e.line, e.re)
}
