package lint_test

import (
	"bytes"
	"os"
	"testing"

	"ctqosim/internal/lint"
	"ctqosim/internal/lint/analysis"
	"ctqosim/internal/lint/analyzers"
	"ctqosim/internal/lint/loader"
)

// analyzePurityClosure builds one fresh loader over this module, runs the
// purity analyzer (and its callgraph/sharedmut requirements) across the
// dependency closure of the scenario engine and the core simulator —
// packages that carry //lint:pure and //lint:nocapturewrite contracts —
// and returns the two determinism witnesses: the serialized call graph
// and the findings rendered as JSON.
func analyzePurityClosure(t *testing.T) (graph, findings []byte) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modDir, modPath, err := loader.FindModule(wd)
	if err != nil {
		t.Fatal(err)
	}
	l := loader.New(modPath, modDir, "")
	order, err := l.Closure([]string{"ctqosim/internal/scenario", "ctqosim/internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	facts := analysis.NewStore()
	var all []lint.Finding
	for _, path := range order {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		fs, err := lint.RunPackage(l, pkg, []*analysis.Analyzer{analyzers.Purity}, modDir, facts, nil)
		if err != nil {
			t.Fatalf("analyze %s: %v", path, err)
		}
		all = append(all, fs...)
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, all); err != nil {
		t.Fatal(err)
	}
	return analysis.BuildGraph(facts).Serialize(), buf.Bytes()
}

// TestCallGraphDeterminism is the engine's load-twice contract: two
// independent loads of the same package closure — fresh loader, fresh
// FileSet, fresh fact store each time — must produce byte-identical
// serialized call graphs and byte-identical purity findings. Map
// iteration anywhere in closure expansion, fact export, graph assembly
// or BFS traversal would break this.
func TestCallGraphDeterminism(t *testing.T) {
	graph1, findings1 := analyzePurityClosure(t)
	graph2, findings2 := analyzePurityClosure(t)
	if len(graph1) == 0 {
		t.Fatal("serialized call graph is empty: the closure should export CalleesFact edges for core and scenario")
	}
	if !bytes.Equal(graph1, graph2) {
		t.Errorf("call graph serialization differs between loads:\nfirst load:\n%s\nsecond load:\n%s", graph1, graph2)
	}
	if !bytes.Equal(findings1, findings2) {
		t.Errorf("purity findings differ between loads:\nfirst load:\n%s\nsecond load:\n%s", findings1, findings2)
	}
}
