// Package loader parses and type-checks Go packages for the lint driver
// without any dependency beyond the standard library — and without
// network access: imports are resolved from source, mapping module-local
// paths into the repository and everything else into GOROOT (with the
// GOROOT vendor fallback the gc toolchain applies to std imports such as
// golang.org/x/net/dns/dnsmessage).
//
// It is intentionally a fraction of go/packages: one build configuration,
// non-test files only, and types for a whole import closure checked from
// source. That is exactly enough for ctqo-lint, whose analyzers only need
// syntax plus types.Info for the packages under review.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package object (possibly incomplete if
	// TypeErrors is non-empty).
	Types *types.Package
	// Info is the type-checker's fact tables for Files.
	Info *types.Info
	// TypeErrors collects type-checking problems; linting proceeds on a
	// best-effort basis when it is non-empty.
	TypeErrors []error
}

// Loader resolves, parses and type-checks packages. The zero value is not
// usable; construct with New.
type Loader struct {
	// Fset is shared by every file the loader touches.
	Fset *token.FileSet

	modPath string // module path ("" for GOPATH-style roots, e.g. analysistest)
	modDir  string // directory the module path maps to
	srcRoot string // extra GOPATH-style source root (analysistest fixtures)
	goroot  string

	ctx   build.Context
	cache map[string]*types.Package // dependency universe, by import path
	busy  map[string]bool           // cycle guard
}

// New creates a loader whose module modPath lives at modDir. srcRoot, if
// non-empty, is an additional GOPATH-style root consulted before GOROOT
// (used by analysistest to resolve fixture packages by bare path).
func New(modPath, modDir, srcRoot string) *Loader {
	ctx := build.Default
	// Source-level type-checking cannot expand cgo, so resolve every
	// package in its pure-Go configuration.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		modPath: modPath,
		modDir:  modDir,
		srcRoot: srcRoot,
		goroot:  ctx.GOROOT,
		ctx:     ctx,
		cache:   make(map[string]*types.Package),
		busy:    make(map[string]bool),
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (modDir, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// dir resolves an import path to a source directory.
func (l *Loader) dir(path string) (string, error) {
	if d := l.localDir(path); d != "" {
		return d, nil
	}
	for _, d := range []string{
		filepath.Join(l.goroot, "src", filepath.FromSlash(path)),
		// GOROOT vendoring: std packages import x/ repos by their
		// canonical path; the sources live under src/vendor.
		filepath.Join(l.goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import %q", path)
}

// localDir resolves an import path inside the module or the extra source
// root, or returns "" when the path lives elsewhere (GOROOT). "Local"
// packages are the ones a lint run analyzes as subjects — and therefore
// the only ones that can carry analyzer facts.
func (l *Loader) localDir(path string) string {
	if l.modPath != "" {
		if path == l.modPath {
			return l.modDir
		}
		if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
			return filepath.Join(l.modDir, filepath.FromSlash(rest))
		}
	}
	if l.srcRoot != "" {
		d := filepath.Join(l.srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d
		}
	}
	return ""
}

// Closure expands paths to their dependency closure restricted to local
// packages (module or srcRoot — GOROOT imports are resolved by the type
// checker but never analyzed) and returns it in dependency order: every
// package appears after all of its in-closure imports. The order is
// deterministic — imports are visited sorted — and is the order a facts-
// propagating driver must Load and analyze packages in, so that facts
// exported while analyzing an import are in place before its dependents
// run, and so that each subject's type-checked form is the one dependents
// import (object identity is what keys the fact store).
func (l *Loader) Closure(paths []string) ([]string, error) {
	const visiting, done = 1, 2
	state := make(map[string]int)
	var out []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %q", path)
		}
		state[path] = visiting
		if dir := l.localDir(path); dir != "" {
			bp, err := l.ctx.ImportDir(dir, 0)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			imports := append([]string(nil), bp.Imports...)
			sort.Strings(imports)
			for _, imp := range imports {
				if imp == "C" || imp == "unsafe" || l.localDir(imp) == "" {
					continue
				}
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = done
		out = append(out, path)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parseDir parses the build-selected non-test Go files of dir.
func (l *Loader) parseDir(dir string, mode parser.Mode) ([]*ast.File, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer for dependency resolution.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom. Dependencies are checked from
// source without comments or fact tables, and memoized for the lifetime
// of the loader so a whole-repo lint pays for the stdlib closure once.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	dir, err := l.dir(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := l.typesConfig(nil)
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil && pkg == nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// typesConfig builds the shared type-checker configuration. When sink is
// non-nil, type errors are appended to it and checking continues.
func (l *Loader) typesConfig(sink *[]error) types.Config {
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", l.ctx.GOARCH),
	}
	if sink != nil {
		conf.Error = func(err error) { *sink = append(*sink, err) }
	} else {
		// Dependencies are allowed minor errors (e.g. a build-tag
		// configuration go/build picked that gc would not); keep the
		// first error behaviour but do not abort the whole run.
		conf.Error = func(error) {}
	}
	return conf
}

// Load parses and type-checks the package at the given import path with
// full syntax (comments) and fact tables — the form analyzers run on.
func (l *Loader) Load(path string) (*Package, error) {
	dir, err := l.dir(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Info: info}
	conf := l.typesConfig(&pkg.TypeErrors)
	pkg.Types, _ = conf.Check(path, l.Fset, files, info)
	// Register the fully loaded package as the canonical import, so
	// packages loaded after this one resolve its objects to the very
	// instances analyzers attached facts to (and so each package in a
	// Closure-ordered run is type-checked exactly once).
	if pkg.Types != nil {
		l.cache[path] = pkg.Types
	}
	return pkg, nil
}

// skipDir reports whether a directory basename is never part of the
// lintable package tree.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "out" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Expand turns command-line patterns into a sorted list of import paths.
// Supported forms: "./...", "./dir/...", "./dir", and bare import paths
// (with or without a trailing "/..." wildcard) inside the module.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		rel, recursive := pat, false
		if rest, ok := strings.CutSuffix(rel, "/..."); ok {
			rel, recursive = rest, true
		} else if rel == "..." {
			rel, recursive = ".", true
		}
		// Normalize an import-path pattern into a module-relative one.
		if l.modPath != "" {
			if rel == l.modPath {
				rel = "."
			} else if rest, ok := strings.CutPrefix(rel, l.modPath+"/"); ok {
				rel = "./" + rest
			}
		}
		rel = strings.TrimPrefix(rel, "./")
		if rel == "" {
			rel = "."
		}
		base := filepath.Join(l.modDir, filepath.FromSlash(rel))
		if !recursive {
			if l.hasGoFiles(base) {
				add(l.importPath(rel))
			} else {
				return nil, fmt.Errorf("no Go files in %s", pat)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if p != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			if l.hasGoFiles(p) {
				relp, err := filepath.Rel(l.modDir, p)
				if err != nil {
					return err
				}
				add(l.importPath(filepath.ToSlash(relp)))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// hasGoFiles reports whether dir holds at least one buildable non-test Go
// file.
func (l *Loader) hasGoFiles(dir string) bool {
	bp, err := l.ctx.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// importPath maps a module-relative directory to its import path.
func (l *Loader) importPath(rel string) string {
	rel = strings.TrimPrefix(path.Clean(rel), "./")
	if rel == "." || rel == "" {
		return l.modPath
	}
	if l.modPath == "" {
		return rel
	}
	return l.modPath + "/" + rel
}
