package loader

import (
	"testing"
)

// fixtures is the sharedmut fixture tree: a diamond-free four-level
// chain (runsite → mid → leaf → deep → conf) that the facts engine
// depends on being loaded dependencies-first.
const fixtures = "../analyzers/testdata/src"

func TestClosureDependencyOrder(t *testing.T) {
	l := New("", "", fixtures)
	order, err := l.Closure([]string{"sharedmut/runsite"})
	if err != nil {
		t.Fatal(err)
	}
	index := make(map[string]int, len(order))
	for i, p := range order {
		index[p] = i
	}
	for _, pkg := range []string{
		"sharedmut/conf", "sharedmut/deep", "sharedmut/leaf",
		"sharedmut/mid", "sharedmut/runsite",
	} {
		if _, ok := index[pkg]; !ok {
			t.Fatalf("closure %v is missing %s", order, pkg)
		}
	}
	for _, dep := range []struct{ before, after string }{
		{"sharedmut/conf", "sharedmut/deep"},
		{"sharedmut/deep", "sharedmut/leaf"},
		{"sharedmut/leaf", "sharedmut/mid"},
		{"sharedmut/mid", "sharedmut/runsite"},
	} {
		if index[dep.before] >= index[dep.after] {
			t.Errorf("closure %v loads %s before its dependency %s", order, dep.after, dep.before)
		}
	}
	if order[len(order)-1] != "sharedmut/runsite" {
		t.Errorf("closure %v does not end with the requested package", order)
	}
}

func TestClosureDeterministic(t *testing.T) {
	first, err := New("", "", fixtures).Closure([]string{"sharedmut/runsite", "sharedmut/mid"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := New("", "", fixtures).Closure([]string{"sharedmut/runsite", "sharedmut/mid"})
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("closure length changed: %v vs %v", first, again)
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("closure order changed: %v vs %v", first, again)
			}
		}
	}
}

func TestClosureSkipsNonLocal(t *testing.T) {
	// The exhaustive fixtures import nothing outside the fixture root;
	// stdlib imports elsewhere (e.g. the ctqosim fixture's "time") must
	// never appear in a closure.
	l := New("", "", fixtures)
	order, err := l.Closure([]string{"ctqosim/internal/des"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range order {
		if p == "time" {
			t.Errorf("closure %v includes the stdlib package time", order)
		}
	}
}

func TestLoadRegistersPackageForImports(t *testing.T) {
	// Loading dependencies first must make their types.Package available
	// to dependents through the loader's importer — object identity is
	// what carries facts across packages.
	l := New("", "", fixtures)
	order, err := l.Closure([]string{"sharedmut/leaf"})
	if err != nil {
		t.Fatal(err)
	}
	loaded := make(map[string]*Package, len(order))
	for _, p := range order {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("load %s: type errors %v", p, pkg.TypeErrors)
		}
		loaded[p] = pkg
	}
	deep := loaded["sharedmut/deep"].Types
	leaf := loaded["sharedmut/leaf"].Types
	var imported bool
	for _, imp := range leaf.Imports() {
		if imp.Path() == "sharedmut/deep" {
			imported = true
			if imp != deep {
				t.Error("leaf's import of deep is a different *types.Package than the loaded one: facts would not cross")
			}
		}
	}
	if !imported {
		t.Fatalf("leaf does not list deep among its imports: %v", leaf.Imports())
	}
	// Same object through both packages' lens.
	if deep.Scope().Lookup("Zero") == nil {
		t.Fatal("deep.Zero not found in the loaded package scope")
	}
}
