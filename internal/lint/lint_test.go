package lint

import (
	"bytes"
	"testing"
)

// TestSortOrder pins the finding order contract: file, then line, then
// column, then analyzer, then message. Deterministic ordering is what
// makes -json output byte-stable across runs and machines.
func TestSortOrder(t *testing.T) {
	in := []Finding{
		{Analyzer: "b", File: "b.go", Line: 1, Col: 1, Message: "m"},
		{Analyzer: "a", File: "a.go", Line: 2, Col: 1, Message: "m"},
		{Analyzer: "a", File: "a.go", Line: 1, Col: 2, Message: "m"},
		{Analyzer: "b", File: "a.go", Line: 1, Col: 1, Message: "m"},
		{Analyzer: "a", File: "a.go", Line: 1, Col: 1, Message: "n"},
		{Analyzer: "a", File: "a.go", Line: 1, Col: 1, Message: "m"},
	}
	want := []Finding{
		{Analyzer: "a", File: "a.go", Line: 1, Col: 1, Message: "m"},
		{Analyzer: "a", File: "a.go", Line: 1, Col: 1, Message: "n"},
		{Analyzer: "b", File: "a.go", Line: 1, Col: 1, Message: "m"},
		{Analyzer: "a", File: "a.go", Line: 1, Col: 2, Message: "m"},
		{Analyzer: "a", File: "a.go", Line: 2, Col: 1, Message: "m"},
		{Analyzer: "b", File: "b.go", Line: 1, Col: 1, Message: "m"},
	}
	Sort(in)
	for i := range want {
		if in[i].String() != want[i].String() {
			t.Fatalf("Sort order mismatch at %d:\n got %v\nwant %v", i, in[i], want[i])
		}
	}
}

// TestWriteJSONByteStable pins the exact bytes of the JSON rendering:
// CI diffs and golden files depend on them.
func TestWriteJSONByteStable(t *testing.T) {
	var empty bytes.Buffer
	if err := WriteJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if got := empty.String(); got != "[]\n" {
		t.Errorf("WriteJSON(nil) = %q, want %q (empty array, not null)", got, "[]\n")
	}

	fs := []Finding{{Analyzer: "wallclock", File: "a.go", Line: 3, Col: 7, Message: "no"}}
	var first, second bytes.Buffer
	if err := WriteJSON(&first, fs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&second, fs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("WriteJSON is not byte-stable across calls")
	}
	want := `[
  {
    "analyzer": "wallclock",
    "file": "a.go",
    "line": 3,
    "col": 7,
    "message": "no"
  }
]
`
	if got := first.String(); got != want {
		t.Errorf("WriteJSON rendering changed:\n got %q\nwant %q", got, want)
	}
}

// TestWriteJSONChain pins the chain rendering: hotpath findings carry the
// allocating call chain, while chainless findings keep the legacy shape
// (chain omitted entirely, pinned above).
func TestWriteJSONChain(t *testing.T) {
	fs := []Finding{{
		Analyzer: "hotpath", File: "a.go", Line: 3, Col: 7,
		Message: "//lint:hotpath function F allocates: call to p.G (a.go:9)",
		Chain:   []string{"p.G: make map (b.go:4)"},
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "analyzer": "hotpath",
    "file": "a.go",
    "line": 3,
    "col": 7,
    "message": "//lint:hotpath function F allocates: call to p.G (a.go:9)",
    "chain": [
      "p.G: make map (b.go:4)"
    ]
  }
]
`
	if got := buf.String(); got != want {
		t.Errorf("WriteJSON chain rendering changed:\n got %q\nwant %q", got, want)
	}
}
