package analyzers_test

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
	"ctqosim/internal/lint/analyzers"
)

func TestNilsafe(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Nilsafe, "nilsafe")
}
