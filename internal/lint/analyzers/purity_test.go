package analyzers

import (
	"strings"
	"testing"

	"ctqosim/internal/lint"
	"ctqosim/internal/lint/analysis"
	"ctqosim/internal/lint/analysistest"
	"ctqosim/internal/lint/loader"
)

func TestPurity(t *testing.T) {
	analysistest.Run(t, "testdata", Purity, "purity/flagged", "purity/deep")
}

func TestPurityAllowed(t *testing.T) {
	analysistest.RunExpectClean(t, "testdata", Purity, "purity/allowed")
}

// TestPurityChain pins the rendered call chain for the fixture where a
// Tweak closure reaches an I/O call three calls down, across a package
// boundary: the finding must trace root -> normalize -> logStats ->
// depimp.Log down to the write.
func TestPurityChain(t *testing.T) {
	l := loader.New("", "", "testdata/src")
	order, err := l.Closure([]string{"purity/deep"})
	if err != nil {
		t.Fatalf("closure: %v", err)
	}
	facts := analysis.NewStore()
	var findings []lint.Finding
	for _, p := range order {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		fs, err := lint.RunPackage(l, pkg, []*analysis.Analyzer{Purity}, "", facts, nil)
		if err != nil {
			t.Fatalf("run %s: %v", p, err)
		}
		if p == "purity/deep" {
			findings = fs
		}
	}
	var chain []string
	for _, f := range findings {
		if strings.Contains(f.Message, "reaches impure depimp.Log") {
			chain = f.Chain
		}
	}
	if chain == nil {
		t.Fatalf("no transitive finding in %v", findings)
	}
	wantPrefixes := []string{
		"Tweak closure (//lint:nocapturewrite): calls deep.normalize (deep.go:",
		"deep.normalize: calls deep.logStats (deep.go:",
		"deep.logStats: calls depimp.Log (deep.go:",
		"depimp.Log: I/O call os.File.WriteString (depimp.go:",
	}
	if len(chain) != len(wantPrefixes) {
		t.Fatalf("chain length = %d, want %d: %q", len(chain), len(wantPrefixes), chain)
	}
	for i, want := range wantPrefixes {
		if !strings.HasPrefix(chain[i], want) {
			t.Errorf("chain[%d] = %q, want prefix %q", i, chain[i], want)
		}
	}
}
