package analyzers_test

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
	"ctqosim/internal/lint/analyzers"
)

func TestSharedmut(t *testing.T) {
	// Same-package: the violation sits next to the field declaration.
	analysistest.Run(t, "testdata", analyzers.Sharedmut, "sharedmut/conf")
	// Cross-package: the mutation happens three packages below the run
	// site (runsite → mid → leaf → deep) and is visible there only
	// through propagated MutatesFacts.
	analysistest.Run(t, "testdata", analyzers.Sharedmut, "sharedmut/runsite")
	// The intermediate packages are clean: writing through a plain
	// parameter is the callee's business, not a shared-state violation.
	analysistest.RunExpectClean(t, "testdata", analyzers.Sharedmut,
		"sharedmut/deep", "sharedmut/leaf", "sharedmut/mid")
}
