package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"ctqosim/internal/lint/analysis"
)

// pureDirective marks a function as a purity root: "//lint:pure [reason]"
// on a function's doc comment demands that the function — and everything
// reachable from it through the static call graph — writes no shared
// state, performs no I/O, and touches no nondeterministic source. The
// scenario generator (scenario.Generate) and assertion evaluator
// (scenario.Evaluate) carry it; //lint:nocapturewrite closures (Tweak)
// are implicit roots.
const pureDirective = "//lint:pure"

// maxEffects bounds a function's exported effect summary, mirroring
// maxAllocSites: callers only need to know the function is impure and
// where that starts.
const maxEffects = 4

// Effect is one direct impurity of a function: a shared-state write, an
// I/O call, or a read of a nondeterministic source.
type Effect struct {
	// What names the impurity ("writes package variable seen", "I/O call
	// os.File.Write", "wall-clock call time.Now", ...).
	What string
	// File (base name) and Line locate it.
	File string
	Line int
}

// EffectsFact is the direct-effect summary of one function: the shared
// writes, I/O and nondeterminism it performs in its own body (function
// literals included — creating the closure may lead to the effect).
// Transitive impurity is deliberately NOT folded into the fact: the
// purity analyzer walks the CalleesFact graph instead, so a finding can
// render the precise call chain from the root to the effect.
type EffectsFact struct {
	// Effects lists the earliest direct effects (capped at maxEffects),
	// sorted by position.
	Effects []Effect
}

// AFact implements analysis.Fact.
func (*EffectsFact) AFact() {}

// String renders the summary for fixture fact expectations.
func (f *EffectsFact) String() string {
	whats := make([]string, len(f.Effects))
	for i, e := range f.Effects {
		whats[i] = e.What
	}
	return "effects(" + strings.Join(whats, "; ") + ")"
}

// Purity enforces //lint:pure roots and //lint:nocapturewrite closures
// over the interprocedural call graph: every function reachable from a
// root must be free of shared-state writes, I/O and nondeterministic
// reads. Direct effects are flagged at their own position; transitive
// ones at the offending call, with the full chain down to the effect
// rendered like the hotpath analyzer's ("Tweak -> logStats ->
// os.Stdout.Write, 3 calls deep") and carried into -json output.
//
// Writes through the root's own parameters are legal — a Tweak closure
// exists to mutate the per-run SystemSpec handed to it; sharedmut owns
// the captured-state and shared-pointer halves of that contract.
var Purity = &analysis.Analyzer{
	Name: "purity",
	Doc: "require //lint:pure functions and //lint:nocapturewrite closures " +
		"to reach no shared-state write, I/O or nondeterministic source " +
		"through the static call graph, reporting the call chain to each " +
		"effect",
	Requires: []*analysis.Analyzer{analysis.Callgraph, Sharedmut},
	FactTypes: []analysis.Fact{
		new(EffectsFact), new(analysis.CalleesFact), new(NoCaptureWriteFact),
	},
	Run: runPurity,
}

// ioPackages are stdlib packages whose functions and methods count as
// I/O (or process-state mutation) wherever they are called from.
var ioPackages = map[string]bool{
	"os":       true,
	"os/exec":  true,
	"net":      true,
	"net/http": true,
	"log":      true,
	"syscall":  true,
}

// fmtPrinting are the fmt functions that write to process stdout.
// Fprint* variants are flagged by their os.Stdout/os.Stderr argument
// instead (writing into a caller-supplied bytes.Buffer is pure).
var fmtPrinting = map[string]bool{"Print": true, "Printf": true, "Println": true}

// randExempt are the math/rand constructors that wrap an explicit seeded
// source — the determinism contract's approved pattern. Everything else
// at package level draws from the shared global source.
var randExempt = map[string]bool{"New": true, "NewSource": true}

func runPurity(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil {
		return nil, nil
	}
	s := &purityState{pass: pass, allowed: allowedLinesFor(pass, "purity")}
	s.exportEffects()
	s.checkRoots()
	return nil, nil
}

type purityState struct {
	pass *analysis.Pass
	// allowed holds the package's "//lint:allow purity" lines: effects on
	// (or right below) them are stripped at fact-construction time, so the
	// suppression also covers every root that reaches the site.
	allowed map[string]map[int]token.Pos
	// graph and effectsByID are built lazily, only in packages that
	// declare purity roots.
	graph       *analysis.Graph
	effectsByID map[analysis.FuncID]*EffectsFact
}

// exportEffects computes and exports the direct-effect summary of every
// function declared in the package.
func (s *purityState) exportEffects() {
	for _, f := range s.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := s.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			effects := s.directEffects(fd.Body)
			if len(effects) == 0 {
				continue
			}
			s.pass.ExportObjectFact(fn, &EffectsFact{Effects: effects})
		}
	}
}

// rawEffect is an in-progress Effect with its source position.
type rawEffect struct {
	pos  token.Pos
	what string
}

// directEffects renders a body's raw effects for export, capped at
// maxEffects.
func (s *purityState) directEffects(body ast.Node) []Effect {
	raw := s.scanEffects(body)
	if len(raw) > maxEffects {
		raw = raw[:maxEffects]
	}
	out := make([]Effect, len(raw))
	for i, r := range raw {
		p := s.pass.Fset.Position(r.pos)
		out[i] = Effect{What: r.what, File: filepath.Base(p.Filename), Line: p.Line}
	}
	return out
}

// scanEffects scans one body (function literals included) for direct
// impurities, sorted by position.
func (s *purityState) scanEffects(body ast.Node) []rawEffect {
	info := s.pass.TypesInfo
	var raw []rawEffect
	seen := make(map[token.Pos]bool)
	add := func(pos token.Pos, what string) {
		if seen[pos] || consumeAllow(s.pass, s.allowed, pos, "purity") {
			return
		}
		seen[pos] = true
		raw = append(raw, rawEffect{pos: pos, what: what})
	}
	flagWrite := func(lhs ast.Expr) {
		obj, _ := storeRoot(info, lhs)
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return
		}
		if v.Parent() == v.Pkg().Scope() {
			add(lhs.Pos(), "writes package variable "+v.Name())
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if n.Tok == token.DEFINE {
					if id, ok := unparen(lhs).(*ast.Ident); ok && info.Defs[id] != nil {
						continue
					}
				}
				flagWrite(lhs)
			}
		case *ast.IncDecStmt:
			flagWrite(n.X)
		case *ast.SendStmt:
			add(n.Arrow, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(n.OpPos, "channel receive")
			}
		case *ast.GoStmt:
			add(n.Go, "spawns goroutine")
		case *ast.CallExpr:
			if what, ok := s.callEffect(n); ok {
				add(n.Pos(), what)
			}
		}
		return true
	})
	sort.Slice(raw, func(i, j int) bool { return raw[i].pos < raw[j].pos })
	return raw
}

// callEffect classifies one call as a direct impurity: stdlib I/O,
// wall-clock reads, or global/cryptographic randomness.
func (s *purityState) callEffect(call *ast.CallExpr) (string, bool) {
	info := s.pass.TypesInfo
	callee := analysis.StaticCallee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return "", false
	}
	pkg := callee.Pkg().Path()
	sig, _ := callee.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch {
	case ioPackages[pkg]:
		return "I/O call " + qualFuncName(callee), true
	case pkg == "fmt" && !isMethod:
		if fmtPrinting[callee.Name()] {
			return "I/O call " + qualFuncName(callee), true
		}
		if strings.HasPrefix(callee.Name(), "Fprint") && len(call.Args) > 0 {
			if obj, _ := storeRoot(info, unparen(call.Args[0])); obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "os" &&
					(v.Name() == "Stdout" || v.Name() == "Stderr") {
					return "I/O call " + qualFuncName(callee) + " to os." + v.Name(), true
				}
			}
		}
	case pkg == "time" && !isMethod && wallclockFuncs[callee.Name()]:
		return "wall-clock call time." + callee.Name(), true
	case (pkg == "math/rand" || pkg == "math/rand/v2") && !isMethod && !randExempt[callee.Name()]:
		return "global rand call rand." + callee.Name(), true
	case pkg == "crypto/rand":
		return "nondeterministic call " + qualFuncName(callee), true
	}
	return "", false
}

// ensureGraph builds the reachability view from the run-wide fact store:
// the call graph plus the FuncID-indexed effect table.
func (s *purityState) ensureGraph() {
	if s.graph != nil {
		return
	}
	s.graph = analysis.BuildGraph(s.pass.Facts)
	s.effectsByID = make(map[analysis.FuncID]*EffectsFact)
	if s.pass.Facts == nil {
		return
	}
	for _, e := range s.pass.Facts.Entries() {
		fact, ok := e.Fact.(*EffectsFact)
		if !ok {
			continue
		}
		if fn, ok := e.Obj.(*types.Func); ok {
			s.effectsByID[analysis.IDOf(fn)] = fact
		}
	}
}

// checkRoots finds the package's purity roots — //lint:pure declarations
// and function literals assigned to //lint:nocapturewrite fields — and
// verifies each against the call graph.
func (s *purityState) checkRoots() {
	for _, f := range s.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasPureDirective(fd.Doc) {
				continue
			}
			if fd.Body == nil {
				s.pass.Reportf(fd.Name.Pos(),
					"//lint:pure on %s, which has no body: the contract needs a call graph to check", fd.Name.Name)
				continue
			}
			s.checkRoot("//lint:pure function "+fd.Name.Name, fd.Body)
		}
		// Closures assigned to //lint:nocapturewrite fields are implicit
		// roots (the Tweak contract): both assignment forms sharedmut
		// recognizes.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := unparen(lhs).(*ast.SelectorExpr)
					if !ok || !s.isNoCaptureField(sel.Sel) {
						continue
					}
					if lit, ok := unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						s.checkRoot(sel.Sel.Name+" closure (//lint:nocapturewrite)", lit.Body)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !s.isNoCaptureField(key) {
						continue
					}
					if lit, ok := unparen(kv.Value).(*ast.FuncLit); ok {
						s.checkRoot(key.Name+" closure (//lint:nocapturewrite)", lit.Body)
					}
				}
			}
			return true
		})
	}
}

// isNoCaptureField reports whether id resolves to a field carrying a
// NoCaptureWriteFact (shared with the sharedmut analyzer).
func (s *purityState) isNoCaptureField(id *ast.Ident) bool {
	obj, ok := s.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	var fact NoCaptureWriteFact
	return s.pass.ImportObjectFact(obj, &fact)
}

// hasPureDirective scans a doc comment for the pure directive.
func hasPureDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == pureDirective || strings.HasPrefix(c.Text, pureDirective+" ") ||
			strings.HasPrefix(c.Text, pureDirective+"\t") {
			return true
		}
	}
	return false
}

// checkRoot verifies one root body: direct effects are reported at their
// own position; impure callees at the offending call site, with the
// chain from the root down to the nearest effect.
func (s *purityState) checkRoot(label string, body ast.Node) {
	// Direct effects (the body's own writes/IO/nondeterminism).
	for _, e := range s.scanEffects(body) {
		s.pass.Reportf(e.pos, "%s must stay pure: %s", label, e.what)
	}
	// Transitive effects through static callees.
	s.ensureGraph()
	info := s.pass.TypesInfo
	reported := make(map[analysis.FuncID]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.StaticCallee(info, call)
		if callee == nil {
			return true
		}
		id := analysis.IDOf(callee)
		if reported[id] {
			return true
		}
		path, found := s.graph.Find(id, maxChainDepth-1, func(n analysis.FuncID) bool {
			_, impure := s.effectsByID[n]
			return impure
		})
		if !found {
			return true
		}
		reported[id] = true
		s.reportChain(label, call, id, path)
		return true
	})
}

// reportChain renders one transitive impurity: the call into firstID
// eventually reaches an effect, path being the edges beyond firstID.
func (s *purityState) reportChain(label string, call *ast.CallExpr, firstID analysis.FuncID, path []analysis.CallEdge) {
	// The node sequence is firstID, path[0].Callee, ..., and the effect
	// lives in the last node.
	last := firstID
	nodes := []analysis.FuncID{firstID}
	for _, e := range path {
		nodes = append(nodes, e.Callee)
		last = e.Callee
	}
	eff := s.effectsByID[last].Effects[0]
	depth := len(nodes)

	callPos := s.pass.Fset.Position(call.Pos())
	chain := []string{renderSite(label, "calls "+firstID.Short(), filepath.Base(callPos.Filename), callPos.Line)}
	for i, e := range path {
		chain = append(chain, renderSite(nodes[i].Short(), "calls "+e.Callee.Short(), e.File, e.Line))
	}
	chain = append(chain, renderSite(last.Short(), eff.What, eff.File, eff.Line))
	if len(chain) > maxChainDepth {
		chain = chain[:maxChainDepth]
	}
	s.pass.Report(analysis.Diagnostic{
		Pos: call.Pos(),
		Message: fmt.Sprintf("%s reaches impure %s: %s (%s:%d, %d call%s deep)",
			label, last.Short(), eff.What, eff.File, eff.Line, depth, plural(depth)),
		Chain: chain,
	})
}

// plural returns "s" for n != 1.
func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
