package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"ctqosim/internal/lint/analysis"
)

// nilsafeDefaults hard-codes the PR-1 contract: exported methods on the
// span tracer types must be safe to call on a nil receiver, so a disabled
// tracer costs instrumented code neither branches nor allocations. Other
// types opt in with a "//lint:nilsafe" comment on their declaration.
var nilsafeDefaults = map[string][]string{
	"ctqosim/internal/span": {"Tracer", "Trace", "Span"},
}

// nilsafeMarker is the opt-in annotation on a type declaration.
const nilsafeMarker = "//lint:nilsafe"

// Nilsafe enforces that exported pointer-receiver methods on nil-safe
// types either begin with a nil-receiver guard or touch the receiver only
// through other (checked) methods.
var Nilsafe = &analysis.Analyzer{
	Name: "nilsafe",
	Doc: "exported methods on //lint:nilsafe types (and span.Tracer/" +
		"Trace) must begin with a nil-receiver guard",
	Run: runNilsafe,
}

func runNilsafe(pass *analysis.Pass) (any, error) {
	checked := make(map[string]bool)
	if pass.Pkg != nil {
		for _, name := range nilsafeDefaults[pass.Pkg.Path()] {
			checked[name] = true
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(gd.Doc) || hasMarker(ts.Doc) || hasMarker(ts.Comment) {
					checked[ts.Name.Name] = true
				}
			}
		}
	}
	if len(checked) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			if !fd.Name.IsExported() {
				continue
			}
			typeName, ptr := recvType(fd.Recv.List[0].Type)
			if !ptr || !checked[typeName] {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) != 1 || names[0].Name == "_" {
				// An unnamed receiver cannot be dereferenced; trivially safe.
				continue
			}
			recvObj := pass.TypesInfo.Defs[names[0]]
			if recvObj == nil {
				continue
			}
			if hasNilGuard(pass.TypesInfo, fd.Body, recvObj) {
				continue
			}
			if use := firstUnsafeUse(pass.TypesInfo, fd.Body, recvObj); use != nil {
				pass.Reportf(fd.Name.Pos(),
					"exported method (*%s).%s on nil-safe type must begin with a nil-receiver guard (receiver dereferenced at %s)",
					typeName, fd.Name.Name, pass.Fset.Position(use.Pos()))
			}
		}
	}
	return nil, nil
}

// hasMarker reports whether a comment group contains the nilsafe marker.
func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == nilsafeMarker {
			return true
		}
	}
	return false
}

// recvType unwraps a receiver type expression to its base type name,
// reporting whether it was a pointer receiver. Generic receivers
// (*T[P]) unwrap through the index expression.
func recvType(e ast.Expr) (name string, ptr bool) {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	base := star.X
	for {
		switch b := base.(type) {
		case *ast.IndexExpr:
			base = b.X
		case *ast.IndexListExpr:
			base = b.X
		case *ast.Ident:
			return b.Name, true
		default:
			return "", false
		}
	}
}

// hasNilGuard reports whether the body's first statement is an early
// return guarded by recv == nil (possibly as one arm of an || chain).
func hasNilGuard(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || !condChecksNil(info, ifs.Cond, recv) {
		return false
	}
	for _, stmt := range ifs.Body.List {
		if _, ok := stmt.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

// condChecksNil reports whether cond contains "recv == nil" as itself or
// as a disjunct of an || chain.
func condChecksNil(info *types.Info, cond ast.Expr, recv types.Object) bool {
	be, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op.String() {
	case "||":
		return condChecksNil(info, be.X, recv) || condChecksNil(info, be.Y, recv)
	case "==":
		return (isRecv(info, be.X, recv) && isNil(be.Y)) ||
			(isRecv(info, be.Y, recv) && isNil(be.X))
	}
	return false
}

// isRecv reports whether e is a direct use of the receiver object.
func isRecv(info *types.Info, e ast.Expr, recv types.Object) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == recv
}

// isNil reports whether e is the predeclared nil.
func isNil(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// firstUnsafeUse returns the first expression that would dereference a
// nil receiver: a field access, an implicit indirection into a
// value-receiver method, an index, or an explicit *recv. Uses that only
// compare the receiver or forward it to pointer-receiver methods (which
// carry their own guards) are fine.
func firstUnsafeUse(info *types.Info, body *ast.BlockStmt, recv types.Object) ast.Node {
	var unsafe ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if unsafe != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !isRecv(info, n.X, recv) {
				return true
			}
			sel := info.Selections[n]
			if sel == nil {
				return true
			}
			switch sel.Kind() {
			case types.FieldVal:
				unsafe = n
			case types.MethodVal:
				// Calling a value-receiver method through a pointer
				// implicitly dereferences it; pointer-receiver methods
				// carry their own guards and stay safe.
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
					unsafe = n
				}
			}
		case *ast.StarExpr:
			if isRecv(info, n.X, recv) {
				unsafe = n
			}
		case *ast.IndexExpr:
			if isRecv(info, n.X, recv) {
				unsafe = n
			}
		}
		return unsafe == nil
	})
	return unsafe
}
