package analyzers

import (
	"go/ast"
	"go/types"

	"ctqosim/internal/lint/analysis"
)

// Deferloop flags two loop patterns inside //lint:hotpath functions that
// defeat the zero-allocation contract in ways the allocs summary cannot
// price: defer statements in loops (each iteration heap-allocates a
// deferred frame that only runs at function return — the open-coded
// defer optimization does not apply inside loops) and closures over
// named return values created in loops (each iteration allocates a
// closure capturing the result slot). It reads the annotations itself so
// it stays meaningful even when the allocs/hotpath pair is disabled.
var Deferloop = &analysis.Analyzer{
	Name: "deferloop",
	Doc: "flag defer statements and named-return-capturing closures " +
		"inside loops of //lint:hotpath functions",
	Run: runDeferloop,
}

func runDeferloop(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		_, fileHot := hotpathFromSilentDoc(f.Doc)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, hot := hotpathFromSilentDoc(fd.Doc); !hot && !fileHot {
				continue
			}
			checkDeferLoops(pass, fd)
		}
	}
	return nil, nil
}

// hotpathFromSilentDoc is hotpathFromDoc without diagnostics: malformed
// directives are hotpath's to report, but they still mark the function
// hot for this check.
func hotpathFromSilentDoc(doc *ast.CommentGroup) (hotpathSpec, bool) {
	if doc == nil {
		return hotpathSpec{}, false
	}
	for _, c := range doc.List {
		isDirective, budget, err := parseHotpathDirective(c.Text)
		if isDirective {
			if err != nil {
				return hotpathSpec{}, true
			}
			return hotpathSpec{budget: budget}, true
		}
	}
	return hotpathSpec{}, false
}

// checkDeferLoops walks one hot function's body tracking loop depth.
// Descending into a nested FuncLit resets the depth: its body runs when
// the closure is called, not per loop iteration (the closure allocation
// itself is the allocs analyzer's finding).
func checkDeferLoops(pass *analysis.Pass, fd *ast.FuncDecl) {
	named := namedResults(pass, fd)
	var walk func(n ast.Node, inLoop bool) bool
	walk = func(n ast.Node, inLoop bool) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			ast.Inspect(loopBody(n), func(m ast.Node) bool { return walk(m, true) })
			return false
		case *ast.FuncLit:
			if inLoop && capturesAny(pass, n, named) {
				pass.Reportf(n.Pos(),
					"closure over named return value inside a loop of //lint:hotpath function %s: each iteration allocates",
					fd.Name.Name)
			}
			return false // fresh defer/loop context inside the literal
		case *ast.DeferStmt:
			if inLoop {
				pass.Reportf(n.Pos(),
					"defer inside a loop of //lint:hotpath function %s: each iteration heap-allocates a deferred frame that only runs at return",
					fd.Name.Name)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool { return walk(n, false) })
}

// loopBody returns the body of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// namedResults collects the objects of the function's named results.
func namedResults(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Results == nil {
		return out
	}
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// capturesAny reports whether the literal references one of the objects.
func capturesAny(pass *analysis.Pass, lit *ast.FuncLit, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && objs[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}
