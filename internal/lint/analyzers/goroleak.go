package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ctqosim/internal/lint/analysis"
)

// goroleakScope gates the analyzer to the packages that spawn real
// goroutines around the simulator: the parallel sweep runner and the
// live (wall-clock) harness. The DES core is single-threaded by design —
// wallclock/chanselect police it — so the structured-concurrency
// contract only binds where `go` is legitimate.
var goroleakScope = []string{
	"ctqosim/internal/core",
	"ctqosim/internal/live",
}

// Goroleak enforces structured concurrency on the packages that spawn
// goroutines: every `go` statement must have a visible join — a
// sync.WaitGroup Done in the spawned body (with Add before the spawn and
// a Wait somewhere in the package), or a completion send on a channel
// the enclosing scope receives from, owns (field, package var,
// parameter) or hands off. It also flags the two classic races: wg.Add
// inside the spawned goroutine (racing Wait), and sends on an unbuffered
// locally-made channel nothing receives.
//
// Spawns it cannot resolve statically (dynamic function values) are
// skipped: the analyzer is a leak tripwire for the harness's own
// patterns, not an escape analysis.
var Goroleak = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "require a visible join (WaitGroup or completion channel) for every " +
		"goroutine spawned in the sweep runner and live harness, and flag " +
		"wg.Add races and unbuffered sends with no receiver",
	Run: runGoroleak,
}

// inGoroleakScope reports whether the package path is gated.
func inGoroleakScope(path string) bool {
	for _, p := range goroleakScope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runGoroleak(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil || !inGoroleakScope(pass.Pkg.Path()) {
		return nil, nil
	}
	s := &goroleakState{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		waited:   make(map[types.Object]bool),
		reported: make(map[token.Pos]bool),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				s.decls[fn] = fd
			}
		}
		// Wait is join evidence wherever it lives: a worker pool's Wait
		// sits in Close, not next to the spawn.
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj := s.wgCallTarget(call, "Wait"); obj != nil {
					s.waited[obj] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					s.checkGo(fd, g)
				}
				return true
			})
		}
	}
	return nil, nil
}

type goroleakState struct {
	pass   *analysis.Pass
	decls  map[*types.Func]*ast.FuncDecl
	waited map[types.Object]bool
	// reported dedupes check-A findings when two spawn sites share a
	// method body.
	reported map[token.Pos]bool
}

// chanSend is one completion signal candidate: a send or close in the
// spawned body on a channel declared outside it.
type chanSend struct {
	obj *types.Var
	pos token.Pos
}

// checkGo verifies one spawn site.
func (s *goroleakState) checkGo(fd *ast.FuncDecl, g *ast.GoStmt) {
	body := s.spawnedBody(g.Call)
	if body == nil {
		return // dynamic spawn: not statically resolvable
	}
	s.flagAddInside(body)

	doneWGs := s.wgDoneObjs(body)
	sent := s.sentChans(body)
	for _, wg := range doneWGs {
		if s.addBefore(fd.Body, wg, g.Pos()) && s.waited[wg] {
			return // joined: Add -> go -> Done -> Wait
		}
	}
	for _, c := range sent {
		if s.chanJoined(fd, c.obj) {
			return // joined: the completion send has a visible consumer
		}
	}

	if len(doneWGs) > 0 {
		wg := doneWGs[0]
		if !s.addBefore(fd.Body, wg, g.Pos()) {
			s.pass.Reportf(g.Pos(),
				"goroutine joins via %s.Done but no %s.Add precedes the go statement", wg.Name(), wg.Name())
		} else {
			s.pass.Reportf(g.Pos(),
				"goroutine joins via %s.Done but %s.Wait is never called in this package", wg.Name(), wg.Name())
		}
		return
	}
	if len(sent) > 0 {
		c := sent[0]
		if s.unbuffered(fd.Body, c.obj) {
			s.pass.Reportf(c.pos,
				"goroutine sends on unbuffered channel %s with no receive in scope: the send blocks forever", c.obj.Name())
		} else {
			s.pass.Reportf(g.Pos(),
				"goroutine signals completion on channel %s but nothing in scope receives or hands it off", c.obj.Name())
		}
		return
	}
	s.pass.Reportf(g.Pos(),
		"goroutine has no join: no WaitGroup.Done and no completion-channel send — a panic or early return leaks it")
}

// spawnedBody resolves the body the go statement runs: a function
// literal's own body, or the declaration of a same-package function or
// method (`go s.worker()`).
func (s *goroleakState) spawnedBody(call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := analysis.StaticCallee(s.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if decl := s.decls[fn]; decl != nil {
		return decl.Body
	}
	return nil
}

// flagAddInside reports wg.Add calls inside the spawned body on a
// WaitGroup declared outside it — the Add races the corresponding Wait.
// An Add that precedes a nested spawn in the same body is the legal
// add-before-go pattern and is skipped.
func (s *goroleakState) flagAddInside(body *ast.BlockStmt) {
	var nestedGos []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			nestedGos = append(nestedGos, g.Pos())
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := s.wgCallTarget(call, "Add")
		if obj == nil || declaredInside(obj, body) || s.reported[call.Pos()] {
			return true
		}
		for _, gp := range nestedGos {
			if gp > call.Pos() {
				return true // add-before-nested-go: legal
			}
		}
		s.reported[call.Pos()] = true
		s.pass.Reportf(call.Pos(),
			"%s.Add inside the spawned goroutine races Wait: call Add before the go statement", obj.Name())
		return true
	})
}

// wgDoneObjs collects the WaitGroups the body calls Done on, in source
// order, skipping ones declared inside the body itself.
func (s *goroleakState) wgDoneObjs(body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := s.wgCallTarget(call, "Done"); obj != nil && !seen[obj] && !declaredInside(obj, body) {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// sentChans collects the channels the body sends on or closes, in source
// order, skipping ones declared inside the body itself.
func (s *goroleakState) sentChans(body *ast.BlockStmt) []chanSend {
	var out []chanSend
	seen := make(map[*types.Var]bool)
	add := func(e ast.Expr, pos token.Pos) {
		v := s.chanVar(e)
		if v == nil || seen[v] || declaredInside(v, body) {
			return
		}
		seen[v] = true
		out = append(out, chanSend{obj: v, pos: pos})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			add(n.Chan, n.Arrow)
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, ok := s.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					add(n.Args[0], n.Pos())
				}
			}
		}
		return true
	})
	return out
}

// addBefore reports whether scope calls Add on the WaitGroup before pos.
func (s *goroleakState) addBefore(scope *ast.BlockStmt, wg *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() < pos && s.wgCallTarget(call, "Add") == wg {
			found = true
		}
		return !found
	})
	return found
}

// chanJoined reports whether the completion channel has a visible
// consumer: it outlives the function (field, package var, parameter of
// the enclosing function), the enclosing body receives from it, or the
// enclosing body hands it off (returns it or passes it to a call).
func (s *goroleakState) chanJoined(fd *ast.FuncDecl, c *types.Var) bool {
	if c.IsField() || (c.Pkg() != nil && c.Parent() == c.Pkg().Scope()) {
		return true
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if s.pass.TypesInfo.Defs[name] == c {
					return true
				}
			}
		}
	}
	info := s.pass.TypesInfo
	joined := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && s.chanVar(n.X) == c {
				joined = true
			}
		case *ast.RangeStmt:
			if s.chanVar(n.X) == c {
				joined = true
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if s.chanVar(r) == c {
					joined = true
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					return true // make/close/len/cap do not hand off
				}
			}
			for _, arg := range n.Args {
				if s.chanVar(arg) == c {
					joined = true
				}
			}
		}
		return !joined
	})
	return joined
}

// unbuffered reports whether the channel is made in scope with no (or
// zero) capacity. An untraceable channel is conservatively treated as
// buffered.
func (s *goroleakState) unbuffered(scope *ast.BlockStmt, c *types.Var) bool {
	info := s.pass.TypesInfo
	result := false
	ast.Inspect(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) || s.chanVar(lhs) != c {
				continue
			}
			call, ok := unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
				continue
			}
			if len(call.Args) < 2 {
				result = true
			} else if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
				result = true
			}
		}
		return true
	})
	return result
}

// wgCallTarget resolves a call of the form X.name() where X is a
// sync.WaitGroup variable or field, returning that variable.
func (s *goroleakState) wgCallTarget(call *ast.CallExpr, name string) *types.Var {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	v := selectedVar(s.pass.TypesInfo, sel.X)
	if v == nil || !isWaitGroupType(v.Type()) {
		return nil
	}
	return v
}

// chanVar resolves an expression to the channel variable it names, or
// nil for anything else.
func (s *goroleakState) chanVar(e ast.Expr) *types.Var {
	v := selectedVar(s.pass.TypesInfo, e)
	if v == nil {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return v
}

// selectedVar resolves an identifier, field selection or qualified name
// to the variable it denotes.
func selectedVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
		v, _ := info.Defs[e].(*types.Var) // the := in "c := make(chan T)"
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// isWaitGroupType reports whether t is sync.WaitGroup (or a pointer to
// it).
func isWaitGroupType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// declaredInside reports whether the object's declaration lies within
// the node's source range.
func declaredInside(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}
