package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"ctqosim/internal/lint/analysis"
)

// maxAllocSites bounds a function's exported summary: the hot-path audit
// only needs to know a function allocates and where it starts, not every
// site. The earliest sites (by position) are kept.
const maxAllocSites = 4

// maxChainDepth bounds the rendered call chain of one site.
const maxChainDepth = 8

// AllocSite is one heap-allocating construct a function may execute,
// directly or through a callee.
type AllocSite struct {
	// What names the construct ("make map", "append may grow", "call to
	// pkg.Func", ...).
	What string
	// File (base name) and Line locate the construct.
	File string
	Line int
	// Chain, present on call sites, traces through intermediate callees
	// down to the underlying construct; each entry is a pre-rendered
	// "func: what (file:line)" step.
	Chain []string
}

// AllocsFact is the bottom-up allocation summary of a function: the
// heap-allocating constructs it may execute, including those reached
// transitively through same- and cross-package callees. A function with
// no fact is allocation-free as far as the static approximation can see.
// Sites carrying a "//lint:allow allocs <reason>" suppression are removed
// at fact-construction time, so a cold branch annotated in a callee never
// taints its hot callers. The hotpath analyzer declares the same fact
// type and consumes these summaries.
type AllocsFact struct {
	// Sites lists the earliest allocation sites (capped at maxAllocSites),
	// sorted by position.
	Sites []AllocSite
}

// AFact implements analysis.Fact.
func (*AllocsFact) AFact() {}

// String renders the summary for fixture fact expectations.
func (f *AllocsFact) String() string {
	whats := make([]string, len(f.Sites))
	for i, s := range f.Sites {
		whats[i] = s.What
	}
	return "allocs(" + strings.Join(whats, "; ") + ")"
}

// Allocs computes AllocsFact summaries for every function of the package
// and exports them for dependent packages (and for the hotpath analyzer,
// which shares the fact type). It reports no diagnostics itself: the
// facts are the product, and hotpath turns them into findings at
// //lint:hotpath annotations.
//
// The detection is a deliberately escape-analysis-free approximation of
// the compiler: composite literals whose address escapes, make/new,
// slice and map literals, append (may grow), interface boxing of
// non-pointer values, capturing closures, method values, string
// concatenation and string<->[]byte conversions, go statements, and
// calls to known-allocating stdlib functions (fmt, errors, strings
// builders, sort.Slice...). Dynamic calls — interface methods and func
// values — are invisible to the summary and form the contract's
// documented measurement boundary (DESIGN.md §12).
var Allocs = &analysis.Analyzer{
	Name: "allocs",
	Doc: "compute bottom-up per-function allocation summaries " +
		"(AllocsFact) and propagate them cross-package for the hotpath " +
		"analyzer; //lint:allow allocs suppresses a site at its source",
	FactTypes: []analysis.Fact{new(AllocsFact)},
	Run:       runAllocs,
}

// stdlibAllocating lists GOROOT package-level functions known to
// allocate. GOROOT packages are not analyzed (no facts), so without this
// list a hot path calling fmt.Sprintf would look clean.
var stdlibAllocating = map[string]map[string]bool{
	"fmt": {
		"Sprint": true, "Sprintf": true, "Sprintln": true,
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Errorf": true, "Sscan": true, "Sscanf": true, "Sscanln": true,
		"Appendf": true, "Append": true, "Appendln": true,
	},
	"errors": {"New": true, "Join": true},
	"strings": {
		"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true,
		"Split": true, "SplitN": true, "SplitAfter": true, "Fields": true,
		"FieldsFunc": true, "Map": true, "ToUpper": true, "ToLower": true,
		"Title": true, "TrimFunc": true, "Clone": true, "Concat": true,
	},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true, "AppendQuote": true,
	},
	"sort": {"Slice": true, "SliceStable": true, "SliceIsSorted": true},
}

func runAllocs(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil {
		return nil, nil
	}
	s := &allocsState{
		pass:    pass,
		byObj:   make(map[*types.Func]*allocSummary),
		allowed: allowedLinesFor(pass, "allocs"),
	}
	s.collect()
	s.fixpoint()
	s.export()
	return nil, nil
}

// allocSite is the in-progress form of an AllocSite.
type allocSite struct {
	pos  token.Pos
	what string
	// callee is non-nil for call sites into the same package (chain
	// resolved at export time, after the fixpoint converges).
	callee *types.Func
	// chain is pre-rendered for call sites into already-analyzed imported
	// packages.
	chain []string
}

// allocSummary is one function's in-progress allocation summary.
type allocSummary struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	sites map[token.Pos]*allocSite
}

type allocsState struct {
	pass  *analysis.Pass
	funcs []*allocSummary
	byObj map[*types.Func]*allocSummary
	// allowed maps file -> line numbers carrying a //lint:allow directive
	// naming "allocs" (keyed to the directive comment's position, so
	// consumption can be reported to the driver's stale-suppression
	// audit); a site on such a line or the one below it is suppressed at
	// fact-construction time.
	allowed map[string]map[int]token.Pos
}

// suppressedAt reports whether a site at pos carries an allocs allow on
// its own line or the line above, notifying the driver's audit hook of
// the consumed directive.
func (s *allocsState) suppressedAt(pos token.Pos) bool {
	return consumeAllow(s.pass, s.allowed, pos, "allocs")
}

func (s *allocsState) collect() {
	for _, f := range s.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := s.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := &allocSummary{fn: fn, decl: fd, sites: make(map[token.Pos]*allocSite)}
			s.funcs = append(s.funcs, sum)
			s.byObj[fn] = sum
		}
	}
}

// fixpoint scans every function body repeatedly until no summary grows,
// so same-package (mutually) recursive call chains converge.
func (s *allocsState) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, sum := range s.funcs {
			if s.scan(sum) {
				changed = true
			}
		}
	}
}

// add records a site if it is new and not suppressed; reports growth.
func (s *allocsState) add(sum *allocSummary, pos token.Pos, site *allocSite) bool {
	if _, dup := sum.sites[pos]; dup || s.suppressedAt(pos) {
		return false
	}
	site.pos = pos
	sum.sites[pos] = site
	return true
}

// scan walks one function body for direct allocation sites and calls to
// allocating callees. FuncLit bodies are not descended into: a closure's
// internal allocations belong to whoever calls it (a dynamic call this
// analysis cannot resolve); the closure value itself is the creating
// function's site when it captures.
func (s *allocsState) scan(sum *allocSummary) bool {
	grew := false
	info := s.pass.TypesInfo
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if closureCaptures(info, n, sum.decl) {
				if s.add(sum, n.Pos(), &allocSite{what: "closure captures variables"}) {
					grew = true
				}
			}
			return false // do not scan the body: it runs when called, not here
		case *ast.GoStmt:
			if s.add(sum, n.Pos(), &allocSite{what: "go statement"}) {
				grew = true
			}
		case *ast.CallExpr:
			if s.scanCall(sum, n) {
				grew = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					if s.add(sum, n.Pos(), &allocSite{what: "composite literal escapes"}) {
						grew = true
					}
				}
			}
		case *ast.CompositeLit:
			if what, ok := s.compositeAllocs(n); ok {
				if s.add(sum, n.Pos(), &allocSite{what: what}) {
					grew = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstantString(info, n) {
				if s.add(sum, n.Pos(), &allocSite{what: "string concatenation"}) {
					grew = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) || n.Tok == token.DEFINE {
					break
				}
				if boxes(typeOf(info, n.Rhs[i]), typeOf(info, lhs)) {
					if s.add(sum, n.Rhs[i].Pos(), &allocSite{what: "boxed into interface"}) {
						grew = true
					}
				}
			}
		case *ast.ReturnStmt:
			if sig, ok := sum.fn.Type().(*types.Signature); ok {
				for i, res := range n.Results {
					if i >= sig.Results().Len() {
						break
					}
					if boxes(typeOf(info, res), sig.Results().At(i).Type()) {
						if s.add(sum, res.Pos(), &allocSite{what: "boxed into interface"}) {
							grew = true
						}
					}
				}
			}
		case *ast.SelectorExpr:
			// A method value (x.M used as a value, not called) allocates a
			// bound-method closure.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if !calledOrCallArg(sum.decl, n) {
					if s.add(sum, n.Pos(), &allocSite{what: "method value"}) {
						grew = true
					}
				}
			}
		}
		return true
	}
	ast.Inspect(sum.decl.Body, walk)
	return grew
}

// scanCall classifies one call expression: builtins, conversions, static
// callees with summaries, known-allocating stdlib functions, and
// interface boxing of its arguments.
func (s *allocsState) scanCall(sum *allocSummary, call *ast.CallExpr) bool {
	grew := false
	info := s.pass.TypesInfo

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := tv.Type
		argT := typeOf(info, call.Args[0])
		if isStringByteConversion(target, argT) {
			if s.add(sum, call.Pos(), &allocSite{what: "string conversion"}) {
				grew = true
			}
		} else if boxes(argT, target) {
			if s.add(sum, call.Pos(), &allocSite{what: "boxed into interface"}) {
				grew = true
			}
		}
		return grew
	}

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				what := "make"
				if len(call.Args) > 0 {
					switch typeOf(info, call.Args[0]).Underlying().(type) {
					case *types.Slice:
						what = "make slice"
					case *types.Map:
						what = "make map"
					case *types.Chan:
						what = "make chan"
					}
				}
				if s.add(sum, call.Pos(), &allocSite{what: what}) {
					grew = true
				}
			case "new":
				if s.add(sum, call.Pos(), &allocSite{what: "new"}) {
					grew = true
				}
			case "append":
				if s.add(sum, call.Pos(), &allocSite{what: "append may grow"}) {
					grew = true
				}
			}
			return grew
		}
	}

	// Static callees: same-package summaries (still converging), imported
	// facts, or the stdlib denylist.
	if callee, _ := calleeFunc(info, call); callee != nil {
		if local, ok := s.byObj[callee]; ok {
			if len(local.sites) > 0 && callee != sum.fn {
				if s.add(sum, call.Pos(), &allocSite{
					what:   "call to " + qualFuncName(callee),
					callee: callee,
				}) {
					grew = true
				}
			}
		} else {
			var fact AllocsFact
			if s.pass.ImportObjectFact(callee, &fact) && len(fact.Sites) > 0 {
				first := fact.Sites[0]
				chain := append([]string{renderSite(qualFuncName(callee), first.What, first.File, first.Line)}, first.Chain...)
				if s.add(sum, call.Pos(), &allocSite{
					what:  "call to " + qualFuncName(callee),
					chain: chain,
				}) {
					grew = true
				}
			} else if pkg := callee.Pkg(); pkg != nil && stdlibAllocating[pkg.Path()][callee.Name()] {
				if s.add(sum, call.Pos(), &allocSite{
					what: "allocating stdlib call " + pkg.Name() + "." + callee.Name(),
				}) {
					grew = true
				}
			}
		}
	}

	// Interface boxing of arguments, for any call with a known signature
	// (static or not: boxing is a property of the call site).
	if sig, ok := typeOf(info, call.Fun).(*types.Signature); ok && call.Ellipsis == token.NoPos {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if params.Len() > 0 {
					if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
						pt = sl.Elem()
					}
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if boxes(typeOf(info, arg), pt) {
				if s.add(sum, arg.Pos(), &allocSite{what: "boxed into interface"}) {
					grew = true
				}
			}
		}
	}
	return grew
}

// compositeAllocs classifies a composite literal as heap-allocating:
// slice and map literals always allocate backing storage. Struct and
// array literals are values — they allocate only when their address is
// taken (the walk's UnaryExpr case) or when boxed into an interface (the
// boxing checks).
func (s *allocsState) compositeAllocs(lit *ast.CompositeLit) (string, bool) {
	t := typeOf(s.pass.TypesInfo, lit)
	if t == nil {
		return "", false
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		if len(lit.Elts) > 0 {
			return "slice literal", true
		}
	case *types.Map:
		return "map literal", true
	}
	return "", false
}

// boxes reports whether assigning a value of type from to a location of
// type to converts a concrete non-pointer value into an interface — the
// allocation the runtime calls convT. Pointer-shaped values (pointers,
// channels, maps, funcs, unsafe pointers) box without allocating.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	switch u := from.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.UnsafePointer:
			return false
		}
		return true
	}
	return true
}

// isStringByteConversion reports a string <-> []byte/[]rune conversion,
// which copies into fresh storage.
func isStringByteConversion(target, arg types.Type) bool {
	if target == nil || arg == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
			e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(target) && isByteSlice(arg)) || (isByteSlice(target) && isStr(arg))
}

// isNonConstantString reports a string-typed expression the compiler
// cannot fold at compile time.
func isNonConstantString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// closureCaptures reports whether the literal references a variable
// declared in the enclosing function but outside the literal itself.
// Package-level objects don't count: a closure over only those is a
// static function value, allocation-free.
func closureCaptures(info *types.Info, lit *ast.FuncLit, encl *ast.FuncDecl) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the literal's own params/locals
		}
		if v.Pos() >= encl.Pos() && v.Pos() <= encl.End() {
			captures = true
		}
		return !captures
	})
	return captures
}

// calledOrCallArg reports whether sel appears as the function of a call
// (x.M(...) — no method-value allocation) within the declaration.
func calledOrCallArg(decl *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	called := false
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && unparen(call.Fun) == sel {
			called = true
		}
		return !called
	})
	return called
}

// qualFuncName renders pkg.Func or pkg.Type.Method.
func qualFuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// renderSite formats one chain step.
func renderSite(fn, what, file string, line int) string {
	return fmt.Sprintf("%s: %s (%s:%d)", fn, what, file, line)
}

// export sorts, caps and renders each summary into an AllocsFact.
// Same-package call chains are resolved here, after the fixpoint, so the
// chain reflects the final summaries.
func (s *allocsState) export() {
	for _, sum := range s.funcs {
		if len(sum.sites) == 0 {
			continue
		}
		ordered := make([]*allocSite, 0, len(sum.sites))
		for _, site := range sum.sites {
			ordered = append(ordered, site)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].pos < ordered[j].pos })
		if len(ordered) > maxAllocSites {
			ordered = ordered[:maxAllocSites]
		}
		fact := &AllocsFact{Sites: make([]AllocSite, 0, len(ordered))}
		for _, site := range ordered {
			p := s.pass.Fset.Position(site.pos)
			out := AllocSite{
				What:  site.what,
				File:  filepath.Base(p.Filename),
				Line:  p.Line,
				Chain: site.chain,
			}
			if site.callee != nil {
				out.Chain = s.chainFor(site.callee, map[*types.Func]bool{sum.fn: true})
			}
			fact.Sites = append(fact.Sites, out)
		}
		s.pass.ExportObjectFact(sum.fn, fact)
	}
}

// chainFor renders the call chain starting at a same-package callee,
// following first sites through further same-package calls, with a
// visited set guarding recursion and maxChainDepth bounding length.
func (s *allocsState) chainFor(fn *types.Func, visited map[*types.Func]bool) []string {
	var chain []string
	for fn != nil && len(chain) < maxChainDepth && !visited[fn] {
		visited[fn] = true
		sum, ok := s.byObj[fn]
		if !ok || len(sum.sites) == 0 {
			break
		}
		var first *allocSite
		for _, site := range sum.sites {
			if first == nil || site.pos < first.pos {
				first = site
			}
		}
		p := s.pass.Fset.Position(first.pos)
		chain = append(chain, renderSite(qualFuncName(fn), first.what, filepath.Base(p.Filename), p.Line))
		if first.callee != nil {
			fn = first.callee
			continue
		}
		chain = append(chain, first.chain...)
		break
	}
	if len(chain) > maxChainDepth {
		chain = chain[:maxChainDepth]
	}
	return chain
}
