// Package flagged exercises the purity analyzer's direct-effect checks:
// a //lint:pure function performing its own shared writes, I/O and
// nondeterministic reads is reported at each offending position.
package flagged

import (
	"fmt"
	"math/rand"
	"time"
)

var counter int

//lint:pure
func Bad() int { // want Bad:`effects\(writes package variable counter; wall-clock call time.Now; global rand call rand.Intn; I/O call fmt.Println\)`
	counter++         // want `//lint:pure function Bad must stay pure: writes package variable counter`
	_ = time.Now()    // want `//lint:pure function Bad must stay pure: wall-clock call time.Now`
	n := rand.Intn(3) // want `//lint:pure function Bad must stay pure: global rand call rand.Intn`
	fmt.Println(n)    // want `//lint:pure function Bad must stay pure: I/O call fmt.Println`
	return n
}

//lint:pure
func BadChan(ch chan int) { // want BadChan:`effects\(channel send; channel receive; spawns goroutine\)`
	ch <- 1        // want `//lint:pure function BadChan must stay pure: channel send`
	<-ch           // want `//lint:pure function BadChan must stay pure: channel receive`
	go func() {}() // want `//lint:pure function BadChan must stay pure: spawns goroutine`
}

//lint:pure
func NoBody() // want `//lint:pure on NoBody, which has no body: the contract needs a call graph to check`
