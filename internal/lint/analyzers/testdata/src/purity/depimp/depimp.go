// Package depimp is an impure dependency for the purity fixtures: its
// effect summary is exported as a fact and imported across the package
// boundary by the purity/deep fixture.
package depimp

import "os"

// Log writes one line to stderr.
func Log(msg string) {
	os.Stderr.WriteString(msg + "\n")
}
