// Package allowed exercises the purity analyzer's legal patterns: seeded
// randomness, string formatting, writes through the root's own
// parameters, and the //lint:allow escape hatch (consumed at
// fact-construction time, so the allowance covers transitive reaches
// too).
package allowed

import (
	"fmt"
	"math/rand"
)

type Spec struct{ Web int }

//lint:pure
func Gen(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	return fmt.Sprintf("web=%d", r.Intn(10))
}

//lint:pure
func SetParam(s *Spec) {
	s.Web = 2 // mutating the caller-supplied spec is the closure's job
}

var debugHits int

//lint:pure
func Counted(s *Spec) {
	//lint:allow purity debug-only counter, excluded from replay identity
	debugHits++
	SetParam(s)
}

//lint:pure
func Chained(s *Spec) {
	Counted(s) // the allow strips the effect, so reaching it is clean too
}
