// Package deep exercises the purity analyzer's interprocedural check:
// a //lint:nocapturewrite Tweak closure reaches an I/O call three calls
// down the static call graph, crossing a package boundary, and the
// finding renders the full chain.
package deep

import "purity/depimp"

type Spec struct{ Web int }

// Config mirrors the simulator's scenario Config: Tweak closures run
// inside workers and must stay pure beyond their own parameter.
type Config struct {
	//lint:nocapturewrite
	Tweak func(*Spec)
}

// Build wires the per-run tweak.
func Build() Config {
	return Config{
		Tweak: func(s *Spec) {
			s.Web = 1    // the closure's own parameter: legal
			normalize(s) // want `Tweak closure \(//lint:nocapturewrite\) reaches impure depimp.Log: I/O call os.File.WriteString \(depimp.go:\d+, 3 calls deep\)`
		},
	}
}

func normalize(s *Spec) {
	if s.Web < 0 {
		s.Web = 0
	}
	logStats(s)
}

func logStats(s *Spec) {
	if s.Web > 100 {
		depimp.Log("spec out of range")
	}
}
