// Package ungated leaks a goroutine outside the analyzer's package
// gate: no finding.
package ungated

func Leak() {
	go func() {
	}()
}
