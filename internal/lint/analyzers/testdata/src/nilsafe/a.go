package nilsafe

// Tracer opts into the nil-safe method contract.
//
//lint:nilsafe
type Tracer struct {
	count int
}

// Guarded begins with the canonical guard.
func (t *Tracer) Guarded() int {
	if t == nil {
		return 0
	}
	return t.count
}

// GuardedOr guards inside an || chain.
func (t *Tracer) GuardedOr(extra bool) int {
	if t == nil || extra {
		return 0
	}
	return t.count
}

// Bad dereferences the receiver with no guard.
func (t *Tracer) Bad() int { // want `nil-receiver guard`
	return t.count
}

// Delegates touches the receiver only through checked methods, which is
// nil-safe by induction.
func (t *Tracer) Delegates() int {
	return t.Guarded()
}

// Compares never dereferences.
func (t *Tracer) Compares() bool {
	return t != nil
}

// unexported methods are outside the exported-API contract.
func (t *Tracer) internal() int { return t.count }

// Escaped opts out explicitly.
//
//lint:allow nilsafe panics on nil by design
func (t *Tracer) Escaped() int {
	return t.count
}

// Plain never opted in, so its methods are unconstrained.
type Plain struct{ n int }

// NoContract is fine without a guard.
func (p *Plain) NoContract() int { return p.n }
