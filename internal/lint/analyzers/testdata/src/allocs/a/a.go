// Package a exercises every direct allocation construct the allocs
// analyzer classifies. The want clauses are fact expectations (the
// x/tools name:"pattern" form): allocs reports no diagnostics — its
// AllocsFact summaries are the product.
package a

import "fmt"

type box struct{ n int }

func MakeMap() map[string]int { // want MakeMap:`allocs\(make map\)`
	return make(map[string]int)
}

func MakeSlice(n int) []int { // want MakeSlice:`allocs\(make slice\)`
	return make([]int, n)
}

func New() *box { // want New:`allocs\(new\)`
	return new(box)
}

func Grow(s []int) []int { // want Grow:`allocs\(append may grow\)`
	return append(s, 1)
}

func SliceLit() []int { // want SliceLit:`allocs\(slice literal\)`
	return []int{1, 2, 3}
}

func MapLit() map[string]int { // want MapLit:`allocs\(map literal\)`
	return map[string]int{"a": 1}
}

func Escape() *box { // want Escape:`allocs\(composite literal escapes\)`
	return &box{n: 1}
}

func Box(n int) any { // want Box:`allocs\(boxed into interface\)`
	return n
}

func BoxArg(n int) { // want BoxArg:`allocs\(boxed into interface\)`
	sink(n)
}

func sink(v any) { _ = v }

func Concat(a, b string) string { // want Concat:`allocs\(string concatenation\)`
	return a + b
}

func Convert(b []byte) string { // want Convert:`allocs\(string conversion\)`
	return string(b)
}

func Closure(n int) func() int { // want Closure:`allocs\(closure captures variables\)`
	return func() int { return n }
}

func Sprintf(name string) string { // want Sprintf:`allocating stdlib call fmt.Sprintf`
	return fmt.Sprintf("hello %s", name)
}

func Spawn() { // want Spawn:`allocs\(go statement\)`
	go noop()
}

func noop() {}

func MethodValue(b *box) func() int { // want MethodValue:`allocs\(method value\)`
	return b.get
}

func (b *box) get() int { return b.n }

// Transitive: the summary flows through a same-package call; the call
// site becomes the caller's single site.
func Caller() map[string]int { // want Caller:`allocs\(call to a.MakeMap\)`
	return MakeMap()
}

// Static closures over package state and plain arithmetic are free.
func Clean(a, b int) int {
	f := double
	return f(a) + b
}

func double(n int) int { return 2 * n }

// A suppressed site never enters the summary: Allowed has no fact, so
// hot callers of it stay clean (the cold-branch convention).
func Allowed() map[string]int {
	return make(map[string]int) //lint:allow allocs cold start-up path, runs once
}
