// Package ungated accumulates floats in map order outside the
// analyzer's package gate: no finding.
package ungated

func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
