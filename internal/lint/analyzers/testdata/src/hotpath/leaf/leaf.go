// Package leaf is the bottom of the hotpath fixture chain: the only
// package that actually allocates.
package leaf

func Alloc() map[string]int {
	return make(map[string]int)
}
