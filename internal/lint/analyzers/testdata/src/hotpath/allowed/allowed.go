// Package allowed pins the cold-branch convention: a site suppressed
// with //lint:allow allocs never enters its function's summary, so the
// hot caller stays clean without any annotation of its own.
package allowed

//lint:hotpath
func Hot(m map[string]int) int {
	if m == nil {
		m = coldInit()
	}
	return m["k"]
}

func coldInit() map[string]int {
	return make(map[string]int) //lint:allow allocs cold branch, first call only
}
