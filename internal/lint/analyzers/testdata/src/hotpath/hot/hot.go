// Package hot pins the cross-package contract: Run is annotated, the
// allocation lives three packages below in hotpath/leaf, and the
// finding's chain walks mid -> deep -> leaf (asserted structurally in
// TestHotpathChain; the want here only matches the message).
package hot

import "hotpath/mid"

//lint:hotpath DES kernel fixture
func Run() map[string]int { // want `lint:hotpath function Run allocates: call to mid\.Step \(hot\.go:`
	return mid.Step()
}

//lint:hotpath
func Clean(a, b int) int {
	return a + b
}

// NoBody mimics an assembly stub: there is no call graph to check, so
// annotating it is itself the mistake.
//
//lint:hotpath
func NoBody() int // want `lint:hotpath on NoBody, which has no body`
