// Package budget exercises allocs=N budgets and malformed directives.
package budget

// Two sites under a budget of two: within contract, no finding.
//
//lint:hotpath allocs=2 amortized ring growth
func Within() ([]int, map[string]int) {
	s := make([]int, 4)
	m := make(map[string]int)
	return s, m
}

// Two sites over a budget of one: every site is reported, tagged with
// the exceeded budget so the reader sees the arithmetic.
//
//lint:hotpath allocs=1
func Over() ([]int, map[string]int) { // want `function Over allocates: make slice \(budget\.go:\d+\) \[budget allocs=1 exceeded: 2 sites\]` `function Over allocates: make map \(budget\.go:\d+\) \[budget allocs=1 exceeded: 2 sites\]`
	s := make([]int, 4)
	m := make(map[string]int)
	return s, m
}

//lint:hotpath allocs=x // want `budget must be a non-negative integer`
func BadBudget() {}

//lint:hotpath allocs=-1 // want `budget must be a non-negative integer`
func NegativeBudget() {}

//lint:hotpath frames=0 // want `unknown //lint:hotpath key "frames"`
func BadKey() {}
