// Package pkglevel pins the file-wide form: a directive in the package
// doc covers every function in the file, and a per-function directive
// overrides it.
//
//lint:hotpath every function in this file is kernel code
package pkglevel

func Clean(a, b int) int {
	return a + b
}

func Dirty() []int { // want `lint:hotpath function Dirty allocates: make slice`
	return make([]int, 8)
}

// A per-function budget wins over the file-wide zero budget.
//
//lint:hotpath allocs=1 one warm-up allocation
func Budgeted() []int {
	return make([]int, 8)
}
