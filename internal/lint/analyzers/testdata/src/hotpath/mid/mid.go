// Package mid forwards to deep: two hops above the allocation.
package mid

import "hotpath/deep"

func Step() map[string]int {
	return deep.Go()
}
