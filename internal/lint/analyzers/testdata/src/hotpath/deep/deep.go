// Package deep forwards to leaf: one hop above the allocation.
package deep

import "hotpath/leaf"

func Go() map[string]int {
	return leaf.Alloc()
}
