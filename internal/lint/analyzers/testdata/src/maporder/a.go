package maporder

import (
	"fmt"
	"io"
	"sort"
)

// badAppend collects keys in iteration order and never sorts them.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `never sorted`
		keys = append(keys, k)
	}
	return keys
}

// badWrite emits output rows straight from the map.
func badWrite(m map[string]int, w io.Writer) {
	for k, v := range m { // want `ordered output via Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// badConcat builds a string in iteration order.
func badConcat(m map[string]int) string {
	out := ""
	for k := range m { // want `string built up in map iteration order`
		out += k
	}
	return out
}

// goodSortedAfter is the canonical fix: collect, then sort.
func goodSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodAggregation is order-insensitive and stays legal.
func goodAggregation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodBuckets appends into per-key map buckets — order-insensitive.
func goodBuckets(m map[string]int, buckets map[int][]string) {
	for k, v := range m {
		buckets[v] = append(buckets[v], k)
	}
}

// allowed demonstrates the //lint:allow override.
func allowed(m map[string]int) []string {
	var out []string
	for k := range m { //lint:allow maporder the sole caller sorts
		out = append(out, k)
	}
	return out
}
