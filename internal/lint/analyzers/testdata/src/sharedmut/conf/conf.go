// Package conf mirrors core.Config's sharing contract: pointer fields
// shared across Runner workers, and a closure field that runs on the
// worker goroutine.
package conf

// Spec is the per-run system description a Tweak may mutate freely.
type Spec struct {
	Threads int
}

// Mix is the shared interaction mix.
type Mix struct {
	Total   float64
	Weights []float64
}

// Add mutates its receiver; holders of a shared Mix must not call it.
func (m *Mix) Add(w float64) {
	m.Total += w
}

// Config is the fixture's experiment description.
type Config struct {
	Name string
	//lint:sharedptr
	Mix *Mix
	//lint:nocapturewrite
	Tweak func(*Spec)
}

// Reset is the same-package violation: the marked field is written right
// next to its declaration.
func Reset(c *Config) {
	c.Mix.Total = 0 // want `write through shared pointer field Mix`
}
