// Package deep is the bottom of the fixture call chain: the function
// that actually writes through its argument, three packages below the
// run site that hands it shared state.
package deep

import "sharedmut/conf"

// Zero clears a mix in place.
func Zero(m *conf.Mix) {
	m.Total = 0
	for i := range m.Weights {
		m.Weights[i] = 0
	}
}
