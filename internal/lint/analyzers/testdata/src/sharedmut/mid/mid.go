// Package mid forwards to leaf: one more hop for the mutation fact to
// propagate through before it reaches the run site.
package mid

import (
	"sharedmut/conf"
	"sharedmut/leaf"
)

// Tune adjusts a mix via leaf.
func Tune(m *conf.Mix) {
	leaf.Bump(m)
}
