// Package leaf forwards to deep; its mutation summary is inherited from
// deep.Zero's exported fact, not from any write of its own.
package leaf

import (
	"sharedmut/conf"
	"sharedmut/deep"
)

// Bump clears a mix via deep.
func Bump(m *conf.Mix) {
	deep.Zero(m)
}
