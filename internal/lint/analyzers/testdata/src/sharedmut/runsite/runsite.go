// Package runsite plays the Runner-submission role: it holds configs
// whose pointer fields are shared, so every write path through them —
// direct, aliased, or buried three packages down the call chain — must
// be flagged here, at the site that handed the shared state away.
package runsite

import (
	"sharedmut/conf"
	"sharedmut/mid"
)

// submitted is enclosing-scope state a Tweak must not touch.
var submitted int

// poolMix is shared by every config in the batch.
var poolMix = &conf.Mix{}

// fresh returns a private mix.
func fresh() *conf.Mix { return &conf.Mix{} }

// good exercises the allowed patterns: reads, pointer replacement,
// per-run mutation inside Tweak, and an ambiguous local the
// flow-insensitive alias analysis must not flag.
func good(cfg *conf.Config) {
	_ = cfg.Mix.Total // reads are fine
	cfg.Mix = fresh() // replacing the pointer is fine
	cfg.Tweak = func(s *conf.Spec) {
		s.Threads = 2000 // mutating the per-run argument is fine
	}
	m := cfg.Mix
	m = fresh() // not every assignment is shared-rooted: m is ambiguous
	m.Total = 1
	_ = m
}

// bad exercises every flagged path.
func bad(cfg *conf.Config) {
	cfg.Mix.Total = 3 // want `write through shared pointer field Mix`
	cfg.Mix.Add(1)    // want `shared pointer field Mix passed to Add`
	mid.Tune(cfg.Mix) // want `shared pointer field Mix passed to Tune`
	a := cfg.Mix
	a.Total = 2 // want `write through a, an alias of shared pointer field Mix`
	mid.Tune(a) // want `alias of shared pointer field Mix passed to Tune`
	cfg.Tweak = func(s *conf.Spec) {
		s.Threads = 1
		submitted++       // want `closure writes captured variable submitted`
		mid.Tune(poolMix) // want `closure passes captured variable poolMix to Tune`
	}
}

// batch builds a config in literal form; the closure is still checked.
func batch() conf.Config {
	return conf.Config{
		Name: "literal",
		Tweak: func(s *conf.Spec) {
			submitted++ // want `closure writes captured variable submitted`
		},
	}
}

// allowed demonstrates the escape hatch.
func allowed(cfg *conf.Config) {
	//lint:allow sharedmut fixture demonstrates the escape hatch
	cfg.Mix.Total = 4
}
