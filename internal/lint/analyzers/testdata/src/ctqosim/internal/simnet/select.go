// Package simnet stands in for the repo's sim-time transport package:
// the import path puts it inside the sim-time set chanselect guards.
package simnet

// merge drains two channels with runtime-random choice: flagged.
func merge(a, b <-chan int) int {
	select { // want `select with 2 channel cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// poll is a single-case non-blocking receive: explicit order, fine.
func poll(a <-chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// mux is a deliberate exception.
func mux(a, b <-chan int) int {
	//lint:allow chanselect fixture demonstrates the escape hatch
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
