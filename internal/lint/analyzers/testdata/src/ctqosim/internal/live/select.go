package live

// merge is identical to the simnet fixture but lives in the real-network
// harness, outside the sim-time set: not flagged.
func merge(a, b <-chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
