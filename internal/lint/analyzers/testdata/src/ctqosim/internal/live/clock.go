package live

import "time"

// measure uses the wall clock freely: internal/live drives real machines
// and is outside the sim-time package allowlist, so nothing here is
// flagged.
func measure() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
