// Package goroleakok exercises the goroleak analyzer's accepted
// patterns — each mirrors a real spawn site in internal/core or
// internal/live.
package goroleakok

import "sync"

// Fan mirrors core's Runner.Do: local WaitGroup, Add before each spawn,
// Done deferred inside, Wait after the feed loop.
func Fan(n int, fn func(int)) {
	var wg sync.WaitGroup
	slots := make(chan int)
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range slots {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		slots <- i
	}
	close(slots)
	wg.Wait()
}

// Collect mirrors live's RunLoad: a buffered completion channel the
// enclosing function drains.
func Collect(n int) []int {
	out := make([]int, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			out[i] = i * i
			done <- i
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return out
}

// Pool mirrors live's Server: field WaitGroup, Add in the constructor,
// Done in the method bodies, Wait in Close.
type Pool struct {
	wg   sync.WaitGroup
	work chan int
}

func NewPool(workers int) *Pool {
	p := &Pool{work: make(chan int, workers)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for range p.work {
	}
}

func (p *Pool) Close() {
	close(p.work)
	p.wg.Wait()
}

// Launch hands the join off to the caller: the completion channel is
// returned.
func Launch() chan struct{} {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	return done
}

// Signal reports on a caller-owned channel.
func Signal(done chan<- struct{}) {
	go func() {
		done <- struct{}{}
	}()
}

// Nested: an Add inside a goroutine is legal when it precedes a nested
// spawn in the same body.
func Nested() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}()
	wg.Wait()
}

// Detached shows the escape hatch for a deliberate fire-and-forget.
func Detached() {
	//lint:allow goroleak best-effort warmup, joined by process exit
	go func() {
		_ = 1 + 1
	}()
}
