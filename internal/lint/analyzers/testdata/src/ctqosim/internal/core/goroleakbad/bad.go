// Package goroleakbad exercises the goroleak analyzer's findings: joins
// that are missing, racy, or blocked.
package goroleakbad

import "sync"

func LeakNoJoin() {
	go func() { // want `goroutine has no join: no WaitGroup.Done and no completion-channel send`
		_ = 1 + 1
	}()
}

func AddInsideGoroutine() {
	var wg sync.WaitGroup
	go func() { // want `goroutine joins via wg.Done but no wg.Add precedes the go statement`
		wg.Add(1) // want `wg.Add inside the spawned goroutine races Wait: call Add before the go statement`
		defer wg.Done()
	}()
	wg.Wait()
}

func NoWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine joins via wg.Done but wg.Wait is never called in this package`
		defer wg.Done()
	}()
}

func UnbufferedNoReceive() {
	c := make(chan int)
	go func() {
		c <- 1 // want `goroutine sends on unbuffered channel c with no receive in scope: the send blocks forever`
	}()
}

func BufferedNoReceive() {
	c := make(chan int, 1)
	go func() { // want `goroutine signals completion on channel c but nothing in scope receives or hands it off`
		c <- 1
	}()
}

type pool struct {
	wg sync.WaitGroup
}

func (p *pool) run() {
	p.wg.Done()
}

func (p *pool) Start() {
	go p.run() // want `goroutine joins via wg.Done but no wg.Add precedes the go statement`
}
