package des

import "time"

// bad exercises every forbidden wall-clock read inside a sim-time
// package.
func bad() time.Duration {
	start := time.Now()                 // want `wall-clock time\.Now`
	time.Sleep(time.Millisecond)        // want `wall-clock time\.Sleep`
	<-time.After(10 * time.Millisecond) // want `wall-clock time\.After`
	tick := time.Tick(time.Second)      // want `wall-clock time\.Tick`
	_ = tick
	timer := time.NewTimer(time.Second) // want `wall-clock time\.NewTimer`
	timer.Stop()
	return time.Since(start) // want `wall-clock time\.Since`
}

// escapeHatch demonstrates the //lint:allow override.
func escapeHatch() time.Time {
	return time.Now() //lint:allow wallclock boot-banner timestamp only
}

// durationsAreFine shows that time arithmetic and constants stay legal —
// only host-clock reads are forbidden.
func durationsAreFine(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// measurementBoundary demonstrates the self-profiling convention: wall
// reads at a run boundary are sanctioned only when annotated with
// //lint:allow wallclock naming the measurement boundary — either on the
// flagged line or on the line above it. An unannotated read inside the
// same function is still flagged.
func measurementBoundary() float64 {
	start := time.Now() //lint:allow wallclock profiling measurement boundary
	runBody()
	//lint:allow wallclock profiling measurement boundary
	wall := time.Since(start)
	end := time.Now() // want `wall-clock time\.Now`
	_ = end
	return wall.Seconds()
}

func runBody() {}
