// Package floatdetok exercises the floatdet analyzer's accepted
// patterns: sorted-key iteration, index-order merges, constant
// sentinels, integer accumulation, epsilon comparison, and the allow
// escape hatch.
package floatdetok

import "sort"

type Hist struct{ total float64 }

func (h *Hist) Merge(o *Hist) { h.total += o.total }

// SumSorted extracts and sorts the keys first: the accumulating range
// is over a slice, so the order is fixed.
func SumSorted(shards map[string]float64) float64 {
	keys := make([]string, 0, len(shards))
	for k := range shards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += shards[k]
	}
	return sum
}

// MergeOrdered merges shards in index order — the metricAccum contract.
func MergeOrdered(shards []*Hist) *Hist {
	out := &Hist{}
	for _, h := range shards {
		out.Merge(h)
	}
	return out
}

// Unset compares against a constant: an exact stored-value sentinel.
func Unset(v float64) bool { return v == 0 }

// Count accumulates integers: exact in any order.
func Count(shards map[string]int) int {
	total := 0
	for _, n := range shards {
		total += n
	}
	return total
}

// Close is the sanctioned comparison form.
func Close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// TrimAllowed shows the escape hatch for a deliberate representability
// check.
func TrimAllowed(v float64) bool {
	//lint:allow floatdet exact integer-representability check
	return v == float64(int64(v))
}
