// Package floatdetbad exercises the floatdet analyzer's findings:
// order-dependent float accumulation, hash-order merges, and float
// equality.
package floatdetbad

type Hist struct{ total float64 }

func (h *Hist) Merge(o *Hist) { h.total += o.total }

func SumShards(shards map[string]float64) float64 {
	var sum float64
	for _, v := range shards {
		sum += v // want `float accumulation in map-iteration order is not replayable`
	}
	return sum
}

func SumExplicit(shards map[string]float64) float64 {
	var sum float64
	for _, v := range shards {
		sum = sum + v // want `float accumulation in map-iteration order is not replayable`
	}
	return sum
}

func ScaleShards(weights map[string]float64) float64 {
	prod := 1.0
	for _, w := range weights {
		prod *= w // want `float accumulation in map-iteration order is not replayable`
	}
	return prod
}

func MergeAll(hists map[string]*Hist) *Hist {
	out := &Hist{}
	for _, h := range hists {
		out.Merge(h) // want `Merge inside a range-over-map body runs in hash order`
	}
	return out
}

func Trim(v float64) bool {
	return v == float64(int64(v)) // want `== between non-constant floats is rounding-sensitive`
}

func Drifted(a, b float64) bool {
	return a != b // want `!= between non-constant floats is rounding-sensitive`
}
