package seededrand

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// bad draws from the global source and builds a time-seeded generator.
func bad() {
	_ = rand.Intn(10)  // want `global math/rand\.Intn`
	rand.Seed(42)      // want `global math/rand\.Seed`
	_ = randv2.IntN(4) // want `global math/rand/v2\.IntN`

	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want `time-seeded rand\.NewSource`
	_ = r.Intn(10)
}

// good threads an explicit seed through, and methods on the seeded
// generator are never flagged.
func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// allowed demonstrates the //lint:allow override.
func allowed() int {
	return rand.Intn(10) //lint:allow seededrand demo of the escape hatch
}
