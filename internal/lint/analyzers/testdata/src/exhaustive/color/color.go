// Package color declares the fixture enum: a named basic type with
// several same-package constants, one unexported, one an alias.
package color

// Color is the fixture enum.
type Color int

const (
	Red Color = iota
	Green
	Blue
	gray // unexported: cross-package switches are not held to it
)

// Crimson aliases Red's value: mentioning either covers it.
const Crimson = Red

// name is the same-package violation: Blue and gray are missing, and the
// default clause does not exempt the switch.
func name(c Color) string {
	switch c { // want `switch over Color is missing cases for Blue, gray`
	case Red, Green:
		return "warm"
	default:
		return "other"
	}
}

// full covers every value — Red's via the Crimson alias.
func full(c Color) int {
	switch c {
	case Crimson:
		return 0
	case Green, Blue, gray:
		return 1
	}
	return 2
}

// nonConst is not an enumeration switch: a case is not constant.
func nonConst(c, x Color) int {
	switch c {
	case x:
		return 1
	}
	return 0
}

// allowed demonstrates the escape hatch.
func allowed(c Color) int {
	//lint:allow exhaustive deliberate fallback
	switch c {
	case Red:
		return 1
	}
	return 0
}
