// Package use switches over an imported enum: the fact exported by the
// color package decides which values the switches must mention.
package use

import "exhaustive/color"

// describe drops Green: flagged through the imported fact.
func describe(c color.Color) string {
	switch c { // want `switch over Color is missing cases for Green`
	case color.Red, color.Blue:
		return "rb"
	default:
		return "?"
	}
}

// ok names every exported value; unexported gray is not required here.
func ok(c color.Color) string {
	switch c {
	case color.Red, color.Green, color.Blue:
		return "all"
	}
	return ""
}
