// Package allowed shows the escape hatch: driver-level //lint:allow
// suppression applies to deferloop like every other analyzer.
package allowed

import "sync"

//lint:hotpath
func DrainOnce(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		defer mu.Unlock() //lint:allow deferloop bounded shutdown sweep, not steady-state
	}
}
