// Package flagged exercises the deferloop analyzer: defer statements
// and named-return-capturing closures inside loops of hot functions.
package flagged

import "sync"

//lint:hotpath
func DeferInLoop(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		defer mu.Unlock() // want `defer inside a loop of //lint:hotpath function DeferInLoop`
	}
}

//lint:hotpath
func NamedReturnClosure(xs []int) (total int) {
	for _, x := range xs {
		f := func() { // want `closure over named return value inside a loop of //lint:hotpath function NamedReturnClosure`
			total += x
		}
		f()
	}
	return total
}

// The usual lock idiom stays legal: the defer is not in a loop.
//
//lint:hotpath allocs=1 closure fixture
func DeferAtTop(mu *sync.Mutex, xs []int) int {
	mu.Lock()
	defer mu.Unlock()
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// A defer inside a function literal runs per literal call, not
// accumulated until the outer return: fresh context, no finding here
// (the closure allocation itself is the allocs analyzer's business).
//
//lint:hotpath allocs=1 closure fixture
func DeferInsideLiteral(xs []int) int {
	sum := 0
	for _, x := range xs {
		x := x
		func() {
			defer recoverNop()
			sum += x
		}()
	}
	return sum
}

func recoverNop() { _ = recover() }

// ColdDeferLoop is not annotated: deferloop only polices hot functions.
func ColdDeferLoop(mus []*sync.Mutex) {
	for _, mu := range mus {
		defer mu.Unlock()
	}
}
