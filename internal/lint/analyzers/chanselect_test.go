package analyzers_test

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
	"ctqosim/internal/lint/analyzers"
)

func TestChanselect(t *testing.T) {
	// Multi-case selects inside a sim-time package are flagged; single
	// case with default and //lint:allow are not.
	analysistest.Run(t, "testdata", analyzers.Chanselect, "ctqosim/internal/simnet")
	// The live harness is outside the sim-time set: identical code is
	// allowed there.
	analysistest.RunExpectClean(t, "testdata", analyzers.Chanselect, "ctqosim/internal/live")
}
