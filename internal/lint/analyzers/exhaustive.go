package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"ctqosim/internal/lint/analysis"
)

// EnumFact is exported on the *types.TypeName of every named basic type
// that has two or more declared constants in its own package — the
// repo's enum idiom (ntier.NX, trace.Kind, core.Tier, ...). Members
// holds the declared constant names grouped by value, so a switch need
// only mention one alias per value.
type EnumFact struct {
	// Members maps each distinct constant value (its exact string form)
	// to the names declaring it, sorted. Map iteration is never exposed:
	// consumers sort the missing-value name lists before reporting.
	Members map[string][]string
	// Exported maps a value to true when at least one of its names is
	// exported; cross-package switches are only held to exported values.
	Exported map[string]bool
}

// AFact implements analysis.Fact.
func (*EnumFact) AFact() {}

// Exhaustive flags switch statements over a declared enum type that do
// not mention every declared constant value. A default clause does NOT
// exempt the switch: the determinism contract (DESIGN.md §8) is that
// adding an enum member — a new event kind, tier, span kind — must fail
// the lint run at every switch that silently routes it to a fallback,
// because a silent fall-through is exactly how a new experiment knob
// produces subtly wrong statistics instead of an error. Suppress
// deliberate fallbacks with //lint:allow exhaustive.
//
// Only enums declared in analyzed packages participate (the fact is the
// only source of enum-ness), so switches over stdlib types like
// go/token.Token are never checked. Switches in a different package than
// the enum are only held to the enum's exported values. A switch with
// any non-constant case expression is skipped — it is doing something
// other than enumerating.
var Exhaustive = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "require switches over declared enum types (named basic types " +
		"with >=2 constants in their package) to mention every declared " +
		"constant value; a default clause does not exempt the switch",
	FactTypes: []analysis.Fact{new(EnumFact)},
	Run:       runExhaustive,
}

func runExhaustive(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil {
		return nil, nil
	}
	exportEnumFacts(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil, nil
}

// exportEnumFacts scans the package scope for named basic types with two
// or more same-package constants and exports an EnumFact on each.
func exportEnumFacts(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	type enum struct {
		tn       *types.TypeName
		members  map[string][]string
		exported map[string]bool
	}
	enums := make(map[*types.TypeName]*enum)
	names := scope.Names() // sorted, so member collection is deterministic
	for _, name := range names {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok {
			continue
		}
		tn := named.Obj()
		if tn.Pkg() != pass.Pkg {
			continue
		}
		if _, ok := named.Underlying().(*types.Basic); !ok {
			continue
		}
		e := enums[tn]
		if e == nil {
			e = &enum{
				tn:       tn,
				members:  make(map[string][]string),
				exported: make(map[string]bool),
			}
			enums[tn] = e
		}
		val := c.Val().ExactString()
		e.members[val] = append(e.members[val], c.Name())
		if c.Exported() {
			e.exported[val] = true
		}
	}
	for _, e := range enums {
		total := 0
		for _, names := range e.members {
			total += len(names)
		}
		if total < 2 {
			continue
		}
		pass.ExportObjectFact(e.tn, &EnumFact{
			Members:  e.members,
			Exported: e.exported,
		})
	}
}

// checkSwitch verifies one tagged switch against its enum fact, if the
// tag's type has one.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	tn := named.Obj()
	var fact EnumFact
	if !pass.ImportObjectFact(tn, &fact) {
		return
	}
	samePkg := tn.Pkg() == pass.Pkg

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			ctv, ok := pass.TypesInfo.Types[e]
			if !ok || ctv.Value == nil {
				return // non-constant case: not an enumeration switch
			}
			covered[ctv.Value.ExactString()] = true
		}
	}

	vals := make([]string, 0, len(fact.Members))
	for val := range fact.Members {
		vals = append(vals, val)
	}
	sort.Strings(vals)
	var missing []string
	for _, val := range vals {
		if covered[val] {
			continue
		}
		if !samePkg && !fact.Exported[val] {
			continue
		}
		names := fact.Members[val]
		// Name the value by its first declared name (sorted for
		// determinism), preferring an exported one for cross-package
		// readability.
		sorted := append([]string(nil), names...)
		sort.Strings(sorted)
		label := sorted[0]
		for _, n := range sorted {
			if ast.IsExported(n) {
				label = n
				break
			}
		}
		missing = append(missing, label)
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s is missing cases for %s: enum switches must name every member so new members fail lint instead of silently falling through",
		tn.Name(), strings.Join(missing, ", "))
}
