package analyzers

import (
	"go/ast"

	"ctqosim/internal/lint/analysis"
)

// randGlobalFuncs are the math/rand package-level functions that draw
// from (or reseed) the shared global source. Constructors (New,
// NewSource, NewZipf) are fine — they are how seeded generators are made.
var randGlobalFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

// randV2GlobalFuncs are the math/rand/v2 equivalents; v2 has no Seed at
// all, so its global functions are never reproducible.
var randV2GlobalFuncs = map[string]bool{
	"Int": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "N": true,
}

// randSourceCtors are the constructors whose argument must be an explicit
// seed, not a clock read.
var randSourceCtors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// timeNow matches the clock reads that make a seed irreproducible.
var timeNow = map[string]bool{"Now": true}

// Seededrand forbids the global math/rand source and time-seeded
// generators: all randomness must flow from an explicitly seeded
// *rand.Rand threaded through configuration, or replay breaks.
var Seededrand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions and time-seeded sources; " +
		"randomness must come from an explicitly seeded *rand.Rand",
	Run: runSeededrand,
}

func runSeededrand(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn := funcUse(pass.TypesInfo, n)
				if fn == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "math/rand" && randGlobalFuncs[fn.Name()]:
					pass.Reportf(n.Pos(),
						"global math/rand.%s draws from the shared source: use an explicitly seeded *rand.Rand",
						fn.Name())
				case fn.Pkg().Path() == "math/rand/v2" && randV2GlobalFuncs[fn.Name()]:
					pass.Reportf(n.Pos(),
						"global math/rand/v2.%s is unseedable: use an explicitly seeded generator",
						fn.Name())
				}
			case *ast.CallExpr:
				sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := funcUse(pass.TypesInfo, sel.Sel)
				if fn == nil || !randSourceCtors[fn.Name()] {
					return true
				}
				if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
					return true
				}
				for _, arg := range n.Args {
					if usesPkgFunc(pass.TypesInfo, arg, "time", timeNow) {
						pass.Reportf(n.Pos(),
							"time-seeded rand.%s: a clock-derived seed is irreproducible; thread the seed through config",
							fn.Name())
						break
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
