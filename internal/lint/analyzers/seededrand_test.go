package analyzers_test

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
	"ctqosim/internal/lint/analyzers"
)

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Seededrand, "seededrand")
}
