package analyzers

import (
	"strings"
	"testing"

	"ctqosim/internal/lint"
	"ctqosim/internal/lint/analysis"
	"ctqosim/internal/lint/analysistest"
	"ctqosim/internal/lint/loader"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", Hotpath,
		"hotpath/hot", "hotpath/budget", "hotpath/pkglevel")
}

func TestHotpathAllowed(t *testing.T) {
	analysistest.RunExpectClean(t, "testdata", Hotpath, "hotpath/allowed")
}

// TestHotpathChain pins the rendered call chain for the fixture where
// the allocation sits three packages below the annotation: the finding
// on hot.Run must walk mid -> deep -> leaf down to the make.
func TestHotpathChain(t *testing.T) {
	l := loader.New("", "", "testdata/src")
	order, err := l.Closure([]string{"hotpath/hot"})
	if err != nil {
		t.Fatalf("closure: %v", err)
	}
	facts := analysis.NewStore()
	var findings []lint.Finding
	for _, p := range order {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		fs, err := lint.RunPackage(l, pkg, []*analysis.Analyzer{Hotpath}, "", facts, nil)
		if err != nil {
			t.Fatalf("run %s: %v", p, err)
		}
		if p == "hotpath/hot" {
			findings = fs
		}
	}
	var chain []string
	for _, f := range findings {
		if strings.Contains(f.Message, "function Run allocates") {
			chain = f.Chain
		}
	}
	if chain == nil {
		t.Fatalf("no finding on hot.Run in %v", findings)
	}
	wantPrefixes := []string{
		"mid.Step: call to deep.Go (mid.go:",
		"deep.Go: call to leaf.Alloc (deep.go:",
		"leaf.Alloc: make map (leaf.go:",
	}
	if len(chain) != len(wantPrefixes) {
		t.Fatalf("chain length = %d, want %d: %q", len(chain), len(wantPrefixes), chain)
	}
	for i, want := range wantPrefixes {
		if !strings.HasPrefix(chain[i], want) {
			t.Errorf("chain[%d] = %q, want prefix %q", i, chain[i], want)
		}
	}
}

// TestParseHotpathDirective pins the directive grammar exactly.
func TestParseHotpathDirective(t *testing.T) {
	tests := []struct {
		text   string
		ok     bool
		budget int
		err    bool
	}{
		{"//lint:hotpath", true, 0, false},
		{"//lint:hotpath DES kernel", true, 0, false},
		{"//lint:hotpath\tallocs=3", true, 3, false},
		{"//lint:hotpath allocs=0", true, 0, false},
		{"//lint:hotpath allocs=2 amortized growth", true, 2, false},
		{"//lint:hotpath allocs=-1", true, 0, true},
		{"//lint:hotpath allocs=x", true, 0, true},
		{"//lint:hotpath allocs=", true, 0, true},
		{"//lint:hotpath frames=2", true, 0, true},
		{"//lint:hotpathX", false, 0, false},
		{"//lint:hotpath2", false, 0, false},
		{"// lint:hotpath", false, 0, false},
		{"//lint:allow allocs", false, 0, false},
		{"", false, 0, false},
	}
	for _, tt := range tests {
		ok, budget, err := parseHotpathDirective(tt.text)
		if ok != tt.ok || budget != tt.budget || (err != nil) != tt.err {
			t.Errorf("parseHotpathDirective(%q) = (%v, %d, %v), want (%v, %d, err=%v)",
				tt.text, ok, budget, err, tt.ok, tt.budget, tt.err)
		}
	}
}

// FuzzParseHotpathDirective holds the parser to its invariants on
// arbitrary comment text: no panics, non-directives are fully inert,
// well-formed directives never yield a negative budget, and parsing is
// deterministic.
func FuzzParseHotpathDirective(f *testing.F) {
	for _, seed := range []string{
		"//lint:hotpath",
		"//lint:hotpath DES kernel event loop",
		"//lint:hotpath allocs=2 amortized ring growth",
		"//lint:hotpath allocs=-1",
		"//lint:hotpath allocs=00",
		"//lint:hotpath frames=1",
		"//lint:hotpathX",
		"//lint:allow allocs cold branch",
		"//lint:hotpath\tallocs=9999999999999999999",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		ok, budget, err := parseHotpathDirective(text)
		ok2, budget2, err2 := parseHotpathDirective(text)
		if ok != ok2 || budget != budget2 || (err == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic parse of %q", text)
		}
		if !ok && (budget != 0 || err != nil) {
			t.Fatalf("non-directive %q leaked budget=%d err=%v", text, budget, err)
		}
		if !strings.HasPrefix(text, "//lint:hotpath") && ok {
			t.Fatalf("%q parsed as a directive without the prefix", text)
		}
		if ok && err == nil && budget < 0 {
			t.Fatalf("well-formed %q produced negative budget %d", text, budget)
		}
		if err != nil && budget != 0 {
			t.Fatalf("malformed %q leaked budget %d", text, budget)
		}
	})
}
