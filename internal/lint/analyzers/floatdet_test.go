package analyzers

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
)

func TestFloatdet(t *testing.T) {
	analysistest.Run(t, "testdata", Floatdet, "ctqosim/internal/metrics/floatdetbad")
}

func TestFloatdetAllowed(t *testing.T) {
	analysistest.RunExpectClean(t, "testdata", Floatdet,
		"ctqosim/internal/metrics/floatdetok", "floatdet/ungated")
}
