package analyzers_test

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
	"ctqosim/internal/lint/analyzers"
)

func TestWallclock(t *testing.T) {
	// Flagged and //lint:allow cases inside a sim-time package.
	analysistest.Run(t, "testdata", analyzers.Wallclock, "ctqosim/internal/des")
	// The live harness is outside the sim-time set: identical calls are
	// allowed there.
	analysistest.RunExpectClean(t, "testdata", analyzers.Wallclock, "ctqosim/internal/live")
}
