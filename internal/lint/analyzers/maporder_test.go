package analyzers_test

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
	"ctqosim/internal/lint/analyzers"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Maporder, "maporder")
}
