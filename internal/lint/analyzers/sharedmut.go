package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ctqosim/internal/lint/analysis"
)

// sharedPtrMarker annotates a pointer-typed struct field whose pointee is
// shared across Runner workers (core.Config's Mix, Kernel, Consolidation,
// LogFlush, GCPause): runs may read through it freely, but a write
// through it would leak from one run into every concurrent run sharing
// the Config, silently skewing tail statistics.
const sharedPtrMarker = "//lint:sharedptr"

// noCaptureWriteMarker annotates a func-typed struct field whose closures
// execute on worker goroutines (core.Config's Tweak): the closure may
// mutate its own parameters (per-run state handed to it) but must not
// write variables captured from the enclosing scope, including
// package-level variables.
const noCaptureWriteMarker = "//lint:nocapturewrite"

// SharedPtrFact marks a struct field (a *types.Var) as shared-read-only:
// declared with a //lint:sharedptr comment. Dependent packages import it
// to recognize the field through their own selector expressions.
type SharedPtrFact struct{}

// AFact implements analysis.Fact.
func (*SharedPtrFact) AFact() {}

// NoCaptureWriteFact marks a func-typed struct field (a *types.Var)
// declared with a //lint:nocapturewrite comment.
type NoCaptureWriteFact struct{}

// AFact implements analysis.Fact.
func (*NoCaptureWriteFact) AFact() {}

// MutatesFact is the bottom-up mutation summary of a function: the
// positions of its inputs it may write through, directly or transitively
// via callees. Position 0 is the receiver when the function is a method;
// parameters follow (so a plain function's first parameter is position
// 0, a method's is position 1). "Write through" means a store that lands
// in memory reachable from the argument — through a pointer, slice or
// map — so passing a shared pointer to a function with that position in
// its fact mutates shared state.
type MutatesFact struct {
	// Positions is sorted ascending.
	Positions []int
}

// AFact implements analysis.Fact.
func (*MutatesFact) AFact() {}

// Sharedmut enforces the shared-Config half of the worker-pool
// determinism contract (DESIGN.md §8–9): no run-time code may write
// through a //lint:sharedptr field, and //lint:nocapturewrite closures
// may not write captured state. It is a facts-propagating analysis — a
// mutation two packages below the offending call site is still caught,
// because every function's mutation summary travels with its object.
var Sharedmut = &analysis.Analyzer{
	Name: "sharedmut",
	Doc: "forbid writes through //lint:sharedptr Config fields (directly, " +
		"via aliases, or via callees whose mutation facts say they write " +
		"their argument) and captured-state writes in //lint:nocapturewrite " +
		"closures",
	FactTypes: []analysis.Fact{
		new(SharedPtrFact), new(NoCaptureWriteFact), new(MutatesFact),
	},
	Run: runSharedmut,
}

func runSharedmut(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil {
		return nil, nil
	}
	s := &sharedmutState{pass: pass}
	s.exportMarkedFields()
	s.collectFunctions()
	s.computeSummaries()
	s.checkBodies()
	return nil, nil
}

// sharedmutState carries one package's analysis.
type sharedmutState struct {
	pass *analysis.Pass
	// funcs are the package's function declarations with bodies, in file
	// order (the fixpoint iteration order, deterministic).
	funcs []*funcSummary
	// byObj resolves same-package callees to their in-progress summary.
	byObj map[*types.Func]*funcSummary
}

// funcSummary is the in-progress mutation summary of one function.
type funcSummary struct {
	fn   *types.Func
	decl *ast.FuncDecl
	// paramIdx maps the receiver (position 0 for methods) and parameters
	// to their fact positions.
	paramIdx map[types.Object]int
	mutated  map[int]bool
}

// markedComment reports whether a comment group contains the marker as a
// whole line.
func markedComment(marker string, groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text == marker {
				return true
			}
		}
	}
	return false
}

// exportMarkedFields finds //lint:sharedptr and //lint:nocapturewrite
// struct fields declared in this package and exports their facts.
func (s *sharedmutState) exportMarkedFields() {
	for _, f := range s.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				shared := markedComment(sharedPtrMarker, field.Doc, field.Comment)
				noCapture := markedComment(noCaptureWriteMarker, field.Doc, field.Comment)
				if !shared && !noCapture {
					continue
				}
				for _, name := range field.Names {
					obj, ok := s.pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if shared {
						if _, ok := obj.Type().Underlying().(*types.Pointer); !ok {
							s.pass.Reportf(name.Pos(),
								"//lint:sharedptr on non-pointer field %s: the marker guards writes through a shared pointer", name.Name)
							continue
						}
						s.pass.ExportObjectFact(obj, new(SharedPtrFact))
					}
					if noCapture {
						if _, ok := obj.Type().Underlying().(*types.Signature); !ok {
							s.pass.Reportf(name.Pos(),
								"//lint:nocapturewrite on non-func field %s: the marker guards worker-run closures", name.Name)
							continue
						}
						s.pass.ExportObjectFact(obj, new(NoCaptureWriteFact))
					}
				}
			}
			return true
		})
	}
}

// collectFunctions gathers the package's function declarations.
func (s *sharedmutState) collectFunctions() {
	s.byObj = make(map[*types.Func]*funcSummary)
	for _, f := range s.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := s.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := &funcSummary{
				fn:       fn,
				decl:     fd,
				paramIdx: make(map[types.Object]int),
				mutated:  make(map[int]bool),
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			pos := 0
			if recv := sig.Recv(); recv != nil {
				sum.paramIdx[recv] = pos
				pos++
			}
			for i := 0; i < sig.Params().Len(); i++ {
				sum.paramIdx[sig.Params().At(i)] = pos
				pos++
			}
			s.funcs = append(s.funcs, sum)
			s.byObj[fn] = sum
		}
	}
}

// mutatedPositions resolves a callee's mutation summary: same-package
// summaries first (they may still be converging), then imported facts.
func (s *sharedmutState) mutatedPositions(fn *types.Func) []int {
	if sum, ok := s.byObj[fn]; ok {
		out := make([]int, 0, len(sum.mutated))
		for p := range sum.mutated {
			out = append(out, p)
		}
		sort.Ints(out)
		return out
	}
	var fact MutatesFact
	if s.pass.ImportObjectFact(fn, &fact) {
		return fact.Positions
	}
	return nil
}

// computeSummaries iterates the package's functions to a fixpoint (for
// same-package mutual recursion) and exports the resulting facts.
func (s *sharedmutState) computeSummaries() {
	for changed := true; changed; {
		changed = false
		for _, sum := range s.funcs {
			if s.scanSummary(sum) {
				changed = true
			}
		}
	}
	for _, sum := range s.funcs {
		if len(sum.mutated) == 0 {
			continue
		}
		positions := make([]int, 0, len(sum.mutated))
		for p := range sum.mutated {
			positions = append(positions, p)
		}
		sort.Ints(positions)
		s.pass.ExportObjectFact(sum.fn, &MutatesFact{Positions: positions})
	}
}

// scanSummary recomputes one function's mutated set and reports whether
// it grew.
func (s *sharedmutState) scanSummary(sum *funcSummary) bool {
	grew := false
	mark := func(e ast.Expr) {
		obj, reaches := s.argReach(e)
		if obj == nil || !reaches {
			return
		}
		if idx, ok := sum.paramIdx[obj]; ok && !sum.mutated[idx] {
			sum.mutated[idx] = true
			grew = true
		}
	}
	ast.Inspect(sum.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj, shared := storeRoot(s.pass.TypesInfo, lhs); obj != nil && shared {
					if idx, ok := sum.paramIdx[obj]; ok && !sum.mutated[idx] {
						sum.mutated[idx] = true
						grew = true
					}
				}
			}
		case *ast.IncDecStmt:
			if obj, shared := storeRoot(s.pass.TypesInfo, n.X); obj != nil && shared {
				if idx, ok := sum.paramIdx[obj]; ok && !sum.mutated[idx] {
					sum.mutated[idx] = true
					grew = true
				}
			}
		case *ast.UnaryExpr:
			// Taking the address of memory reachable from a parameter
			// lets the pointer escape to writers the summary cannot see;
			// count it as a potential mutation.
			if n.Op == token.AND {
				mark(n)
			}
		case *ast.CallExpr:
			callee, recv := calleeFunc(s.pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			for _, pos := range s.mutatedPositions(callee) {
				if e := callArgAt(callee, recv, n, pos); e != nil {
					mark(e)
				}
			}
		}
		return true
	})
	return grew
}

// storeRoot walks an lvalue (or argument) chain to its base object and
// reports whether the chain passes through a pointer, slice or map — i.e.
// whether a write at the end of the chain lands in memory shared with
// whoever supplied the base value, rather than in a local copy.
func storeRoot(info *types.Info, e ast.Expr) (types.Object, bool) {
	shared := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			shared = true
			e = x.X
		case *ast.SelectorExpr:
			if base, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[base].(*types.PkgName); isPkg {
					// Qualified package-level variable: the selected
					// object is the root.
					return info.Uses[x.Sel], shared
				}
			}
			if isRefUnderlying(typeOf(info, x.X)) {
				shared = true // implicit deref: field of a pointer
			}
			e = x.X
		case *ast.IndexExpr:
			if isRefUnderlying(typeOf(info, x.X)) {
				shared = true // slice and map elements share backing
			}
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj, shared
		default:
			return nil, shared
		}
	}
}

// typeOf returns the type of e, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// isRefUnderlying reports whether t's underlying type shares memory with
// copies of the value: pointer, slice or map.
func isRefUnderlying(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// argReach resolves an argument expression to its base object and whether
// a callee writing through the passed value reaches memory owned by that
// base: the chain itself passes through a reference, or the passed value
// is reference-typed (a pointer, slice or map hands the callee shared
// memory directly).
func (s *sharedmutState) argReach(e ast.Expr) (types.Object, bool) {
	e = unparen(e)
	reaches := false
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
		reaches = true // the callee gets the address itself
	}
	if isRefUnderlying(typeOf(s.pass.TypesInfo, e)) {
		reaches = true
	}
	obj, shared := storeRoot(s.pass.TypesInfo, e)
	return obj, reaches || shared
}

// calleeFunc resolves a call to its static callee. For method calls the
// receiver expression is returned too (fact position 0). Calls through
// interfaces, function values and method expressions resolve to nil — the
// analysis has no fact for them.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, ast.Expr) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, nil
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil, nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, nil
			}
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return nil, nil
			}
			return fn, fun.X
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn, nil // qualified package-level function
		}
	}
	return nil, nil
}

// callArgAt maps a callee fact position back to the call-site expression
// occupying it, or nil when the call shape does not supply one (e.g. a
// variadic position with no argument).
func callArgAt(callee *types.Func, recv ast.Expr, call *ast.CallExpr, pos int) ast.Expr {
	if recv != nil {
		if pos == 0 {
			return recv
		}
		pos--
	}
	if pos < len(call.Args) {
		return call.Args[pos]
	}
	// A variadic final parameter covers every trailing argument; point at
	// the last one if present.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Variadic() && len(call.Args) > 0 {
		return call.Args[len(call.Args)-1]
	}
	return nil
}

// sharedFieldIn walks an expression's selection chain and returns the
// name of the first //lint:sharedptr field it passes through, or "".
// skipWhole excludes the case where the expression IS the field selection
// itself (a store to the field — replacing the pointer — is legal; only
// writes through it are not).
func (s *sharedmutState) sharedFieldIn(e ast.Expr, skipWhole bool) string {
	first := true
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
			first = false
		case *ast.IndexExpr:
			e = x.X
			first = false
		case *ast.SelectorExpr:
			if sel, ok := s.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if obj, ok := sel.Obj().(*types.Var); ok {
					var fact SharedPtrFact
					if s.pass.ImportObjectFact(obj, &fact) && !(first && skipWhole) {
						return obj.Name()
					}
				}
			}
			e = x.X
			first = false
		default:
			return ""
		}
	}
}

// checkBodies runs the two flagging passes over every function body:
// writes that reach a shared pointer field, and captured-state writes in
// no-capture-write closures.
func (s *sharedmutState) checkBodies() {
	for _, sum := range s.funcs {
		s.checkSharedWrites(sum.decl.Body)
	}
	// Closures assigned to marked fields can appear outside function
	// bodies too (package-level composite literals).
	for _, f := range s.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := unparen(lhs).(*ast.SelectorExpr)
					if !ok || !s.isNoCaptureField(sel.Sel) {
						continue
					}
					if lit, ok := unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						s.checkCaptures(lit)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !s.isNoCaptureField(key) {
						continue
					}
					if lit, ok := unparen(kv.Value).(*ast.FuncLit); ok {
						s.checkCaptures(lit)
					}
				}
			}
			return true
		})
	}
}

// isNoCaptureField reports whether id resolves to a field carrying a
// NoCaptureWriteFact.
func (s *sharedmutState) isNoCaptureField(id *ast.Ident) bool {
	obj, ok := s.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	var fact NoCaptureWriteFact
	return s.pass.ImportObjectFact(obj, &fact)
}

// checkSharedWrites flags every way a function body writes through a
// shared pointer field: direct stores, stores through a local alias, and
// passing the field (or an alias) to a callee whose fact says it writes
// that position.
func (s *sharedmutState) checkSharedWrites(body *ast.BlockStmt) {
	aliases := s.collectAliases(body)
	aliasField := func(e ast.Expr) (string, bool) {
		obj, _ := storeRoot(s.pass.TypesInfo, unparen(e))
		field, ok := aliases[obj]
		return field, ok && obj != nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				s.flagStore(lhs, n.Tok, aliasField)
			}
		case *ast.IncDecStmt:
			s.flagStore(n.X, token.ASSIGN, aliasField)
		case *ast.CallExpr:
			callee, recv := calleeFunc(s.pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			for _, pos := range s.mutatedPositions(callee) {
				e := callArgAt(callee, recv, n, pos)
				if e == nil {
					continue
				}
				arg := unparen(e)
				if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
					arg = unparen(u.X)
				}
				if field := s.sharedFieldIn(arg, false); field != "" {
					s.pass.Reportf(e.Pos(),
						"shared pointer field %s passed to %s, which may write through it: runs must only read //lint:sharedptr state",
						field, callee.Name())
				} else if field, ok := aliasField(arg); ok {
					s.pass.Reportf(e.Pos(),
						"alias of shared pointer field %s passed to %s, which may write through it: runs must only read //lint:sharedptr state",
						field, callee.Name())
				}
			}
		}
		return true
	})
}

// flagStore reports a store whose target chain passes through a shared
// field or a local alias of one. A define of a fresh variable is not a
// store into shared memory (it is how aliases arise; collectAliases
// handles those).
func (s *sharedmutState) flagStore(lhs ast.Expr, tok token.Token, aliasField func(ast.Expr) (string, bool)) {
	if tok == token.DEFINE {
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			if s.pass.TypesInfo.Defs[id] != nil {
				return
			}
		}
	}
	if field := s.sharedFieldIn(lhs, true); field != "" {
		s.pass.Reportf(lhs.Pos(),
			"write through shared pointer field %s: //lint:sharedptr state is shared across Runner workers and must only be read at run time",
			field)
		return
	}
	obj, shared := storeRoot(s.pass.TypesInfo, lhs)
	if !shared {
		return // rebinding the local itself, not writing the pointee
	}
	if field, ok := aliasField(unparen(lhs)); ok && obj != nil {
		s.pass.Reportf(lhs.Pos(),
			"write through %s, an alias of shared pointer field %s: //lint:sharedptr state must only be read at run time",
			obj.Name(), field)
	}
}

// collectAliases finds local variables whose every assignment is rooted
// at a shared pointer field (m := cfg.Mix). A variable that is ever
// assigned anything else is ambiguous and dropped — flow-insensitive
// analysis cannot order the assignments, so it accepts the false
// negative rather than flag the common fresh-value-fallback pattern.
func (s *sharedmutState) collectAliases(body *ast.BlockStmt) map[types.Object]string {
	aliases := make(map[types.Object]string)
	ambiguous := make(map[types.Object]bool)
	record := func(lhs, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := s.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = s.pass.TypesInfo.Uses[id]
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		if field := s.sharedFieldIn(unparen(rhs), false); field != "" {
			if _, dup := aliases[obj]; !dup {
				aliases[obj] = field
			}
		} else {
			ambiguous[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) && (n.Tok == token.DEFINE || n.Tok == token.ASSIGN) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	for obj := range ambiguous {
		delete(aliases, obj)
	}
	return aliases
}

// checkCaptures flags writes to captured variables inside a closure
// destined for a //lint:nocapturewrite field. The closure's own
// parameters and locals (anything declared inside the literal) are fair
// game; everything declared outside — enclosing locals and package-level
// variables alike — is shared with other runs or the submitting
// goroutine.
func (s *sharedmutState) checkCaptures(lit *ast.FuncLit) {
	declaredOutside := func(e ast.Expr) (types.Object, bool) {
		obj, _ := storeRoot(s.pass.TypesInfo, e)
		v, ok := obj.(*types.Var)
		if !ok {
			return nil, false
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil, false
		}
		return v, true
	}
	flag := func(pos token.Pos, obj types.Object) {
		s.pass.Reportf(pos,
			"//lint:nocapturewrite closure writes captured variable %s: worker-run closures must only mutate their own parameters",
			obj.Name())
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if n.Tok == token.DEFINE {
					if id, ok := unparen(lhs).(*ast.Ident); ok && s.pass.TypesInfo.Defs[id] != nil {
						continue
					}
				}
				if obj, ok := declaredOutside(lhs); ok {
					flag(lhs.Pos(), obj)
				}
			}
		case *ast.IncDecStmt:
			if obj, ok := declaredOutside(n.X); ok {
				flag(n.X.Pos(), obj)
			}
		case *ast.CallExpr:
			callee, recv := calleeFunc(s.pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			for _, pos := range s.mutatedPositions(callee) {
				e := callArgAt(callee, recv, n, pos)
				if e == nil {
					continue
				}
				arg := unparen(e)
				if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
					arg = unparen(u.X)
				}
				if obj, ok := declaredOutside(arg); ok {
					s.pass.Reportf(e.Pos(),
						"//lint:nocapturewrite closure passes captured variable %s to %s, which may write through it",
						obj.Name(), callee.Name())
				}
			}
		}
		return true
	})
}
