package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ctqosim/internal/lint/analysis"
)

// floatdetExtraPackages extend the sim-time gate with the packages that
// aggregate float metrics: the HDR/percentile pipeline and the
// analytical model. Together with SimTimePackages they are everywhere a
// float result feeds the paper's replayable numbers.
var floatdetExtraPackages = []string{
	"ctqosim/internal/metrics",
	"ctqosim/internal/analytic",
}

// Floatdet flags order-dependent floating-point arithmetic in the
// packages whose numbers must replay bit-for-bit:
//
//   - float accumulation (+=, -=, *=, /=, or x = x + ...) inside a
//     range-over-map body — FP addition is not associative, so summing
//     in map-iteration order changes the result run to run;
//   - Merge calls inside a range-over-map body — shard merges must
//     follow the metricAccum/HDR shard-order contract, not hash order;
//   - == / != between two non-constant float operands — equality after
//     accumulation is rounding- and order-sensitive.
//
// Comparisons against constants (v == 0 sentinel checks) stay legal:
// they test an exact stored value, not an accumulation path.
var Floatdet = &analysis.Analyzer{
	Name: "floatdet",
	Doc: "flag order-dependent float accumulation and merges in " +
		"range-over-map bodies, and float equality between non-constant " +
		"operands, in the sim-time and metrics packages",
	Run: runFloatdet,
}

// inFloatdetScope reports whether the package path is gated.
func inFloatdetScope(path string) bool {
	if inSimTime(path) {
		return true
	}
	for _, p := range floatdetExtraPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runFloatdet(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil || !inFloatdetScope(pass.Pkg.Path()) {
		return nil, nil
	}
	s := &floatdetState{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if s.isMapRange(n) {
					s.checkMapRangeBody(n.Body)
				}
			case *ast.BinaryExpr:
				s.checkFloatEquality(n)
			}
			return true
		})
	}
	return nil, nil
}

type floatdetState struct {
	pass *analysis.Pass
}

// isMapRange reports whether the statement ranges over a map.
func (s *floatdetState) isMapRange(r *ast.RangeStmt) bool {
	tv, ok := s.pass.TypesInfo.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// compoundFloatOps are the assignment operators that fold the old value
// into the new one.
var compoundFloatOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

// checkMapRangeBody flags float accumulation and Merge calls inside one
// range-over-map body (nested function literals included — they still
// run per iteration).
func (s *floatdetState) checkMapRangeBody(body *ast.BlockStmt) {
	info := s.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if compoundFloatOps[n.Tok] && len(n.Lhs) == 1 && s.isFloat(n.Lhs[0]) {
				s.pass.Reportf(n.Pos(),
					"float accumulation in map-iteration order is not replayable: iterate sorted keys (maporder contract) or accumulate per shard")
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == 1 && len(n.Rhs) == 1 && s.isFloat(n.Lhs[0]) {
				if v := selectedVar(info, n.Lhs[0]); v != nil && s.rhsFoldsVar(n.Rhs[0], v) {
					s.pass.Reportf(n.Pos(),
						"float accumulation in map-iteration order is not replayable: iterate sorted keys (maporder contract) or accumulate per shard")
				}
			}
		case *ast.CallExpr:
			sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Merge" {
				return true
			}
			if selection, ok := info.Selections[sel]; !ok || selection.Kind() != types.MethodVal {
				return true
			}
			s.pass.Reportf(n.Pos(),
				"Merge inside a range-over-map body runs in hash order: merge shards in index order (the metricAccum/HDR contract)")
		}
		return true
	})
}

// rhsFoldsVar reports whether the expression is a binary arithmetic
// chain with v as one operand — the x = x + delta accumulation shape.
func (s *floatdetState) rhsFoldsVar(e ast.Expr, v *types.Var) bool {
	b, ok := unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if selectedVar(s.pass.TypesInfo, side) == v {
			return true
		}
		if s.rhsFoldsVar(side, v) {
			return true
		}
	}
	return false
}

// checkFloatEquality flags == / != where both operands are non-constant
// floats.
func (s *floatdetState) checkFloatEquality(b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	info := s.pass.TypesInfo
	for _, side := range []ast.Expr{b.X, b.Y} {
		tv, ok := info.Types[side]
		if !ok || tv.Value != nil || !isFloatType(tv.Type) {
			return
		}
	}
	s.pass.Reportf(b.OpPos,
		"%s between non-constant floats is rounding-sensitive: compare with an epsilon or on integer representations", b.Op)
}

// isFloat reports whether the expression has a floating-point type.
func (s *floatdetState) isFloat(e ast.Expr) bool {
	tv, ok := s.pass.TypesInfo.Types[e]
	return ok && isFloatType(tv.Type)
}

// isFloatType reports whether t's underlying type is float32/float64.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
