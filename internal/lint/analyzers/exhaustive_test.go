package analyzers_test

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
	"ctqosim/internal/lint/analyzers"
)

func TestExhaustive(t *testing.T) {
	// Same-package switches: every declared value counts, a default
	// clause does not exempt, aliases cover their value, non-constant
	// cases opt the switch out, //lint:allow silences.
	analysistest.Run(t, "testdata", analyzers.Exhaustive, "exhaustive/color")
	// Cross-package switches see the enum through its exported fact and
	// are only held to exported values.
	analysistest.Run(t, "testdata", analyzers.Exhaustive, "exhaustive/use")
}
