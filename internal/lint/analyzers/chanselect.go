package analyzers

import (
	"go/ast"

	"ctqosim/internal/lint/analysis"
)

// Chanselect flags multi-case select statements in sim-time packages
// (the same set wallclock guards). When two channel operations are ready
// in the same instant, the runtime chooses between them with an
// unseeded, uncontrollable random draw — a determinism leak the
// DES replays cannot reproduce. Sim-time code must drain channels in an
// explicit order (sequential receives, or a single-case select with an
// optional default for non-blocking polls). Real-network harness code
// (internal/live) is exempt, as with wallclock. Deliberate exceptions
// carry //lint:allow chanselect.
var Chanselect = &analysis.Analyzer{
	Name: "chanselect",
	Doc: "forbid select statements with two or more channel cases in " +
		"sim-time packages; runtime select order is unseeded randomness",
	Run: runChanselect,
}

func runChanselect(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil || !inSimTime(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			comm := 0
			for _, stmt := range sel.Body.List {
				if cc, ok := stmt.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 {
				pass.Reportf(sel.Pos(),
					"select with %d channel cases in sim-time package %s: runtime select order is unseeded randomness; drain channels in an explicit order",
					comm, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil, nil
}
