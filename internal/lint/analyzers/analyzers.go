// Package analyzers holds the ctqo-lint checks that keep the simulator
// reproducible and fast: no wall-clock reads in simulated-time packages,
// no global (or time-seeded) math/rand, no order-dependent map iteration
// feeding reports, nil-safe tracer methods so disabled tracing stays
// free, no writes through shared Config pointer fields or captured state
// in worker-run closures (sharedmut, a cross-package facts analysis), no
// enum switches that silently drop members (exhaustive), no multi-case
// selects in sim-time packages (chanselect) — plus the performance
// family enforcing the hot-path allocation contract (DESIGN.md §12):
// allocs (bottom-up cross-package AllocsFact summaries), hotpath
// (//lint:hotpath functions must have an allocation-free transitive call
// graph, within an optional allocs=N budget) and deferloop (no defer or
// named-return closures in hot loops) — and the interprocedural family
// built on the analysis package's call-graph engine: purity (//lint:pure
// functions and //lint:nocapturewrite closures must reach no shared
// write, I/O or nondeterminism, with the call chain rendered), goroleak
// (every goroutine spawned by the sweep runner or live harness needs a
// visible join) and floatdet (no order-dependent float accumulation or
// comparison where numbers must replay bit-for-bit).
//
// The checks encode the repo's determinism contract (see DESIGN.md):
// the paper's CTQO results are only reproducible if a fixed seed replays
// bit-for-bit, so the properties are enforced mechanically rather than by
// review. Every analyzer honours a "//lint:allow <name>" comment on the
// flagged line or the line above it.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ctqosim/internal/lint/analysis"
)

// All returns the full suite in stable order. Allocs precedes Hotpath so
// same-package facts are exported before the annotations are checked
// (drivers also honour Hotpath's Requires when the list is filtered).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Wallclock, Seededrand, Maporder, Nilsafe,
		Sharedmut, Exhaustive, Chanselect,
		Allocs, Hotpath, Deferloop,
		Purity, Goroleak, Floatdet,
	}
}

// funcUse resolves an identifier to the package-level function it uses,
// or nil if it is anything else (variable, type, method, builtin...).
func funcUse(info *types.Info, id *ast.Ident) *types.Func {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		// Methods share names with the package-level API (e.g.
		// (*rand.Rand).Intn, (time.Time).After); they are fine.
		return nil
	}
	return fn
}

// usesPkgFunc reports whether the subtree contains a reference to one of
// the named package-level functions of pkgPath.
func usesPkgFunc(info *types.Info, n ast.Node, pkgPath string, names map[string]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if fn := funcUse(info, id); fn != nil && fn.Pkg().Path() == pkgPath && names[fn.Name()] {
			found = true
		}
		return !found
	})
	return found
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// directiveAllows parses one comment's text with the driver's
// //lint:allow grammar and reports whether it names the given analyzer.
// Analyzers that consume suppressions at fact-construction time (allocs,
// purity) use it to strip sites before their facts propagate.
func directiveAllows(text, name string) bool {
	rest, ok := strings.CutPrefix(text, "//lint:allow")
	if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n == name {
			return true
		}
	}
	return false
}

// allowedLinesFor collects the lines carrying //lint:allow directives
// naming the analyzer, mapped to the directive comment's position (so
// consumption can be reported to the driver's stale-suppression audit).
func allowedLinesFor(pass *analysis.Pass, name string) map[string]map[int]token.Pos {
	out := make(map[string]map[int]token.Pos)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !directiveAllows(c.Text, name) {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]token.Pos)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = c.Pos()
			}
		}
	}
	return out
}

// consumeAllow reports whether a site at pos is covered by an allow
// directive (own line or the line above) in the allowed table, notifying
// the driver's audit hook when it is.
func consumeAllow(pass *analysis.Pass, allowed map[string]map[int]token.Pos, pos token.Pos, name string) bool {
	p := pass.Fset.Position(pos)
	lines := allowed[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		if cpos, ok := lines[line]; ok {
			pass.MarkAllowUsed(cpos, name)
			return true
		}
	}
	return false
}
