package analyzers

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", Goroleak, "ctqosim/internal/core/goroleakbad")
}

func TestGoroleakAllowed(t *testing.T) {
	analysistest.RunExpectClean(t, "testdata", Goroleak,
		"ctqosim/internal/live/goroleakok", "goroleak/ungated")
}
