package analyzers

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"

	"go/types"

	"ctqosim/internal/lint/analysis"
)

// hotpathDirective is the annotation demanding an allocation-free
// transitive call graph: "//lint:hotpath [allocs=N] [reason]" on a
// function's doc comment (that function) or a file's package doc (every
// function in the file). The optional allocs=N grants a budget of N
// static allocation sites; the default budget is zero.
const hotpathDirective = "//lint:hotpath"

// hotpathSpec is one parsed annotation.
type hotpathSpec struct {
	budget int
}

// parseHotpathDirective parses one comment line. ok reports whether the
// comment is a hotpath directive at all; err is non-nil when it is one
// but malformed (unknown key=value, or a non-numeric/negative budget).
func parseHotpathDirective(text string) (ok bool, budget int, err error) {
	rest, found := strings.CutPrefix(text, hotpathDirective)
	if !found {
		return false, 0, nil
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return false, 0, nil // e.g. //lint:hotpathX — a different word
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return true, 0, nil
	}
	first := fields[0]
	if k, v, isKV := strings.Cut(first, "="); isKV {
		if k != "allocs" {
			return true, 0, fmt.Errorf("unknown %s key %q (only allocs=N)", hotpathDirective, k)
		}
		n, convErr := strconv.Atoi(v)
		if convErr != nil || n < 0 {
			return true, 0, fmt.Errorf("%s allocs=%q: budget must be a non-negative integer", hotpathDirective, v)
		}
		return true, n, nil
	}
	return true, 0, nil // first field starts the free-form reason
}

// Hotpath enforces //lint:hotpath annotations: an annotated function's
// transitive call graph must be allocation-free (or within its allocs=N
// budget) according to the AllocsFact summaries the allocs analyzer
// computes. Findings are reported at the annotated declaration and carry
// the call chain down to the allocating construct. Cold branches are
// excluded at the source with "//lint:allow allocs <reason>" on the
// allocating line (see DESIGN.md §12 for the conventions).
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "require an allocation-free transitive call graph for " +
		"//lint:hotpath functions (budget adjustable with allocs=N), " +
		"reporting the chain to each allocating construct",
	Requires:  []*analysis.Analyzer{Allocs},
	FactTypes: []analysis.Fact{new(AllocsFact)},
	Run:       runHotpath,
}

func runHotpath(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		filewide, fileOK := hotpathFromDoc(pass, f.Doc)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			spec, declOK := hotpathFromDoc(pass, fd.Doc)
			if !declOK {
				if !fileOK {
					continue
				}
				spec = filewide
			}
			if fd.Body == nil {
				pass.Reportf(fd.Name.Pos(),
					"//lint:hotpath on %s, which has no body: the contract needs a call graph to check", fd.Name.Name)
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var fact AllocsFact
			if !pass.ImportObjectFact(fn, &fact) || len(fact.Sites) <= spec.budget {
				continue
			}
			for _, site := range fact.Sites {
				msg := fmt.Sprintf("//lint:hotpath function %s allocates: %s (%s:%d)",
					fd.Name.Name, site.What, site.File, site.Line)
				if spec.budget > 0 {
					msg = fmt.Sprintf("%s [budget allocs=%d exceeded: %d sites]",
						msg, spec.budget, len(fact.Sites))
				}
				pass.Report(analysis.Diagnostic{
					Pos:     fd.Name.Pos(),
					Message: msg,
					Chain:   site.Chain,
				})
			}
		}
	}
	return nil, nil
}

// hotpathFromDoc scans a doc comment for a hotpath directive, reporting
// malformed ones as diagnostics. ok is true when a well-formed directive
// was found.
func hotpathFromDoc(pass *analysis.Pass, doc *ast.CommentGroup) (hotpathSpec, bool) {
	if doc == nil {
		return hotpathSpec{}, false
	}
	for _, c := range doc.List {
		isDirective, budget, err := parseHotpathDirective(c.Text)
		if !isDirective {
			continue
		}
		if err != nil {
			pass.Reportf(c.Pos(), "malformed hotpath directive: %v", err)
			continue
		}
		return hotpathSpec{budget: budget}, true
	}
	return hotpathSpec{}, false
}
