package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"ctqosim/internal/lint/analysis"
)

// orderedSinks are call names that emit bytes (or records) in call order:
// reaching one from inside a map range makes the output depend on Go's
// randomized iteration order.
var orderedSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteAll": true, "WriteFile": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "Marshal": true, "MarshalIndent": true,
	"Observe": true, "Record": true,
}

// Maporder flags map iteration whose body has order-dependent effects:
// appending to a slice that is never sorted afterwards, writing
// CSV/JSON/SVG output, or concatenating strings. These make reports,
// metrics and Perfetto exports differ between identical runs.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops that append to unsorted slices or " +
		"emit ordered output; sort the keys first",
	Run: runMaporder,
}

func runMaporder(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch s := n.(type) {
			case *ast.BlockStmt:
				list = s.List
			case *ast.CaseClause:
				list = s.Body
			case *ast.CommClause:
				list = s.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs := asRange(stmt)
				if rs == nil || !isMapType(pass.TypesInfo, rs.X) {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
			return true
		})
	}
	return nil, nil
}

// asRange unwraps labels down to a range statement.
func asRange(stmt ast.Stmt) *ast.RangeStmt {
	for {
		switch s := stmt.(type) {
		case *ast.LabeledStmt:
			stmt = s.Stmt
		case *ast.RangeStmt:
			return s
		default:
			return nil
		}
	}
}

// isMapType reports whether the expression's type is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body; rest is the statement list
// following the loop in its enclosing block, consulted to accept the
// canonical collect-keys-then-sort pattern.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	var appendTargets []string
	reported := false
	report := func(format string, args ...any) {
		if !reported {
			pass.Reportf(rs.For, format, args...)
			reported = true
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeName(n)
			if orderedSinks[name] {
				report("map iteration feeds ordered output via %s: iterate sorted keys instead", name)
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN:
				if len(n.Lhs) == 1 && isStringExpr(pass.TypesInfo, n.Lhs[0]) {
					report("string built up in map iteration order: iterate sorted keys instead")
				}
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) || !isAppendCall(pass.TypesInfo, rhs) {
						continue
					}
					lhs := unparen(n.Lhs[i])
					// Appending into a map-keyed bucket (m[k] = append(m[k], v))
					// is per-key and order-insensitive.
					if idx, ok := lhs.(*ast.IndexExpr); ok && isMapType(pass.TypesInfo, idx.X) {
						continue
					}
					appendTargets = append(appendTargets, types.ExprString(lhs))
				}
			}
		}
		return !reported
	})
	if reported {
		return
	}
	for _, target := range appendTargets {
		if !sortedAfter(pass.TypesInfo, rest, target) {
			report("map iteration appends to %s in nondeterministic order and it is never sorted afterwards", target)
			return
		}
	}
}

// calleeName returns the bare name of a call's function.
func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isStringExpr reports whether e has string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// sortedAfter reports whether a sort/slices call mentioning target (by
// expression text) appears in the statements following the loop.
func sortedAfter(info *types.Info, rest []ast.Stmt, target string) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			if p := pn.Imported().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(unparen(arg)) == target {
					found = true
					break
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
