package analyzers

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
)

func TestDeferloop(t *testing.T) {
	analysistest.Run(t, "testdata", Deferloop, "deferloop/flagged")
}

func TestDeferloopAllowed(t *testing.T) {
	analysistest.RunExpectClean(t, "testdata", Deferloop, "deferloop/allowed")
}
