package analyzers

import (
	"testing"

	"ctqosim/internal/lint/analysistest"
)

// TestAllocs pins the per-construct classification through fact
// expectations: allocs reports no diagnostics, so the fixture asserts
// the AllocsFact summaries themselves (including the transitive and
// the //lint:allow-suppressed cases).
func TestAllocs(t *testing.T) {
	analysistest.Run(t, "testdata", Allocs, "allocs/a")
}
