package analyzers

import (
	"go/ast"
	"strings"

	"ctqosim/internal/lint/analysis"
)

// SimTimePackages are the import-path prefixes where time flows from the
// discrete-event simulator, never from the host clock. internal/live (the
// real-network harness) and internal/span's wall-clock collector path are
// deliberately absent: they measure real machines.
var SimTimePackages = []string{
	"ctqosim/internal/des",
	"ctqosim/internal/simnet",
	"ctqosim/internal/server",
	"ctqosim/internal/core",
	"ctqosim/internal/burst",
	"ctqosim/internal/workload",
	"ctqosim/internal/scenario",
	"ctqosim/internal/fault",
}

// wallclockFuncs are the package-level time functions that read or wait
// on the host clock. Conversions and constants (time.Duration,
// time.Millisecond, ...) remain free to use.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock forbids host-clock reads inside simulated-time packages: a
// single stray time.Now in a hot path silently breaks seed-for-seed
// replay of the CTQO scenarios.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep/After/Tick/NewTimer/NewTicker in " +
		"sim-time packages; simulated components must read the DES clock",
	Run: runWallclock,
}

// inSimTime reports whether pkgPath falls under a sim-time prefix.
func inSimTime(pkgPath string) bool {
	for _, p := range SimTimePackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func runWallclock(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil || !inSimTime(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn := funcUse(pass.TypesInfo, id)
			if fn == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(),
				"wall-clock time.%s in sim-time package %s: read the simulator clock instead",
				fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
