// callgraph.go — the deterministic interprocedural call-graph engine
// under the purity analyzer (and available to any other fact consumer).
//
// The design is two layers:
//
//  1. Callgraph, an Analyzer that exports one CalleesFact per function
//     declaration: the static call edges leaving the function's body.
//     Edges inside function literals are attributed to the enclosing
//     declaration — the literal runs at some dynamic call site the
//     analysis cannot see, so the conservative reading is "creating the
//     closure may lead to these calls". Dynamic calls (interface
//     methods, func values) resolve to nothing and form the engine's
//     documented boundary, exactly like the allocs summaries (§12).
//
//  2. Graph, the reachability view assembled from a fact Store after
//     the dependency-ordered run: nodes keyed by FuncID — a stable
//     "pkgpath.Func" / "pkgpath.(Type).Method" string that does not
//     depend on token.Pos — edges sorted by callee ID, so two loads of
//     the same package closure serialize to byte-identical graphs and
//     breadth-first traversals visit nodes in the same order
//     (DESIGN.md §15).
package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// maxCallEdges bounds one function's exported edge list. Functions with
// more distinct static callees keep the maxCallEdges smallest callee IDs
// (the cut is by sorted ID, not source position, so the surviving set is
// load-order independent).
const maxCallEdges = 48

// FuncID names a function independently of load order:
// "pkgpath.Func" for package-level functions,
// "pkgpath.(Type).Method" for methods (pointer receivers stripped).
type FuncID string

// Short trims the package path down to its last element — the rendering
// used in call chains ("core.(Runner).Do" rather than the full
// "ctqosim/internal/core.(Runner).Do").
func (id FuncID) Short() string {
	s := string(id)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// IDOf computes the FuncID of a function object.
func IDOf(fn *types.Func) FuncID {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = "(" + n.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		return FuncID(fn.Pkg().Path() + "." + name)
	}
	return FuncID(name)
}

// CallEdge is one static call: the callee and the first call site
// (file base name and line) the scan saw for it.
type CallEdge struct {
	Callee FuncID
	File   string
	Line   int
}

// CalleesFact is a function's exported callee summary: its outgoing
// static call edges, deduplicated by callee (first site wins) and sorted
// by callee ID. The purity analyzer declares the same fact type and
// assembles the run-wide Graph from these summaries.
type CalleesFact struct {
	// ID is the function's own FuncID, recorded in the fact so graph
	// construction never needs token positions.
	ID FuncID
	// Edges is sorted by Callee.
	Edges []CallEdge
}

// AFact implements Fact.
func (*CalleesFact) AFact() {}

// String renders the summary for fixture fact expectations.
func (f *CalleesFact) String() string {
	names := make([]string, len(f.Edges))
	for i, e := range f.Edges {
		names[i] = e.Callee.Short()
	}
	return "calls(" + strings.Join(names, "; ") + ")"
}

// Callgraph exports CalleesFact summaries for every function declared in
// the package. It reports no diagnostics: the facts are the product, and
// fact-consuming analyzers (purity) turn graph reachability into
// findings. It is not registered in the user-facing suite — drivers pull
// it in through Requires.
var Callgraph = &Analyzer{
	Name: "callgraph",
	Doc: "compute per-function static callee summaries (CalleesFact) and " +
		"propagate them cross-package; the reachability substrate of the " +
		"purity analyzer",
	FactTypes: []Fact{new(CalleesFact)},
	Run:       runCallgraph,
}

func runCallgraph(pass *Pass) (any, error) {
	if pass.Pkg == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			edges := collectEdges(pass, fd.Body)
			if len(edges) == 0 {
				continue
			}
			pass.ExportObjectFact(fn, &CalleesFact{ID: IDOf(fn), Edges: edges})
		}
	}
	return nil, nil
}

// collectEdges scans one body (descending into function literals) for
// static calls and returns the deduplicated, ID-sorted edge list.
func collectEdges(pass *Pass, body ast.Node) []CallEdge {
	byCallee := make(map[FuncID]CallEdge)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := StaticCallee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		id := IDOf(callee)
		if _, dup := byCallee[id]; dup {
			return true
		}
		p := pass.Fset.Position(call.Pos())
		byCallee[id] = CallEdge{Callee: id, File: filepath.Base(p.Filename), Line: p.Line}
		return true
	})
	if len(byCallee) == 0 {
		return nil
	}
	edges := make([]CallEdge, 0, len(byCallee))
	for _, e := range byCallee {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Callee < edges[j].Callee })
	if len(edges) > maxCallEdges {
		edges = edges[:maxCallEdges]
	}
	return edges
}

// StaticCallee resolves a call expression to its static callee: a named
// function or a concrete (non-interface) method. Interface methods,
// func-typed values, builtins and type conversions return nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return nil
			}
			return fn
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // qualified package-level function
		}
	}
	return nil
}

// Graph is the run-wide call graph assembled from the CalleesFact
// entries of a fact store. Construction, serialization and traversal are
// all keyed by FuncID strings, never token positions, so two independent
// loads of the same package closure produce byte-identical serializations
// and identical traversal orders.
type Graph struct {
	edges map[FuncID][]CallEdge
	objs  map[FuncID]types.Object
}

// BuildGraph collects every CalleesFact in the store into a Graph.
func BuildGraph(s *Store) *Graph {
	g := &Graph{
		edges: make(map[FuncID][]CallEdge),
		objs:  make(map[FuncID]types.Object),
	}
	if s == nil {
		return g
	}
	for k, f := range s.m {
		cf, ok := f.(*CalleesFact)
		if !ok {
			continue
		}
		g.edges[cf.ID] = cf.Edges
		g.objs[cf.ID] = k.obj
	}
	return g
}

// Edges returns a node's outgoing edges (sorted by callee ID), or nil.
func (g *Graph) Edges(id FuncID) []CallEdge { return g.edges[id] }

// Obj returns the types.Object a node's fact was exported on, or nil —
// the handle consumers use to look up further facts on reachable
// functions.
func (g *Graph) Obj(id FuncID) types.Object { return g.objs[id] }

// Len reports the number of nodes with outgoing edges.
func (g *Graph) Len() int { return len(g.edges) }

// Serialize renders the graph as one "caller -> callee (file:line)" line
// per edge, sorted by caller then callee. The output is the determinism
// contract's witness: byte-identical across loads of the same closure.
func (g *Graph) Serialize() []byte {
	ids := make([]FuncID, 0, len(g.edges))
	for id := range g.edges {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var buf bytes.Buffer
	for _, id := range ids {
		for _, e := range g.edges[id] {
			fmt.Fprintf(&buf, "%s -> %s (%s:%d)\n", id, e.Callee, e.File, e.Line)
		}
	}
	return buf.Bytes()
}

// Find runs a breadth-first search from a node and returns the edge path
// to the nearest node satisfying hit, or ok=false when none is reachable
// within maxDepth edges. hit(from) short-circuits with an empty path.
// The traversal is deterministic: edges are stored sorted by callee ID
// and the queue is FIFO, so equal-depth candidates resolve to the
// smallest ID.
func (g *Graph) Find(from FuncID, maxDepth int, hit func(FuncID) bool) ([]CallEdge, bool) {
	if hit(from) {
		return nil, true
	}
	type hop struct {
		id   FuncID
		via  CallEdge
		prev int // index into hops, -1 for roots
	}
	hops := []hop{}
	visited := map[FuncID]bool{from: true}
	queue := []int{}
	depth := map[FuncID]int{from: 0}
	for _, e := range g.edges[from] {
		if visited[e.Callee] {
			continue
		}
		visited[e.Callee] = true
		depth[e.Callee] = 1
		hops = append(hops, hop{id: e.Callee, via: e, prev: -1})
		queue = append(queue, len(hops)-1)
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		h := hops[i]
		if hit(h.id) {
			var path []CallEdge
			for j := i; j >= 0; j = hops[j].prev {
				path = append(path, hops[j].via)
			}
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			return path, true
		}
		if depth[h.id] >= maxDepth {
			continue
		}
		for _, e := range g.edges[h.id] {
			if visited[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			depth[e.Callee] = depth[h.id] + 1
			hops = append(hops, hop{id: e.Callee, via: e, prev: i})
			queue = append(queue, len(hops)-1)
		}
	}
	return nil, false
}
