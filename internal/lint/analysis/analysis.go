// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check that
// runs over one type-checked package at a time and reports Diagnostics.
//
// The repo builds offline — the x/tools module is deliberately not a
// dependency — so this package re-creates the small slice of the API the
// ctqo-lint suite needs (Analyzer, Pass, Diagnostic) on top of the
// standard library's go/ast and go/types. Analyzers written against it
// port to the real go/analysis framework by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags and
	// //lint:allow suppression comments. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph help text; its first line is the summary.
	Doc string
	// Run applies the check to a single package and reports diagnostics
	// through pass.Report. The returned value is ignored by this driver
	// (kept in the signature for go/analysis compatibility).
	Run func(*Pass) (any, error)
}

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File
	// Pkg is the type-checked package. It may be incomplete if the
	// package had type errors; analyzers must tolerate nil objects in
	// TypesInfo lookups.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding in the source.
	Pos token.Pos
	// Message is the human-readable description.
	Message string
}
