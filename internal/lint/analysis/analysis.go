// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check that
// runs over one type-checked package at a time and reports Diagnostics.
//
// The repo builds offline — the x/tools module is deliberately not a
// dependency — so this package re-creates the small slice of the API the
// ctqo-lint suite needs (Analyzer, Pass, Diagnostic) on top of the
// standard library's go/ast and go/types. Analyzers written against it
// port to the real go/analysis framework by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags and
	// //lint:allow suppression comments. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph help text; its first line is the summary.
	Doc string
	// Requires lists analyzers that must run before this one on every
	// package, because this analyzer consumes facts they export (e.g.
	// hotpath reads the AllocsFact summaries the allocs analyzer
	// computes). Drivers expand the requirement closure with Expand;
	// required analyzers pulled in only as dependencies run for their
	// facts and have their diagnostics discarded.
	Requires []*Analyzer
	// FactTypes lists the fact types the analyzer exports and imports,
	// one (typed, possibly nil) pointer value per type. An analyzer may
	// only export or import facts whose type appears here.
	FactTypes []Fact
	// Run applies the check to a single package and reports diagnostics
	// through pass.Report. The returned value is ignored by this driver
	// (kept in the signature for go/analysis compatibility).
	Run func(*Pass) (any, error)
}

// Expand returns the analyzers plus their transitive requirements in a
// deterministic order with every requirement before its dependents.
// Duplicates are dropped (first visit wins).
func Expand(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	seen := make(map[*Analyzer]bool)
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File
	// Pkg is the type-checked package. It may be incomplete if the
	// package had type errors; analyzers must tolerate nil objects in
	// TypesInfo lookups.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Facts is the run-wide fact store. The driver passes the same store
	// to every pass of a run, and analyzes packages in dependency order,
	// so facts exported while analyzing an import are visible to its
	// dependents. Nil is tolerated: a store is created lazily, scoped to
	// this pass (same-package facts still work).
	Facts *Store
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
	// UsedAllow, when set by the driver, receives a notification each
	// time the analyzer consumes a //lint:allow directive internally
	// (the allocs analyzer removes suppressed sites at fact-construction
	// time, invisibly to the driver's own suppression pass). pos is the
	// directive comment's position and name the analyzer it silenced.
	// Drivers use it for the stale-suppression audit (-unused-allow).
	UsedAllow func(pos token.Pos, name string)
}

// MarkAllowUsed records that the allow directive at pos was consumed for
// the named analyzer. Safe to call with no driver hook installed.
func (p *Pass) MarkAllowUsed(pos token.Pos, name string) {
	if p.UsedAllow != nil {
		p.UsedAllow(pos, name)
	}
}

// Fact is a datum an analyzer attaches to a types.Object while analyzing
// the package that declares it, and reads back when analyzing dependent
// packages — the cross-package channel of the facts mechanism, modeled on
// golang.org/x/tools/go/analysis facts. A fact type must be a pointer to
// a struct and carry the AFact marker method. Facts are namespaced by
// their Go type: two analyzers using distinct fact types never collide,
// while declaring the same fact type in both FactTypes lists is the
// deliberate cross-analyzer channel (hotpath imports the AllocsFact
// summaries the allocs analyzer exports). Access is gated by FactTypes:
// an analyzer can only touch fact types it declares.
//
// Object identity is what threads facts across packages: the driver loads
// packages in dependency order and reuses each loaded package as the
// type-checker's import, so the *types.Func an analyzer exported a fact
// on in package a is the same object a dependent package b resolves
// through its own types.Info.
type Fact interface{ AFact() }

// Store holds the facts exported during one lint run.
type Store struct {
	m map[storeKey]Fact
}

// storeKey namespaces a fact by annotated object and fact type. The
// analyzer name is deliberately not part of the key: the fact type is the
// namespace, so analyzers that declare a shared fact type see each
// other's exports (the allocs→hotpath channel).
type storeKey struct {
	obj types.Object
	typ reflect.Type
}

// NewStore returns an empty fact store.
func NewStore() *Store { return &Store{m: make(map[storeKey]Fact)} }

// Entry is one stored (object, fact) pair.
type Entry struct {
	Obj  types.Object
	Fact Fact
}

// Entries returns the store's contents sorted by object position, object
// name, then fact type name — a deterministic enumeration for tests and
// fixture fact expectations.
func (s *Store) Entries() []Entry {
	if s == nil {
		return nil
	}
	out := make([]Entry, 0, len(s.m))
	for k, f := range s.m {
		out = append(out, Entry{Obj: k.obj, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Obj.Pos() != b.Obj.Pos() {
			return a.Obj.Pos() < b.Obj.Pos()
		}
		if a.Obj.Name() != b.Obj.Name() {
			return a.Obj.Name() < b.Obj.Name()
		}
		return reflect.TypeOf(a.Fact).String() < reflect.TypeOf(b.Fact).String()
	})
	return out
}

// factType validates that fact is a non-nil pointer to a struct and
// returns its reflect type.
func factType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("fact %T is not a pointer", fact))
	}
	return t
}

// key builds the store key for this pass's analyzer, checking that the
// fact type was declared in the analyzer's FactTypes.
func (p *Pass) key(obj types.Object, fact Fact) storeKey {
	if obj == nil {
		panic(fmt.Sprintf("%s: fact %T on nil object", p.Analyzer.Name, fact))
	}
	t := factType(fact)
	for _, ft := range p.Analyzer.FactTypes {
		if reflect.TypeOf(ft) == t {
			return storeKey{obj: obj, typ: t}
		}
	}
	panic(fmt.Sprintf("%s: fact type %v not declared in FactTypes", p.Analyzer.Name, t))
}

// ExportObjectFact attaches fact to obj for later passes of the same
// analyzer. Exporting twice overwrites: the last fact wins.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil {
		p.Facts = NewStore()
	}
	p.Facts.m[p.key(obj, fact)] = fact
}

// ImportObjectFact copies the fact of fact's type previously exported on
// obj (by any analyzer declaring that type, in this package or a
// dependency) into *fact and reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	stored, ok := p.Facts.m[p.key(obj, fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding in the source.
	Pos token.Pos
	// Message is the human-readable description.
	Message string
	// Chain optionally traces the finding through intermediate calls down
	// to the root cause (the hotpath analyzer reports the call chain from
	// an annotated function to the allocating construct). Each entry is a
	// pre-rendered "func: what (file:line)" step.
	Chain []string
}
