package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

type testFact struct{ N int }

func (*testFact) AFact() {}

type otherFact struct{ N int }

func (*otherFact) AFact() {}

func newTestPass(name string, store *Store) *Pass {
	return &Pass{
		Analyzer: &Analyzer{
			Name:      name,
			FactTypes: []Fact{new(testFact), new(otherFact)},
		},
		Facts: store,
	}
}

func testObj(name string) types.Object {
	pkg := types.NewPackage("example.com/p", "p")
	return types.NewVar(token.NoPos, pkg, name, types.Typ[types.Int])
}

func TestStoreExportImportRoundTrip(t *testing.T) {
	store := NewStore()
	pass := newTestPass("a", store)
	obj := testObj("x")

	var missing testFact
	if pass.ImportObjectFact(obj, &missing) {
		t.Error("ImportObjectFact found a fact before any export")
	}

	pass.ExportObjectFact(obj, &testFact{N: 7})
	var got testFact
	if !pass.ImportObjectFact(obj, &got) {
		t.Fatal("ImportObjectFact found nothing after export")
	}
	if got.N != 7 {
		t.Errorf("imported fact N = %d, want 7", got.N)
	}

	// Import copies: mutating the copy must not affect the stored fact.
	got.N = 99
	var again testFact
	pass.ImportObjectFact(obj, &again)
	if again.N != 7 {
		t.Errorf("stored fact mutated through the imported copy: N = %d, want 7", again.N)
	}

	// Re-export overwrites.
	pass.ExportObjectFact(obj, &testFact{N: 8})
	pass.ImportObjectFact(obj, &again)
	if again.N != 8 {
		t.Errorf("re-exported fact N = %d, want 8", again.N)
	}
}

func TestStoreFactTypeKeying(t *testing.T) {
	store := NewStore()
	obj := testObj("x")
	a := newTestPass("a", store)
	b := newTestPass("b", store)

	a.ExportObjectFact(obj, &testFact{N: 1})

	// The fact type is the namespace: a second analyzer that declares the
	// same fact type sees the first's export. This is the deliberate
	// cross-analyzer channel (hotpath imports allocs' AllocsFact).
	var got testFact
	if !b.ImportObjectFact(obj, &got) || got.N != 1 {
		t.Error("analyzer b cannot see analyzer a's fact of a shared declared type")
	}
	// Same object, different fact type: invisible.
	var other otherFact
	if a.ImportObjectFact(obj, &other) {
		t.Error("testFact visible through an otherFact import")
	}
	// Different object: invisible.
	if a.ImportObjectFact(testObj("y"), &got) {
		t.Error("fact leaked to a different object")
	}
}

func TestStoreEntriesDeterministic(t *testing.T) {
	store := NewStore()
	pass := newTestPass("a", store)
	x, y := testObj("x"), testObj("y")
	pass.ExportObjectFact(y, &testFact{N: 2})
	pass.ExportObjectFact(x, &testFact{N: 1})
	pass.ExportObjectFact(x, &otherFact{N: 3})

	entries := store.Entries()
	if len(entries) != 3 {
		t.Fatalf("Entries returned %d entries, want 3", len(entries))
	}
	wantNames := []string{"x", "x", "y"}
	for i, e := range entries {
		if e.Obj.Name() != wantNames[i] {
			t.Errorf("entry %d on object %s, want %s", i, e.Obj.Name(), wantNames[i])
		}
	}
	// x's two facts sort by type name: otherFact before testFact.
	if _, ok := entries[0].Fact.(*otherFact); !ok {
		t.Errorf("entry 0 fact is %T, want *otherFact", entries[0].Fact)
	}
}

func TestExpandRequires(t *testing.T) {
	base := &Analyzer{Name: "base"}
	mid := &Analyzer{Name: "mid", Requires: []*Analyzer{base}}
	top := &Analyzer{Name: "top", Requires: []*Analyzer{mid, base}}

	got := Expand([]*Analyzer{top, base})
	want := []string{"base", "mid", "top"}
	if len(got) != len(want) {
		t.Fatalf("Expand returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Expand[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}

func TestStoreSharedAcrossPasses(t *testing.T) {
	// The cross-package mechanism: two passes of the same analyzer share
	// one store, so a fact exported while analyzing a dependency is
	// importable from the dependent package's pass.
	store := NewStore()
	obj := testObj("x")
	dep := newTestPass("a", store)
	dep.ExportObjectFact(obj, &testFact{N: 3})

	dependent := newTestPass("a", store)
	var got testFact
	if !dependent.ImportObjectFact(obj, &got) || got.N != 3 {
		t.Errorf("fact did not cross passes: got %v, %d", got, got.N)
	}
}

func TestExportUndeclaredFactTypePanics(t *testing.T) {
	pass := &Pass{
		Analyzer: &Analyzer{Name: "a"}, // no FactTypes
		Facts:    NewStore(),
	}
	defer func() {
		if recover() == nil {
			t.Error("exporting an undeclared fact type did not panic")
		}
	}()
	pass.ExportObjectFact(testObj("x"), &testFact{})
}

func TestNilFactsImportIsFalse(t *testing.T) {
	pass := newTestPass("a", nil)
	var got testFact
	if pass.ImportObjectFact(testObj("x"), &got) {
		t.Error("ImportObjectFact on a nil store returned true")
	}
	// Export lazily creates a pass-local store rather than panicking.
	obj := testObj("y")
	pass.ExportObjectFact(obj, &testFact{N: 2})
	if !pass.ImportObjectFact(obj, &got) || got.N != 2 {
		t.Error("lazily-created store did not round-trip the fact")
	}
}
