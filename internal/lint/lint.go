// Package lint is the driver behind cmd/ctqo-lint: it loads packages,
// runs the determinism analyzers over them, applies //lint:allow
// suppression comments and renders findings as text or JSON.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"ctqosim/internal/lint/analysis"
	"ctqosim/internal/lint/loader"
)

// Finding is one diagnostic after suppression, with a resolved position.
type Finding struct {
	// Analyzer names the check that fired.
	Analyzer string `json:"analyzer"`
	// File is the source file, relative to the module root when possible.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the problem.
	Message string `json:"message"`
	// Chain, when present, traces the finding through intermediate calls
	// to its root cause — the hotpath analyzer's call chain from an
	// annotated function down to the allocating construct.
	Chain []string `json:"chain,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// allowDirective is the suppression comment prefix: a comment of the form
// "//lint:allow name[,name...] [reason]" on the flagged line, or on the
// line directly above it, silences those analyzers for that line.
const allowDirective = "//lint:allow"

// parseAllowNames parses one comment's text as an allow directive and
// returns the analyzer names it silences, or nil when the comment is not
// a well-formed directive: the prefix must be followed by a space or tab
// (or end the comment, which silences nothing), and the first field is
// the comma-separated name list — everything after it is free-form
// justification.
func parseAllowNames(text string) []string {
	rest, ok := strings.CutPrefix(text, allowDirective)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	return strings.Split(fields[0], ",")
}

// allowedLines maps file line numbers to the analyzer names allowed on
// them (and on the following line).
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				parsed := parseAllowNames(c.Text)
				if parsed == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					out[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					byLine[pos.Line] = names
				}
				for _, name := range parsed {
					names[name] = true
				}
			}
		}
	}
	return out
}

// suppressed reports whether a finding at pos is covered by an allow
// directive on its own line or the line above.
func suppressed(allowed map[string]map[int]map[string]bool, pos token.Position, analyzer string) bool {
	byLine := allowed[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if byLine[line][analyzer] {
			return true
		}
	}
	return false
}

// RunPackage applies the analyzers to one loaded package and returns the
// surviving findings, unsorted. Paths are reported relative to relDir
// when possible. facts is the run-wide fact store; pass the same store
// for every package of a run (in loader.Closure order) so facts exported
// by dependency packages are visible here. Nil is accepted for runs that
// need no cross-package facts.
//
// The requirement closure is expanded automatically: an analyzer pulled
// in only through another's Requires runs for its facts, with its own
// diagnostics discarded.
func RunPackage(l *loader.Loader, pkg *loader.Package, analyzers []*analysis.Analyzer, relDir string, facts *analysis.Store) ([]Finding, error) {
	requested := make(map[*analysis.Analyzer]bool, len(analyzers))
	for _, a := range analyzers {
		requested[a] = true
	}
	allowed := allowedLines(l.Fset, pkg.Files)
	var out []Finding
	for _, a := range analysis.Expand(analyzers) {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if !requested[a] {
				return // requirement-only analyzer: facts, not findings
			}
			pos := l.Fset.Position(d.Pos)
			if suppressed(allowed, pos, a.Name) {
				return
			}
			file := pos.Filename
			if relDir != "" {
				if rel, err := filepath.Rel(relDir, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			out = append(out, Finding{
				Analyzer: a.Name,
				File:     file,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
				Chain:    d.Chain,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	return out, nil
}

// Run applies the analyzers to every package named by paths and returns
// findings sorted by position for deterministic output. The whole local
// dependency closure of paths is analyzed — in dependency order, sharing
// one fact store, so facts propagate across package boundaries — but
// only findings in the requested packages are reported.
func Run(l *loader.Loader, paths []string, analyzers []*analysis.Analyzer, relDir string) ([]Finding, error) {
	order, err := l.Closure(paths)
	if err != nil {
		return nil, err
	}
	requested := make(map[string]bool, len(paths))
	for _, path := range paths {
		requested[path] = true
	}
	facts := analysis.NewStore()
	var out []Finding
	for _, path := range order {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		fs, err := RunPackage(l, pkg, analyzers, relDir, facts)
		if err != nil {
			return nil, err
		}
		if requested[path] {
			out = append(out, fs...)
		}
	}
	Sort(out)
	return out, nil
}

// Sort orders findings by file, line, column, analyzer, message.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteJSON renders findings as an indented JSON array (empty array, not
// null, when there are none) followed by a newline.
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	data, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// WriteText renders findings one per line.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}
