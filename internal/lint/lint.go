// Package lint is the driver behind cmd/ctqo-lint: it loads packages,
// runs the determinism analyzers over them, applies //lint:allow
// suppression comments and renders findings as text or JSON.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"ctqosim/internal/lint/analysis"
	"ctqosim/internal/lint/loader"
)

// Finding is one diagnostic after suppression, with a resolved position.
type Finding struct {
	// Analyzer names the check that fired.
	Analyzer string `json:"analyzer"`
	// File is the source file, relative to the module root when possible.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the problem.
	Message string `json:"message"`
	// Chain, when present, traces the finding through intermediate calls
	// to its root cause — the hotpath analyzer's call chain from an
	// annotated function down to the allocating construct.
	Chain []string `json:"chain,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// allowDirective is the suppression comment prefix: a comment of the form
// "//lint:allow name[,name...] [reason]" on the flagged line, or on the
// line directly above it, silences those analyzers for that line.
const allowDirective = "//lint:allow"

// parseAllowNames parses one comment's text as an allow directive and
// returns the analyzer names it silences, or nil when the comment is not
// a well-formed directive: the prefix must be followed by a space or tab
// (or end the comment, which silences nothing), and the first field is
// the comma-separated name list — everything after it is free-form
// justification.
func parseAllowNames(text string) []string {
	rest, ok := strings.CutPrefix(text, allowDirective)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	return strings.Split(fields[0], ",")
}

// allowSite is one parsed //lint:allow directive with per-name usage
// tracking for the stale-suppression audit.
type allowSite struct {
	file      string // absolute, as the FileSet renders it
	line, col int
	names     []string // in written order
	used      map[string]bool
}

// allowTable indexes one package's allow directives by file and line.
type allowTable struct {
	byLine map[string]map[int]*allowSite
	sites  []*allowSite // in scan order (files sorted, comments by position)
}

// buildAllowTable parses every allow directive in the files.
func buildAllowTable(fset *token.FileSet, files []*ast.File) *allowTable {
	t := &allowTable{byLine: make(map[string]map[int]*allowSite)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				parsed := parseAllowNames(c.Text)
				if parsed == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := t.byLine[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*allowSite)
					t.byLine[pos.Filename] = byLine
				}
				site := byLine[pos.Line]
				if site == nil {
					site = &allowSite{
						file: pos.Filename, line: pos.Line, col: pos.Column,
						used: make(map[string]bool),
					}
					byLine[pos.Line] = site
					t.sites = append(t.sites, site)
				}
				site.names = append(site.names, parsed...)
			}
		}
	}
	return t
}

// suppressed reports whether a finding at pos is covered by an allow
// directive on its own line or the line above, marking the directive
// used when it is.
func (t *allowTable) suppressed(pos token.Position, analyzer string) bool {
	byLine := t.byLine[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		site := byLine[line]
		if site == nil {
			continue
		}
		for _, name := range site.names {
			if name == analyzer {
				site.used[name] = true
				return true
			}
		}
	}
	return false
}

// markUsed records an analyzer-internal consumption of the directive at
// pos (the analysis.Pass.MarkAllowUsed hook: allocs removes suppressed
// sites at fact-construction time, before the driver ever sees them).
func (t *allowTable) markUsed(pos token.Position, analyzer string) {
	if site := t.byLine[pos.Filename][pos.Line]; site != nil {
		site.used[analyzer] = true
	}
}

// AllowAudit is the stale-suppression audit behind ctqo-lint's
// -unused-allow mode: it accumulates every //lint:allow directive seen in
// the audited packages, together with which names actually suppressed a
// finding, and renders the dead ones as findings of the synthetic
// "unused-allow" analyzer.
type AllowAudit struct {
	// Ran holds the names of the analyzers exercised this run (the
	// expanded requirement closure). A directive naming an analyzer that
	// did not run is skipped, not reported — it may be load-bearing under
	// the full suite.
	Ran map[string]bool
	// Valid holds every recognized analyzer name; directives naming
	// anything else are reported as unknown regardless of Ran.
	Valid map[string]bool

	sites []*allowSite
}

// NewAllowAudit builds an audit for a run of ran analyzers, where valid
// is the full known suite (including requirement-only analyzers).
func NewAllowAudit(ran, valid []*analysis.Analyzer) *AllowAudit {
	a := &AllowAudit{Ran: make(map[string]bool), Valid: make(map[string]bool)}
	for _, an := range analysis.Expand(ran) {
		a.Ran[an.Name] = true
	}
	for _, an := range analysis.Expand(valid) {
		a.Valid[an.Name] = true
	}
	return a
}

// Findings renders the audit: one finding per unknown or unused name, in
// directive order. Paths are reported relative to relDir when possible.
func (a *AllowAudit) Findings(relDir string) []Finding {
	var out []Finding
	for _, site := range a.sites {
		file := site.file
		if relDir != "" {
			if rel, err := filepath.Rel(relDir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		for _, name := range site.names {
			var msg string
			switch {
			case !a.Valid[name]:
				msg = fmt.Sprintf("//lint:allow %s: unknown analyzer", name)
			case a.Ran[name] && !site.used[name]:
				msg = fmt.Sprintf("unused //lint:allow %s: no finding is suppressed here; remove the stale directive", name)
			default:
				continue
			}
			out = append(out, Finding{
				Analyzer: "unused-allow",
				File:     file, Line: site.line, Col: site.col,
				Message: msg,
			})
		}
	}
	return out
}

// RunPackage applies the analyzers to one loaded package and returns the
// surviving findings, unsorted. Paths are reported relative to relDir
// when possible. facts is the run-wide fact store; pass the same store
// for every package of a run (in loader.Closure order) so facts exported
// by dependency packages are visible here. Nil is accepted for runs that
// need no cross-package facts. audit, when non-nil, registers this
// package's //lint:allow directives for the stale-suppression report.
//
// The requirement closure is expanded automatically: an analyzer pulled
// in only through another's Requires runs for its facts, with its own
// diagnostics discarded.
func RunPackage(l *loader.Loader, pkg *loader.Package, analyzers []*analysis.Analyzer, relDir string, facts *analysis.Store, audit *AllowAudit) ([]Finding, error) {
	requested := make(map[*analysis.Analyzer]bool, len(analyzers))
	for _, a := range analyzers {
		requested[a] = true
	}
	allowed := buildAllowTable(l.Fset, pkg.Files)
	if audit != nil {
		audit.sites = append(audit.sites, allowed.sites...)
	}
	var out []Finding
	for _, a := range analysis.Expand(analyzers) {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		pass.UsedAllow = func(pos token.Pos, forName string) {
			allowed.markUsed(l.Fset.Position(pos), forName)
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := l.Fset.Position(d.Pos)
			if allowed.suppressed(pos, a.Name) {
				return
			}
			if !requested[a] {
				return // requirement-only analyzer: facts, not findings
			}
			file := pos.Filename
			if relDir != "" {
				if rel, err := filepath.Rel(relDir, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			out = append(out, Finding{
				Analyzer: a.Name,
				File:     file,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
				Chain:    d.Chain,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	return out, nil
}

// Run applies the analyzers to every package named by paths and returns
// findings sorted by position for deterministic output. The whole local
// dependency closure of paths is analyzed — in dependency order, sharing
// one fact store, so facts propagate across package boundaries — but
// only findings in the requested packages are reported. audit, when
// non-nil, collects the requested packages' //lint:allow directives and
// appends its stale-suppression findings to the result.
func Run(l *loader.Loader, paths []string, analyzers []*analysis.Analyzer, relDir string, audit *AllowAudit) ([]Finding, error) {
	order, err := l.Closure(paths)
	if err != nil {
		return nil, err
	}
	requested := make(map[string]bool, len(paths))
	for _, path := range paths {
		requested[path] = true
	}
	facts := analysis.NewStore()
	var out []Finding
	for _, path := range order {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		pkgAudit := audit
		if !requested[path] {
			pkgAudit = nil // dependencies' directives are not audited
		}
		fs, err := RunPackage(l, pkg, analyzers, relDir, facts, pkgAudit)
		if err != nil {
			return nil, err
		}
		if requested[path] {
			out = append(out, fs...)
		}
	}
	if audit != nil {
		out = append(out, audit.Findings(relDir)...)
	}
	Sort(out)
	return out, nil
}

// Sort orders findings by file, line, column, analyzer, message.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteJSON renders findings as an indented JSON array (empty array, not
// null, when there are none) followed by a newline.
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	data, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// WriteText renders findings one per line.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}
