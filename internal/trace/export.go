package trace

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV exports the event log for external analysis, one row per
// transport event: time_s, kind, server, request_id, attempt.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "kind", "server", "request_id", "attempt"}); err != nil {
		return err
	}
	for _, e := range l.all() {
		row := []string{
			strconv.FormatFloat(e.At.Seconds(), 'f', 6, 64),
			e.Kind.String(),
			e.Server,
			strconv.FormatUint(e.RequestID, 10),
			strconv.Itoa(e.Attempt),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DropsPerWindow counts dropped packets per fixed window per server — the
// raw series behind the VLRT plots, computed from the event log rather
// than the request records.
func (l *Log) DropsPerWindow(window, horizon int64) map[string][]int {
	if window <= 0 || horizon <= 0 {
		return nil
	}
	n := int(horizon / window)
	out := make(map[string][]int)
	for _, e := range l.all() {
		if e.Kind != KindDropped {
			continue
		}
		idx := int(e.At.Nanoseconds() / window)
		if idx < 0 || idx >= n {
			continue
		}
		series, ok := out[e.Server]
		if !ok {
			series = make([]int, n)
			out[e.Server] = series
		}
		series[idx]++
	}
	return out
}
