package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timeline returns every traced event of one request in time order — the
// paper's message-level timestamping, reconstructed per request. Events
// whose payload was not a workload request (RequestID 0 with no request)
// are excluded.
func (l *Log) Timeline(requestID uint64) []Event {
	var out []Event
	for _, e := range l.all() {
		if e.RequestID == requestID {
			out = append(out, e)
		}
	}
	return out
}

// RequestsWithDrops returns the IDs of all requests that had at least one
// packet dropped, in first-drop order.
func (l *Log) RequestsWithDrops() []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for _, e := range l.all() {
		if e.Kind != KindDropped || seen[e.RequestID] {
			continue
		}
		seen[e.RequestID] = true
		out = append(out, e.RequestID)
	}
	return out
}

// SlowestByAttempts returns up to n request IDs ordered by total delivery
// attempts (descending) — the requests that suffered the most
// retransmission.
func (l *Log) SlowestByAttempts(n int) []uint64 {
	attempts := make(map[uint64]int)
	for _, e := range l.all() {
		if e.Attempt > attempts[e.RequestID] {
			attempts[e.RequestID] = e.Attempt
		}
	}
	ids := make([]uint64, 0, len(attempts))
	for id := range attempts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if attempts[ids[i]] != attempts[ids[j]] {
			return attempts[ids[i]] > attempts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if n > 0 && len(ids) > n {
		ids = ids[:n]
	}
	return ids
}

// FormatTimeline renders one request's event chain as readable text:
//
//	req 1234: 15.020s dropped at steady-apache (attempt 1)
//	          18.020s delivered to steady-apache (attempt 2)
func FormatTimeline(events []Event) string {
	if len(events) == 0 {
		return "(no events)"
	}
	var b strings.Builder
	for i, e := range events {
		prefix := fmt.Sprintf("req %d:", e.RequestID)
		if i > 0 {
			prefix = strings.Repeat(" ", len(prefix))
		}
		verb := e.Kind.String()
		prep := "at"
		if e.Kind == KindDelivered {
			prep = "to"
		}
		fmt.Fprintf(&b, "%s %8v %s %s %s (attempt %d)\n",
			prefix, e.At.Round(time.Millisecond), verb, prep, e.Server, e.Attempt)
	}
	return b.String()
}
