package trace

import (
	"strings"
	"testing"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/metrics"
	"ctqosim/internal/simnet"
	"ctqosim/internal/workload"
)

func TestLogRecordsTransportEvents(t *testing.T) {
	sim := des.NewSimulator(1)
	log := NewLog(sim)
	req := &workload.Request{ID: 42}
	call := &simnet.Call{Payload: req, Attempts: 1}

	log.Dropped("apache", call)
	sim.Schedule(time.Second, func() {
		call.Attempts = 2
		log.Delivered("apache", call)
	})
	if err := sim.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}

	evs := log.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Kind != KindDropped || evs[0].At != 0 || evs[0].RequestID != 42 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Kind != KindDelivered || evs[1].At != time.Second || evs[1].Attempt != 2 {
		t.Fatalf("second event = %+v", evs[1])
	}
}

func TestEventsOfKind(t *testing.T) {
	sim := des.NewSimulator(1)
	log := NewLog(sim)
	call := &simnet.Call{}
	log.Dropped("a", call)
	log.Retransmitted("a", call)
	log.Dropped("b", call)
	log.GaveUp("b", call)

	if got := len(log.EventsOfKind(KindDropped)); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if got := len(log.EventsOfKind(KindGaveUp)); got != 1 {
		t.Fatalf("gave-up = %d, want 1", got)
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindDelivered, "delivered"},
		{KindDropped, "dropped"},
		{KindRetransmitted, "retransmitted"},
		{KindGaveUp, "gave-up"},
		{Kind(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

// series builds a 50ms-interval utilization series from per-sample values.
func series(vals ...float64) *metrics.Series {
	return &metrics.Series{Interval: 50 * time.Millisecond, Values: vals}
}

func TestDetectBottlenecksBasic(t *testing.T) {
	// 8 samples: saturated in windows 2..5 → a 200ms bottleneck starting
	// at 100ms.
	s := series(0.5, 0.6, 1, 1, 1, 1, 0.4, 0.3)
	got := DetectBottlenecks("vm", s, false, DetectorConfig{})
	if len(got) != 1 {
		t.Fatalf("bottlenecks = %v, want 1", got)
	}
	b := got[0]
	if b.Start != 100*time.Millisecond || b.End != 300*time.Millisecond {
		t.Fatalf("bottleneck = %+v", b)
	}
	if b.Duration() != 200*time.Millisecond {
		t.Fatalf("duration = %v", b.Duration())
	}
}

func TestDetectBottlenecksFiltersShortBlips(t *testing.T) {
	s := series(0.2, 1, 0.2, 0.2) // one saturated sample = 50ms < 100ms min
	if got := DetectBottlenecks("vm", s, false, DetectorConfig{}); len(got) != 0 {
		t.Fatalf("got %v, want none", got)
	}
}

func TestDetectBottlenecksFiltersPersistentSaturation(t *testing.T) {
	vals := make([]float64, 200) // 10s of saturation — a real bottleneck
	for i := range vals {
		vals[i] = 1
	}
	if got := DetectBottlenecks("vm", series(vals...), false, DetectorConfig{}); len(got) != 0 {
		t.Fatalf("got %v, want none (persistent, not milli)", got)
	}
}

func TestDetectBottlenecksRunAtEnd(t *testing.T) {
	s := series(0.2, 0.2, 1, 1, 1)
	got := DetectBottlenecks("vm", s, false, DetectorConfig{})
	if len(got) != 1 || got[0].Start != 100*time.Millisecond {
		t.Fatalf("got %v", got)
	}
}

func TestDetectBottlenecksMultiple(t *testing.T) {
	s := series(1, 1, 1, 0.1, 0.1, 1, 1, 1, 0.1)
	got := DetectBottlenecks("vm", s, false, DetectorConfig{})
	if len(got) != 2 {
		t.Fatalf("got %d bottlenecks, want 2", len(got))
	}
}

func TestDetectBottlenecksNilSeries(t *testing.T) {
	if got := DetectBottlenecks("vm", nil, false, DetectorConfig{}); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
}

func buildAnalyzer() *Analyzer {
	return &Analyzer{
		Tiers: []string{"apache", "tomcat", "mysql"},
		TierOfVM: map[string]string{
			"apache-vm": "apache",
			"tomcat-vm": "tomcat",
			"mysql-vm":  "mysql",
		},
	}
}

func TestAnalyzerClassifiesUpstream(t *testing.T) {
	sim := des.NewSimulator(1)
	a := buildAnalyzer()
	log := NewLog(sim)

	// Drops at apache (tier 0) while tomcat-vm (tier 1) is bottlenecked:
	// upstream CTQO, the Fig. 3 signature.
	sim.Schedule(600*time.Millisecond, func() {
		log.Dropped("apache", &simnet.Call{})
		log.Dropped("apache", &simnet.Call{})
	})
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}

	mon := handMonitor(sim, map[string][]float64{
		"tomcat-vm": {0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7,
			1, 1, 1, 1, 1, 1, 0.7, 0.7, 0.7, 0.7},
	})
	report := a.Analyze(mon, []string{"tomcat-vm"}, log)
	eps := report.CTQOEpisodes()
	if len(eps) != 1 {
		t.Fatalf("CTQO episodes = %d, want 1\n%s", len(eps), report)
	}
	if eps[0].Direction != DirectionUpstream {
		t.Fatalf("direction = %v, want upstream", eps[0].Direction)
	}
	if eps[0].Drops["apache"] != 2 {
		t.Fatalf("drops = %v", eps[0].Drops)
	}
}

func TestAnalyzerClassifiesDownstream(t *testing.T) {
	sim := des.NewSimulator(1)
	a := buildAnalyzer()
	log := NewLog(sim)

	// Drops at mysql (tier 2) while tomcat-vm is bottlenecked: the Fig. 9
	// batch-release signature.
	sim.Schedule(600*time.Millisecond, func() {
		log.Dropped("mysql", &simnet.Call{})
	})
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mon := handMonitor(sim, map[string][]float64{
		"tomcat-vm": {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5,
			1, 1, 1, 1, 1, 1, 0.5, 0.5, 0.5, 0.5},
	})
	report := a.Analyze(mon, []string{"tomcat-vm"}, log)
	eps := report.CTQOEpisodes()
	if len(eps) != 1 || eps[0].Direction != DirectionDownstream {
		t.Fatalf("report:\n%s", report)
	}
}

func TestAnalyzerNoDropsMeansNoCTQO(t *testing.T) {
	sim := des.NewSimulator(1)
	a := buildAnalyzer()
	log := NewLog(sim)
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mon := handMonitor(sim, map[string][]float64{
		"tomcat-vm": {1, 1, 1, 1, 1, 0.2, 0.2, 0.2},
	})
	report := a.Analyze(mon, []string{"tomcat-vm"}, log)
	if len(report.Episodes) != 1 {
		t.Fatalf("episodes = %d, want 1", len(report.Episodes))
	}
	if report.Episodes[0].Direction != DirectionNone {
		t.Fatalf("direction = %v, want none", report.Episodes[0].Direction)
	}
	if len(report.CTQOEpisodes()) != 0 {
		t.Fatal("no-drop episode reported as CTQO")
	}
}

func TestAnalyzerDropOutsideWindowIgnored(t *testing.T) {
	sim := des.NewSimulator(1)
	a := buildAnalyzer()
	a.Grace = 100 * time.Millisecond
	log := NewLog(sim)

	// Bottleneck spans [0, 250ms]; drop at 3s is unrelated.
	sim.Schedule(3*time.Second, func() { log.Dropped("apache", &simnet.Call{}) })
	if err := sim.Run(4 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mon := handMonitor(sim, map[string][]float64{
		"tomcat-vm": {1, 1, 1, 1, 1, 0.1, 0.1},
	})
	report := a.Analyze(mon, []string{"tomcat-vm"}, log)
	if report.Episodes[0].Direction != DirectionNone {
		t.Fatalf("unrelated drop correlated:\n%s", report)
	}
	if report.TotalDrops != 1 {
		t.Fatalf("TotalDrops = %d, want 1", report.TotalDrops)
	}
}

func TestReportString(t *testing.T) {
	sim := des.NewSimulator(1)
	a := buildAnalyzer()
	log := NewLog(sim)
	sim.Schedule(100*time.Millisecond, func() { log.Dropped("apache", &simnet.Call{}) })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mon := handMonitor(sim, map[string][]float64{
		"tomcat-vm": {1, 1, 1, 1, 0.1},
	})
	s := a.Analyze(mon, []string{"tomcat-vm"}, log).String()
	for _, want := range []string{"apache -> tomcat -> mysql", "upstream CTQO", "drops: apache=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestDirectionString(t *testing.T) {
	tests := []struct {
		d    Direction
		want string
	}{
		{DirectionNone, "no CTQO"},
		{DirectionUpstream, "upstream CTQO"},
		{DirectionDownstream, "downstream CTQO"},
		{DirectionBoth, "upstream+downstream CTQO"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

// handMonitor builds a Monitor carrying pre-computed utilization series,
// plus empty I/O-wait series so the analyzer has both to scan.
func handMonitor(sim *des.Simulator, utils map[string][]float64) *metrics.Monitor {
	mon := metrics.NewMonitor(sim, 50*time.Millisecond)
	for name, vals := range utils {
		mon.SetUtil(name, series(vals...))
		mon.SetIOWait(name, series())
	}
	return mon
}
