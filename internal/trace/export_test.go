package trace

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// errAfter fails every write once n bytes have been accepted — a stand-in
// for a full disk or a closed pipe partway through an export.
type errAfter struct {
	n       int
	written int
}

var errSink = errors.New("sink failed")

func (w *errAfter) Write(p []byte) (int, error) {
	if w.written >= w.n {
		return 0, errSink
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	log := &Log{}
	for i := 0; i < 500; i++ {
		log.events = append(log.events, Event{
			At:        time.Duration(i) * time.Millisecond,
			Kind:      KindDropped,
			Server:    "steady-apache",
			RequestID: uint64(i),
			Attempt:   1,
		})
	}
	// Failing immediately and failing after the header both must surface:
	// the csv writer buffers, so the error may only appear at flush time.
	for _, limit := range []int{0, 64} {
		err := log.WriteCSV(&errAfter{n: limit})
		if !errors.Is(err, errSink) {
			t.Errorf("WriteCSV over a writer failing after %dB = %v, want errSink", limit, err)
		}
	}
}

func TestWriteCSVEmptyLogStillWritesHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Log{}).WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "time_s,kind,server,request_id,attempt" {
		t.Errorf("empty log CSV = %q, want the bare header", got)
	}
}

// TestWriteCSVQuotesAwkwardServerNames feeds server names containing the
// CSV metacharacters (comma, quote, newline) through the exporter and
// parses the output back: every field must round-trip intact.
func TestWriteCSVQuotesAwkwardServerNames(t *testing.T) {
	servers := []string{
		`plain`,
		`tier,with,commas`,
		`tier "quoted"`,
		"tier\nnewline",
		`tier, mixing "both"`,
	}
	log := &Log{}
	for i, s := range servers {
		log.events = append(log.events, Event{
			At:        time.Duration(i+1) * 250 * time.Millisecond,
			Kind:      KindRetransmitted,
			Server:    s,
			RequestID: uint64(100 + i),
			Attempt:   i + 1,
		})
	}

	var buf bytes.Buffer
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}

	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse back: %v", err)
	}
	if len(rows) != len(servers)+1 {
		t.Fatalf("parsed %d rows, want %d (header + %d events)",
			len(rows), len(servers)+1, len(servers))
	}
	for i, s := range servers {
		row := rows[i+1]
		if len(row) != 5 {
			t.Fatalf("row %d has %d fields: %q", i+1, len(row), row)
		}
		if row[1] != "retransmitted" {
			t.Errorf("row %d kind = %q, want retransmitted", i+1, row[1])
		}
		if row[2] != s {
			t.Errorf("row %d server = %q, want %q round-tripped", i+1, row[2], s)
		}
		if want := fmt.Sprint(100 + i); row[3] != want {
			t.Errorf("row %d request_id = %q, want %s", i+1, row[3], want)
		}
	}
}
