package trace

import (
	"testing"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/metrics"
	"ctqosim/internal/simnet"
)

// TestCappedLogKeepsDropsExactly pins the retention split: every
// non-delivered event survives a capped log verbatim while delivered
// events are bounded by the reservoir capacity.
func TestCappedLogKeepsDropsExactly(t *testing.T) {
	sim := des.NewSimulator(1)
	log := NewCappedLog(sim, 7, 10)
	if !log.Capped() {
		t.Fatal("NewCappedLog with positive capacity is not capped")
	}
	call := &simnet.Call{Attempts: 1}
	for i := 0; i < 500; i++ {
		log.Delivered("apache", call)
	}
	for i := 0; i < 25; i++ {
		log.Dropped("apache", call)
		log.Retransmitted("tomcat", call)
	}
	log.GaveUp("apache", call)

	if got := len(log.EventsOfKind(KindDropped)); got != 25 {
		t.Fatalf("dropped events retained = %d, want 25 (exact)", got)
	}
	if got := len(log.EventsOfKind(KindRetransmitted)); got != 25 {
		t.Fatalf("retransmitted events retained = %d, want 25 (exact)", got)
	}
	if got := len(log.EventsOfKind(KindGaveUp)); got != 1 {
		t.Fatalf("gave-up events retained = %d, want 1 (exact)", got)
	}
	if got := len(log.EventsOfKind(KindDelivered)); got != 10 {
		t.Fatalf("delivered exemplars = %d, want the capacity 10", got)
	}
}

// TestCappedLogCountersExact pins that the per-kind/per-server tally
// never degrades, whatever the sampling does to the events themselves.
func TestCappedLogCountersExact(t *testing.T) {
	sim := des.NewSimulator(1)
	log := NewCappedLog(sim, 3, 4)
	call := &simnet.Call{}
	for i := 0; i < 1000; i++ {
		log.Delivered("apache", call)
	}
	for i := 0; i < 300; i++ {
		log.Delivered("tomcat", call)
	}
	log.Dropped("apache", call)
	log.Dropped("apache", call)

	if got := log.CountOf(KindDelivered, "apache"); got != 1000 {
		t.Fatalf("delivered@apache = %d, want 1000", got)
	}
	if got := log.CountOf(KindDelivered, "tomcat"); got != 300 {
		t.Fatalf("delivered@tomcat = %d, want 300", got)
	}
	if got := log.CountOf(KindDropped, "apache"); got != 2 {
		t.Fatalf("dropped@apache = %d, want 2", got)
	}
	want := []EventCount{
		{Kind: KindDelivered, Server: "apache", Count: 1000},
		{Kind: KindDelivered, Server: "tomcat", Count: 300},
		{Kind: KindDropped, Server: "apache", Count: 2},
	}
	got := log.Counters()
	if len(got) != len(want) {
		t.Fatalf("Counters = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Counters[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestUncappedCountersExact checks the tally is maintained on the default
// log too, so consumers can switch retention without changing queries.
func TestUncappedCountersExact(t *testing.T) {
	sim := des.NewSimulator(1)
	log := NewLog(sim)
	call := &simnet.Call{}
	log.Delivered("apache", call)
	log.Dropped("apache", call)
	if log.Capped() {
		t.Fatal("NewLog must be uncapped")
	}
	if log.CountOf(KindDelivered, "apache") != 1 || log.CountOf(KindDropped, "apache") != 1 {
		t.Fatalf("uncapped counters = %v", log.Counters())
	}
	if log.CountOf(KindGaveUp, "nowhere") != 0 {
		t.Fatal("missing cell must count 0")
	}
}

// TestCappedLogMergedOrder pins the (time, insertion) ordering of the
// merged view: retained events come back in the original interleaving
// even though drops and delivered exemplars live in separate stores.
func TestCappedLogMergedOrder(t *testing.T) {
	sim := des.NewSimulator(1)
	log := NewCappedLog(sim, 1, 100) // capacity above volume: nothing evicted
	call := &simnet.Call{}
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * time.Second
		sim.Schedule(at, func() {
			log.Delivered("apache", call)
			log.Dropped("apache", call)
			log.Delivered("tomcat", call)
		})
	}
	if err := sim.Run(10 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	evs := log.Events()
	if len(evs) != 15 {
		t.Fatalf("events = %d, want 15", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of time order at %d: %v after %v", i, evs[i].At, evs[i-1].At)
		}
	}
	// Within each second the original interleaving survives the merge.
	for i := 0; i < 5; i++ {
		w := evs[3*i : 3*i+3]
		if w[0].Kind != KindDelivered || w[0].Server != "apache" ||
			w[1].Kind != KindDropped ||
			w[2].Kind != KindDelivered || w[2].Server != "tomcat" {
			t.Fatalf("window %d interleaving = %+v", i, w)
		}
	}
}

// TestCappedLogDeterministicSampling pins that two capped logs fed the
// same stream with the same seed retain identical exemplars — the
// property that keeps traced runs byte-identical across repeats.
func TestCappedLogDeterministicSampling(t *testing.T) {
	build := func() []Event {
		sim := des.NewSimulator(1)
		log := NewCappedLog(sim, 99, 8)
		call := &simnet.Call{}
		for i := 0; i < 400; i++ {
			log.Delivered("apache", call)
		}
		return log.Events()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("exemplar %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestCappedLogZeroCapacityFallsBack pins the capacity<=0 escape hatch.
func TestCappedLogZeroCapacityFallsBack(t *testing.T) {
	sim := des.NewSimulator(1)
	log := NewCappedLog(sim, 1, 0)
	if log.Capped() {
		t.Fatal("capacity 0 must fall back to an uncapped log")
	}
	call := &simnet.Call{}
	for i := 0; i < 100; i++ {
		log.Delivered("apache", call)
	}
	if got := len(log.Events()); got != 100 {
		t.Fatalf("uncapped fallback retained %d events, want 100", got)
	}
}

// TestCappedLogAnalyzerSeesAllDrops checks the analysis-layer contract:
// the CTQO analyzer's drop correlation runs on the exact drop set even
// when delivered events are sampled away.
func TestCappedLogAnalyzerSeesAllDrops(t *testing.T) {
	sim := des.NewSimulator(1)
	log := NewCappedLog(sim, 5, 2)
	call := &simnet.Call{}
	for i := 0; i < 50; i++ {
		log.Delivered("apache", call)
	}
	for i := 0; i < 7; i++ {
		log.Dropped("apache", call)
	}
	mon := metrics.NewMonitor(sim, 50*time.Millisecond)
	a := &Analyzer{Tiers: []string{"apache"}, TierOfVM: map[string]string{}}
	report := a.Analyze(mon, nil, log)
	if report.TotalDrops != 7 {
		t.Fatalf("TotalDrops = %d, want 7 (drops are never sampled)", report.TotalDrops)
	}
}
