// Package trace implements the paper's micro-level event analysis
// (Section IV): messages exchanged between servers are timestamped at
// millisecond-or-better resolution, millibottleneck intervals are detected
// from the fine-grained resource timelines, and the two are correlated into
// a causal report that classifies each episode as upstream or downstream
// Cross-Tier Queue Overflow and attributes the dropped packets.
package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/metrics"
	"ctqosim/internal/simnet"
	"ctqosim/internal/workload"
)

// Kind enumerates traced transport events.
type Kind int

// Event kinds, in lifecycle order.
const (
	KindDelivered Kind = iota + 1
	KindDropped
	KindRetransmitted
	KindGaveUp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDelivered:
		return "delivered"
	case KindDropped:
		return "dropped"
	case KindRetransmitted:
		return "retransmitted"
	case KindGaveUp:
		return "gave-up"
	default:
		return "unknown"
	}
}

// Event is one timestamped transport observation.
type Event struct {
	// At is the simulated time of the event.
	At time.Duration
	// Kind is what happened.
	Kind Kind
	// Server is the destination involved.
	Server string
	// RequestID identifies the end-to-end request, if the payload was a
	// workload request.
	RequestID uint64
	// Attempt is the delivery attempt number at the time of the event.
	Attempt int
}

// Log records transport events; it implements simnet.Listener, so it plugs
// directly into a Transport.
//
// The default log retains every event. A capped log (NewCappedLog) bounds
// memory the way span.Sampler bounds trace memory: the tail-relevant
// events — drops, retransmissions, give-ups, the ones the CTQO analysis
// must explain — are kept exactly, while the high-volume delivered events
// flow through a seeded fixed-capacity reservoir of exemplars. Exact
// per-kind/per-server counters are maintained in both modes, so counts
// never degrade even when the delivered events themselves are sampled.
type Log struct {
	sim    *des.Simulator
	events []Event

	// Capped-mode state: exact holds every non-delivered event, reservoir
	// a seeded Algorithm R sample of delivered ones; seq is the insertion
	// counter that keeps merged output in original FIFO order.
	capacity      int
	rng           *rand.Rand
	exact         []sampledEvent
	reservoir     []sampledEvent
	seenDelivered int64
	seq           uint64

	// counts is the always-exact per-kind/per-server event tally.
	counts map[Kind]map[string]int64
}

// sampledEvent tags an event with its insertion sequence so capped-mode
// merges reproduce the original interleaving.
type sampledEvent struct {
	ev  Event
	seq uint64
}

var _ simnet.Listener = (*Log)(nil)

// NewLog creates an event log bound to the simulator's clock, retaining
// every event.
func NewLog(sim *des.Simulator) *Log {
	return &Log{sim: sim, counts: make(map[Kind]map[string]int64)}
}

// NewCappedLog creates a bounded event log: non-delivered events are kept
// exactly (their volume is O(drops), the quantity under study), delivered
// events are reservoir-sampled to at most capacity exemplars using an
// independent RNG seeded with seed. Per-kind/per-server counters stay
// exact. capacity <= 0 falls back to an uncapped log.
func NewCappedLog(sim *des.Simulator, seed int64, capacity int) *Log {
	l := NewLog(sim)
	if capacity > 0 {
		l.capacity = capacity
		l.rng = rand.New(rand.NewSource(seed))
	}
	return l
}

// Dropped implements simnet.Listener.
func (l *Log) Dropped(dst string, call *simnet.Call) { l.add(KindDropped, dst, call) }

// Retransmitted implements simnet.Listener.
func (l *Log) Retransmitted(dst string, call *simnet.Call) { l.add(KindRetransmitted, dst, call) }

// Delivered implements simnet.Listener.
func (l *Log) Delivered(dst string, call *simnet.Call) { l.add(KindDelivered, dst, call) }

// GaveUp implements simnet.Listener.
func (l *Log) GaveUp(dst string, call *simnet.Call) { l.add(KindGaveUp, dst, call) }

// Capped reports whether delivered events are reservoir-sampled.
func (l *Log) Capped() bool { return l.capacity > 0 }

// Events returns the retained events in time order. For a capped log
// that is every non-delivered event plus the delivered exemplars.
func (l *Log) Events() []Event { return l.all() }

// EventsOfKind filters the log by kind. Non-delivered kinds are complete
// even on a capped log.
func (l *Log) EventsOfKind(k Kind) []Event {
	var out []Event
	for _, e := range l.all() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// all returns the retained events in (time, insertion) order. Uncapped
// logs return the append-order slice unchanged — zero cost, byte-stable.
func (l *Log) all() []Event {
	if !l.Capped() {
		return l.events
	}
	merged := make([]sampledEvent, 0, len(l.exact)+len(l.reservoir))
	merged = append(merged, l.exact...)
	merged = append(merged, l.reservoir...)
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].ev.At != merged[j].ev.At {
			return merged[i].ev.At < merged[j].ev.At
		}
		return merged[i].seq < merged[j].seq
	})
	out := make([]Event, len(merged))
	for i, se := range merged {
		out[i] = se.ev
	}
	return out
}

func (l *Log) add(k Kind, dst string, call *simnet.Call) {
	ev := Event{At: l.sim.Now(), Kind: k, Server: dst, Attempt: call.Attempts}
	if req, ok := call.Payload.(*workload.Request); ok {
		ev.RequestID = req.ID
	}
	byServer := l.counts[k]
	if byServer == nil {
		byServer = make(map[string]int64)
		l.counts[k] = byServer
	}
	byServer[dst]++
	if !l.Capped() {
		l.events = append(l.events, ev)
		return
	}
	se := sampledEvent{ev: ev, seq: l.seq}
	l.seq++
	if k != KindDelivered {
		l.exact = append(l.exact, se)
		return
	}
	l.seenDelivered++
	if len(l.reservoir) < l.capacity {
		l.reservoir = append(l.reservoir, se)
		return
	}
	// Algorithm R, as in span.Sampler: replace a random slot with
	// probability capacity/seen.
	if j := l.rng.Int63n(l.seenDelivered); j < int64(l.capacity) {
		l.reservoir[j] = se
	}
}

// EventCount is one (kind, server) cell of the exact event tally.
type EventCount struct {
	// Kind is the event kind.
	Kind Kind
	// Server is the destination server.
	Server string
	// Count is how many such events occurred (exact in both modes).
	Count int64
}

// Counters returns the exact per-kind/per-server event tally, ordered by
// kind then server name.
func (l *Log) Counters() []EventCount {
	var out []EventCount
	for _, k := range []Kind{KindDelivered, KindDropped, KindRetransmitted, KindGaveUp} {
		byServer := l.counts[k]
		names := make([]string, 0, len(byServer))
		for s := range byServer {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			out = append(out, EventCount{Kind: k, Server: s, Count: byServer[s]})
		}
	}
	return out
}

// CountOf returns the exact number of events of one kind at one server.
func (l *Log) CountOf(k Kind, server string) int64 { return l.counts[k][server] }

// Bottleneck is a detected millibottleneck: a sub-second (or slightly
// longer) interval during which a VM was saturated or stalled.
type Bottleneck struct {
	// VM names the saturated virtual machine.
	VM string
	// Start and End bound the saturated interval.
	Start, End time.Duration
	// IOWait marks stalls detected from the I/O-wait series rather than
	// the run-queue series.
	IOWait bool
}

// Duration returns the bottleneck length.
func (b Bottleneck) Duration() time.Duration { return b.End - b.Start }

// DetectorConfig tunes millibottleneck detection.
type DetectorConfig struct {
	// Threshold is the saturation level (0..1]; zero defaults to 0.95.
	Threshold float64
	// MinDuration filters out single-sample blips; zero defaults to 100ms.
	MinDuration time.Duration
	// MaxDuration separates millibottlenecks from persistent saturation;
	// zero defaults to 5s.
	MaxDuration time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.95
	}
	if c.MinDuration <= 0 {
		c.MinDuration = 100 * time.Millisecond
	}
	if c.MaxDuration <= 0 {
		c.MaxDuration = 5 * time.Second
	}
	return c
}

// DetectBottlenecks scans a utilization (or I/O-wait) series for saturated
// runs that qualify as millibottlenecks.
func DetectBottlenecks(vm string, s *metrics.Series, ioWait bool, cfg DetectorConfig) []Bottleneck {
	cfg = cfg.withDefaults()
	if s == nil || s.Interval <= 0 {
		return nil
	}
	var out []Bottleneck
	runStart := -1
	flush := func(endIdx int) {
		if runStart < 0 {
			return
		}
		b := Bottleneck{
			VM:     vm,
			Start:  time.Duration(runStart) * s.Interval,
			End:    time.Duration(endIdx) * s.Interval,
			IOWait: ioWait,
		}
		if b.Duration() >= cfg.MinDuration && b.Duration() <= cfg.MaxDuration {
			out = append(out, b)
		}
		runStart = -1
	}
	for i, v := range s.Values {
		if v >= cfg.Threshold {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		flush(i)
	}
	flush(len(s.Values))
	return out
}

// Direction classifies a CTQO episode.
type Direction int

// CTQO directions.
const (
	// DirectionNone means the millibottleneck caused no drops.
	DirectionNone Direction = iota
	// DirectionUpstream means a server upstream of the bottleneck dropped
	// packets (the paper's Figs. 3 and 5).
	DirectionUpstream
	// DirectionDownstream means the bottleneck's own tier or a tier below
	// it dropped packets (the paper's Figs. 7–9).
	DirectionDownstream
	// DirectionBoth marks episodes with drops on both sides.
	DirectionBoth
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirectionUpstream:
		return "upstream CTQO"
	case DirectionDownstream:
		return "downstream CTQO"
	case DirectionBoth:
		return "upstream+downstream CTQO"
	case DirectionNone:
		fallthrough
	default:
		return "no CTQO"
	}
}

// Episode correlates one millibottleneck with the drops it caused.
type Episode struct {
	// Bottleneck is the originating millibottleneck.
	Bottleneck Bottleneck
	// Drops counts dropped packets per server within the correlation
	// window.
	Drops map[string]int
	// Direction classifies the episode.
	Direction Direction
}

// Analyzer performs the correlation between bottlenecks and drop events.
type Analyzer struct {
	// Tiers lists server names in invocation order (client side first),
	// e.g. ["apache", "tomcat", "mysql"].
	Tiers []string
	// TierOfVM maps each VM name to the tier (server name) it hosts.
	TierOfVM map[string]string
	// Grace extends the correlation window after a bottleneck ends; zero
	// defaults to 500ms. Queue overflow trails the saturation slightly.
	Grace time.Duration
	// Detector tunes bottleneck detection.
	Detector DetectorConfig
}

const defaultGrace = 500 * time.Millisecond

// Analyze detects millibottlenecks on the monitored VMs and correlates
// them with the drop events in the log.
func (a *Analyzer) Analyze(mon *metrics.Monitor, vmNames []string, log *Log) *Report {
	var bottlenecks []Bottleneck
	for _, vm := range vmNames {
		bottlenecks = append(bottlenecks,
			DetectBottlenecks(vm, mon.Util(vm), false, a.Detector)...)
		bottlenecks = append(bottlenecks,
			DetectBottlenecks(vm, mon.IOWait(vm), true, a.Detector)...)
	}
	sort.Slice(bottlenecks, func(i, j int) bool {
		return bottlenecks[i].Start < bottlenecks[j].Start
	})

	grace := a.Grace
	if grace <= 0 {
		grace = defaultGrace
	}
	drops := log.EventsOfKind(KindDropped)
	report := &Report{Tiers: a.Tiers}
	for _, b := range bottlenecks {
		ep := Episode{Bottleneck: b, Drops: make(map[string]int)}
		for _, d := range drops {
			if d.At >= b.Start-grace && d.At <= b.End+grace {
				ep.Drops[d.Server]++
			}
		}
		ep.Direction = a.classify(b, ep.Drops)
		report.Episodes = append(report.Episodes, ep)
	}
	report.TotalDrops = len(drops)
	return report
}

func (a *Analyzer) classify(b Bottleneck, drops map[string]int) Direction {
	if len(drops) == 0 {
		return DirectionNone
	}
	origin := a.tierIndex(a.TierOfVM[b.VM])
	up, down := false, false
	for srv := range drops {
		idx := a.tierIndex(srv)
		if idx < 0 || origin < 0 {
			continue
		}
		if idx < origin {
			up = true
		} else {
			down = true
		}
	}
	switch {
	case up && down:
		return DirectionBoth
	case up:
		return DirectionUpstream
	case down:
		return DirectionDownstream
	default:
		return DirectionNone
	}
}

func (a *Analyzer) tierIndex(name string) int {
	for i, t := range a.Tiers {
		if t == name {
			return i
		}
	}
	return -1
}

// Report is the outcome of the micro-level event analysis.
type Report struct {
	// Tiers echoes the analyzed invocation chain.
	Tiers []string
	// Episodes lists each millibottleneck with its correlated drops.
	Episodes []Episode
	// TotalDrops counts all dropped packets in the trace.
	TotalDrops int
}

// CTQOEpisodes returns only episodes that caused drops.
func (r *Report) CTQOEpisodes() []Episode {
	var out []Episode
	for _, e := range r.Episodes {
		if e.Direction != DirectionNone {
			out = append(out, e)
		}
	}
	return out
}

// String renders the causal report in a human-readable form.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invocation chain: %s\n", strings.Join(r.Tiers, " -> "))
	fmt.Fprintf(&b, "millibottleneck episodes: %d, total dropped packets: %d\n",
		len(r.Episodes), r.TotalDrops)
	for i, e := range r.Episodes {
		kind := "CPU"
		if e.Bottleneck.IOWait {
			kind = "I/O"
		}
		fmt.Fprintf(&b, "  [%d] %s millibottleneck in %s at %v (%v): %s",
			i, kind, e.Bottleneck.VM,
			e.Bottleneck.Start.Round(time.Millisecond),
			e.Bottleneck.Duration().Round(time.Millisecond),
			e.Direction)
		if len(e.Drops) > 0 {
			servers := make([]string, 0, len(e.Drops))
			for s := range e.Drops {
				servers = append(servers, s)
			}
			sort.Strings(servers)
			parts := make([]string, 0, len(servers))
			for _, s := range servers {
				parts = append(parts, fmt.Sprintf("%s=%d", s, e.Drops[s]))
			}
			fmt.Fprintf(&b, " (drops: %s)", strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
