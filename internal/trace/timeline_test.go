package trace

import (
	"strings"
	"testing"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/simnet"
	"ctqosim/internal/workload"
)

// buildLog records a small fixed scenario: request 7 dropped twice then
// delivered; request 9 delivered immediately.
func buildLog(t *testing.T) *Log {
	t.Helper()
	sim := des.NewSimulator(1)
	log := NewLog(sim)

	call7 := &simnet.Call{Payload: &workload.Request{ID: 7}}
	call9 := &simnet.Call{Payload: &workload.Request{ID: 9}}

	call7.Attempts = 1
	log.Dropped("apache", call7)
	log.Retransmitted("apache", call7)
	call9.Attempts = 1
	log.Delivered("apache", call9)
	sim.Schedule(3*time.Second, func() {
		call7.Attempts = 2
		log.Dropped("apache", call7)
		log.Retransmitted("apache", call7)
	})
	sim.Schedule(6*time.Second, func() {
		call7.Attempts = 3
		log.Delivered("apache", call7)
	})
	if err := sim.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return log
}

func TestTimeline(t *testing.T) {
	log := buildLog(t)
	tl := log.Timeline(7)
	if len(tl) != 5 {
		t.Fatalf("timeline(7) = %d events, want 5", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].At < tl[i-1].At {
			t.Fatal("timeline out of order")
		}
	}
	if tl[0].Kind != KindDropped || tl[len(tl)-1].Kind != KindDelivered {
		t.Fatalf("timeline shape wrong: %+v", tl)
	}
	if got := log.Timeline(9); len(got) != 1 {
		t.Fatalf("timeline(9) = %d events, want 1", len(got))
	}
	if got := log.Timeline(12345); got != nil {
		t.Fatalf("unknown request timeline = %v, want nil", got)
	}
}

func TestRequestsWithDrops(t *testing.T) {
	log := buildLog(t)
	ids := log.RequestsWithDrops()
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("RequestsWithDrops = %v, want [7]", ids)
	}
}

func TestSlowestByAttempts(t *testing.T) {
	log := buildLog(t)
	ids := log.SlowestByAttempts(10)
	if len(ids) != 2 || ids[0] != 7 || ids[1] != 9 {
		t.Fatalf("SlowestByAttempts = %v, want [7 9]", ids)
	}
	if got := log.SlowestByAttempts(1); len(got) != 1 || got[0] != 7 {
		t.Fatalf("SlowestByAttempts(1) = %v", got)
	}
}

func TestFormatTimeline(t *testing.T) {
	log := buildLog(t)
	s := FormatTimeline(log.Timeline(7))
	for _, want := range []string{"req 7:", "dropped at apache", "delivered to apache", "attempt 3", "6s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted timeline missing %q:\n%s", want, s)
		}
	}
	if FormatTimeline(nil) != "(no events)" {
		t.Fatal("empty timeline format wrong")
	}
}

func TestWriteCSV(t *testing.T) {
	log := buildLog(t)
	var buf strings.Builder
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+len(log.Events()) {
		t.Fatalf("rows = %d, want header + %d", len(lines), len(log.Events()))
	}
	if lines[0] != "time_s,kind,server,request_id,attempt" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(out, "dropped,apache,7,1") {
		t.Fatalf("missing drop row:\n%s", out)
	}
}

func TestDropsPerWindow(t *testing.T) {
	log := buildLog(t)
	// Drops for request 7 at t=0 and t=3s; 1s windows over 10s.
	got := log.DropsPerWindow(int64(time.Second), int64(10*time.Second))
	apache := got["apache"]
	if apache == nil || len(apache) != 10 {
		t.Fatalf("series = %v", got)
	}
	if apache[0] != 1 || apache[3] != 1 || apache[1] != 0 {
		t.Fatalf("apache drops = %v", apache)
	}
	if log.DropsPerWindow(0, 10) != nil {
		t.Fatal("invalid window accepted")
	}
}
