package trace

import (
	"bytes"
	"encoding/csv"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"
)

// FuzzWriteCSV drives the event-log CSV exporter with adversarial server
// names — commas, quotes, newlines, raw unicode — and checks that the
// output stays a well-formed 5-column CSV whose rows round-trip through
// encoding/csv back to the original values. This is the quoting path the
// tail-analysis tooling depends on when server names come from user
// configuration.
func FuzzWriteCSV(f *testing.F) {
	f.Add("mysql", int64(1_500_000_000), uint64(7), 2)
	f.Add("app,tier", int64(0), uint64(0), 0)
	f.Add(`quo"ted`, int64(-3), uint64(42), -1)
	f.Add("line\nbreak", int64(999_999_999_999), uint64(1), 10)
	f.Add("crlf\r\nname", int64(50_000), uint64(123456789), 3)
	f.Add("ünïcode-服务器", int64(1), uint64(9), 1)
	f.Fuzz(func(t *testing.T, server string, at int64, reqID uint64, attempt int) {
		l := &Log{events: []Event{
			{At: time.Duration(at), Kind: KindDropped, Server: server, RequestID: reqID, Attempt: attempt},
			{At: time.Duration(at), Kind: KindRetransmitted, Server: server, RequestID: reqID + 1, Attempt: attempt + 1},
		}}
		var buf bytes.Buffer
		if err := l.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}

		r := csv.NewReader(&buf)
		r.FieldsPerRecord = 5
		header, err := r.Read()
		if err != nil {
			t.Fatalf("read header: %v", err)
		}
		if header[0] != "time_s" || header[4] != "attempt" {
			t.Fatalf("unexpected header %q", header)
		}
		rows, err := r.ReadAll()
		if err != nil {
			t.Fatalf("re-parse rows: %v", err)
		}
		if len(rows) != len(l.events) {
			t.Fatalf("got %d rows, want %d", len(rows), len(l.events))
		}
		// encoding/csv normalizes \r\n inside quoted fields to \n on
		// read; apply the same normalization to the expectation.
		wantServer := strings.ReplaceAll(server, "\r\n", "\n")
		for i, row := range rows {
			ev := l.events[i]
			if row[1] != ev.Kind.String() {
				t.Errorf("row %d kind = %q, want %q", i, row[1], ev.Kind.String())
			}
			if row[2] != wantServer {
				t.Errorf("row %d server = %q, want %q", i, row[2], wantServer)
			}
			if row[3] != strconv.FormatUint(ev.RequestID, 10) {
				t.Errorf("row %d request_id = %q, want %d", i, row[3], ev.RequestID)
			}
			if row[4] != strconv.Itoa(ev.Attempt) {
				t.Errorf("row %d attempt = %q, want %d", i, row[4], ev.Attempt)
			}
			if _, err := strconv.ParseFloat(row[0], 64); err != nil {
				t.Errorf("row %d time_s %q is not a float: %v", i, row[0], err)
			}
		}

		// The exporter must be deterministic: a second export of the same
		// log is byte-identical.
		var again bytes.Buffer
		if err := l.WriteCSV(&again); err != nil {
			t.Fatalf("second WriteCSV: %v", err)
		}
		var first bytes.Buffer
		if err := l.WriteCSV(&first); err != nil {
			t.Fatalf("third WriteCSV: %v", err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Error("WriteCSV output differs between identical exports")
		}
	})
}

// FuzzWriteCSVError checks the error path: a writer that fails mid-way
// must surface the error rather than silently truncating.
func FuzzWriteCSVError(f *testing.F) {
	f.Add("db", 1)
	f.Add("very-long-server-name-to-cross-buffer-boundaries", 40)
	f.Fuzz(func(t *testing.T, server string, n int) {
		if n < 0 || n > 256 {
			t.Skip()
		}
		events := make([]Event, n)
		for i := range events {
			events[i] = Event{At: time.Duration(i), Kind: KindDropped, Server: server, RequestID: uint64(i)}
		}
		l := &Log{events: events}
		if err := l.WriteCSV(failAfter{limit: 8}); err == nil {
			t.Error("WriteCSV on a failing writer returned nil error")
		}
	})
}

// failAfter accepts limit bytes, then fails every write.
type failAfter struct{ limit int }

func (w failAfter) Write(p []byte) (int, error) {
	if len(p) > w.limit {
		return 0, io.ErrShortWrite
	}
	return len(p), nil
}
