package cpu

import (
	"testing"
	"time"

	"ctqosim/internal/des"
)

// BenchmarkProcessorSharing measures job churn through a contended
// two-VM node — the hot path of every experiment.
func BenchmarkProcessorSharing(b *testing.B) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	a := node.AddVM("a", 1, 1)
	c := node.AddVM("b", 1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vm := a
		if i%2 == 0 {
			vm = c
		}
		vm.Submit(100*time.Microsecond, nil)
		if i%64 == 0 {
			for sim.Pending() > 0 && sim.Step() {
			}
		}
	}
	for sim.Pending() > 0 && sim.Step() {
	}
}
