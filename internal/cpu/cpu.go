// Package cpu models physical compute nodes whose cores are shared by
// virtual machines, as in the paper's ESXi consolidation testbed (Fig. 2/13).
//
// A Node has a fixed number of cores. VMs placed on the node receive CPU in
// proportion to their weights (the ESXi "CPU shares"), capped by their vCPU
// count, with any unused share redistributed to the other runnable VMs
// (water-filling). Within a VM, all runnable jobs share the VM's allocation
// equally — generalized processor sharing, the standard fluid approximation
// of a time-slicing scheduler.
//
// This is the substrate on which millibottlenecks arise: when a co-located
// bursty VM becomes runnable, the steady VM's allocation drops and its
// run queue backs up for a sub-second interval, exactly the mechanism in
// Section IV-A of the paper. VMs also support Block, an I/O stall during
// which jobs make no progress (Section IV-B's log-flush millibottleneck).
package cpu

import (
	"fmt"
	"math"
	"time"

	"ctqosim/internal/des"
)

// epsilon below which a job's remaining demand counts as complete, in
// seconds. One nanosecond of CPU demand is far below any modeled quantum.
const doneEpsilon = 1e-9

// Policy selects how a node's cores are divided among its VMs.
type Policy int

// Scheduling policies.
const (
	// WeightedVM divides cores among runnable VMs in proportion to their
	// weights (ESXi-style shares). This is the default.
	WeightedVM Policy = iota + 1
	// JobProportional divides cores in proportion to weight × runnable
	// jobs, modeling thread-proportional time slicing on a consolidated
	// core: a co-tenant that dumps hundreds of runnable threads starves a
	// steady tenant with a handful, effectively stopping it — the
	// millibottleneck behaviour the paper observes during SysBursty's
	// bursts (Section IV-A).
	JobProportional
)

// Node is a physical machine with a fixed core capacity shared by VMs.
type Node struct {
	sim    *des.Simulator
	name   string
	cores  float64
	policy Policy
	vms    []*VM

	lastUpdate time.Duration
	completion *des.Event
}

// NewNode creates a node with the given core capacity (1.0 = one core).
func NewNode(sim *des.Simulator, name string, cores float64) *Node {
	if cores <= 0 {
		cores = 1
	}
	return &Node{sim: sim, name: name, cores: cores, policy: WeightedVM}
}

// SetPolicy switches the node's scheduling policy. Call before submitting
// work; switching mid-run applies from the next scheduling event.
func (n *Node) SetPolicy(p Policy) {
	n.advance()
	n.policy = p
	n.reschedule()
}

// PolicyInUse returns the node's current scheduling policy.
func (n *Node) PolicyInUse() Policy { return n.policy }

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Cores returns the node's core capacity.
func (n *Node) Cores() float64 { return n.cores }

// AddVM places a VM on the node. Weight is the relative CPU share; vcpus
// caps the cores the VM may use at once.
func (n *Node) AddVM(name string, weight, vcpus float64) *VM {
	if weight <= 0 {
		weight = 1
	}
	if vcpus <= 0 {
		vcpus = 1
	}
	vm := &VM{node: n, name: name, weight: weight, vcpus: vcpus}
	n.vms = append(n.vms, vm)
	return vm
}

// VM is a virtual machine placed on a Node. Jobs submitted to a VM consume
// simulated CPU time under processor sharing.
type VM struct {
	node   *Node
	name   string
	weight float64
	vcpus  float64

	jobs    []*Job
	blocked int // nesting depth of active Block intervals

	// Accumulators, updated lazily by node.advance. All are integrals over
	// simulated time and are sampled by the metrics monitor.
	runnableTime time.Duration // time with >=1 runnable job and not blocked
	blockedTime  time.Duration // time spent blocked (I/O wait)
	cpuSeconds   float64       // core-seconds actually consumed
}

// Name returns the VM's name.
func (v *VM) Name() string { return v.name }

// Node returns the node hosting this VM.
func (v *VM) Node() *Node { return v.node }

// ActiveJobs returns the number of jobs currently runnable or blocked on
// the VM.
func (v *VM) ActiveJobs() int { return len(v.jobs) }

// Usage is a snapshot of a VM's accumulated CPU accounting.
type Usage struct {
	// Runnable is the total time the VM had at least one runnable job and
	// was not blocked. The ratio of Runnable deltas to wall time is the
	// "utilization" plotted in the paper's timelines: a saturated VM is
	// pinned at 100%.
	Runnable time.Duration
	// Blocked is the total time the VM was stalled on I/O.
	Blocked time.Duration
	// CPUSeconds is the core-seconds of actual CPU consumed.
	CPUSeconds float64
}

// Usage returns the VM's accumulated accounting as of the current simulated
// time.
func (v *VM) Usage() Usage {
	v.node.advance()
	return Usage{
		Runnable:   v.runnableTime,
		Blocked:    v.blockedTime,
		CPUSeconds: v.cpuSeconds,
	}
}

// Job is an outstanding unit of CPU demand on a VM.
type Job struct {
	vm        *VM
	remaining float64 // seconds of CPU demand left
	done      func()
	finished  bool
}

// Submit queues demand seconds of CPU work on the VM; done fires when the
// work completes. Zero or negative demand completes on the next event
// (still asynchronously, never re-entrantly).
func (v *VM) Submit(demand time.Duration, done func()) *Job {
	v.node.advance()
	j := &Job{vm: v, remaining: demand.Seconds(), done: done}
	if j.remaining <= doneEpsilon {
		// Keep even zero-demand jobs asynchronous: a sliver of demand makes
		// the completion fire from the event loop, never inside Submit.
		j.remaining = 2 * doneEpsilon
	}
	v.jobs = append(v.jobs, j)
	v.node.reschedule()
	return j
}

// Block stalls the VM for d: all of its jobs stop progressing and the time
// is accounted as I/O wait. Overlapping blocks nest; the VM resumes when
// all blocks end.
func (v *VM) Block(d time.Duration) {
	if d <= 0 {
		return
	}
	v.node.advance()
	v.blocked++
	v.node.sim.Schedule(d, func() {
		v.node.advance()
		v.blocked--
		v.node.reschedule()
	})
	v.node.reschedule()
}

// Blocked reports whether the VM is currently stalled on I/O.
func (v *VM) Blocked() bool { return v.blocked > 0 }

// Stall blocks the VM indefinitely — the scenario engine's kill_tier: all
// jobs stop progressing until Resume. Stalls nest with Block and with
// each other; each Stall needs its own Resume.
func (v *VM) Stall() {
	v.node.advance()
	v.blocked++
	v.node.reschedule()
}

// Resume ends one Stall. Resuming a VM that is not stalled is a no-op, so
// a restore script cannot drive the nesting depth negative.
func (v *VM) Resume() {
	if v.blocked == 0 {
		return
	}
	v.node.advance()
	v.blocked--
	v.node.reschedule()
}

// advance integrates all job progress and accounting from lastUpdate to the
// current simulated time, using the allocation that has been in effect over
// that interval.
func (n *Node) advance() {
	now := n.sim.Now()
	elapsed := (now - n.lastUpdate).Seconds()
	if elapsed <= 0 {
		n.lastUpdate = now
		return
	}
	alloc := n.allocations()
	for i, vm := range n.vms {
		if vm.blocked > 0 {
			vm.blockedTime += now - n.lastUpdate
			continue
		}
		if len(vm.jobs) == 0 {
			continue
		}
		vm.runnableTime += now - n.lastUpdate
		rate := alloc[i] / float64(len(vm.jobs))
		for _, j := range vm.jobs {
			j.remaining -= rate * elapsed
		}
		vm.cpuSeconds += alloc[i] * elapsed
	}
	n.lastUpdate = now
}

// reschedule completes any finished jobs and arms the next completion event.
// Done callbacks run after internal state is consistent; they may submit new
// work re-entrantly.
func (n *Node) reschedule() {
	var completed []*Job
	for _, vm := range n.vms {
		if vm.blocked > 0 {
			continue
		}
		kept := vm.jobs[:0]
		for _, j := range vm.jobs {
			if j.remaining <= doneEpsilon {
				j.finished = true
				completed = append(completed, j)
			} else {
				kept = append(kept, j)
			}
		}
		// Clear the tail so finished jobs are collectable.
		for i := len(kept); i < len(vm.jobs); i++ {
			vm.jobs[i] = nil
		}
		vm.jobs = kept
	}

	if n.completion != nil {
		n.sim.Cancel(n.completion)
		n.completion = nil
	}
	alloc := n.allocations()
	next := -1.0
	for i, vm := range n.vms {
		if vm.blocked > 0 || len(vm.jobs) == 0 || alloc[i] <= 0 {
			continue
		}
		rate := alloc[i] / float64(len(vm.jobs))
		for _, j := range vm.jobs {
			t := j.remaining / rate
			if next < 0 || t < next {
				next = t
			}
		}
	}
	if next >= 0 {
		n.completion = n.sim.Schedule(durationFromSeconds(next), func() {
			n.completion = nil
			n.advance()
			n.reschedule()
		})
	}

	for _, j := range completed {
		if j.done != nil {
			j.done()
		}
	}
}

// allocations computes the core allocation per VM: proportional to weight
// among runnable VMs, capped at vcpus, with excess redistributed.
func (n *Node) allocations() []float64 {
	alloc := make([]float64, len(n.vms))
	remaining := n.cores
	active := make([]int, 0, len(n.vms))
	for i, vm := range n.vms {
		if vm.blocked == 0 && len(vm.jobs) > 0 {
			active = append(active, i)
		}
	}
	// effWeight is the VM's share under the active policy.
	effWeight := func(vm *VM) float64 {
		if n.policy == JobProportional {
			return vm.weight * float64(len(vm.jobs))
		}
		return vm.weight
	}
	// Water-filling: repeatedly grant proportional shares; VMs that hit
	// their vCPU cap are fixed and their surplus redistributed.
	for len(active) > 0 && remaining > 1e-12 {
		var totalWeight float64
		for _, i := range active {
			totalWeight += effWeight(n.vms[i])
		}
		capped := false
		stillActive := active[:0]
		for _, i := range active {
			vm := n.vms[i]
			share := remaining * effWeight(vm) / totalWeight
			if alloc[i]+share >= vm.vcpus {
				capped = true
				alloc[i] = vm.vcpus
			} else {
				stillActive = append(stillActive, i)
			}
		}
		if !capped {
			for _, i := range stillActive {
				vm := n.vms[i]
				alloc[i] += remaining * effWeight(vm) / totalWeight
			}
			break
		}
		// Recompute the pool left for uncapped VMs and iterate.
		used := 0.0
		for i := range n.vms {
			found := false
			for _, a := range stillActive {
				if a == i {
					found = true
					break
				}
			}
			if !found {
				used += alloc[i]
			} else {
				alloc[i] = 0
			}
		}
		remaining = n.cores - used
		active = stillActive
	}
	return alloc
}

// durationFromSeconds converts to a Duration, rounding up so a positive
// remaining demand always schedules strictly in the future. Truncating here
// could produce a zero-delay completion event that re-fires at the same
// timestamp forever without making progress.
func durationFromSeconds(s float64) time.Duration {
	if s <= 0 {
		return time.Nanosecond
	}
	return time.Duration(math.Ceil(s * float64(time.Second)))
}

// String implements fmt.Stringer for debugging.
func (v *VM) String() string {
	return fmt.Sprintf("vm(%s jobs=%d blocked=%v)", v.name, len(v.jobs), v.blocked > 0)
}
