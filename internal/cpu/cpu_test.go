package cpu

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ctqosim/internal/des"
)

func TestSingleJobRunsAtFullSpeed(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	var doneAt time.Duration
	vm.Submit(100*time.Millisecond, func() { doneAt = sim.Now() })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !within(doneAt, 100*time.Millisecond, time.Microsecond) {
		t.Fatalf("job finished at %v, want ~100ms", doneAt)
	}
}

func TestTwoJobsShareVM(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	var first, second time.Duration
	vm.Submit(100*time.Millisecond, func() { first = sim.Now() })
	vm.Submit(100*time.Millisecond, func() { second = sim.Now() })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Two equal jobs sharing one core each take 200ms.
	if !within(first, 200*time.Millisecond, time.Microsecond) ||
		!within(second, 200*time.Millisecond, time.Microsecond) {
		t.Fatalf("jobs finished at %v and %v, want ~200ms each", first, second)
	}
}

func TestUnequalJobsProcessorSharing(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	var short, long time.Duration
	vm.Submit(50*time.Millisecond, func() { short = sim.Now() })
	vm.Submit(150*time.Millisecond, func() { long = sim.Now() })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Short job: shares until it has consumed 50ms at rate 1/2 → done at
	// 100ms. Long job then runs alone: 150-50=100ms left → done at 200ms.
	if !within(short, 100*time.Millisecond, time.Microsecond) {
		t.Fatalf("short finished at %v, want ~100ms", short)
	}
	if !within(long, 200*time.Millisecond, time.Microsecond) {
		t.Fatalf("long finished at %v, want ~200ms", long)
	}
}

func TestTwoVMsEqualWeightShareNode(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	a := node.AddVM("a", 1, 1)
	b := node.AddVM("b", 1, 1)

	var aDone, bDone time.Duration
	a.Submit(100*time.Millisecond, func() { aDone = sim.Now() })
	b.Submit(100*time.Millisecond, func() { bDone = sim.Now() })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !within(aDone, 200*time.Millisecond, time.Microsecond) ||
		!within(bDone, 200*time.Millisecond, time.Microsecond) {
		t.Fatalf("finished at %v / %v, want ~200ms each", aDone, bDone)
	}
}

func TestWeightedShares(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	heavy := node.AddVM("heavy", 3, 1)
	light := node.AddVM("light", 1, 1)

	var heavyDone, lightDone time.Duration
	heavy.Submit(75*time.Millisecond, func() { heavyDone = sim.Now() })
	light.Submit(75*time.Millisecond, func() { lightDone = sim.Now() })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// heavy runs at 3/4 until done: 75ms / 0.75 = 100ms. light has then
	// consumed 25ms; remaining 50ms at full speed → 150ms.
	if !within(heavyDone, 100*time.Millisecond, time.Microsecond) {
		t.Fatalf("heavy finished at %v, want ~100ms", heavyDone)
	}
	if !within(lightDone, 150*time.Millisecond, time.Microsecond) {
		t.Fatalf("light finished at %v, want ~150ms", lightDone)
	}
}

func TestVCPUCapRedistributes(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 2)
	capped := node.AddVM("capped", 10, 1) // huge weight but only 1 vCPU
	other := node.AddVM("other", 1, 2)

	var cappedDone, otherDone time.Duration
	capped.Submit(100*time.Millisecond, func() { cappedDone = sim.Now() })
	other.Submit(100*time.Millisecond, func() { otherDone = sim.Now() })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Both get one full core despite the weight skew.
	if !within(cappedDone, 100*time.Millisecond, time.Microsecond) ||
		!within(otherDone, 100*time.Millisecond, time.Microsecond) {
		t.Fatalf("finished at %v / %v, want ~100ms each", cappedDone, otherDone)
	}
}

func TestIdleVMDonatesShare(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	busy := node.AddVM("busy", 1, 1)
	node.AddVM("idle", 1, 1)

	var doneAt time.Duration
	busy.Submit(100*time.Millisecond, func() { doneAt = sim.Now() })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !within(doneAt, 100*time.Millisecond, time.Microsecond) {
		t.Fatalf("finished at %v, want ~100ms (idle VM must not consume share)", doneAt)
	}
}

func TestBlockStallsProgress(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	var doneAt time.Duration
	vm.Submit(100*time.Millisecond, func() { doneAt = sim.Now() })
	sim.Schedule(50*time.Millisecond, func() { vm.Block(200 * time.Millisecond) })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 50ms progress, 200ms stall, 50ms to finish → 300ms.
	if !within(doneAt, 300*time.Millisecond, time.Microsecond) {
		t.Fatalf("finished at %v, want ~300ms", doneAt)
	}
}

func TestNestedBlocks(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	var doneAt time.Duration
	vm.Submit(100*time.Millisecond, func() { doneAt = sim.Now() })
	sim.Schedule(10*time.Millisecond, func() { vm.Block(100 * time.Millisecond) })
	sim.Schedule(50*time.Millisecond, func() { vm.Block(100 * time.Millisecond) })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Blocked from 10ms to 150ms (second block ends last). 10ms progress
	// before, 90ms after → done at 240ms.
	if !within(doneAt, 240*time.Millisecond, time.Microsecond) {
		t.Fatalf("finished at %v, want ~240ms", doneAt)
	}
}

func TestBlockedVMDonatesCPU(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	a := node.AddVM("a", 1, 1)
	b := node.AddVM("b", 1, 1)

	var bDone time.Duration
	a.Submit(500*time.Millisecond, nil)
	a.Block(time.Second)
	b.Submit(100*time.Millisecond, func() { bDone = sim.Now() })
	if err := sim.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !within(bDone, 100*time.Millisecond, time.Microsecond) {
		t.Fatalf("b finished at %v, want ~100ms while a is blocked", bDone)
	}
}

func TestUsageAccounting(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	vm.Submit(100*time.Millisecond, nil)
	sim.Schedule(500*time.Millisecond, func() {
		u := vm.Usage()
		if !within(u.Runnable, 100*time.Millisecond, time.Microsecond) {
			t.Errorf("Runnable=%v, want ~100ms", u.Runnable)
		}
		if math.Abs(u.CPUSeconds-0.1) > 1e-6 {
			t.Errorf("CPUSeconds=%v, want ~0.1", u.CPUSeconds)
		}
	})
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestUsageBlockedAccounting(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	vm.Block(200 * time.Millisecond)
	sim.Schedule(500*time.Millisecond, func() {
		u := vm.Usage()
		if !within(u.Blocked, 200*time.Millisecond, time.Microsecond) {
			t.Errorf("Blocked=%v, want ~200ms", u.Blocked)
		}
	})
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestConsolidationMillibottleneck(t *testing.T) {
	// The paper's Fig. 3(a) scenario in miniature: a steady VM at ~70%
	// load shares a core with a bursty co-tenant. During the burst the
	// steady VM's throughput halves and its run queue backs up.
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	steady := node.AddVM("steady", 1, 1)
	bursty := node.AddVM("bursty", 1, 1)

	completions := 0
	// Steady stream: one 0.7ms job per 1ms → 70% utilization alone.
	des.NewTicker(sim, time.Millisecond, func(time.Duration) {
		steady.Submit(700*time.Microsecond, func() { completions++ })
	})
	// Burst at t=1s: 400ms of CPU demand dumped at once.
	sim.Schedule(time.Second, func() {
		bursty.Submit(400*time.Millisecond, nil)
	})

	var queueDuringBurst int
	sim.Schedule(1200*time.Millisecond, func() {
		queueDuringBurst = steady.ActiveJobs()
	})
	// The ticker keeps events pending forever, so the horizon is expected.
	if err := sim.Run(3 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if queueDuringBurst < 50 {
		t.Fatalf("steady run queue during burst = %d, want substantial backlog", queueDuringBurst)
	}
	if steady.ActiveJobs() > 5 {
		t.Fatalf("steady queue did not drain after burst: %d", steady.ActiveJobs())
	}
}

func TestZeroDemandCompletesAsync(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	done := false
	vm.Submit(0, func() { done = true })
	if done {
		t.Fatal("zero-demand job completed re-entrantly inside Submit")
	}
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("zero-demand job never completed")
	}
}

func TestSubmitFromDoneCallback(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	var second time.Duration
	vm.Submit(50*time.Millisecond, func() {
		vm.Submit(50*time.Millisecond, func() { second = sim.Now() })
	})
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !within(second, 100*time.Millisecond, time.Microsecond) {
		t.Fatalf("chained job finished at %v, want ~100ms", second)
	}
}

// Property: total CPU-seconds consumed never exceeds cores × elapsed time,
// and all submitted work eventually completes (work conservation).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(demandsMs []uint8, weights [3]uint8) bool {
		sim := des.NewSimulator(11)
		node := NewNode(sim, "n", 1)
		vms := []*VM{
			node.AddVM("a", float64(weights[0]%7)+1, 1),
			node.AddVM("b", float64(weights[1]%7)+1, 1),
			node.AddVM("c", float64(weights[2]%7)+1, 1),
		}
		var totalDemand float64
		completed := 0
		for i, d := range demandsMs {
			dur := time.Duration(d) * time.Millisecond
			if dur == 0 {
				dur = time.Millisecond
			}
			totalDemand += dur.Seconds()
			vms[i%len(vms)].Submit(dur, func() { completed++ })
		}
		if err := sim.Run(10 * time.Minute); err != nil {
			return false
		}
		if completed != len(demandsMs) {
			return false
		}
		var consumed float64
		for _, vm := range vms {
			consumed += vm.Usage().CPUSeconds
		}
		// Consumed work equals submitted demand (within float tolerance),
		// and no more than one core's worth of time elapsed.
		if math.Abs(consumed-totalDemand) > 1e-6*(1+totalDemand) {
			return false
		}
		return consumed <= sim.Now().Seconds()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a job's completion time is never before demand/cores (nothing
// runs faster than the hardware).
func TestPropertySpeedLimit(t *testing.T) {
	f := func(demandsMs []uint8) bool {
		sim := des.NewSimulator(13)
		node := NewNode(sim, "n", 2)
		vm := node.AddVM("vm", 1, 2)
		ok := true
		for _, d := range demandsMs {
			dur := time.Duration(int(d)+1) * time.Millisecond
			minTime := time.Duration(float64(dur) / 2) // 2 cores
			vm.Submit(dur, func() {
				if sim.Now() < minTime {
					ok = false
				}
			})
		}
		if err := sim.Run(10 * time.Minute); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func within(got, want, tol time.Duration) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestJobProportionalPolicyStarvesLightVM(t *testing.T) {
	// The consolidation millibottleneck mechanism: a co-tenant with 400
	// runnable jobs takes nearly the whole core under JobProportional,
	// effectively stopping the steady VM.
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	node.SetPolicy(JobProportional)
	steady := node.AddVM("steady", 1, 1)
	bursty := node.AddVM("bursty", 1, 1)

	var steadyDone time.Duration
	steady.Submit(10*time.Millisecond, func() { steadyDone = sim.Now() })
	for i := 0; i < 400; i++ {
		bursty.Submit(time.Millisecond, nil)
	}
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Steady gets ~1/401 of the core while the burst drains (~400ms), so
	// it finishes far later than its solo 10ms - close to the burst end.
	if steadyDone < 300*time.Millisecond {
		t.Fatalf("steady finished at %v; JobProportional should starve it during the burst", steadyDone)
	}
}

func TestWeightedVMPolicyUnaffectedByJobCount(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	steady := node.AddVM("steady", 1, 1)
	bursty := node.AddVM("bursty", 1, 1)

	var steadyDone time.Duration
	steady.Submit(10*time.Millisecond, func() { steadyDone = sim.Now() })
	for i := 0; i < 400; i++ {
		bursty.Submit(time.Millisecond, nil)
	}
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Default policy: steady holds a 50% share, finishing in ~20ms.
	if !within(steadyDone, 20*time.Millisecond, time.Millisecond) {
		t.Fatalf("steady finished at %v, want ~20ms under WeightedVM", steadyDone)
	}
}

func TestSetPolicyMidRun(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	if node.PolicyInUse() != WeightedVM {
		t.Fatalf("default policy = %v, want WeightedVM", node.PolicyInUse())
	}
	a := node.AddVM("a", 1, 1)
	b := node.AddVM("b", 1, 1)
	a.Submit(100*time.Millisecond, nil)
	for i := 0; i < 9; i++ {
		b.Submit(100*time.Millisecond, nil)
	}
	sim.Schedule(50*time.Millisecond, func() { node.SetPolicy(JobProportional) })
	if err := sim.Run(time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if node.PolicyInUse() != JobProportional {
		t.Fatal("policy did not switch")
	}
	// Work conservation still holds across the switch.
	total := a.Usage().CPUSeconds + b.Usage().CPUSeconds
	if math.Abs(total-1.0) > 1e-6 {
		t.Fatalf("total CPU = %v, want 1.0s", total)
	}
}

func TestStallFreezesUntilResume(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	var doneAt time.Duration
	vm.Submit(100*time.Millisecond, func() { doneAt = sim.Now() })
	// Kill the VM at 50ms, restore it at 450ms: the job should lose 400ms.
	sim.Schedule(50*time.Millisecond, vm.Stall)
	sim.Schedule(450*time.Millisecond, vm.Resume)
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !within(doneAt, 500*time.Millisecond, time.Microsecond) {
		t.Fatalf("job finished at %v, want ~500ms", doneAt)
	}
	if vm.Blocked() {
		t.Fatal("VM still blocked after Resume")
	}
}

func TestStallNestsWithBlock(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	var doneAt time.Duration
	vm.Submit(100*time.Millisecond, func() { doneAt = sim.Now() })
	sim.Schedule(10*time.Millisecond, vm.Stall)
	// A Block that ends while the stall holds must not unfreeze the VM.
	sim.Schedule(20*time.Millisecond, func() { vm.Block(50 * time.Millisecond) })
	sim.Schedule(200*time.Millisecond, vm.Resume)
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 10ms of progress, frozen 10..200ms, then the remaining 90ms.
	if !within(doneAt, 290*time.Millisecond, time.Microsecond) {
		t.Fatalf("job finished at %v, want ~290ms", doneAt)
	}
}

func TestResumeWithoutStallIsNoOp(t *testing.T) {
	sim := des.NewSimulator(1)
	node := NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)

	vm.Resume() // must not drive the nesting depth negative
	var doneAt time.Duration
	vm.Submit(100*time.Millisecond, func() { doneAt = sim.Now() })
	sim.Schedule(10*time.Millisecond, func() { vm.Block(40 * time.Millisecond) })
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The stray Resume must not cancel the later Block's effect.
	if !within(doneAt, 140*time.Millisecond, time.Microsecond) {
		t.Fatalf("job finished at %v, want ~140ms", doneAt)
	}
}
