package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
	"ctqosim/internal/workload"
)

func req(submitted, completed time.Duration, drops ...string) *workload.Request {
	return &workload.Request{Submitted: submitted, Completed: completed, Drops: drops}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Record(req(0, 100*time.Millisecond))
	r.Record(req(time.Second, time.Second+200*time.Millisecond))
	r.Record(req(2*time.Second, 6*time.Second)) // 4s → VLRT

	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.VLRTCount() != 1 {
		t.Fatalf("VLRTCount = %d, want 1", r.VLRTCount())
	}
	wantMean := (100*time.Millisecond + 200*time.Millisecond + 4*time.Second) / 3
	if r.Mean() != wantMean {
		t.Fatalf("Mean = %v, want %v", r.Mean(), wantMean)
	}
}

func TestRecorderWarmUpCutoff(t *testing.T) {
	r := NewRecorder()
	r.WarmUp = time.Minute
	r.Record(req(30*time.Second, 31*time.Second)) // before warm-up
	r.Record(req(2*time.Minute, 2*time.Minute+time.Second))
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (warm-up excluded)", r.Len())
	}
}

func TestRecorderThroughput(t *testing.T) {
	r := NewRecorder()
	r.WarmUp = 10 * time.Second
	for i := 0; i < 100; i++ {
		at := 10*time.Second + time.Duration(i)*100*time.Millisecond
		r.Record(req(at, at+time.Millisecond))
	}
	// 100 requests over the 10s window [10s, 20s].
	if got := r.Throughput(20 * time.Second); got != 10 {
		t.Fatalf("Throughput = %v, want 10", got)
	}
	if got := r.Throughput(5 * time.Second); got != 0 {
		t.Fatalf("Throughput before warm-up = %v, want 0", got)
	}
}

func TestRecorderPercentile(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(req(0, time.Duration(i)*time.Millisecond))
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
		{0.00, time.Millisecond},
		// Non-round ranks: nearest-rank is ceil(p*n), never round-half-up.
		{0.001, time.Millisecond},
		{0.105, 11 * time.Millisecond},
		{0.211, 22 * time.Millisecond},
		{0.999, 100 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := r.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

// TestRecorderPercentileNearestRank pins the nearest-rank definition on a
// small sample where round-half-up visibly deviates: with n=10 values,
// p=0.21 needs rank ceil(2.1)=3, but int(p*n+0.5) truncates to rank 2.
func TestRecorderPercentileNearestRank(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 10; i++ {
		r.Record(req(0, time.Duration(i)*time.Millisecond))
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{0.05, 1 * time.Millisecond},  // ceil(0.5) = 1
		{0.21, 3 * time.Millisecond},  // ceil(2.1) = 3 (round-half-up said 2)
		{0.25, 3 * time.Millisecond},  // ceil(2.5) = 3
		{0.30, 3 * time.Millisecond},  // exact rank 3
		{0.31, 4 * time.Millisecond},  // ceil(3.1) = 4
		{0.99, 10 * time.Millisecond}, // ceil(9.9) = 10
	}
	for _, tt := range tests {
		if got := r.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

// TestNearestRankFloatSlack guards the float-error slack: p*n values that
// are mathematically integral but land a hair above in binary (0.07*100)
// must not be bumped up a rank.
func TestNearestRankFloatSlack(t *testing.T) {
	tests := []struct {
		p    float64
		n    int
		want int
	}{
		{0.07, 100, 6},  // 0.07*100 = 7.000000000000001 in float64
		{0.29, 100, 28}, // 28.999999999999996 must still reach rank 29
		{0.21, 10, 2},
		{0.5, 100, 49},
		{1, 50, 49},
	}
	for _, tt := range tests {
		if got := NearestRank(tt.p, tt.n); got != tt.want {
			t.Errorf("NearestRank(%v, %d) = %d, want %d", tt.p, tt.n, got, tt.want)
		}
	}
}

// TestRecorderPercentileCacheInvalidation interleaves queries and records:
// the cached sort must not serve stale answers after new samples arrive.
func TestRecorderPercentileCacheInvalidation(t *testing.T) {
	r := NewRecorder()
	r.Record(req(0, 10*time.Millisecond))
	if got := r.Percentile(1); got != 10*time.Millisecond {
		t.Fatalf("Percentile(1) = %v, want 10ms", got)
	}
	r.Record(req(0, 30*time.Millisecond))
	r.Record(req(0, 20*time.Millisecond))
	if got := r.Percentile(1); got != 30*time.Millisecond {
		t.Fatalf("Percentile(1) after more records = %v, want 30ms", got)
	}
	if got := r.Percentile(0.34); got != 20*time.Millisecond {
		t.Fatalf("Percentile(0.34) = %v, want 20ms (rank ceil(1.02)=2)", got)
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder()
	if r.Mean() != 0 || r.Percentile(0.99) != 0 || r.VLRTCount() != 0 {
		t.Fatal("empty recorder should return zeros")
	}
}

func TestDropsByServer(t *testing.T) {
	r := NewRecorder()
	// Record in an order that differs from the sorted output to pin the
	// deterministic server-name ordering.
	r.Record(req(0, time.Second, "tomcat"))
	r.Record(req(0, time.Second, "apache", "apache"))
	got := r.DropsByServer()
	want := []ServerDrops{{Server: "apache", Drops: 2}, {Server: "tomcat", Drops: 1}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("DropsByServer = %v, want %v", got, want)
	}
}

func TestVLRTSeries(t *testing.T) {
	r := NewRecorder()
	// Two VLRTs dropped by apache in window 0, one by tomcat in window 2,
	// plus a fast request that must not count.
	r.Record(req(10*time.Millisecond, 4*time.Second, "apache"))
	r.Record(req(20*time.Millisecond, 7*time.Second, "apache"))
	r.Record(req(110*time.Millisecond, 5*time.Second, "tomcat"))
	r.Record(req(10*time.Millisecond, 20*time.Millisecond))

	all := r.VLRTSeries(50*time.Millisecond, time.Second, "")
	if all[0] != 2 || all[2] != 1 {
		t.Fatalf("all series = %v", all)
	}
	apache := r.VLRTSeries(50*time.Millisecond, time.Second, "apache")
	if apache[0] != 2 || apache[2] != 0 {
		t.Fatalf("apache series = %v", apache)
	}
}

func TestVLRTSeriesInvalidArgs(t *testing.T) {
	r := NewRecorder()
	if got := r.VLRTSeries(0, time.Second, ""); got != nil {
		t.Fatalf("zero window = %v, want nil", got)
	}
	if got := r.VLRTSeries(time.Millisecond, 0, ""); got != nil {
		t.Fatalf("zero horizon = %v, want nil", got)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(100*time.Millisecond, 10*time.Second)
	h.Observe(0)
	h.Observe(99 * time.Millisecond)
	h.Observe(100 * time.Millisecond)
	h.Observe(3 * time.Second)
	h.Observe(time.Minute) // overflow

	if h.Bins() != 100 {
		t.Fatalf("Bins = %d, want 100", h.Bins())
	}
	if h.Count(0) != 2 {
		t.Fatalf("bin 0 = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 1 {
		t.Fatalf("bin 1 = %d, want 1", h.Count(1))
	}
	if h.Count(30) != 1 {
		t.Fatalf("bin 30 = %d, want 1", h.Count(30))
	}
	if h.Count(h.Bins()) != 1 {
		t.Fatalf("overflow = %d, want 1", h.Count(h.Bins()))
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if h.Count(-1) != 0 || h.Count(1000) != 0 {
		t.Fatal("out-of-range Count should be 0")
	}
}

func TestHistogramNegativeObservation(t *testing.T) {
	h := NewHistogram(100*time.Millisecond, time.Second)
	h.Observe(-time.Second)
	if h.Count(0) != 1 {
		t.Fatalf("negative sample not clamped to bin 0")
	}
}

func TestHistogramModeClusters(t *testing.T) {
	h := NewHistogram(100*time.Millisecond, 10*time.Second)
	for i := 0; i < 1000; i++ {
		h.Observe(20 * time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		h.Observe(3*time.Second + 50*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(6*time.Second + 80*time.Millisecond)
	}
	h.Observe(8 * time.Second) // below the share threshold

	got := h.ModeClusters(0.005)
	want := []int{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("clusters = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clusters = %v, want %v", got, want)
		}
	}
}

func TestHistogramNonZeroBins(t *testing.T) {
	h := NewHistogram(time.Second, 5*time.Second)
	h.Observe(500 * time.Millisecond)
	h.Observe(3500 * time.Millisecond)
	nz := h.NonZeroBins()
	if len(nz) != 2 || nz[0] != 0 || nz[1] != 3 {
		t.Fatalf("NonZeroBins = %v", nz)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := &Series{Interval: 50 * time.Millisecond, Values: []float64{1, 2, 3, 4}}
	if s.Max() != 4 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.Mean() != 2.5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if got := s.At(100 * time.Millisecond); got != 2 {
		t.Fatalf("At(100ms) = %v, want 2", got)
	}
	if got := s.At(0); got != 1 {
		t.Fatalf("At(0) = %v, want first sample", got)
	}
	if got := s.At(time.Hour); got != 4 {
		t.Fatalf("At(1h) = %v, want last sample", got)
	}
	if got := s.MeanOver(0, 100*time.Millisecond); got != 1.5 {
		t.Fatalf("MeanOver = %v, want 1.5", got)
	}
	empty := &Series{}
	if empty.Max() != 0 || empty.Mean() != 0 || empty.At(0) != 0 {
		t.Fatal("empty series should return zeros")
	}
}

type fakeDepth struct {
	name  string
	depth int
}

func (f *fakeDepth) Name() string { return f.name }
func (f *fakeDepth) Depth() int   { return f.depth }

func TestMonitorSamplesQueues(t *testing.T) {
	sim := des.NewSimulator(1)
	mon := NewMonitor(sim, 50*time.Millisecond)
	fd := &fakeDepth{name: "s", depth: 1}
	mon.WatchServer(fd)
	mon.Start()

	sim.Schedule(120*time.Millisecond, func() { fd.depth = 7 })
	if err := sim.Run(300 * time.Millisecond); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	q := mon.Queue("s")
	if len(q.Values) != 6 {
		t.Fatalf("samples = %d, want 6", len(q.Values))
	}
	if q.Values[0] != 1 || q.Values[1] != 1 {
		t.Fatalf("early samples = %v, want depth 1", q.Values[:2])
	}
	if q.Values[3] != 7 {
		t.Fatalf("late sample = %v, want 7", q.Values[3])
	}
}

func TestMonitorSamplesVMUtil(t *testing.T) {
	sim := des.NewSimulator(1)
	node := cpu.NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)
	mon := NewMonitor(sim, 50*time.Millisecond)
	mon.WatchVM("vm", vm)
	mon.Start()

	// 100% busy for the first 100ms, idle after.
	vm.Submit(100*time.Millisecond, nil)
	if err := sim.Run(300 * time.Millisecond); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	u := mon.Util("vm")
	if u.Values[0] < 0.99 || u.Values[1] < 0.99 {
		t.Fatalf("busy windows = %v, want ~1.0", u.Values[:2])
	}
	if u.Values[3] > 0.01 {
		t.Fatalf("idle window = %v, want ~0", u.Values[3])
	}
}

func TestMonitorSamplesIOWait(t *testing.T) {
	sim := des.NewSimulator(1)
	node := cpu.NewNode(sim, "n", 1)
	vm := node.AddVM("vm", 1, 1)
	mon := NewMonitor(sim, 50*time.Millisecond)
	mon.WatchVM("vm", vm)
	mon.Start()

	sim.Schedule(50*time.Millisecond, func() { vm.Block(100 * time.Millisecond) })
	if err := sim.Run(300 * time.Millisecond); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	w := mon.IOWait("vm")
	if w.Values[1] < 0.99 || w.Values[2] < 0.99 {
		t.Fatalf("blocked windows = %v, want ~1.0", w.Values[1:3])
	}
	if w.Values[0] > 0.01 {
		t.Fatalf("pre-block window = %v, want 0", w.Values[0])
	}
}

func TestMonitorStop(t *testing.T) {
	sim := des.NewSimulator(1)
	mon := NewMonitor(sim, 50*time.Millisecond)
	mon.WatchServer(&fakeDepth{name: "s"})
	mon.Start()
	sim.Schedule(125*time.Millisecond, mon.Stop)
	if err := sim.Run(time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if got := len(mon.Queue("s").Values); got != 2 {
		t.Fatalf("samples after stop = %d, want 2", got)
	}
}

func TestMonitorDefaultInterval(t *testing.T) {
	sim := des.NewSimulator(1)
	mon := NewMonitor(sim, 0)
	if mon.Interval() != DefaultSampleInterval {
		t.Fatalf("Interval = %v, want %v", mon.Interval(), DefaultSampleInterval)
	}
}

// Property: histogram total equals observations, and the sum over all bins
// equals the total.
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(samplesMs []uint16) bool {
		h := NewHistogram(100*time.Millisecond, 10*time.Second)
		for _, s := range samplesMs {
			h.Observe(time.Duration(s) * time.Millisecond)
		}
		var sum int64
		for i := 0; i <= h.Bins(); i++ {
			sum += h.Count(i)
		}
		return sum == h.Total() && h.Total() == int64(len(samplesMs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bracketed by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(samplesMs []uint16) bool {
		if len(samplesMs) == 0 {
			return true
		}
		r := NewRecorder()
		for _, s := range samplesMs {
			r.Record(req(0, time.Duration(s)*time.Millisecond+time.Millisecond))
		}
		prev := time.Duration(-1)
		for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			v := r.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 10; i++ {
		r.Record(req(0, time.Duration(i)*100*time.Millisecond))
	}
	pts := r.CDF([]time.Duration{
		50 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
		2 * time.Second,
	})
	if pts[0].Fraction != 0 {
		t.Fatalf("P(<=50ms) = %v, want 0", pts[0].Fraction)
	}
	if pts[1].Fraction != 0.5 {
		t.Fatalf("P(<=500ms) = %v, want 0.5", pts[1].Fraction)
	}
	if pts[2].Fraction != 1 || pts[3].Fraction != 1 {
		t.Fatalf("upper tail wrong: %v", pts[2:])
	}
}

func TestCDFEmpty(t *testing.T) {
	r := NewRecorder()
	pts := r.CDF([]time.Duration{time.Second})
	if len(pts) != 1 || pts[0].Fraction != 0 {
		t.Fatalf("empty CDF = %v", pts)
	}
}

// Property: the CDF is monotone non-decreasing in the threshold and
// bounded in [0,1].
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(samplesMs []uint16) bool {
		r := NewRecorder()
		for _, s := range samplesMs {
			r.Record(req(0, time.Duration(s)*time.Millisecond+time.Millisecond))
		}
		thresholds := []time.Duration{
			0, 10 * time.Millisecond, 100 * time.Millisecond,
			time.Second, 30 * time.Second, 80 * time.Second,
		}
		pts := r.CDF(thresholds)
		prev := -1.0
		for _, p := range pts {
			if p.Fraction < prev || p.Fraction < 0 || p.Fraction > 1 {
				return false
			}
			prev = p.Fraction
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestByClass(t *testing.T) {
	r := NewRecorder()
	add := func(class string, rt time.Duration, failed bool) {
		r.Record(&workload.Request{
			Class:     workload.Class{Name: class},
			Submitted: 0, Completed: rt, Failed: failed,
		})
	}
	add("ViewStory", 10*time.Millisecond, false)
	add("ViewStory", 4*time.Second, false) // VLRT
	add("Static", 2*time.Millisecond, false)
	add("Static", 3*time.Millisecond, true)

	stats := r.ByClass()
	if len(stats) != 2 {
		t.Fatalf("classes = %d, want 2", len(stats))
	}
	// Sorted: Static, ViewStory.
	if stats[0].Class != "Static" || stats[1].Class != "ViewStory" {
		t.Fatalf("order = %v, %v", stats[0].Class, stats[1].Class)
	}
	vs := stats[1]
	if vs.Count != 2 || vs.VLRT != 1 || vs.Failed != 0 {
		t.Fatalf("ViewStory stats = %+v", vs)
	}
	if vs.Mean != (10*time.Millisecond+4*time.Second)/2 {
		t.Fatalf("ViewStory mean = %v", vs.Mean)
	}
	if stats[0].Failed != 1 {
		t.Fatalf("Static failed = %d, want 1", stats[0].Failed)
	}
}

func TestByClassEmpty(t *testing.T) {
	if got := NewRecorder().ByClass(); len(got) != 0 {
		t.Fatalf("ByClass on empty = %v", got)
	}
}
