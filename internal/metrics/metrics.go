// Package metrics provides the fine-grained measurement layer of the
// reproduction: a monitor that samples queue depths and CPU state at 50ms
// resolution (the paper's collectl configuration), a recorder for
// end-to-end request latencies, and the histogram/percentile helpers used
// to regenerate the paper's figures.
package metrics

import (
	"math"
	"sort"
	"time"

	"ctqosim/internal/workload"
)

// VLRTThreshold is the paper's criterion for a very long response time
// request.
const VLRTThreshold = 3 * time.Second

// Retention selects the recorder's memory policy.
type Retention int

const (
	// RetainAll keeps every recorded request — the exact default used by
	// small runs and the byte-identity tests.
	RetainAll Retention = iota
	// RetainBounded keeps only constant-memory aggregates: an
	// HDRHistogram per distribution, exact counters for everything
	// countable, and the per-window VLRT series. Memory is O(1) in the
	// request count, so million-request runs stay cheap; percentiles are
	// within the histogram's RelativeError of the exact answer.
	RetainBounded
)

// Recorder collects completed requests. It implements workload.Sink.
// A warm-up cutoff excludes ramp-up artifacts from statistics.
//
// Retention, HDR and SeriesWindow must be set before the first Record.
type Recorder struct {
	// WarmUp excludes requests submitted before this simulated time from
	// all statistics.
	WarmUp time.Duration
	// Retention selects between exact request retention (RetainAll, the
	// default) and constant-memory aggregation (RetainBounded).
	Retention Retention
	// HDR tunes the bounded-mode histograms; zero takes the defaults.
	HDR HDRConfig
	// SeriesWindow is the bounded-mode VLRT bucketing window (normally
	// the monitor interval). Zero disables the bounded VLRT series.
	SeriesWindow time.Duration

	requests []*workload.Request
	// sorted caches the ascending response times so repeated quantile
	// queries (p99/p99.9 per replication in sweeps) don't re-sort;
	// invalidated by Record. Not safe for concurrent use, like the rest
	// of the Recorder.
	sorted []time.Duration

	// Bounded-mode aggregates (nil/zero under RetainAll).
	hdr          *HDRHistogram
	count        int
	sumRT        time.Duration
	vlrt         int
	failed       int
	drops        map[string]int
	classes      map[string]*classAccum
	vlrtAll      []int
	vlrtByServer map[string][]int
}

// classAccum is the bounded-mode per-class aggregate behind ByClass.
type classAccum struct {
	count  int
	sum    time.Duration
	hdr    *HDRHistogram
	vlrt   int
	failed int
}

var _ workload.Sink = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// bounded reports whether the recorder aggregates instead of retaining.
func (r *Recorder) bounded() bool { return r.Retention == RetainBounded }

// Record implements workload.Sink. The bounded-retention path is part of
// the hot-path allocation contract: after the one-time aggregate and
// per-class initializations, recording a request allocates nothing.
//
//lint:hotpath HDR record path (bounded retention)
func (r *Recorder) Record(req *workload.Request) {
	if req.Submitted < r.WarmUp {
		return
	}
	if !r.bounded() {
		r.requests = append(r.requests, req) //lint:allow allocs RetainAll retains every request by design; bounded mode is the measured path
		r.sorted = nil
		return
	}
	if r.hdr == nil {
		r.initBounded() //lint:allow allocs first bounded record initializes the fixed aggregates
	}
	rt := req.ResponseTime()
	r.count++
	r.sumRT += rt
	r.hdr.Observe(rt)
	if req.Failed {
		r.failed++
	}
	for _, s := range req.Drops {
		r.drops[s]++
	}
	if req.VLRT() {
		r.vlrt++
		if r.SeriesWindow > 0 {
			idx := int((req.Submitted - r.WarmUp) / r.SeriesWindow)
			r.vlrtAll = growCount(r.vlrtAll, idx)
			if s := req.DroppedBy(); s != "" {
				r.vlrtByServer[s] = growCount(r.vlrtByServer[s], idx)
			}
		}
	}
	ca := r.classes[req.Class.Name]
	if ca == nil {
		ca = r.newClass(req.Class.Name) //lint:allow allocs first request of a class; the class mix is fixed
	}
	ca.count++
	ca.sum += rt
	ca.hdr.Observe(rt)
	if req.VLRT() {
		ca.vlrt++
	}
	if req.Failed {
		ca.failed++
	}
}

// initBounded creates the bounded-mode aggregates on the first record:
// the only per-run allocations of the bounded retention path.
func (r *Recorder) initBounded() {
	r.hdr = NewHDRHistogram(r.HDR)
	r.drops = make(map[string]int)
	r.classes = make(map[string]*classAccum)
	r.vlrtByServer = make(map[string][]int)
}

// newClass creates and registers the accumulator for one interaction
// class, once per class name.
func (r *Recorder) newClass(name string) *classAccum {
	ca := &classAccum{hdr: NewHDRHistogram(r.HDR)}
	r.classes[name] = ca
	return ca
}

// growCount extends s so index idx exists, increments it, and returns the
// slice.
func growCount(s []int, idx int) []int {
	if idx < 0 {
		return s
	}
	for len(s) <= idx {
		s = append(s, 0) //lint:allow allocs the window count grows with the horizon, not the request count
	}
	s[idx]++
	return s
}

// Len returns the number of recorded requests.
func (r *Recorder) Len() int {
	if r.bounded() {
		return r.count
	}
	return len(r.requests)
}

// Requests returns the recorded requests (shared slice; callers must not
// mutate). Nil in bounded mode — requests are not retained there.
func (r *Recorder) Requests() []*workload.Request { return r.requests }

// ResponseTimes returns a new slice of all recorded response times, or
// nil in bounded mode.
func (r *Recorder) ResponseTimes() []time.Duration {
	if r.bounded() {
		return nil
	}
	out := make([]time.Duration, 0, len(r.requests))
	for _, req := range r.requests {
		out = append(out, req.ResponseTime())
	}
	return out
}

// Throughput returns completed requests per second over the window
// [WarmUp, until].
func (r *Recorder) Throughput(until time.Duration) float64 {
	span := (until - r.WarmUp).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(r.Len()) / span
}

// Mean returns the mean response time (exact in both retention modes:
// sums never degrade under bucketing).
func (r *Recorder) Mean() time.Duration {
	if r.bounded() {
		if r.count == 0 {
			return 0
		}
		return r.sumRT / time.Duration(r.count)
	}
	if len(r.requests) == 0 {
		return 0
	}
	var sum time.Duration
	for _, req := range r.requests {
		sum += req.ResponseTime()
	}
	return sum / time.Duration(len(r.requests))
}

// sortedResponseTimes returns the cached ascending response times,
// rebuilding the cache after new records.
func (r *Recorder) sortedResponseTimes() []time.Duration {
	if r.sorted == nil && len(r.requests) > 0 {
		r.sorted = r.ResponseTimes()
		sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
	}
	return r.sorted
}

// NearestRank returns the 0-based index of the p-quantile of n ascending
// samples under the nearest-rank definition: the smallest index i such
// that (i+1)/n >= p, i.e. ceil(p*n)-1. The tiny relative slack absorbs
// float error in p*n (0.07*100 is 7.000000000000001 in binary), which
// would otherwise bump exact ranks up by one.
func NearestRank(p float64, n int) int {
	pn := p * float64(n)
	idx := int(math.Ceil(pn-pn*1e-12)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Percentile returns the p-quantile (0 < p <= 1) of response times using
// the nearest-rank method (rank ceil(p*n)). The sorted order is cached
// across calls and invalidated on Record.
func (r *Recorder) Percentile(p float64) time.Duration {
	if r.bounded() {
		if r.hdr == nil {
			return 0
		}
		return r.hdr.Quantile(p)
	}
	if len(r.requests) == 0 {
		return 0
	}
	rts := r.sortedResponseTimes()
	if p <= 0 {
		return rts[0]
	}
	if p >= 1 {
		return rts[len(rts)-1]
	}
	return rts[NearestRank(p, len(rts))]
}

// VLRTCount returns the number of recorded requests slower than the
// 3-second threshold.
func (r *Recorder) VLRTCount() int {
	if r.bounded() {
		return r.vlrt
	}
	n := 0
	for _, req := range r.requests {
		if req.VLRT() {
			n++
		}
	}
	return n
}

// FailedCount returns the number of requests that never completed
// successfully.
func (r *Recorder) FailedCount() int {
	if r.bounded() {
		return r.failed
	}
	n := 0
	for _, req := range r.requests {
		if req.Failed {
			n++
		}
	}
	return n
}

// ServerDrops is one server's recorded drop count.
type ServerDrops struct {
	// Server is the dropping server's name.
	Server string
	// Drops is how many packets it dropped.
	Drops int
}

// DropsByServer aggregates packet drops per responsible server across all
// recorded requests, sorted by server name so renderings are
// deterministic end-to-end.
func (r *Recorder) DropsByServer() []ServerDrops {
	counts := r.drops
	if !r.bounded() {
		counts = make(map[string]int)
		for _, req := range r.requests {
			for _, s := range req.Drops {
				counts[s]++
			}
		}
	}
	names := make([]string, 0, len(counts))
	for s := range counts {
		names = append(names, s)
	}
	sort.Strings(names)
	out := make([]ServerDrops, 0, len(names))
	for _, s := range names {
		out = append(out, ServerDrops{Server: s, Drops: counts[s]})
	}
	return out
}

// VLRTSeries counts VLRT requests per window of the given width, bucketed
// by submission time (the paper's Figs. 3c/5c/7c). If server is non-empty,
// only requests whose first drop happened at that server are counted.
// In bounded mode only the SeriesWindow width is retained; other widths
// return nil.
func (r *Recorder) VLRTSeries(window, until time.Duration, serverName string) []int {
	if window <= 0 || until <= r.WarmUp {
		return nil
	}
	n := int((until-r.WarmUp)/window) + 1
	if r.bounded() {
		if window != r.SeriesWindow {
			return nil
		}
		stored := r.vlrtAll
		if serverName != "" {
			stored = r.vlrtByServer[serverName]
		}
		out := make([]int, n)
		copy(out, stored) // clip past-horizon windows, zero-pad short runs
		return out
	}
	out := make([]int, n)
	for _, req := range r.requests {
		if !req.VLRT() {
			continue
		}
		if serverName != "" && req.DroppedBy() != serverName {
			continue
		}
		idx := int((req.Submitted - r.WarmUp) / window)
		if idx >= 0 && idx < n {
			out[idx]++
		}
	}
	return out
}

// ClassStats summarizes one interaction class's recorded requests.
type ClassStats struct {
	// Class is the interaction name.
	Class string
	// Count is the number of completed requests.
	Count int
	// Mean is the mean response time.
	Mean time.Duration
	// P99 is the 99th-percentile response time.
	P99 time.Duration
	// VLRT counts >3s requests.
	VLRT int
	// Failed counts requests that never completed.
	Failed int
}

// ByClass breaks the recorded requests down per interaction class, sorted
// by class name. Useful for verifying that the long tail is class-blind —
// the paper's point that VLRT requests are not the "expensive" requests.
func (r *Recorder) ByClass() []ClassStats {
	if r.bounded() {
		names := make([]string, 0, len(r.classes))
		for name := range r.classes {
			names = append(names, name)
		}
		sort.Strings(names)
		out := make([]ClassStats, 0, len(names))
		for _, name := range names {
			ca := r.classes[name]
			out = append(out, ClassStats{
				Class:  name,
				Count:  ca.count,
				Mean:   ca.sum / time.Duration(ca.count),
				P99:    ca.hdr.Quantile(0.99),
				VLRT:   ca.vlrt,
				Failed: ca.failed,
			})
		}
		return out
	}
	group := make(map[string][]*workload.Request)
	for _, req := range r.requests {
		group[req.Class.Name] = append(group[req.Class.Name], req)
	}
	names := make([]string, 0, len(group))
	for name := range group {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make([]ClassStats, 0, len(names))
	for _, name := range names {
		reqs := group[name]
		cs := ClassStats{Class: name, Count: len(reqs)}
		rts := make([]time.Duration, 0, len(reqs))
		var sum time.Duration
		for _, req := range reqs {
			rt := req.ResponseTime()
			rts = append(rts, rt)
			sum += rt
			if req.VLRT() {
				cs.VLRT++
			}
			if req.Failed {
				cs.Failed++
			}
		}
		cs.Mean = sum / time.Duration(len(reqs))
		sort.Slice(rts, func(i, j int) bool { return rts[i] < rts[j] })
		cs.P99 = rts[NearestRank(0.99, len(rts))]
		out = append(out, cs)
	}
	return out
}

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct {
	// RT is the response-time threshold.
	RT time.Duration
	// Fraction is P(response time <= RT).
	Fraction float64
}

// CDF returns the empirical CDF evaluated at the given thresholds (which
// need not be sorted). Useful for tail comparisons across architectures.
func (r *Recorder) CDF(thresholds []time.Duration) []CDFPoint {
	out := make([]CDFPoint, 0, len(thresholds))
	if r.Len() == 0 {
		for _, t := range thresholds {
			out = append(out, CDFPoint{RT: t})
		}
		return out
	}
	if r.bounded() {
		total := float64(r.hdr.Count())
		for _, t := range thresholds {
			frac := float64(r.hdr.CumulativeCount(t)) / total
			out = append(out, CDFPoint{RT: t, Fraction: frac})
		}
		return out
	}
	rts := r.sortedResponseTimes()
	for _, t := range thresholds {
		idx := sort.Search(len(rts), func(i int) bool { return rts[i] > t })
		out = append(out, CDFPoint{RT: t, Fraction: float64(idx) / float64(len(rts))})
	}
	return out
}

// Histogram builds a response-time frequency histogram with the given bin
// width, covering [0, maxRT); slower requests land in the final overflow
// bin. This regenerates the paper's Fig. 1 semi-log plots. In bounded
// mode the bins are reconstructed from the HDR buckets, so counts near a
// bin edge can shift by the histogram's RelativeError of the edge.
func (r *Recorder) Histogram(binWidth, maxRT time.Duration) *Histogram {
	h := NewHistogram(binWidth, maxRT)
	if r.bounded() {
		if r.hdr != nil {
			r.hdr.Each(func(v time.Duration, c int64) { h.ObserveN(v, c) })
		}
		return h
	}
	for _, req := range r.requests {
		h.Observe(req.ResponseTime())
	}
	return h
}

// MemoryFootprint returns a deterministic accounting (in bytes) of the
// recorder's retained telemetry: request pointers under RetainAll, the
// fixed histograms, counters and horizon-bounded VLRT series under
// RetainBounded. It is the quantity the flat-memory acceptance test pins:
// in bounded mode it depends on the class mix and horizon, never on the
// request count.
func (r *Recorder) MemoryFootprint() int64 {
	if !r.bounded() {
		// Pointer slice plus the retained request structs themselves.
		const requestBytes = 8 + 96 // pointer + approximate struct size
		return int64(cap(r.requests))*requestBytes + int64(cap(r.sorted))*8
	}
	var total int64
	if r.hdr != nil {
		total += r.hdr.FootprintBytes()
	}
	for _, ca := range r.classes {
		total += ca.hdr.FootprintBytes() + 32
	}
	total += int64(cap(r.vlrtAll)) * 8
	for _, s := range r.vlrtByServer {
		total += int64(cap(s)) * 8
	}
	total += int64(len(r.drops)) * 24
	return total
}

// Histogram is a fixed-bin latency histogram with an overflow bin.
type Histogram struct {
	binWidth time.Duration
	counts   []int64
	total    int64
}

// NewHistogram creates a histogram of ceil(maxRT/binWidth) bins plus one
// overflow bin.
func NewHistogram(binWidth, maxRT time.Duration) *Histogram {
	if binWidth <= 0 {
		binWidth = 100 * time.Millisecond
	}
	if maxRT < binWidth {
		maxRT = binWidth
	}
	n := int((maxRT + binWidth - 1) / binWidth)
	return &Histogram{binWidth: binWidth, counts: make([]int64, n+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) { h.ObserveN(d, 1) }

// ObserveN adds n samples of the same value — the bulk path used when
// reconstructing fixed bins from an HDRHistogram's buckets.
func (h *Histogram) ObserveN(d time.Duration, n int64) {
	if n <= 0 {
		return
	}
	idx := int(d / h.binWidth)
	if d < 0 {
		idx = 0
	}
	if idx >= len(h.counts)-1 {
		idx = len(h.counts) - 1
	}
	h.counts[idx] += n
	h.total += n
}

// Bins returns the number of regular bins (excluding overflow).
func (h *Histogram) Bins() int { return len(h.counts) - 1 }

// BinWidth returns the bin width.
func (h *Histogram) BinWidth() time.Duration { return h.binWidth }

// Count returns the frequency of bin i; i == Bins() is the overflow bin.
func (h *Histogram) Count(i int) int64 {
	if i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i]
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int64 { return h.total }

// BinStart returns the lower edge of bin i.
func (h *Histogram) BinStart(i int) time.Duration {
	return time.Duration(i) * h.binWidth
}

// NonZeroBins returns the indices of bins with at least one sample, in
// order. Useful for printing sparse histograms.
func (h *Histogram) NonZeroBins() []int {
	var out []int
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, i)
		}
	}
	return out
}

// ModeClusters returns the starts (in seconds, rounded down) of the
// response-time clusters: every whole second bucket that holds at least
// minShare of the samples. For the paper's Fig. 1 the expected answer is
// {0, 3, 6, …}.
func (h *Histogram) ModeClusters(minShare float64) []int {
	if h.total == 0 {
		return nil
	}
	perSecond := make(map[int]int64)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		sec := int(h.BinStart(i) / time.Second)
		perSecond[sec] += c
	}
	var out []int
	for sec, c := range perSecond {
		if float64(c)/float64(h.total) >= minShare {
			out = append(out, sec)
		}
	}
	sort.Ints(out)
	return out
}
