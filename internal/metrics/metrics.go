// Package metrics provides the fine-grained measurement layer of the
// reproduction: a monitor that samples queue depths and CPU state at 50ms
// resolution (the paper's collectl configuration), a recorder for
// end-to-end request latencies, and the histogram/percentile helpers used
// to regenerate the paper's figures.
package metrics

import (
	"math"
	"sort"
	"time"

	"ctqosim/internal/workload"
)

// VLRTThreshold is the paper's criterion for a very long response time
// request.
const VLRTThreshold = 3 * time.Second

// Recorder collects completed requests. It implements workload.Sink.
// A warm-up cutoff excludes ramp-up artifacts from statistics.
type Recorder struct {
	// WarmUp excludes requests submitted before this simulated time from
	// all statistics.
	WarmUp time.Duration

	requests []*workload.Request
	// sorted caches the ascending response times so repeated quantile
	// queries (p99/p99.9 per replication in sweeps) don't re-sort;
	// invalidated by Record. Not safe for concurrent use, like the rest
	// of the Recorder.
	sorted []time.Duration
}

var _ workload.Sink = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record implements workload.Sink.
func (r *Recorder) Record(req *workload.Request) {
	if req.Submitted < r.WarmUp {
		return
	}
	r.requests = append(r.requests, req)
	r.sorted = nil
}

// Len returns the number of recorded requests.
func (r *Recorder) Len() int { return len(r.requests) }

// Requests returns the recorded requests (shared slice; callers must not
// mutate).
func (r *Recorder) Requests() []*workload.Request { return r.requests }

// ResponseTimes returns a new slice of all recorded response times.
func (r *Recorder) ResponseTimes() []time.Duration {
	out := make([]time.Duration, 0, len(r.requests))
	for _, req := range r.requests {
		out = append(out, req.ResponseTime())
	}
	return out
}

// Throughput returns completed requests per second over the window
// [WarmUp, until].
func (r *Recorder) Throughput(until time.Duration) float64 {
	span := (until - r.WarmUp).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(r.requests)) / span
}

// Mean returns the mean response time.
func (r *Recorder) Mean() time.Duration {
	if len(r.requests) == 0 {
		return 0
	}
	var sum time.Duration
	for _, req := range r.requests {
		sum += req.ResponseTime()
	}
	return sum / time.Duration(len(r.requests))
}

// sortedResponseTimes returns the cached ascending response times,
// rebuilding the cache after new records.
func (r *Recorder) sortedResponseTimes() []time.Duration {
	if r.sorted == nil && len(r.requests) > 0 {
		r.sorted = r.ResponseTimes()
		sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
	}
	return r.sorted
}

// NearestRank returns the 0-based index of the p-quantile of n ascending
// samples under the nearest-rank definition: the smallest index i such
// that (i+1)/n >= p, i.e. ceil(p*n)-1. The tiny relative slack absorbs
// float error in p*n (0.07*100 is 7.000000000000001 in binary), which
// would otherwise bump exact ranks up by one.
func NearestRank(p float64, n int) int {
	pn := p * float64(n)
	idx := int(math.Ceil(pn-pn*1e-12)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Percentile returns the p-quantile (0 < p <= 1) of response times using
// the nearest-rank method (rank ceil(p*n)). The sorted order is cached
// across calls and invalidated on Record.
func (r *Recorder) Percentile(p float64) time.Duration {
	if len(r.requests) == 0 {
		return 0
	}
	rts := r.sortedResponseTimes()
	if p <= 0 {
		return rts[0]
	}
	if p >= 1 {
		return rts[len(rts)-1]
	}
	return rts[NearestRank(p, len(rts))]
}

// VLRTCount returns the number of recorded requests slower than the
// 3-second threshold.
func (r *Recorder) VLRTCount() int {
	n := 0
	for _, req := range r.requests {
		if req.VLRT() {
			n++
		}
	}
	return n
}

// FailedCount returns the number of requests that never completed
// successfully.
func (r *Recorder) FailedCount() int {
	n := 0
	for _, req := range r.requests {
		if req.Failed {
			n++
		}
	}
	return n
}

// DropsByServer aggregates packet drops per responsible server across all
// recorded requests.
func (r *Recorder) DropsByServer() map[string]int {
	out := make(map[string]int)
	for _, req := range r.requests {
		for _, s := range req.Drops {
			out[s]++
		}
	}
	return out
}

// VLRTSeries counts VLRT requests per window of the given width, bucketed
// by submission time (the paper's Figs. 3c/5c/7c). If server is non-empty,
// only requests whose first drop happened at that server are counted.
func (r *Recorder) VLRTSeries(window, until time.Duration, serverName string) []int {
	if window <= 0 || until <= r.WarmUp {
		return nil
	}
	n := int((until-r.WarmUp)/window) + 1
	out := make([]int, n)
	for _, req := range r.requests {
		if !req.VLRT() {
			continue
		}
		if serverName != "" && req.DroppedBy() != serverName {
			continue
		}
		idx := int((req.Submitted - r.WarmUp) / window)
		if idx >= 0 && idx < n {
			out[idx]++
		}
	}
	return out
}

// ClassStats summarizes one interaction class's recorded requests.
type ClassStats struct {
	// Class is the interaction name.
	Class string
	// Count is the number of completed requests.
	Count int
	// Mean is the mean response time.
	Mean time.Duration
	// P99 is the 99th-percentile response time.
	P99 time.Duration
	// VLRT counts >3s requests.
	VLRT int
	// Failed counts requests that never completed.
	Failed int
}

// ByClass breaks the recorded requests down per interaction class, sorted
// by class name. Useful for verifying that the long tail is class-blind —
// the paper's point that VLRT requests are not the "expensive" requests.
func (r *Recorder) ByClass() []ClassStats {
	group := make(map[string][]*workload.Request)
	for _, req := range r.requests {
		group[req.Class.Name] = append(group[req.Class.Name], req)
	}
	names := make([]string, 0, len(group))
	for name := range group {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make([]ClassStats, 0, len(names))
	for _, name := range names {
		reqs := group[name]
		cs := ClassStats{Class: name, Count: len(reqs)}
		rts := make([]time.Duration, 0, len(reqs))
		var sum time.Duration
		for _, req := range reqs {
			rt := req.ResponseTime()
			rts = append(rts, rt)
			sum += rt
			if req.VLRT() {
				cs.VLRT++
			}
			if req.Failed {
				cs.Failed++
			}
		}
		cs.Mean = sum / time.Duration(len(reqs))
		sort.Slice(rts, func(i, j int) bool { return rts[i] < rts[j] })
		cs.P99 = rts[NearestRank(0.99, len(rts))]
		out = append(out, cs)
	}
	return out
}

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct {
	// RT is the response-time threshold.
	RT time.Duration
	// Fraction is P(response time <= RT).
	Fraction float64
}

// CDF returns the empirical CDF evaluated at the given thresholds (which
// need not be sorted). Useful for tail comparisons across architectures.
func (r *Recorder) CDF(thresholds []time.Duration) []CDFPoint {
	out := make([]CDFPoint, 0, len(thresholds))
	if len(r.requests) == 0 {
		for _, t := range thresholds {
			out = append(out, CDFPoint{RT: t})
		}
		return out
	}
	rts := r.sortedResponseTimes()
	for _, t := range thresholds {
		idx := sort.Search(len(rts), func(i int) bool { return rts[i] > t })
		out = append(out, CDFPoint{RT: t, Fraction: float64(idx) / float64(len(rts))})
	}
	return out
}

// Histogram builds a response-time frequency histogram with the given bin
// width, covering [0, maxRT); slower requests land in the final overflow
// bin. This regenerates the paper's Fig. 1 semi-log plots.
func (r *Recorder) Histogram(binWidth, maxRT time.Duration) *Histogram {
	h := NewHistogram(binWidth, maxRT)
	for _, req := range r.requests {
		h.Observe(req.ResponseTime())
	}
	return h
}

// Histogram is a fixed-bin latency histogram with an overflow bin.
type Histogram struct {
	binWidth time.Duration
	counts   []int64
	total    int64
}

// NewHistogram creates a histogram of ceil(maxRT/binWidth) bins plus one
// overflow bin.
func NewHistogram(binWidth, maxRT time.Duration) *Histogram {
	if binWidth <= 0 {
		binWidth = 100 * time.Millisecond
	}
	if maxRT < binWidth {
		maxRT = binWidth
	}
	n := int((maxRT + binWidth - 1) / binWidth)
	return &Histogram{binWidth: binWidth, counts: make([]int64, n+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) {
	idx := int(d / h.binWidth)
	if d < 0 {
		idx = 0
	}
	if idx >= len(h.counts)-1 {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
}

// Bins returns the number of regular bins (excluding overflow).
func (h *Histogram) Bins() int { return len(h.counts) - 1 }

// BinWidth returns the bin width.
func (h *Histogram) BinWidth() time.Duration { return h.binWidth }

// Count returns the frequency of bin i; i == Bins() is the overflow bin.
func (h *Histogram) Count(i int) int64 {
	if i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i]
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int64 { return h.total }

// BinStart returns the lower edge of bin i.
func (h *Histogram) BinStart(i int) time.Duration {
	return time.Duration(i) * h.binWidth
}

// NonZeroBins returns the indices of bins with at least one sample, in
// order. Useful for printing sparse histograms.
func (h *Histogram) NonZeroBins() []int {
	var out []int
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, i)
		}
	}
	return out
}

// ModeClusters returns the starts (in seconds, rounded down) of the
// response-time clusters: every whole second bucket that holds at least
// minShare of the samples. For the paper's Fig. 1 the expected answer is
// {0, 3, 6, …}.
func (h *Histogram) ModeClusters(minShare float64) []int {
	if h.total == 0 {
		return nil
	}
	perSecond := make(map[int]int64)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		sec := int(h.BinStart(i) / time.Second)
		perSecond[sec] += c
	}
	var out []int
	for sec, c := range perSecond {
		if float64(c)/float64(h.total) >= minShare {
			out = append(out, sec)
		}
	}
	sort.Ints(out)
	return out
}
