package metrics

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzHDRMergeCommute drives the shard-order-independence contract with
// arbitrary shard contents: whatever two value sets the input encodes,
// Merge(a,b) and Merge(b,a) must serialize byte-identically — the
// property the sweep accumulators rely on for any-worker-count
// byte-identity.
//
// Input layout: byte 0 picks the precision, byte 1 the exact-mode
// capacity (0 disables it), byte 2 the a/b split point; each following
// pair of bytes is one millisecond-scaled duration.
func FuzzHDRMergeCommute(f *testing.F) {
	f.Add([]byte("\x07\x10\x05abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Add([]byte("\x01\x00\x01\xff\xff\x00\x00\x80\x01"))
	f.Add([]byte("\x0e\x02\xff" + "samples beyond the split all land in shard a"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		cfg := HDRConfig{SigBits: int(data[0]%10) + 1}
		if data[1] == 0 {
			cfg.ExactCap = -1
		} else {
			cfg.ExactCap = int(data[1])
		}
		split := int(data[2])
		values := data[3:]

		build := func() (a, b *HDRHistogram) {
			a, b = NewHDRHistogram(cfg), NewHDRHistogram(cfg)
			for i := 0; i+1 < len(values); i += 2 {
				v := time.Duration(binary.BigEndian.Uint16(values[i:])) * time.Millisecond
				if i/2 < split {
					a.Observe(v)
				} else {
					b.Observe(v)
				}
			}
			return a, b
		}

		a1, b1 := build()
		if err := a1.Merge(b1); err != nil {
			t.Fatalf("Merge(a,b): %v", err)
		}
		a2, b2 := build()
		if err := b2.Merge(a2); err != nil {
			t.Fatalf("Merge(b,a): %v", err)
		}

		ab, err := a1.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		ba, err := b2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, ba) {
			t.Fatalf("merge order changes serialization:\nab=%x\nba=%x", ab, ba)
		}
		if a1.Count() != b2.Count() || a1.Sum() != b2.Sum() {
			t.Fatalf("merge order changes counters: count %d vs %d, sum %d vs %d",
				a1.Count(), b2.Count(), a1.Sum(), b2.Sum())
		}
	})
}
