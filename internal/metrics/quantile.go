package metrics

import (
	"fmt"
	"time"
)

// P2Quantile estimates a single quantile of a stream in O(1) memory using
// the P² algorithm (Jain & Chlamtac, 1985). The full Recorder keeps every
// sample for exact figures; this estimator is for long-running or
// memory-constrained deployments (e.g. embedding the monitor in a live
// service), and is cross-validated against the exact recorder in tests.
type P2Quantile struct {
	p       float64
	count   int
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	dWant   [5]float64
	initial []float64
}

// NewP2Quantile creates an estimator for quantile p in (0, 1).
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("p2: quantile %v out of (0,1)", p)
	}
	q := &P2Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	q.initial = make([]float64, 0, 5)
	return q, nil
}

// ObserveDuration adds a duration sample.
func (q *P2Quantile) ObserveDuration(d time.Duration) { q.Observe(d.Seconds()) }

// Observe adds one sample.
func (q *P2Quantile) Observe(x float64) {
	q.count++
	if len(q.initial) < 5 {
		q.initial = append(q.initial, x)
		if len(q.initial) == 5 {
			sortFive(q.initial)
			copy(q.heights[:], q.initial)
			q.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}

	// Find the cell of the new observation and update extreme heights.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < q.heights[i] {
				k = i - 1
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.dWant[i]
	}

	// Adjust interior markers with parabolic (or linear) interpolation.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// Count returns the number of observed samples.
func (q *P2Quantile) Count() int { return q.count }

// Value returns the current quantile estimate. With fewer than five
// samples it falls back to the exact order statistic of what it has.
func (q *P2Quantile) Value() float64 {
	if q.count == 0 {
		return 0
	}
	if q.count < 5 {
		tmp := make([]float64, len(q.initial))
		copy(tmp, q.initial)
		sortFive(tmp)
		return tmp[NearestRank(q.p, len(tmp))]
	}
	return q.heights[2]
}

// ValueDuration returns the estimate as a time.Duration, for streams fed
// through ObserveDuration.
func (q *P2Quantile) ValueDuration() time.Duration {
	return time.Duration(q.Value() * float64(time.Second))
}

func (q *P2Quantile) parabolic(i int, sign float64) float64 {
	return q.heights[i] + sign/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+sign)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-sign)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return q.heights[i] + sign*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// sortFive insertion-sorts a tiny slice.
func sortFive(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
